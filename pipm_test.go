package pipm_test

import (
	"testing"

	"pipm"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := pipm.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	scaled := pipm.ScaledConfig()
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	if scaled.SharedBytes >= cfg.CXLDRAM.CapacityBytes {
		t.Fatal("scaled config is not scaled")
	}
}

func TestSchemesRoundTrip(t *testing.T) {
	ks := pipm.Schemes()
	if len(ks) != 8 {
		t.Fatalf("Schemes() has %d entries, want 8", len(ks))
	}
	for _, k := range ks {
		got, err := pipm.ParseScheme(k.String())
		if err != nil || got != k {
			t.Errorf("ParseScheme(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(pipm.Workloads()) != 13 || len(pipm.WorkloadNames()) != 15 {
		t.Fatal("catalog size mismatch")
	}
	if len(pipm.ProductionWorkloads()) != 2 || len(pipm.AllWorkloads()) != 15 {
		t.Fatal("production family size mismatch")
	}
	wl, err := pipm.WorkloadByName("tpcc")
	if err != nil || wl.Suite != "Silo" {
		t.Fatalf("WorkloadByName(tpcc) = %+v, %v", wl, err)
	}
	serve, err := pipm.WorkloadByName("llmserve")
	if err != nil || serve.Suite != "Serve" {
		t.Fatalf("WorkloadByName(llmserve) = %+v, %v", serve, err)
	}
}

func TestEndToEndRunThroughPublicAPI(t *testing.T) {
	cfg := pipm.QuickSuiteOptions().Cfg
	wl, _ := pipm.WorkloadByName("pr")
	nat, err := pipm.Run(cfg, wl, pipm.Native, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipm.Run(cfg, wl, pipm.PIPM, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := pipm.Speedup(res, nat); s <= 1 {
		t.Fatalf("PIPM speedup on pr = %.2f, want > 1", s)
	}
	if res.LocalHitRate <= 0.2 {
		t.Fatalf("local hit rate = %.2f", res.LocalHitRate)
	}
}

func TestMachineDirectUse(t *testing.T) {
	cfg := pipm.QuickSuiteOptions().Cfg
	m, err := pipm.NewMachine(cfg, pipm.PIPM)
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := pipm.WorkloadByName("streamcluster")
	am := m.AddressMap()
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, wl.NewReader(am, cfg.Hosts, h, c, 10_000, 7))
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExecTime() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestVerifyCoherence(t *testing.T) {
	for _, ext := range []bool{false, true} {
		res, v := pipm.VerifyCoherence(2, ext)
		if v != nil {
			t.Fatalf("pipm=%v: %v", ext, v)
		}
		if res.States == 0 || !res.DeadlockFree {
			t.Fatalf("pipm=%v: degenerate result %+v", ext, res)
		}
	}
}

func TestTablesRender(t *testing.T) {
	if pipm.Table1() == "" || pipm.Table2(pipm.DefaultConfig()) == "" {
		t.Fatal("empty table renderings")
	}
}

func TestGraphKernelEndToEnd(t *testing.T) {
	cfg := pipm.QuickSuiteOptions().Cfg
	// The graph must dwarf the LLC or everything cache-hits and there is
	// nothing to migrate: scale 12 × degree 16 ≈ 600 KB of arrays against a
	// 128 KB per-host LLC.
	g := pipm.KroneckerGraph(12, 16, 1)
	runK := func(s pipm.Scheme) *pipm.Machine {
		m, err := pipm.NewMachine(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := pipm.AttachGraphKernel(m, g, pipm.KernelPageRank, 150_000, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	nat := runK(pipm.Native)
	pip := runK(pipm.PIPM)
	if pip.ExecTime() >= nat.ExecTime() {
		t.Fatalf("ground-truth PageRank: PIPM (%v) not faster than native (%v)",
			pip.ExecTime(), nat.ExecTime())
	}
	if pip.Stats().LinesMoved == 0 {
		t.Fatal("no incremental migration on the real PR trace")
	}
}

func TestAttachGraphKernelRejectsOversizedGraph(t *testing.T) {
	cfg := pipm.QuickSuiteOptions().Cfg
	cfg.SharedBytes = 1 << 20
	m, err := pipm.NewMachine(cfg, pipm.Native)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipm.AttachGraphKernel(m, pipm.KroneckerGraph(14, 16, 1), pipm.KernelBFS, 100, 1); err == nil {
		t.Fatal("oversized graph accepted")
	}
}
