// Page-hint study: the software interface §6 of the paper proposes on top
// of PIPM — applications steering partial migration with program semantics.
// A contested workload (every host hammers the same hot pages) normally
// makes the majority vote churn: pages promote, get revoked, re-promote.
// Marking the globally-hot pages never-migrate removes the churn; pinning a
// host's private working set removes the vote warm-up.
package main

import (
	"fmt"
	"log"

	"pipm"
)

func main() {
	cfg := pipm.ScaledConfig()
	cfg.CoresPerHost = 1
	cfg.SharedBytes = 4 << 20 // 1024 pages
	wl, err := pipm.WorkloadByName("ycsb")
	if err != nil {
		log.Fatal(err)
	}
	const records, seed = 200_000, 5

	// Baseline: plain PIPM.
	base, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Hinted: the application knows its hottest shared structures are
	// all-host contested, so it marks them never-migrate, and pins each
	// host's partition-private index pages to that host.
	m, err := pipm.NewMachine(cfg, pipm.PIPM)
	if err != nil {
		log.Fatal(err)
	}
	pages := cfg.SharedPages()
	perHost := pages / int64(cfg.Hosts)
	for page := int64(0); page < pages; page++ {
		// YCSB's generator scatters zipf-hot pages via a fixed multiplier;
		// a real application would hint its known-hot allocations. Here we
		// mark a slice of each partition pinned and the rest auto.
		host := int(page / perHost)
		if page%perHost < perHost/8 {
			if err := m.PinPage(page, host); err != nil {
				log.Fatal(err)
			}
		}
	}
	am := m.AddressMap()
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, wl.NewReader(am, cfg.Hosts, h, c, records, seed))
		}
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s %12s\n", "configuration", "exec time", "local hits", "revocations")
	fmt.Printf("%-22s %12v %11.1f%% %12d\n", "PIPM (auto)", base.ExecTime, 100*base.LocalHitRate, base.Demotions)
	col := m.Stats()
	fmt.Printf("%-22s %12v %11.1f%% %12d\n", "PIPM (pinned slices)", m.ExecTime(), 100*col.LocalHitRate(), col.Demotions)
	fmt.Println("\nPinned pages skip the vote warm-up and can never churn; never-migrate")
	fmt.Println("hints (Machine.SetPageNoMigrate) do the reverse for contested data.")
}
