// Quickstart: build a 4-host CXL-DSM machine, run one workload under the
// Native baseline and under PIPM, and print the headline comparison.
package main

import (
	"fmt"
	"log"

	"pipm"
)

func main() {
	// The scaled-down Table 2 system: 4 hosts, a pooled CXL heap, 50 ns /
	// 5 GB/s links. ScaledConfig keeps the paper's ratios at laptop size.
	cfg := pipm.ScaledConfig()
	cfg.CoresPerHost = 2

	// PageRank-like graph analytics: strong per-host partition locality,
	// streaming scans — the pattern partial migration exploits best.
	wl, err := pipm.WorkloadByName("pr")
	if err != nil {
		log.Fatal(err)
	}

	const records, seed = 200_000, 1
	native, err := pipm.Run(cfg, wl, pipm.Native, records, seed)
	if err != nil {
		log.Fatal(err)
	}
	withPIPM, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%s suite)\n\n", wl.Name, wl.Suite)
	fmt.Printf("%-22s %12s %8s %12s\n", "scheme", "exec time", "IPC", "local hits")
	fmt.Printf("%-22s %12v %8.3f %11.1f%%\n", "native CXL-DSM", native.ExecTime, native.IPC, 100*native.LocalHitRate)
	fmt.Printf("%-22s %12v %8.3f %11.1f%%\n", "PIPM", withPIPM.ExecTime, withPIPM.IPC, 100*withPIPM.LocalHitRate)
	fmt.Printf("\nPIPM speedup: %.2fx\n", pipm.Speedup(withPIPM, native))
	fmt.Printf("partially migrated pages: %d, incrementally migrated lines: %d\n",
		withPIPM.Promotions, withPIPM.LinesMoved)
	fmt.Printf("per-host local footprint: %.1f%% of the shared heap at page grain, %.1f%% at line grain\n",
		100*withPIPM.PageFootprintFrac, 100*withPIPM.LineFootprintFrac)
}
