// Database study: TPC-C / YCSB-style scattered access over a shared store,
// where hot keys are hot for every host. This is the regime where
// single-host migration policies make harmful migrations (Fig. 5 of the
// paper): promoting a page every host touches converts three hosts' cheap
// cacheable CXL accesses into 4-hop non-cacheable remote accesses. PIPM's
// majority vote suppresses exactly those migrations.
package main

import (
	"fmt"
	"log"

	"pipm"
)

func main() {
	cfg := pipm.ScaledConfig()
	cfg.CoresPerHost = 2
	const records, seed = 300_000, 11

	for _, name := range []string{"tpcc", "ycsb"} {
		wl, err := pipm.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: zipf-skewed shared store, %.0f%% writes ==\n", wl.Name, 100*wl.WriteFrac)

		native, err := pipm.Run(cfg, wl, pipm.Native, records, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10s %9s %12s %10s\n", "scheme", "exec", "speedup", "harmful migs", "promoted")
		for _, k := range []pipm.Scheme{pipm.Nomad, pipm.Memtis, pipm.OSSkew, pipm.PIPM} {
			res, err := pipm.Run(cfg, wl, k, records, seed)
			if err != nil {
				log.Fatal(err)
			}
			harm := "n/a (hw)"
			if k.Kernel() {
				harm = fmt.Sprintf("%.1f%%", 100*res.HarmfulFrac)
			}
			fmt.Printf("%-12v %10v %8.2fx %12s %10d\n",
				k, res.ExecTime, pipm.Speedup(res, native), harm, res.Promotions)
		}
		fmt.Println()
	}

	fmt.Println("Takeaway: on contested data, recency/frequency policies migrate pages the")
	fmt.Println("whole cluster uses (the harmful migrations of Fig. 5), while the majority")
	fmt.Println("vote — in OS-skew and PIPM — migrates only pages one host clearly dominates,")
	fmt.Println("and PIPM's revocation counter pulls blocks back when contention appears.")
}
