// Algorithmic cross-validation: the statistical workload models
// (internal/workload) are calibrated to the paper's description of each
// benchmark; this example checks them against ground truth by *actually
// executing* PageRank and BFS over a Kronecker graph laid out in the shared
// heap (internal/gapbs), and comparing the scheme ordering both trace
// sources produce. If the statistical model is honest, PIPM wins on both,
// by a similar ratio, for the same reason (partition-local adjacency scans
// plus boundary-vertex traffic).
package main

import (
	"fmt"
	"log"

	"pipm"
)

const (
	records = 200_000
	seed    = 1
)

func main() {
	cfg := pipm.ScaledConfig()
	cfg.CoresPerHost = 2

	g := pipm.KroneckerGraph(13, 16, seed) // 8k vertices, ~128k edges
	fmt.Printf("graph: 2^13 vertices, %d edges (Kronecker)\n\n", g.M())

	fmt.Printf("%-26s %10s %10s %12s\n", "trace source", "native", "pipm", "pipm speedup")
	for _, k := range []pipm.GraphKernel{pipm.KernelPageRank, pipm.KernelBFS} {
		nat := runGraph(cfg, g, k, pipm.Native)
		pip := runGraph(cfg, g, k, pipm.PIPM)
		fmt.Printf("%-26s %10v %10v %11.2fx\n",
			"algorithmic "+k.String(), nat.ExecTime, pip.ExecTime, pipm.Speedup(pip, nat))
	}
	for _, op := range []pipm.StoreOp{pipm.StoreTPCC, pipm.StoreYCSB} {
		nat := runStore(cfg, op, pipm.Native)
		pip := runStore(cfg, op, pipm.PIPM)
		fmt.Printf("%-26s %10v %10v %11.2fx\n",
			"algorithmic "+op.String(), nat.ExecTime, pip.ExecTime, pipm.Speedup(pip, nat))
	}
	for _, name := range []string{"pr", "bfs", "tpcc", "ycsb"} {
		wl, err := pipm.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		nat, err := pipm.Run(cfg, wl, pipm.Native, records, seed)
		if err != nil {
			log.Fatal(err)
		}
		pip, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10v %10v %11.2fx\n",
			"statistical "+name, nat.ExecTime, pip.ExecTime, pipm.Speedup(pip, nat))
	}
	fmt.Println("\nBoth trace sources agree on the ordering (PIPM ≥ native). Magnitudes")
	fmt.Println("differ with reuse: PageRank sweeps its partition every iteration and")
	fmt.Println("pays back migration quickly; BFS touches most pages once per run, so")
	fmt.Println("ground-truth gains are smaller at this trace length.")
}

func runStore(cfg pipm.Config, op pipm.StoreOp, s pipm.Scheme) pipm.Result {
	m, err := pipm.NewMachine(cfg, s)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipm.AttachStoreWorkload(m, op, 16, records, seed); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return pipm.Result{Scheme: s, ExecTime: m.ExecTime(), LocalHitRate: m.Stats().LocalHitRate()}
}

func runGraph(cfg pipm.Config, g *pipm.Graph, k pipm.GraphKernel, s pipm.Scheme) pipm.Result {
	m, err := pipm.NewMachine(cfg, s)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipm.AttachGraphKernel(m, g, k, records, seed); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	col := m.Stats()
	return pipm.Result{
		Scheme:       s,
		ExecTime:     m.ExecTime(),
		IPC:          m.IPC(),
		LocalHitRate: col.LocalHitRate(),
		Promotions:   col.Promotions,
		LinesMoved:   col.LinesMoved,
	}
}
