// Sensitivity study: sweep the CXL fabric parameters and PIPM's on-die
// budgets the way §5.4 does — link latency (Fig. 14), link bandwidth
// (Fig. 15), and the two remapping cache sizes (Figs. 16–17) — on one
// latency-sensitive workload.
package main

import (
	"fmt"
	"log"

	"pipm"
)

const (
	records = 200_000
	seed    = 3
)

func main() {
	base := pipm.ScaledConfig()
	base.CoresPerHost = 2
	wl, err := pipm.WorkloadByName("cc")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== CXL link latency (Fig. 14): PIPM speedup over native ==")
	for _, lat := range []pipm.Time{50 * pipm.Nanosecond, 100 * pipm.Nanosecond, 200 * pipm.Nanosecond} {
		cfg := base
		cfg.CXL.LinkLatency = lat
		fmt.Printf("  %6v/direction: %.2fx\n", lat, speedup(cfg, wl))
	}

	fmt.Println("== CXL link bandwidth (Fig. 15): PIPM speedup over native ==")
	for _, bw := range []float64{2.5e9, 5e9, 10e9} {
		cfg := base
		cfg.CXL.LinkBW = bw
		fmt.Printf("  %4.1f GB/s/direction: %.2fx\n", bw/1e9, speedup(cfg, wl))
	}

	fmt.Println("== Local remapping cache (Fig. 16): perf vs infinite ==")
	fmt.Println("   (sizes scaled to the shrunken page count; see DESIGN.md)")
	ideal := runPIPM(withLocalCache(base, -1), wl)
	for _, kb := range []int{1, 4, 16} {
		res := runPIPM(withLocalCache(base, kb<<10), wl)
		fmt.Printf("  %5d KB: %.3f of ideal (remap hit rate %.1f%%)\n",
			kb, float64(ideal.ExecTime)/float64(res.ExecTime), 100*res.LocalRemapHitRate)
	}

	fmt.Println("== Global remapping cache (Fig. 17): perf vs infinite ==")
	gIdeal := runPIPM(withGlobalCache(base, -1), wl)
	for _, b := range []int{512, 2048, 8192} {
		res := runPIPM(withGlobalCache(base, b), wl)
		fmt.Printf("  %5d B: %.3f of ideal (remap hit rate %.1f%%)\n",
			b, float64(gIdeal.ExecTime)/float64(res.ExecTime), 100*res.GlobalRemapHitRate)
	}
}

func speedup(cfg pipm.Config, wl pipm.Workload) float64 {
	nat, err := pipm.Run(cfg, wl, pipm.Native, records, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
	if err != nil {
		log.Fatal(err)
	}
	return pipm.Speedup(res, nat)
}

func runPIPM(cfg pipm.Config, wl pipm.Workload) pipm.Result {
	res, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func withLocalCache(cfg pipm.Config, bytes int) pipm.Config {
	cfg.PIPM.LocalRemapCacheBytes = bytes
	return cfg
}

func withGlobalCache(cfg pipm.Config, bytes int) pipm.Config {
	cfg.PIPM.GlobalRemapCacheBytes = bytes
	return cfg
}
