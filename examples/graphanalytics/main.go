// Graph analytics study: the workloads the paper's introduction motivates —
// partitioned graph kernels where each host mostly traverses its own slice
// of the graph but exchanges boundary vertices with neighbours. It compares
// every placement scheme on two GAP kernels and shows why per-page kernel
// migration underperforms hardware partial migration on these patterns.
package main

import (
	"fmt"
	"log"

	"pipm"
)

func main() {
	cfg := pipm.ScaledConfig()
	cfg.CoresPerHost = 2
	const records, seed = 300_000, 7

	schemes := []pipm.Scheme{
		pipm.Native, pipm.Nomad, pipm.Memtis, pipm.OSSkew, pipm.HWStatic, pipm.PIPM,
	}

	for _, name := range []string{"pr", "sssp"} {
		wl, err := pipm.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d%% shared refs, %.0f%% own-partition, run length %.0f lines ==\n",
			wl.Name, int(100*wl.SharedFrac), 100*wl.OwnFrac, wl.RunLen)

		var native pipm.Result
		fmt.Printf("%-12s %10s %9s %11s %11s %9s\n",
			"scheme", "exec", "speedup", "local hits", "inter-host", "migrated")
		for _, k := range schemes {
			res, err := pipm.Run(cfg, wl, k, records, seed)
			if err != nil {
				log.Fatal(err)
			}
			if k == pipm.Native {
				native = res
			}
			migrated := fmt.Sprintf("%d pg", res.Promotions)
			if k == pipm.PIPM || k == pipm.HWStatic {
				migrated = fmt.Sprintf("%d ln", res.LinesMoved)
			}
			fmt.Printf("%-12v %10v %8.2fx %10.1f%% %10.2f%% %9s\n",
				k, res.ExecTime, pipm.Speedup(res, native),
				100*res.LocalHitRate, 100*res.InterStallFrac, migrated)
		}
		fmt.Println()
	}

	fmt.Println("Takeaway: with strong per-host locality, PIPM absorbs each host's hot")
	fmt.Println("blocks into local DRAM with no page-table updates or TLB shootdowns;")
	fmt.Println("page-granularity kernel schemes pay migration management costs and turn")
	fmt.Println("boundary traffic into 4-hop non-cacheable accesses (take-away #1 of the paper).")
}
