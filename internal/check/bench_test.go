package check

import "testing"

func BenchmarkModelCheckPIPM3Hosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, v := Run(Options{Hosts: 3, PIPM: true}); v != nil {
			b.Fatal(v)
		}
	}
}
