// Package check is an explicit-state model checker for the PIPM coherence
// protocol, reproducing the paper's Murφ verification (§5.1.4): exhaustive
// enumeration of a small protocol instance proving the Single-Writer
// Multiple-Reader invariant, per-location sequential consistency (every
// read returns the latest write), and absence of stuck states.
//
// The model is one cache line shared by N hosts. Each protocol request is
// atomic (the paper's implementation serializes request handling with a
// lock-based scheme, so atomic transitions are faithful). Versions are
// abstracted to one bit per storage location — "holds the latest value" —
// which bounds the state space while preserving exactly the property SC
// per location needs.
package check

import "fmt"

// CacheState is a host's state for the modelled line (MSI + PIPM's ME).
type CacheState uint8

const (
	I CacheState = iota
	S
	M
	ME
)

func (c CacheState) String() string {
	return [...]string{"I", "S", "M", "ME"}[c]
}

// none marks "no host" in owner fields.
const none = -1

// State is one global protocol state.
type State struct {
	Cache    [3]CacheState // per-host cache state (unused slots stay I)
	CacheUTD [3]bool       // cache copy holds the latest version
	CXLUTD   bool          // CXL memory holds the latest version
	LocalUTD bool          // the bit-owner's local memory holds the latest
	BitOwner int8          // host whose local DRAM holds the line (I'), or none
	PageOwn  int8          // host the page is partially migrated to, or none
}

func initialState() State {
	return State{CXLUTD: true, BitOwner: none, PageOwn: none}
}

// Event is a protocol stimulus.
type Event struct {
	Kind EventKind
	Host int
}

// EventKind enumerates stimuli.
type EventKind uint8

const (
	EvRead EventKind = iota
	EvWrite
	EvEvict
	EvPromote
	EvRevoke
)

func (k EventKind) String() string {
	return [...]string{"Read", "Write", "Evict", "Promote", "Revoke"}[k]
}

func (e Event) String() string { return fmt.Sprintf("%v(h%d)", e.Kind, e.Host) }

// Violation describes an invariant failure with its witness path.
type Violation struct {
	Rule  string
	State State
	Path  []Event
}

func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s violated after %v (state %+v)", v.Rule, v.Path, v.State)
}

// Options selects the protocol variant and instance size.
type Options struct {
	Hosts int  // 2 or 3
	PIPM  bool // false = base MSI over CXL-DSM only (no migration events)
}

// Result summarizes a completed run.
type Result struct {
	States      int
	Transitions int
	// DeadlockFree is true when every reachable state has at least one
	// enabled event (always true here — reads are always enabled — but
	// reported for parity with the Murφ run).
	DeadlockFree bool
}

// Run exhaustively explores the protocol and returns the first invariant
// violation, if any.
func Run(opt Options) (Result, *Violation) {
	if opt.Hosts < 2 || opt.Hosts > 3 {
		panic("check: Hosts must be 2 or 3")
	}
	m := &model{opt: opt}
	return m.run()
}

type model struct {
	opt Options
}

type node struct {
	state  State
	parent int
	via    Event
}

func (m *model) run() (Result, *Violation) {
	start := initialState()
	seen := map[State]struct{}{start: {}}
	nodes := []node{{state: start, parent: -1}}
	res := Result{DeadlockFree: true}

	for i := 0; i < len(nodes); i++ {
		cur := nodes[i].state
		if rule := m.checkInvariants(cur); rule != "" {
			return res, m.violation(nodes, i, rule)
		}
		events := m.enabled(cur)
		if len(events) == 0 {
			res.DeadlockFree = false
			return res, m.violation(nodes, i, "deadlock: no enabled event")
		}
		for _, ev := range events {
			next, staleRead := m.apply(cur, ev)
			res.Transitions++
			if staleRead {
				v := m.violation(nodes, i, "SC-per-location: read returned a stale value")
				v.Path = append(v.Path, ev)
				v.State = next
				return res, v
			}
			if _, ok := seen[next]; !ok {
				seen[next] = struct{}{}
				nodes = append(nodes, node{state: next, parent: i, via: ev})
			}
		}
	}
	res.States = len(nodes)
	return res, nil
}

func (m *model) violation(nodes []node, i int, rule string) *Violation {
	var path []Event
	for j := i; nodes[j].parent != -1; j = nodes[j].parent {
		path = append([]Event{nodes[j].via}, path...)
	}
	return &Violation{Rule: rule, State: nodes[i].state, Path: path}
}

// checkInvariants returns the violated rule's name, or "".
func (m *model) checkInvariants(s State) string {
	writers, sharers := 0, 0
	for h := 0; h < m.opt.Hosts; h++ {
		switch s.Cache[h] {
		case M, ME:
			writers++
			if !s.CacheUTD[h] {
				return "owner-holds-latest: M/ME copy is stale"
			}
		case S:
			sharers++
			if !s.CacheUTD[h] {
				return "sharers-clean: S copy is stale"
			}
		}
		if s.Cache[h] == ME && (int(s.BitOwner) != h || int(s.PageOwn) != h) {
			return "ME-implies-migrated-here"
		}
	}
	if writers > 1 {
		return "SWMR: two writers"
	}
	if writers == 1 && sharers > 0 {
		return "SWMR: writer coexists with readers"
	}
	if s.BitOwner != none && s.BitOwner != s.PageOwn {
		return "bit-consistency: in-memory bit outside the owning page"
	}
	// Liveness of the value: someone must hold the latest version.
	anyUTD := s.CXLUTD || (s.BitOwner != none && s.LocalUTD)
	for h := 0; h < m.opt.Hosts; h++ {
		if s.Cache[h] != I && s.CacheUTD[h] {
			anyUTD = true
		}
	}
	if !anyUTD {
		return "value-lost: no location holds the latest version"
	}
	return ""
}

// enabled lists the stimuli applicable in s.
func (m *model) enabled(s State) []Event {
	var evs []Event
	for h := 0; h < m.opt.Hosts; h++ {
		evs = append(evs, Event{EvRead, h}, Event{EvWrite, h})
		if s.Cache[h] != I {
			evs = append(evs, Event{EvEvict, h})
		}
	}
	if m.opt.PIPM {
		if s.PageOwn == none {
			for h := 0; h < m.opt.Hosts; h++ {
				evs = append(evs, Event{EvPromote, h})
			}
		} else {
			evs = append(evs, Event{EvRevoke, int(s.PageOwn)})
		}
	}
	return evs
}

// apply executes one event atomically, returning the successor and whether
// a read observed a stale value.
func (m *model) apply(s State, ev Event) (State, bool) {
	h := ev.Host
	switch ev.Kind {
	case EvRead:
		return m.read(s, h)
	case EvWrite:
		return m.write(s, h)
	case EvEvict:
		return m.evict(s, h), false
	case EvPromote:
		s.PageOwn = int8(h)
		return s, false
	case EvRevoke:
		return m.revoke(s, h), false
	}
	panic("check: unknown event")
}

func (m *model) read(s State, h int) (State, bool) {
	switch s.Cache[h] {
	case S, M, ME:
		return s, !s.CacheUTD[h] // cache hit
	}
	// Miss paths.
	switch {
	case int(s.BitOwner) == h:
		// Case ③: I' → ME, served from local memory.
		stale := !s.LocalUTD
		s.Cache[h] = ME
		s.CacheUTD[h] = s.LocalUTD
		return s, stale
	case s.BitOwner != none:
		// Inter-host read of a migrated line.
		g := int(s.BitOwner)
		if s.Cache[g] == ME {
			// Case ⑥: owner downgrades ME→S, line migrates back, both
			// hosts share; CXL updated by the writeback.
			stale := !s.CacheUTD[g]
			s.Cache[g] = S
			s.Cache[h] = S
			s.CacheUTD[h] = s.CacheUTD[g]
			s.CXLUTD = s.CacheUTD[g]
			s.BitOwner = none
			return s, stale
		}
		// Case ②: pure I' — fetch from owner's local memory, write back to
		// CXL, requester caches in M (exclusive fill per the paper).
		stale := !s.LocalUTD
		s.CXLUTD = s.LocalUTD
		s.Cache[h] = M
		s.CacheUTD[h] = s.LocalUTD
		s.BitOwner = none
		return s, stale
	}
	// Plain CXL-DSM MSI read.
	for g := 0; g < m.opt.Hosts; g++ {
		if g != h && s.Cache[g] == M {
			// Owner forwards and downgrades; CXL updated.
			stale := !s.CacheUTD[g]
			s.Cache[g] = S
			s.CXLUTD = s.CacheUTD[g]
			s.Cache[h] = S
			s.CacheUTD[h] = s.CacheUTD[g]
			return s, stale
		}
	}
	stale := !s.CXLUTD
	s.Cache[h] = S
	s.CacheUTD[h] = s.CXLUTD
	return s, stale
}

func (m *model) write(s State, h int) (State, bool) {
	stale := false
	switch s.Cache[h] {
	case M, ME:
		// Write hit with ownership.
	case S:
		// Upgrade: invalidate all other sharers.
		for g := 0; g < m.opt.Hosts; g++ {
			if g != h && s.Cache[g] == S {
				s.Cache[g] = I
				s.CacheUTD[g] = false
			}
		}
		s.Cache[h] = M
	case I:
		switch {
		case int(s.BitOwner) == h:
			// Case ③ then write: fill from local memory into ME.
			stale = !s.LocalUTD
			s.Cache[h] = ME
		case s.BitOwner != none:
			// Cases ②/⑤: pull the migrated line back, invalidating the
			// owner's copy; requester takes M.
			g := int(s.BitOwner)
			if s.Cache[g] == ME {
				stale = !s.CacheUTD[g]
				s.Cache[g] = I
				s.CacheUTD[g] = false
			} else {
				stale = !s.LocalUTD
			}
			s.CXLUTD = true // migrate-back writeback (pre-write value)
			s.BitOwner = none
			s.Cache[h] = M
		default:
			// MSI write miss: invalidate every copy, take M.
			for g := 0; g < m.opt.Hosts; g++ {
				if g == h {
					continue
				}
				if s.Cache[g] == M {
					stale = stale || !s.CacheUTD[g]
				}
				s.Cache[g] = I
				s.CacheUTD[g] = false
			}
			s.Cache[h] = M
		}
	}
	// The write makes h's copy the unique latest version.
	for g := range s.CacheUTD {
		s.CacheUTD[g] = false
	}
	s.CacheUTD[h] = true
	s.CXLUTD = false
	s.LocalUTD = false
	return s, stale
}

func (m *model) evict(s State, h int) State {
	switch s.Cache[h] {
	case S:
		s.Cache[h] = I
		s.CacheUTD[h] = false
	case M:
		if m.opt.PIPM && int(s.PageOwn) == h {
			// Case ①: incremental migration — the writeback lands in local
			// memory and the in-memory bits flip (M → I').
			s.LocalUTD = s.CacheUTD[h]
			s.BitOwner = int8(h)
		} else {
			s.CXLUTD = s.CacheUTD[h]
		}
		s.Cache[h] = I
		s.CacheUTD[h] = false
	case ME:
		// Case ④: ME → I', dirty data back to local memory only.
		s.LocalUTD = s.CacheUTD[h]
		s.Cache[h] = I
		s.CacheUTD[h] = false
	}
	return s
}

func (m *model) revoke(s State, h int) State {
	// §4.2 ⑥: migrated blocks return to CXL memory, the local entry is
	// dropped and the page is unowned again.
	if int(s.BitOwner) == h {
		s.CXLUTD = s.LocalUTD
		s.LocalUTD = false
		s.BitOwner = none
	}
	if s.Cache[h] == ME {
		// A cached migrated block becomes an ordinary dirty CXL block.
		s.Cache[h] = M
	}
	s.PageOwn = none
	return s
}
