package check

// Parallel explicit-state exploration of a generalized protocol instance.
//
// The sequential checker (Run) is deliberately small: one cache line, at
// most three hosts, a plain BFS over a Go map. That reproduces the paper's
// Murφ run but stops exactly where the interesting interleavings start —
// partial migration is a *page* mechanism, so the first instance where two
// lines of the same page interact through the shared page-ownership state
// (promote/revoke affects both lines at once, incremental migration flips
// per-line bits independently) needs two lines; and four hosts is the
// smallest count where two disjoint host pairs can race for the same page.
//
// PRun explores that space with a sharded worker pool: states are packed
// into 64-bit keys, each worker owns a shard of the visited set (no locks —
// successors are routed to their owning shard between BFS levels), and the
// frontier is expanded level-synchronously so violation reporting stays
// deterministic regardless of goroutine scheduling.

import (
	"fmt"
	"runtime"
	"sync"
)

// Generalized instance bounds. Host IDs and line indices are packed into
// 3-bit fields; widening either is a representation change, so the bounds
// are explicit constants rather than options.
const (
	MaxHosts = 4
	MaxLines = 2
)

// PLine is one cache line's global protocol state in the generalized model.
// Semantics match State field-for-field; only the host arity differs.
type PLine struct {
	Cache    [MaxHosts]CacheState
	CacheUTD [MaxHosts]bool
	CXLUTD   bool
	LocalUTD bool
	BitOwner int8
}

// PState is one global state of the generalized instance: up to MaxLines
// lines of the *same* page, coupled through PageOwn (partial migration is a
// page-granularity decision; in-memory bits are per line).
type PState struct {
	Lines   [MaxLines]PLine
	PageOwn int8
}

// PEvent is a protocol stimulus in the generalized model. Promote and
// Revoke are page events; Line is meaningful only for Read/Write/Evict.
type PEvent struct {
	Kind EventKind
	Host int
	Line int
}

func (e PEvent) String() string {
	if e.Kind == EvPromote || e.Kind == EvRevoke {
		return fmt.Sprintf("%v(h%d)", e.Kind, e.Host)
	}
	return fmt.Sprintf("%v(h%d,l%d)", e.Kind, e.Host, e.Line)
}

// PViolation describes an invariant failure found by PRun.
type PViolation struct {
	Rule  string
	State PState
	Path  []PEvent
}

func (v *PViolation) Error() string {
	return fmt.Sprintf("check: %s violated after %v (state %+v)", v.Rule, v.Path, v.State)
}

// POptions selects the generalized instance.
type POptions struct {
	Hosts   int // 2..4
	Lines   int // 1..2 (lines of one shared page)
	PIPM    bool
	Workers int // worker/shard count; 0 = GOMAXPROCS
}

// PResult summarizes a completed parallel run.
type PResult struct {
	States      int
	Transitions int
	Depth       int // BFS depth of the deepest reachable state
	Workers     int
}

// ------------------------------------------------------------- packing --

// pkey is a PState packed into 64 bits: per line 17 bits (4 hosts × (2-bit
// cache state + 1 UTD bit) + CXLUTD + LocalUTD + 3-bit BitOwner), then a
// 3-bit PageOwn — 37 bits for the full 2-line instance.
type pkey uint64

const (
	bitsPerHost = 3   // cache state (2) + UTD (1)
	bitsPerLine = 17  // 4 hosts × 3 + CXLUTD + LocalUTD + BitOwner(3)
	ownNone     = 0x7 // BitOwner/PageOwn "none" in packed form
)

func encode(s *PState) pkey {
	var k uint64
	shift := uint(0)
	for l := 0; l < MaxLines; l++ {
		ln := &s.Lines[l]
		for h := 0; h < MaxHosts; h++ {
			f := uint64(ln.Cache[h])
			if ln.CacheUTD[h] {
				f |= 4
			}
			k |= f << shift
			shift += bitsPerHost
		}
		var f uint64
		if ln.CXLUTD {
			f |= 1
		}
		if ln.LocalUTD {
			f |= 2
		}
		k |= f << shift
		shift += 2
		k |= packOwner(ln.BitOwner) << shift
		shift += 3
	}
	k |= packOwner(s.PageOwn) << shift
	return pkey(k)
}

func decode(k pkey) PState {
	var s PState
	shift := uint(0)
	for l := 0; l < MaxLines; l++ {
		ln := &s.Lines[l]
		for h := 0; h < MaxHosts; h++ {
			f := (uint64(k) >> shift) & 7
			ln.Cache[h] = CacheState(f & 3)
			ln.CacheUTD[h] = f&4 != 0
			shift += bitsPerHost
		}
		f := (uint64(k) >> shift) & 3
		ln.CXLUTD = f&1 != 0
		ln.LocalUTD = f&2 != 0
		shift += 2
		ln.BitOwner = unpackOwner((uint64(k) >> shift) & 7)
		shift += 3
	}
	s.PageOwn = unpackOwner((uint64(k) >> shift) & 7)
	return s
}

func packOwner(o int8) uint64 {
	if o == none {
		return ownNone
	}
	return uint64(o)
}

func unpackOwner(f uint64) int8 {
	if f == ownNone {
		return none
	}
	return int8(f)
}

// hash spreads a packed key over shards (fibonacci hashing; the packed
// fields are heavily correlated, so identity sharding would skew).
func (k pkey) hash() uint64 {
	x := uint64(k) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 29
	return x
}

// --------------------------------------------------------- transitions --

// pmodel carries the instance options through the transition functions.
type pmodel struct {
	hosts int
	lines int
	pipm  bool
}

func pInitial() PState {
	s := PState{PageOwn: none}
	for l := range s.Lines {
		s.Lines[l].CXLUTD = true
		s.Lines[l].BitOwner = none
	}
	return s
}

// enabled lists the stimuli applicable in s.
func (m *pmodel) enabled(s *PState) []PEvent {
	evs := make([]PEvent, 0, m.lines*m.hosts*3+m.hosts)
	for l := 0; l < m.lines; l++ {
		for h := 0; h < m.hosts; h++ {
			evs = append(evs, PEvent{EvRead, h, l}, PEvent{EvWrite, h, l})
			if s.Lines[l].Cache[h] != I {
				evs = append(evs, PEvent{EvEvict, h, l})
			}
		}
	}
	if m.pipm {
		if s.PageOwn == none {
			for h := 0; h < m.hosts; h++ {
				evs = append(evs, PEvent{EvPromote, h, 0})
			}
		} else {
			evs = append(evs, PEvent{EvRevoke, int(s.PageOwn), 0})
		}
	}
	return evs
}

// apply executes one event atomically, returning the successor and whether
// a read observed a stale value. Semantics mirror model.go generalized to
// N hosts and multiple lines coupled through PageOwn.
func (m *pmodel) apply(s PState, ev PEvent) (PState, bool) {
	h := ev.Host
	switch ev.Kind {
	case EvRead:
		stale := m.read(&s, &s.Lines[ev.Line], h)
		return s, stale
	case EvWrite:
		stale := m.write(&s.Lines[ev.Line], h)
		return s, stale
	case EvEvict:
		m.evict(&s, &s.Lines[ev.Line], h)
		return s, false
	case EvPromote:
		s.PageOwn = int8(h)
		return s, false
	case EvRevoke:
		m.revoke(&s, h)
		return s, false
	}
	panic("check: unknown event")
}

func (m *pmodel) read(s *PState, ln *PLine, h int) bool {
	switch ln.Cache[h] {
	case S, M, ME:
		return !ln.CacheUTD[h] // cache hit
	}
	switch {
	case int(ln.BitOwner) == h:
		// Case ③: I' → ME, served from local memory.
		stale := !ln.LocalUTD
		ln.Cache[h] = ME
		ln.CacheUTD[h] = ln.LocalUTD
		return stale
	case ln.BitOwner != none:
		g := int(ln.BitOwner)
		if ln.Cache[g] == ME {
			// Case ⑥: owner downgrades ME→S, line migrates back.
			stale := !ln.CacheUTD[g]
			ln.Cache[g] = S
			ln.Cache[h] = S
			ln.CacheUTD[h] = ln.CacheUTD[g]
			ln.CXLUTD = ln.CacheUTD[g]
			ln.BitOwner = none
			return stale
		}
		// Case ②: pure I' — fetch from owner's local memory.
		stale := !ln.LocalUTD
		ln.CXLUTD = ln.LocalUTD
		ln.Cache[h] = M
		ln.CacheUTD[h] = ln.LocalUTD
		ln.BitOwner = none
		return stale
	}
	// Plain CXL-DSM MSI read.
	for g := 0; g < m.hosts; g++ {
		if g != h && ln.Cache[g] == M {
			stale := !ln.CacheUTD[g]
			ln.Cache[g] = S
			ln.CXLUTD = ln.CacheUTD[g]
			ln.Cache[h] = S
			ln.CacheUTD[h] = ln.CacheUTD[g]
			return stale
		}
	}
	stale := !ln.CXLUTD
	ln.Cache[h] = S
	ln.CacheUTD[h] = ln.CXLUTD
	return stale
}

func (m *pmodel) write(ln *PLine, h int) bool {
	stale := false
	switch ln.Cache[h] {
	case M, ME:
		// Write hit with ownership.
	case S:
		for g := 0; g < m.hosts; g++ {
			if g != h && ln.Cache[g] == S {
				ln.Cache[g] = I
				ln.CacheUTD[g] = false
			}
		}
		ln.Cache[h] = M
	case I:
		switch {
		case int(ln.BitOwner) == h:
			stale = !ln.LocalUTD
			ln.Cache[h] = ME
		case ln.BitOwner != none:
			g := int(ln.BitOwner)
			if ln.Cache[g] == ME {
				stale = !ln.CacheUTD[g]
				ln.Cache[g] = I
				ln.CacheUTD[g] = false
			} else {
				stale = !ln.LocalUTD
			}
			ln.CXLUTD = true // migrate-back writeback (pre-write value)
			ln.BitOwner = none
			ln.Cache[h] = M
		default:
			for g := 0; g < m.hosts; g++ {
				if g == h {
					continue
				}
				if ln.Cache[g] == M {
					stale = stale || !ln.CacheUTD[g]
				}
				ln.Cache[g] = I
				ln.CacheUTD[g] = false
			}
			ln.Cache[h] = M
		}
	}
	for g := range ln.CacheUTD {
		ln.CacheUTD[g] = false
	}
	ln.CacheUTD[h] = true
	ln.CXLUTD = false
	ln.LocalUTD = false
	return stale
}

func (m *pmodel) evict(s *PState, ln *PLine, h int) {
	switch ln.Cache[h] {
	case S:
		ln.Cache[h] = I
		ln.CacheUTD[h] = false
	case M:
		if m.pipm && int(s.PageOwn) == h {
			// Case ①: incremental migration (M → I').
			ln.LocalUTD = ln.CacheUTD[h]
			ln.BitOwner = int8(h)
		} else {
			ln.CXLUTD = ln.CacheUTD[h]
		}
		ln.Cache[h] = I
		ln.CacheUTD[h] = false
	case ME:
		// Case ④: ME → I', dirty data back to local memory only.
		ln.LocalUTD = ln.CacheUTD[h]
		ln.Cache[h] = I
		ln.CacheUTD[h] = false
	}
}

// revoke returns every migrated block of the page to CXL memory (§4.2 ⑥):
// page-granularity, so it acts on all lines at once.
func (m *pmodel) revoke(s *PState, h int) {
	for l := 0; l < m.lines; l++ {
		ln := &s.Lines[l]
		if int(ln.BitOwner) == h {
			ln.CXLUTD = ln.LocalUTD
			ln.LocalUTD = false
			ln.BitOwner = none
		}
		if ln.Cache[h] == ME {
			// A cached migrated block becomes an ordinary dirty CXL block.
			ln.Cache[h] = M
		}
	}
	s.PageOwn = none
}

// checkInvariants returns the violated rule's name, or "".
func (m *pmodel) checkInvariants(s *PState) string {
	for l := 0; l < m.lines; l++ {
		ln := &s.Lines[l]
		writers, sharers := 0, 0
		for h := 0; h < m.hosts; h++ {
			switch ln.Cache[h] {
			case M, ME:
				writers++
				if !ln.CacheUTD[h] {
					return "owner-holds-latest: M/ME copy is stale"
				}
			case S:
				sharers++
				if !ln.CacheUTD[h] {
					return "sharers-clean: S copy is stale"
				}
			}
			if ln.Cache[h] == ME && (int(ln.BitOwner) != h || int(s.PageOwn) != h) {
				return "ME-implies-migrated-here"
			}
		}
		if writers > 1 {
			return "SWMR: two writers"
		}
		if writers == 1 && sharers > 0 {
			return "SWMR: writer coexists with readers"
		}
		if ln.BitOwner != none && ln.BitOwner != s.PageOwn {
			return "bit-consistency: in-memory bit outside the owning page"
		}
		anyUTD := ln.CXLUTD || (ln.BitOwner != none && ln.LocalUTD)
		for h := 0; h < m.hosts; h++ {
			if ln.Cache[h] != I && ln.CacheUTD[h] {
				anyUTD = true
			}
		}
		if !anyUTD {
			return "value-lost: no location holds the latest version"
		}
	}
	return ""
}

// ----------------------------------------------------------- exploration --

// pedge records how a state was first reached, for witness reconstruction.
type pedge struct {
	parent pkey
	via    PEvent
}

// routed is one successor en route to its owning shard.
type routed struct {
	key    pkey
	parent pkey
	via    PEvent
}

// foundViolation is a violation candidate located during one BFS level;
// ties are broken by (shard, order) so reporting is deterministic.
type foundViolation struct {
	shard int
	order int
	rule  string
	state pkey
	// extraEv extends the witness path beyond the path to `state` (used
	// for stale reads, where the violating event is the last step).
	extraEv  PEvent
	hasExtra bool
}

// PRun explores the generalized protocol instance with a sharded parallel
// BFS and returns the first invariant violation found, if any.
func PRun(opt POptions) (PResult, *PViolation) {
	if opt.Hosts < 2 || opt.Hosts > MaxHosts {
		panic(fmt.Sprintf("check: Hosts must be 2..%d", MaxHosts))
	}
	if opt.Lines < 1 || opt.Lines > MaxLines {
		panic(fmt.Sprintf("check: Lines must be 1..%d", MaxLines))
	}
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 64 {
		workers = 64
	}

	m := &pmodel{hosts: opt.Hosts, lines: opt.Lines, pipm: opt.PIPM}
	res := PResult{Workers: workers}

	start := pInitial()
	startKey := encode(&start)
	startShard := int(startKey.hash() % uint64(workers))

	seen := make([]map[pkey]pedge, workers)
	frontier := make([][]pkey, workers)
	for i := range seen {
		seen[i] = make(map[pkey]pedge)
	}
	seen[startShard][startKey] = pedge{parent: startKey}
	frontier[startShard] = []pkey{startKey}

	// outbox[src][dst] holds successors worker src discovered for shard dst.
	outbox := make([][][]routed, workers)
	for i := range outbox {
		outbox[i] = make([][]routed, workers)
	}
	transitions := make([]int, workers)
	violations := make([]*foundViolation, workers)

	depth := 0
	for {
		// Expansion phase: each worker expands its own shard's frontier,
		// routing successors by hash. No shared writes.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				order := 0
				for _, key := range frontier[w] {
					st := decode(key)
					if rule := m.checkInvariants(&st); rule != "" {
						if violations[w] == nil {
							violations[w] = &foundViolation{shard: w, order: order, rule: rule, state: key}
						}
						return
					}
					for _, ev := range m.enabled(&st) {
						next, stale := m.apply(st, ev)
						transitions[w]++
						if stale {
							if violations[w] == nil {
								violations[w] = &foundViolation{
									shard: w, order: order,
									rule:    "SC-per-location: read returned a stale value",
									state:   key,
									extraEv: ev, hasExtra: true,
								}
							}
							return
						}
						nk := encode(&next)
						dst := int(nk.hash() % uint64(workers))
						outbox[w][dst] = append(outbox[w][dst], routed{key: nk, parent: key, via: ev})
					}
					order++
				}
			}(w)
		}
		wg.Wait()

		// Deterministic violation selection across the level.
		var best *foundViolation
		for _, v := range violations {
			if v == nil {
				continue
			}
			if best == nil || v.shard < best.shard || (v.shard == best.shard && v.order < best.order) {
				best = v
			}
		}
		if best != nil {
			for w := 0; w < workers; w++ {
				res.Transitions += transitions[w]
				res.States += len(seen[w])
			}
			res.Depth = depth
			return res, reconstruct(m, best, seen, workers)
		}

		// Merge phase: each worker folds incoming successors into its own
		// shard and builds the next frontier. Again no shared writes.
		grew := false
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				frontier[w] = frontier[w][:0]
				for src := 0; src < workers; src++ {
					for _, r := range outbox[src][w] {
						if _, ok := seen[w][r.key]; ok {
							continue
						}
						seen[w][r.key] = pedge{parent: r.parent, via: r.via}
						frontier[w] = append(frontier[w], r.key)
					}
					outbox[src][w] = outbox[src][w][:0]
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if len(frontier[w]) > 0 {
				grew = true
			}
		}
		if !grew {
			break
		}
		depth++
	}

	for w := 0; w < workers; w++ {
		res.Transitions += transitions[w]
		res.States += len(seen[w])
	}
	res.Depth = depth
	return res, nil
}

// reconstruct rebuilds the witness path by chasing parent edges across the
// sharded visited sets.
func reconstruct(m *pmodel, v *foundViolation, seen []map[pkey]pedge, workers int) *PViolation {
	var path []PEvent
	key := v.state
	for {
		shard := int(key.hash() % uint64(workers))
		e, ok := seen[shard][key]
		if !ok || e.parent == key {
			break
		}
		path = append([]PEvent{e.via}, path...)
		key = e.parent
	}
	st := decode(v.state)
	if v.hasExtra {
		// The violating step itself (a stale read) ends the witness path.
		st, _ = m.apply(st, v.extraEv)
		path = append(path, v.extraEv)
	}
	return &PViolation{Rule: v.rule, State: st, Path: path}
}
