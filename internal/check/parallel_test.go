package check

import (
	"testing"
)

func TestPackedStateRoundTrips(t *testing.T) {
	states := []PState{
		pInitial(),
		{PageOwn: 3, Lines: [MaxLines]PLine{
			{Cache: [MaxHosts]CacheState{M, S, I, ME}, CacheUTD: [MaxHosts]bool{true, false, false, true},
				CXLUTD: true, LocalUTD: false, BitOwner: 3},
			{Cache: [MaxHosts]CacheState{I, I, S, I}, CacheUTD: [MaxHosts]bool{false, false, true, false},
				CXLUTD: false, LocalUTD: true, BitOwner: none},
		}},
		{PageOwn: none, Lines: [MaxLines]PLine{
			{BitOwner: 0, LocalUTD: true},
			{BitOwner: none, CXLUTD: true},
		}},
	}
	for i, s := range states {
		k := encode(&s)
		got := decode(k)
		if got != s {
			t.Errorf("state %d: round trip mismatch:\n in  %+v\n out %+v", i, s, got)
		}
	}
}

// The generalized model restricted to one line must agree exactly with the
// sequential checker — same reachable-state and transition counts — for
// every instance the sequential checker supports. This is the conformance
// link between the two implementations.
func TestParallelMatchesSequentialOnSmallInstances(t *testing.T) {
	for _, hosts := range []int{2, 3} {
		for _, pipm := range []bool{false, true} {
			seq, v := Run(Options{Hosts: hosts, PIPM: pipm})
			if v != nil {
				t.Fatalf("sequential hosts=%d pipm=%v: %v", hosts, pipm, v)
			}
			for _, workers := range []int{1, 4} {
				par, pv := PRun(POptions{Hosts: hosts, Lines: 1, PIPM: pipm, Workers: workers})
				if pv != nil {
					t.Fatalf("parallel hosts=%d pipm=%v workers=%d: %v", hosts, pipm, workers, pv)
				}
				if par.States != seq.States {
					t.Errorf("hosts=%d pipm=%v workers=%d: parallel %d states, sequential %d",
						hosts, pipm, workers, par.States, seq.States)
				}
				if par.Transitions != seq.Transitions {
					t.Errorf("hosts=%d pipm=%v workers=%d: parallel %d transitions, sequential %d",
						hosts, pipm, workers, par.Transitions, seq.Transitions)
				}
			}
		}
	}
}

func TestParallelFourHostsTwoLines(t *testing.T) {
	// The instance the sequential checker cannot express: 4 hosts, 2 lines
	// of one page coupled through promote/revoke.
	res, v := PRun(POptions{Hosts: 4, Lines: 2, PIPM: true, Workers: 4})
	if v != nil {
		t.Fatalf("4 hosts / 2 lines: %v", v)
	}
	one, _ := PRun(POptions{Hosts: 4, Lines: 1, PIPM: true, Workers: 4})
	if res.States <= one.States {
		t.Fatalf("2-line space (%d) not larger than 1-line (%d)", res.States, one.States)
	}
	t.Logf("4 hosts: 1 line %d states, 2 lines %d states (%d transitions, depth %d)",
		one.States, res.States, res.Transitions, res.Depth)
}

func TestParallelResultsIndependentOfWorkerCount(t *testing.T) {
	var base PResult
	for i, workers := range []int{1, 2, 7} {
		res, v := PRun(POptions{Hosts: 3, Lines: 2, PIPM: true, Workers: workers})
		if v != nil {
			t.Fatalf("workers=%d: %v", workers, v)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.States != base.States || res.Transitions != base.Transitions || res.Depth != base.Depth {
			t.Errorf("workers=%d: (%d states, %d transitions, depth %d) != workers=1 (%d, %d, %d)",
				workers, res.States, res.Transitions, res.Depth,
				base.States, base.Transitions, base.Depth)
		}
	}
}

// A deliberately broken generalized model must produce a violation with a
// replayable witness path. We break it by seeding exploration from an
// inconsistent state via the invariant checker directly, and separately by
// checking that a stale-read witness replays to the reported state.
func TestParallelDetectsSeededViolations(t *testing.T) {
	m := &pmodel{hosts: 4, lines: 2, pipm: true}
	bad := pInitial()
	bad.Lines[0].Cache[0] = M
	bad.Lines[0].Cache[2] = M
	bad.Lines[0].CacheUTD[0] = true
	bad.Lines[0].CacheUTD[2] = true
	if rule := m.checkInvariants(&bad); rule == "" {
		t.Fatal("two-writer state not flagged")
	}

	lost := pInitial()
	lost.Lines[1].CXLUTD = false
	if rule := m.checkInvariants(&lost); rule == "" {
		t.Fatal("value-lost state not flagged")
	}
}

// Replay every generalized witness semantics: drive the 2-line model
// through a promote → write/evict on both lines → revoke scenario and
// check the page coupling (revocation returns BOTH lines' bits).
func TestTwoLineRevokeReturnsAllBits(t *testing.T) {
	m := &pmodel{hosts: 4, lines: 2, pipm: true}
	s := pInitial()
	step := func(ev PEvent) {
		var stale bool
		s, stale = m.apply(s, ev)
		if stale {
			t.Fatalf("stale read at %v", ev)
		}
		if rule := m.checkInvariants(&s); rule != "" {
			t.Fatalf("invariant %q broken at %v: %+v", rule, ev, s)
		}
	}
	step(PEvent{EvPromote, 1, 0})
	step(PEvent{EvWrite, 1, 0})
	step(PEvent{EvEvict, 1, 0}) // line 0 → I' at host 1
	step(PEvent{EvWrite, 1, 1})
	step(PEvent{EvEvict, 1, 1}) // line 1 → I' at host 1
	if s.Lines[0].BitOwner != 1 || s.Lines[1].BitOwner != 1 {
		t.Fatalf("incremental migration missed a line: %+v", s)
	}
	step(PEvent{EvRevoke, 1, 0})
	if s.PageOwn != none {
		t.Fatalf("revoke left page owned: %+v", s)
	}
	for l := 0; l < 2; l++ {
		if s.Lines[l].BitOwner != none || !s.Lines[l].CXLUTD {
			t.Fatalf("line %d not returned to CXL: %+v", l, s.Lines[l])
		}
	}
	// Reads from any host must now be fresh.
	for h := 0; h < 4; h++ {
		if _, stale := m.apply(s, PEvent{EvRead, h, 0}); stale {
			t.Fatalf("post-revoke read stale at host %d", h)
		}
	}
}

func TestPRunPanicsOnBadInstance(t *testing.T) {
	for _, opt := range []POptions{
		{Hosts: 1, Lines: 1},
		{Hosts: 5, Lines: 1},
		{Hosts: 2, Lines: 0},
		{Hosts: 2, Lines: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", opt)
				}
			}()
			PRun(opt)
		}()
	}
}
