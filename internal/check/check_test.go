package check

import (
	"strings"
	"testing"
)

func TestBaseMSIProtocolIsCorrect(t *testing.T) {
	for _, hosts := range []int{2, 3} {
		res, v := Run(Options{Hosts: hosts, PIPM: false})
		if v != nil {
			t.Fatalf("MSI/%d hosts: %v", hosts, v)
		}
		if res.States < 5 {
			t.Fatalf("MSI/%d hosts: only %d states explored", hosts, res.States)
		}
		if !res.DeadlockFree {
			t.Fatalf("MSI/%d hosts: deadlock reported", hosts)
		}
	}
}

func TestPIPMProtocolIsCorrect(t *testing.T) {
	for _, hosts := range []int{2, 3} {
		res, v := Run(Options{Hosts: hosts, PIPM: true})
		if v != nil {
			t.Fatalf("PIPM/%d hosts: %v", hosts, v)
		}
		if !res.DeadlockFree {
			t.Fatalf("PIPM/%d hosts: deadlock reported", hosts)
		}
		// The PIPM space must strictly contain the MSI space (new states
		// from ME/I'/ownership).
		msi, _ := Run(Options{Hosts: hosts, PIPM: false})
		if res.States <= msi.States {
			t.Fatalf("PIPM explored %d states, MSI %d — extension added nothing",
				res.States, msi.States)
		}
	}
}

func TestPIPMReachesMigratedStates(t *testing.T) {
	// Drive a concrete scenario through the transition function and check
	// the interesting states are actually exercised: promote → write →
	// evict (incremental migration, I') → re-read (ME) → inter-host read
	// (migrate back).
	m := &model{opt: Options{Hosts: 2, PIPM: true}}
	s := initialState()
	step := func(ev Event) {
		var stale bool
		s, stale = m.apply(s, ev)
		if stale {
			t.Fatalf("stale read at %v", ev)
		}
		if rule := m.checkInvariants(s); rule != "" {
			t.Fatalf("invariant %q broken at %v: %+v", rule, ev, s)
		}
	}
	step(Event{EvPromote, 0})
	if s.PageOwn != 0 {
		t.Fatal("promote failed")
	}
	step(Event{EvWrite, 0})
	if s.Cache[0] != M {
		t.Fatalf("cache[0] = %v, want M", s.Cache[0])
	}
	step(Event{EvEvict, 0})
	if s.BitOwner != 0 || s.Cache[0] != I || !s.LocalUTD {
		t.Fatalf("incremental migration failed: %+v", s)
	}
	step(Event{EvRead, 0})
	if s.Cache[0] != ME {
		t.Fatalf("I' re-read gave %v, want ME", s.Cache[0])
	}
	step(Event{EvRead, 1})
	if s.BitOwner != none {
		t.Fatalf("inter-host read did not migrate back: %+v", s)
	}
	if s.Cache[0] != S || s.Cache[1] != S {
		t.Fatalf("case ⑥ should leave both hosts in S: %+v", s)
	}
	if !s.CXLUTD {
		t.Fatal("migrate-back did not update CXL memory")
	}
}

func TestPIPMCase2PureIPrime(t *testing.T) {
	m := &model{opt: Options{Hosts: 2, PIPM: true}}
	s := initialState()
	for _, ev := range []Event{{EvPromote, 0}, {EvWrite, 0}, {EvEvict, 0}} {
		s, _ = m.apply(s, ev)
	}
	// Line is I' at host 0 (not cached). Host 1 reads: case ② — requester
	// fills M, bit clears, CXL updated.
	s2, stale := m.apply(s, Event{EvRead, 1})
	if stale {
		t.Fatal("case ② returned stale data")
	}
	if s2.Cache[1] != M || s2.BitOwner != none || !s2.CXLUTD {
		t.Fatalf("case ② end state: %+v", s2)
	}
}

func TestPIPMCase5InterWriteInvalidatesME(t *testing.T) {
	m := &model{opt: Options{Hosts: 2, PIPM: true}}
	s := initialState()
	for _, ev := range []Event{{EvPromote, 0}, {EvWrite, 0}, {EvEvict, 0}, {EvRead, 0}} {
		s, _ = m.apply(s, ev)
	}
	if s.Cache[0] != ME {
		t.Fatalf("setup failed: %+v", s)
	}
	s2, stale := m.apply(s, Event{EvWrite, 1})
	if stale {
		t.Fatal("case ⑤ read stale data")
	}
	if s2.Cache[0] != I || s2.Cache[1] != M || s2.BitOwner != none {
		t.Fatalf("case ⑤ end state: %+v", s2)
	}
	if !s2.CacheUTD[1] || s2.CXLUTD || s2.LocalUTD {
		t.Fatalf("after inter-write, only the writer may be latest: %+v", s2)
	}
}

func TestRevokeRestoresCXLBacking(t *testing.T) {
	m := &model{opt: Options{Hosts: 2, PIPM: true}}
	s := initialState()
	for _, ev := range []Event{{EvPromote, 0}, {EvWrite, 0}, {EvEvict, 0}} {
		s, _ = m.apply(s, ev)
	}
	s2, _ := m.apply(s, Event{EvRevoke, 0})
	if s2.PageOwn != none || s2.BitOwner != none {
		t.Fatalf("revoke left ownership: %+v", s2)
	}
	if !s2.CXLUTD {
		t.Fatal("revoke lost the latest value")
	}
	// Reading from CXL afterwards must be fresh.
	s3, stale := m.apply(s2, Event{EvRead, 1})
	if stale || s3.Cache[1] != S {
		t.Fatalf("post-revoke read: stale=%v state=%+v", stale, s3)
	}
}

func TestCheckerDetectsInvariantViolations(t *testing.T) {
	m := &model{opt: Options{Hosts: 2, PIPM: true}}
	cases := []struct {
		name string
		st   State
		want string
	}{
		{"two writers", State{Cache: [3]CacheState{M, M, I}, CacheUTD: [3]bool{true, true, false}, BitOwner: none, PageOwn: none}, "SWMR"},
		{"writer+reader", State{Cache: [3]CacheState{M, S, I}, CacheUTD: [3]bool{true, true, false}, BitOwner: none, PageOwn: none}, "SWMR"},
		{"stale owner", State{Cache: [3]CacheState{M, I, I}, BitOwner: none, PageOwn: none, CXLUTD: true}, "owner-holds-latest"},
		{"stale sharer", State{Cache: [3]CacheState{S, I, I}, BitOwner: none, PageOwn: none, CXLUTD: true}, "sharers-clean"},
		{"orphan ME", State{Cache: [3]CacheState{ME, I, I}, CacheUTD: [3]bool{true}, BitOwner: none, PageOwn: none}, "ME-implies-migrated-here"},
		{"bit outside page", State{BitOwner: 0, PageOwn: 1, CXLUTD: true}, "bit-consistency"},
		{"value lost", State{BitOwner: none, PageOwn: none}, "value-lost"},
	}
	for _, c := range cases {
		rule := m.checkInvariants(c.st)
		if !strings.Contains(rule, strings.Split(c.want, ":")[0]) {
			t.Errorf("%s: got rule %q, want %q", c.name, rule, c.want)
		}
	}
}

// A deliberately broken protocol variant must be caught: skipping sharer
// invalidation on write upgrade leaves stale S copies that a later read
// observes. We emulate the bug by hand-driving the transition system.
func TestCheckerWouldCatchMissingInvalidation(t *testing.T) {
	m := &model{opt: Options{Hosts: 2, PIPM: false}}
	s := initialState()
	s, _ = m.apply(s, Event{EvRead, 0})
	s, _ = m.apply(s, Event{EvRead, 1}) // both S
	// Buggy upgrade: host 0 takes M without invalidating host 1.
	s.Cache[0] = M
	for g := range s.CacheUTD {
		s.CacheUTD[g] = false
	}
	s.CacheUTD[0] = true
	s.CXLUTD = false
	// Host 1 still thinks it has a valid S copy.
	if rule := m.checkInvariants(s); !strings.Contains(rule, "SWMR") && !strings.Contains(rule, "sharers-clean") {
		t.Fatalf("broken state not detected: rule=%q state=%+v", rule, s)
	}
	// And the read itself would be stale.
	if _, stale := m.read(s, 1); !stale {
		t.Fatal("stale sharer read not flagged")
	}
}

func TestEventAndStateStrings(t *testing.T) {
	if ME.String() != "ME" || I.String() != "I" {
		t.Fatal("CacheState strings wrong")
	}
	e := Event{EvWrite, 1}
	if e.String() != "Write(h1)" {
		t.Fatalf("Event.String = %q", e.String())
	}
	v := &Violation{Rule: "x", Path: []Event{e}}
	if !strings.Contains(v.Error(), "x") {
		t.Fatal("Violation.Error missing rule")
	}
}

func TestRunPanicsOnBadHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Hosts=4")
		}
	}()
	Run(Options{Hosts: 4})
}

func TestStateSpaceSizes(t *testing.T) {
	// Regression pin: exploration must terminate at a stable, finite size.
	msi2, _ := Run(Options{Hosts: 2, PIPM: false})
	pipm2, _ := Run(Options{Hosts: 2, PIPM: true})
	pipm3, _ := Run(Options{Hosts: 3, PIPM: true})
	t.Logf("states: msi2=%d pipm2=%d pipm3=%d", msi2.States, pipm2.States, pipm3.States)
	if msi2.States == 0 || pipm2.States == 0 || pipm3.States == 0 {
		t.Fatal("empty exploration")
	}
	if pipm3.States <= pipm2.States {
		t.Fatal("3-host space not larger than 2-host")
	}
}
