package silo

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/trace"
)

func testStore(t *testing.T) (*Store, config.AddressMap) {
	t.Helper()
	c := config.Default()
	c.SharedBytes = 8 << 20
	am := config.NewAddressMap(&c)
	s, err := NewStore(am, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s, am
}

func TestStoreSizing(t *testing.T) {
	s, am := testStore(t)
	if s.Records() <= 0 || s.Records()%16 != 0 {
		t.Fatalf("Records = %d, want positive warehouse multiple", s.Records())
	}
	// The last record's last line must fit the heap.
	last := s.recordAddr(s.Records()-1, RecordLines-1)
	if kind, _ := am.Region(last + config.LineBytes - 1); kind != config.RegionShared {
		t.Fatal("record heap overflows the shared region")
	}
}

func TestStoreRejectsBadShapes(t *testing.T) {
	c := config.Default()
	c.SharedBytes = 8 << 20
	am := config.NewAddressMap(&c)
	if _, err := NewStore(am, 0, 16); err == nil {
		t.Fatal("0 hosts accepted")
	}
	if _, err := NewStore(am, 4, 2); err == nil {
		t.Fatal("fewer warehouses than hosts accepted")
	}
	tiny := config.Default()
	tiny.SharedBytes = config.PageBytes
	tam := config.NewAddressMap(&tiny)
	if _, err := NewStore(tam, 4, 1<<20); err == nil {
		t.Fatal("oversized warehouse count accepted")
	}
}

func drain(t *testing.T, r trace.Reader, n int64) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if int64(len(recs)) != n {
		t.Fatalf("yielded %d records, want %d", len(recs), n)
	}
	return recs
}

func TestReadersYieldBudgetAndValidAddresses(t *testing.T) {
	s, am := testStore(t)
	for _, o := range []Op{YCSB, TPCC} {
		recs := drain(t, s.NewReader(o, 2, 1, 2, 30000, 7), 30000)
		for _, rec := range recs {
			if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
				t.Fatalf("%v: address %#x outside shared heap", o, uint64(rec.Addr))
			}
		}
	}
}

func TestReaderDeterminism(t *testing.T) {
	s, _ := testStore(t)
	a := drain(t, s.NewReader(TPCC, 1, 0, 1, 5000, 3), 5000)
	b := drain(t, s.NewReader(TPCC, 1, 0, 1, 5000, 3), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestTPCCIsHomeDominated(t *testing.T) {
	s, am := testStore(t)
	recs := drain(t, s.NewReader(TPCC, 0, 0, 1, 60000, 1), 60000)
	per := s.Records() / s.warehouses
	lo, hi := s.homeWarehouses(0)
	recBase := int64(config.Addr(s.Records()*8)+config.LineBytes-1) &^ (config.LineBytes - 1)
	home, remote := 0, 0
	for _, rec := range recs {
		off := int64(rec.Addr - am.SharedAddr(0))
		if off < recBase {
			continue // directory access
		}
		key := (off - recBase) / (RecordLines * config.LineBytes)
		w := key / per
		if w >= lo && w < hi {
			home++
		} else {
			remote++
		}
	}
	frac := float64(home) / float64(home+remote)
	if frac < 0.7 {
		t.Fatalf("home-warehouse record share = %.2f, want ≥ 0.7 (85%% home txns)", frac)
	}
	if remote == 0 {
		t.Fatal("no remote-warehouse traffic at all")
	}
}

func TestYCSBIsGloballyScattered(t *testing.T) {
	s, am := testStore(t)
	recs := drain(t, s.NewReader(YCSB, 0, 0, 1, 60000, 1), 60000)
	per := s.Records() / s.warehouses
	lo, hi := s.homeWarehouses(0)
	recBase := int64(config.Addr(s.Records()*8)+config.LineBytes-1) &^ (config.LineBytes - 1)
	home, total := 0, 0
	for _, rec := range recs {
		off := int64(rec.Addr - am.SharedAddr(0))
		if off < recBase {
			continue
		}
		key := (off - recBase) / (RecordLines * config.LineBytes)
		w := key / per
		total++
		if w >= lo && w < hi {
			home++
		}
	}
	// Host 0 owns a quarter of the warehouses; YCSB spreads uniformly.
	if frac := float64(home) / float64(total); frac > 0.45 {
		t.Fatalf("YCSB home share = %.2f, should be scattered (~0.25)", frac)
	}
}

func TestWriteMixes(t *testing.T) {
	s, _ := testStore(t)
	writeFrac := func(o Op) float64 {
		recs := drain(t, s.NewReader(o, 1, 0, 1, 40000, 2), 40000)
		w := 0
		for _, rec := range recs {
			if rec.Write {
				w++
			}
		}
		return float64(w) / float64(len(recs))
	}
	y := writeFrac(YCSB)
	tp := writeFrac(TPCC)
	if y < 0.03 || y > 0.15 {
		t.Fatalf("YCSB write fraction %.2f, want ≈ 0.07 (R:W 4:1 on records)", y)
	}
	if tp < 0.2 || tp > 0.5 {
		t.Fatalf("TPC-C write fraction %.2f, want ≈ 0.3", tp)
	}
	if tp <= y {
		t.Fatal("TPC-C should write more than YCSB")
	}
}

func TestOpStrings(t *testing.T) {
	if YCSB.String() != "ycsb" || TPCC.String() != "tpcc" {
		t.Fatal("Op strings wrong")
	}
}

func TestBadHostPanics(t *testing.T) {
	s, _ := testStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.NewReader(YCSB, 4, 0, 1, 10, 1)
}
