// Package silo is a miniature in-memory store in the spirit of Silo (the
// paper's database substrate for TPC-C and YCSB): a hash directory plus a
// fixed-size record heap laid out in the simulated machine's shared
// CXL-DSM, with operation generators that *execute* YCSB point operations
// and TPC-C-style transactions and emit every memory access they make.
// Like internal/gapbs for the graph kernels, this is the mechanistic
// counterpart to the statistical tpcc/ycsb workload models.
package silo

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/trace"
)

// RecordLines is the record payload size in cache lines (128 B records).
const RecordLines = 2

// Store describes the shared-heap layout:
//
//	buckets [R]   hash directory, 8 B per bucket         offset 0
//	records [R]   RecordLines×64 B payload each          offset 8R (line-aligned)
//
// The directory is hashed — every host reads it uniformly, so its pages are
// genuinely contested. Records are partitioned into warehouses: warehouse w
// owns a contiguous record block, and each host is home to an equal share
// of warehouses (the TPC-C association).
type Store struct {
	am         config.AddressMap
	records    int64
	hosts      int
	warehouses int64
}

// NewStore sizes a store to the shared heap: records are allocated until
// heap capacity, leaving room for the directory.
func NewStore(am config.AddressMap, hosts int, warehouses int64) (*Store, error) {
	if hosts < 1 || warehouses < int64(hosts) {
		return nil, fmt.Errorf("silo: need ≥1 host and ≥hosts warehouses")
	}
	perRecord := int64(8 + RecordLines*config.LineBytes)
	records := int64(am.SharedBytes()) / perRecord
	if records < warehouses {
		return nil, fmt.Errorf("silo: heap too small for %d warehouses", warehouses)
	}
	// Round to a warehouse multiple so partitions are equal.
	records -= records % warehouses
	return &Store{am: am, records: records, hosts: hosts, warehouses: warehouses}, nil
}

// Records returns the record count.
func (s *Store) Records() int64 { return s.records }

func (s *Store) bucketAddr(key int64) config.Addr {
	// Multiplicative hash: directory accesses spread uniformly.
	h := uint64(key) * 0x9E3779B97F4A7C15
	b := int64(h % uint64(s.records))
	return s.am.SharedAddr(config.Addr(b * 8))
}

func (s *Store) recordAddr(key int64, line int) config.Addr {
	base := config.Addr(s.records*8) + config.Addr(key)*RecordLines*config.LineBytes
	// Align the record heap to a line boundary.
	base = (base + config.LineBytes - 1) &^ (config.LineBytes - 1)
	return s.am.SharedAddr(base + config.Addr(line*config.LineBytes))
}

// homeWarehouses returns host h's warehouse range.
func (s *Store) homeWarehouses(h int) (lo, hi int64) {
	lo = int64(h) * s.warehouses / int64(s.hosts)
	hi = int64(h+1) * s.warehouses / int64(s.hosts)
	return lo, hi
}

// keyIn picks a zipf-ish key within warehouse w.
func (s *Store) keyIn(w int64, z *rand.Zipf, rng *rand.Rand) int64 {
	per := s.records / s.warehouses
	var off int64
	if z != nil {
		off = int64(z.Uint64()) % per
		// Spread hot ranks across the warehouse block.
		off = (off * 2654435761) % per
	} else {
		off = rng.Int63n(per)
	}
	return w*per + off
}

// Op selects the operation mix a reader executes.
type Op uint8

const (
	// YCSB: independent point reads/updates, zipf keys over the whole
	// store (hot keys hot for every host), R:W 4:1.
	YCSB Op = iota
	// TPCC: multi-record transactions against a home warehouse (85%) or a
	// remote one (15%), with order-line appends — the classic mix.
	TPCC
)

func (o Op) String() string {
	if o == YCSB {
		return "ycsb"
	}
	return "tpcc"
}

// NewReader returns a trace reader executing the op mix as host h / core c
// (cores per host given by cores), up to records trace records.
func (s *Store) NewReader(o Op, h, c, cores int, records, seed int64) trace.Reader {
	if h < 0 || h >= s.hosts {
		panic(fmt.Sprintf("silo: host %d out of range", h))
	}
	rng := rand.New(rand.NewSource(seed ^ int64(h)<<24 ^ int64(c)<<12 ^ int64(o)))
	r := &opReader{s: s, o: o, host: h, rng: rng, remain: records}
	r.zipf = rand.NewZipf(rng, 1.05, 1, uint64(s.records/s.warehouses-1))
	return r
}

type opReader struct {
	s    *Store
	o    Op
	host int

	rng    *rand.Rand
	zipf   *rand.Zipf
	remain int64

	buf []trace.Record
	pos int

	nextOrderLine int64 // per-reader append cursor for TPC-C inserts
}

// Next implements trace.Reader.
func (r *opReader) Next() (trace.Record, bool) {
	if r.remain <= 0 {
		return trace.Record{}, false
	}
	for r.pos >= len(r.buf) {
		r.buf = r.buf[:0]
		r.pos = 0
		if r.o == YCSB {
			r.ycsbOp()
		} else {
			r.tpccTxn()
		}
	}
	rec := r.buf[r.pos]
	r.pos++
	r.remain--
	return rec, true
}

// ycsbOp executes one point operation: directory probe, then a dependent
// record access; 20% of operations update the record.
func (r *opReader) ycsbOp() {
	w := r.rng.Int63n(r.s.warehouses) // whole store: hot keys global
	key := r.s.keyIn(w, r.zipf, r.rng)
	update := r.rng.Intn(5) == 0
	r.emit(r.s.bucketAddr(key), false, false, 12)
	for l := 0; l < RecordLines; l++ {
		r.emit(r.s.recordAddr(key, l), update && l == 0, true, 8)
	}
}

// tpccTxn executes one transaction: 85% against a home warehouse, reading
// an order record, read-modify-writing several stock records, and
// appending order-lines into the home partition.
func (r *opReader) tpccTxn() {
	lo, hi := r.s.homeWarehouses(r.host)
	w := lo + r.rng.Int63n(hi-lo)
	if r.rng.Intn(100) < 15 {
		w = r.rng.Int63n(r.s.warehouses) // remote warehouse
	}
	// Order read.
	key := r.s.keyIn(w, r.zipf, r.rng)
	r.emit(r.s.bucketAddr(key), false, false, 20)
	r.emit(r.s.recordAddr(key, 0), false, true, 10)

	// Stock read-modify-write, 4–8 items.
	items := 4 + r.rng.Intn(5)
	for i := 0; i < items; i++ {
		k := r.s.keyIn(w, r.zipf, r.rng)
		r.emit(r.s.bucketAddr(k), false, false, 10)
		r.emit(r.s.recordAddr(k, 0), false, true, 6)
		r.emit(r.s.recordAddr(k, 0), true, true, 6)
	}

	// Order-line append: sequential writes into the home partition.
	per := r.s.records / r.s.warehouses
	home := lo + (r.nextOrderLine/per)%(hi-lo)
	olKey := home*per + r.nextOrderLine%per
	r.nextOrderLine++
	for l := 0; l < RecordLines; l++ {
		r.emit(r.s.recordAddr(olKey, l), true, false, 6)
	}
}

func (r *opReader) emit(addr config.Addr, write, dep bool, gapMean int) {
	gap := uint32(r.rng.Intn(gapMean*2 + 1))
	r.buf = append(r.buf, trace.Record{Gap: gap, Addr: addr, Write: write, Dep: dep})
}
