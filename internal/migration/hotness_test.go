package migration

import (
	"math/rand"
	"testing"
)

// Property: the sparse per-page representation (hosts > denseHostCap) and a
// dense shadow agree on every observable — count, total, top (including its
// lowest-host tie-break), lead — under random record/halve/clear sequences.
func TestPageCountsSparseMatchesDense(t *testing.T) {
	const pages, hosts = 37, 256
	sp := newPageCounts(pages, hosts)
	if sp.counts != nil {
		t.Fatalf("%d hosts should use the sparse representation", hosts)
	}
	// The dense shadow bypasses newPageCounts' host-cap switch.
	dn := &pageCounts{hosts: hosts, counts: make([]uint32, pages*int64(hosts))}

	rng := rand.New(rand.NewSource(42))
	check := func(step int) {
		for page := int64(0); page < pages; page++ {
			if got, want := sp.total(page), dn.total(page); got != want {
				t.Fatalf("step %d page %d: total %d != dense %d", step, page, got, want)
			}
			sh, sc := sp.top(page)
			dh, dc := dn.top(page)
			if sh != dh || sc != dc {
				t.Fatalf("step %d page %d: top (%d,%d) != dense (%d,%d)", step, page, sh, sc, dh, dc)
			}
			sh, sm := sp.lead(page)
			dh, dm := dn.lead(page)
			if sh != dh || sm != dm {
				t.Fatalf("step %d page %d: lead (%d,%d) != dense (%d,%d)", step, page, sh, sm, dh, dm)
			}
			for _, h := range []int{0, 1, 63, 64, 200, hosts - 1, rng.Intn(hosts)} {
				if got, want := sp.count(page, h), dn.count(page, h); got != want {
					t.Fatalf("step %d page %d host %d: count %d != dense %d", step, page, h, got, want)
				}
			}
		}
		if sp.pages() != dn.pages() {
			t.Fatalf("step %d: pages %d != dense %d", step, sp.pages(), dn.pages())
		}
	}

	for step := 0; step < 40; step++ {
		for i := 0; i < 300; i++ {
			// Zipf-ish skew so ties and repeated hosts actually happen.
			h := rng.Intn(hosts)
			if rng.Intn(2) == 0 {
				h = rng.Intn(4)
			}
			p := int64(rng.Intn(pages))
			sp.record(h, p)
			dn.record(h, p)
		}
		check(step)
		switch step % 5 {
		case 3:
			sp.halve()
			dn.halve()
			check(step)
		case 4:
			if step%10 == 9 {
				sp.clear()
				dn.clear()
				check(step)
			}
		}
	}
}

// Sparse rows must stay host-ascending (record inserts in place) and drop
// zero entries on halve — the invariants count/top rely on.
func TestPageCountsSparseRowInvariants(t *testing.T) {
	pc := newPageCounts(4, 128)
	for _, h := range []int{100, 3, 77, 0, 127, 50, 3} {
		pc.record(h, 2)
	}
	row := pc.sparse[2]
	for i := 1; i < len(row); i++ {
		if row[i-1].host >= row[i].host {
			t.Fatalf("row not strictly ascending: %v", row)
		}
	}
	if pc.count(2, 3) != 2 || pc.count(2, 50) != 1 || pc.count(2, 51) != 0 {
		t.Fatalf("counts wrong: %v", row)
	}
	pc.halve() // every count-1 entry decays to zero and must vanish
	if len(pc.sparse[2]) != 1 || pc.sparse[2][0] != (hostCount{host: 3, count: 1}) {
		t.Fatalf("halve kept zero entries: %v", pc.sparse[2])
	}
}

// Saturation must hold in the sparse representation too.
func TestPageCountsSparseSaturation(t *testing.T) {
	pc := newPageCounts(1, 65)
	pc.sparse[0] = []hostCount{{host: 7, count: ^uint32(0) - 1}}
	pc.record(7, 0)
	pc.record(7, 0)
	pc.record(7, 0)
	if got := pc.count(0, 7); got != ^uint32(0) {
		t.Fatalf("count = %d, want saturated", got)
	}
}
