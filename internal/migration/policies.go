package migration

// The four kernel policies. All receive the same memory-visible access
// stream and emit page movements at epoch boundaries; they differ exactly
// where the paper says they differ — what "hot" means and whether other
// hosts' interest suppresses a migration.

// ---------------------------------------------------------------- Nomad --

// NomadPolicy is the recency-based policy (§3.2, [90]): a page touched in
// two consecutive epochs is promoted to its most recent toucher; a resident
// page untouched for demoteAfter epochs is demoted. Nomad's distinguishing
// mechanism — asynchronous transactional migration — is priced by the
// machine (no initiator stall), not here.
type NomadPolicy struct {
	counts      *pageCounts
	touchedPrev []bool
	touchedCur  []bool
	idleEpochs  []uint8
	demoteAfter uint8
}

// NewNomad builds the policy for a pool of pages across hosts.
func NewNomad(pages int64, hosts int) *NomadPolicy {
	return &NomadPolicy{
		counts:      newPageCounts(pages, hosts),
		touchedPrev: make([]bool, pages),
		touchedCur:  make([]bool, pages),
		idleEpochs:  make([]uint8, pages),
		demoteAfter: 4,
	}
}

// Name implements Policy.
func (p *NomadPolicy) Name() string { return "nomad" }

// RecordAccess implements Policy.
func (p *NomadPolicy) RecordAccess(host int, page int64, write bool) {
	p.counts.record(host, page)
	p.touchedCur[page] = true
}

// Tick implements Policy.
func (p *NomadPolicy) Tick(pt *PageTable, budgetPerHost int) []Op {
	var ops []Op
	planned := make([]int, p.counts.hosts)
	for page := int64(0); page < pt.Pages(); page++ {
		owner := pt.Owner(page)
		switch {
		case p.touchedCur[page] && p.touchedPrev[page]:
			// Recently and repeatedly touched: place at the top toucher.
			// Recency-based policies do not ask who else uses the page —
			// that blindness is what Fig. 5 measures. A resident page only
			// bounces when the new toucher clearly dominates the owner.
			h, c := p.counts.top(page)
			if c > 0 && h != owner && pt.Resident(h)+planned[h] < budgetPerHost {
				if owner == ToCXL || ownerCount(p.counts, page, owner)*2 < int64(c) {
					ops = append(ops, Op{Page: page, To: h})
					planned[h]++
				}
			}
		case owner != ToCXL && !p.touchedCur[page]:
			p.idleEpochs[page]++
			if p.idleEpochs[page] >= p.demoteAfter {
				ops = append(ops, Op{Page: page, To: ToCXL})
				p.idleEpochs[page] = 0
			}
		default:
			p.idleEpochs[page] = 0
		}
		p.touchedPrev[page] = p.touchedCur[page]
		p.touchedCur[page] = false
	}
	p.counts.halve() // recency: old counts fade fast
	return ops
}

// --------------------------------------------------------------- Memtis --

// MemtisPolicy is the frequency-based policy ([45]): per-page access counts
// with periodic decay feed a histogram; the hot threshold is chosen each
// epoch so the hot set fits the local-memory budget. Hot pages are promoted
// to their dominant accessor, resident pages falling below the threshold
// are demoted.
type MemtisPolicy struct {
	counts *pageCounts
	hosts  int
}

// NewMemtis builds the policy.
func NewMemtis(pages int64, hosts int) *MemtisPolicy {
	return &MemtisPolicy{counts: newPageCounts(pages, hosts), hosts: hosts}
}

// Name implements Policy.
func (p *MemtisPolicy) Name() string { return "memtis" }

// RecordAccess implements Policy.
func (p *MemtisPolicy) RecordAccess(host int, page int64, write bool) {
	p.counts.record(host, page)
}

// Tick implements Policy.
func (p *MemtisPolicy) Tick(pt *PageTable, budgetPerHost int) []Op {
	pages := pt.Pages()
	// Histogram of log2(total count) buckets, as Memtis builds from PEBS.
	var hist [33]int64
	for page := int64(0); page < pages; page++ {
		if t := p.counts.total(page); t > 0 {
			hist[log2u64(t)+1]++
		}
	}
	// Walk buckets hottest-first until the budget (across all hosts) fills;
	// that bucket's floor is the hot threshold.
	budget := int64(budgetPerHost * p.hosts)
	var acc int64
	threshold := uint64(1)
	for b := len(hist) - 1; b >= 1; b-- {
		acc += hist[b]
		threshold = uint64(1) << uint(b-1)
		if acc >= budget {
			break
		}
	}

	cold := threshold / 4
	if cold < 1 {
		cold = 1
	}
	var ops []Op
	planned := make([]int, p.hosts)
	pressure := make([]int, p.hosts) // resident count under eviction pressure
	for h := range pressure {
		pressure[h] = pt.Resident(h)
	}
	for page := int64(0); page < pages; page++ {
		t := p.counts.total(page)
		owner := pt.Owner(page)
		switch {
		case t >= threshold && owner == ToCXL:
			h, c := p.counts.top(page)
			if c > 0 && pt.Resident(h)+planned[h] < budgetPerHost {
				ops = append(ops, Op{Page: page, To: h})
				planned[h]++
			}
		case t >= threshold && owner != ToCXL:
			// Hot page whose dominant accessor clearly moved (2× everyone
			// else combined): follow it. Symmetric contention stays put.
			if h, c := p.counts.top(page); c > 0 && h != owner &&
				uint64(c)*3 > t*2 && pt.Resident(h)+planned[h] < budgetPerHost {
				ops = append(ops, Op{Page: page, To: h})
				planned[h]++
			}
		case t < cold && owner != ToCXL && pressure[owner] > budgetPerHost*3/4:
			// Memtis demotes under memory pressure, not merely because a
			// count decayed below the histogram threshold — otherwise
			// resident pages thrash between tiers every epoch.
			ops = append(ops, Op{Page: page, To: ToCXL})
			pressure[owner]--
		}
	}
	p.counts.halve()
	return ops
}

// ownerCount returns owner's access count for page (0 for ToCXL).
func ownerCount(pc *pageCounts, page int64, owner int) int64 {
	if owner < 0 {
		return 0
	}
	return int64(pc.count(page, owner))
}

func log2u64(x uint64) int {
	n := -1
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------- HeMem --

// HeMemPolicy is the coarser frequency policy ([68]): a fixed hotness
// threshold with periodic cooling (halving) every coolEvery epochs. Pages
// crossing the threshold promote; resident pages whose count cools to zero
// demote.
type HeMemPolicy struct {
	counts    *pageCounts
	threshold uint64
	coolEvery int
	epoch     int
}

// NewHeMem builds the policy with HeMem's canonical threshold of 8.
func NewHeMem(pages int64, hosts int) *HeMemPolicy {
	return &HeMemPolicy{counts: newPageCounts(pages, hosts), threshold: 8, coolEvery: 2}
}

// Name implements Policy.
func (p *HeMemPolicy) Name() string { return "hemem" }

// RecordAccess implements Policy.
func (p *HeMemPolicy) RecordAccess(host int, page int64, write bool) {
	p.counts.record(host, page)
}

// Tick implements Policy.
func (p *HeMemPolicy) Tick(pt *PageTable, budgetPerHost int) []Op {
	var ops []Op
	planned := make([]int, p.counts.hosts)
	for page := int64(0); page < pt.Pages(); page++ {
		t := p.counts.total(page)
		owner := pt.Owner(page)
		switch {
		case t >= p.threshold && owner == ToCXL:
			h, c := p.counts.top(page)
			if c > 0 && pt.Resident(h)+planned[h] < budgetPerHost {
				ops = append(ops, Op{Page: page, To: h})
				planned[h]++
			}
		case t >= p.threshold && owner != ToCXL:
			if h, c := p.counts.top(page); c > 0 && h != owner &&
				uint64(c)*3 > t*2 && pt.Resident(h)+planned[h] < budgetPerHost {
				ops = append(ops, Op{Page: page, To: h})
				planned[h]++
			}
		case t == 0 && owner != ToCXL:
			ops = append(ops, Op{Page: page, To: ToCXL})
		}
	}
	p.epoch++
	if p.epoch%p.coolEvery == 0 {
		p.counts.halve()
	}
	return ops
}

// -------------------------------------------------------------- OS-skew --

// OSSkewPolicy is the ablation of §5.1.3: PIPM's majority-vote promotion
// rule applied at page granularity through the kernel mechanism. A page is
// promoted only when one host's accesses exceed all other hosts' combined
// by the threshold (the vote margin), and demoted once other hosts' traffic
// erases the margin — the side-effect awareness the traditional policies
// above lack.
type OSSkewPolicy struct {
	counts    *pageCounts
	threshold int64
}

// NewOSSkew builds the policy with the PIPM migration threshold.
func NewOSSkew(pages int64, hosts int, threshold int) *OSSkewPolicy {
	return &OSSkewPolicy{counts: newPageCounts(pages, hosts), threshold: int64(threshold)}
}

// Name implements Policy.
func (p *OSSkewPolicy) Name() string { return "os-skew" }

// RecordAccess implements Policy.
func (p *OSSkewPolicy) RecordAccess(host int, page int64, write bool) {
	p.counts.record(host, page)
}

// Tick implements Policy.
func (p *OSSkewPolicy) Tick(pt *PageTable, budgetPerHost int) []Op {
	var ops []Op
	planned := make([]int, p.counts.hosts)
	for page := int64(0); page < pt.Pages(); page++ {
		h, margin := p.counts.lead(page)
		owner := pt.Owner(page)
		switch {
		case owner == ToCXL && margin >= p.threshold:
			if pt.Resident(h)+planned[h] < budgetPerHost {
				ops = append(ops, Op{Page: page, To: h})
				planned[h]++
			}
		case owner != ToCXL && h != owner && margin >= p.threshold:
			// Another host now clearly leads the vote: pull the page back
			// before remote hosts keep paying 4-hop accesses. (Idle pages
			// stay put — they harm nobody.)
			ops = append(ops, Op{Page: page, To: ToCXL})
		}
	}
	p.counts.halve()
	return ops
}
