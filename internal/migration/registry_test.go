package migration

import (
	"strings"
	"testing"
)

// TestKindRoundTrip pins ParseKind as the exact inverse of Kind.String for
// every registered scheme, and the registry as consistent with Kinds.
func TestKindRoundTrip(t *testing.T) {
	if len(Kinds) != len(Registered()) {
		t.Fatalf("Kinds has %d entries, Registered %d", len(Kinds), len(Registered()))
	}
	for _, k := range Kinds {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no registered name", k)
			continue
		}
		got, err := ParseKind(name)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", name, got, k)
		}
		s, ok := Lookup(k)
		if !ok {
			t.Errorf("Lookup(%v) missing", k)
			continue
		}
		if s.Name != name || s.Kind != k {
			t.Errorf("Lookup(%v) = {%v %q}, want {%v %q}", k, s.Kind, s.Name, k, name)
		}
	}
}

// TestRegistryFamilies pins each scheme's family and family-derived
// predicates, and that kernel descriptors can actually build their policy.
func TestRegistryFamilies(t *testing.T) {
	wantFamily := map[Kind]Family{
		Native:    FamilyNative,
		Nomad:     FamilyKernel,
		Memtis:    FamilyKernel,
		HeMem:     FamilyKernel,
		OSSkew:    FamilyKernel,
		HWStatic:  FamilyHardware,
		PIPM:      FamilyHardware,
		LocalOnly: FamilyLocalOnly,
	}
	for _, s := range Registered() {
		if s.Family != wantFamily[s.Kind] {
			t.Errorf("%v: family %v, want %v", s.Kind, s.Family, wantFamily[s.Kind])
		}
		if s.Kind.Kernel() != (s.Family == FamilyKernel) {
			t.Errorf("%v: Kernel() = %v inconsistent with family %v", s.Kind, s.Kind.Kernel(), s.Family)
		}
		if s.Kind.Hardware() != (s.Family == FamilyHardware) {
			t.Errorf("%v: Hardware() = %v inconsistent with family %v", s.Kind, s.Kind.Hardware(), s.Family)
		}
		if (s.NewPolicy != nil) != (s.Family == FamilyKernel) {
			t.Errorf("%v: NewPolicy presence inconsistent with family %v", s.Kind, s.Family)
		}
		if s.NewPolicy != nil {
			p := s.NewPolicy(PolicyParams{Pages: 64, Hosts: 2, Threshold: 4})
			if p == nil {
				t.Errorf("%v: NewPolicy returned nil", s.Kind)
			} else if p.Name() != s.Name {
				t.Errorf("%v: policy name %q != scheme name %q", s.Kind, p.Name(), s.Name)
			}
		}
	}
	if k, err := ParseKind("pipm"); err != nil || k != PIPM {
		t.Errorf("ParseKind(pipm) = %v, %v", k, err)
	}
}

// TestParseKindUnknown is the error path: unknown names must fail with a
// message naming the offender, never alias to a valid scheme.
func TestParseKindUnknown(t *testing.T) {
	for _, bad := range []string{"", "PIPM", "tpp", "local_only", "native "} {
		k, err := ParseKind(bad)
		if err == nil {
			t.Errorf("ParseKind(%q) = %v, want error", bad, k)
			continue
		}
		if !strings.Contains(err.Error(), "unknown scheme") {
			t.Errorf("ParseKind(%q) error %q does not mention the unknown scheme", bad, err)
		}
	}
	if _, err := ByName("tpp"); err == nil {
		t.Error("ByName(tpp) succeeded, want error")
	}
	if _, ok := Lookup(Kind(250)); ok {
		t.Error("Lookup(250) succeeded, want miss")
	}
}
