package migration

import (
	pipmcore "pipm/internal/core"
)

// SchemeHooks is the contract between the invariant hierarchy walk in
// internal/machine and a scheme family. The walk (L1 → LLC → directory →
// DRAM/CXL) never names a scheme; it consults these five hook points, bound
// once at Machine build time, whenever a shared access needs a placement
// decision. Implementations are thin adapters over the family's state
// (kernel page table + policy, or the PIPM remapping manager) and must be
// allocation-free on every path: they run on the simulator's hottest loop.
//
// Call-sequence discipline: several hook implementations bump stat counters
// as a side effect (the local remap cache counts every LocalLookup, the
// harmful-migration ledger scores every memory-visible access). The walk
// therefore calls each hook exactly once per decision point, and hooks
// return everything the walk needs (route, PFN, table-walk flag) so no
// second lookup is ever required — otherwise hit-rate metrics would drift.
type SchemeHooks interface {
	// RouteShared classifies a shared access before any cache probe:
	// cacheable (walk the hierarchy), or remote (the page's unified PA
	// points into another host's GIM window — non-cacheable 4-hop).
	RouteShared(host int, page int64, write bool) RouteDecision

	// OnAccessObserved feeds policies that watch the full access stream
	// (PEBS samples and NUMA-hinting faults see loads regardless of cache
	// state), called once per shared access before routing.
	OnAccessObserved(host int, page int64, write bool)

	// OnFill routes a shared access that missed the LLC and became
	// memory-visible: local DRAM (migrated page or line) or the coherent
	// CXL/device path.
	OnFill(host int, page int64, lineInPage int) FillDecision

	// OnEvict decides the destination of a shared LLC victim and performs
	// the family's state transition (e.g. PIPM's incremental line
	// migration flips in-memory bits here).
	OnEvict(host int, page int64, lineInPage int, st EvictState) EvictDecision

	// OnWriteback records that a migrated block's freshest data returned to
	// CXL memory (the migrate-back half of a forwarded inter-host fetch);
	// the hardware family clears the line's migrated bit.
	OnWriteback(host int, page int64, lineInPage int)
}

// RouteKind is RouteShared's verdict.
type RouteKind uint8

const (
	// RouteCacheable: walk the cache hierarchy as usual.
	RouteCacheable RouteKind = iota
	// RouteRemote: non-cacheable 4-hop access to the owning host's memory.
	RouteRemote
)

// RouteDecision routes one shared access before the cache walk.
type RouteDecision struct {
	Kind  RouteKind
	Owner int // owning host, RouteRemote only
}

// FillKind is OnFill's verdict.
type FillKind uint8

const (
	// FillCXL: serve through the coherent CXL/device-directory path.
	FillCXL FillKind = iota
	// FillLocalPage: the whole page is resident in the requester's local
	// DRAM (kernel migration); serve at the access address.
	FillLocalPage
	// FillLocalLine: the line is partially migrated to the requester
	// (I' → ME); serve from local DRAM at the remapped PFN.
	FillLocalLine
	// FillDevice: consult the device (global remapping lookup + vote).
	FillDevice
)

// FillDecision routes an LLC-missing shared access.
type FillDecision struct {
	Kind FillKind
	// TableWalk is set when the local remapping cache missed and the walk
	// must price one in-memory leaf read (FillLocalLine/FillDevice).
	TableWalk bool
	// PFN is the local page frame backing the block (FillLocalLine only).
	PFN int64
}

// EvictState abstracts the victim's coherence state for OnEvict.
type EvictState uint8

const (
	// EvictClean: Shared (or Invalid-folded) victim, no data to write.
	EvictClean EvictState = iota
	// EvictCleanExclusive: Exclusive victim — clean, but a candidate for
	// migration under the E-eviction extension.
	EvictCleanExclusive
	// EvictDirty: Modified victim with CXL-backed data.
	EvictDirty
	// EvictMigrated: MigratedExclusive victim; dirty data is locally backed.
	EvictMigrated
)

// Dirty reports whether the victim carries data that must be written.
func (s EvictState) Dirty() bool { return s == EvictDirty || s == EvictMigrated }

// EvictKind is OnEvict's verdict.
type EvictKind uint8

const (
	// EvictCXL: ordinary writeback to CXL memory (or silent clean drop).
	EvictCXL EvictKind = iota
	// EvictLocalPage: the page lives in this host's DRAM; write locally.
	EvictLocalPage
	// EvictLocalLine: ME victim returns to its remapped local frame.
	EvictLocalLine
	// EvictAbsorb: the family absorbed the eviction as an incremental
	// migration (PIPM case ①): write locally, flip bits, drop from the
	// device directory.
	EvictAbsorb
	// EvictNone: no writeback anywhere (ME victim whose remapping vanished).
	EvictNone
)

// EvictDecision is the destination of a shared LLC victim.
type EvictDecision struct {
	Kind EvictKind
	// PFN is the local frame backing the block (EvictLocalLine/EvictAbsorb).
	PFN int64
}

// Compile-time checks: one SchemeHooks implementation per family.
var (
	_ SchemeHooks = NopHooks{}
	_ SchemeHooks = (*KernelHooks)(nil)
	_ SchemeHooks = (*HardwareHooks)(nil)
)

// NopHooks is the identity implementation: every shared access is plain
// cacheable CXL traffic and evictions write back to CXL. It serves the
// Native family directly, the Local-only family (whose route module
// short-circuits to the private path before any hook fires), and as the
// embedded default for families that only override some hooks.
type NopHooks struct{}

func (NopHooks) RouteShared(host int, page int64, write bool) RouteDecision {
	return RouteDecision{Kind: RouteCacheable}
}
func (NopHooks) OnAccessObserved(host int, page int64, write bool) {}
func (NopHooks) OnFill(host int, page int64, lineInPage int) FillDecision {
	return FillDecision{Kind: FillCXL}
}
func (NopHooks) OnEvict(host int, page int64, lineInPage int, st EvictState) EvictDecision {
	return EvictDecision{Kind: EvictCXL}
}
func (NopHooks) OnWriteback(host int, page int64, lineInPage int) {}

// KernelHooks adapts the kernel family's state — the epoch policy, the
// whole-page table, and the harmful-migration ledger — to the walk.
type KernelHooks struct {
	NopHooks
	policy Policy
	pt     *PageTable
	ledger *HarmfulLedger
}

// NewKernelHooks wraps the kernel-family state built by the machine. The
// machine retains its own references for epoch ticks and footprint
// sampling; the hooks cover only the per-access decision points.
func NewKernelHooks(policy Policy, pt *PageTable, ledger *HarmfulLedger) *KernelHooks {
	return &KernelHooks{policy: policy, pt: pt, ledger: ledger}
}

func (k *KernelHooks) RouteShared(host int, page int64, write bool) RouteDecision {
	if owner := k.pt.Owner(page); owner != ToCXL && owner != host {
		// Remote page: memory-visible by definition — score it for the
		// harmful-migration ledger before the 4-hop traversal.
		k.ledger.OnAccess(page, host)
		return RouteDecision{Kind: RouteRemote, Owner: owner}
	}
	return RouteDecision{Kind: RouteCacheable}
}

func (k *KernelHooks) OnAccessObserved(host int, page int64, write bool) {
	k.policy.RecordAccess(host, page, write)
}

func (k *KernelHooks) OnFill(host int, page int64, lineInPage int) FillDecision {
	// The access became memory-visible: score it (owner-side benefit is
	// cache-filtered, so this is the granularity the ledger wants).
	k.ledger.OnAccess(page, host)
	if k.pt.Owner(page) == host {
		return FillDecision{Kind: FillLocalPage}
	}
	return FillDecision{Kind: FillCXL}
}

func (k *KernelHooks) OnEvict(host int, page int64, lineInPage int, st EvictState) EvictDecision {
	if k.pt.Owner(page) == host {
		return EvictDecision{Kind: EvictLocalPage}
	}
	return EvictDecision{Kind: EvictCXL}
}

// HardwareHooks adapts the PIPM hardware (internal/core's remapping tables,
// caches and vote) to the walk.
type HardwareHooks struct {
	NopHooks
	mgr *pipmcore.Manager
	// migrateOnE enables the E-extension: clean Exclusive evictions of
	// owned pages also migrate incrementally.
	migrateOnE bool
}

// NewHardwareHooks wraps the hardware manager built by the machine.
func NewHardwareHooks(mgr *pipmcore.Manager, migrateOnE bool) *HardwareHooks {
	return &HardwareHooks{mgr: mgr, migrateOnE: migrateOnE}
}

func (hw *HardwareHooks) OnFill(host int, page int64, lineInPage int) FillDecision {
	// §4.3's I vs I' resolution: every shared LLC miss performs one local
	// remapping lookup; the cache-hit flag prices the optional table walk.
	entry, cacheHit := hw.mgr.LocalLookup(host, page)
	d := FillDecision{Kind: FillDevice, TableWalk: !cacheHit}
	if entry != nil {
		hw.mgr.OwnerAccess(host, page)
		if entry.Bitmap&(1<<uint(lineInPage)) != 0 {
			// I' → ME (case ③): the block is in local DRAM.
			d.Kind = FillLocalLine
			d.PFN = int64(entry.PFN)
		}
	}
	return d
}

func (hw *HardwareHooks) OnEvict(host int, page int64, lineInPage int, st EvictState) EvictDecision {
	switch {
	case st == EvictMigrated:
		// ME eviction (case ④): dirty data returns to local DRAM only — or
		// nowhere, if a concurrent revocation dropped the remapping.
		entry, _ := hw.mgr.LocalLookup(host, page)
		if entry == nil {
			return EvictDecision{Kind: EvictNone}
		}
		return EvictDecision{Kind: EvictLocalLine, PFN: int64(entry.PFN)}
	case hw.mgr.Owner(page) == host &&
		(st == EvictDirty || (st == EvictCleanExclusive && hw.migrateOnE)):
		// Incremental migration (case ①): absorb the eviction into the
		// owner's local frame and flip the in-memory bits.
		entry, _ := hw.mgr.LocalLookup(host, page)
		if entry != nil && hw.mgr.MigrateLine(host, page, lineInPage) {
			return EvictDecision{Kind: EvictAbsorb, PFN: int64(entry.PFN)}
		}
	}
	return EvictDecision{Kind: EvictCXL}
}

func (hw *HardwareHooks) OnWriteback(host int, page int64, lineInPage int) {
	hw.mgr.DemoteLine(host, page, lineInPage)
}
