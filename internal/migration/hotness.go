package migration

// pageCounts is per-page, per-host access counting shared by the kernel
// policies. Counters saturate rather than wrap. Up to denseHostCap hosts it
// is a dense pages×hosts array — the layout every 4-host golden run has
// always used; beyond that a dense array would be O(pages×256) of mostly
// untouched zeroes, so each page keeps a short host-ascending list of the
// hosts that actually touched it. Both representations agree observably:
// top() resolves ties to the lowest host index either way (untouched hosts
// count zero, so an ascending strict-maximum scan over recorded hosts sees
// the same winner the dense scan over all hosts does).
type pageCounts struct {
	hosts  int
	counts []uint32      // dense: page*hosts + host (hosts ≤ denseHostCap)
	sparse [][]hostCount // per page, ascending host (hosts > denseHostCap)
}

// denseHostCap is the largest cluster that keeps the dense layout.
const denseHostCap = 64

type hostCount struct {
	host  uint16
	count uint32
}

func newPageCounts(pages int64, hosts int) *pageCounts {
	pc := &pageCounts{hosts: hosts}
	if hosts <= denseHostCap {
		pc.counts = make([]uint32, pages*int64(hosts))
	} else {
		pc.sparse = make([][]hostCount, pages)
	}
	return pc
}

func (pc *pageCounts) record(host int, page int64) {
	if pc.counts != nil {
		i := page*int64(pc.hosts) + int64(host)
		if pc.counts[i] != ^uint32(0) {
			pc.counts[i]++
		}
		return
	}
	row := pc.sparse[page]
	for i := range row {
		switch {
		case int(row[i].host) == host:
			if row[i].count != ^uint32(0) {
				row[i].count++
			}
			return
		case int(row[i].host) > host:
			row = append(row, hostCount{})
			copy(row[i+1:], row[i:])
			row[i] = hostCount{host: uint16(host), count: 1}
			pc.sparse[page] = row
			return
		}
	}
	pc.sparse[page] = append(row, hostCount{host: uint16(host), count: 1})
}

// count returns host's access count for page.
func (pc *pageCounts) count(page int64, host int) uint32 {
	if pc.counts != nil {
		return pc.counts[page*int64(pc.hosts)+int64(host)]
	}
	for _, e := range pc.sparse[page] {
		if int(e.host) == host {
			return e.count
		}
		if int(e.host) > host {
			break
		}
	}
	return 0
}

// total returns the sum of all hosts' counts for page.
func (pc *pageCounts) total(page int64) uint64 {
	var t uint64
	if pc.counts != nil {
		base := page * int64(pc.hosts)
		for h := 0; h < pc.hosts; h++ {
			t += uint64(pc.counts[base+int64(h)])
		}
		return t
	}
	for _, e := range pc.sparse[page] {
		t += uint64(e.count)
	}
	return t
}

// top returns the host with the highest count for page and that count.
// Ties resolve to the lowest host index, deterministically.
func (pc *pageCounts) top(page int64) (host int, count uint32) {
	if pc.counts != nil {
		base := page * int64(pc.hosts)
		host = 0
		count = pc.counts[base]
		for h := 1; h < pc.hosts; h++ {
			if c := pc.counts[base+int64(h)]; c > count {
				host, count = h, c
			}
		}
		return host, count
	}
	for _, e := range pc.sparse[page] {
		if e.count > count {
			host, count = int(e.host), e.count
		}
	}
	if count == 0 {
		// All-zero pages report host 0, exactly like the dense scan.
		return 0, 0
	}
	return host, count
}

// lead returns top host's count minus the sum of all other hosts' counts —
// the majority-vote margin OS-skew promotes on.
func (pc *pageCounts) lead(page int64) (host int, margin int64) {
	h, c := pc.top(page)
	others := int64(pc.total(page)) - int64(c)
	return h, int64(c) - others
}

// halve decays every counter by half (cooling). Sparse rows drop entries
// that decay to zero, keeping them short under churn.
func (pc *pageCounts) halve() {
	if pc.counts != nil {
		for i := range pc.counts {
			pc.counts[i] >>= 1
		}
		return
	}
	for p, row := range pc.sparse {
		out := row[:0]
		for _, e := range row {
			if e.count >>= 1; e.count != 0 {
				out = append(out, e)
			}
		}
		pc.sparse[p] = out
	}
}

// clear zeroes every counter.
func (pc *pageCounts) clear() {
	if pc.counts != nil {
		for i := range pc.counts {
			pc.counts[i] = 0
		}
		return
	}
	for p := range pc.sparse {
		pc.sparse[p] = pc.sparse[p][:0]
	}
}

func (pc *pageCounts) pages() int64 {
	if pc.counts != nil {
		return int64(len(pc.counts)) / int64(pc.hosts)
	}
	return int64(len(pc.sparse))
}
