package migration

// pageCounts is dense per-page, per-host access counting shared by the
// kernel policies. Counters saturate rather than wrap.
type pageCounts struct {
	hosts  int
	counts []uint32 // page*hosts + host
}

func newPageCounts(pages int64, hosts int) *pageCounts {
	return &pageCounts{hosts: hosts, counts: make([]uint32, pages*int64(hosts))}
}

func (pc *pageCounts) record(host int, page int64) {
	i := page*int64(pc.hosts) + int64(host)
	if pc.counts[i] != ^uint32(0) {
		pc.counts[i]++
	}
}

// total returns the sum of all hosts' counts for page.
func (pc *pageCounts) total(page int64) uint64 {
	base := page * int64(pc.hosts)
	var t uint64
	for h := 0; h < pc.hosts; h++ {
		t += uint64(pc.counts[base+int64(h)])
	}
	return t
}

// top returns the host with the highest count for page and that count.
// Ties resolve to the lowest host index, deterministically.
func (pc *pageCounts) top(page int64) (host int, count uint32) {
	base := page * int64(pc.hosts)
	host = 0
	count = pc.counts[base]
	for h := 1; h < pc.hosts; h++ {
		if c := pc.counts[base+int64(h)]; c > count {
			host, count = h, c
		}
	}
	return host, count
}

// lead returns top host's count minus the sum of all other hosts' counts —
// the majority-vote margin OS-skew promotes on.
func (pc *pageCounts) lead(page int64) (host int, margin int64) {
	h, c := pc.top(page)
	others := int64(pc.total(page)) - int64(c)
	return h, int64(c) - others
}

// halve decays every counter by half (cooling).
func (pc *pageCounts) halve() {
	for i := range pc.counts {
		pc.counts[i] >>= 1
	}
}

// clear zeroes every counter.
func (pc *pageCounts) clear() {
	for i := range pc.counts {
		pc.counts[i] = 0
	}
}

func (pc *pageCounts) pages() int64 { return int64(len(pc.counts)) / int64(pc.hosts) }
