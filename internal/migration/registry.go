package migration

import (
	"fmt"
	"sort"
)

// Family classifies how a scheme plugs into the layered memory path
// (DESIGN.md §11). The invariant hierarchy walk in internal/machine is
// family-agnostic; each family contributes one SchemeHooks implementation
// and one route module, and every scheme in a family differs only by the
// descriptor fields below (policy constructor, static mapping, ...).
type Family uint8

const (
	// FamilyNative has no migration machinery: every shared access walks
	// the invariant cacheable path to the device directory and CXL memory.
	FamilyNative Family = iota
	// FamilyKernel migrates whole pages at epoch boundaries via the kernel
	// (Nomad, Memtis, HeMem, OS-skew); remote pages are reached through the
	// non-cacheable 4-hop GIM path.
	FamilyKernel
	// FamilyHardware is PIPM's partial/incremental line-granularity
	// mechanism (PIPM, HW-static), driven by the remapping tables and the
	// device-side majority vote in internal/core.
	FamilyHardware
	// FamilyLocalOnly is the upper bound: shared data behaves as local DRAM
	// on every host, with no cross-host sharing semantics.
	FamilyLocalOnly
)

func (f Family) String() string {
	switch f {
	case FamilyNative:
		return "native"
	case FamilyKernel:
		return "kernel"
	case FamilyHardware:
		return "hardware"
	case FamilyLocalOnly:
		return "local-only"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// PolicyParams is what a kernel-family policy constructor receives.
type PolicyParams struct {
	Pages     int64 // shared pages under management
	Hosts     int
	Threshold int // the configured migration threshold (vote margin)
}

// Scheme is one registered placement scheme: the single source of truth the
// harness and both CLIs enumerate (no duplicated Kind/name lists). Adding a
// ninth scheme means appending a descriptor here — see DESIGN.md §11.
type Scheme struct {
	Kind   Kind
	Name   string // as parsed/printed by ParseKind / Kind.String
	Desc   string // one-line summary for -list-schemes
	Family Family

	// NewPolicy builds the epoch policy (FamilyKernel only, nil otherwise).
	NewPolicy func(PolicyParams) Policy

	// StaticMap marks the hardware ablation with a fixed 1:1 CXL→local
	// mapping instead of the majority vote (HW-static).
	StaticMap bool
	// AsyncTransfer marks a kernel scheme whose per-page migration work runs
	// asynchronously (Nomad's transactional migration) instead of stalling
	// the initiating host.
	AsyncTransfer bool
	// Hints marks schemes that accept the §6 software page hints (PIPM).
	Hints bool
}

// registry lists every scheme in presentation order (the order of Fig. 10).
var registry = []Scheme{
	{
		Kind: Native, Name: "native", Family: FamilyNative,
		Desc: "baseline multi-host CXL-DSM: no migration to local memory",
	},
	{
		Kind: Nomad, Name: "nomad", Family: FamilyKernel,
		Desc:          "recency-based kernel policy with asynchronous (transactional) page migration",
		NewPolicy:     func(p PolicyParams) Policy { return NewNomad(p.Pages, p.Hosts) },
		AsyncTransfer: true,
	},
	{
		Kind: Memtis, Name: "memtis", Family: FamilyKernel,
		Desc:      "frequency-based kernel policy with a dynamic hot threshold",
		NewPolicy: func(p PolicyParams) Policy { return NewMemtis(p.Pages, p.Hosts) },
	},
	{
		Kind: HeMem, Name: "hemem", Family: FamilyKernel,
		Desc:      "frequency-threshold kernel policy with periodic cooling",
		NewPolicy: func(p PolicyParams) Policy { return NewHeMem(p.Pages, p.Hosts) },
	},
	{
		Kind: OSSkew, Name: "os-skew", Family: FamilyKernel,
		Desc:      "ablation: PIPM's majority-vote policy driving kernel page migration",
		NewPolicy: func(p PolicyParams) Policy { return NewOSSkew(p.Pages, p.Hosts, p.Threshold) },
	},
	{
		Kind: HWStatic, Name: "hw-static", Family: FamilyHardware,
		Desc:      "ablation: incremental hardware mechanism with a fixed 1:1 CXL-to-local mapping",
		StaticMap: true,
	},
	{
		Kind: PIPM, Name: "pipm", Family: FamilyHardware,
		Desc:  "full design: partial and incremental page migration with majority-vote promotion",
		Hints: true,
	},
	{
		Kind: LocalOnly, Name: "local-only", Family: FamilyLocalOnly,
		Desc: "upper bound: all shared data local to the accessing host",
	},
}

// byKind indexes the registry by Kind for O(1) Lookup on the hot build path.
var byKind = func() map[Kind]int {
	idx := make(map[Kind]int, len(registry))
	for i, s := range registry {
		if _, dup := idx[s.Kind]; dup {
			panic(fmt.Sprintf("migration: duplicate scheme kind %d", s.Kind))
		}
		idx[s.Kind] = i
	}
	return idx
}()

// Kinds lists every registered scheme in presentation order (Fig. 10).
var Kinds = func() []Kind {
	ks := make([]Kind, len(registry))
	for i, s := range registry {
		ks[i] = s.Kind
	}
	return ks
}()

// Registered returns every scheme descriptor in presentation order. The
// returned slice is a copy; callers may reorder or filter it freely.
func Registered() []Scheme {
	out := make([]Scheme, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the descriptor for k.
func Lookup(k Kind) (Scheme, bool) {
	i, ok := byKind[k]
	if !ok {
		return Scheme{}, false
	}
	return registry[i], true
}

// ByName resolves a scheme name (as printed by Kind.String).
func ByName(name string) (Scheme, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Scheme{}, fmt.Errorf("migration: unknown scheme %q (known: %v)", name, known)
}

// Names returns every registered scheme name in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}
