// Package migration implements the page-placement schemes the paper
// compares (§5.1.3): the four kernel-based, page-granularity policies
// (Nomad, Memtis, HeMem, OS-skew), the shared page-table state they act on,
// and the harmful-migration ledger behind Fig. 5. The hardware schemes
// (PIPM, HW-static) live in internal/core; Native and Local-only need no
// policy at all.
package migration

import "fmt"

// Kind names a scheme under evaluation.
type Kind uint8

const (
	// Native is baseline multi-host CXL-DSM: no migration to local memory.
	Native Kind = iota
	// Nomad is the recency-based kernel policy with asynchronous
	// (transactional) page migration.
	Nomad
	// Memtis is the frequency-based kernel policy with a dynamic hot
	// threshold from an access histogram.
	Memtis
	// HeMem is a frequency-threshold kernel policy with periodic cooling.
	HeMem
	// OSSkew is the ablation: PIPM's majority-vote policy driving the
	// conventional kernel migration mechanism.
	OSSkew
	// HWStatic is the ablation: PIPM's incremental hardware mechanism with
	// a fixed 1:1 CXL→local mapping (Intel Flat Mode-like).
	HWStatic
	// PIPM is the full design.
	PIPM
	// LocalOnly is the upper bound: all data local to the accessing host.
	LocalOnly
)

// String returns the scheme's registered name (see registry.go).
func (k Kind) String() string {
	if s, ok := Lookup(k); ok {
		return s.Name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind resolves a scheme name (as printed by String) against the
// registry.
func ParseKind(s string) (Kind, error) {
	sc, err := ByName(s)
	if err != nil {
		return 0, err
	}
	return sc.Kind, nil
}

// FamilyOf returns the scheme family k is registered under; unregistered
// kinds report FamilyNative (they build no migration machinery).
func (k Kind) FamilyOf() Family {
	if s, ok := Lookup(k); ok {
		return s.Family
	}
	return FamilyNative
}

// Kernel reports whether the scheme migrates whole pages via the kernel.
func (k Kind) Kernel() bool { return k.FamilyOf() == FamilyKernel }

// Hardware reports whether the scheme uses the PIPM coherence mechanism.
func (k Kind) Hardware() bool { return k.FamilyOf() == FamilyHardware }

// ToCXL is the Op destination meaning "demote back to CXL memory".
const ToCXL = -1

// Op is one page movement a policy requests at an epoch boundary.
type Op struct {
	Page int64
	To   int // destination host, or ToCXL
}

// Policy is a kernel-based page-placement policy. RecordAccess feeds it the
// memory-visible access stream (LLC misses and non-cacheable accesses — the
// granularity NUMA-hinting faults or PEBS sampling would see); Tick closes
// an epoch and emits the migrations to perform.
type Policy interface {
	Name() string
	RecordAccess(host int, page int64, write bool)
	// Tick returns the ops for this epoch. pt is current placement;
	// budgetPerHost caps how many shared pages one host may hold locally.
	Tick(pt *PageTable, budgetPerHost int) []Op
}

// PageTable is the whole-page placement state kernel schemes mutate: for
// each shared page, the host whose local DRAM holds it (or ToCXL).
type PageTable struct {
	owner    []int16
	resident []int // pages per host
}

// NewPageTable starts with every page in CXL memory.
func NewPageTable(pages int64, hosts int) *PageTable {
	pt := &PageTable{owner: make([]int16, pages), resident: make([]int, hosts)}
	for i := range pt.owner {
		pt.owner[i] = ToCXL
	}
	return pt
}

// Pages returns the number of pages tracked.
func (pt *PageTable) Pages() int64 { return int64(len(pt.owner)) }

// Owner returns the host holding page, or ToCXL.
func (pt *PageTable) Owner(page int64) int { return int(pt.owner[page]) }

// Set moves page to host (or ToCXL), maintaining residency counts.
func (pt *PageTable) Set(page int64, host int) {
	old := pt.owner[page]
	if int(old) == host {
		return
	}
	if old != ToCXL {
		pt.resident[old]--
	}
	if host != ToCXL {
		pt.resident[host]++
	}
	pt.owner[page] = int16(host)
}

// Resident returns the number of shared pages host h currently holds.
func (pt *PageTable) Resident(h int) int { return pt.resident[h] }
