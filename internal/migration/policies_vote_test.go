package migration

import "testing"

// Table-driven edge cases for the majority-vote machinery (pageCounts.top
// and .lead) and the OS-skew policy built on it — the kernel-side analogue
// of PIPM's Boyer–Moore-style 6-bit vote.

func record(pc *pageCounts, page int64, host int, n int) {
	for i := 0; i < n; i++ {
		pc.record(host, page)
	}
}

func TestVoteMargins(t *testing.T) {
	cases := []struct {
		name       string
		accesses   [3]int // per-host access counts for page 0, 3 hosts
		wantHost   int
		wantMargin int64
	}{
		{"single access", [3]int{0, 1, 0}, 1, 1},
		{"no access", [3]int{0, 0, 0}, 0, 0},
		{"exact tie resolves to lowest host", [3]int{5, 5, 0}, 0, 0},
		{"three-way tie resolves to lowest host", [3]int{4, 4, 4}, 0, -4},
		{"clear majority", [3]int{10, 2, 1}, 0, 7},
		{"majority erased by others combined", [3]int{6, 4, 3}, 0, -1},
		{"one ahead of combined", [3]int{8, 4, 3}, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pc := newPageCounts(1, 3)
			for h, n := range tc.accesses {
				record(pc, 0, h, n)
			}
			h, margin := pc.lead(0)
			if h != tc.wantHost || margin != tc.wantMargin {
				t.Fatalf("lead = (host %d, margin %d), want (host %d, margin %d)",
					h, margin, tc.wantHost, tc.wantMargin)
			}
		})
	}
}

func TestVoteDecayToZero(t *testing.T) {
	pc := newPageCounts(1, 2)
	record(pc, 0, 0, 7)
	for i := 0; i < 3; i++ {
		pc.halve()
	}
	if _, c := pc.top(0); c != 0 {
		t.Fatalf("count after three halvings of 7: %d, want 0", c)
	}
	if _, margin := pc.lead(0); margin != 0 {
		t.Fatalf("margin after decay to zero: %d, want 0", margin)
	}
}

func TestVoteSaturates(t *testing.T) {
	pc := newPageCounts(1, 2)
	pc.counts[0] = ^uint32(0) - 1
	pc.record(0, 0)
	pc.record(0, 0) // must not wrap
	if _, c := pc.top(0); c != ^uint32(0) {
		t.Fatalf("saturating counter wrapped: %d", c)
	}
}

// OS-skew promotes only on a clear majority margin, never on a tie, and
// pulls a page back once another host takes the lead (owner flip-flop
// resolves through CXL, not host-to-host bouncing).
func TestOSSkewVoteEdgeCases(t *testing.T) {
	const threshold = 4

	t.Run("tie never promotes", func(t *testing.T) {
		p := NewOSSkew(1, 2, threshold)
		pt := NewPageTable(1, 2)
		for i := 0; i < 10; i++ {
			p.RecordAccess(0, 0, false)
			p.RecordAccess(1, 0, false)
		}
		if ops := p.Tick(pt, 8); len(ops) != 0 {
			t.Fatalf("tie produced ops: %v", ops)
		}
	})

	t.Run("single access below threshold stays put", func(t *testing.T) {
		p := NewOSSkew(1, 2, threshold)
		pt := NewPageTable(1, 2)
		p.RecordAccess(1, 0, false)
		if ops := p.Tick(pt, 8); len(ops) != 0 {
			t.Fatalf("single access promoted: %v", ops)
		}
	})

	t.Run("clear majority promotes to leader", func(t *testing.T) {
		p := NewOSSkew(1, 2, threshold)
		pt := NewPageTable(1, 2)
		for i := 0; i < threshold; i++ {
			p.RecordAccess(1, 0, false)
		}
		ops := p.Tick(pt, 8)
		if len(ops) != 1 || ops[0].To != 1 {
			t.Fatalf("majority did not promote to host 1: %v", ops)
		}
	})

	t.Run("owner flip-flop demotes through CXL", func(t *testing.T) {
		p := NewOSSkew(1, 2, threshold)
		pt := NewPageTable(1, 2)
		pt.Set(0, 0) // resident at host 0
		// Host 1 takes a commanding lead.
		for i := 0; i < 3*threshold; i++ {
			p.RecordAccess(1, 0, false)
		}
		ops := p.Tick(pt, 8)
		if len(ops) != 1 || ops[0].To != ToCXL {
			t.Fatalf("lead change did not demote to CXL: %v", ops)
		}
		pt.Set(0, ToCXL)
		// Still leading next epoch (counts halved, not cleared): promote.
		for i := 0; i < threshold; i++ {
			p.RecordAccess(1, 0, false)
		}
		ops = p.Tick(pt, 8)
		if len(ops) != 1 || ops[0].To != 1 {
			t.Fatalf("flip-flop second leg did not promote to host 1: %v", ops)
		}
	})

	t.Run("budget caps promotions", func(t *testing.T) {
		p := NewOSSkew(2, 2, threshold)
		pt := NewPageTable(2, 2)
		for page := int64(0); page < 2; page++ {
			for i := 0; i < threshold; i++ {
				p.RecordAccess(0, page, false)
			}
		}
		if ops := p.Tick(pt, 1); len(ops) != 1 {
			t.Fatalf("budget 1 allowed %d promotions", len(ops))
		}
	})
}
