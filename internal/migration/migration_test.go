package migration

import (
	"testing"

	"pipm/internal/sim"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{Nomad, Memtis, HeMem, OSSkew} {
		if !k.Kernel() || k.Hardware() {
			t.Errorf("%v should be kernel-only", k)
		}
	}
	for _, k := range []Kind{PIPM, HWStatic} {
		if k.Kernel() || !k.Hardware() {
			t.Errorf("%v should be hardware-only", k)
		}
	}
	for _, k := range []Kind{Native, LocalOnly} {
		if k.Kernel() || k.Hardware() {
			t.Errorf("%v should be neither", k)
		}
	}
}

func TestPageTable(t *testing.T) {
	pt := NewPageTable(10, 4)
	if pt.Pages() != 10 {
		t.Fatalf("Pages = %d", pt.Pages())
	}
	for p := int64(0); p < 10; p++ {
		if pt.Owner(p) != ToCXL {
			t.Fatalf("page %d not initially in CXL", p)
		}
	}
	pt.Set(3, 2)
	pt.Set(4, 2)
	if pt.Owner(3) != 2 || pt.Resident(2) != 2 {
		t.Fatalf("Owner/Resident = %d/%d", pt.Owner(3), pt.Resident(2))
	}
	pt.Set(3, 1) // move between hosts
	if pt.Resident(2) != 1 || pt.Resident(1) != 1 {
		t.Fatalf("residency after move = %d/%d", pt.Resident(2), pt.Resident(1))
	}
	pt.Set(3, ToCXL)
	if pt.Resident(1) != 0 || pt.Owner(3) != ToCXL {
		t.Fatal("demotion did not clear residency")
	}
	pt.Set(4, 2) // idempotent set
	if pt.Resident(2) != 1 {
		t.Fatal("idempotent Set changed residency")
	}
}

func TestPageCounts(t *testing.T) {
	pc := newPageCounts(4, 3)
	pc.record(0, 1)
	pc.record(0, 1)
	pc.record(2, 1)
	if pc.total(1) != 3 {
		t.Fatalf("total = %d", pc.total(1))
	}
	h, c := pc.top(1)
	if h != 0 || c != 2 {
		t.Fatalf("top = %d,%d", h, c)
	}
	lh, margin := pc.lead(1)
	if lh != 0 || margin != 1 {
		t.Fatalf("lead = %d,%d", lh, margin)
	}
	pc.halve()
	if pc.total(1) != 1 { // 2→1, 1→0, floor semantics
		t.Fatalf("total after halve = %d", pc.total(1))
	}
	pc.clear()
	if pc.total(1) != 0 {
		t.Fatal("clear failed")
	}
	if pc.pages() != 4 {
		t.Fatalf("pages = %d", pc.pages())
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for x, want := range cases {
		if got := log2u64(x); got != want {
			t.Errorf("log2(%d) = %d, want %d", x, got, want)
		}
	}
}

// applyOps mimics the machine's application of policy decisions.
func applyOps(pt *PageTable, ops []Op) {
	for _, op := range ops {
		pt.Set(op.Page, op.To)
	}
}

func TestNomadPromotesOnRepeatedTouch(t *testing.T) {
	p := NewNomad(8, 2)
	pt := NewPageTable(8, 2)
	// Epoch 1: host 0 touches page 3 → no promotion yet (one epoch).
	p.RecordAccess(0, 3, false)
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(3) != ToCXL {
		t.Fatal("promoted after a single epoch touch")
	}
	// Epoch 2: touched again → promote.
	p.RecordAccess(0, 3, false)
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(3) != 0 {
		t.Fatalf("page 3 owner = %d, want 0", pt.Owner(3))
	}
}

func TestNomadDemotesIdlePages(t *testing.T) {
	p := NewNomad(8, 2)
	pt := NewPageTable(8, 2)
	pt.Set(5, 1)
	// 4 idle epochs → demote.
	for i := 0; i < 3; i++ {
		applyOps(pt, p.Tick(pt, 100))
		if pt.Owner(5) != 1 {
			t.Fatalf("demoted too early at epoch %d", i)
		}
	}
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(5) != ToCXL {
		t.Fatal("idle page not demoted after 4 epochs")
	}
}

func TestNomadIgnoresSharedHarm(t *testing.T) {
	// The defining failure mode: a page touched by both hosts still gets
	// promoted to the busier one — recency policies don't see the conflict.
	p := NewNomad(4, 2)
	pt := NewPageTable(4, 2)
	for e := 0; e < 2; e++ {
		for i := 0; i < 6; i++ {
			p.RecordAccess(0, 1, false)
		}
		for i := 0; i < 5; i++ {
			p.RecordAccess(1, 1, false)
		}
		applyOps(pt, p.Tick(pt, 100))
	}
	if pt.Owner(1) != 0 {
		t.Fatalf("shared-hot page owner = %d; Nomad should still migrate it (to host 0)", pt.Owner(1))
	}
}

func TestNomadRespectsBudget(t *testing.T) {
	p := NewNomad(8, 2)
	pt := NewPageTable(8, 2)
	for e := 0; e < 2; e++ {
		for page := int64(0); page < 8; page++ {
			p.RecordAccess(0, page, false)
		}
		applyOps(pt, p.Tick(pt, 3))
	}
	if pt.Resident(0) > 3 {
		t.Fatalf("resident = %d exceeds budget 3", pt.Resident(0))
	}
}

func TestMemtisPromotesHotDemotesCold(t *testing.T) {
	p := NewMemtis(16, 2)
	pt := NewPageTable(16, 2)
	// Page 0 very hot from host 0, page 1 barely touched.
	for i := 0; i < 64; i++ {
		p.RecordAccess(0, 0, false)
	}
	p.RecordAccess(1, 1, false)
	applyOps(pt, p.Tick(pt, 4))
	if pt.Owner(0) != 0 {
		t.Fatalf("hot page owner = %d, want 0", pt.Owner(0))
	}
	// Stop touching page 0: counts decay. Under memory pressure (budget 1,
	// host 0 at capacity) the cold page demotes; without pressure Memtis
	// leaves residents alone.
	demoted := false
	for e := 0; e < 10 && !demoted; e++ {
		// Keep other pages hot so the threshold stays above zero.
		for i := 0; i < 64; i++ {
			p.RecordAccess(1, 5, false)
		}
		applyOps(pt, p.Tick(pt, 1))
		demoted = pt.Owner(0) == ToCXL
	}
	if !demoted {
		t.Fatal("cold page never demoted under pressure")
	}
}

func TestHeMemThresholdAndCooling(t *testing.T) {
	p := NewHeMem(8, 2)
	pt := NewPageTable(8, 2)
	// 7 accesses: below threshold 8.
	for i := 0; i < 7; i++ {
		p.RecordAccess(1, 2, false)
	}
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(2) != ToCXL {
		t.Fatal("promoted below threshold")
	}
	// One more access crosses 8 (counts persist between epochs until cooling).
	p.RecordAccess(1, 2, false)
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(2) != 1 {
		t.Fatalf("owner = %d, want 1", pt.Owner(2))
	}
	// Cooling (every 2 epochs) eventually zeroes the count → demote.
	demoted := false
	for e := 0; e < 12 && !demoted; e++ {
		applyOps(pt, p.Tick(pt, 100))
		demoted = pt.Owner(2) == ToCXL
	}
	if !demoted {
		t.Fatal("HeMem never demoted a cooled page")
	}
}

func TestOSSkewSuppressesContestedMigration(t *testing.T) {
	p := NewOSSkew(4, 2, 8)
	pt := NewPageTable(4, 2)
	// Contested page: 10 vs 9 accesses — margin 1 < 8 → no migration,
	// exactly where Nomad above did migrate.
	for e := 0; e < 5; e++ {
		for i := 0; i < 10; i++ {
			p.RecordAccess(0, 1, false)
		}
		for i := 0; i < 9; i++ {
			p.RecordAccess(1, 1, false)
		}
		applyOps(pt, p.Tick(pt, 100))
	}
	if pt.Owner(1) != ToCXL {
		t.Fatal("OS-skew migrated a contested page")
	}
	// Exclusive page: margin grows past threshold → promote.
	for i := 0; i < 20; i++ {
		p.RecordAccess(1, 2, false)
	}
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(2) != 1 {
		t.Fatalf("exclusive page owner = %d, want 1", pt.Owner(2))
	}
}

func TestOSSkewDemotesWhenVoteFlips(t *testing.T) {
	p := NewOSSkew(4, 2, 8)
	pt := NewPageTable(4, 2)
	for i := 0; i < 20; i++ {
		p.RecordAccess(0, 1, false)
	}
	applyOps(pt, p.Tick(pt, 100))
	if pt.Owner(1) != 0 {
		t.Fatal("setup promotion failed")
	}
	// Host 1 starts hammering the page: vote flips, page returns to CXL.
	demoted := false
	for e := 0; e < 10 && !demoted; e++ {
		for i := 0; i < 30; i++ {
			p.RecordAccess(1, 1, false)
		}
		applyOps(pt, p.Tick(pt, 100))
		demoted = pt.Owner(1) == ToCXL
	}
	if !demoted {
		t.Fatal("OS-skew never demoted after the vote flipped")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewNomad(1, 1).Name() != "nomad" || NewMemtis(1, 1).Name() != "memtis" ||
		NewHeMem(1, 1).Name() != "hemem" || NewOSSkew(1, 1, 8).Name() != "os-skew" {
		t.Fatal("policy names mismatch")
	}
}

func TestHarmfulLedger(t *testing.T) {
	// local=40ns, CXL=180ns, inter=400ns → benefit/access = 140, harm = 220.
	l := NewHarmfulLedger(40*sim.Nanosecond, 180*sim.Nanosecond, 400*sim.Nanosecond)
	// Migration 1: owner-dominated → benign.
	l.OnMigration(1, 0)
	for i := 0; i < 100; i++ {
		l.OnAccess(1, 0)
	}
	for i := 0; i < 10; i++ {
		l.OnAccess(1, 3)
	}
	l.OnDemotion(1)
	// Migration 2: remote-dominated → harmful (harm 50·220 > benefit 10·140).
	l.OnMigration(2, 0)
	for i := 0; i < 10; i++ {
		l.OnAccess(2, 0)
	}
	for i := 0; i < 50; i++ {
		l.OnAccess(2, 1)
	}
	l.OnDemotion(2)
	if l.Total() != 2 || l.Harmful() != 1 {
		t.Fatalf("total/harmful = %d/%d, want 2/1", l.Total(), l.Harmful())
	}
	if l.HarmfulFraction() != 0.5 {
		t.Fatalf("fraction = %v", l.HarmfulFraction())
	}
}

func TestHarmfulLedgerFinishAndRemigration(t *testing.T) {
	l := NewHarmfulLedger(40*sim.Nanosecond, 180*sim.Nanosecond, 400*sim.Nanosecond)
	l.OnMigration(7, 0)
	l.OnAccess(7, 2) // harmful so far
	// Re-migration closes the first window and opens a second.
	l.OnMigration(7, 2)
	l.OnAccess(7, 2) // benign for new owner
	l.Finish()
	if l.Total() != 2 {
		t.Fatalf("Total = %d, want 2", l.Total())
	}
	if l.Harmful() != 1 {
		t.Fatalf("Harmful = %d, want 1", l.Harmful())
	}
	// Accesses to unscored pages are no-ops.
	l.OnAccess(99, 1)
	l.OnDemotion(99)
	if l.HarmfulFraction() != 0.5 {
		t.Fatalf("fraction = %v", l.HarmfulFraction())
	}
	if NewHarmfulLedger(1, 2, 3).HarmfulFraction() != 0 {
		t.Fatal("empty ledger fraction should be 0")
	}
}
