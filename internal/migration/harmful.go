package migration

import "pipm/internal/sim"

// HarmfulLedger implements Fig. 5's metric. A page migration is harmful
// when it increases overall execution time: the owner's accesses get faster
// (CXL latency → local latency) but every other host's access to the page
// becomes a 4-hop non-cacheable inter-host access (CXL latency → inter-host
// latency). The ledger scores each migration over its residency window and
// classifies it when the page is demoted (or at the end of the run).
type HarmfulLedger struct {
	// Per-access latency estimates supplied by the machine from its
	// configuration (local DRAM, 2-hop CXL, 4-hop inter-host).
	latLocal, latCXL, latInter sim.Time

	active  map[int64]*migScore
	harmful uint64
	benign  uint64
}

type migScore struct {
	owner      int
	ownerAccs  uint64
	remoteAccs uint64
}

// NewHarmfulLedger builds a ledger with the machine's latency estimates.
func NewHarmfulLedger(latLocal, latCXL, latInter sim.Time) *HarmfulLedger {
	return &HarmfulLedger{
		latLocal: latLocal, latCXL: latCXL, latInter: latInter,
		active: make(map[int64]*migScore),
	}
}

// OnMigration opens a scoring window for page, newly resident at owner.
// A page already being scored is closed (re-migration) first.
func (l *HarmfulLedger) OnMigration(page int64, owner int) {
	if s, ok := l.active[page]; ok {
		l.close(s)
	}
	l.active[page] = &migScore{owner: owner}
}

// OnAccess records a memory-visible access to page by host; no-op for
// pages not under scoring.
func (l *HarmfulLedger) OnAccess(page int64, host int) {
	s, ok := l.active[page]
	if !ok {
		return
	}
	if host == s.owner {
		s.ownerAccs++
	} else {
		s.remoteAccs++
	}
}

// OnDemotion closes page's scoring window.
func (l *HarmfulLedger) OnDemotion(page int64) {
	if s, ok := l.active[page]; ok {
		l.close(s)
		delete(l.active, page)
	}
}

// Finish closes all open windows (end of run).
func (l *HarmfulLedger) Finish() {
	for page, s := range l.active {
		l.close(s)
		delete(l.active, page)
	}
}

func (l *HarmfulLedger) close(s *migScore) {
	// Owner benefit: each memory-visible owner access trades a CXL access
	// for a local one. Remote harm: each remote access pays the 4-hop
	// latency AND loses cacheability — without the migration, roughly half
	// of those references would have hit in cache (latCXL/2 expected cost).
	benefit := int64(s.ownerAccs) * int64(l.latCXL-l.latLocal)
	harm := int64(s.remoteAccs) * (int64(l.latInter) - int64(l.latCXL)/2)
	if harm > benefit {
		l.harmful++
	} else {
		l.benign++
	}
}

// Harmful and Total return classified migration counts.
func (l *HarmfulLedger) Harmful() uint64 { return l.harmful }
func (l *HarmfulLedger) Total() uint64   { return l.harmful + l.benign }

// HarmfulFraction returns harmful/total, or 0 with no migrations.
func (l *HarmfulLedger) HarmfulFraction() float64 {
	t := l.Total()
	if t == 0 {
		return 0
	}
	return float64(l.harmful) / float64(t)
}
