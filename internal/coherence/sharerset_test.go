package coherence

import (
	"math/rand"
	"testing"
)

func TestSharerShiftFor(t *testing.T) {
	for _, tc := range []struct {
		hosts int
		shift uint8
	}{
		{1, 0}, {4, 0}, {32, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}, {256, 2},
	} {
		if got := SharerShiftFor(tc.hosts); got != tc.shift {
			t.Errorf("SharerShiftFor(%d) = %d, want %d", tc.hosts, got, tc.shift)
		}
	}
}

// Property: at widths 4, 64 (exact) and 256 (summary), the set agrees with a
// reference membership map under random add/remove sequences that respect the
// directory-precision invariant (never add a member, never remove a
// non-member — the protocol guarantees both). Checked every step: exact
// count, no false-negative Contains, an ascending duplicate-free iterator
// that covers every member and stays in range, and Describes of the true
// holder set.
func TestSharerSetMatchesReference(t *testing.T) {
	for _, hosts := range []int{4, 64, 256} {
		hosts := hosts
		shift := SharerShiftFor(hosts)
		t.Run(map[bool]string{true: "exact", false: "summary"}[shift == 0], func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(hosts)))
			s := NewSharerSet(shift)
			ref := map[int]bool{}
			for step := 0; step < 5000; step++ {
				h := rng.Intn(hosts)
				if ref[h] {
					delete(ref, h)
					s = s.Without(h)
				} else {
					ref[h] = true
					s = s.With(h)
				}

				if s.Count() != len(ref) {
					t.Fatalf("step %d: Count = %d, ref %d", step, s.Count(), len(ref))
				}
				if s.Empty() != (len(ref) == 0) {
					t.Fatalf("step %d: Empty = %v with %d members", step, s.Empty(), len(ref))
				}
				for m := range ref {
					if !s.Contains(m) {
						t.Fatalf("step %d: false negative for member %d", step, m)
					}
				}
				var hs HostSet
				prev, candidates := -1, 0
				it := s.Iter(hosts)
				for it.Next() {
					g := it.Host()
					if g <= prev || g >= hosts {
						t.Fatalf("step %d: iterator yielded %d after %d (hosts %d)", step, g, prev, hosts)
					}
					prev = g
					candidates++
					hs.Add(g)
				}
				for m := range ref {
					if !hs.Contains(m) {
						t.Fatalf("step %d: iterator missed member %d", step, m)
					}
				}
				if shift == 0 && candidates != len(ref) {
					t.Fatalf("step %d: exact iterator yielded %d candidates for %d members", step, candidates, len(ref))
				}
				if shift != 0 && candidates > s.Regions()<<shift {
					t.Fatalf("step %d: %d candidates exceed %d regions × %d", step, candidates, s.Regions(), 1<<shift)
				}
				truth := HostSet{}
				for m := range ref {
					truth.Add(m)
				}
				if !s.Describes(truth) {
					t.Fatalf("step %d: %v does not describe its own holders %v", step, s, truth)
				}
				if len(ref) > 0 {
					// Dropping one member must break the description: the
					// population no longer matches.
					for m := range ref {
						if s.Describes(truth.Without(m)) {
							t.Fatalf("step %d: %v describes holders minus member %d", step, s, m)
						}
						break
					}
				}
			}
		})
	}
}

// The exact representation must also reject extra holders outside the set,
// and the summary representation must reject holders in absent regions.
func TestSharerSetDescribesRejectsStrays(t *testing.T) {
	s := SharerSetOf(0, 1, 3)
	if s.Describes(HostSetOf(1, 3, 5)) {
		t.Fatal("exact set described a superset")
	}
	if !s.Describes(HostSetOf(1, 3)) {
		t.Fatal("exact set rejected its own holders")
	}
	sum := SharerSetOf(2, 0, 1) // hosts 0,1 → region 0 only
	if sum.Describes(HostSetOf(0, 200)) {
		t.Fatal("summary set described a holder in an absent region")
	}
	if !sum.Describes(HostSetOf(2, 3)) {
		// Region granularity: any two holders inside region 0 match.
		t.Fatal("summary set rejected holders inside its region")
	}
}

// The ≤64-host fast path must stay allocation-free: directory updates and
// invalidation rounds run it on every shared access (PR 4 guarantee).
func TestSharerSetExactZeroAlloc(t *testing.T) {
	s := NewSharerSet(0)
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		s = s.With(3).With(17).With(63)
		it := s.Iter(64)
		for it.Next() {
			sink += it.Host()
		}
		s = s.Without(17)
		if s.Contains(17) || s.Empty() {
			sink++
		}
		s = s.Without(3).Without(63)
	})
	if allocs != 0 {
		t.Fatalf("exact fast path allocated %.1f times per run", allocs)
	}
	_ = sink
}

func TestHostSetBasics(t *testing.T) {
	s := HostSetOf(0, 63, 64, 255)
	if s.Count() != 4 || !s.Contains(64) || s.Contains(65) {
		t.Fatalf("set = %v", s)
	}
	if s.String() != "{0,63,64,255}" {
		t.Fatalf("String = %s", s.String())
	}
	if !s.Without(0).Without(63).Without(64).Only(255) {
		t.Fatal("Only(255) after removals")
	}
	if d := s.Minus(HostSetOf(63, 255)); d != HostSetOf(0, 64) {
		t.Fatalf("Minus = %v", d)
	}
	s.Del(255)
	if s.Contains(255) || s.Count() != 3 {
		t.Fatalf("after Del: %v", s)
	}
	var order []int
	s.ForEach(func(h int) { order = append(order, h) })
	if len(order) != 3 || order[0] != 0 || order[1] != 63 || order[2] != 64 {
		t.Fatalf("ForEach order = %v", order)
	}
	if !HostSetOf().Empty() {
		t.Fatal("empty set not Empty")
	}
}
