package coherence

import (
	"fmt"
	"math/bits"
	"strings"
)

// SharerSet is the directory's set-of-caching-hosts representation, sized
// for clusters (DESIGN.md §16). It is a value type with two wire formats
// selected per-config at build time by SharerShiftFor:
//
//   - shift == 0 (exact, hosts ≤ 64): bits is a plain host bitmask — the
//     same inline fast path the 4-host directory always had, now 64 wide.
//   - shift > 0 (summary, hosts > 64): a real directory cannot afford a
//     256-bit vector per entry, so bits becomes a 64-region presence
//     vector (each region covers 1<<shift consecutive hosts) and count
//     keeps the exact sharer population. Membership is approximate at
//     region granularity; invalidation rounds fan out to every host of a
//     present region (over-invalidation is the documented cost of coarse
//     tracking, cf. coarse sparse directories).
//
// The summary representation relies on the directory-precision invariant
// the auditor enforces: the protocol never adds a host that is already a
// sharer and never removes one that is not, so count stays exact without
// per-host bits. Region bits are only cleared when the set empties.
type SharerSet struct {
	bits  uint64
	count uint16
	shift uint8
}

// SharerShiftFor returns the region shift for a host count: 0 (exact
// bitmask) up to 64 hosts, then the smallest shift folding the hosts into
// at most 64 regions (65..128 → 1, 129..256 → 2).
func SharerShiftFor(hosts int) uint8 {
	shift := uint8(0)
	for hosts > 64 {
		hosts = (hosts + 1) / 2
		shift++
	}
	return shift
}

// NewSharerSet returns an empty set using the representation for shift.
func NewSharerSet(shift uint8) SharerSet { return SharerSet{shift: shift} }

// SharerSetOf builds a set from explicit hosts (test/construction helper).
func SharerSetOf(shift uint8, hosts ...int) SharerSet {
	s := NewSharerSet(shift)
	for _, h := range hosts {
		s = s.With(h)
	}
	return s
}

// Exact reports whether the set tracks individual hosts (shift == 0).
func (s SharerSet) Exact() bool { return s.shift == 0 }

// Shift returns the region shift (0 in exact mode). Hosts g and h belong
// to the same shootdown batch iff g>>Shift() == h>>Shift().
func (s SharerSet) Shift() uint8 { return s.shift }

// Empty reports whether no host is in the set.
func (s SharerSet) Empty() bool {
	if s.shift == 0 {
		return s.bits == 0
	}
	return s.count == 0
}

// Count returns the exact number of sharers (both representations).
func (s SharerSet) Count() int { return int(s.count) }

// Contains reports membership. In summary mode this is approximate: it
// answers at region granularity and may report hosts that merely share a
// region with a true sharer.
func (s SharerSet) Contains(h int) bool {
	if s.shift == 0 {
		return s.bits&(uint64(1)<<uint(h)) != 0
	}
	return s.count > 0 && s.bits&(uint64(1)<<uint(h>>s.shift)) != 0
}

// With returns the set with host h added. Exact mode is idempotent; in
// summary mode the caller must not add a host that is already a member
// (the protocol guarantees this via directory precision).
func (s SharerSet) With(h int) SharerSet {
	if s.shift == 0 {
		b := uint64(1) << uint(h)
		if s.bits&b != 0 {
			return s
		}
		s.bits |= b
		s.count++
		return s
	}
	s.bits |= uint64(1) << uint(h>>s.shift)
	s.count++
	return s
}

// Without returns the set with host h removed. In summary mode the caller
// must only remove actual members (directory precision again); removing
// from an absent region is a no-op, and the region vector resets only when
// the set empties.
func (s SharerSet) Without(h int) SharerSet {
	if s.shift == 0 {
		b := uint64(1) << uint(h)
		if s.bits&b == 0 {
			return s
		}
		s.bits &^= b
		s.count--
		return s
	}
	if s.count == 0 || s.bits&(uint64(1)<<uint(h>>s.shift)) == 0 {
		return s
	}
	s.count--
	if s.count == 0 {
		s.bits = 0
	}
	return s
}

// Regions returns the number of distinct presence regions currently set
// (1 per host in exact mode). Batched shootdowns send one message per
// region, so this is the message count of an invalidation round.
func (s SharerSet) Regions() int { return bits.OnesCount64(s.bits) }

// Describes reports whether the set is a legal directory description of
// the exact holder set hs: equality in exact mode; in summary mode the
// population must match and every holder must fall in a present region.
func (s SharerSet) Describes(hs HostSet) bool {
	if s.shift == 0 {
		return hs.w[1]|hs.w[2]|hs.w[3] == 0 && s.bits == hs.w[0]
	}
	if int(s.count) != hs.Count() {
		return false
	}
	for w := range hs.w {
		for word := hs.w[w]; word != 0; word &= word - 1 {
			h := w*64 + bits.TrailingZeros64(word)
			if s.bits&(uint64(1)<<uint(h>>s.shift)) == 0 {
				return false
			}
		}
	}
	return true
}

func (s SharerSet) String() string {
	if s.shift == 0 {
		return fmt.Sprintf("sharers{%064b}", s.bits)
	}
	return fmt.Sprintf("sharers{n=%d regions=%064b<<%d}", s.count, s.bits, s.shift)
}

// Iter returns a value iterator over the set's hosts, clamped to the
// machine's host count. Exact mode yields exactly the members; summary
// mode yields every host of every present region (the candidate fan-out of
// a coarse invalidation). Order is ascending host ID in both modes — the
// same order the hand-inlined `sh &= sh - 1` loops always walked — and the
// iterator is a stack value, so hot-path loops stay allocation-free where
// a closure-based ForEachSharer would not.
func (s SharerSet) Iter(hosts int) SharerIter {
	it := SharerIter{rem: s.bits, shift: s.shift, hosts: hosts}
	if s.shift != 0 && s.count == 0 {
		it.rem = 0
	}
	return it
}

// SharerIter walks a SharerSet low host to high. Use as:
//
//	it := e.Sharers.Iter(m.cfg.Hosts)
//	for it.Next() { g := it.Host() ... }
type SharerIter struct {
	rem      uint64
	cur, end int
	hosts    int
	host     int
	shift    uint8
}

// Next advances to the next host, reporting whether one exists.
func (it *SharerIter) Next() bool {
	if it.shift == 0 {
		if it.rem == 0 {
			return false
		}
		it.host = bits.TrailingZeros64(it.rem)
		it.rem &= it.rem - 1
		return true
	}
	if it.cur < it.end {
		it.host = it.cur
		it.cur++
		return true
	}
	if it.rem == 0 {
		return false
	}
	r := bits.TrailingZeros64(it.rem)
	it.rem &= it.rem - 1
	lo := r << it.shift
	if lo >= it.hosts {
		// Regions iterate ascending, so everything further is out of range.
		it.rem = 0
		return false
	}
	hi := lo + 1<<it.shift
	if hi > it.hosts {
		hi = it.hosts
	}
	it.host = lo
	it.cur = lo + 1
	it.end = hi
	return true
}

// Host returns the current host after a true Next.
func (it *SharerIter) Host() int { return it.host }

// HostSet is an exact 256-bit host set for observation-side bookkeeping
// (auditor aggregation, fact reports). Unlike SharerSet it is never stored
// in a directory entry and never approximates; the auditor builds one per
// line and asks the directory's SharerSet whether it Describes it.
type HostSet struct {
	w [4]uint64
}

// HostSetOf builds a set from explicit hosts.
func HostSetOf(hosts ...int) HostSet {
	var s HostSet
	for _, h := range hosts {
		s.Add(h)
	}
	return s
}

// Add inserts host.
func (s *HostSet) Add(host int) { s.w[host>>6] |= uint64(1) << uint(host&63) }

// Del removes host.
func (s *HostSet) Del(host int) { s.w[host>>6] &^= uint64(1) << uint(host&63) }

// Contains reports membership.
func (s HostSet) Contains(host int) bool {
	return s.w[host>>6]&(uint64(1)<<uint(host&63)) != 0
}

// Count returns the population.
func (s HostSet) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s HostSet) Empty() bool { return s.w[0]|s.w[1]|s.w[2]|s.w[3] == 0 }

// Without returns the set minus host.
func (s HostSet) Without(host int) HostSet {
	s.w[host>>6] &^= uint64(1) << uint(host&63)
	return s
}

// Minus returns the set difference s − o.
func (s HostSet) Minus(o HostSet) HostSet {
	for i := range s.w {
		s.w[i] &^= o.w[i]
	}
	return s
}

// Only reports whether host is the set's sole member.
func (s HostSet) Only(host int) bool {
	return s.Contains(host) && s.Without(host).Empty()
}

// ForEach invokes fn for every member, ascending.
func (s HostSet) ForEach(fn func(host int)) {
	for i, w := range s.w {
		for ; w != 0; w &= w - 1 {
			fn(i*64 + bits.TrailingZeros64(w))
		}
	}
}

func (s HostSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(h int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", h)
	})
	b.WriteByte('}')
	return b.String()
}
