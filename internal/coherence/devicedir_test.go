package coherence

import (
	"math/rand"
	"testing"

	"pipm/internal/config"
)

func tiny() *DeviceDir {
	return NewDeviceDir(config.CXLConfig{DirSets: 4, DirWays: 2, DirSlices: 2, LinkBW: 1})
}

func TestDirStateString(t *testing.T) {
	if DirInvalid.String() != "I" || DirShared.String() != "S" || DirModified.String() != "M" {
		t.Fatal("DirState.String mismatch")
	}
}

func TestLookupMissThenInstall(t *testing.T) {
	d := tiny()
	if _, ok := d.Lookup(42); ok {
		t.Fatal("hit in empty directory")
	}
	d.Update(42, Entry{State: DirShared, Sharers: SharerSetOf(0, 0, 2)})
	e, ok := d.Lookup(42)
	if !ok || e.State != DirShared || e.Sharers != SharerSetOf(0, 0, 2) {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	s := d.Stats()
	if s.MissI != 1 || s.HitS != 1 || s.Installs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUpdateInPlace(t *testing.T) {
	d := tiny()
	d.Update(7, Entry{State: DirShared, Sharers: SharerSetOf(0, 0)})
	if _, evicted := d.Update(7, Entry{State: DirModified, Owner: 3}); evicted {
		t.Fatal("in-place update evicted")
	}
	e, _ := d.Lookup(7)
	if e.State != DirModified || e.Owner != 3 {
		t.Fatalf("entry = %+v", e)
	}
	if d.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", d.Occupancy())
	}
}

func TestUpdateInvalidRemoves(t *testing.T) {
	d := tiny()
	d.Update(7, Entry{State: DirShared, Sharers: SharerSetOf(0, 0)})
	d.Update(7, Entry{State: DirInvalid})
	if _, ok := d.Lookup(7); ok {
		t.Fatal("entry survived invalidating update")
	}
	// Invalid update of an absent line is a no-op.
	if _, evicted := d.Update(99, Entry{State: DirInvalid}); evicted {
		t.Fatal("invalid update of absent line evicted")
	}
	if d.Occupancy() != 0 {
		t.Fatal("occupancy nonzero")
	}
}

func TestBackInvalidation(t *testing.T) {
	d := tiny()
	// Fill one set: lines mapping to slice 0, set 0 are multiples of
	// slices*sets = 8.
	d.Update(0, Entry{State: DirShared, Sharers: SharerSetOf(0, 0)})
	d.Update(8*1, Entry{State: DirModified, Owner: 2})
	bi, evicted := d.Update(8*2, Entry{State: DirShared, Sharers: SharerSetOf(0, 1)})
	if !evicted {
		t.Fatal("third entry in 2-way set did not back-invalidate")
	}
	if bi.Line != 0 || bi.Entry.State != DirShared {
		t.Fatalf("back-invalidated %+v, want line 0 in S", bi)
	}
	if d.Stats().BackInvals != 1 {
		t.Fatalf("BackInvals = %d", d.Stats().BackInvals)
	}
}

func TestRemove(t *testing.T) {
	d := tiny()
	d.Update(5, Entry{State: DirModified, Owner: 1})
	e, ok := d.Remove(5)
	if !ok || e.Owner != 1 {
		t.Fatalf("Remove = %+v, %v", e, ok)
	}
	if _, ok := d.Remove(5); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestRemoveSharer(t *testing.T) {
	d := tiny()
	d.Update(5, Entry{State: DirShared, Sharers: SharerSetOf(0, 1, 2)})
	if !d.RemoveSharer(5, 1) {
		t.Fatal("entry should remain with one sharer left")
	}
	e, _ := d.Lookup(5)
	if e.Sharers != SharerSetOf(0, 2) {
		t.Fatalf("sharers = %v", e.Sharers)
	}
	if d.RemoveSharer(5, 2) {
		t.Fatal("entry should vanish when last sharer leaves")
	}
	if _, ok := d.Lookup(5); ok {
		t.Fatal("empty entry still present")
	}
	// M entries vanish when the owner leaves.
	d.Update(6, Entry{State: DirModified, Owner: 3})
	if d.RemoveSharer(6, 3) {
		t.Fatal("M entry should vanish when owner leaves")
	}
	// Removing a non-owner from an M entry keeps it.
	d.Update(6, Entry{State: DirModified, Owner: 3})
	if !d.RemoveSharer(6, 1) {
		t.Fatal("M entry should survive removal of non-owner")
	}
	// Absent line.
	if d.RemoveSharer(1234, 0) {
		t.Fatal("RemoveSharer on absent line returned true")
	}
}

func TestSlicingSpreadsEntries(t *testing.T) {
	d := tiny() // 2 slices × 4 sets × 2 ways = 16 entries
	// 16 consecutive lines should all fit: consecutive lines alternate
	// slices and walk sets.
	for i := config.Addr(0); i < 16; i++ {
		if _, evicted := d.Update(i, Entry{State: DirShared, Sharers: SharerSetOf(0, 0)}); evicted {
			t.Fatalf("eviction while filling to capacity at line %d", i)
		}
	}
	if d.Occupancy() != d.Capacity() {
		t.Fatalf("occupancy %d != capacity %d", d.Occupancy(), d.Capacity())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	d := tiny()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		d.Update(config.Addr(rng.Intn(4096)), Entry{State: DirShared, Sharers: SharerSetOf(0, 0)})
		if d.Occupancy() > d.Capacity() {
			t.Fatal("occupancy exceeded capacity")
		}
	}
}

func TestDefaultGeometryMatchesTable2(t *testing.T) {
	c := config.Default()
	d := NewDeviceDir(c.CXL)
	if d.Capacity() != 2048*16*16 {
		t.Fatalf("capacity = %d, want 524288", d.Capacity())
	}
}

func TestNewRejectsBadSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	NewDeviceDir(config.CXLConfig{DirSets: 3, DirWays: 1, DirSlices: 1})
}

func TestNewRejectsBadSlices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two slices")
		}
	}()
	NewDeviceDir(config.CXLConfig{DirSets: 4, DirWays: 1, DirSlices: 3})
}

// Property: Update/Remove/RemoveSharer keep a shadow ledger exactly in sync.
func TestDirectoryLedgerProperty(t *testing.T) {
	d := tiny()
	shadow := map[config.Addr]Entry{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		line := config.Addr(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			mask := rng.Intn(15) + 1
			var ss SharerSet
			for h := 0; h < 4; h++ {
				if mask&(1<<h) != 0 {
					ss = ss.With(h)
				}
			}
			e := Entry{State: DirShared, Sharers: ss}
			bi, ev := d.Update(line, e)
			shadow[line] = e
			if ev {
				delete(shadow, bi.Line)
			}
		case 1:
			e := Entry{State: DirModified, Owner: int16(rng.Intn(4))}
			bi, ev := d.Update(line, e)
			shadow[line] = e
			if ev {
				delete(shadow, bi.Line)
			}
		case 2:
			d.Remove(line)
			delete(shadow, line)
		default:
			h := rng.Intn(4)
			remains := d.RemoveSharer(line, h)
			if e, ok := shadow[line]; ok {
				switch e.State {
				case DirShared:
					e.Sharers = e.Sharers.Without(h)
					if e.Sharers.Empty() {
						delete(shadow, line)
					} else {
						shadow[line] = e
					}
				case DirModified:
					if int(e.Owner) == h {
						delete(shadow, line)
					}
				}
			}
			if _, ok := shadow[line]; ok != remains {
				t.Fatalf("RemoveSharer(%d,%d) remains=%v, shadow says %v", line, h, remains, ok)
			}
		}
	}
	if d.Occupancy() != len(shadow) {
		t.Fatalf("occupancy %d, shadow %d", d.Occupancy(), len(shadow))
	}
	for line, want := range shadow {
		got, ok := d.Lookup(line)
		if !ok || got != want {
			t.Fatalf("line %d: dir %+v/%v, shadow %+v", line, got, ok, want)
		}
	}
}
