// Package coherence implements the directory state of the multi-host
// CXL-DSM protocol (§2.2 of the paper): the device coherence directory on
// the CXL memory node, which tracks — per CXL-memory cache line resident in
// any processor's cache — the coherence state and the set of caching hosts.
//
// The PIPM I' state ("migrated to a host's local memory, not cached") is
// deliberately NOT stored here: the paper encodes it as directory-Invalid
// plus the per-line in-memory bit (held by internal/core), which is also why
// PIPM *reduces* device-directory pressure — migrated lines need no entry.
package coherence

import (
	"fmt"

	"pipm/internal/config"
)

// DirState is a device-directory entry's state at host granularity.
type DirState uint8

const (
	// DirInvalid: no host caches the line (no entry).
	DirInvalid DirState = iota
	// DirShared: one or more hosts hold clean copies; CXL memory is valid.
	DirShared
	// DirModified: exactly one host holds the latest (dirty) copy.
	DirModified
)

func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "I"
	case DirShared:
		return "S"
	default:
		return "M"
	}
}

// Entry is one directory entry's visible content.
type Entry struct {
	State   DirState
	Sharers SharerSet // caching hosts (valid in S)
	Owner   int16     // owning host (valid in M)
}

type dirLine struct {
	tag   config.Addr
	valid bool
	lru   uint64
	entry Entry
}

// BackInvalidation reports a line displaced from the directory for capacity;
// the protocol must invalidate (and for M, write back) the hosts' copies.
type BackInvalidation struct {
	Line  config.Addr
	Entry Entry
}

// Stats counts directory events. Per-slice stats additionally count the
// batched shootdown traffic the machine routes through each slice.
type Stats struct {
	Lookups    uint64
	HitS       uint64
	HitM       uint64
	MissI      uint64
	Installs   uint64
	BackInvals uint64

	// Shootdown rounds noted against this slice: Batches is the number of
	// inter-host messages actually sent (one per sharer in the exact
	// regime, one per presence region in the summary regime), Targets the
	// number of hosts those messages covered. Batches < Targets is the
	// multicast saving of coarse sharer tracking.
	ShootdownBatches uint64
	ShootdownTargets uint64
}

func (s *Stats) add(o Stats) {
	s.Lookups += o.Lookups
	s.HitS += o.HitS
	s.HitM += o.HitM
	s.MissI += o.MissI
	s.Installs += o.Installs
	s.BackInvals += o.BackInvals
	s.ShootdownBatches += o.ShootdownBatches
	s.ShootdownTargets += o.ShootdownTargets
}

// dirSlice is one address-hashed slice of the directory: its own lines,
// LRU clock, O(1) occupancy counter and event counters. Entries of a set
// never cross a slice, so a per-slice LRU clock preserves exactly the
// relative recency order a single global clock establishes within any set.
type dirSlice struct {
	lines []dirLine // sets*ways
	tick  uint64
	occ   int
	stats Stats
}

// DeviceDir is the sliced, set-associative device coherence directory.
// Geometry comes from Table 2: Sets × Ways per slice, Slices slices; lines
// hash to a slice then index a set within it. Both counts must be powers
// of two — the slice hash is a mask, and harness.ScaleForHosts grows the
// slice count with the host count so lookup ports keep pace.
type DeviceDir struct {
	sets, ways int
	sliceMask  config.Addr
	sliceShift uint
	slices     []dirSlice
}

// NewDeviceDir builds the directory from CXL configuration.
func NewDeviceDir(cfg config.CXLConfig) *DeviceDir {
	if cfg.DirSets <= 0 || cfg.DirSets&(cfg.DirSets-1) != 0 {
		panic(fmt.Sprintf("coherence: %d directory sets is not a power of two", cfg.DirSets))
	}
	if cfg.DirSlices <= 0 || cfg.DirSlices&(cfg.DirSlices-1) != 0 {
		panic(fmt.Sprintf("coherence: %d directory slices is not a power of two", cfg.DirSlices))
	}
	d := &DeviceDir{
		sets:       cfg.DirSets,
		ways:       cfg.DirWays,
		sliceMask:  config.Addr(cfg.DirSlices - 1),
		sliceShift: uint(log2(cfg.DirSlices)),
		slices:     make([]dirSlice, cfg.DirSlices),
	}
	for i := range d.slices {
		d.slices[i].lines = make([]dirLine, cfg.DirSets*cfg.DirWays)
	}
	return d
}

// Capacity returns the number of entries the directory can hold.
func (d *DeviceDir) Capacity() int { return d.sets * d.ways * len(d.slices) }

// Slices returns the slice count.
func (d *DeviceDir) Slices() int { return len(d.slices) }

// SliceFor returns the slice index line hashes to.
func (d *DeviceDir) SliceFor(line config.Addr) int { return int(line & d.sliceMask) }

func (d *DeviceDir) setFor(line config.Addr) (*dirSlice, []dirLine) {
	sl := &d.slices[line&d.sliceMask]
	set := int(line>>d.sliceShift) & (d.sets - 1)
	idx := set * d.ways
	return sl, sl.lines[idx : idx+d.ways]
}

// log2 returns the exponent of a power of two.
func log2(n int) int {
	e := 0
	for n > 1 {
		n >>= 1
		e++
	}
	return e
}

// Lookup returns the entry for line, if present. It does not refresh LRU;
// use Touch after deciding the request will use the entry.
func (d *DeviceDir) Lookup(line config.Addr) (Entry, bool) {
	sl, set := d.setFor(line)
	sl.stats.Lookups++
	for i := range set {
		if set[i].valid && set[i].tag == line {
			switch set[i].entry.State {
			case DirShared:
				sl.stats.HitS++
			case DirModified:
				sl.stats.HitM++
			}
			return set[i].entry, true
		}
	}
	sl.stats.MissI++
	return Entry{}, false
}

// Peek returns the entry for line without touching LRU order or lookup
// statistics. Directory audits use this instead of Lookup so an audited run
// keeps the exact same stats stream as an unaudited one.
func (d *DeviceDir) Peek(line config.Addr) (Entry, bool) {
	_, set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// ForEach invokes fn for every valid entry without touching LRU order or
// statistics (observation-only, for the invariant auditor).
func (d *DeviceDir) ForEach(fn func(line config.Addr, e Entry)) {
	for s := range d.slices {
		lines := d.slices[s].lines
		for i := range lines {
			if lines[i].valid {
				fn(lines[i].tag, lines[i].entry)
			}
		}
	}
}

// Update installs or replaces the entry for line, returning a capacity
// back-invalidation if a victim in use had to be displaced. Passing an
// entry with State == DirInvalid removes the line's entry instead.
func (d *DeviceDir) Update(line config.Addr, e Entry) (BackInvalidation, bool) {
	sl, set := d.setFor(line)
	sl.tick++
	for i := range set {
		if set[i].valid && set[i].tag == line {
			if e.State == DirInvalid {
				set[i] = dirLine{}
				sl.occ--
				return BackInvalidation{}, false
			}
			set[i].entry = e
			set[i].lru = sl.tick
			return BackInvalidation{}, false
		}
	}
	if e.State == DirInvalid {
		return BackInvalidation{}, false
	}
	victim, found := 0, false
	for i := range set {
		if !set[i].valid {
			victim, found = i, true
			break
		}
	}
	var bi BackInvalidation
	evicted := false
	if !found {
		oldest := set[0].lru
		for i := 1; i < d.ways; i++ {
			if set[i].lru < oldest {
				oldest, victim = set[i].lru, i
			}
		}
		bi = BackInvalidation{Line: set[victim].tag, Entry: set[victim].entry}
		evicted = true
		sl.stats.BackInvals++
	}
	set[victim] = dirLine{tag: line, valid: true, lru: sl.tick, entry: e}
	if !evicted {
		sl.occ++
	}
	sl.stats.Installs++
	return bi, evicted
}

// Remove drops line's entry (eviction notifications from hosts), returning
// the entry it held.
func (d *DeviceDir) Remove(line config.Addr) (Entry, bool) {
	sl, set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			e := set[i].entry
			set[i] = dirLine{}
			sl.occ--
			return e, true
		}
	}
	return Entry{}, false
}

// RemoveSharer clears host h from line's sharer set, dropping the entry when
// the set empties. It reports whether an entry remains.
func (d *DeviceDir) RemoveSharer(line config.Addr, h int) bool {
	sl, set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			e := &set[i].entry
			switch e.State {
			case DirShared:
				e.Sharers = e.Sharers.Without(h)
				if e.Sharers.Empty() {
					set[i] = dirLine{}
					sl.occ--
					return false
				}
			case DirModified:
				if int(e.Owner) == h {
					set[i] = dirLine{}
					sl.occ--
					return false
				}
			}
			return true
		}
	}
	return false
}

// NoteShootdown records an invalidation round the machine priced against
// line's slice: batches inter-host messages covering targets hosts.
func (d *DeviceDir) NoteShootdown(line config.Addr, batches, targets int) {
	sl := &d.slices[line&d.sliceMask]
	sl.stats.ShootdownBatches += uint64(batches)
	sl.stats.ShootdownTargets += uint64(targets)
}

// Occupancy returns the number of valid entries (O(1) per slice).
func (d *DeviceDir) Occupancy() int {
	n := 0
	for i := range d.slices {
		n += d.slices[i].occ
	}
	return n
}

// SliceOccupancy returns slice s's valid-entry count.
func (d *DeviceDir) SliceOccupancy(s int) int { return d.slices[s].occ }

// SliceStats returns slice s's accumulated counters.
func (d *DeviceDir) SliceStats(s int) Stats { return d.slices[s].stats }

// Stats returns counters accumulated across all slices.
func (d *DeviceDir) Stats() Stats {
	var t Stats
	for i := range d.slices {
		t.add(d.slices[i].stats)
	}
	return t
}
