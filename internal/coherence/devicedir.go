// Package coherence implements the directory state of the multi-host
// CXL-DSM protocol (§2.2 of the paper): the device coherence directory on
// the CXL memory node, which tracks — per CXL-memory cache line resident in
// any processor's cache — the coherence state and the set of caching hosts.
//
// The PIPM I' state ("migrated to a host's local memory, not cached") is
// deliberately NOT stored here: the paper encodes it as directory-Invalid
// plus the per-line in-memory bit (held by internal/core), which is also why
// PIPM *reduces* device-directory pressure — migrated lines need no entry.
package coherence

import (
	"fmt"

	"pipm/internal/config"
)

// DirState is a device-directory entry's state at host granularity.
type DirState uint8

const (
	// DirInvalid: no host caches the line (no entry).
	DirInvalid DirState = iota
	// DirShared: one or more hosts hold clean copies; CXL memory is valid.
	DirShared
	// DirModified: exactly one host holds the latest (dirty) copy.
	DirModified
)

func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "I"
	case DirShared:
		return "S"
	default:
		return "M"
	}
}

// Entry is one directory entry's visible content.
type Entry struct {
	State   DirState
	Sharers uint32 // bitmask of caching hosts (valid in S)
	Owner   int8   // owning host (valid in M)
}

type dirLine struct {
	tag   config.Addr
	valid bool
	lru   uint64
	entry Entry
}

// BackInvalidation reports a line displaced from the directory for capacity;
// the protocol must invalidate (and for M, write back) the hosts' copies.
type BackInvalidation struct {
	Line  config.Addr
	Entry Entry
}

// Stats counts directory events.
type Stats struct {
	Lookups    uint64
	HitS       uint64
	HitM       uint64
	MissI      uint64
	Installs   uint64
	BackInvals uint64
}

// DeviceDir is the sliced, set-associative device coherence directory.
// Geometry comes from Table 2: Sets × Ways per slice, Slices slices; lines
// hash to a slice then index a set within it.
type DeviceDir struct {
	sets, ways, slices int
	lines              []dirLine // slices*sets*ways
	tick               uint64
	occ                int // valid entries, maintained so Occupancy is O(1)
	stats              Stats
}

// NewDeviceDir builds the directory from CXL configuration.
func NewDeviceDir(cfg config.CXLConfig) *DeviceDir {
	if cfg.DirSets <= 0 || cfg.DirSets&(cfg.DirSets-1) != 0 {
		panic(fmt.Sprintf("coherence: %d directory sets is not a power of two", cfg.DirSets))
	}
	return &DeviceDir{
		sets:   cfg.DirSets,
		ways:   cfg.DirWays,
		slices: cfg.DirSlices,
		lines:  make([]dirLine, cfg.DirSets*cfg.DirWays*cfg.DirSlices),
	}
}

// Capacity returns the number of entries the directory can hold.
func (d *DeviceDir) Capacity() int { return d.sets * d.ways * d.slices }

func (d *DeviceDir) setFor(line config.Addr) []dirLine {
	slice := int(line) % d.slices
	set := int(line/config.Addr(d.slices)) & (d.sets - 1)
	idx := (slice*d.sets + set) * d.ways
	return d.lines[idx : idx+d.ways]
}

// Lookup returns the entry for line, if present. It does not refresh LRU;
// use Touch after deciding the request will use the entry.
func (d *DeviceDir) Lookup(line config.Addr) (Entry, bool) {
	d.stats.Lookups++
	set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			switch set[i].entry.State {
			case DirShared:
				d.stats.HitS++
			case DirModified:
				d.stats.HitM++
			}
			return set[i].entry, true
		}
	}
	d.stats.MissI++
	return Entry{}, false
}

// Peek returns the entry for line without touching LRU order or lookup
// statistics. Directory audits use this instead of Lookup so an audited run
// keeps the exact same stats stream as an unaudited one.
func (d *DeviceDir) Peek(line config.Addr) (Entry, bool) {
	set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// ForEach invokes fn for every valid entry without touching LRU order or
// statistics (observation-only, for the invariant auditor).
func (d *DeviceDir) ForEach(fn func(line config.Addr, e Entry)) {
	for i := range d.lines {
		if d.lines[i].valid {
			fn(d.lines[i].tag, d.lines[i].entry)
		}
	}
}

// Update installs or replaces the entry for line, returning a capacity
// back-invalidation if a victim in use had to be displaced. Passing an
// entry with State == DirInvalid removes the line's entry instead.
func (d *DeviceDir) Update(line config.Addr, e Entry) (BackInvalidation, bool) {
	set := d.setFor(line)
	d.tick++
	for i := range set {
		if set[i].valid && set[i].tag == line {
			if e.State == DirInvalid {
				set[i] = dirLine{}
				d.occ--
				return BackInvalidation{}, false
			}
			set[i].entry = e
			set[i].lru = d.tick
			return BackInvalidation{}, false
		}
	}
	if e.State == DirInvalid {
		return BackInvalidation{}, false
	}
	victim, found := 0, false
	for i := range set {
		if !set[i].valid {
			victim, found = i, true
			break
		}
	}
	var bi BackInvalidation
	evicted := false
	if !found {
		oldest := set[0].lru
		for i := 1; i < d.ways; i++ {
			if set[i].lru < oldest {
				oldest, victim = set[i].lru, i
			}
		}
		bi = BackInvalidation{Line: set[victim].tag, Entry: set[victim].entry}
		evicted = true
		d.stats.BackInvals++
	}
	set[victim] = dirLine{tag: line, valid: true, lru: d.tick, entry: e}
	if !evicted {
		d.occ++
	}
	d.stats.Installs++
	return bi, evicted
}

// Remove drops line's entry (eviction notifications from hosts), returning
// the entry it held.
func (d *DeviceDir) Remove(line config.Addr) (Entry, bool) {
	set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			e := set[i].entry
			set[i] = dirLine{}
			d.occ--
			return e, true
		}
	}
	return Entry{}, false
}

// RemoveSharer clears host h from line's sharer set, dropping the entry when
// the set empties. It reports whether an entry remains.
func (d *DeviceDir) RemoveSharer(line config.Addr, h int) bool {
	set := d.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			e := &set[i].entry
			switch e.State {
			case DirShared:
				e.Sharers &^= 1 << uint(h)
				if e.Sharers == 0 {
					set[i] = dirLine{}
					d.occ--
					return false
				}
			case DirModified:
				if int(e.Owner) == h {
					set[i] = dirLine{}
					d.occ--
					return false
				}
			}
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries.
func (d *DeviceDir) Occupancy() int { return d.occ }

// Stats returns accumulated counters.
func (d *DeviceDir) Stats() Stats { return d.stats }

// SharerCount returns the number of hosts in a sharer mask.
func SharerCount(mask uint32) int {
	n := 0
	for mask != 0 {
		mask &= mask - 1
		n++
	}
	return n
}

// ForEachSharer invokes fn for each host set in mask.
func ForEachSharer(mask uint32, fn func(host int)) {
	for h := 0; mask != 0; h++ {
		if mask&1 != 0 {
			fn(h)
		}
		mask >>= 1
	}
}
