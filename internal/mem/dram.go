// Package mem implements a bank-aware DDR timing model used for both the
// hosts' local DRAM and the CXL node's pooled DRAM. It is deliberately
// simpler than a full command-level DDR scheduler: each access resolves to a
// row hit / closed-row / row-conflict latency against per-bank state, plus
// serialization on the channel data bus, plus FCFS queueing on both. That is
// the level of fidelity the migration study needs — what matters is the
// local-vs-remote latency gap and bandwidth pressure from page transfers.
package mem

import (
	"fmt"

	"pipm/internal/config"
	"pipm/internal/sim"
)

// rowBytes is the DRAM row (page) size assumed for row-buffer locality.
const rowBytes = 8192

// AccessKind classifies how an access resolved in the row buffer.
type AccessKind uint8

const (
	RowHit AccessKind = iota
	RowClosed
	RowConflict
)

func (k AccessKind) String() string {
	switch k {
	case RowHit:
		return "row-hit"
	case RowClosed:
		return "row-closed"
	default:
		return "row-conflict"
	}
}

type bank struct {
	openRow    int64
	hasOpenRow bool
	// nextActivate enforces tRC between successive activates to one bank.
	nextActivate sim.Time
}

type channel struct {
	bus   *sim.Resource
	banks []bank
}

// Stats aggregates DRAM event counts.
type Stats struct {
	Reads     uint64
	Writes    uint64
	Hits      uint64
	Closed    uint64
	Conflicts uint64
}

// DRAM models one memory pool: a set of channels, each with banks and a
// bandwidth-limited data bus.
type DRAM struct {
	cfg      config.DRAMConfig
	name     string
	channels []channel
	burst    sim.Time // 64B serialization on one channel's bus
	stats    Stats
}

// New builds a DRAM pool from its configuration.
func New(name string, cfg config.DRAMConfig) *DRAM {
	d := &DRAM{
		cfg:   cfg,
		name:  name,
		burst: sim.Time(float64(config.LineBytes) / cfg.ChannelBW * float64(sim.Second)),
	}
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		d.channels[i] = channel{
			bus:   sim.NewResource(fmt.Sprintf("%s.ch%d", name, i)),
			banks: make([]bank, cfg.BanksPerChan),
		}
	}
	return d
}

// route maps a line address to (channel, bank, row). Channels interleave at
// line granularity so streams spread across channels; banks interleave at
// row granularity so a scan walks one row per bank before wrapping.
func (d *DRAM) route(line config.Addr) (ch, bk int, row int64) {
	ch = int(line) % d.cfg.Channels
	rowIdx := int64(line) * config.LineBytes / rowBytes
	bk = int(rowIdx) % d.cfg.BanksPerChan
	row = rowIdx / int64(d.cfg.BanksPerChan)
	return ch, bk, row
}

// Access performs one 64-byte access to the line containing addr, starting
// no earlier than now, and returns the completion time. Writes use the same
// timing as reads at this fidelity (write latency is buffered in real parts,
// but bandwidth and bank occupancy still apply, which is what we model).
func (d *DRAM) Access(now sim.Time, addr config.Addr, write bool) sim.Time {
	t, _ := d.access(now, addr, write)
	return t
}

// AccessKind is like Access but also reports the row-buffer outcome,
// which the tests use to pin timing behaviour.
func (d *DRAM) AccessKind(now sim.Time, addr config.Addr, write bool) (sim.Time, AccessKind) {
	return d.access(now, addr, write)
}

func (d *DRAM) access(now sim.Time, addr config.Addr, write bool) (sim.Time, AccessKind) {
	chIdx, bkIdx, row := d.route(addr.Line())
	ch := &d.channels[chIdx]
	b := &ch.banks[bkIdx]

	var kind AccessKind
	var core sim.Time // command latency before data transfer
	switch {
	case b.hasOpenRow && b.openRow == row:
		kind = RowHit
		core = d.cfg.TCL
	case !b.hasOpenRow:
		kind = RowClosed
		core = d.cfg.TRCD + d.cfg.TCL
	default:
		kind = RowConflict
		core = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCL
	}

	start := now
	if kind != RowHit {
		// An activate is needed; respect tRC since this bank's last activate.
		start = sim.Max(start, b.nextActivate)
		b.nextActivate = start + d.cfg.TRC
		b.openRow, b.hasOpenRow = row, true
	}

	// Data burst serializes on the channel bus after the command latency.
	done := ch.bus.Acquire(start+core, d.burst)

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	switch kind {
	case RowHit:
		d.stats.Hits++
	case RowClosed:
		d.stats.Closed++
	default:
		d.stats.Conflicts++
	}
	return done, kind
}

// AccessBulk models an n-byte streaming transfer (page migration): the first
// line pays full access latency; subsequent lines pipeline, paying only data
// bus serialization (activates and CAS latency hide under the stream, as a
// real controller's command pipelining achieves for sequential bursts). It
// returns the completion time of the last byte.
func (d *DRAM) AccessBulk(now sim.Time, addr config.Addr, n int, write bool) sim.Time {
	if n <= 0 {
		return now
	}
	done := d.Access(now, addr, write)
	last := done
	lines := (n + config.LineBytes - 1) / config.LineBytes
	for i := 1; i < lines; i++ {
		line := (addr + config.Addr(i*config.LineBytes)).Line()
		chIdx, bkIdx, row := d.route(line)
		ch := &d.channels[chIdx]
		b := &ch.banks[bkIdx]
		if !(b.hasOpenRow && b.openRow == row) {
			b.openRow, b.hasOpenRow = row, true
		}
		t := ch.bus.Acquire(done, d.burst)
		last = sim.Max(last, t)
		if write {
			d.stats.Writes++
		} else {
			d.stats.Reads++
		}
		d.stats.Hits++
	}
	return last
}

// Stats returns accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Name returns the pool's diagnostic name.
func (d *DRAM) Name() string { return d.name }

// BusyTime sums data-bus busy time across channels.
func (d *DRAM) BusyTime() sim.Time {
	var t sim.Time
	for i := range d.channels {
		t += d.channels[i].bus.BusyTime()
	}
	return t
}

// Reset clears bank state, bus queues and statistics.
func (d *DRAM) Reset() {
	for i := range d.channels {
		d.channels[i].bus.Reset()
		for j := range d.channels[i].banks {
			d.channels[i].banks[j] = bank{}
		}
	}
	d.stats = Stats{}
}
