package mem

import (
	"testing"
	"testing/quick"

	"pipm/internal/config"
	"pipm/internal/sim"
)

func testCfg() config.DRAMConfig {
	c := config.Default()
	return c.LocalDRAM
}

func TestFirstAccessIsClosedRow(t *testing.T) {
	d := New("t", testCfg())
	done, kind := d.AccessKind(0, 0, false)
	if kind != RowClosed {
		t.Fatalf("first access kind = %v, want row-closed", kind)
	}
	// tRCD + tCL + burst = 15 + 20 + 64B@38.4GB/s(≈1.67ns)
	bw := testCfg().ChannelBW
	want := 15*sim.Nanosecond + 20*sim.Nanosecond + sim.Time(float64(config.LineBytes)/bw*float64(sim.Second))
	if done != want {
		t.Fatalf("first access done = %v, want %v", done, want)
	}
}

func TestRowHitIsFaster(t *testing.T) {
	d := New("t", testCfg())
	first := d.Access(0, 0, false)
	// Same row, much later (no queueing): should be a hit with only tCL.
	start := 10 * sim.Microsecond
	done, kind := d.AccessKind(start, 64, false)
	if kind != RowHit {
		t.Fatalf("second access kind = %v, want row-hit", kind)
	}
	hitLat := done - start
	if hitLat >= first {
		t.Fatalf("row hit latency %v not faster than closed-row %v", hitLat, first)
	}
}

func TestRowConflictIsSlowest(t *testing.T) {
	cfg := testCfg()
	d := New("t", cfg)
	// Two rows mapping to the same bank of the same channel: rows step by
	// banks*channels at row granularity.
	stride := config.Addr(rowBytes * cfg.BanksPerChan * cfg.Channels)
	d.Access(0, 0, false)
	start := 10 * sim.Microsecond
	done, kind := d.AccessKind(start, stride, false)
	if kind != RowConflict {
		t.Fatalf("conflicting access kind = %v, want row-conflict", kind)
	}
	wantMin := cfg.TRP + cfg.TRCD + cfg.TCL
	if lat := done - start; lat < wantMin {
		t.Fatalf("conflict latency %v < %v", lat, wantMin)
	}
}

func TestTRCLimitsActivateRate(t *testing.T) {
	cfg := testCfg()
	d := New("t", cfg)
	stride := config.Addr(rowBytes * cfg.BanksPerChan * cfg.Channels)
	// Alternate between two conflicting rows back-to-back: activates to the
	// same bank must be ≥ tRC apart, so 10 accesses take ≥ 9·tRC.
	var done sim.Time
	for i := 0; i < 10; i++ {
		addr := config.Addr(i%2) * stride
		done = d.Access(done, addr, false)
	}
	if done < 9*cfg.TRC {
		t.Fatalf("10 same-bank conflicting accesses finished at %v, want ≥ %v", done, 9*cfg.TRC)
	}
}

func TestChannelInterleaving(t *testing.T) {
	c := config.Default()
	cfg := c.CXLDRAM // 2 channels
	d := New("t", cfg)
	// Adjacent lines land on different channels.
	ch0, _, _ := d.route(0)
	ch1, _, _ := d.route(1)
	if ch0 == ch1 {
		t.Fatalf("adjacent lines on same channel %d", ch0)
	}
	// Parallel streams to both channels should overlap: total time for 2N
	// accesses split across channels ≲ time for 2N on one channel.
	single := New("s", config.DRAMConfig{Channels: 1, BanksPerChan: cfg.BanksPerChan,
		TRC: cfg.TRC, TRCD: cfg.TRCD, TCL: cfg.TCL, TRP: cfg.TRP, ChannelBW: cfg.ChannelBW})
	var doneDual, doneSingle sim.Time
	for i := 0; i < 256; i++ {
		a := config.Addr(i * config.LineBytes)
		doneDual = sim.Max(doneDual, d.Access(0, a, false))
		doneSingle = sim.Max(doneSingle, single.Access(0, a, false))
	}
	if doneDual >= doneSingle {
		t.Fatalf("dual-channel %v not faster than single-channel %v", doneDual, doneSingle)
	}
}

func TestBusSerializesBandwidth(t *testing.T) {
	cfg := testCfg()
	d := New("t", cfg)
	// Hammer one row: all row hits, so the channel bus becomes the
	// bottleneck and throughput ≈ ChannelBW.
	d.Access(0, 0, false) // open the row
	n := 10000
	var done sim.Time
	for i := 0; i < n; i++ {
		done = d.Access(0, config.Addr(i%128*config.LineBytes), false)
	}
	bytes := float64(n * config.LineBytes)
	gbps := bytes / done.Seconds() / 1e9
	if gbps > 38.4*1.01 {
		t.Fatalf("sustained %.1f GB/s exceeds channel bandwidth", gbps)
	}
	if gbps < 30 {
		t.Fatalf("sustained %.1f GB/s, expected near 38.4 for row hits", gbps)
	}
}

func TestAccessBulkPageTransfer(t *testing.T) {
	cfg := testCfg()
	d := New("t", cfg)
	done := d.AccessBulk(0, 0, config.PageBytes, true)
	// 4KB must take at least its serialization time at channel bandwidth.
	minSerial := sim.Time(float64(config.PageBytes) / cfg.ChannelBW * float64(sim.Second))
	if done < minSerial {
		t.Fatalf("4KB bulk write finished at %v, < serialization floor %v", done, minSerial)
	}
	if done > 10*minSerial {
		t.Fatalf("4KB bulk write took %v, suspiciously slow", done)
	}
	if d.AccessBulk(5*sim.Microsecond, 0, 0, true) != 5*sim.Microsecond {
		t.Fatal("zero-byte bulk access should be free")
	}
}

func TestStatsAndReset(t *testing.T) {
	d := New("t", testCfg())
	d.Access(0, 0, false)
	d.Access(0, 0, true)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats R/W = %d/%d", s.Reads, s.Writes)
	}
	if s.Hits+s.Closed+s.Conflicts != 2 {
		t.Fatalf("row outcome counts don't sum: %+v", s)
	}
	if d.BusyTime() == 0 {
		t.Fatal("BusyTime = 0 after accesses")
	}
	d.Reset()
	if d.Stats() != (Stats{}) || d.BusyTime() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestKindString(t *testing.T) {
	if RowHit.String() != "row-hit" || RowClosed.String() != "row-closed" || RowConflict.String() != "row-conflict" {
		t.Fatal("AccessKind.String mismatch")
	}
}

// Property: completion monotonically follows request time, and latency is
// bounded below by tCL+burst and above by tRP+tRCD+tCL+burst plus queueing.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := testCfg()
	d := New("t", cfg)
	burst := sim.Time(float64(config.LineBytes) / cfg.ChannelBW * float64(sim.Second))
	now := sim.Time(0)
	f := func(lineHop uint16, gap uint8) bool {
		now += sim.Time(gap) * 100 * sim.Nanosecond // generous gaps: no queueing
		addr := config.Addr(lineHop) * config.LineBytes
		done := d.Access(now, addr, false)
		lat := done - now
		lo := cfg.TCL + burst
		hi := cfg.TRC + cfg.TRP + cfg.TRCD + cfg.TCL + burst // tRC wait worst case
		return lat >= lo && lat <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
