package mem

import (
	"testing"

	"pipm/internal/config"
)

func BenchmarkAccessSequential(b *testing.B) {
	d := New("b", config.Default().CXLDRAM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(0, config.Addr(i*config.LineBytes), false)
	}
}

func BenchmarkAccessRandomish(b *testing.B) {
	d := New("b", config.Default().CXLDRAM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(0, config.Addr(i*7919*config.LineBytes), i&3 == 0)
	}
}

func BenchmarkAccessBulkPage(b *testing.B) {
	d := New("b", config.Default().CXLDRAM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AccessBulk(0, config.Addr(i)*config.PageBytes, config.PageBytes, true)
	}
}
