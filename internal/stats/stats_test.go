package stats

import (
	"strings"
	"testing"

	"pipm/internal/sim"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassL1Hit: "l1-hit", ClassLLCHit: "llc-hit", ClassLocalPrivate: "local-private",
		ClassLocalShared: "local-shared", ClassCXL: "cxl", ClassInterHost: "inter-host",
	}
	for cl, s := range want {
		if cl.String() != s {
			t.Errorf("%d.String() = %q, want %q", cl, cl.String(), s)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Error("unknown class should render its number")
	}
}

func TestExecTimeIsMakespan(t *testing.T) {
	c := New(3)
	c.Host(0).FinishTime = 5 * sim.Microsecond
	c.Host(1).FinishTime = 9 * sim.Microsecond
	c.Host(2).FinishTime = 2 * sim.Microsecond
	if got := c.ExecTime(); got != 9*sim.Microsecond {
		t.Fatalf("ExecTime = %v", got)
	}
}

func TestIPC(t *testing.T) {
	c := New(1)
	c.Host(0).Instructions = 4000
	c.Host(0).FinishTime = sim.NewClock(4_000_000_000).Cycles(1000)
	// 4000 instructions over 1000 cycles on 2 cores → IPC 2.
	if got := c.IPC(sim.NewClock(4_000_000_000), 2); got != 2 {
		t.Fatalf("IPC = %v, want 2", got)
	}
	// Degenerate cases.
	if New(1).IPC(sim.NewClock(4_000_000_000), 2) != 0 {
		t.Fatal("IPC of empty run should be 0")
	}
}

func TestLocalHitRate(t *testing.T) {
	c := New(2)
	c.Host(0).Served[ClassLocalShared] = 30
	c.Host(0).Served[ClassCXL] = 50
	c.Host(1).Served[ClassInterHost] = 20
	// L1/LLC hits and private-local accesses must not count.
	c.Host(0).Served[ClassL1Hit] = 1000
	c.Host(1).Served[ClassLocalPrivate] = 500
	if got := c.LocalHitRate(); got != 0.3 {
		t.Fatalf("LocalHitRate = %v, want 0.3", got)
	}
	if New(1).LocalHitRate() != 0 {
		t.Fatal("empty run should have 0 hit rate")
	}
}

func TestStallFractions(t *testing.T) {
	c := New(2)
	c.Host(0).FinishTime = 100 * sim.Microsecond
	c.Host(1).FinishTime = 100 * sim.Microsecond
	c.Host(0).Stall[ClassInterHost] = 30 * sim.Microsecond
	c.Host(1).Stall[ClassInterHost] = 10 * sim.Microsecond
	if got := c.StallFraction(ClassInterHost); got != 0.2 {
		t.Fatalf("StallFraction = %v, want 0.2", got)
	}
	c.Host(0).MgmtStall = 50 * sim.Microsecond
	if got := c.MgmtFraction(); got != 0.25 {
		t.Fatalf("MgmtFraction = %v, want 0.25", got)
	}
	c.Host(1).TransferStall = 20 * sim.Microsecond
	if got := c.TransferFraction(); got != 0.1 {
		t.Fatalf("TransferFraction = %v, want 0.1", got)
	}
	if New(1).StallFraction(ClassCXL) != 0 || New(1).MgmtFraction() != 0 || New(1).TransferFraction() != 0 {
		t.Fatal("empty run fractions should be 0")
	}
}

func TestFootprintSampling(t *testing.T) {
	c := New(2)
	c.SampleFootprint(0, 10, 100)
	c.SampleFootprint(0, 20, 300)
	c.SampleFootprint(1, 40, 800)
	// Host 0 mean: 15 pages / 200 lines; host 1: 40 / 800 → host avg 27.5 / 500.
	if got := c.MeanPageFootprint(); got != 27.5 {
		t.Fatalf("MeanPageFootprint = %v, want 27.5", got)
	}
	if got := c.MeanLineFootprint(); got != 500 {
		t.Fatalf("MeanLineFootprint = %v, want 500", got)
	}
	// Hosts with no samples are excluded, empty collector is 0.
	c2 := New(3)
	c2.SampleFootprint(1, 8, 8)
	if got := c2.MeanPageFootprint(); got != 8 {
		t.Fatalf("sparse sampling mean = %v, want 8", got)
	}
	if New(2).MeanPageFootprint() != 0 {
		t.Fatal("no samples should give 0")
	}
}

func TestSummary(t *testing.T) {
	c := New(1)
	c.Host(0).Served[ClassCXL] = 5
	c.Host(0).Instructions = 10
	c.Promotions = 2
	s := c.Summary()
	for _, frag := range []string{"instr=10", "cxl=5", "promo=2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Summary missing %q: %s", frag, s)
		}
	}
}

func TestMeanLatency(t *testing.T) {
	c := New(2)
	c.Host(0).Served[ClassCXL] = 2
	c.Host(0).LatSum[ClassCXL] = 600 * sim.Nanosecond
	c.Host(1).Served[ClassCXL] = 1
	c.Host(1).LatSum[ClassCXL] = 300 * sim.Nanosecond
	if got := c.MeanLatency(ClassCXL); got != 300*sim.Nanosecond {
		t.Fatalf("MeanLatency = %v, want 300ns", got)
	}
	if c.MeanLatency(ClassL1Hit) != 0 {
		t.Fatal("unserved class should have 0 latency")
	}
}

func TestHostMeanLat(t *testing.T) {
	var h HostStats
	// A class that served nothing must report 0, not divide by zero.
	if got := h.MeanLat(ClassInterHost); got != 0 {
		t.Fatalf("MeanLat of unserved class = %v, want 0", got)
	}
	h.Served[ClassLocalShared] = 4
	h.LatSum[ClassLocalShared] = 400 * sim.Nanosecond
	if got := h.MeanLat(ClassLocalShared); got != 100*sim.Nanosecond {
		t.Fatalf("MeanLat = %v, want 100ns", got)
	}
}
