// Package stats collects the measurements the paper's evaluation reports:
// execution time and IPC, where memory accesses were served (the Fig. 11
// local-hit-rate ledger), stall-time attribution by access class (Fig. 12),
// migration-management and transfer overheads (Fig. 4), and local-memory
// footprint sampling (Fig. 13).
package stats

import (
	"fmt"
	"strings"

	"pipm/internal/sim"
)

// Class labels where a memory access was served from.
type Class uint8

const (
	ClassL1Hit Class = iota
	ClassLLCHit
	ClassLocalPrivate // host-local DRAM, private data
	ClassLocalShared  // host-local DRAM, migrated shared data (a "local hit")
	ClassCXL          // CXL pool, ≤2 hops, cacheable
	ClassInterHost    // another host's DRAM: 4-hop GIM or owner-forwarded
	numClasses
)

// NumClasses is the number of service classes, for per-class instrument
// arrays outside this package.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassL1Hit:
		return "l1-hit"
	case ClassLLCHit:
		return "llc-hit"
	case ClassLocalPrivate:
		return "local-private"
	case ClassLocalShared:
		return "local-shared"
	case ClassCXL:
		return "cxl"
	case ClassInterHost:
		return "inter-host"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// HostStats aggregates per-host measurements.
type HostStats struct {
	Instructions int64
	MemOps       int64
	FinishTime   sim.Time

	Served [numClasses]uint64
	// LatSum accumulates service latency per class (divide by Served for
	// the mean).
	LatSum [numClasses]sim.Time

	// Stall time attributed to the class of the access that was blocking
	// the core when the issue window filled.
	Stall [numClasses]sim.Time

	// Management stalls injected by kernel-based migration.
	MgmtStall sim.Time
	// Initiator-side page-copy stall (synchronous kernel migration).
	TransferStall sim.Time

	// Footprint sampling (time-weighted sums; divide by SampleWeight).
	PageFootprintSum int64 // migrated pages resident × samples
	LineFootprintSum int64 // migrated lines resident × samples
	Samples          int64
}

// MeanLat returns the host's mean service latency for class cl: LatSum is a
// raw sum and must never be reported directly — divide by Served, returning
// 0 when the class served nothing.
func (h *HostStats) MeanLat(cl Class) sim.Time {
	if h.Served[cl] == 0 {
		return 0
	}
	return h.LatSum[cl] / sim.Time(h.Served[cl])
}

// Collector is the per-run measurement sink.
type Collector struct {
	Hosts []HostStats
	// CoresPerHost normalizes stall fractions (total core time is
	// FinishTime × CoresPerHost per host). Defaults to 1.
	CoresPerHost int

	// Migration event counters (machine-level).
	Promotions uint64 // pages promoted (kernel) or partially migrated (PIPM)
	Demotions  uint64
	LinesMoved uint64 // incremental line migrations (PIPM family)
	BytesMoved uint64 // explicit migration data transfer bytes

	// Demand-side queueing observed on shared resources, split by whether
	// migration transfers were also using them (the Fig. 4 "page transfer"
	// attribution input).
	DemandQueueDelay sim.Time
}

// New returns a collector for the given host count.
func New(hosts int) *Collector {
	return &Collector{Hosts: make([]HostStats, hosts), CoresPerHost: 1}
}

// Host returns the mutable per-host record.
func (c *Collector) Host(h int) *HostStats { return &c.Hosts[h] }

// ExecTime is the run's makespan: the latest core finish time.
func (c *Collector) ExecTime() sim.Time {
	var t sim.Time
	for i := range c.Hosts {
		t = sim.Max(t, c.Hosts[i].FinishTime)
	}
	return t
}

// Instructions sums instructions across hosts.
func (c *Collector) Instructions() int64 {
	var n int64
	for i := range c.Hosts {
		n += c.Hosts[i].Instructions
	}
	return n
}

// IPC is aggregate instructions per core-cycle given the core clock.
func (c *Collector) IPC(clock sim.Clock, cores int) float64 {
	t := c.ExecTime()
	if t <= 0 || cores <= 0 {
		return 0
	}
	cycles := float64(clock.ToCycles(t)) * float64(cores)
	if cycles == 0 {
		return 0
	}
	return float64(c.Instructions()) / cycles
}

// MeanLatency returns the average service latency of a class across hosts.
func (c *Collector) MeanLatency(cl Class) sim.Time {
	var sum sim.Time
	var n uint64
	for i := range c.Hosts {
		sum += c.Hosts[i].LatSum[cl]
		n += c.Hosts[i].Served[cl]
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// Served sums a class counter across hosts.
func (c *Collector) Served(cl Class) uint64 {
	var n uint64
	for i := range c.Hosts {
		n += c.Hosts[i].Served[cl]
	}
	return n
}

// LocalHitRate is Fig. 11's metric: the fraction of shared-data memory
// accesses (those that left the cache hierarchy) served by the requester's
// local DRAM rather than CXL memory or another host's memory.
func (c *Collector) LocalHitRate() float64 {
	local := c.Served(ClassLocalShared)
	total := local + c.Served(ClassCXL) + c.Served(ClassInterHost)
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// StallFraction reports class-attributed stall time as a fraction of total
// core time (hosts × makespan is approximated by summing per-host finish
// times, matching Fig. 12's "normalized to total execution time").
func (c *Collector) StallFraction(cl Class) float64 {
	var stall, total sim.Time
	for i := range c.Hosts {
		stall += c.Hosts[i].Stall[cl]
		total += c.Hosts[i].FinishTime * sim.Time(c.CoresPerHost)
	}
	if total == 0 {
		return 0
	}
	return float64(stall) / float64(total)
}

// MgmtFraction reports management stalls over total core time (Fig. 4).
func (c *Collector) MgmtFraction() float64 {
	var stall, total sim.Time
	for i := range c.Hosts {
		stall += c.Hosts[i].MgmtStall
		total += c.Hosts[i].FinishTime * sim.Time(c.CoresPerHost)
	}
	if total == 0 {
		return 0
	}
	return float64(stall) / float64(total)
}

// TransferFraction reports initiator page-copy stalls over total core time.
func (c *Collector) TransferFraction() float64 {
	var stall, total sim.Time
	for i := range c.Hosts {
		stall += c.Hosts[i].TransferStall
		total += c.Hosts[i].FinishTime * sim.Time(c.CoresPerHost)
	}
	if total == 0 {
		return 0
	}
	return float64(stall) / float64(total)
}

// SampleFootprint records a footprint observation for host h.
func (c *Collector) SampleFootprint(h int, pages, lines int64) {
	hs := &c.Hosts[h]
	hs.PageFootprintSum += pages
	hs.LineFootprintSum += lines
	hs.Samples++
}

// MeanPageFootprint returns the time-averaged migrated-page count per host,
// averaged across hosts.
func (c *Collector) MeanPageFootprint() float64 { return c.meanFootprint(true) }

// MeanLineFootprint returns the time-averaged migrated-line count per host,
// averaged across hosts.
func (c *Collector) MeanLineFootprint() float64 { return c.meanFootprint(false) }

func (c *Collector) meanFootprint(pages bool) float64 {
	var sum float64
	n := 0
	for i := range c.Hosts {
		hs := &c.Hosts[i]
		if hs.Samples == 0 {
			continue
		}
		v := hs.LineFootprintSum
		if pages {
			v = hs.PageFootprintSum
		}
		sum += float64(v) / float64(hs.Samples)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary renders a human-readable digest.
func (c *Collector) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec=%v instr=%d", c.ExecTime(), c.Instructions())
	for cl := Class(0); cl < numClasses; cl++ {
		if n := c.Served(cl); n > 0 {
			// Mean latency, not the raw LatSum: the sum scales with run
			// length and reads as nonsense in a digest.
			fmt.Fprintf(&b, " %s=%d(%v)", cl, n, c.MeanLatency(cl))
		}
	}
	fmt.Fprintf(&b, " localHit=%.1f%%", 100*c.LocalHitRate())
	if c.Promotions+c.Demotions > 0 {
		fmt.Fprintf(&b, " promo=%d demo=%d", c.Promotions, c.Demotions)
	}
	return b.String()
}
