package workload

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/trace"
)

func testAM() (config.AddressMap, config.Config) {
	c := config.Default()
	c.SharedBytes = 4 << 20 // 1024 pages
	return config.NewAddressMap(&c), c
}

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 13 {
		t.Fatalf("catalog has %d workloads, Table 1 lists 13", len(cat))
	}
	suites := map[string]int{}
	for _, p := range cat {
		suites[p.Suite]++
		if p.Footprint <= 0 {
			t.Errorf("%s: no footprint", p.Name)
		}
		if p.SharedFrac <= 0 || p.SharedFrac > 1 {
			t.Errorf("%s: SharedFrac %v", p.Name, p.SharedFrac)
		}
		if p.OwnFrac+p.SpillFrac > 1 {
			t.Errorf("%s: region fractions exceed 1", p.Name)
		}
	}
	if suites["GAPBS"] != 6 || suites["XSBench"] != 1 || suites["PARSEC"] != 4 || suites["Silo"] != 2 {
		t.Fatalf("suite split = %v", suites)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("pr")
	if err != nil || p.Name != "pr" {
		t.Fatalf("ByName(pr) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted garbage")
	}
	if len(Names()) != 15 {
		t.Fatal("Names() length mismatch")
	}
	if p, err := ByName("daxfs"); err != nil || !p.FS.Enabled() {
		t.Fatalf("ByName(daxfs) = %+v, %v", p, err)
	}
}

func TestReaderYieldsExactlyNRecords(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("sssp")
	r := p.NewReader(am, 4, 0, 0, 5000, 42)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 5000 {
		t.Fatalf("yielded %d records, want 5000", n)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader yielded past its budget")
	}
}

func TestReaderDeterminism(t *testing.T) {
	am, _ := testAM()
	for _, name := range []string{"pr", "ycsb", "canneal"} {
		p, _ := ByName(name)
		collect := func(seed int64) []trace.Record {
			r := p.NewReader(am, 4, 1, 2, 2000, seed)
			var recs []trace.Record
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				recs = append(recs, rec)
			}
			return recs
		}
		a, b := collect(7), collect(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: records diverge at %d", name, i)
			}
		}
		c := collect(8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestDistinctCoresGetDistinctStreams(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("tpcc")
	read := func(h, c int) trace.Record {
		r := p.NewReader(am, 4, h, c, 1, 1)
		rec, _ := r.Next()
		return rec
	}
	if read(0, 0) == read(0, 1) && read(1, 0) == read(0, 0) {
		t.Fatal("streams not differentiated by host/core")
	}
}

func TestAllAddressesValid(t *testing.T) {
	am, _ := testAM()
	for _, p := range Catalog() {
		r := p.NewReader(am, 4, 3, 1, 3000, 99)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			kind, owner := am.Region(rec.Addr)
			switch kind {
			case config.RegionShared:
			case config.RegionPrivate:
				if owner != 3 {
					t.Fatalf("%s: private ref to host %d's window from host 3", p.Name, owner)
				}
			default:
				t.Fatalf("%s: invalid address %#x", p.Name, uint64(rec.Addr))
			}
		}
	}
}

// regionShares measures where a host's shared references land.
func regionShares(t *testing.T, p Params, am config.AddressMap, host int) (own, spill, other, shared, writes float64) {
	t.Helper()
	r := p.NewReader(am, 4, host, 0, 60000, 5)
	partPages := am.SharedPages() / 4
	var nShared, nOwn, nSpill, nOther, nTotal, nWrites int
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		nTotal++
		if rec.Write {
			nWrites++
		}
		kind, _ := am.Region(rec.Addr)
		if kind != config.RegionShared {
			continue
		}
		nShared++
		page := am.SharedPageIndex(rec.Addr)
		switch page / partPages {
		case int64(host):
			nOwn++
		case int64((host + 1) % 4):
			nSpill++
		default:
			nOther++
		}
	}
	f := func(a int) float64 { return float64(a) / float64(nShared) }
	return f(nOwn), f(nSpill), f(nOther), float64(nShared) / float64(nTotal), float64(nWrites) / float64(nTotal)
}

func TestGraphWorkloadHasStrongOwnLocality(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("pr")
	own, _, _, shared, _ := regionShares(t, p, am, 2)
	if own < 0.7 {
		t.Fatalf("pr own-partition share = %.2f, want ≥ 0.7 (strong locality)", own)
	}
	if shared < 0.8 {
		t.Fatalf("pr shared fraction = %.2f, want ≈ 0.9", shared)
	}
}

func TestDatabaseWorkloadIsScattered(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("ycsb")
	own, _, other, _, _ := regionShares(t, p, am, 0)
	// YCSB's zipf over the whole table means plenty of cross-partition
	// traffic. (Global picks can still land in one's own quarter, so "own"
	// includes ~25% of the global share.)
	if other < 0.4 {
		t.Fatalf("ycsb other-partition share = %.2f, want ≥ 0.4 (scattered)", other)
	}
	if own > 0.6 {
		t.Fatalf("ycsb own share = %.2f, too partitioned for a database", own)
	}
}

func TestWriteFractionRoughlyMatches(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("tpcc")
	_, _, _, _, writes := regionShares(t, p, am, 1)
	if writes < 0.25 || writes > 0.45 {
		t.Fatalf("tpcc write fraction = %.2f, want ≈ 0.35", writes)
	}
}

func TestZipfSkewConcentratesPages(t *testing.T) {
	am, _ := testAM()
	skewed, _ := ByName("ycsb")     // zipf 1.4
	uniform, _ := ByName("xsbench") // zipf 0
	top10 := func(p Params) float64 {
		r := p.NewReader(am, 4, 0, 0, 40000, 3)
		counts := map[int64]int{}
		total := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
				continue
			}
			counts[am.SharedPageIndex(rec.Addr)]++
			total++
		}
		// Share of the 10 hottest pages.
		best := make([]int, 0, len(counts))
		for _, c := range counts {
			best = append(best, c)
		}
		// selection of top 10 without sort package: simple partial pass
		sum := 0
		for i := 0; i < 10; i++ {
			maxIdx, maxV := -1, -1
			for j, v := range best {
				if v > maxV {
					maxIdx, maxV = j, v
				}
			}
			if maxIdx < 0 {
				break
			}
			sum += maxV
			best[maxIdx] = -1
		}
		return float64(sum) / float64(total)
	}
	if s, u := top10(skewed), top10(uniform); s <= u*2 {
		t.Fatalf("zipf skew not visible: top-10 share %.3f (ycsb) vs %.3f (xsbench)", s, u)
	}
}

func TestRunLengthsCreateSpatialLocality(t *testing.T) {
	am, _ := testAM()
	stream, _ := ByName("streamcluster") // run 64
	pointer, _ := ByName("canneal")      // run 1
	seqFrac := func(p Params) float64 {
		r := p.NewReader(am, 4, 0, 0, 30000, 9)
		var prev config.Addr
		seq, total := 0, 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if prev != 0 && rec.Addr == prev+config.LineBytes {
				seq++
			}
			total++
			prev = rec.Addr
		}
		return float64(seq) / float64(total)
	}
	s, c := seqFrac(stream), seqFrac(pointer)
	if s <= c*3 || s < 0.5 {
		t.Fatalf("sequentiality: streamcluster %.2f vs canneal %.2f", s, c)
	}
}

func TestGapMeanRoughlyHonoured(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("xsbench") // gap 40
	r := p.NewReader(am, 4, 0, 0, 30000, 11)
	var sum, n int64
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		sum += int64(rec.Gap)
		n++
	}
	mean := float64(sum) / float64(n)
	if mean < float64(p.GapMean)-5 || mean > float64(p.GapMean)+5 {
		t.Fatalf("gap mean = %.1f, want ≈ %d", mean, p.GapMean)
	}
}

func TestNewReaderPanicsOnBadHost(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("pr")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range host")
		}
	}()
	p.NewReader(am, 4, 4, 0, 10, 1)
}

func TestRotationShiftsAffinity(t *testing.T) {
	am, _ := testAM()
	p, _ := ByName("pr")
	p.RotateEvery = 10000
	r := p.NewReader(am, 4, 0, 0, 20000, 3)
	partPages := am.SharedPages() / 4
	// First phase: host 0's own partition dominates. Second phase: host 1's.
	count := func(n int) [4]int {
		var c [4]int
		for i := 0; i < n; i++ {
			rec, ok := r.Next()
			if !ok {
				t.Fatal("stream ended early")
			}
			if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
				continue
			}
			c[am.SharedPageIndex(rec.Addr)/partPages]++
		}
		return c
	}
	phase1 := count(10000)
	phase2 := count(10000)
	if !(phase1[0] > phase1[1] && phase1[0] > phase1[2]) {
		t.Fatalf("phase 1 not host-0 dominated: %v", phase1)
	}
	if !(phase2[1] > phase2[0] && phase2[1] > phase2[2]) {
		t.Fatalf("phase 2 not host-1 dominated: %v", phase2)
	}
}

func TestNoRotationByDefault(t *testing.T) {
	for _, p := range Catalog() {
		if p.RotateEvery != 0 {
			t.Fatalf("%s has rotation in the calibrated catalog", p.Name)
		}
	}
}

func TestProductionFamily(t *testing.T) {
	prod := Production()
	if len(prod) != 2 {
		t.Fatalf("production family has %d workloads, want 2", len(prod))
	}
	names := map[string]bool{}
	for _, p := range prod {
		names[p.Name] = true
		if p.Suite != "Serve" {
			t.Errorf("%s: suite %q, want Serve", p.Name, p.Suite)
		}
		if p.Footprint <= 0 {
			t.Errorf("%s: no footprint", p.Name)
		}
		if !p.Mechanistic() {
			t.Errorf("%s: not mechanistic", p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if !names["llmserve"] || !names["daxfs"] {
		t.Fatalf("production names = %v", names)
	}
	if len(All()) != len(Catalog())+2 {
		t.Fatalf("All() = %d entries, want catalog+2", len(All()))
	}
	if len(Names()) != 15 {
		t.Fatalf("Names() = %d, want 15", len(Names()))
	}
	for _, p := range Catalog() {
		if p.Mechanistic() {
			t.Errorf("%s: catalog preset claims mechanistic", p.Name)
		}
	}
}

func TestValidateRejectsBadMechanistic(t *testing.T) {
	serve, _ := ByName("llmserve")
	fs, _ := ByName("daxfs")
	both := serve
	both.FS = fs.FS
	if both.Validate() == nil {
		t.Fatal("Serve+FS accepted")
	}
	bad := serve
	bad.Serve.WeightFrac = -1
	if bad.Validate() == nil {
		t.Fatal("invalid Serve params accepted")
	}
	badFS := fs
	badFS.FS.HotLines = -1
	if badFS.Validate() == nil {
		t.Fatal("invalid FS params accepted")
	}
	if pr, _ := ByName("pr"); pr.Validate() != nil {
		t.Fatal("statistical preset rejected")
	}
}

func TestMechanisticDispatchAndDeterminism(t *testing.T) {
	am, _ := testAM()
	for _, name := range []string{"llmserve", "daxfs"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(seed int64) []trace.Record {
			r := p.NewReader(am, 4, 1, 2, 4000, seed)
			var recs []trace.Record
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				recs = append(recs, rec)
			}
			return recs
		}
		a, b := collect(7), collect(7)
		if len(a) != 4000 {
			t.Fatalf("%s: yielded %d records", name, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: records diverge at %d", name, i)
			}
			if kind, _ := am.Region(a[i].Addr); kind != config.RegionShared {
				t.Fatalf("%s: mechanistic generators emit shared traffic only, got %#x", name, uint64(a[i].Addr))
			}
		}
		c := collect(8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", name)
		}
	}
}
