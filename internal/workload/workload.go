// Package workload provides synthetic stand-ins for the paper's Pin-traced
// benchmarks (Table 1): the six GAP graph kernels, XSBench, four PARSEC
// applications, and the two Silo database workloads (TPC-C, YCSB).
//
// Substitution rationale (DESIGN.md §1): migration-scheme behaviour depends
// on the page/line-granularity access stream each host emits — footprint
// split, per-host partition affinity, inter-host sharing, popularity skew,
// spatial run lengths, and read/write mix. Each workload is a parameter
// preset over those axes, calibrated to the qualitative characterization in
// the paper (§5.2: graph kernels have strong per-host locality; databases
// are random and scattered; canneal-style workloads are contested).
// Generators are fully deterministic for a given (workload, host, core,
// seed) tuple.
package workload

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/daxfs"
	"pipm/internal/llmserve"
	"pipm/internal/trace"
)

// Params describes one workload's memory behaviour.
type Params struct {
	Name      string
	Suite     string
	Footprint int64 // nominal footprint from Table 1 (display only)

	// SharedFrac is the fraction of references to the shared heap; the
	// rest go to the core's private stack window.
	SharedFrac float64

	// Of shared references: OwnFrac hit the host's own partition of the
	// heap, SpillFrac hit the next host's partition (boundary exchange),
	// and the remainder spread over the whole heap ("global" structures).
	OwnFrac   float64
	SpillFrac float64

	// ZipfS is the popularity skew of page selection within a region
	// (0 = uniform; larger = hotter hot pages; values ≤ 1 are clamped to
	// the generator's minimum usable skew).
	ZipfS float64

	// RunLen is the mean sequential run length in cache lines (1 = pointer
	// chasing, large = streaming).
	RunLen float64

	// WriteFrac is the store fraction.
	WriteFrac float64

	// GapMean is the mean number of non-memory instructions between
	// memory references (compute intensity).
	GapMean int

	// DepFrac is the fraction of memory operations that are address-
	// dependent on the previous one (pointer chasing); it bounds the
	// memory-level parallelism the out-of-order core can extract.
	DepFrac float64

	// RotateEvery, when nonzero, shifts each host's partition affinity by
	// one host every RotateEvery records — a phase change (e.g. graph
	// repartitioning, shard rebalancing) that adaptive migration must
	// follow and a static mapping cannot. Zero keeps affinity fixed, as in
	// the Table 1 calibration.
	RotateEvery int64

	// Serve, when enabled (any nonzero field), replaces the statistical
	// generator with the mechanistic multi-host LLM serving model
	// (internal/llmserve); the statistical knobs above are then unused.
	Serve llmserve.Params

	// FS, when enabled, replaces the statistical generator with the
	// mechanistic DAXFS shared-filesystem model (internal/daxfs).
	FS daxfs.Params
}

// Mechanistic reports whether the params select a mechanistic generator
// (Serve or FS) instead of the statistical one.
func (p Params) Mechanistic() bool { return p.Serve.Enabled() || p.FS.Enabled() }

// Validate rejects parameter sets no generator can execute: at most one
// mechanistic model selected, and its knobs self-consistent. Statistical
// presets are construction-validated by the catalog and always pass.
func (p Params) Validate() error {
	if p.Serve.Enabled() && p.FS.Enabled() {
		return fmt.Errorf("workload %q: Serve and FS are mutually exclusive", p.Name)
	}
	if p.Serve.Enabled() {
		return p.Serve.Validate()
	}
	if p.FS.Enabled() {
		return p.FS.Validate()
	}
	return nil
}

// Catalog returns the Table 1 workloads in presentation order.
func Catalog() []Params {
	const gb = 1 << 30
	return []Params{
		{Name: "sssp", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.85, OwnFrac: 0.75, SpillFrac: 0.05, ZipfS: 1.2, RunLen: 4, WriteFrac: 0.10, GapMean: 24, DepFrac: 0.50},
		{Name: "bfs", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.85, OwnFrac: 0.75, SpillFrac: 0.05, ZipfS: 1.25, RunLen: 8, WriteFrac: 0.08, GapMean: 24, DepFrac: 0.50},
		{Name: "pr", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.90, OwnFrac: 0.85, SpillFrac: 0.03, ZipfS: 1.1, RunLen: 32, WriteFrac: 0.15, GapMean: 16, DepFrac: 0.20},
		{Name: "cc", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.85, OwnFrac: 0.80, SpillFrac: 0.05, ZipfS: 1.1, RunLen: 16, WriteFrac: 0.12, GapMean: 20, DepFrac: 0.40},
		{Name: "bc", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.85, OwnFrac: 0.70, SpillFrac: 0.08, ZipfS: 1.2, RunLen: 8, WriteFrac: 0.12, GapMean: 24, DepFrac: 0.45},
		{Name: "tc", Suite: "GAPBS", Footprint: 48 * gb,
			SharedFrac: 0.80, OwnFrac: 0.80, SpillFrac: 0.05, ZipfS: 1.3, RunLen: 8, WriteFrac: 0.02, GapMean: 32, DepFrac: 0.50},
		{Name: "xsbench", Suite: "XSBench", Footprint: 42 * gb,
			SharedFrac: 0.90, OwnFrac: 0.50, SpillFrac: 0, ZipfS: 0, RunLen: 2, WriteFrac: 0.02, GapMean: 40, DepFrac: 0.35},
		{Name: "streamcluster", Suite: "PARSEC", Footprint: 18 * gb,
			SharedFrac: 0.85, OwnFrac: 0.90, SpillFrac: 0.02, ZipfS: 1.1, RunLen: 64, WriteFrac: 0.05, GapMean: 20, DepFrac: 0.05},
		{Name: "fluidanimate", Suite: "PARSEC", Footprint: 10 * gb,
			SharedFrac: 0.80, OwnFrac: 0.70, SpillFrac: 0.20, ZipfS: 0, RunLen: 16, WriteFrac: 0.30, GapMean: 24, DepFrac: 0.15},
		{Name: "canneal", Suite: "PARSEC", Footprint: 12 * gb,
			SharedFrac: 0.85, OwnFrac: 0.25, SpillFrac: 0, ZipfS: 1.1, RunLen: 1, WriteFrac: 0.25, GapMean: 32, DepFrac: 0.70},
		{Name: "bodytrack", Suite: "PARSEC", Footprint: 8 * gb,
			SharedFrac: 0.75, OwnFrac: 0.60, SpillFrac: 0.10, ZipfS: 1.15, RunLen: 8, WriteFrac: 0.20, GapMean: 32, DepFrac: 0.30},
		{Name: "tpcc", Suite: "Silo", Footprint: 24 * gb,
			SharedFrac: 0.90, OwnFrac: 0.60, SpillFrac: 0, ZipfS: 1.15, RunLen: 2, WriteFrac: 0.35, GapMean: 40, DepFrac: 0.60},
		{Name: "ycsb", Suite: "Silo", Footprint: 15 * gb,
			SharedFrac: 0.90, OwnFrac: 0.30, SpillFrac: 0, ZipfS: 1.05, RunLen: 1, WriteFrac: 0.20, GapMean: 32, DepFrac: 0.60},
	}
}

// Production returns the production-service workload family: mechanistic
// generators modelled on the traffic multi-host CXL pools actually serve
// (ROADMAP item 3) rather than Table 1 kernels. Footprints are the nominal
// deployment sizes the models are calibrated against (display only; the
// simulated heap is SharedBytes as everywhere else).
func Production() []Params {
	const gb = 1 << 30
	return []Params{
		{Name: "llmserve", Suite: "Serve", Footprint: 160 * gb, Serve: llmserve.Default()},
		{Name: "daxfs", Suite: "Serve", Footprint: 64 * gb, FS: daxfs.Default()},
	}
}

// All returns every registered workload: the Table 1 catalog followed by the
// production-service family. Name lookups and CLI listings use this; sweep
// builders that reproduce the paper's figures keep using Catalog.
func All() []Params {
	return append(Catalog(), Production()...)
}

// ByName returns the registered workload with the given name.
func ByName(name string) (Params, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists every registered workload name in order.
func Names() []string {
	var ns []string
	for _, p := range All() {
		ns = append(ns, p.Name)
	}
	return ns
}

// stackBytes is the per-core private stack window generators touch.
const stackBytes = 64 << 10

// minZipfS is the smallest usable skew for math/rand's Zipf (requires >1).
const minZipfS = 1.05

// NewReader builds the deterministic record stream for one core. Mechanistic
// presets (Serve/FS) dispatch to their generator, which derives its RNG from
// (seed, host, core) alone so validation passes can reconstruct the stream;
// statistical presets keep the name-salted seam below, byte-identical to
// their pre-mechanistic encoding.
func (p Params) NewReader(am config.AddressMap, hosts, host, core int, records int64, seed int64) trace.Reader {
	if p.Serve.Enabled() {
		return llmserve.New(p.Serve, am, hosts, host, core, records, seed)
	}
	if p.FS.Enabled() {
		return daxfs.New(p.FS, am, hosts, host, core, records, seed)
	}
	if host < 0 || host >= hosts {
		panic(fmt.Sprintf("workload: host %d out of range", host))
	}
	mix := fnv(seed, int64(host)*1_000_003+int64(core)*7919+hash64(p.Name))
	g := &genReader{
		p:      p,
		am:     am,
		hosts:  hosts,
		host:   host,
		core:   core,
		rng:    rand.New(rand.NewSource(mix)),
		remain: records,
	}
	g.init()
	return g
}

func hash64(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & (1<<62 - 1))
}

func fnv(a, b int64) int64 {
	x := uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xC2B2AE3D27D4EB4F
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int64(x & (1<<62 - 1))
}

// genReader produces the stream. Region choice → page choice (zipf or
// uniform) → line within page, with geometric sequential runs.
type genReader struct {
	p     Params
	am    config.AddressMap
	hosts int
	host  int
	core  int
	rng   *rand.Rand

	remain int64

	partPages int64 // pages per host partition
	allPages  int64

	zipfOwn  *rand.Zipf // over partition pages
	zipfAll  *rand.Zipf // over all pages
	stackPos int64

	// Current sequential run.
	runAddr config.Addr
	runLeft int

	emitted int64 // records emitted so far (drives phase rotation)
}

func (g *genReader) init() {
	g.allPages = g.am.SharedPages()
	g.partPages = g.allPages / int64(g.hosts)
	if g.partPages < 1 {
		g.partPages = 1
	}
	if s := g.p.ZipfS; s > 0 {
		if s < minZipfS {
			s = minZipfS
		}
		g.zipfOwn = rand.NewZipf(g.rng, s, 1, uint64(g.partPages-1))
		g.zipfAll = rand.NewZipf(g.rng, s, 1, uint64(g.allPages-1))
	}
}

// Next implements trace.Reader.
func (g *genReader) Next() (trace.Record, bool) {
	if g.remain <= 0 {
		return trace.Record{}, false
	}
	g.remain--
	g.emitted++

	gap := g.gap()
	write := g.rng.Float64() < g.p.WriteFrac
	dep := g.rng.Float64() < g.p.DepFrac

	// Continue a sequential run if one is open. Streaming runs are
	// address-independent by construction.
	if g.runLeft > 0 {
		g.runLeft--
		g.runAddr = g.nextLine(g.runAddr)
		return trace.Record{Gap: gap, Addr: g.runAddr, Write: write}, true
	}

	if g.rng.Float64() >= g.p.SharedFrac {
		// Private stack reference: tight sequential reuse window.
		g.stackPos = (g.stackPos + config.LineBytes) % stackBytes
		base := config.Addr(g.core+1) * (4 << 20) // spread cores in the window
		addr := g.am.PrivateAddr(g.host, base+config.Addr(g.stackPos))
		return trace.Record{Gap: gap, Addr: addr, Write: write}, true
	}

	// Pick region, then page. Only own-partition traversals stream
	// (adjacency scans); spill and global references fetch single values —
	// a remote host reads a neighbour's vertex, not its whole page.
	// Phase rotation shifts which partition counts as "own".
	effHost := g.host
	if g.p.RotateEvery > 0 {
		effHost = (g.host + int((g.emitted-1)/g.p.RotateEvery)) % g.hosts
	}
	var page int64
	own := false
	r := g.rng.Float64()
	switch {
	case r < g.p.OwnFrac:
		own = true
		page = int64(effHost)*g.partPages + scramble(g.pick(g.zipfOwn, g.partPages), g.partPages)
	case r < g.p.OwnFrac+g.p.SpillFrac:
		neighbour := (effHost + 1) % g.hosts
		page = int64(neighbour)*g.partPages + scramble(g.pick(g.zipfOwn, g.partPages), g.partPages)
	default:
		page = scramble(g.pick(g.zipfAll, g.allPages), g.allPages)
	}
	lineInPage := g.rng.Intn(config.LinesPerPage)
	addr := g.am.SharedAddr(config.Addr(page)*config.PageBytes + config.Addr(lineInPage*config.LineBytes))

	// Open a geometric sequential run from here.
	if own && g.p.RunLen > 1 {
		g.runLeft = g.geometric(g.p.RunLen - 1)
		g.runAddr = addr
	}
	return trace.Record{Gap: gap, Addr: addr, Write: write, Dep: dep}, true
}

// nextLine advances one cache line, wrapping within the shared region.
func (g *genReader) nextLine(a config.Addr) config.Addr {
	n := a + config.LineBytes
	if kind, _ := g.am.Region(n); kind == config.RegionShared {
		return n
	}
	return a // stay on the last line at the region edge
}

// scramble maps popularity rank → page index with a fixed multiplicative
// permutation, so hot pages spread across the region instead of clustering
// at its start. The mapping is the same for every host: a hot key is hot
// for everyone (YCSB/canneal contention is real contention).
func scramble(rank, n int64) int64 {
	const prime = 2654435761 // Knuth multiplicative hash
	return (rank*prime + n/2) % n
}

func (g *genReader) pick(z *rand.Zipf, n int64) int64 {
	if z != nil {
		return int64(z.Uint64())
	}
	return g.rng.Int63n(n)
}

// gap draws a geometric gap with the configured mean.
func (g *genReader) gap() uint32 {
	if g.p.GapMean <= 0 {
		return 0
	}
	return uint32(g.geometric(float64(g.p.GapMean)))
}

// geometric draws a geometric variate with the given mean (≥ 0).
func (g *genReader) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for g.rng.Float64() >= p && n < 1024 {
		n++
	}
	return n
}
