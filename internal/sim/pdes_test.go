package sim

import (
	"fmt"
	"strings"
	"testing"
)

// progOp is one root event of a tiny scheduler program: it fires at `at` on
// partition `part`, optionally schedules a child on its own partition via
// After, and optionally Sends a message to another partition. The fuzz
// target and the unit tests share this interpreter so every engine mode can
// be compared on the same program.
type progOp struct {
	part    int
	at      Time
	child   bool
	childD  Time
	send    bool
	sendD   Time
	sendDst int
}

// decodeProgram turns fuzz bytes into a bounded program: byte 0 picks the
// partition count (2–4), then each 5-byte chunk is one root event.
func decodeProgram(data []byte) (int, []progOp) {
	if len(data) < 6 {
		return 0, nil
	}
	nparts := 2 + int(data[0])%3
	data = data[1:]
	var ops []progOp
	for len(data) >= 5 && len(ops) < 64 {
		ops = append(ops, progOp{
			part:    int(data[0]) % nparts,
			at:      Time(data[1]),
			child:   data[2]&1 != 0,
			childD:  Time(data[2] >> 1),
			send:    data[3]&1 != 0,
			sendD:   Time(data[3] >> 1),
			sendDst: int(data[4]) % nparts,
		})
		data = data[5:]
	}
	return nparts, ops
}

// execMode selects how the interpreter drives the engine.
type execMode int

const (
	modeClassic  execMode = iota // single heap, Run
	modeStepped                  // partitioned, Run (one event per Step)
	modeWindowed                 // partitioned, RunWindowed
)

// execProgram runs ops under the given mode and returns the committed order
// as "<id>@<time>" entries — the observable the determinism contract pins.
func execProgram(nparts int, ops []progOp, mode execMode, workers int, lookahead Time) []string {
	e := NewEngine()
	if mode != modeClassic {
		e.Partition(nparts)
		e.SetLookahead(lookahead)
		e.SetWorkers(workers)
		// An engine-only prepare hook so the windowed runner exercises its
		// demand gating (and, with workers > 1, the worker pool). The hook
		// deliberately touches nothing the events read.
		fills := 0
		e.SetPrepare(1, func(Time) bool { return true }, func(Time) { fills++ })
	}
	var log []string
	record := func(id string) { log = append(log, fmt.Sprintf("%s@%d", id, e.Now())) }
	for i, op := range ops {
		i, op := i, op
		e.AtPart(op.part, op.at, func() {
			record(fmt.Sprintf("r%d", i))
			if op.child {
				e.After(op.childD, func() { record(fmt.Sprintf("c%d", i)) })
			}
			if op.send {
				e.Send(op.sendDst, e.Now()+op.sendD, func() { record(fmt.Sprintf("s%d", i)) })
			}
		})
	}
	if mode == modeWindowed {
		e.RunWindowed()
	} else {
		e.Run()
	}
	if e.Pending() != 0 {
		panic("execProgram: events left pending after run")
	}
	return log
}

// referenceProgram is a hand-written program covering the interesting
// collisions: same-time events across partitions, barrier-partition events,
// children landing on window edges, and same-time cross-partition sends.
func referenceProgram() (int, []progOp) {
	return 4, []progOp{
		{part: 1, at: 10, child: true, childD: 5, send: true, sendD: 0, sendDst: 2},
		{part: 2, at: 10, child: true, childD: 0, send: true, sendD: 7, sendDst: 1},
		{part: 3, at: 10, send: true, sendD: 0, sendDst: 0},
		{part: 0, at: 12},
		{part: 0, at: 40},
		{part: 1, at: 12, child: true, childD: 30},
		{part: 2, at: 39, send: true, sendD: 1, sendDst: 3},
		{part: 3, at: 200, child: true, childD: 1},
	}
}

// TestWindowedMatchesSequential pins the tentpole contract at the engine
// level: the partitioned stepped engine and the windowed engine at several
// worker counts and lookaheads all commit the exact event order the classic
// single heap produces.
func TestWindowedMatchesSequential(t *testing.T) {
	nparts, ops := referenceProgram()
	want := execProgram(nparts, ops, modeClassic, 0, 0)
	if len(want) == 0 {
		t.Fatal("reference program committed nothing")
	}
	if got := execProgram(nparts, ops, modeStepped, 0, 0); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("partitioned stepped order diverged:\n got %v\nwant %v", got, want)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, la := range []Time{1, 3, 50, 1000} {
			got := execProgram(nparts, ops, modeWindowed, workers, la)
			if strings.Join(got, " ") != strings.Join(want, " ") {
				t.Errorf("windowed workers=%d lookahead=%d diverged:\n got %v\nwant %v",
					workers, la, got, want)
			}
		}
	}
}

// TestPartitionAdoptsPreScheduledEvents checks that events scheduled before
// Partition move to the barrier partition and still run, in order.
func TestPartitionAdoptsPreScheduledEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func() { order = append(order, 5) })
	e.At(2, func() { order = append(order, 2) })
	e.Partition(3)
	e.AtPart(1, 3, func() { order = append(order, 3) })
	e.SetLookahead(10)
	e.RunWindowed()
	if fmt.Sprint(order) != "[2 3 5]" {
		t.Errorf("adopted events ran as %v, want [2 3 5]", order)
	}
	if e.Partitions() != 3 {
		t.Errorf("Partitions() = %d, want 3", e.Partitions())
	}
}

func TestPartitionPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Partition(1)", func() { NewEngine().Partition(1) })
	expectPanic("double Partition", func() {
		e := NewEngine()
		e.Partition(2)
		e.Partition(2)
	})
	expectPanic("Send to unknown partition", func() {
		e := NewEngine()
		e.Partition(2)
		e.Send(7, 10, func() {})
	})
	expectPanic("Send into the past", func() {
		e := NewEngine()
		e.Partition(2)
		e.AtPart(1, 10, func() { e.Send(0, 5, func() {}) })
		e.Run()
	})
}

// TestSendSameInstantOrdering pins the merge rule for messages: same-time
// deliveries arrive in send order — after the sending events' direct At
// children at that instant — identically in every mode.
func TestSendSameInstantOrdering(t *testing.T) {
	prog := []progOp{
		// Two roots at t=20 on different partitions, both sending to t=25.
		// The r0/r1 commit order (seq order) must fix the s0/s1 order.
		{part: 2, at: 20, send: true, sendD: 5, sendDst: 1},
		{part: 1, at: 20, send: true, sendD: 5, sendDst: 2},
		// A third event already scheduled at t=25 via At: messages flush
		// after commits begin, so delivered events get later seqs.
		{part: 1, at: 25},
	}
	want := execProgram(3, prog, modeClassic, 0, 0)
	for _, mode := range []execMode{modeStepped, modeWindowed} {
		got := execProgram(3, prog, mode, 2, 4)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("mode %d send ordering diverged:\n got %v\nwant %v", mode, got, want)
		}
	}
}

// TestPrepareDemandGating checks need/fill wiring: fill runs exactly when
// need reports demand, with non-decreasing horizons, and never after the
// last window.
func TestPrepareDemandGating(t *testing.T) {
	e := NewEngine()
	e.Partition(2)
	e.SetLookahead(10)
	var horizons []Time
	wants := 0
	e.SetPrepare(1,
		func(Time) bool { wants++; return wants%2 == 1 },
		func(h Time) { horizons = append(horizons, h) })
	for i := 0; i < 6; i++ {
		e.AtPart(1, Time(i*100), func() {})
	}
	e.RunWindowed()
	if len(horizons) == 0 {
		t.Fatal("fill hook never ran")
	}
	if len(horizons) >= wants {
		t.Errorf("fill ran %d times for %d need calls — demand gate ignored", len(horizons), wants)
	}
	for i := 1; i < len(horizons); i++ {
		if horizons[i] < horizons[i-1] {
			t.Errorf("fill horizons went backwards: %v", horizons)
		}
	}
}

// TestRunUntilPartitioned checks the deadline runner against partitioned
// heaps: events past the deadline stay queued and the clock lands on the
// deadline.
func TestRunUntilPartitioned(t *testing.T) {
	e := NewEngine()
	e.Partition(2)
	ran := 0
	e.AtPart(1, 10, func() { ran++ })
	e.AtPart(0, 50, func() { ran++ })
	e.RunUntil(30)
	if ran != 1 || e.Pending() != 1 {
		t.Fatalf("after RunUntil(30): ran=%d pending=%d, want 1/1", ran, e.Pending())
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %d, want 30", e.Now())
	}
	e.RunUntil(100)
	if ran != 2 || e.Pending() != 0 {
		t.Fatalf("after RunUntil(100): ran=%d pending=%d, want 2/0", ran, e.Pending())
	}
}

// FuzzWindowScheduler feeds random scheduler programs through every engine
// mode and fails if any merged commit order differs from the classic
// sequential heap order — the bit-identity contract of DESIGN.md §13 stated
// as a property.
func FuzzWindowScheduler(f *testing.F) {
	f.Add([]byte("\x02piped-window-barrier-seed-one!!"))
	f.Add([]byte("\x01AAAAABBBBBCCCCCDDDDDEEEEEFFFFF"))
	f.Add([]byte{3, 1, 10, 11, 15, 2, 2, 10, 0, 1, 1, 0, 12, 3, 0, 0, 0, 40, 2, 9, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		nparts, ops := decodeProgram(data)
		if len(ops) == 0 {
			t.Skip()
		}
		want := strings.Join(execProgram(nparts, ops, modeClassic, 0, 0), " ")
		if got := strings.Join(execProgram(nparts, ops, modeStepped, 0, 0), " "); got != want {
			t.Errorf("stepped order diverged:\n got %s\nwant %s", got, want)
		}
		la := Time(1 + int(data[0])%97)
		for _, v := range []struct {
			workers int
			la      Time
		}{{1, 1}, {1, la}, {2, la}, {4, 256}} {
			got := strings.Join(execProgram(nparts, ops, modeWindowed, v.workers, v.la), " ")
			if got != want {
				t.Errorf("windowed workers=%d lookahead=%d diverged:\n got %s\nwant %s",
					v.workers, v.la, got, want)
			}
		}
	})
}
