package sim

import "testing"

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Nanosecond, func() {})
		e.Step()
	}
}

func BenchmarkResourceAcquire(b *testing.B) {
	r := NewResource("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i)*Nanosecond, Nanosecond)
	}
}

func BenchmarkPipeSend(b *testing.B) {
	p := NewPipe("b", 5e9, 50*Nanosecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(Time(i)*100*Nanosecond, 64)
	}
}
