package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := (2500 * Picosecond).Nanoseconds(); got != 2.5 {
		t.Fatalf("Nanoseconds() = %v, want 2.5", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Fatalf("Seconds() = %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{250 * Nanosecond, "250.00ns"},
		{3 * Microsecond, "3.00us"},
		{12 * Millisecond, "12.00ms"},
		{2 * Second, "2.00s"},
		{15 * Second, "15.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockDomains(t *testing.T) {
	core := NewClock(4_000_000_000) // 4 GHz
	if core.Period() != 250*Picosecond {
		t.Fatalf("4GHz period = %v", core.Period())
	}
	dir := NewClock(2_000_000_000) // 2 GHz
	if dir.Period() != 500*Picosecond {
		t.Fatalf("2GHz period = %v", dir.Period())
	}
	if core.Cycles(24) != 6*Nanosecond {
		t.Fatalf("24 core cycles = %v, want 6ns", core.Cycles(24))
	}
	if dir.ToCycles(16*Nanosecond) != 32 {
		t.Fatalf("16ns at 2GHz = %d cycles, want 32", dir.ToCycles(16*Nanosecond))
	}
}

func TestClockRejectsBadFrequency(t *testing.T) {
	for _, hz := range []int64{0, -5, 3} { // 3 Hz doesn't divide 1e12 ps
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%d) did not panic", hz)
				}
			}()
			NewClock(hz)
		}()
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	// Same-time events run in scheduling order.
	e.At(20, func() { order = append(order, 20) })
	e.Run()
	want := []int{1, 2, 20, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v after run, want 30", e.Now())
	}
	if e.EventsRun() != 4 {
		t.Fatalf("EventsRun() = %d, want 4", e.EventsRun())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	var recur func()
	recur = func() {
		hits = append(hits, e.Now())
		if e.Now() < 5*Nanosecond {
			e.After(Nanosecond, recur)
		}
	}
	e.At(0, recur)
	e.Run()
	if len(hits) != 6 {
		t.Fatalf("got %d hits, want 6: %v", len(hits), hits)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 5, 9, 15} {
		at := at * Nanosecond
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(10 * Nanosecond)
	if len(ran) != 3 {
		t.Fatalf("ran %d events before deadline, want 3", len(ran))
	}
	if e.Now() != 10*Nanosecond {
		t.Fatalf("Now() = %v, want 10ns", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var fired []Time
		for i := 0; i < 1000; i++ {
			at := Time(rng.Int63n(int64(Microsecond)))
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return fired
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] <= a[j] }) {
		t.Fatal("events did not fire in time order")
	}
}

func TestResourceFCFS(t *testing.T) {
	r := NewResource("chan0")
	// Back-to-back requests queue behind each other.
	if done := r.Acquire(0, 10*Nanosecond); done != 10*Nanosecond {
		t.Fatalf("first done = %v", done)
	}
	if done := r.Acquire(0, 10*Nanosecond); done != 20*Nanosecond {
		t.Fatalf("second done = %v, want 20ns", done)
	}
	// A late arrival after the queue drains starts immediately.
	if done := r.Acquire(100*Nanosecond, 5*Nanosecond); done != 105*Nanosecond {
		t.Fatalf("late done = %v, want 105ns", done)
	}
	if r.BusyTime() != 25*Nanosecond {
		t.Fatalf("BusyTime = %v, want 25ns", r.BusyTime())
	}
	if r.QueueDelay() != 10*Nanosecond {
		t.Fatalf("QueueDelay = %v, want 10ns", r.QueueDelay())
	}
	if r.Requests() != 3 {
		t.Fatalf("Requests = %d, want 3", r.Requests())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 30*Nanosecond)
	if u := r.Utilization(60 * Nanosecond); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
	r.Reset()
	if r.BusyTime() != 0 || r.NextFree() != 0 || r.Requests() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: completion times from a single resource never overlap and never
// run backwards, regardless of arrival pattern.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		r := NewResource("p")
		now := Time(0)
		prevDone := Time(0)
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivals[i]) * Picosecond // monotone arrivals
			d := Time(services[i])*Picosecond + Picosecond
			done := r.Acquire(now, d)
			if done < now+d {
				return false // finished before it could have started
			}
			if done < prevDone+d {
				return false // overlapped the previous request
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeSerialization(t *testing.T) {
	// 5 GB/s, 50ns propagation: one 64B flit serializes in 12.8ns.
	p := NewPipe("up", 5e9, 50*Nanosecond)
	done := p.Send(0, 64)
	want := Time(12.8*float64(Nanosecond)) + 50*Nanosecond
	if done != want {
		t.Fatalf("Send(64B) done = %v, want %v", done, want)
	}
	// A second flit queues behind the first's serialization but pays its own
	// propagation concurrently.
	done2 := p.Send(0, 64)
	want2 := Time(2*12.8*float64(Nanosecond)) + 50*Nanosecond
	if done2 != want2 {
		t.Fatalf("second Send done = %v, want %v", done2, want2)
	}
	if p.BytesMoved() != 128 {
		t.Fatalf("BytesMoved = %d, want 128", p.BytesMoved())
	}
}

func TestPipePageTransferOccupancy(t *testing.T) {
	// Moving a 4KB page over a 5 GB/s link should occupy it ~819.2ns,
	// delaying a demand flit that arrives mid-transfer.
	p := NewPipe("up", 5e9, 50*Nanosecond)
	p.Send(0, 4096)
	demandDone := p.Send(100*Nanosecond, 64)
	if demandDone <= Time(819.2*float64(Nanosecond)) {
		t.Fatalf("demand flit finished at %v, should queue behind page transfer", demandDone)
	}
}

func TestPipeRejectsZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPipe(0 B/s) did not panic")
		}
	}()
	NewPipe("bad", 0, 0)
}
