package sim

// Partitioned conservative-synchronisation mode for Engine (PDES).
//
// Partition splits the event queue into one heap per partition — in the
// simulator, partition 0 carries the global barrier chains (scheduling
// quanta, kernel epochs, telemetry/audit ticks) and partition 1+h carries
// host h's core steps. The partitioned engine still commits events one at a
// time in ascending (At, seq) order — the exact order the classic single
// heap produces — so results are bit-identical at any worker count by
// construction. What runs in parallel is the prepare phase between commit
// windows: per-partition hooks (trace prefetch in the machine) that touch
// only state the commit phase reads through the partition's own events.
//
// RunWindowed advances through lookahead windows: the window opens at the
// global minimum event time and closes at min(open + lookahead, next
// partition-0 event) — partition 0 is the hard barrier, so no host window
// ever crosses a scheduling quantum. At each window boundary the prepare
// hooks of partitions that report demand run, in parallel when workers > 1,
// and then the window's events commit serially in global order.
//
// Cross-partition messages (Send) are exchanged through a deterministic
// ordered queue: deliveries are flushed before the next commit, ordered by
// (deliver-time, send order), independent of worker count and window size —
// senders commit in the same global order in every mode, so send order
// itself is deterministic. The machine's inline coherence actions do not use
// Send —
// they mutate remote state at issue time and stay inside committed events —
// but engine-level tests and the window-scheduler fuzz target drive it, and
// a future relaxed-consistency mode exchanges its boundary traffic here.

import (
	"container/heap"
	"sort"
	"sync"
)

// partition is one event sub-queue plus its optional prepare hooks.
type partition struct {
	events eventHeap
	// need reports whether the partition wants a prepare call before the
	// window up to horizon commits; nil means "whenever fill is set".
	need func(horizon Time) bool
	// fill is the prepare hook. It may run on a worker goroutine, never
	// concurrently with commits or with another call to itself, and must not
	// touch the engine or any state a committed event of another partition
	// reads or writes.
	fill func(horizon Time)
}

// msg is one undelivered cross-partition message. The sending partition is
// kept for diagnostics only: commits are serialised in global order, so send
// order alone already fixes same-time delivery order in every mode.
type msg struct {
	at  Time
	fn  func()
	src int
	dst int
}

// Partition switches the engine into partitioned mode with n ≥ 2 sub-queues.
// Partition 0 is the barrier partition: its next event bounds every window.
// Events already scheduled move to partition 0, keeping their order — the
// same place a pre-run At call would put them.
func (e *Engine) Partition(n int) {
	if n < 2 {
		panic("sim: Partition needs at least 2 partitions")
	}
	if e.parts != nil {
		panic("sim: Partition called twice")
	}
	e.parts = make([]*partition, n)
	for i := range e.parts {
		e.parts[i] = &partition{}
	}
	e.parts[0].events, e.events = e.events, nil
}

// Partitions reports the partition count (0 in classic mode).
func (e *Engine) Partitions() int { return len(e.parts) }

// AtPart schedules fn at time t on partition p. In classic mode it is At.
// Events scheduled by fn itself stay on p unless they override in turn, so a
// chain seeded on a partition never migrates off it.
func (e *Engine) AtPart(p int, t Time, fn func()) {
	if e.parts == nil {
		e.At(t, fn)
		return
	}
	saved := e.cur
	e.cur = p
	e.At(t, fn)
	e.cur = saved
}

// SetLookahead bounds how far past the window's opening time the commit
// phase may run before the next prepare exchange. The simulator uses the
// minimum cross-host CXL latency; correctness never depends on the value
// because commits are serialised in global order regardless.
func (e *Engine) SetLookahead(d Time) { e.lookahead = d }

// SetWorkers sets how many goroutines RunWindowed's prepare phase may use.
// Values ≤ 1 keep the whole run on the calling goroutine.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// SetPrepare installs partition p's prepare hooks; see partition for the
// contract. need == nil runs fill at every window.
func (e *Engine) SetPrepare(p int, need func(Time) bool, fill func(Time)) {
	e.parts[p].need, e.parts[p].fill = need, fill
}

// Send schedules fn onto partition dst at time t through the cross-partition
// message queue. Deliveries are flushed before the next commit in
// (t, send order) — after the sending event's direct At children at the same
// instant — so the merged order is identical for any worker count or window
// size. In classic mode dst is ignored and the same ordering rule applies
// against the single heap.
func (e *Engine) Send(dst int, t Time, fn func()) {
	if t < e.now {
		panic("sim: message sent into the past")
	}
	if e.parts != nil && (dst < 0 || dst >= len(e.parts)) {
		panic("sim: Send to unknown partition")
	}
	e.msgs = append(e.msgs, msg{at: t, fn: fn, src: e.cur, dst: dst})
}

// flushMsgs converts every pending message into a scheduled event. The sort
// is stable, so same-time messages deliver in send order — the same order in
// classic and partitioned mode, because senders commit in the same global
// order either way.
func (e *Engine) flushMsgs() {
	sort.SliceStable(e.msgs, func(i, j int) bool {
		return e.msgs[i].at < e.msgs[j].at
	})
	saved := e.cur
	for _, m := range e.msgs {
		e.cur = m.dst
		e.At(m.at, m.fn)
	}
	e.cur = saved
	e.msgs = e.msgs[:0]
}

// minPart returns the partition holding the globally earliest event by
// (At, seq), or -1 when every heap is empty. A linear scan over heap heads:
// the partition count is 1 + hosts, far too small for a tournament tree to
// pay for itself.
func (e *Engine) minPart() int {
	best := -1
	var bt Time
	var bs uint64
	for i, p := range e.parts {
		if len(p.events) == 0 {
			continue
		}
		h := p.events[0]
		if best < 0 || h.At < bt || (h.At == bt && h.seq < bs) {
			best, bt, bs = i, h.At, h.seq
		}
	}
	return best
}

// stepPart commits partition p's head event.
func (e *Engine) stepPart(p int) {
	ps := e.parts[p]
	ev := heap.Pop(&ps.events).(*Event)
	e.now = ev.At
	e.cur = p
	e.ran++
	fn := ev.Fn
	ev.Fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
	fn()
}

// RunWindowed executes all pending events to completion. In classic mode —
// or with no lookahead configured — it is Run. In partitioned mode it
// alternates prepare phases (parallel when workers > 1) with serial commit
// windows bounded by the lookahead and the next partition-0 barrier event.
func (e *Engine) RunWindowed() {
	if e.parts == nil || e.lookahead <= 0 {
		e.Run()
		return
	}
	var pool *preparePool
	if e.workers > 1 {
		pool = newPreparePool(e.workers, len(e.parts))
		defer pool.close()
	}
	for {
		if len(e.msgs) > 0 {
			e.flushMsgs()
		}
		p := e.minPart()
		if p < 0 {
			return
		}
		horizon := e.parts[p].events[0].At + e.lookahead
		// Hard barrier: a window never runs past the next global event
		// (quantum re-arms, kernel epochs, telemetry/audit ticks live on
		// partition 0), so prepare hooks always observe quantum-consistent
		// demand.
		if g := e.parts[0].events; len(g) > 0 && g[0].At < horizon {
			horizon = g[0].At
		}
		e.prepare(pool, horizon)
		for {
			p := e.minPart()
			if p < 0 || e.parts[p].events[0].At > horizon {
				break
			}
			e.stepPart(p)
			if len(e.msgs) > 0 {
				e.flushMsgs()
			}
		}
	}
}

// prepare runs the fill hook of every partition reporting demand. With a
// pool, demanding partitions fill concurrently; the barrier at the end means
// commits never overlap a fill.
func (e *Engine) prepare(pool *preparePool, horizon Time) {
	if pool == nil {
		for _, p := range e.parts {
			if p.fill != nil && (p.need == nil || p.need(horizon)) {
				p.fill(horizon)
			}
		}
		return
	}
	n := 0
	for _, p := range e.parts {
		if p.fill != nil && (p.need == nil || p.need(horizon)) {
			pool.dispatch(p.fill, horizon)
			n++
		}
	}
	if n > 0 {
		pool.wait()
	}
}

// preparePool is a fixed set of worker goroutines serving prepare jobs. It
// exists for the lifetime of one RunWindowed call; dispatch/wait pairs form
// the only synchronisation with the commit loop.
type preparePool struct {
	jobs chan prepareJob
	wg   sync.WaitGroup
}

type prepareJob struct {
	fill    func(Time)
	horizon Time
}

func newPreparePool(workers, queue int) *preparePool {
	p := &preparePool{jobs: make(chan prepareJob, queue)}
	for i := 0; i < workers; i++ {
		go func() {
			for j := range p.jobs {
				j.fill(j.horizon)
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *preparePool) dispatch(fill func(Time), horizon Time) {
	p.wg.Add(1)
	p.jobs <- prepareJob{fill: fill, horizon: horizon}
}

func (p *preparePool) wait()  { p.wg.Wait() }
func (p *preparePool) close() { close(p.jobs) }
