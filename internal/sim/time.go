// Package sim provides the deterministic discrete-event substrate the
// multi-host simulator is built on: a simulated clock in picoseconds, an
// event queue with stable tie-breaking, and FCFS bandwidth/service resources
// used to model DRAM channels, CXL link directions and directory slices.
package sim

import "fmt"

// Time is simulated time in picoseconds. Picoseconds keep every clock domain
// in the evaluated system exact: a 4 GHz core cycle is 250 ps, a 2 GHz
// directory cycle 500 ps, DDR5 and CXL parameters are plain nanoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime = Time(1<<63 - 1)

// Nanoseconds reports t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	case t < 10*Second:
		return fmt.Sprintf("%.2fs", t.Seconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Clock converts between cycles of a fixed-frequency clock domain and Time.
type Clock struct {
	period Time // duration of one cycle
}

// NewClock returns a clock domain running at the given frequency in hertz.
// NewClock panics if the frequency does not divide one second into a whole
// number of picoseconds (all frequencies used by the simulator do).
func NewClock(hz int64) Clock {
	if hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	if int64(Second)%hz != 0 {
		panic(fmt.Sprintf("sim: %d Hz does not divide a second into whole picoseconds", hz))
	}
	return Clock{period: Time(int64(Second) / hz)}
}

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.period }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.period }

// ToCycles converts a duration to whole elapsed cycles (rounded down).
func (c Clock) ToCycles(t Time) int64 { return int64(t) / int64(c.period) }

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two times.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
