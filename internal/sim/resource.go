package sim

// Resource models a first-come-first-served server with a single queue:
// DRAM channels, CXL link directions and directory slices are all instances.
// A request arriving at time t with service duration d begins at
// max(t, nextFree) and completes at begin+d. The caller receives the
// completion time; the difference between begin and t is queueing delay.
//
// Resources are driven synchronously by the hierarchy walk, which the engine
// invokes in (approximately) global time order, so FCFS holds to within one
// walk. This is the standard fast-simulator approximation.
type Resource struct {
	name     string
	nextFree Time

	// Accounting.
	busy     Time   // total service time accumulated
	queued   Time   // total queueing delay accumulated
	requests uint64 // number of Acquire calls
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for service duration d starting no earlier
// than now, and returns the completion time.
func (r *Resource) Acquire(now Time, d Time) Time {
	start := now
	if r.nextFree > start {
		r.queued += r.nextFree - start
		start = r.nextFree
	}
	r.nextFree = start + d
	r.busy += d
	r.requests++
	return r.nextFree
}

// NextFree returns the earliest time a new request could begin service.
func (r *Resource) NextFree() Time { return r.nextFree }

// BusyTime returns the total service time accumulated.
func (r *Resource) BusyTime() Time { return r.busy }

// QueueDelay returns the total queueing delay accumulated across requests.
func (r *Resource) QueueDelay() Time { return r.queued }

// Requests returns the number of Acquire calls.
func (r *Resource) Requests() uint64 { return r.requests }

// Utilization reports busy time as a fraction of the elapsed window.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}

// Reset returns the resource to idle and clears accounting.
func (r *Resource) Reset() {
	r.nextFree, r.busy, r.queued, r.requests = 0, 0, 0, 0
}

// Pipe models a bandwidth-limited, full-duplex-unaware byte channel (one
// direction of a CXL link, one DRAM channel's data bus). Transfers serialize
// at the configured bytes/second on top of an optional fixed propagation
// delay paid once per transfer, after serialization.
type Pipe struct {
	res         *Resource
	picosPerByt float64 // serialization cost per byte, in picoseconds
	propagation Time
	bytesMoved  uint64
}

// NewPipe returns a pipe with the given bandwidth in bytes/second and fixed
// propagation delay. Bandwidth must be positive.
func NewPipe(name string, bytesPerSecond float64, propagation Time) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{
		res:         NewResource(name),
		picosPerByt: float64(Second) / bytesPerSecond,
		propagation: propagation,
	}
}

// Send enqueues a transfer of n bytes at time now and returns the time the
// last byte arrives at the far end (serialization queueing + propagation).
func (p *Pipe) Send(now Time, n int) Time {
	serial := Time(float64(n) * p.picosPerByt)
	if serial < Picosecond {
		serial = Picosecond
	}
	p.bytesMoved += uint64(n)
	done := p.res.Acquire(now, serial)
	return done + p.propagation
}

// Propagation returns the fixed per-transfer propagation delay.
func (p *Pipe) Propagation() Time { return p.propagation }

// BytesMoved returns the total payload bytes sent.
func (p *Pipe) BytesMoved() uint64 { return p.bytesMoved }

// BusyTime returns total serialization time accumulated.
func (p *Pipe) BusyTime() Time { return p.res.BusyTime() }

// Requests returns the number of transfers sent.
func (p *Pipe) Requests() uint64 { return p.res.Requests() }

// QueueDelay returns total queueing delay accumulated.
func (p *Pipe) QueueDelay() Time { return p.res.QueueDelay() }

// Utilization reports serialization busy time over the elapsed window.
func (p *Pipe) Utilization(elapsed Time) float64 { return p.res.Utilization(elapsed) }

// Reset returns the pipe to idle and clears accounting.
func (p *Pipe) Reset() {
	p.res.Reset()
	p.bytesMoved = 0
}
