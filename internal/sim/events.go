package sim

import "container/heap"

// Event is a closure scheduled to run at a point in simulated time.
type Event struct {
	At  Time
	Fn  func()
	seq uint64 // insertion order, breaks ties deterministically
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same instant run in the order they were scheduled.
//
// The engine has two modes. The classic mode keeps one global event heap.
// Partition (see pdes.go) switches to partitioned mode: one heap per
// partition, a cross-partition message queue, and a windowed runner with a
// parallel prepare phase. Both modes execute events in exactly the same
// total order — ascending (At, seq) — so a partitioned run is bit-identical
// to a classic one by construction.
type Engine struct {
	now     Time
	nextSeq uint64
	events  eventHeap
	ran     uint64
	// free recycles Event boxes between Step and At: the steady state of a
	// simulation schedules roughly one event per event retired, so without a
	// freelist every At is a heap allocation on the hot path.
	free []*Event

	// Partitioned mode (pdes.go); parts == nil selects the classic mode.
	parts     []*partition
	cur       int   // partition of the currently-executing event
	msgs      []msg // undelivered cross-partition messages
	lookahead Time
	workers   int
}

// maxFree bounds the freelist so a scheduling burst (e.g. the per-core seed
// events at start-up) cannot pin memory for the rest of the run.
const maxFree = 1024

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsRun reports how many events have executed.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports how many events are waiting to run, counting undelivered
// cross-partition messages.
func (e *Engine) Pending() int {
	n := len(e.events) + len(e.msgs)
	for _, p := range e.parts {
		n += len(p.events)
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a component bug, and silently reordering time would
// corrupt every downstream measurement. In partitioned mode the event joins
// the partition of the event currently executing (AtPart overrides).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fn = t, fn
	} else {
		ev = &Event{At: t, Fn: fn}
	}
	ev.seq = e.nextSeq
	e.nextSeq++
	if e.parts != nil {
		heap.Push(&e.parts[e.cur].events, ev)
		return
	}
	heap.Push(&e.events, ev)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if len(e.msgs) > 0 {
		e.flushMsgs()
	}
	if e.parts != nil {
		p := e.minPart()
		if p < 0 {
			return false
		}
		e.stepPart(p)
		return true
	}
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.At
	e.ran++
	fn := ev.Fn
	// Recycle before running fn: the box is dead once its fields are copied
	// out, and fn's own At calls are exactly where the reuse pays off.
	ev.Fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
	fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// peek returns the time of the earliest pending event across all heaps.
func (e *Engine) peek() (Time, bool) {
	if e.parts != nil {
		p := e.minPart()
		if p < 0 {
			return 0, false
		}
		return e.parts[p].events[0].At, true
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].At, true
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		if len(e.msgs) > 0 {
			e.flushMsgs()
		}
		t, ok := e.peek()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
