package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"pipm/internal/sim"
)

// TestTraceJSONRoundTrip: a Trace serialised and reloaded must expose the
// same Events(), Dropped() and Len(), including after the ring has wrapped,
// and must keep accepting Emits up to its original capacity.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 13; i++ { // wraps: 5 oldest dropped
		tr.Emit(sim.Time(100*i), 0, EvPromote, i%3, int64(i), int64(2*i))
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Dropped() != tr.Dropped() {
		t.Fatalf("round trip: len %d→%d, dropped %d→%d",
			tr.Len(), back.Len(), tr.Dropped(), back.Dropped())
	}
	if !reflect.DeepEqual(back.Events(), tr.Events()) {
		t.Fatal("round trip changed the event sequence")
	}
	// The reloaded ring keeps its capacity: one more Emit must evict exactly
	// one event, as it would have on the original.
	back.Emit(9999, 0, EvDemote, 1, 7, 7)
	if back.Len() != 8 || back.Dropped() != tr.Dropped()+1 {
		t.Fatalf("post-reload Emit: len %d dropped %d, want 8 / %d",
			back.Len(), back.Dropped(), tr.Dropped()+1)
	}
}

// TestTraceJSONNil: a nil *Trace inside an Output marshals as null and
// reloads as nil — the disabled-trace case the store hits on every
// time-series-only run.
func TestTraceJSONNil(t *testing.T) {
	type holder struct {
		Trace *Trace
	}
	data, err := json.Marshal(holder{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("null")) {
		t.Fatalf("nil trace marshalled as %s", data)
	}
	var back holder
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != nil {
		t.Fatal("null did not reload as a nil trace")
	}
}

// TestOutputJSONExportIdentity is the property the result store depends on:
// exporting a reloaded Output must produce the same bytes as exporting the
// original, for both the time-series and the Chrome trace writers.
func TestOutputJSONExportIdentity(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("host0.served")
	g := reg.Gauge("host0.footprint.pages")
	h := reg.Histogram("host0.lat")
	tr := NewTrace(4)
	for i := 0; i < 7; i++ {
		c.Inc()
		g.Set(float64(i) / 3)
		h.Observe(sim.Time(10 * i))
		tr.Emit(sim.Time(50*i), sim.Time(i), EvLineMigrate, 0, int64(i), 1)
		reg.Snapshot(sim.Time(100 * i))
	}
	out := &Output{SampleInterval: 100, Series: reg.Series(), Histograms: reg.Histograms(), Trace: tr}

	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back Output
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	for name, write := range map[string]func(w *bytes.Buffer, runs []LabeledOutput) error{
		"timeseries": func(w *bytes.Buffer, runs []LabeledOutput) error { return WriteTimeSeries(w, runs) },
		"csv":        func(w *bytes.Buffer, runs []LabeledOutput) error { return WriteTimeSeriesCSV(w, runs) },
		"chrome":     func(w *bytes.Buffer, runs []LabeledOutput) error { return WriteChromeTrace(w, runs) },
	} {
		var a, b bytes.Buffer
		if err := write(&a, []LabeledOutput{{Label: "pr/pipm", Key: "k", Output: out}}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := write(&b, []LabeledOutput{{Label: "pr/pipm", Key: "k", Output: &back}}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s export differs after JSON round trip", name)
		}
	}
}
