package telemetry

import "pipm/internal/sim"

// EventKind classifies one protocol-level happening in the machine.
type EventKind uint8

const (
	// EvPromote: a page was promoted — kernel whole-page migration into a
	// host's local DRAM, or a PIPM majority-vote partial-migration grant.
	EvPromote EventKind = iota
	// EvDemote: a kernel scheme moved a page back to CXL memory.
	EvDemote
	// EvRevoke: PIPM revoked a partial migration; every migrated block of
	// the page travelled back to its original CXL location.
	EvRevoke
	// EvLineMigrate: one block incrementally migrated into the owner's local
	// DRAM on an LLC eviction (the I→I' transition of case ①).
	EvLineMigrate
	// EvLineDemote: one migrated block moved back to CXL memory on an
	// inter-host access (the ME/I' → I transition of cases ⑤⑥).
	EvLineDemote
	// EvShootdown: a batched TLB shootdown stalled every core in the system
	// at a kernel migration epoch.
	EvShootdown
	// EvInterFetch: a request was owner-forwarded to another host's local
	// copy (the 4-hop inter-host path).
	EvInterFetch
	numEventKinds
)

// String returns the exported event name.
func (k EventKind) String() string {
	switch k {
	case EvPromote:
		return "promote"
	case EvDemote:
		return "demote"
	case EvRevoke:
		return "revoke"
	case EvLineMigrate:
		return "line-migrate"
	case EvLineDemote:
		return "line-demote"
	case EvShootdown:
		return "tlb-shootdown"
	case EvInterFetch:
		return "inter-fetch"
	default:
		return "event"
	}
}

// Event is one structured trace record. Host −1 means the CXL device side
// (the memory node / fabric), which exports as its own track.
type Event struct {
	At   sim.Time
	Dur  sim.Time // 0 ⇒ instant event
	Kind EventKind
	Host int16
	Page int64
	Arg  int64 // kind-specific: line index, line count, peer host, ...
}

// DeviceHost is the Event.Host value for device-side (non-host) events.
const DeviceHost = -1

// Trace is a bounded ring buffer of protocol events: the newest Capacity
// events are kept, older ones are dropped (counted). The nil Trace is a
// valid no-op — the disabled-telemetry fast path.
type Trace struct {
	events  []Event
	start   int
	full    bool
	dropped uint64
}

// NewTrace returns a trace bounded to capacity events (DefaultTraceCapacity
// when capacity ≤ 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{events: make([]Event, 0, capacity)}
}

// Emit appends one event, evicting the oldest when the ring is full. No-op
// on a nil trace.
func (t *Trace) Emit(at, dur sim.Time, kind EventKind, host int, page, arg int64) {
	if t == nil {
		return
	}
	e := Event{At: at, Dur: dur, Kind: kind, Host: int16(host), Page: page, Arg: arg}
	if !t.full && len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		return
	}
	t.full = true
	t.events[t.start] = e
	t.start++
	t.dropped++
	if t.start == len(t.events) {
		t.start = 0
	}
}

// Len returns the number of buffered events (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the ring evicted (0 on nil).
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the buffered events oldest-first (nil on nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}
