// Package telemetry is the simulator's observability layer: a registry of
// typed instruments (counters, gauges, log2-bucketed latency histograms)
// registered per component, an interval sampler driven by the sim event heap
// that snapshots every instrument into a compact time-series, and a bounded
// structured event trace exportable as Chrome trace-event / Perfetto JSON.
//
// The subsystem is zero-overhead when disabled: every instrument method and
// the trace emitter are safe on nil receivers, so a disabled machine holds
// nil handles and each hot-path hook costs exactly one predictable branch
// (pinned by BenchmarkTelemetryDisabledOverhead at the repo root).
package telemetry

import (
	"math/bits"

	"pipm/internal/sim"
)

// Options selects which telemetry pieces a run collects. The zero value is
// fully disabled and — by design — does not perturb harness run keys, so
// memoized results of disabled runs stay valid.
type Options struct {
	// SampleInterval is the simulated-time distance between instrument
	// snapshots; 0 disables the time-series (and the registry).
	SampleInterval sim.Time
	// Trace enables the structured protocol-event trace.
	Trace bool
	// TraceCapacity bounds the trace ring buffer in events; 0 means the
	// DefaultTraceCapacity. Older events are dropped first.
	TraceCapacity int
}

// DefaultTraceCapacity is the ring-buffer bound used when
// Options.TraceCapacity is zero.
const DefaultTraceCapacity = 1 << 16

// Enabled reports whether any telemetry piece is on.
func (o Options) Enabled() bool { return o.SampleInterval > 0 || o.Trace }

// Registry holds a machine's instruments and its sampled time-series. A nil
// Registry is valid and inert: every constructor returns nil handles and
// Snapshot is a no-op.
type Registry struct {
	names []string
	read  []func() float64

	hists     []*Histogram
	histNames []string

	samples []Sample
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry { return &Registry{} }

// Sample is one interval snapshot: every registered scalar instrument read
// at one simulated instant, in registration order.
type Sample struct {
	At     sim.Time
	Values []float64
}

// TimeSeries is the sampled history of a registry's scalar instruments.
type TimeSeries struct {
	Names   []string
	Samples []Sample
}

// Counter is a monotonically increasing instrument. The nil Counter is a
// valid no-op.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a set-to-current-value instrument. The nil Gauge is a valid no-op.
type Gauge struct{ v float64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a log2-bucketed latency histogram: an observation v lands in
// bucket bits.Len64(v), so bucket b covers [2^(b-1), 2^b). The nil Histogram
// is a valid no-op, which is the disabled-telemetry fast path.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     sim.Time
}

// Observe records one duration. Negative observations clamp to zero.
func (h *Histogram) Observe(v sim.Time) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation, 0 when empty.
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Bucket returns the count in log2 bucket b (0 ≤ b ≤ 64).
func (h *Histogram) Bucket(b int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[b]
}

// Counter registers and returns a named counter. Nil registry → nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, func() float64 { return float64(c.v) })
	return c
}

// Gauge registers and returns a named gauge. Nil registry → nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, func() float64 { return g.v })
	return g
}

// GaugeFunc registers a sampled gauge backed by fn, read at snapshot time.
// This is the preferred way to surface counters a component already keeps
// (cache hits, link bytes, footprint) without touching its hot path at all.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, fn)
}

// Histogram registers and returns a named log2 histogram. Histograms are not
// part of per-interval samples; their buckets are exported once per run.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{}
	r.hists = append(r.hists, h)
	r.histNames = append(r.histNames, name)
	return h
}

func (r *Registry) register(name string, fn func() float64) {
	r.names = append(r.names, name)
	r.read = append(r.read, fn)
}

// Each calls fn once per registered scalar instrument with its current
// value, in registration order. Unlike Snapshot it records nothing — it is
// the read path for live exports (the experiment service's /metrics). No-op
// on a nil registry. Not safe against concurrent registration; register
// everything before the first Each, as the machine does before Run.
func (r *Registry) Each(fn func(name string, value float64)) {
	if r == nil {
		return
	}
	for i, name := range r.names {
		fn(name, r.read[i]())
	}
}

// Snapshot reads every scalar instrument and appends one sample at time at.
// No-op on a nil registry.
func (r *Registry) Snapshot(at sim.Time) {
	if r == nil {
		return
	}
	vals := make([]float64, len(r.read))
	for i, fn := range r.read {
		vals[i] = fn()
	}
	r.samples = append(r.samples, Sample{At: at, Values: vals})
}

// Series returns the sampled time-series (nil registry → nil).
func (r *Registry) Series() *TimeSeries {
	if r == nil {
		return nil
	}
	return &TimeSeries{Names: r.names, Samples: r.samples}
}

// HistogramSnapshot is one histogram's final state, for export.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	SumPS   int64         `json:"sum_ps"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one non-empty log2 bucket: Bit b covers [2^(b-1), 2^b) ps.
type BucketCount struct {
	Bit   int    `json:"bit"`
	Count uint64 `json:"count"`
}

// Histograms returns a snapshot of every registered histogram, in
// registration order, with empty buckets elided.
func (r *Registry) Histograms() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	out := make([]HistogramSnapshot, 0, len(r.hists))
	for i, h := range r.hists {
		s := HistogramSnapshot{Name: r.histNames[i], Count: h.count, SumPS: int64(h.sum)}
		for b, n := range h.buckets {
			if n > 0 {
				s.Buckets = append(s.Buckets, BucketCount{Bit: b, Count: n})
			}
		}
		out = append(out, s)
	}
	return out
}

// Output bundles everything one run collected. Any field may be nil
// depending on Options.
type Output struct {
	SampleInterval sim.Time
	Series         *TimeSeries
	Histograms     []HistogramSnapshot
	Trace          *Trace
}
