package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"pipm/internal/sim"
)

func TestNilSafety(t *testing.T) {
	// Every handle obtained from a nil registry, and the nil trace, must be
	// inert: this is the disabled-telemetry fast path the machine relies on.
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	r.GaugeFunc("f", func() float64 { return 1 })
	r.Snapshot(0)
	c.Inc()
	c.Add(10)
	g.Set(3)
	h.Observe(5 * sim.Nanosecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("nil instruments recorded values")
	}
	if r.Series() != nil || r.Histograms() != nil {
		t.Fatalf("nil registry produced output")
	}

	var tr *Trace
	tr.Emit(0, 0, EvPromote, 0, 1, 2)
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil trace recorded events")
	}
}

func TestRegistrySampling(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	r.GaugeFunc("twice", func() float64 { return 2 * float64(c.Value()) })

	c.Add(3)
	r.Snapshot(10 * sim.Microsecond)
	c.Add(4)
	r.Snapshot(20 * sim.Microsecond)

	s := r.Series()
	if len(s.Names) != 2 || s.Names[0] != "reqs" || s.Names[1] != "twice" {
		t.Fatalf("names = %v", s.Names)
	}
	if len(s.Samples) != 2 {
		t.Fatalf("samples = %d", len(s.Samples))
	}
	if got := s.Samples[0].Values; got[0] != 3 || got[1] != 6 {
		t.Fatalf("sample 0 = %v", got)
	}
	if got := s.Samples[1].Values; got[0] != 7 || got[1] != 14 {
		t.Fatalf("sample 1 = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0)                   // bucket 0
	h.Observe(1)                   // bucket 1
	h.Observe(sim.Time(7))         // bucket 3: [4,8)
	h.Observe(sim.Time(8))         // bucket 4: [8,16)
	h.Observe(-5 * sim.Nanosecond) // clamps to 0
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(3) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("bucket counts wrong: %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(3), h.Bucket(4))
	}
	if h.Mean() != (1+7+8)/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	snaps := r.Histograms()
	if len(snaps) != 1 || snaps[0].Name != "lat" || len(snaps[0].Buckets) != 4 {
		t.Fatalf("snapshot = %+v", snaps)
	}
}

func TestTraceRingBound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), 0, EvLineMigrate, 0, int64(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if e.Page != int64(6+i) {
			t.Fatalf("ring order wrong: events = %+v", ev)
		}
	}
}

// sampleOutput builds a small two-host output with events and series.
func sampleOutput() *Output {
	r := NewRegistry()
	foot := r.Counter("h0.footprint.pages")
	r.GaugeFunc("h1.link.up.bytes", func() float64 { return 128 })
	h := r.Histogram("lat.cxl")
	h.Observe(300 * sim.Nanosecond)
	foot.Add(2)
	r.Snapshot(5 * sim.Microsecond)
	foot.Add(1)
	r.Snapshot(10 * sim.Microsecond)

	tr := NewTrace(16)
	tr.Emit(sim.Microsecond, 0, EvPromote, 1, 42, 0)
	tr.Emit(2*sim.Microsecond, 500*sim.Nanosecond, EvRevoke, 0, 42, 7)
	tr.Emit(3*sim.Microsecond, 0, EvLineMigrate, DeviceHost, 9, 3)

	return &Output{
		SampleInterval: 5 * sim.Microsecond,
		Series:         r.Series(),
		Histograms:     r.Histograms(),
		Trace:          tr,
	}
}

func TestExportFormatsValidate(t *testing.T) {
	runs := []LabeledOutput{{Label: "pr/pipm", Key: "abc123", Output: sampleOutput()}}

	var ts bytes.Buffer
	if err := WriteTimeSeries(&ts, runs); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTimeSeries(ts.Bytes()); err != nil {
		t.Fatalf("time-series did not validate: %v\n%s", err, ts.String())
	}

	var tr bytes.Buffer
	if err := WriteChromeTrace(&tr, runs); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(tr.Bytes()); err != nil {
		t.Fatalf("chrome trace did not validate: %v\n%s", err, tr.String())
	}
	for _, want := range []string{`"promote"`, `"revoke"`, `"line-migrate"`,
		`"process_name"`, `"host1"`, `"cxl-device"`, `"ph":"C"`, `"ph":"X"`} {
		if !strings.Contains(tr.String(), want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, tr.String())
		}
	}

	var csvBuf bytes.Buffer
	if err := WriteTimeSeriesCSV(&csvBuf, runs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	// Header + 2 samples × 2 series.
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csvBuf.String())
	}
	if lines[0] != "label,key,t_ps,series,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestExportDeterminism(t *testing.T) {
	runs := []LabeledOutput{{Label: "pr/pipm", Output: sampleOutput()}}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, runs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome trace export is not deterministic")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace validated")
	}
	if err := ValidateChromeTrace([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON trace validated")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"x","ph":"?","ts":1,"pid":0}]}`)); err == nil {
		t.Fatal("unknown phase validated")
	}
	if err := ValidateTimeSeries([]byte(`{"schema":"wrong","runs":[]}`)); err == nil {
		t.Fatal("wrong schema validated")
	}
	if err := ValidateTimeSeries([]byte(`{"schema":"pipm-timeseries/v1","runs":[{"label":"a","names":["x"],"samples":[{"t_ps":1,"values":[]}]}]}`)); err == nil {
		t.Fatal("inconsistent sample validated")
	}
}

func TestOptionsEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Fatal("zero Options enabled")
	}
	if !(Options{SampleInterval: sim.Microsecond}).Enabled() ||
		!(Options{Trace: true}).Enabled() {
		t.Fatal("non-zero Options disabled")
	}
}
