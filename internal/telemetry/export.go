package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TimeSeriesSchema identifies the time-series JSON layout.
const TimeSeriesSchema = "pipm-timeseries/v1"

// LabeledOutput names one run's telemetry for multi-run export: the
// experiment harness labels runs "workload/scheme"; a single-run CLI labels
// its one run directly.
type LabeledOutput struct {
	Label  string
	Key    string // canonical run key (may be shortened), "" when unkeyed
	Output *Output
}

// tsDoc is the on-disk time-series layout. Field order is fixed so the
// emitted bytes are deterministic for a given run set.
type tsDoc struct {
	Schema string  `json:"schema"`
	Runs   []tsRun `json:"runs"`
}

type tsRun struct {
	Label            string              `json:"label"`
	Key              string              `json:"key,omitempty"`
	SampleIntervalPS int64               `json:"sample_interval_ps"`
	Names            []string            `json:"names"`
	Samples          []tsSample          `json:"samples"`
	Histograms       []HistogramSnapshot `json:"histograms,omitempty"`
	TraceDropped     uint64              `json:"trace_dropped,omitempty"`
}

type tsSample struct {
	TPS    int64     `json:"t_ps"`
	Values []float64 `json:"values"`
}

// WriteTimeSeries writes the runs' sampled time-series as JSON.
func WriteTimeSeries(w io.Writer, runs []LabeledOutput) error {
	doc := tsDoc{Schema: TimeSeriesSchema, Runs: []tsRun{}}
	for _, r := range runs {
		if r.Output == nil {
			continue
		}
		tr := tsRun{
			Label:            r.Label,
			Key:              r.Key,
			SampleIntervalPS: int64(r.Output.SampleInterval),
			Names:            []string{},
			Samples:          []tsSample{},
			Histograms:       r.Output.Histograms,
			TraceDropped:     r.Output.Trace.Dropped(),
		}
		if s := r.Output.Series; s != nil {
			tr.Names = s.Names
			for _, smp := range s.Samples {
				tr.Samples = append(tr.Samples, tsSample{TPS: int64(smp.At), Values: smp.Values})
			}
		}
		doc.Runs = append(doc.Runs, tr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTimeSeriesCSV writes the runs' time-series in long format:
// label,key,t_ps,series,value — one row per (sample, instrument), ready for
// figure regeneration without a JSON parser.
func WriteTimeSeriesCSV(w io.Writer, runs []LabeledOutput) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "key", "t_ps", "series", "value"}); err != nil {
		return err
	}
	for _, r := range runs {
		if r.Output == nil || r.Output.Series == nil {
			continue
		}
		s := r.Output.Series
		for _, smp := range s.Samples {
			for i, name := range s.Names {
				rec := []string{
					r.Label, r.Key,
					strconv.FormatInt(int64(smp.At), 10),
					name,
					strconv.FormatFloat(smp.Values[i], 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ---------------------------------------------- Chrome trace-event export --

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), the subset Perfetto's legacy importer accepts: metadata (M),
// instant (i), complete (X) and counter (C) events.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// psToUS converts simulated picoseconds to trace microseconds.
func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// counterTrackSeries selects which sampled series also export as Chrome
// counter tracks (one per host/link), so migration waves and CXL-link
// saturation are visible on the Perfetto timeline without opening the
// time-series file.
func counterTrackSeries(name string) bool {
	return strings.Contains(name, ".footprint.") || strings.Contains(name, ".link.")
}

// WriteChromeTrace writes the runs' event traces (and counter tracks derived
// from their time-series) as Chrome trace-event JSON loadable in
// ui.perfetto.dev or chrome://tracing. One process per run; one thread per
// host plus one for the CXL device side.
func WriteChromeTrace(w io.Writer, runs []LabeledOutput) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pid, r := range runs {
		if r.Output == nil {
			continue
		}
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("run%d", pid)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": label},
		})

		// Thread (track) ids: host h → h+1; device side → 0.
		maxHost := -1
		events := r.Output.Trace.Events()
		for _, e := range events {
			if int(e.Host) > maxHost {
				maxHost = int(e.Host)
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": "cxl-device"},
		})
		for h := 0; h <= maxHost; h++ {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: h + 1,
				Args: map[string]any{"name": fmt.Sprintf("host%d", h)},
			})
		}

		for _, e := range events {
			tid := int(e.Host) + 1
			if e.Host == DeviceHost {
				tid = 0
			}
			ce := chromeEvent{
				Name: e.Kind.String(),
				TS:   psToUS(int64(e.At)),
				PID:  pid,
				TID:  tid,
				Args: map[string]any{"page": e.Page, "arg": e.Arg},
			}
			if e.Dur > 0 {
				ce.Ph = "X"
				ce.Dur = psToUS(int64(e.Dur))
			} else {
				ce.Ph = "i"
				ce.Scope = "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}

		// Counter tracks from the sampled series.
		if s := r.Output.Series; s != nil {
			for i, name := range s.Names {
				if !counterTrackSeries(name) {
					continue
				}
				for _, smp := range s.Samples {
					doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
						Name: name, Ph: "C", TS: psToUS(int64(smp.At)),
						PID: pid, TID: 0,
						Args: map[string]any{"value": smp.Values[i]},
					})
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// -------------------------------------------------------------- validators --

// ValidateChromeTrace checks that data parses as Chrome trace-event JSON:
// a traceEvents array whose entries carry a name, a known phase, and — for
// non-metadata events — a non-negative timestamp. This is the format gate
// cmd/tracecheck and CI run against exported traces.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("telemetry: trace has no traceEvents")
	}
	known := map[string]bool{"M": true, "i": true, "I": true, "X": true, "C": true, "B": true, "E": true}
	for i, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("telemetry: traceEvents[%d] has no name", i)
		}
		ph, _ := ev["ph"].(string)
		if !known[ph] {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has unknown phase %q", i, name, ph)
		}
		if ph == "M" {
			continue
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has invalid ts", i, name)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has no pid", i, name)
		}
	}
	return nil
}

// ValidateTimeSeries checks that data parses as the pipm-timeseries/v1
// layout with internally consistent runs.
func ValidateTimeSeries(data []byte) error {
	var doc struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Label   string   `json:"label"`
			Names   []string `json:"names"`
			Samples []struct {
				TPS    *int64    `json:"t_ps"`
				Values []float64 `json:"values"`
			} `json:"samples"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: time-series is not valid JSON: %w", err)
	}
	if doc.Schema != TimeSeriesSchema {
		return fmt.Errorf("telemetry: time-series schema %q, want %q", doc.Schema, TimeSeriesSchema)
	}
	for _, r := range doc.Runs {
		if r.Label == "" {
			return fmt.Errorf("telemetry: time-series run without label")
		}
		for i, s := range r.Samples {
			if s.TPS == nil {
				return fmt.Errorf("telemetry: run %s sample %d has no t_ps", r.Label, i)
			}
			if len(s.Values) != len(r.Names) {
				return fmt.Errorf("telemetry: run %s sample %d has %d values for %d names",
					r.Label, i, len(s.Values), len(r.Names))
			}
		}
	}
	return nil
}
