package telemetry

import "encoding/json"

// traceJSON is the persisted form of a Trace ring: capacity, drop count and
// the buffered events oldest-first. The harness's result store serialises
// whole Outputs (DESIGN.md §14), and a Trace reloaded from JSON must
// re-export byte-identically — same Events() order, same Dropped() — so the
// ring's internal start/full bookkeeping is normalised away here rather
// than written out.
type traceJSON struct {
	Capacity int     `json:"capacity"`
	Dropped  uint64  `json:"dropped,omitempty"`
	Events   []Event `json:"events"`
}

// MarshalJSON encodes the ring as its oldest-first event sequence.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(traceJSON{Capacity: cap(t.events), Dropped: t.dropped, Events: t.Events()})
}

// UnmarshalJSON rebuilds the ring in its normalised form: events contiguous
// from index 0, ready for further Emits up to the original capacity.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var d traceJSON
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	if d.Capacity < len(d.Events) {
		d.Capacity = len(d.Events)
	}
	nt := NewTrace(d.Capacity)
	nt.events = append(nt.events, d.Events...)
	nt.dropped = d.Dropped
	*t = *nt
	return nil
}
