package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pipm/internal/harness"
	"pipm/internal/migration"
	"pipm/internal/store"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// Config wires one Service instance.
type Config struct {
	// Workers bounds concurrent simulations on the shared engine (≤ 0
	// means GOMAXPROCS) — the same knob as the offline -parallel flag.
	Workers int
	// Store, when non-nil, is the persistent result store under the
	// engine's memo and the source the artefact endpoints serve from.
	Store *store.Store
	// MaxActiveJobs bounds jobs executing at once (≤ 0 means 2); accepted
	// jobs beyond it wait queued in submission order.
	MaxActiveJobs int
	// MaxJobs bounds the job table (≤ 0 means 1024): past it, the
	// least-recently-accessed terminal jobs are evicted. Evicted jobs lose
	// their status/event endpoints; their results remain addressable via
	// /v1/runs/{key}.
	MaxJobs int
	// MaxRunsPerSweep rejects sweeps that expand past this many runs
	// (≤ 0 means 4096).
	MaxRunsPerSweep int
	// RequestTimeout bounds every non-streaming request (≤ 0 means 30s);
	// the SSE event stream is exempt — it lives as long as its job.
	RequestTimeout time.Duration
	// Progress, when non-nil, receives the engine's per-run progress lines.
	Progress io.Writer
	// Logf, when non-nil, receives service log lines (GC task, drain).
	Logf func(format string, args ...any)
}

// Service is the experiment service: one shared run engine, a job manager
// and the HTTP API over both (DESIGN.md §15).
type Service struct {
	cfg     Config
	metrics *Metrics
	reg     *telemetry.Registry
	mgr     *Manager
	store   *store.Store
	handler http.Handler
}

// New builds a Service. The engine, memo and store handle are shared by
// every job the service will ever run — that sharing is the point: identical
// concurrent submissions singleflight into one simulation, and anything the
// store has already seen is never simulated again.
func New(cfg Config) *Service {
	if cfg.MaxRunsPerSweep <= 0 {
		cfg.MaxRunsPerSweep = 4096
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	metrics := &Metrics{}
	reg := telemetry.NewRegistry()
	if cfg.Store != nil {
		cfg.Store.RegisterGauges(reg)
	}
	runner := harness.NewRunnerOpts(harness.Options{
		Workers:   cfg.Workers,
		Progress:  cfg.Progress,
		Store:     cfg.Store,
		OnRunDone: metrics.OnRunDone,
	})
	s := &Service{
		cfg:     cfg,
		metrics: metrics,
		reg:     reg,
		mgr:     NewManager(runner, cfg.MaxActiveJobs, cfg.MaxJobs, metrics),
		store:   cfg.Store,
	}
	s.handler = s.routes()
	return s
}

// Manager exposes the job manager (tests and the daemon's drain path).
func (s *Service) Manager() *Manager { return s.mgr }

// Metrics exposes the counter set.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler { return s.handler }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Drain stops accepting new sweeps and waits for every job to finish. If ctx
// expires first, every live job is cancelled and Drain still waits for them
// to settle (cancellation is prompt: queued runs never start) before
// returning ctx's error.
func (s *Service) Drain(ctx context.Context) error {
	s.mgr.SetDraining()
	done := make(chan struct{})
	go func() {
		s.mgr.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.logf("drain deadline passed; cancelling live jobs")
		s.mgr.CancelAll()
		<-done
		return ctx.Err()
	}
}

// StartGC launches the background store-GC task: every interval, entries
// older than maxAge (and stale temp files) are collected. The returned stop
// blocks until the task has exited. A nil store or non-positive parameter
// makes it a no-op.
func (s *Service) StartGC(interval, maxAge time.Duration) (stop func()) {
	if s.store == nil || interval <= 0 || maxAge <= 0 {
		return func() {}
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.gcOnce(maxAge)
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

func (s *Service) gcOnce(maxAge time.Duration) {
	removed, err := s.store.GC(maxAge, time.Now())
	s.metrics.GCRuns.Add(1)
	s.metrics.GCRemovedTotal.Add(uint64(removed))
	switch {
	case err != nil:
		s.logf("gc: %v", err)
	case removed > 0:
		s.logf("gc: removed %d entries older than %v", removed, maxAge)
	}
}

// routes builds the API mux. Every non-streaming endpoint is wrapped in the
// request timeout; the SSE stream is exempt by path.
func (s *Service) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleJobs)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{key}/timeseries", s.handleRunTimeSeries)
	mux.HandleFunc("GET /v1/runs/{key}/trace", s.handleRunTrace)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	timed := http.TimeoutHandler(mux, s.cfg.RequestTimeout, "request timed out\n")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			mux.ServeHTTP(w, r)
			return
		}
		timed.ServeHTTP(w, r)
	})
}

// writeJSON emits one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// SubmitResponse is the wire form of POST /v1/sweeps.
type SubmitResponse struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Total int      `json:"total"`
	// Deduped marks a submission that matched an existing job (same
	// content-addressed run set); the existing job is returned.
	Deduped bool `json:"deduped,omitempty"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad sweep spec: %w", err))
		return
	}
	runs, id, err := Expand(spec, s.cfg.MaxRunsPerSweep)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, created, err := s.mgr.Submit(spec, id, runs)
	if errors.Is(err, ErrDraining) {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st := j.Status(false)
	w.Header().Set("Location", "/v1/sweeps/"+j.ID)
	code := http.StatusAccepted
	if !created {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: j.ID, State: st.State, Total: st.Total, Deduped: !created})
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status(false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status(true))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.Cancel(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	j, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, j.Status(false))
}

// handleEvents streams a job's progress as Server-Sent Events: the full
// event log so far, then live events until the terminal job event, a client
// disconnect, or service shutdown. Event ordering is the engine's completion
// order — the noteDone seam — serialised per job.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	replay, live, unsubscribe := j.Subscribe()
	defer unsubscribe()
	s.metrics.SSEClients.Add(1)
	defer s.metrics.SSEClients.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	if live == nil {
		return // job already terminal; the replay ended with its last event
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
			if ev.Type == "job" && JobState(ev.State).Terminal() {
				return
			}
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// loadEntry resolves one run key against the store, mapping the store's
// error taxonomy onto HTTP statuses. A nil body return means the response
// has been written.
func (s *Service) loadEntry(w http.ResponseWriter, key string) []byte {
	if s.store == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no result store attached to this daemon"))
		return nil
	}
	body, err := s.store.Load(key)
	switch {
	case err == nil:
		return body
	case errors.Is(err, store.ErrMiss):
		writeErr(w, http.StatusNotFound, fmt.Errorf("no stored result for key %.12s…", key))
	case store.IsCorrupt(err):
		writeErr(w, http.StatusBadGateway, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
	return nil
}

// handleRun serves the canonical stored entry body — the verified
// `{result, digest, telemetry?}` JSON document, byte-identical to what the
// offline sweep wrote (and to `storecheck -cat KEY`).
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	body := s.loadEntry(w, r.PathValue("key"))
	if body == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

// decodeTelemetry decodes a stored entry into its labeled telemetry output;
// a nil return means the response has been written.
func (s *Service) decodeTelemetry(w http.ResponseWriter, key string) []telemetry.LabeledOutput {
	body := s.loadEntry(w, key)
	if body == nil {
		return nil
	}
	res, out, err := harness.DecodeStoredEntry(body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return nil
	}
	if out == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("run %.12s… has no telemetry; submit with sample_interval/trace set", key))
		return nil
	}
	return []telemetry.LabeledOutput{{
		Label:  res.Workload + "/" + res.Scheme.String(),
		Key:    key,
		Output: out,
	}}
}

func (s *Service) handleRunTimeSeries(w http.ResponseWriter, r *http.Request) {
	runs := s.decodeTelemetry(w, r.PathValue("key"))
	if runs == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.WriteTimeSeries(w, runs); err != nil {
		s.logf("timeseries export: %v", err)
	}
}

func (s *Service) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	runs := s.decodeTelemetry(w, r.PathValue("key"))
	if runs == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.WriteChromeTrace(w, runs); err != nil {
		s.logf("trace export: %v", err)
	}
}

// SchemeInfo is the wire form of one scheme-registry descriptor.
type SchemeInfo struct {
	Name          string `json:"name"`
	Family        string `json:"family"`
	Description   string `json:"description"`
	StaticMap     bool   `json:"static_map,omitempty"`
	AsyncTransfer bool   `json:"async_transfer,omitempty"`
	Hints         bool   `json:"hints,omitempty"`
}

func (s *Service) handleSchemes(w http.ResponseWriter, r *http.Request) {
	regd := migration.Registered()
	out := make([]SchemeInfo, len(regd))
	for i, sc := range regd {
		out[i] = SchemeInfo{
			Name:          sc.Name,
			Family:        sc.Family.String(),
			Description:   sc.Desc,
			StaticMap:     sc.StaticMap,
			AsyncTransfer: sc.AsyncTransfer,
			Hints:         sc.Hints,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// WorkloadInfo is the wire form of one Table 1 catalog entry.
type WorkloadInfo struct {
	Name           string  `json:"name"`
	Suite          string  `json:"suite"`
	FootprintBytes int64   `json:"footprint_bytes"`
	SharedFrac     float64 `json:"shared_frac"`
	WriteFrac      float64 `json:"write_frac"`
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	cat := workload.Catalog()
	out := make([]WorkloadInfo, len(cat))
	for i, wl := range cat {
		out[i] = WorkloadInfo{
			Name:           wl.Name,
			Suite:          wl.Suite,
			FootprintBytes: wl.Footprint,
			SharedFrac:     wl.SharedFrac,
			WriteFrac:      wl.WriteFrac,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.metrics.WriteTo(w, s.reg); err != nil {
		s.logf("metrics export: %v", err)
	}
}
