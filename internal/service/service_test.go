package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pipm/internal/migration"
	"pipm/internal/store"
	"pipm/internal/workload"
)

// tinySpec is the smallest meaningful sweep: one quick workload, two schemes.
func tinySpec() SweepSpec {
	return SweepSpec{
		Quick:     true,
		Workloads: []string{"pr"},
		Schemes:   []string{"native", "pipm"},
		Records:   2000,
	}
}

func newTestService(t *testing.T, withStore bool) *Service {
	t.Helper()
	cfg := Config{Workers: 2, MaxActiveJobs: 2, RequestTimeout: 30 * time.Second}
	if withStore {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		cfg.Store = st
	}
	return New(cfg)
}

func submit(t *testing.T, srv *httptest.Server, spec SweepSpec) (SubmitResponse, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out, resp.StatusCode
}

func jobStatus(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return st
}

func waitJob(t *testing.T, svc *Service, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	j, ok := svc.Manager().Get(id)
	if !ok {
		t.Fatalf("job %s not found in manager", id)
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", id)
	}
	return jobStatus(t, srv, id)
}

// TestServiceEndToEnd drives the full API surface against one daemon: submit,
// status, artefact endpoints, registry endpoints, metrics.
func TestServiceEndToEnd(t *testing.T) {
	svc := newTestService(t, true)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sub, code := submit(t, srv, tinySpec())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code)
	}
	if sub.Deduped {
		t.Fatalf("first submit reported deduped")
	}
	if sub.Total != 2 {
		t.Fatalf("sweep expanded to %d runs, want 2", sub.Total)
	}

	st := waitJob(t, svc, srv, sub.ID)
	if st.State != JobDone {
		t.Fatalf("job state %q (error %q), want done", st.State, st.Error)
	}
	if st.Done != 2 || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want 2/0", st.Done, st.Failed)
	}
	if len(st.Runs) != 2 {
		t.Fatalf("status has %d runs, want 2", len(st.Runs))
	}
	for _, r := range st.Runs {
		if r.State != RunDone {
			t.Fatalf("run %s state %q", r.Key[:12], r.State)
		}
		if r.Stats == nil || r.Stats.Instructions == 0 {
			t.Fatalf("run %s missing stats", r.Key[:12])
		}
	}

	// The stored artefact is served verbatim and matches the store file.
	key := st.Runs[0].Key
	resp, err := http.Get(srv.URL + "/v1/runs/" + key)
	if err != nil {
		t.Fatalf("GET run: %v", err)
	}
	got, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run: status %d: %s", resp.StatusCode, got)
	}
	want, err := svc.store.Load(key)
	if err != nil {
		t.Fatalf("store.Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served run body differs from store entry (%d vs %d bytes)", len(got), len(want))
	}

	// Untelemetered runs have no timeseries/trace.
	resp, err = http.Get(srv.URL + "/v1/runs/" + key + "/timeseries")
	if err != nil {
		t.Fatalf("GET timeseries: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("timeseries without telemetry: status %d, want 404", resp.StatusCode)
	}

	// Unknown key → 404; malformed key → 400.
	for path, want := range map[string]int{
		"/v1/runs/" + strings.Repeat("0", 64): http.StatusNotFound,
		"/v1/runs/nope":                       http.StatusBadRequest,
		"/v1/sweeps/nope":                     http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Registry endpoints mirror the in-process registries.
	var schemes []SchemeInfo
	getJSON(t, srv, "/v1/schemes", &schemes)
	if len(schemes) != len(migration.Registered()) {
		t.Fatalf("schemes: %d entries, want %d", len(schemes), len(migration.Registered()))
	}
	var wls []WorkloadInfo
	getJSON(t, srv, "/v1/workloads", &wls)
	if len(wls) != len(workload.Catalog()) {
		t.Fatalf("workloads: %d entries, want %d", len(wls), len(workload.Catalog()))
	}

	// Metrics include the simulation count and the store gauges.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := readAll(resp)
	for _, want := range []string{
		"pipm_simulations_total 2",
		"pipm_jobs_done_total 1",
		"pipm_store_saves 2",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServiceDedup covers both dedupe layers: an identical resubmission maps
// to the same job (content-addressed ID), and a distinct-but-overlapping job
// reuses the engine memo so no new simulations run.
func TestServiceDedup(t *testing.T) {
	svc := newTestService(t, true)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	first, code := submit(t, srv, tinySpec())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	waitJob(t, svc, srv, first.ID)
	sims := svc.Metrics().Simulations.Load()
	if sims != 2 {
		t.Fatalf("simulations after first job: %d, want 2", sims)
	}

	// Identical spec — same job, no new work at all.
	again, code := submit(t, srv, tinySpec())
	if code != http.StatusOK || !again.Deduped || again.ID != first.ID {
		t.Fatalf("resubmit: status %d deduped=%v id=%s (want 200/true/%s)",
			code, again.Deduped, again.ID, first.ID)
	}
	if got := svc.Metrics().Simulations.Load(); got != sims {
		t.Fatalf("resubmit triggered %d new simulations", got-sims)
	}

	// A superset sweep is a new job but shares the memoized runs: only the
	// genuinely new (workload, scheme) pair simulates.
	super := tinySpec()
	super.Schemes = []string{"native", "pipm", "nomad"}
	sup, code := submit(t, srv, super)
	if code != http.StatusAccepted || sup.ID == first.ID {
		t.Fatalf("superset submit: status %d id=%s", code, sup.ID)
	}
	st := waitJob(t, svc, srv, sup.ID)
	if st.State != JobDone || st.Done != 3 {
		t.Fatalf("superset job: state=%q done=%d", st.State, st.Done)
	}
	if got := svc.Metrics().Simulations.Load(); got != sims+1 {
		t.Fatalf("superset ran %d new simulations, want 1", got-sims)
	}
}

// TestServiceConcurrentIdenticalSubmissions races many identical POSTs: all
// must collapse to one job and one simulation per run key.
func TestServiceConcurrentIdenticalSubmissions(t *testing.T) {
	svc := newTestService(t, false)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, _ := submit(t, srv, tinySpec())
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("client %d got job %s, client 0 got %s", i, ids[i], ids[0])
		}
	}
	st := waitJob(t, svc, srv, ids[0])
	if st.State != JobDone {
		t.Fatalf("job state %q", st.State)
	}
	if created := svc.Metrics().JobsSubmitted.Load(); created != 1 {
		t.Fatalf("%d jobs created, want 1", created)
	}
	if sims := svc.Metrics().Simulations.Load(); sims != 2 {
		t.Fatalf("%d simulations, want 2 (one per distinct key)", sims)
	}
}

// TestServiceSSE consumes the event stream of a job from start to terminal
// event and checks the sequence is dense and complete.
func TestServiceSSE(t *testing.T) {
	svc := newTestService(t, false)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sub, _ := submit(t, srv, tinySpec())
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Type == "job" && JobState(ev.State).Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan events: %v", err)
	}
	// 2 runs + "running" + terminal = 4 events, densely numbered.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].Type != "job" || events[0].State != string(JobRunning) {
		t.Fatalf("first event %+v, want job/running", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "job" || last.State != string(JobDone) || last.Done != 2 {
		t.Fatalf("terminal event %+v", last)
	}

	// A late subscriber replays the full log instantly.
	resp2, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatalf("GET events (replay): %v", err)
	}
	replay, _ := readAll(resp2)
	if n := strings.Count(string(replay), "data: "); n != 4 {
		t.Fatalf("replay has %d events, want 4", n)
	}
}

// TestServiceCancel cancels a job stuck behind the active-jobs bound and
// checks it finishes as cancelled without running anything.
func TestServiceCancel(t *testing.T) {
	svc := New(Config{Workers: 1, MaxActiveJobs: 1, RequestTimeout: 30 * time.Second})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Occupy the single active slot with a job big enough to still be
	// running when the DELETE lands (the victim stays queued behind it).
	big := tinySpec()
	big.Records = 400000
	blocker, _ := submit(t, srv, big)
	// ...then queue a different sweep behind it and cancel it while queued.
	queued := tinySpec()
	queued.Workloads = []string{"canneal"}
	victim, _ := submit(t, srv, queued)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	st := waitJob(t, svc, srv, victim.ID)
	if st.State != JobCancelled {
		t.Fatalf("victim state %q, want cancelled", st.State)
	}
	if st.Cancelled != st.Total || st.Done != 0 {
		t.Fatalf("victim counts done=%d cancelled=%d total=%d", st.Done, st.Cancelled, st.Total)
	}
	if bl := waitJob(t, svc, srv, blocker.ID); bl.State != JobDone {
		t.Fatalf("blocker state %q", bl.State)
	}
	// The victim's runs never simulated.
	if sims := svc.Metrics().Simulations.Load(); sims != 2 {
		t.Fatalf("%d simulations, want only the blocker's 2", sims)
	}
	if got := svc.Metrics().JobsCancelled.Load(); got != 1 {
		t.Fatalf("jobs_cancelled %d, want 1", got)
	}
}

// TestServiceDrain: draining rejects new sweeps with 503 but finishes the
// in-flight job; Drain returns once all jobs settle.
func TestServiceDrain(t *testing.T) {
	svc := newTestService(t, false)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sub, _ := submit(t, srv, tinySpec())
	svc.Manager().SetDraining()

	late := tinySpec()
	late.Workloads = []string{"ycsb"}
	_, code := submit(t, srv, late)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}
	// Resubmitting the live job still dedupes rather than erroring.
	dup, code := submit(t, srv, tinySpec())
	if code != http.StatusOK || !dup.Deduped {
		t.Fatalf("dedupe while draining: status %d deduped=%v", code, dup.Deduped)
	}

	ctx, cancelCtx := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCtx()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := jobStatus(t, srv, sub.ID); st.State != JobDone {
		t.Fatalf("job state after drain %q, want done", st.State)
	}
}

// TestServiceTimeseriesAndTrace submits a telemetered sweep and fetches both
// derived artefacts.
func TestServiceTimeseriesAndTrace(t *testing.T) {
	svc := newTestService(t, true)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	spec := tinySpec()
	spec.Schemes = []string{"pipm"}
	spec.SampleInterval = "20us"
	spec.Trace = true
	sub, _ := submit(t, srv, spec)
	st := waitJob(t, svc, srv, sub.ID)
	if st.State != JobDone {
		t.Fatalf("job state %q (error %q)", st.State, st.Error)
	}
	key := st.Runs[0].Key

	var ts struct {
		Schema string `json:"schema"`
		Runs   []struct {
			Label string `json:"label"`
		} `json:"runs"`
	}
	getJSON(t, srv, "/v1/runs/"+key+"/timeseries", &ts)
	if !strings.HasPrefix(ts.Schema, "pipm-timeseries/") || len(ts.Runs) != 1 {
		t.Fatalf("timeseries schema=%q runs=%d", ts.Schema, len(ts.Runs))
	}
	if ts.Runs[0].Label != "pr/pipm" {
		t.Fatalf("timeseries label %q", ts.Runs[0].Label)
	}

	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	getJSON(t, srv, "/v1/runs/"+key+"/trace", &trace)
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("trace has no events")
	}
}

// TestExpand covers the spec-resolution corners: aliasing, unknown names,
// zero-run and over-budget rejection, and ID stability under reordering.
func TestExpand(t *testing.T) {
	spec := tinySpec()
	runs, id, err := Expand(spec, 0)
	if err != nil || len(runs) != 2 {
		t.Fatalf("Expand: %v, %d runs", err, len(runs))
	}

	// Order and duplicates don't change the identity.
	reordered := spec
	reordered.Schemes = []string{"pipm", "native", "pipm"}
	runs2, id2, err := Expand(reordered, 0)
	if err != nil || len(runs2) != 2 {
		t.Fatalf("Expand reordered: %v, %d runs", err, len(runs2))
	}
	if id2 != id {
		t.Fatalf("reordered spec changed job ID: %s vs %s", id2, id)
	}

	// "all" and empty both mean the full registry.
	all := spec
	all.Schemes = []string{"all"}
	runsAll, _, err := Expand(all, 0)
	if err != nil || len(runsAll) != len(migration.Kinds) {
		t.Fatalf("Expand all: %v, %d runs, want %d", err, len(runsAll), len(migration.Kinds))
	}

	for _, bad := range []SweepSpec{
		{Quick: true, Workloads: []string{"no-such-workload"}},
		{Quick: true, Schemes: []string{"no-such-scheme"}},
		{Quick: true, SampleInterval: "banana"},
		{Quick: true, Audit: "frantic"},
	} {
		if _, _, err := Expand(bad, 0); err == nil {
			t.Fatalf("Expand(%+v) accepted a bad spec", bad)
		}
	}
	if _, _, err := Expand(SweepSpec{Quick: true}, 2); err == nil {
		t.Fatalf("Expand accepted a sweep over the run limit")
	}
}

// TestJobTableEviction caps the job table at 2 and walks three sweeps
// through it: the least-recently-accessed finished job is evicted on the
// third submission, a status read refreshes a job's recency, live jobs and
// the index stay consistent — and an evicted job's run artefact remains
// reachable via /v1/runs/{key}, because results live in the store under
// their run key, not in the job table.
func TestJobTableEviction(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	svc := New(Config{Workers: 2, MaxActiveJobs: 2, MaxJobs: 2,
		RequestTimeout: 30 * time.Second, Store: st})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	spec := func(records int64) SweepSpec {
		return SweepSpec{Quick: true, Workloads: []string{"pr"},
			Schemes: []string{"native"}, Records: records}
	}
	sub1, _ := submit(t, srv, spec(2000))
	waitJob(t, svc, srv, sub1.ID)
	sub2, _ := submit(t, srv, spec(2200))
	st2 := waitJob(t, svc, srv, sub2.ID)
	key2 := st2.Runs[0].Key

	// Touch job 1 so job 2 becomes the eviction candidate, then overflow.
	jobStatus(t, srv, sub1.ID)
	sub3, _ := submit(t, srv, spec(2400))
	waitJob(t, svc, srv, sub3.ID)

	if _, ok := svc.Manager().Get(sub2.ID); ok {
		t.Fatalf("job %s should have been evicted", sub2.ID[:12])
	}
	resp, err := http.Get(srv.URL + "/v1/sweeps/" + sub2.ID)
	if err != nil {
		t.Fatalf("GET evicted job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET evicted job: status %d, want 404", resp.StatusCode)
	}
	for _, id := range []string{sub1.ID, sub3.ID} {
		if got := jobStatus(t, srv, id); !got.State.Terminal() {
			t.Fatalf("surviving job %s state %q", id[:12], got.State)
		}
	}
	var index []JobStatus
	getJSON(t, srv, "/v1/sweeps", &index)
	if len(index) != 2 {
		t.Fatalf("jobs index has %d entries, want 2", len(index))
	}
	if got := svc.Metrics().JobsEvicted.Load(); got != 1 {
		t.Fatalf("JobsEvicted = %d, want 1", got)
	}

	// The evicted job's artefact is still served by its run key.
	resp, err = http.Get(srv.URL + "/v1/runs/" + key2)
	if err != nil {
		t.Fatalf("GET evicted job's run: %v", err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET evicted job's run: status %d: %s", resp.StatusCode, body)
	}

	// Resubmitting the evicted spec is a fresh job, not a dedupe — and its
	// run is answered from the store, not resimulated.
	sub2b, code := submit(t, srv, spec(2200))
	if code != http.StatusAccepted || sub2b.Deduped {
		t.Fatalf("resubmit after eviction: status %d deduped=%v, want 202/false", code, sub2b.Deduped)
	}
	if got := waitJob(t, svc, srv, sub2b.ID); got.State != JobDone {
		t.Fatalf("resubmitted job state %q", got.State)
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
