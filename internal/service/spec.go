// Package service is the experiment service: a long-running HTTP daemon in
// front of the harness run-graph engine and the persistent result store
// (DESIGN.md §15). Clients submit sweep specifications (workloads × schemes
// × budget, plus the optional telemetry/audit/intra subsystems), the service
// expands them into canonical RunRequests and executes them on one shared
// harness.Runner — so concurrent identical submissions dedupe through the
// engine's singleflight memo, a warm store answers repeats from disk, and a
// job is nothing more than a watch over a set of run keys. Progress streams
// as Server-Sent Events, artefacts (results, time-series, Perfetto traces)
// are served straight from the store, and /metrics exports the process
// telemetry registry plus the service counters.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"pipm/internal/audit"
	"pipm/internal/harness"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// SweepSpec is the wire form of one sweep submission (POST /v1/sweeps). The
// zero value of every field means "the harness default": the full Table 1
// catalog (or the quick trio with Quick), every registered scheme, the base
// option set's record budget and seed, and no optional subsystems.
type SweepSpec struct {
	// Workloads are Table 1 catalog names; empty means the base option
	// set's workload list (full catalog, or the quick trio with Quick).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes are registry names ("pipm", "native", ...); empty or
	// ["all"] means every registered scheme in presentation order.
	Schemes []string `json:"schemes,omitempty"`
	// Records is the per-core trace budget; 0 means the base default.
	Records int64 `json:"records_per_core,omitempty"`
	// Seed seeds the workload generators; 0 means the base default (1).
	Seed int64 `json:"seed,omitempty"`
	// Quick selects the quick-scale base configuration (the unit-test
	// sizing) instead of the full scaled sweep configuration.
	Quick bool `json:"quick,omitempty"`

	// Optional system-shape overrides (0 keeps the base configuration).
	Hosts     int   `json:"hosts,omitempty"`
	Cores     int   `json:"cores_per_host,omitempty"`
	SharedMiB int64 `json:"shared_mib,omitempty"`

	// SampleInterval, a Go duration string ("10us"), enables per-run
	// interval time-series collection; Trace enables the protocol event
	// trace. Either one folds telemetry into the run keys, exactly like
	// the offline CLIs.
	SampleInterval string `json:"sample_interval,omitempty"`
	Trace          bool   `json:"trace,omitempty"`

	// Audit attaches the runtime invariant auditor: "", "off", "quantum"
	// or "paranoid". Audited runs always execute — they bypass the result
	// store in both directions.
	Audit string `json:"audit,omitempty"`

	// IntraWorkers > 0 runs each simulation on the intra-run parallel
	// engine (PDES) with that many prepare workers.
	IntraWorkers int `json:"intra_workers,omitempty"`
}

// SweepRun is one expanded run of a sweep: the full request plus the
// identity strings the API reports.
type SweepRun struct {
	Req      harness.RunRequest
	Key      string
	Workload string
	Scheme   string
}

// Expand resolves the spec against the harness defaults into its
// deduplicated run set, in (workload, scheme) presentation order. The
// returned job ID is content-addressed — a digest over the sorted canonical
// run keys — so identical sweeps, however phrased, map to one job.
func Expand(spec SweepSpec, maxRuns int) (runs []SweepRun, id string, err error) {
	base := harness.DefaultOptions()
	if spec.Quick {
		base = harness.QuickOptions()
	}

	cfg := base.Cfg
	if spec.Hosts > 0 {
		cfg.Hosts = spec.Hosts
	}
	if spec.Cores > 0 {
		cfg.CoresPerHost = spec.Cores
	}
	if spec.SharedMiB > 0 {
		cfg.SharedBytes = spec.SharedMiB << 20
	}
	if err := cfg.Validate(); err != nil {
		return nil, "", fmt.Errorf("config: %w", err)
	}

	records := base.RecordsPerCore
	if spec.Records > 0 {
		records = spec.Records
	}
	seed := base.Seed
	if spec.Seed != 0 {
		seed = spec.Seed
	}

	var topt telemetry.Options
	if spec.SampleInterval != "" {
		d, err := time.ParseDuration(spec.SampleInterval)
		if err != nil {
			return nil, "", fmt.Errorf("sample_interval: %w", err)
		}
		if d <= 0 {
			return nil, "", fmt.Errorf("sample_interval must be positive, got %q", spec.SampleInterval)
		}
		topt.SampleInterval = sim.Time(d.Nanoseconds()) * sim.Nanosecond
	}
	topt.Trace = spec.Trace

	var aopt audit.Options
	if spec.Audit != "" {
		mode, err := audit.ParseMode(spec.Audit)
		if err != nil {
			return nil, "", err
		}
		aopt.Mode = mode
	}

	var iopt machine.IntraOptions
	if spec.IntraWorkers > 0 {
		iopt.Workers = spec.IntraWorkers
	}

	wls := base.Workloads
	if len(spec.Workloads) > 0 {
		wls = wls[:0:0]
		for _, name := range spec.Workloads {
			wl, err := workload.ByName(name)
			if err != nil {
				return nil, "", err
			}
			wls = append(wls, wl)
		}
	}

	kinds := migration.Kinds
	if len(spec.Schemes) > 0 && !(len(spec.Schemes) == 1 && spec.Schemes[0] == "all") {
		kinds = kinds[:0:0]
		for _, name := range spec.Schemes {
			sc, err := migration.ByName(name)
			if err != nil {
				return nil, "", err
			}
			kinds = append(kinds, sc.Kind)
		}
	}

	seen := map[string]bool{}
	for _, wl := range wls {
		for _, k := range kinds {
			req := harness.RunRequest{
				Cfg: cfg, WL: wl, Scheme: k, Records: records, Seed: seed,
				Telemetry: topt, Audit: aopt, Intra: iopt,
			}
			key := req.Key().String()
			if seen[key] {
				continue // duplicate names in the spec collapse to one run
			}
			seen[key] = true
			runs = append(runs, SweepRun{Req: req, Key: key, Workload: wl.Name, Scheme: k.String()})
		}
	}
	if len(runs) == 0 {
		return nil, "", fmt.Errorf("sweep expands to zero runs")
	}
	if maxRuns > 0 && len(runs) > maxRuns {
		return nil, "", fmt.Errorf("sweep expands to %d runs, limit is %d", len(runs), maxRuns)
	}
	return runs, jobID(runs), nil
}

// jobID derives the content-addressed job identity: sha256 over the sorted
// canonical run keys. Two submissions naming the same run set — in any
// order, with any redundant aliases — share one job.
func jobID(runs []SweepRun) string {
	keys := make([]string, len(runs))
	for i, r := range runs {
		keys[i] = r.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}
