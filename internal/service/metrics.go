package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"pipm/internal/harness"
	"pipm/internal/telemetry"
)

// Metrics is the service's process-level counter set, fed by the HTTP layer
// and by the engine's OnRunDone completion hook. Everything is atomic: the
// hook runs under the engine lock and must stay allocation- and lock-free.
type Metrics struct {
	JobsSubmitted  atomic.Uint64
	JobsDeduped    atomic.Uint64
	JobsDone       atomic.Uint64
	JobsFailed     atomic.Uint64
	JobsCancelled  atomic.Uint64
	JobsEvicted    atomic.Uint64 // terminal jobs dropped by the table cap
	RunsCompleted  atomic.Uint64 // every engine completion (simulated or loaded)
	Simulations    atomic.Uint64 // completions that actually simulated
	StoreLoads     atomic.Uint64 // completions answered from the store
	RunsFailed     atomic.Uint64
	SSEClients     atomic.Int64
	GCRuns         atomic.Uint64
	GCRemovedTotal atomic.Uint64
}

// OnRunDone is the harness.Options.OnRunDone hook: called once per engine
// completion, in completion order, with the engine lock held.
func (m *Metrics) OnRunDone(st harness.RunStats) {
	m.RunsCompleted.Add(1)
	if st.StoreHit {
		m.StoreLoads.Add(1)
	} else {
		m.Simulations.Add(1)
	}
}

// WriteTo renders the exposition text: one `name value` line per counter,
// Prometheus-style, sorted by name — the service counters first (pipm_*
// namespace), then every instrument of the process telemetry registry (the
// store gauges live there) with dots mapped to underscores.
func (m *Metrics) WriteTo(w io.Writer, reg *telemetry.Registry) error {
	lines := []string{
		fmt.Sprintf("pipm_jobs_submitted_total %d", m.JobsSubmitted.Load()),
		fmt.Sprintf("pipm_jobs_deduped_total %d", m.JobsDeduped.Load()),
		fmt.Sprintf("pipm_jobs_done_total %d", m.JobsDone.Load()),
		fmt.Sprintf("pipm_jobs_failed_total %d", m.JobsFailed.Load()),
		fmt.Sprintf("pipm_jobs_cancelled_total %d", m.JobsCancelled.Load()),
		fmt.Sprintf("pipm_jobs_evicted_total %d", m.JobsEvicted.Load()),
		fmt.Sprintf("pipm_runs_completed_total %d", m.RunsCompleted.Load()),
		fmt.Sprintf("pipm_simulations_total %d", m.Simulations.Load()),
		fmt.Sprintf("pipm_store_loads_total %d", m.StoreLoads.Load()),
		fmt.Sprintf("pipm_runs_failed_total %d", m.RunsFailed.Load()),
		fmt.Sprintf("pipm_sse_clients %d", m.SSEClients.Load()),
		fmt.Sprintf("pipm_gc_runs_total %d", m.GCRuns.Load()),
		fmt.Sprintf("pipm_gc_removed_total %d", m.GCRemovedTotal.Load()),
	}
	reg.Each(func(name string, v float64) {
		name = "pipm_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	})
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
