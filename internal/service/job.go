package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pipm/internal/harness"
)

// JobState is the lifecycle of one submitted sweep.
type JobState string

const (
	// JobQueued: accepted, waiting for an active-job slot.
	JobQueued JobState = "queued"
	// JobRunning: holds a slot; its runs are flowing through the engine.
	JobRunning JobState = "running"
	// JobDone: every run completed cleanly.
	JobDone JobState = "done"
	// JobFailed: at least one run errored (build error, invariant
	// violation); the rest still completed.
	JobFailed JobState = "failed"
	// JobCancelled: the submitter cancelled; queued runs never execute,
	// in-flight simulations finish (their results are shared work) but the
	// job stops waiting for them.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// RunState is the lifecycle of one run inside a job.
type RunState string

const (
	RunPending   RunState = "pending"
	RunDone      RunState = "done"
	RunFailed    RunState = "failed"
	RunCancelled RunState = "cancelled"
)

// Event is one progress notification on a job's stream: type "run" marks a
// run reaching a terminal state, type "job" marks a job state change (the
// terminal job event is always the last event of a stream). Seq numbers are
// dense per job, so clients can detect gaps after a reconnect.
type Event struct {
	Seq      int      `json:"seq"`
	Type     string   `json:"type"` // "run" or "job"
	Job      string   `json:"job"`
	State    string   `json:"state"`
	Key      string   `json:"key,omitempty"`
	Workload string   `json:"workload,omitempty"`
	Scheme   string   `json:"scheme,omitempty"`
	Error    string   `json:"error,omitempty"`
	Done     int      `json:"done"`
	Failed   int      `json:"failed,omitempty"`
	Total    int      `json:"total"`
	Stats    *RunInfo `json:"stats,omitempty"`
}

// RunInfo is the per-run observability block embedded in events and status
// reports: the engine's RunStats for the completed execution.
type RunInfo struct {
	WallMS       float64 `json:"wall_ms"`
	SimPS        int64   `json:"sim_ps"`
	Instructions int64   `json:"instructions"`
	MIPS         float64 `json:"mips,omitempty"`
	MemoHits     int     `json:"memo_hits,omitempty"`
	StoreHit     bool    `json:"store_hit,omitempty"`
}

func runInfoOf(st harness.RunStats) *RunInfo {
	return &RunInfo{
		WallMS:       st.WallMS,
		SimPS:        st.SimPS,
		Instructions: st.Instructions,
		MIPS:         st.MIPS,
		MemoHits:     st.MemoHits,
		StoreHit:     st.StoreHit,
	}
}

// jobRun is one run's tracked state inside a job.
type jobRun struct {
	SweepRun
	state RunState
	info  *RunInfo
	err   string
}

// Job is one submitted sweep: a content-addressed identity, the expanded
// run set, a cancellation context, and an append-only event log with live
// subscribers.
type Job struct {
	ID      string
	Spec    SweepSpec
	Created time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	mu       sync.Mutex
	state    JobState
	finished time.Time
	runs     []*jobRun
	events   []Event
	subs     map[int]chan Event
	subSeq   int
	errMsg   string
}

// maxEvents bounds a job's event log: every run emits exactly one terminal
// run event, plus one "running" and one terminal job event.
func (j *Job) maxEvents() int { return len(j.runs) + 2 }

// emit appends one event (stamping its sequence number) and fans it out to
// every subscriber. Callers hold j.mu. Subscriber channels are sized for the
// full event budget at subscribe time, so sends never block.
func (j *Job) emit(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		ch <- ev
	}
}

// counts returns (done, failed, cancelled) run tallies. Callers hold j.mu.
func (j *Job) counts() (done, failed, cancelled int) {
	for _, r := range j.runs {
		switch r.state {
		case RunDone:
			done++
		case RunFailed:
			failed++
		case RunCancelled:
			cancelled++
		}
	}
	return
}

// Subscribe returns the event log so far plus a live channel for the rest.
// The channel is closed after the terminal job event (or on unsubscribe);
// the returned cancel must be called when the consumer leaves early.
func (j *Job) Subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	if j.state.Terminal() {
		return replay, nil, func() {}
	}
	ch := make(chan Event, j.maxEvents()-len(j.events))
	id := j.subSeq
	j.subSeq++
	j.subs[id] = ch
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
	}
}

// Done exposes the job's terminal-state signal.
func (j *Job) Done() <-chan struct{} { return j.done }

// RunStatus is the wire form of one run inside a status report.
type RunStatus struct {
	Key      string   `json:"key"`
	Workload string   `json:"workload"`
	Scheme   string   `json:"scheme"`
	State    RunState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Stats    *RunInfo `json:"stats,omitempty"`
}

// JobStatus is the wire form of GET /v1/sweeps/{id}.
type JobStatus struct {
	ID        string      `json:"id"`
	State     JobState    `json:"state"`
	Created   time.Time   `json:"created"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Total     int         `json:"total"`
	Done      int         `json:"done"`
	Failed    int         `json:"failed,omitempty"`
	Cancelled int         `json:"cancelled,omitempty"`
	Error     string      `json:"error,omitempty"`
	Spec      *SweepSpec  `json:"spec,omitempty"`
	Runs      []RunStatus `json:"runs,omitempty"`
}

// Status snapshots the job. withRuns includes the per-run list (and the
// spec); the jobs index omits both.
func (j *Job) Status(withRuns bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	done, failed, cancelled := j.counts()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Created:   j.Created,
		Total:     len(j.runs),
		Done:      done,
		Failed:    failed,
		Cancelled: cancelled,
		Error:     j.errMsg,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if withRuns {
		spec := j.Spec
		st.Spec = &spec
		st.Runs = make([]RunStatus, len(j.runs))
		for i, r := range j.runs {
			st.Runs[i] = RunStatus{
				Key:      r.Key,
				Workload: r.Workload,
				Scheme:   r.Scheme,
				State:    r.state,
				Error:    r.err,
				Stats:    r.info,
			}
		}
	}
	return st
}

// ErrDraining rejects submissions once the service has begun its shutdown
// drain.
var ErrDraining = errors.New("service: draining, not accepting new sweeps")

// Manager owns the job table and the bounded active-job queue over one
// shared harness.Runner. Accepted jobs beyond the active bound wait in
// JobQueued order; every job's runs share the runner's memo, singleflight
// and store, so overlapping jobs never duplicate a simulation.
type Manager struct {
	runner  *harness.Runner
	active  chan struct{}
	maxJobs int
	metrics *Metrics

	wg sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string          // submission order, for the jobs index
	touch    map[string]uint64 // last-access stamps, for terminal-job eviction
	touchSeq uint64
	draining bool
}

// NewManager builds a manager executing at most maxActive jobs at a time
// (≤ 0 means 2) on the given runner. maxJobs bounds the job table: once the
// table exceeds it, the least-recently-accessed terminal jobs are evicted
// (≤ 0 means 1024; live jobs are never evicted, so a burst of running
// sweeps may briefly exceed the cap). Evicted jobs drop their status and
// event log, but their run artefacts stay addressable — every result lives
// in the runner's memo and store under its run key, served by /v1/runs/{key}
// independently of the job table.
func NewManager(runner *harness.Runner, maxActive, maxJobs int, metrics *Metrics) *Manager {
	if maxActive <= 0 {
		maxActive = 2
	}
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &Manager{
		runner:  runner,
		active:  make(chan struct{}, maxActive),
		maxJobs: maxJobs,
		metrics: metrics,
		jobs:    map[string]*Job{},
		touch:   map[string]uint64{},
	}
}

// Runner exposes the shared run engine (the HTTP layer reads run stats off
// it for artefact endpoints).
func (m *Manager) Runner() *harness.Runner { return m.runner }

// Submit registers the expanded sweep as a job and schedules it. Identical
// sweeps — same content-addressed ID — dedupe onto the existing job at any
// point in its lifecycle; created reports whether this call made a new one.
func (m *Manager) Submit(spec SweepSpec, id string, runs []SweepRun) (j *Job, created bool, err error) {
	m.mu.Lock()
	if existing, ok := m.jobs[id]; ok {
		m.touchLocked(id)
		m.mu.Unlock()
		m.metrics.JobsDeduped.Add(1)
		return existing, false, nil
	}
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	j = &Job{
		ID:      id,
		Spec:    spec,
		Created: time.Now().UTC(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		subs:    map[int]chan Event{},
	}
	j.runs = make([]*jobRun, len(runs))
	for i, r := range runs {
		j.runs[i] = &jobRun{SweepRun: r, state: RunPending}
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.touchLocked(id)
	m.evictLocked()
	m.wg.Add(1)
	m.mu.Unlock()

	m.metrics.JobsSubmitted.Add(1)
	go m.execute(j)
	return j, true, nil
}

// Get returns the job with the given ID, marking it recently used.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if ok {
		m.touchLocked(id)
	}
	return j, ok
}

// touchLocked stamps one job as the most recently accessed. A counter, not
// a clock: stamps must be unique so eviction order is total. Callers hold
// m.mu.
func (m *Manager) touchLocked(id string) {
	m.touchSeq++
	m.touch[id] = m.touchSeq
}

// evictLocked drops least-recently-accessed terminal jobs until the table
// fits maxJobs. Live jobs are skipped — a table full of running sweeps
// simply stays over the cap until some finish. Callers hold m.mu; taking
// j.mu under m.mu follows the manager→job lock order used everywhere.
func (m *Manager) evictLocked() {
	for len(m.jobs) > m.maxJobs {
		victim := ""
		var oldest uint64
		for id, j := range m.jobs {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if !terminal {
				continue
			}
			if victim == "" || m.touch[id] < oldest {
				victim, oldest = id, m.touch[id]
			}
		}
		if victim == "" {
			return
		}
		delete(m.jobs, victim)
		delete(m.touch, victim)
		for i, id := range m.order {
			if id == victim {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.metrics.JobsEvicted.Add(1)
	}
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, len(m.order))
	for i, id := range m.order {
		out[i] = m.jobs[id]
	}
	return out
}

// Cancel cancels the job's context: pending runs never start, the job
// finishes as cancelled. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// SetDraining stops Submit from accepting new jobs (existing ones keep
// running; duplicate submissions of existing jobs still dedupe).
func (m *Manager) SetDraining() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// CancelAll cancels every live job (the drain-deadline escalation).
func (m *Manager) CancelAll() {
	for _, j := range m.Jobs() {
		j.cancel()
	}
}

// Wait blocks until every submitted job has reached a terminal state.
func (m *Manager) Wait() { m.wg.Wait() }

// execute drives one job: wait for an active slot, fan one watcher
// goroutine out per run (the engine's worker pool bounds actual simulations;
// watchers of already-memoized keys return instantly), then finalize.
func (m *Manager) execute(j *Job) {
	defer m.wg.Done()
	select {
	case m.active <- struct{}{}:
	case <-j.ctx.Done():
		m.finalize(j)
		return
	}
	defer func() { <-m.active }()

	j.mu.Lock()
	if j.ctx.Err() != nil {
		j.mu.Unlock()
		m.finalize(j)
		return
	}
	j.state = JobRunning
	done, failed, _ := j.counts()
	j.emit(Event{Type: "job", State: string(JobRunning), Done: done, Failed: failed, Total: len(j.runs)})
	j.mu.Unlock()

	var wg sync.WaitGroup
	for _, r := range j.runs {
		wg.Add(1)
		go func(r *jobRun) {
			defer wg.Done()
			_, err := m.runner.GetCtx(j.ctx, r.Req)
			m.completeRun(j, r, err)
		}(r)
	}
	wg.Wait()
	m.finalize(j)
}

// completeRun records one run's terminal state and emits its event. The
// engine's noteDone seam already ordered the underlying completions; the job
// lock makes the per-job event order a single total order too.
func (m *Manager) completeRun(j *Job, r *jobRun, err error) {
	if st, ok := m.runner.StatsFor(r.Req); ok {
		r.info = runInfoOf(st)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		r.state = RunDone
	case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
		r.state = RunCancelled
	default:
		r.state = RunFailed
		r.err = err.Error()
		m.metrics.RunsFailed.Add(1)
	}
	done, failed, _ := j.counts()
	j.emit(Event{
		Type: "run", State: string(r.state),
		Key: r.Key, Workload: r.Workload, Scheme: r.Scheme,
		Error: r.err, Stats: r.info,
		Done: done, Failed: failed, Total: len(j.runs),
	})
}

// finalize moves the job to its terminal state, emits the closing job event
// and releases every subscriber.
func (m *Manager) finalize(j *Job) {
	j.mu.Lock()
	if j.ctx.Err() != nil {
		// A job cancelled while queued never started its watchers; its
		// untouched runs are cancelled, not pending, in the final report.
		for _, r := range j.runs {
			if r.state == RunPending {
				r.state = RunCancelled
			}
		}
	}
	done, failed, _ := j.counts()
	switch {
	case j.ctx.Err() != nil:
		j.state = JobCancelled
		j.errMsg = "cancelled by request"
		m.metrics.JobsCancelled.Add(1)
	case failed > 0:
		j.state = JobFailed
		j.errMsg = fmt.Sprintf("%d of %d runs failed", failed, len(j.runs))
		m.metrics.JobsFailed.Add(1)
	default:
		j.state = JobDone
		m.metrics.JobsDone.Add(1)
	}
	j.finished = time.Now().UTC()
	j.emit(Event{Type: "job", State: string(j.state), Error: j.errMsg,
		Done: done, Failed: failed, Total: len(j.runs)})
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources either way
	close(j.done)
}
