package core

import (
	"math/rand"
	"testing"
)

func params() Params {
	return Params{
		Hosts:              4,
		SharedPages:        1024,
		Threshold:          8,
		GlobalCacheEntries: -1,
		LocalCacheEntries:  -1,
	}
}

func TestPromotionAfterThresholdLead(t *testing.T) {
	m := NewManager(params())
	// Host 0 accesses page 7 eight times with no competition → promoted on
	// the 8th access.
	for i := 0; i < 7; i++ {
		out := m.DeviceAccess(0, 7)
		if out.Promoted {
			t.Fatalf("promoted after %d accesses, threshold is 8", i+1)
		}
	}
	out := m.DeviceAccess(0, 7)
	if !out.Promoted || out.Owner != 0 {
		t.Fatalf("8th access: %+v, want promotion to host 0", out)
	}
	if m.Owner(7) != 0 {
		t.Fatalf("Owner = %d", m.Owner(7))
	}
	if m.MigratedPages(0) != 1 {
		t.Fatalf("MigratedPages(0) = %d", m.MigratedPages(0))
	}
	if m.Stats().Promotions != 1 {
		t.Fatalf("Promotions = %d", m.Stats().Promotions)
	}
}

func TestContestedPageNeverPromotes(t *testing.T) {
	m := NewManager(params())
	// Perfectly alternating accesses from two hosts: the vote counter
	// oscillates and never reaches the threshold — the "short-term-balanced"
	// case §4.5 says must not migrate.
	for i := 0; i < 1000; i++ {
		if out := m.DeviceAccess(i%2, 42); out.Promoted {
			t.Fatalf("contested page promoted at access %d", i)
		}
	}
	if m.Owner(42) != NoHost {
		t.Fatal("contested page has an owner")
	}
}

func TestMajorityWinsDespiteMinority(t *testing.T) {
	m := NewManager(params())
	// Host 1 accesses 3× as often as host 2; its lead grows by 2 every 4
	// accesses, so it promotes despite the interference.
	for i := 0; m.Owner(9) == NoHost; i++ {
		m.DeviceAccess(1, 9)
		m.DeviceAccess(2, 9)
		m.DeviceAccess(1, 9)
		m.DeviceAccess(1, 9)
		if i > 100 {
			t.Fatal("majority host never promoted")
		}
	}
	if m.Owner(9) != 1 {
		t.Fatalf("Owner = %d, want 1", m.Owner(9))
	}
}

func TestCandidateHandover(t *testing.T) {
	m := NewManager(params())
	// Host 0 builds a lead of 3, then host 1 erodes it to zero and takes
	// over as candidate (§4.2 step ①).
	for i := 0; i < 3; i++ {
		m.DeviceAccess(0, 5)
	}
	for i := 0; i < 3; i++ {
		m.DeviceAccess(1, 5)
	}
	// Counter is now 0; the next access from host 1 makes it candidate.
	for i := 0; i < 8; i++ {
		m.DeviceAccess(1, 5)
	}
	if m.Owner(5) != 1 {
		t.Fatalf("Owner = %d, want 1 after handover", m.Owner(5))
	}
}

func TestGlobalCounterSaturates(t *testing.T) {
	p := params()
	p.Threshold = 63 // keep promotion at the saturation point
	m := NewManager(p)
	for i := 0; i < 200; i++ {
		m.DeviceAccess(0, 1)
	}
	// 6-bit counter: must have promoted exactly once at 63, no overflow
	// wraparound (which would show as a second promotion after revoke).
	if m.Stats().Promotions != 1 {
		t.Fatalf("Promotions = %d", m.Stats().Promotions)
	}
}

func TestOwnerAccessRefreshesCounter(t *testing.T) {
	m := NewManager(params())
	promote(t, m, 0, 7)
	// Drain the local counter to 1 with inter-host accesses.
	for i := 0; i < 7; i++ {
		m.DeviceAccess(1, 7)
	}
	// Owner keeps using the page: counter refills (saturating at 15).
	for i := 0; i < 40; i++ {
		m.OwnerAccess(0, 7)
	}
	// Now it takes 15 inter-host accesses to revoke, not 1.
	revoked := false
	n := 0
	for !revoked {
		out := m.DeviceAccess(2, 7)
		revoked = out.Revoked
		n++
		if n > 20 {
			t.Fatal("never revoked")
		}
	}
	if n != 15 {
		t.Fatalf("revocation after %d inter-host accesses, want 15 (saturated counter)", n)
	}
}

func TestRevocationReturnsMigratedLines(t *testing.T) {
	m := NewManager(params())
	promote(t, m, 0, 7)
	for l := 0; l < 5; l++ {
		if !m.MigrateLine(0, 7, l) {
			t.Fatalf("MigrateLine(%d) failed", l)
		}
	}
	if m.MigratedLines(0) != 5 {
		t.Fatalf("MigratedLines = %d", m.MigratedLines(0))
	}
	// Threshold init is 8 → 8 inter-host accesses revoke.
	var out Outcome
	for i := 0; i < 8; i++ {
		out = m.DeviceAccess(3, 7)
	}
	if !out.Revoked || out.RevokedLines != 5 || out.RevokedFrom != 0 {
		t.Fatalf("revocation outcome = %+v", out)
	}
	if m.Owner(7) != NoHost || m.MigratedPages(0) != 0 {
		t.Fatal("revocation did not clear state")
	}
	if m.Stats().Revocations != 1 || m.Stats().LinesDemoted != 5 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Page can be promoted again afterwards.
	promote(t, m, 3, 7)
	if m.Owner(7) != 3 {
		t.Fatal("re-promotion failed")
	}
}

func TestLineMigrateDemote(t *testing.T) {
	m := NewManager(params())
	promote(t, m, 2, 11)
	if m.LineMigrated(2, 11, 4) {
		t.Fatal("line migrated before MigrateLine")
	}
	if !m.MigrateLine(2, 11, 4) {
		t.Fatal("MigrateLine failed")
	}
	if m.MigrateLine(2, 11, 4) {
		t.Fatal("double MigrateLine reported newly-set")
	}
	if !m.LineMigrated(2, 11, 4) {
		t.Fatal("LineMigrated false after MigrateLine")
	}
	if !m.DemoteLine(2, 11, 4) {
		t.Fatal("DemoteLine failed")
	}
	if m.DemoteLine(2, 11, 4) {
		t.Fatal("double DemoteLine succeeded")
	}
	// Line ops on pages not migrated to that host are no-ops.
	if m.MigrateLine(0, 11, 1) || m.DemoteLine(0, 11, 1) || m.LineMigrated(0, 11, 1) {
		t.Fatal("line ops leaked to non-owner host")
	}
}

func TestLocalLookupAndCachePricing(t *testing.T) {
	p := params()
	p.LocalCacheEntries = 4
	p.LocalCacheWays = 2
	m := NewManager(p)
	promote(t, m, 0, 3)
	e, hit := m.LocalLookup(0, 3)
	if e == nil {
		t.Fatal("LocalLookup missed a migrated page")
	}
	if hit {
		t.Fatal("first lookup should miss the remap cache")
	}
	if _, hit = m.LocalLookup(0, 3); !hit {
		t.Fatal("second lookup should hit the remap cache")
	}
	// Non-migrated page: nil entry, still cached (negative caching follows
	// from caching the table walk result).
	if e, _ := m.LocalLookup(0, 999); e != nil {
		t.Fatal("LocalLookup invented an entry")
	}
	if m.LocalCache(0).Hits() == 0 {
		t.Fatal("cache accounting missing")
	}
}

func TestStaticMode(t *testing.T) {
	p := params()
	p.Static = true
	m := NewManager(p)
	if !m.Static() {
		t.Fatal("Static() = false")
	}
	// Every page pre-assigned round-robin.
	for page := int64(0); page < p.SharedPages; page++ {
		if m.Owner(page) != int(page%4) {
			t.Fatalf("page %d owner = %d", page, m.Owner(page))
		}
	}
	// 25% of pages per host (Fig 13's HW-static line).
	if m.MigratedPages(0) != int(p.SharedPages/4) {
		t.Fatalf("MigratedPages(0) = %d", m.MigratedPages(0))
	}
	// No vote, no promotion, no revocation — ever.
	for i := 0; i < 1000; i++ {
		out := m.DeviceAccess(i%4, int64(i)%p.SharedPages)
		if out.Promoted || out.Revoked {
			t.Fatal("static mode changed placement")
		}
	}
	if s := m.Stats(); s.Promotions != 0 || s.Revocations != 0 || s.VoteUpdates != 0 {
		t.Fatalf("static mode stats = %+v", s)
	}
}

func TestManagerPanicsOnBadParams(t *testing.T) {
	for name, p := range map[string]Params{
		"zero hosts":    {Hosts: 0, SharedPages: 10, Threshold: 8},
		"threshold 0":   {Hosts: 4, SharedPages: 10, Threshold: 0},
		"threshold big": {Hosts: 4, SharedPages: 10, Threshold: 64},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewManager(p)
		}()
	}
}

// Property-style fuzz: random access streams never corrupt the ledger —
// owner and local-table membership always agree, and per-host migrated
// pages sum to the number of owned pages.
func TestManagerLedgerInvariant(t *testing.T) {
	m := NewManager(params())
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		h := rng.Intn(4)
		page := int64(rng.Intn(64)) // small page pool → heavy contention
		switch rng.Intn(4) {
		case 0, 1:
			m.DeviceAccess(h, page)
		case 2:
			m.OwnerAccess(h, page)
		default:
			m.MigrateLine(h, page, rng.Intn(64))
		}
	}
	owned := 0
	for page := int64(0); page < 64; page++ {
		if o := m.Owner(page); o != NoHost {
			owned++
			if e, _ := m.local[o].Lookup(page); e == nil {
				t.Fatalf("page %d owned by %d but absent from its local table", page, o)
			}
			// No other host may hold an entry.
			for h := 0; h < 4; h++ {
				if h == o {
					continue
				}
				if _, ok := m.local[h].Lookup(page); ok {
					t.Fatalf("page %d has entries at two hosts", page)
				}
			}
		}
	}
	total := 0
	for h := 0; h < 4; h++ {
		total += m.MigratedPages(h)
	}
	if total != owned {
		t.Fatalf("migrated pages %d != owned pages %d", total, owned)
	}
}

func promote(t *testing.T, m *Manager, h int, page int64) {
	t.Helper()
	for i := 0; i < 64; i++ {
		if m.DeviceAccess(h, page).Promoted {
			return
		}
	}
	t.Fatalf("host %d never promoted page %d", h, page)
}
