package core

import "testing"

// Direct tests for RemapCache eviction and aliasing, beyond the smoke
// coverage in tables_test.go: set-index aliasing, exact LRU order within a
// set, and the geometry normalization rules of NewRemapCache.

// Pages that differ by a multiple of the set count index the same set and
// contend for its ways; pages in other sets must be unaffected.
func TestRemapCacheAliasEviction(t *testing.T) {
	c := NewRemapCache(8, 2) // 4 sets × 2 ways
	sets := int64(4)
	p0, p1, p2 := int64(1), 1+sets, 1+2*sets // three aliases of set 1
	other := int64(2)                        // different set

	c.Lookup(p0)
	c.Lookup(p1)
	c.Lookup(other)
	if !c.Lookup(p0) || !c.Lookup(p1) {
		t.Fatal("two aliases do not fit a 2-way set")
	}
	c.Lookup(p2) // evicts LRU alias p0
	if c.Lookup(p0) {
		t.Fatal("LRU alias survived a third alias's fill")
	}
	// p0's refill evicted the then-LRU p1; p2 (MRU before the refill) stays.
	if !c.Lookup(p2) {
		t.Fatal("MRU alias evicted instead of LRU")
	}
	if !c.Lookup(other) {
		t.Fatal("alias churn in set 1 evicted an entry of set 2")
	}
}

func TestRemapCacheLRUWithinSet(t *testing.T) {
	c := NewRemapCache(4, 4) // one set, 4 ways
	for p := int64(0); p < 4; p++ {
		c.Lookup(p)
	}
	c.Lookup(0) // refresh 0: LRU is now 1
	c.Lookup(4) // evicts 1
	if c.Lookup(1) {
		t.Fatal("LRU entry survived")
	}
	// 1's refill evicted 2 (the LRU after 1 was gone).
	for _, p := range []int64{0, 3, 4, 1} {
		if !c.Lookup(p) {
			t.Fatalf("page %d evicted out of LRU order", p)
		}
	}
}

func TestRemapCacheInvalidateFreesWay(t *testing.T) {
	c := NewRemapCache(2, 2) // one set, 2 ways
	c.Lookup(0)
	c.Lookup(1)
	c.Invalidate(0)
	c.Lookup(2) // must take 0's freed slot, not evict 1
	if !c.Lookup(1) {
		t.Fatal("fill after Invalidate evicted a live entry instead of reusing the freed way")
	}
	if !c.Lookup(2) {
		t.Fatal("fill after Invalidate lost the new entry")
	}
	c.Invalidate(12345) // absent page: no-op
}

// Geometry normalization: sets round down to a power of two, ways clamp to
// the entry count, and every shape still hits immediately after a fill.
func TestRemapCacheGeometry(t *testing.T) {
	cases := []struct {
		entries, ways int
		wantEntries   int
	}{
		{12, 2, 8},   // 6 sets → 4 sets × 2 ways
		{8, 3, 6},    // 2 sets × 3 ways
		{1, 4, 1},    // ways clamp to the entry count
		{5, 1, 4},    // 5 sets → 4
		{16, 16, 16}, // fully associative
	}
	for _, tc := range cases {
		c := NewRemapCache(tc.entries, tc.ways)
		if got := c.Entries(); got != tc.wantEntries {
			t.Errorf("NewRemapCache(%d,%d).Entries() = %d, want %d",
				tc.entries, tc.ways, got, tc.wantEntries)
		}
		for p := int64(0); p < 64; p++ {
			c.Lookup(p)
			if !c.Lookup(p) {
				t.Errorf("geometry (%d,%d): page %d missed immediately after fill",
					tc.entries, tc.ways, p)
			}
		}
	}
}

func TestRemapCacheZeroWaysDefaultsToDirect(t *testing.T) {
	c := NewRemapCache(4, 0)
	if c.Entries() != 4 {
		t.Fatalf("entries = %d, want 4 (1-way × 4 sets)", c.Entries())
	}
	c.Lookup(1)
	if !c.Lookup(1) {
		t.Fatal("direct-mapped fill missed")
	}
	c.Lookup(5) // alias of 1 with 4 sets → evicts
	if c.Lookup(1) {
		t.Fatal("direct-mapped alias did not evict")
	}
}
