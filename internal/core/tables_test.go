package core

import (
	"testing"
	"testing/quick"
)

func TestGlobalTableInit(t *testing.T) {
	g := NewGlobalTable(100, 4)
	if g.Pages() != 100 {
		t.Fatalf("Pages = %d", g.Pages())
	}
	for p := int64(0); p < 100; p++ {
		e := g.Entry(p)
		if e.CurHost != NoHost || e.CandHost != NoHost || e.Counter != 0 {
			t.Fatalf("page %d not initialized: %+v", p, e)
		}
	}
	if g.SizeBytes() != 200 {
		t.Fatalf("SizeBytes = %d, want 200 (2B/entry)", g.SizeBytes())
	}
	// Beyond 32 hosts the hardware entry widens to 3 bytes.
	wide := NewGlobalTable(100, 256)
	if wide.SizeBytes() != 300 {
		t.Fatalf("wide SizeBytes = %d, want 300 (3B/entry)", wide.SizeBytes())
	}
}

func TestGlobalEntryMutable(t *testing.T) {
	g := NewGlobalTable(10, 4)
	g.Entry(3).CandHost = 2
	if g.Entry(3).CandHost != 2 {
		t.Fatal("Entry does not return a mutable pointer")
	}
}

// Property: the sharded table behaves exactly like a flat array of entries
// for every slice count the host range produces, and the per-slice
// owned-page counters always agree with a full walk.
func TestGlobalTableShardingProperty(t *testing.T) {
	for _, hosts := range []int{1, 2, 4, 16, 64, 256} {
		for _, pages := range []int64{1, 3, 63, 64, 65, 1000} {
			g := NewGlobalTable(pages, hosts)
			if g.Slices()&(g.Slices()-1) != 0 {
				t.Fatalf("hosts=%d: %d slices not a power of two", hosts, g.Slices())
			}
			// Distinct pages must map to distinct storage.
			seen := map[*GlobalEntry]int64{}
			for p := int64(0); p < pages; p++ {
				e := g.Entry(p)
				if prev, dup := seen[e]; dup {
					t.Fatalf("hosts=%d pages=%d: pages %d and %d alias", hosts, pages, prev, p)
				}
				seen[e] = p
			}
			// Owned counters track SetOwner transitions.
			for p := int64(0); p < pages; p += 2 {
				g.SetOwner(p, int(p)%hosts)
			}
			walked := 0
			for p := int64(0); p < pages; p++ {
				if g.Entry(p).CurHost != NoHost {
					walked++
				}
			}
			if g.OwnedPages() != walked {
				t.Fatalf("hosts=%d pages=%d: OwnedPages %d != walk %d", hosts, pages, g.OwnedPages(), walked)
			}
			perSlice := 0
			for s := 0; s < g.Slices(); s++ {
				perSlice += g.SliceOwned(s)
			}
			if perSlice != walked {
				t.Fatalf("per-slice sum %d != walk %d", perSlice, walked)
			}
			for p := int64(0); p < pages; p += 2 {
				g.SetOwner(p, NoHost)
				g.SetOwner(p, NoHost) // idempotent clear
			}
			if g.OwnedPages() != 0 {
				t.Fatalf("OwnedPages %d after clearing all", g.OwnedPages())
			}
		}
	}
}

func TestLocalTableInsertLookupRemove(t *testing.T) {
	lt := NewLocalTable(10000)
	if _, ok := lt.Lookup(5); ok {
		t.Fatal("hit in empty table")
	}
	e := lt.Insert(5, 8)
	if e.Counter != 8 {
		t.Fatalf("counter = %d", e.Counter)
	}
	e2 := lt.Insert(9999, 8)
	if e2.PFN == e.PFN {
		t.Fatal("PFNs not unique")
	}
	got, ok := lt.Lookup(5)
	if !ok || got.PFN != e.PFN {
		t.Fatalf("Lookup(5) = %+v, %v", got, ok)
	}
	if lt.Count() != 2 {
		t.Fatalf("Count = %d", lt.Count())
	}
	removed, ok := lt.Remove(5)
	if !ok || removed.PFN != e.PFN {
		t.Fatalf("Remove = %+v, %v", removed, ok)
	}
	if _, ok := lt.Lookup(5); ok {
		t.Fatal("entry survived Remove")
	}
	if _, ok := lt.Remove(5); ok {
		t.Fatal("double Remove succeeded")
	}
	if _, ok := lt.Remove(7777); ok {
		t.Fatal("Remove of never-inserted page succeeded")
	}
	if lt.Count() != 1 {
		t.Fatalf("Count = %d after remove", lt.Count())
	}
}

func TestLocalTableDuplicateInsertPanics(t *testing.T) {
	lt := NewLocalTable(100)
	lt.Insert(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	lt.Insert(1, 8)
}

func TestLocalTableRadixSpansLeaves(t *testing.T) {
	lt := NewLocalTable(5 * leafEntries)
	// Insert one page per leaf plus boundary pages.
	pages := []int64{0, leafEntries - 1, leafEntries, 2*leafEntries + 7, 5*leafEntries - 1}
	for _, p := range pages {
		lt.Insert(p, 1)
	}
	for _, p := range pages {
		if _, ok := lt.Lookup(p); !ok {
			t.Fatalf("page %d missing", p)
		}
	}
	if lt.Count() != len(pages) {
		t.Fatalf("Count = %d", lt.Count())
	}
}

func TestLocalTableBitmapAndMigratedLines(t *testing.T) {
	lt := NewLocalTable(100)
	e := lt.Insert(3, 8)
	e.Bitmap = 0b1011
	e2 := lt.Insert(7, 8)
	e2.Bitmap = 1 << 63
	if got := lt.MigratedLines(); got != 4 {
		t.Fatalf("MigratedLines = %d, want 4", got)
	}
}

func TestLocalTableSizeBytes(t *testing.T) {
	lt := NewLocalTable(2048)
	base := lt.SizeBytes()
	if base != 2*8 { // 2 root entries × 8B
		t.Fatalf("empty SizeBytes = %d", base)
	}
	lt.Insert(0, 1)
	if lt.SizeBytes() != base+4 {
		t.Fatalf("SizeBytes after insert = %d, want %d", lt.SizeBytes(), base+4)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0b1011: 3, ^uint64(0): 64}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%b) = %d, want %d", x, got, want)
		}
	}
}

// Property: insert/remove round-trips preserve count and membership.
func TestLocalTableLedgerProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		lt := NewLocalTable(4096)
		live := map[int64]bool{}
		for _, op := range ops {
			p := int64(op) % 4096
			if live[p] {
				if _, ok := lt.Remove(p); !ok {
					return false
				}
				delete(live, p)
			} else {
				lt.Insert(p, 1)
				live[p] = true
			}
			if lt.Count() != len(live) {
				return false
			}
		}
		for p := range live {
			if _, ok := lt.Lookup(p); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemapCacheBasics(t *testing.T) {
	c := NewRemapCache(8, 2)
	if c.Entries() != 8 {
		t.Fatalf("Entries = %d", c.Entries())
	}
	if c.Lookup(5) {
		t.Fatal("hit in empty cache")
	}
	if !c.Lookup(5) {
		t.Fatal("miss after fill")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
	c.Invalidate(5)
	if c.Lookup(5) {
		t.Fatal("hit after Invalidate")
	}
}

func TestRemapCacheEvicts(t *testing.T) {
	c := NewRemapCache(4, 2) // 2 sets × 2 ways
	// Pages 0,2,4 map to set 0; third fills evicts LRU (page 0).
	c.Lookup(0)
	c.Lookup(2)
	c.Lookup(2) // make 2 MRU
	c.Lookup(4) // evicts 0 (LRU)
	if !c.Lookup(2) {
		t.Fatal("page 2 should have survived")
	}
	if c.Lookup(0) {
		t.Fatal("page 0 should have been evicted")
	}
}

func TestRemapCacheInfinite(t *testing.T) {
	c := NewRemapCache(-1, 8)
	if c.Entries() != -1 {
		t.Fatalf("Entries = %d, want -1", c.Entries())
	}
	for p := int64(0); p < 100000; p++ {
		c.Lookup(p)
	}
	for p := int64(0); p < 100000; p++ {
		if !c.Lookup(p) {
			t.Fatalf("infinite cache missed page %d", p)
		}
	}
	c.Invalidate(50)
	if c.Lookup(50) {
		t.Fatal("hit after Invalidate on infinite cache")
	}
}

func TestRemapCacheDisabled(t *testing.T) {
	c := NewRemapCache(0, 8)
	if c.Entries() != 0 {
		t.Fatalf("Entries = %d, want 0", c.Entries())
	}
	c.Lookup(1)
	if c.Lookup(1) {
		t.Fatal("disabled cache hit")
	}
	c.Invalidate(1) // must not panic
	if c.HitRate() != 0 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

func TestRemapCacheOddSizes(t *testing.T) {
	// Non-power-of-two entry counts round down to a power-of-two set count
	// but must still function.
	c := NewRemapCache(100, 8)
	if c.Entries() <= 0 || c.Entries() > 100 {
		t.Fatalf("Entries = %d", c.Entries())
	}
	for p := int64(0); p < 1000; p++ {
		c.Lookup(p)
	}
	// Capacity smaller than ways degrades to fewer ways.
	c2 := NewRemapCache(2, 8)
	if c2.Entries() != 2 {
		t.Fatalf("tiny cache Entries = %d", c2.Entries())
	}
}
