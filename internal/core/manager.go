package core

import "fmt"

// ManagerStats aggregates PIPM policy events.
type ManagerStats struct {
	Promotions    uint64 // pages partially migrated
	Revocations   uint64 // partial migrations revoked
	LinesMigrated uint64 // incremental line migrations into local DRAM
	LinesDemoted  uint64 // lines migrated back to CXL (inter-host access)
	VoteUpdates   uint64 // global-counter updates
}

// Outcome describes what a device-side access did to PIPM state; the
// machine prices the pieces (remap cache hit vs in-memory table walk,
// revocation bulk transfer).
type Outcome struct {
	GCacheHit    bool // global remapping cache hit (miss ⇒ CXL DRAM access)
	Owner        int  // page's current host after the access, or NoHost
	Promoted     bool // this access triggered partial migration to the requester
	Revoked      bool // this access triggered revocation
	RevokedLines int  // migrated lines that must be transferred back on revoke
	RevokedFrom  int  // host the page was revoked from
	// RevokedBitmap is the page's migrated-line bitmap at revocation: which
	// lines' freshest copies lived in the old owner's local DRAM and travel
	// back with the bulk transfer.
	RevokedBitmap uint64
}

// Manager ties the global/local remapping tables, their caches and the
// majority-vote policy together. One Manager serves the whole machine; host
// indices select the per-host local structures.
type Manager struct {
	threshold uint8
	hosts     int
	static    bool

	global *GlobalTable
	gcache *RemapCache
	local  []*LocalTable
	lcache []*RemapCache

	// hints holds the §6 software interface's per-page modes (lazily
	// allocated: nil means every page is HintAuto).
	hints []Hint

	stats ManagerStats
}

// Params configures a Manager.
type Params struct {
	Hosts       int
	SharedPages int64
	Threshold   int // majority-vote promotion threshold (1..63)
	// Remap cache capacities in entries: <0 infinite, 0 disabled.
	GlobalCacheEntries int
	GlobalCacheWays    int
	LocalCacheEntries  int
	LocalCacheWays     int
	// Static pre-assigns every page round-robin across hosts and disables
	// the vote policy — the HW-static (Intel Flat Mode-like) baseline.
	Static bool
}

// NewManager builds the PIPM state for a machine.
func NewManager(p Params) *Manager {
	if p.Hosts < 1 || p.Hosts > 256 {
		panic(fmt.Sprintf("core: %d hosts out of range", p.Hosts))
	}
	if p.Threshold < 1 || p.Threshold > GlobalCounterMax {
		panic(fmt.Sprintf("core: threshold %d out of range", p.Threshold))
	}
	m := &Manager{
		threshold: uint8(p.Threshold),
		hosts:     p.Hosts,
		static:    p.Static,
		global:    NewGlobalTable(p.SharedPages, p.Hosts),
		gcache:    NewRemapCache(p.GlobalCacheEntries, p.GlobalCacheWays),
	}
	for h := 0; h < p.Hosts; h++ {
		m.local = append(m.local, NewLocalTable(p.SharedPages))
		m.lcache = append(m.lcache, NewRemapCache(p.LocalCacheEntries, p.LocalCacheWays))
	}
	if p.Static {
		for page := int64(0); page < p.SharedPages; page++ {
			h := int(page % int64(p.Hosts))
			m.global.SetOwner(page, h)
			m.local[h].Insert(page, LocalCounterMax)
		}
	}
	return m
}

// Hosts returns the host count.
func (m *Manager) Hosts() int { return m.hosts }

// Static reports whether the manager runs the static-mapping baseline.
func (m *Manager) Static() bool { return m.static }

// LocalLookup consults host h's local remapping structures for page. It
// returns the local entry (nil when the page is not migrated to h) and
// whether the local remapping cache hit — a miss means the hardware walked
// the in-memory table, which the machine prices as a local DRAM access.
func (m *Manager) LocalLookup(h int, page int64) (entry *LocalEntry, cacheHit bool) {
	cacheHit = m.lcache[h].Lookup(page)
	entry, _ = m.local[h].Lookup(page)
	return entry, cacheHit
}

// OwnerAccess records a local access by owner h to its partially migrated
// page (saturating increment of the revocation counter). Call it when an
// LLC-missing access at h finds a local remapping entry.
func (m *Manager) OwnerAccess(h int, page int64) {
	if e, ok := m.local[h].Lookup(page); ok && e.Counter < LocalCounterMax {
		e.Counter++
	}
}

// DeviceAccess records that host h's request for page reached the CXL
// device, runs the majority-vote policy, and reports the page's placement.
//
// For unmigrated pages this is the vote of §4.2: the 6-bit counter tracks
// the candidate host's lead; reaching the threshold promotes. For pages
// migrated elsewhere, the requester's access is an inter-host access: it
// decrements the owner's local counter and revokes at zero. The static
// variant only reports ownership.
func (m *Manager) DeviceAccess(h int, page int64) Outcome {
	out := Outcome{Owner: NoHost, RevokedFrom: NoHost}
	out.GCacheHit = m.gcache.Lookup(page)
	e := m.global.Entry(page)

	if e.CurHost != NoHost {
		owner := int(e.CurHost)
		out.Owner = owner
		if m.static || owner == h || m.hintOf(page) == HintPinned {
			return out
		}
		// Inter-host access to a migrated page: revocation pressure.
		le, ok := m.local[owner].Lookup(page)
		if !ok {
			panic(fmt.Sprintf("core: page %d owned by host %d has no local entry", page, owner))
		}
		if le.Counter > 0 {
			le.Counter--
		}
		if le.Counter == 0 {
			removed, _ := m.local[owner].Remove(page)
			m.lcache[owner].Invalidate(page)
			m.global.SetOwner(page, NoHost)
			e.CandHost = NoHost
			e.Counter = 0
			out.Owner = NoHost
			out.Revoked = true
			out.RevokedLines = popcount(removed.Bitmap)
			out.RevokedBitmap = removed.Bitmap
			out.RevokedFrom = owner
			m.stats.Revocations++
			m.stats.LinesDemoted += uint64(out.RevokedLines)
		}
		return out
	}

	if m.static || m.hintOf(page) == HintNoMigrate {
		return out
	}

	// Majority vote on an unmigrated page.
	m.stats.VoteUpdates++
	switch {
	case e.Counter == 0:
		e.CandHost = int16(h)
		e.Counter = 1
	case int(e.CandHost) == h:
		if e.Counter < GlobalCounterMax {
			e.Counter++
		}
	default:
		e.Counter--
	}
	if int(e.CandHost) == h && e.Counter >= m.threshold {
		// Promote: create the local entry; decisions apply immediately
		// (§5.1.4 — no kernel overhead, no whole-page transfer).
		m.global.SetOwner(page, h)
		m.local[h].Insert(page, uint8(m.threshold))
		out.Owner = h
		out.Promoted = true
		m.stats.Promotions++
	}
	return out
}

// MigrateLine sets the migrated bit for line l (0..63) of page at owner h —
// the incremental migration of case ① (Loc-WB of an M/E block of a page
// migrated here). It reports whether the bit was newly set.
func (m *Manager) MigrateLine(h int, page int64, l int) bool {
	e, ok := m.local[h].Lookup(page)
	if !ok {
		return false
	}
	bit := uint64(1) << uint(l)
	if e.Bitmap&bit != 0 {
		return false
	}
	e.Bitmap |= bit
	m.stats.LinesMigrated++
	return true
}

// DemoteLine clears the migrated bit for line l of page at owner h — the
// migrate-back of cases ②⑤⑥ (inter-host access to a migrated line). It
// reports whether the bit was set.
func (m *Manager) DemoteLine(h int, page int64, l int) bool {
	e, ok := m.local[h].Lookup(page)
	if !ok {
		return false
	}
	bit := uint64(1) << uint(l)
	if e.Bitmap&bit == 0 {
		return false
	}
	e.Bitmap &^= bit
	m.stats.LinesDemoted++
	return true
}

// LineMigrated reports whether line l of page is migrated at host h.
func (m *Manager) LineMigrated(h int, page int64, l int) bool {
	e, ok := m.local[h].Lookup(page)
	return ok && e.Bitmap&(uint64(1)<<uint(l)) != 0
}

// Owner returns the page's current host, or NoHost.
func (m *Manager) Owner(page int64) int {
	return int(m.global.Entry(page).CurHost)
}

// MigratedPages returns the number of pages partially migrated to host h.
func (m *Manager) MigratedPages(h int) int { return m.local[h].Count() }

// OwnedPages returns the number of pages migrated to any host, from the
// global table's O(1) per-slice occupancy counters (the auditor cross-checks
// this against a full walk).
func (m *Manager) OwnedPages() int { return m.global.OwnedPages() }

// GlobalTableRef exposes the sharded global table for observability (slice
// counts, per-slice occupancy, size accounting).
func (m *Manager) GlobalTableRef() *GlobalTable { return m.global }

// MigratedLines returns the number of lines currently migrated to host h.
func (m *Manager) MigratedLines(h int) int { return m.local[h].MigratedLines() }

// GlobalEntryAt returns a value copy of page's global remapping record
// without running the vote policy or touching the remapping caches
// (observation-only, for the invariant auditor).
func (m *Manager) GlobalEntryAt(page int64) GlobalEntry {
	return *m.global.Entry(page)
}

// PeekLocal returns a value copy of host h's local entry for page without
// touching the local remapping cache (observation-only).
func (m *Manager) PeekLocal(h int, page int64) (LocalEntry, bool) {
	e, ok := m.local[h].Lookup(page)
	if !ok {
		return LocalEntry{}, false
	}
	return *e, true
}

// ForEachLocal invokes fn for every page partially migrated to host h, in
// ascending page order, passing value copies (observation-only).
func (m *Manager) ForEachLocal(h int, fn func(page int64, e LocalEntry)) {
	m.local[h].ForEach(fn)
}

// GlobalCache and LocalCache expose the remap caches for stats/latency.
func (m *Manager) GlobalCache() *RemapCache     { return m.gcache }
func (m *Manager) LocalCache(h int) *RemapCache { return m.lcache[h] }

// Stats returns accumulated policy counters.
func (m *Manager) Stats() ManagerStats { return m.stats }
