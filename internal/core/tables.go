// Package core implements the PIPM hardware proper (§4 of the paper): the
// global remapping table on the CXL memory node, the per-host local
// remapping tables (two-level radix), the on-die remapping caches in front
// of both, the Boyer–Moore-style majority-vote migration policy, and the
// per-line migrated-state bitmaps that realize the in-memory I'/ME bits.
package core

import (
	"fmt"
	"math"
)

// Sentinel host value meaning "none".
const NoHost = -1

// Counter widths from §4.2/§4.4: the global vote counter is 6 bits, the
// local (revocation) counter 4 bits.
const (
	GlobalCounterMax = 63
	LocalCounterMax  = 15
)

// GlobalEntry is one global remapping table record (2 bytes in hardware:
// 5-bit current host, 5-bit candidate host, 6-bit counter).
type GlobalEntry struct {
	CurHost  int8  // host the page is partially migrated to, or NoHost
	CandHost int8  // majority-vote candidate, or NoHost
	Counter  uint8 // candidate's lead over all other hosts
}

// GlobalTable is the in-memory global remapping table: one entry per
// CXL-DSM page, resident in CXL memory (the remapping cache in front of it
// is modelled by RemapCache).
type GlobalTable struct {
	entries []GlobalEntry
}

// NewGlobalTable allocates entries for pages CXL-DSM pages, all unmigrated.
func NewGlobalTable(pages int64) *GlobalTable {
	t := &GlobalTable{entries: make([]GlobalEntry, pages)}
	for i := range t.entries {
		t.entries[i] = GlobalEntry{CurHost: NoHost, CandHost: NoHost}
	}
	return t
}

// Pages returns the number of pages covered.
func (t *GlobalTable) Pages() int64 { return int64(len(t.entries)) }

// Entry returns a pointer to page's record. Page indices are dense and
// bounds-checked by the slice access.
func (t *GlobalTable) Entry(page int64) *GlobalEntry { return &t.entries[page] }

// SizeBytes returns the table's in-memory footprint at 2 B/entry (§4.4).
func (t *GlobalTable) SizeBytes() int64 { return 2 * int64(len(t.entries)) }

// LocalEntry is one per-host local remapping table record (4 bytes in
// hardware: 28-bit local PFN + 4-bit counter). The simulator additionally
// keeps the page's migrated-line bitmap here; in hardware those bits live
// with the data (ECC spare bits) in both local and CXL memory, but they are
// only meaningful for pages that have a local entry, so this placement is
// behaviourally identical and saves a parallel structure.
type LocalEntry struct {
	PFN     uint32 // page frame in this host's local DRAM
	Counter uint8  // revocation counter
	Bitmap  uint64 // bit l set ⇔ line l of the page is migrated (I'/ME side)
}

const leafEntries = 1024 // 1K entries per leaf, as in §4.4

type localLeaf struct {
	valid   [leafEntries]bool
	entries [leafEntries]LocalEntry
}

// LocalTable is one host's local remapping table, a two-level radix table:
// a root indexing fixed 1K-entry leaves, allocated on demand. Only pages
// partially migrated to this host have entries.
type LocalTable struct {
	root    []*localLeaf
	count   int // live entries
	nextPFN uint32
}

// NewLocalTable covers pages CXL-DSM pages.
func NewLocalTable(pages int64) *LocalTable {
	roots := (pages + leafEntries - 1) / leafEntries
	return &LocalTable{root: make([]*localLeaf, roots)}
}

// Lookup returns the entry for page and the number of memory accesses a
// hardware walk performs (1 when the leaf exists — the 32 MB root is pinned
// and hits in it are free per §4.4 — and 1 for a miss discovered at the
// root, since absence still requires reading the root entry; we charge 1
// either way and let depth express leaf reads).
func (t *LocalTable) Lookup(page int64) (*LocalEntry, bool) {
	leaf := t.root[page/leafEntries]
	if leaf == nil {
		return nil, false
	}
	idx := page % leafEntries
	if !leaf.valid[idx] {
		return nil, false
	}
	return &leaf.entries[idx], true
}

// Insert creates an entry for page with a freshly allocated local PFN and
// the given initial counter. Inserting an existing page panics: the policy
// must never double-promote.
func (t *LocalTable) Insert(page int64, counter uint8) *LocalEntry {
	li := page / leafEntries
	leaf := t.root[li]
	if leaf == nil {
		leaf = &localLeaf{}
		t.root[li] = leaf
	}
	idx := page % leafEntries
	if leaf.valid[idx] {
		panic(fmt.Sprintf("core: duplicate local remap insert for page %d", page))
	}
	if t.nextPFN == math.MaxUint32 {
		panic("core: local PFN space exhausted")
	}
	pfn := t.nextPFN
	t.nextPFN++
	leaf.valid[idx] = true
	leaf.entries[idx] = LocalEntry{PFN: pfn, Counter: counter}
	t.count++
	return &leaf.entries[idx]
}

// Remove drops page's entry, returning the entry it held.
func (t *LocalTable) Remove(page int64) (LocalEntry, bool) {
	leaf := t.root[page/leafEntries]
	if leaf == nil {
		return LocalEntry{}, false
	}
	idx := page % leafEntries
	if !leaf.valid[idx] {
		return LocalEntry{}, false
	}
	e := leaf.entries[idx]
	leaf.valid[idx] = false
	leaf.entries[idx] = LocalEntry{}
	t.count--
	return e, true
}

// Count returns the number of live entries (pages partially migrated here).
func (t *LocalTable) Count() int { return t.count }

// SizeBytes returns the current in-memory footprint: the fixed root plus
// 4 B per entry, matching §4.4's 32MB + 4B/4KB × RSS formula (we charge the
// root proportionally to its configured coverage rather than a fixed 32 MB,
// since simulated pools are scaled down).
func (t *LocalTable) SizeBytes() int64 {
	return int64(len(t.root))*8 + 4*int64(t.count)
}

// ForEach invokes fn for every live entry in ascending page order, passing a
// value copy (observation-only, for the invariant auditor).
func (t *LocalTable) ForEach(fn func(page int64, e LocalEntry)) {
	for li, leaf := range t.root {
		if leaf == nil {
			continue
		}
		base := int64(li) * leafEntries
		for i := range leaf.entries {
			if leaf.valid[i] {
				fn(base+int64(i), leaf.entries[i])
			}
		}
	}
}

// MigratedLines returns the total number of migrated lines across entries.
func (t *LocalTable) MigratedLines() int {
	n := 0
	for _, leaf := range t.root {
		if leaf == nil {
			continue
		}
		for i := range leaf.entries {
			if leaf.valid[i] {
				n += popcount(leaf.entries[i].Bitmap)
			}
		}
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
