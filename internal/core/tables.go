// Package core implements the PIPM hardware proper (§4 of the paper): the
// global remapping table on the CXL memory node, the per-host local
// remapping tables (two-level radix), the on-die remapping caches in front
// of both, the Boyer–Moore-style majority-vote migration policy, and the
// per-line migrated-state bitmaps that realize the in-memory I'/ME bits.
package core

import (
	"fmt"
	"math"
)

// Sentinel host value meaning "none".
const NoHost = -1

// Counter widths from §4.2/§4.4: the global vote counter is 6 bits, the
// local (revocation) counter 4 bits.
const (
	GlobalCounterMax = 63
	LocalCounterMax  = 15
)

// GlobalEntry is one global remapping table record. In hardware this is 2
// bytes up to 32 hosts (5-bit current host, 5-bit candidate host, 6-bit
// counter) and 3 bytes beyond (8b+8b+6b); the simulator always keeps the
// wide form and reports the per-config packed size via EntryBytes.
type GlobalEntry struct {
	CurHost  int16 // host the page is partially migrated to, or NoHost
	CandHost int16 // majority-vote candidate, or NoHost
	Counter  uint8 // candidate's lead over all other hosts
}

// GlobalTable is the in-memory global remapping table: one entry per
// CXL-DSM page, resident in CXL memory (the remapping cache in front of it
// is modelled by RemapCache). It is split into power-of-two address-hashed
// slices sized from the host count, so device-side table bandwidth scales
// with the cluster; each slice keeps an O(1) owned-page occupancy counter
// the auditor cross-checks against a full walk. Page p lives in slice
// p & (slices-1) at index p >> log2(slices) — pure storage reorganisation,
// behaviourally identical to the flat table.
type GlobalTable struct {
	slices     [][]GlobalEntry
	owned      []int // pages with CurHost != NoHost, per slice
	mask       int64
	shift      uint
	pages      int64
	entryBytes int64
}

// globalTableSlices picks the slice count for a host count: one slice per
// host, rounded up to a power of two, capped at 64.
func globalTableSlices(hosts int) int {
	n := 1
	for n < hosts && n < 64 {
		n <<= 1
	}
	return n
}

// NewGlobalTable allocates entries for pages CXL-DSM pages, all unmigrated,
// sliced for a cluster of hosts.
func NewGlobalTable(pages int64, hosts int) *GlobalTable {
	n := globalTableSlices(hosts)
	t := &GlobalTable{
		slices:     make([][]GlobalEntry, n),
		owned:      make([]int, n),
		mask:       int64(n - 1),
		pages:      pages,
		entryBytes: 2,
	}
	if hosts > 32 {
		t.entryBytes = 3
	}
	for n > 1 {
		n >>= 1
		t.shift++
	}
	for s := range t.slices {
		// Slice s holds pages {p < pages : p & mask == s}.
		cnt := int64(0)
		if int64(s) < pages {
			cnt = (pages-int64(s)-1)>>t.shift + 1
		}
		sl := make([]GlobalEntry, cnt)
		for i := range sl {
			sl[i] = GlobalEntry{CurHost: NoHost, CandHost: NoHost}
		}
		t.slices[s] = sl
	}
	return t
}

// Pages returns the number of pages covered.
func (t *GlobalTable) Pages() int64 { return t.pages }

// Slices returns the slice count.
func (t *GlobalTable) Slices() int { return len(t.slices) }

// Entry returns a pointer to page's record. Page indices are dense and
// bounds-checked by the slice access. Callers must not change CurHost
// through the pointer — use SetOwner, which maintains the per-slice
// occupancy counters.
func (t *GlobalTable) Entry(page int64) *GlobalEntry {
	return &t.slices[page&t.mask][page>>t.shift]
}

// SetOwner moves page's CurHost to h (NoHost to clear), maintaining the
// slice's owned-page counter.
func (t *GlobalTable) SetOwner(page int64, h int) {
	s := page & t.mask
	e := &t.slices[s][page>>t.shift]
	if (e.CurHost != NoHost) != (h != NoHost) {
		if h != NoHost {
			t.owned[s]++
		} else {
			t.owned[s]--
		}
	}
	e.CurHost = int16(h)
}

// OwnedPages returns the number of pages currently migrated to any host,
// summed O(slices) from the per-slice counters.
func (t *GlobalTable) OwnedPages() int {
	n := 0
	for _, o := range t.owned {
		n += o
	}
	return n
}

// SliceOwned returns slice s's owned-page counter.
func (t *GlobalTable) SliceOwned(s int) int { return t.owned[s] }

// EntryBytes returns the hardware bytes per entry at this table's width.
func (t *GlobalTable) EntryBytes() int64 { return t.entryBytes }

// SizeBytes returns the table's in-memory footprint (§4.4).
func (t *GlobalTable) SizeBytes() int64 { return t.entryBytes * t.pages }

// LocalEntry is one per-host local remapping table record (4 bytes in
// hardware: 28-bit local PFN + 4-bit counter). The simulator additionally
// keeps the page's migrated-line bitmap here; in hardware those bits live
// with the data (ECC spare bits) in both local and CXL memory, but they are
// only meaningful for pages that have a local entry, so this placement is
// behaviourally identical and saves a parallel structure.
type LocalEntry struct {
	PFN     uint32 // page frame in this host's local DRAM
	Counter uint8  // revocation counter
	Bitmap  uint64 // bit l set ⇔ line l of the page is migrated (I'/ME side)
}

const leafEntries = 1024 // 1K entries per leaf, as in §4.4

type localLeaf struct {
	valid   [leafEntries]bool
	entries [leafEntries]LocalEntry
}

// LocalTable is one host's local remapping table, a two-level radix table:
// a root indexing fixed 1K-entry leaves, allocated on demand. Only pages
// partially migrated to this host have entries.
type LocalTable struct {
	root    []*localLeaf
	count   int // live entries
	nextPFN uint32
}

// NewLocalTable covers pages CXL-DSM pages.
func NewLocalTable(pages int64) *LocalTable {
	roots := (pages + leafEntries - 1) / leafEntries
	return &LocalTable{root: make([]*localLeaf, roots)}
}

// Lookup returns the entry for page and the number of memory accesses a
// hardware walk performs (1 when the leaf exists — the 32 MB root is pinned
// and hits in it are free per §4.4 — and 1 for a miss discovered at the
// root, since absence still requires reading the root entry; we charge 1
// either way and let depth express leaf reads).
func (t *LocalTable) Lookup(page int64) (*LocalEntry, bool) {
	leaf := t.root[page/leafEntries]
	if leaf == nil {
		return nil, false
	}
	idx := page % leafEntries
	if !leaf.valid[idx] {
		return nil, false
	}
	return &leaf.entries[idx], true
}

// Insert creates an entry for page with a freshly allocated local PFN and
// the given initial counter. Inserting an existing page panics: the policy
// must never double-promote.
func (t *LocalTable) Insert(page int64, counter uint8) *LocalEntry {
	li := page / leafEntries
	leaf := t.root[li]
	if leaf == nil {
		leaf = &localLeaf{}
		t.root[li] = leaf
	}
	idx := page % leafEntries
	if leaf.valid[idx] {
		panic(fmt.Sprintf("core: duplicate local remap insert for page %d", page))
	}
	if t.nextPFN == math.MaxUint32 {
		panic("core: local PFN space exhausted")
	}
	pfn := t.nextPFN
	t.nextPFN++
	leaf.valid[idx] = true
	leaf.entries[idx] = LocalEntry{PFN: pfn, Counter: counter}
	t.count++
	return &leaf.entries[idx]
}

// Remove drops page's entry, returning the entry it held.
func (t *LocalTable) Remove(page int64) (LocalEntry, bool) {
	leaf := t.root[page/leafEntries]
	if leaf == nil {
		return LocalEntry{}, false
	}
	idx := page % leafEntries
	if !leaf.valid[idx] {
		return LocalEntry{}, false
	}
	e := leaf.entries[idx]
	leaf.valid[idx] = false
	leaf.entries[idx] = LocalEntry{}
	t.count--
	return e, true
}

// Count returns the number of live entries (pages partially migrated here).
func (t *LocalTable) Count() int { return t.count }

// SizeBytes returns the current in-memory footprint: the fixed root plus
// 4 B per entry, matching §4.4's 32MB + 4B/4KB × RSS formula (we charge the
// root proportionally to its configured coverage rather than a fixed 32 MB,
// since simulated pools are scaled down).
func (t *LocalTable) SizeBytes() int64 {
	return int64(len(t.root))*8 + 4*int64(t.count)
}

// ForEach invokes fn for every live entry in ascending page order, passing a
// value copy (observation-only, for the invariant auditor).
func (t *LocalTable) ForEach(fn func(page int64, e LocalEntry)) {
	for li, leaf := range t.root {
		if leaf == nil {
			continue
		}
		base := int64(li) * leafEntries
		for i := range leaf.entries {
			if leaf.valid[i] {
				fn(base+int64(i), leaf.entries[i])
			}
		}
	}
}

// MigratedLines returns the total number of migrated lines across entries.
func (t *LocalTable) MigratedLines() int {
	n := 0
	for _, leaf := range t.root {
		if leaf == nil {
			continue
		}
		for i := range leaf.entries {
			if leaf.valid[i] {
				n += popcount(leaf.entries[i].Bitmap)
			}
		}
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
