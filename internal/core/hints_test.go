package core

import "testing"

func TestHintStrings(t *testing.T) {
	if HintAuto.String() != "auto" || HintNoMigrate.String() != "no-migrate" ||
		HintPinned.String() != "pinned" || Hint(9).String() == "" {
		t.Fatal("Hint.String mismatch")
	}
}

func TestNoMigrateSuppressesPromotion(t *testing.T) {
	m := NewManager(params())
	if _, _, err := m.SetNoMigrate(7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if out := m.DeviceAccess(0, 7); out.Promoted {
			t.Fatal("no-migrate page promoted")
		}
	}
	if m.Owner(7) != NoHost {
		t.Fatal("no-migrate page has an owner")
	}
	// Other pages unaffected.
	promote(t, m, 0, 8)
}

func TestNoMigrateRevokesExisting(t *testing.T) {
	m := NewManager(params())
	promote(t, m, 1, 5)
	m.MigrateLine(1, 5, 0)
	m.MigrateLine(1, 5, 1)
	lines, from, err := m.SetNoMigrate(5)
	if err != nil || lines != 2 || from != 1 {
		t.Fatalf("SetNoMigrate = %d, %d, %v; want 2 lines from host 1", lines, from, err)
	}
	if m.Owner(5) != NoHost || m.MigratedPages(1) != 0 {
		t.Fatal("revocation incomplete")
	}
	if m.Hint(5) != HintNoMigrate {
		t.Fatal("hint not recorded")
	}
}

func TestPinMigratesImmediately(t *testing.T) {
	m := NewManager(params())
	if _, _, err := m.PinTo(3, 2); err != nil {
		t.Fatal(err)
	}
	if m.Owner(3) != 2 || m.MigratedPages(2) != 1 {
		t.Fatalf("pin did not migrate: owner=%d", m.Owner(3))
	}
	// Inter-host hammering must not revoke a pinned page.
	for i := 0; i < 500; i++ {
		if out := m.DeviceAccess(0, 3); out.Revoked {
			t.Fatal("pinned page revoked")
		}
	}
	if m.Owner(3) != 2 {
		t.Fatal("pinned page lost its owner")
	}
}

func TestPinMovesExistingMigration(t *testing.T) {
	m := NewManager(params())
	promote(t, m, 0, 9)
	m.MigrateLine(0, 9, 4)
	lines, from, err := m.PinTo(9, 3)
	if err != nil || lines != 1 || from != 0 {
		t.Fatalf("PinTo = %d, %d, %v", lines, from, err)
	}
	if m.Owner(9) != 3 || m.MigratedPages(0) != 0 || m.MigratedPages(3) != 1 {
		t.Fatal("pin did not move ownership")
	}
	// Re-pinning to the same host is a no-op.
	if lines, _, _ := m.PinTo(9, 3); lines != 0 {
		t.Fatal("idempotent pin moved lines")
	}
}

func TestClearHintRestoresPolicy(t *testing.T) {
	m := NewManager(params())
	if _, _, err := m.PinTo(3, 1); err != nil {
		t.Fatal(err)
	}
	m.ClearHint(3)
	// Now revocable again: 15 inter-host accesses drain the counter.
	revoked := false
	for i := 0; i < 30 && !revoked; i++ {
		revoked = m.DeviceAccess(0, 3).Revoked
	}
	if !revoked {
		t.Fatal("unpinned page never revoked")
	}
	// ClearHint on an untouched manager is a no-op.
	m2 := NewManager(params())
	m2.ClearHint(1)
	if m2.Hint(1) != HintAuto {
		t.Fatal("default hint not auto")
	}
}

func TestHintsRejectedByStaticAndBadHost(t *testing.T) {
	p := params()
	p.Static = true
	m := NewManager(p)
	if _, _, err := m.SetNoMigrate(1); err == nil {
		t.Fatal("static manager accepted SetNoMigrate")
	}
	if _, _, err := m.PinTo(1, 0); err == nil {
		t.Fatal("static manager accepted PinTo")
	}
	m2 := NewManager(params())
	if _, _, err := m2.PinTo(1, 99); err == nil {
		t.Fatal("PinTo accepted an out-of-range host")
	}
}
