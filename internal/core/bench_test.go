package core

import "testing"

func BenchmarkDeviceAccessVote(b *testing.B) {
	m := NewManager(Params{Hosts: 4, SharedPages: 1 << 16, Threshold: 8,
		GlobalCacheEntries: 8192, GlobalCacheWays: 8,
		LocalCacheEntries: 1 << 18, LocalCacheWays: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DeviceAccess(i&3, int64(i)&0xFFFF)
	}
}

func BenchmarkLocalLookup(b *testing.B) {
	m := NewManager(Params{Hosts: 4, SharedPages: 1 << 16, Threshold: 8,
		GlobalCacheEntries: 8192, GlobalCacheWays: 8,
		LocalCacheEntries: 1 << 18, LocalCacheWays: 8})
	for i := 0; i < 64; i++ {
		m.DeviceAccess(0, 7) // promote page 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LocalLookup(0, 7)
	}
}

func BenchmarkRemapCacheLookup(b *testing.B) {
	c := NewRemapCache(8192, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(int64(i) & 8191)
	}
}

func BenchmarkLocalTableInsertRemove(b *testing.B) {
	t := NewLocalTable(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := int64(i) & 0xFFFFF
		t.Insert(p, 8)
		t.Remove(p)
	}
}
