package core

// RemapCache models the on-die caches in front of the remapping tables: the
// 16 KB global remapping cache on the CXL device and the 1 MB local
// remapping cache on each host's root complex (§4.4). It caches page
// indices only — entry *contents* always come from the backing table, so the
// cache cannot go stale; what it buys is skipping the in-memory table access
// on a hit, which is exactly what the latency model charges for.
type RemapCache struct {
	ways     int
	sets     int
	infinite bool
	disabled bool
	tags     []int64 // sets*ways; -1 = empty
	lru      []uint64
	tick     uint64
	inf      map[int64]struct{} // used when infinite

	hits, misses uint64
}

// NewRemapCache builds a cache holding the given number of entries with the
// given associativity. entries < 0 models an infinite cache (the sensitivity
// study's ideal); entries == 0 disables the cache (every lookup misses).
func NewRemapCache(entries, ways int) *RemapCache {
	switch {
	case entries < 0:
		return &RemapCache{infinite: true, inf: make(map[int64]struct{})}
	case entries == 0:
		return &RemapCache{disabled: true}
	}
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		ways = entries
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &RemapCache{
		ways: ways,
		sets: sets,
		tags: make([]int64, sets*ways),
		lru:  make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Entries returns the cache's capacity in entries (-1 when infinite).
func (c *RemapCache) Entries() int {
	switch {
	case c.infinite:
		return -1
	case c.disabled:
		return 0
	}
	return c.sets * c.ways
}

// Lookup probes for page, inserting it on a miss (remap caches are filled
// by the very table walk the miss triggers). It reports whether the probe
// hit, which the caller prices.
func (c *RemapCache) Lookup(page int64) bool {
	switch {
	case c.disabled:
		c.misses++
		return false
	case c.infinite:
		if _, ok := c.inf[page]; ok {
			c.hits++
			return true
		}
		c.misses++
		c.inf[page] = struct{}{}
		return false
	}
	set := int(page) & (c.sets - 1)
	base := set * c.ways
	c.tick++
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == page {
			c.lru[base+i] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	// Fill: LRU victim within the set.
	victim := base
	for i := 1; i < c.ways; i++ {
		if c.tags[base+i] == -1 {
			victim = base + i
			break
		}
		if c.lru[base+i] < c.lru[victim] {
			victim = base + i
		}
	}
	if c.tags[base] == -1 {
		victim = base
	}
	c.tags[victim] = page
	c.lru[victim] = c.tick
	return false
}

// ForEachCached invokes fn for every cached page index without touching LRU
// order or hit/miss counters (observation-only, for the invariant auditor).
// Iteration order is unspecified but deterministic for the set-associative
// geometry; infinite caches iterate their map, so callers needing a stable
// order must sort.
func (c *RemapCache) ForEachCached(fn func(page int64)) {
	switch {
	case c.disabled:
		return
	case c.infinite:
		for page := range c.inf {
			fn(page)
		}
		return
	}
	for _, tag := range c.tags {
		if tag != -1 {
			fn(tag)
		}
	}
}

// Invalidate drops page from the cache (entry removed from the table).
func (c *RemapCache) Invalidate(page int64) {
	switch {
	case c.disabled:
		return
	case c.infinite:
		delete(c.inf, page)
		return
	}
	set := int(page) & (c.sets - 1)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		if c.tags[base+i] == page {
			c.tags[base+i] = -1
			c.lru[base+i] = 0
			return
		}
	}
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c *RemapCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Hits and Misses return raw counters.
func (c *RemapCache) Hits() uint64   { return c.hits }
func (c *RemapCache) Misses() uint64 { return c.misses }
