package core

import "fmt"

// Software hints (§6 of the paper): "applications can ... explicitly enable
// or disable incremental migration for specific pages based on program
// semantics". The manager supports three per-page modes:
//
//   - HintAuto: the default majority-vote policy.
//   - HintNoMigrate: the page never partially migrates (useful for data
//     with known all-host access, e.g. a lock table).
//   - HintPinned: the page is immediately partially migrated to a chosen
//     host and never revoked (useful for data with known affinity).
//
// A hardware implementation costs two extra bits per global remapping
// entry; the paper's 2-byte entry has all 16 bits in use, so this is an
// extension beyond the published design (see DESIGN.md §6).
type Hint uint8

const (
	HintAuto Hint = iota
	HintNoMigrate
	HintPinned
)

func (h Hint) String() string {
	switch h {
	case HintAuto:
		return "auto"
	case HintNoMigrate:
		return "no-migrate"
	case HintPinned:
		return "pinned"
	default:
		return fmt.Sprintf("Hint(%d)", uint8(h))
	}
}

// hintOf returns the page's hint (lazily allocated).
func (m *Manager) hintOf(page int64) Hint {
	if m.hints == nil {
		return HintAuto
	}
	return m.hints[page]
}

// Hint returns the page's current software hint.
func (m *Manager) Hint(page int64) Hint { return m.hintOf(page) }

// SetNoMigrate marks page as never-migrate. If the page is currently
// partially migrated, the migration is revoked; the returned values price
// the revocation transfer (lines to move back and the host they leave).
// Static-mapping managers reject hints: HW-static has no policy to steer.
func (m *Manager) SetNoMigrate(page int64) (revokedLines, from int, err error) {
	if m.static {
		return 0, NoHost, fmt.Errorf("core: static mapping does not accept hints")
	}
	m.ensureHints()
	m.hints[page] = HintNoMigrate
	e := m.global.Entry(page)
	e.CandHost = NoHost
	e.Counter = 0
	if e.CurHost == NoHost {
		return 0, NoHost, nil
	}
	owner := int(e.CurHost)
	removed, _ := m.local[owner].Remove(page)
	m.lcache[owner].Invalidate(page)
	m.global.SetOwner(page, NoHost)
	m.stats.Revocations++
	n := popcount(removed.Bitmap)
	m.stats.LinesDemoted += uint64(n)
	return n, owner, nil
}

// PinTo pins page to host: it is partially migrated there immediately (no
// vote) and inter-host accesses no longer revoke it. If the page is
// currently migrated elsewhere, that migration is revoked first; the
// returned values price the transfer.
func (m *Manager) PinTo(page int64, host int) (revokedLines, from int, err error) {
	if m.static {
		return 0, NoHost, fmt.Errorf("core: static mapping does not accept hints")
	}
	if host < 0 || host >= m.hosts {
		return 0, NoHost, fmt.Errorf("core: host %d out of range", host)
	}
	m.ensureHints()
	e := m.global.Entry(page)
	if int(e.CurHost) == host {
		m.hints[page] = HintPinned
		return 0, NoHost, nil
	}
	revokedLines, from = 0, NoHost
	if e.CurHost != NoHost {
		owner := int(e.CurHost)
		removed, _ := m.local[owner].Remove(page)
		m.lcache[owner].Invalidate(page)
		m.stats.Revocations++
		revokedLines = popcount(removed.Bitmap)
		m.stats.LinesDemoted += uint64(revokedLines)
		from = owner
	}
	m.hints[page] = HintPinned
	m.global.SetOwner(page, host)
	e.CandHost = int16(host)
	e.Counter = 0
	m.local[host].Insert(page, LocalCounterMax)
	m.stats.Promotions++
	return revokedLines, from, nil
}

// ClearHint restores the default policy for page. A pinned page stays
// migrated but becomes revocable again; a no-migrate page becomes eligible
// for promotion.
func (m *Manager) ClearHint(page int64) {
	if m.hints == nil {
		return
	}
	m.hints[page] = HintAuto
}

func (m *Manager) ensureHints() {
	if m.hints == nil {
		m.hints = make([]Hint, m.global.Pages())
	}
}
