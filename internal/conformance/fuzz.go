package conformance

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/trace"
)

// TraceKind selects an adversarial interleaving family. Each family is
// built to stress a different protocol corner: the fuzzer rotates through
// all of them.
type TraceKind int

const (
	// FalseSharing hammers a handful of lines from every core with mixed
	// reads and writes: maximal invalidation, upgrade, and forward traffic.
	FalseSharing TraceKind = iota
	// EvictionStorm streams a working set far larger than the LLC: constant
	// evictions, writebacks, directory churn, and (under PIPM) incremental
	// migrations racing demand fetches.
	EvictionStorm
	// MigrationRace shifts a hot page set between hosts phase by phase,
	// driving the vote to promote, then revoke, while the losing hosts keep
	// poking the same pages mid-flight.
	MigrationRace
	// SingleWriter assigns each line one writing core (reads from anywhere):
	// conflict-free at the data level, so final images must be identical
	// across schemes — the observational-equivalence family.
	SingleWriter

	numTraceKinds
)

func (k TraceKind) String() string {
	switch k {
	case FalseSharing:
		return "false-sharing"
	case EvictionStorm:
		return "eviction-storm"
	case MigrationRace:
		return "migration-race"
	case SingleWriter:
		return "single-writer"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// Generate builds a deterministic per-core trace set (indexed
// host*CoresPerHost+core) of the given family for the given machine shape.
// The same (seed, kind, cfg, records) always yields the same traces.
func Generate(seed int64, kind TraceKind, cfg config.Config, records int) [][]trace.Record {
	rng := rand.New(rand.NewSource(seed))
	amap := config.NewAddressMap(&cfg)
	cores := cfg.Hosts * cfg.CoresPerHost
	pages := cfg.SharedPages()
	totalLines := pages * config.LinesPerPage

	lineAddr := func(gl int64) config.Addr {
		return amap.SharedAddr(config.Addr(gl) * config.LineBytes)
	}
	rec := func(gl int64, write bool) trace.Record {
		return trace.Record{
			Gap:   uint32(rng.Intn(8) + 1),
			Addr:  lineAddr(gl),
			Write: write,
			Dep:   rng.Intn(16) == 0,
		}
	}

	out := make([][]trace.Record, cores)
	switch kind {
	case FalseSharing:
		// A few lines inside two pages, shared by everyone.
		hot := make([]int64, 4)
		for i := range hot {
			hot[i] = int64(rng.Intn(2))*config.LinesPerPage + int64(rng.Intn(config.LinesPerPage))
		}
		for c := 0; c < cores; c++ {
			for i := 0; i < records; i++ {
				out[c] = append(out[c], rec(hot[rng.Intn(len(hot))], rng.Intn(2) == 0))
			}
		}

	case EvictionStorm:
		for c := 0; c < cores; c++ {
			for i := 0; i < records; i++ {
				out[c] = append(out[c], rec(rng.Int63n(totalLines), rng.Intn(10) < 3))
			}
		}

	case MigrationRace:
		hotPages := int64(4)
		if hotPages > pages {
			hotPages = pages
		}
		phases := 4
		per := records / phases
		for c := 0; c < cores; c++ {
			host := c / cfg.CoresPerHost
			for p := 0; p < phases; p++ {
				hotHost := p % cfg.Hosts
				for i := 0; i < per; i++ {
					gl := rng.Int63n(hotPages)*config.LinesPerPage + rng.Int63n(config.LinesPerPage)
					switch {
					case host == hotHost:
						out[c] = append(out[c], rec(gl, rng.Intn(10) < 6))
					case rng.Intn(8) == 0 || pages == hotPages:
						// A losing host pokes the contested pages: vote
						// decrement or revocation pressure.
						out[c] = append(out[c], rec(gl, rng.Intn(4) == 0))
					default:
						scratch := hotPages + int64(host)%(pages-hotPages)
						gl = scratch*config.LinesPerPage + rng.Int63n(config.LinesPerPage)
						out[c] = append(out[c], rec(gl, rng.Intn(2) == 0))
					}
				}
			}
		}

	case SingleWriter:
		span := totalLines
		if span > 8*config.LinesPerPage {
			span = 8 * config.LinesPerPage
		}
		writerOf := func(gl int64) int {
			return int((uint64(gl)*2654435761 + uint64(seed)) % uint64(cores))
		}
		for c := 0; c < cores; c++ {
			for i := 0; i < records; i++ {
				gl := rng.Int63n(span)
				write := writerOf(gl) == c && rng.Intn(2) == 0
				out[c] = append(out[c], rec(gl, write))
			}
		}

	default:
		panic(fmt.Sprintf("conformance: unknown trace kind %d", kind))
	}
	return out
}

// FuzzOptions configures a fuzz campaign.
type FuzzOptions struct {
	Seed    int64
	Sets    int // trace sets to generate and run
	Records int // records per core (0 → 1200)
	// Schemes to cross-check per set. Nil → Native and PIPM on every set
	// plus one rotating scheme (HW-static and the four kernel policies), so
	// a campaign covers every tracked scheme.
	Schemes []migration.Kind
	Shrink  bool                 // minimize failing trace sets (slower)
	Config  *config.Config       // machine shape; nil → rotating small shapes
	Logf    func(string, ...any) // optional progress/diagnostic sink
}

// Failure is one fuzz finding: the inputs to reproduce it and the
// violations observed. Equivalence failures (final images differing
// between schemes on a single-writer trace) carry Scheme = the second
// scheme of the pair.
type Failure struct {
	Seed       int64
	Kind       TraceKind
	Scheme     migration.Kind
	Violations []string
	Records    int // total records, after shrinking if enabled
}

// rotating extra schemes: with Native and PIPM always on, this covers all
// tracked schemes across any 5 consecutive sets.
var extraSchemes = []migration.Kind{
	migration.HWStatic, migration.Nomad, migration.Memtis, migration.HeMem, migration.OSSkew,
}

// fuzzShapes are the machine shapes a campaign rotates through: the caches
// are tiny so evictions and conflicts happen within a short trace.
func fuzzShapes() []config.Config {
	base := config.Default()
	base.L1D = config.CacheConfig{SizeBytes: 4 << 10, Ways: 4, Latency: sim.Nanosecond}
	base.LLC = config.CacheConfig{SizeBytes: 16 << 10, Ways: 8, Latency: 6 * sim.Nanosecond}
	base.SharedBytes = 64 << 10
	base.Kernel.Interval = 50 * sim.Microsecond

	var shapes []config.Config
	for _, hc := range [][2]int{{2, 1}, {2, 2}, {3, 1}} {
		c := base
		c.Hosts, c.CoresPerHost = hc[0], hc[1]
		shapes = append(shapes, c)
	}
	return shapes
}

// Fuzz runs a seeded campaign: Sets trace sets, each generated from a
// distinct derived seed and a rotating adversarial family, executed under
// the selected schemes with the golden model and coherence audit attached.
// Single-writer sets additionally assert final-image equivalence across
// the schemes run. It returns the number of machine runs performed and
// every (possibly shrunk) failure.
func Fuzz(opts FuzzOptions) (runs int, failures []Failure, err error) {
	records := opts.Records
	if records == 0 {
		records = 1200
	}
	shapes := fuzzShapes()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	for i := 0; i < opts.Sets; i++ {
		seed := opts.Seed + int64(i)
		kind := TraceKind(i % int(numTraceKinds))
		cfg := shapes[i%len(shapes)]
		if opts.Config != nil {
			cfg = *opts.Config
		}
		schemes := opts.Schemes
		if schemes == nil {
			schemes = []migration.Kind{migration.Native, migration.PIPM, extraSchemes[i%len(extraSchemes)]}
		}
		traces := Generate(seed, kind, cfg, records)

		images := make(map[migration.Kind]map[config.Addr]uint64)
		setFailed := false
		for _, scheme := range schemes {
			res, rerr := RunScheme(cfg, scheme, traces)
			if rerr != nil {
				return runs, failures, fmt.Errorf("set %d (%s, %s): %w", i, kind, scheme, rerr)
			}
			runs++
			images[scheme] = res.Image
			if !res.Failed() {
				continue
			}
			setFailed = true
			f := Failure{Seed: seed, Kind: kind, Scheme: scheme, Violations: res.Violations,
				Records: countRecords(traces)}
			if opts.Shrink {
				scheme := scheme
				shrunk := Shrink(traces, func(cand [][]trace.Record) bool {
					r, e := RunScheme(cfg, scheme, cand)
					return e == nil && r.Failed()
				})
				r, _ := RunScheme(cfg, scheme, shrunk)
				f.Violations = r.Violations
				f.Records = countRecords(shrunk)
			}
			logf("set %d (%s, %s): %d violation(s), first: %s",
				i, kind, scheme, len(f.Violations), first(f.Violations))
			failures = append(failures, f)
		}

		// Observational equivalence: single-writer traces must converge to
		// the same final image under every scheme.
		if kind == SingleWriter && !setFailed {
			ref := schemes[0]
			for _, scheme := range schemes[1:] {
				if diffs := DiffImages(images[ref], images[scheme]); len(diffs) > 0 {
					logf("set %d (%s): %s vs %s final images differ: %s",
						i, kind, ref, scheme, diffs[0])
					failures = append(failures, Failure{
						Seed: seed, Kind: kind, Scheme: scheme,
						Violations: diffs, Records: countRecords(traces),
					})
				}
			}
		}
	}
	return runs, failures, nil
}

func countRecords(traces [][]trace.Record) int {
	n := 0
	for _, t := range traces {
		n += len(t)
	}
	return n
}

func first(s []string) string {
	if len(s) == 0 {
		return "<none>"
	}
	return s[0]
}
