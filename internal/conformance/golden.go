// Package conformance is the simulator's differential-testing subsystem:
// a sequentially consistent golden memory model cross-checked against the
// full machine's value stream, a randomized adversarial trace fuzzer with
// failure shrinking, and glue to the parallel protocol checker in
// internal/check. It is the correctness backstop for every scheme the
// machine can run (all except the Local-only upper bound, which has no
// single-image semantics).
package conformance

import (
	"fmt"
	"sort"

	"pipm/internal/config"
	"pipm/internal/machine"
)

// maxViolations caps collected evidence per run; one divergence usually
// cascades, and the first few are the informative ones.
const maxViolations = 16

// Golden is the reference memory model: a flat, sequentially consistent
// store replayed in the machine's serialization order. The machine applies
// all protocol state at issue time on a single-threaded event engine, so
// the order its value layer observes accesses in IS a serialization of the
// run; the golden model checks that this serialization is legal — every
// read returns the latest write to its line — and that the machine's final
// memory image matches the replay.
type Golden struct {
	shadow     map[config.Addr]uint64
	touched    map[config.Addr]struct{}
	violations []string
}

// NewGolden returns an empty golden model (all memory implicitly zero).
func NewGolden() *Golden {
	return &Golden{
		shadow:  make(map[config.Addr]uint64),
		touched: make(map[config.Addr]struct{}),
	}
}

// Observe consumes one machine observation: writes update the shadow
// store, reads are checked against it. Pass this to
// Machine.EnableValueTracking.
func (g *Golden) Observe(o machine.Observation) {
	g.touched[o.Line] = struct{}{}
	if o.Write {
		g.shadow[o.Line] = o.Value
		return
	}
	if want := g.shadow[o.Line]; o.Value != want && len(g.violations) < maxViolations {
		g.violations = append(g.violations, fmt.Sprintf(
			"seq %d: host %d core %d read line %#x: machine served %#x, golden model %#x",
			o.Seq, o.Host, o.Core, uint64(o.Line), o.Value, want))
	}
}

// Violations returns the divergences observed so far (nil when clean).
func (g *Golden) Violations() []string { return g.violations }

// CheckFinalImage compares the machine's end-of-run memory image against
// the shadow store. Both must cover exactly the touched lines and agree on
// every value — a mismatch is a lost writeback or a misplaced migration.
func (g *Golden) CheckFinalImage(img map[config.Addr]uint64) []string {
	var errs []string
	lines := make([]config.Addr, 0, len(g.touched))
	for l := range g.touched {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		got, ok := img[l]
		if !ok {
			errs = append(errs, fmt.Sprintf("final image: line %#x missing", uint64(l)))
		} else if want := g.shadow[l]; got != want {
			errs = append(errs, fmt.Sprintf(
				"final image: line %#x holds %#x, golden model %#x", uint64(l), got, want))
		}
		if len(errs) >= maxViolations {
			return errs
		}
	}
	if len(img) > len(g.touched) {
		errs = append(errs, fmt.Sprintf(
			"final image: %d lines, golden model touched %d", len(img), len(g.touched)))
	}
	return errs
}
