package conformance

import "pipm/internal/trace"

// shrinkBudget bounds oracle invocations per Shrink call; each invocation
// is a full machine run, so the budget is the real cost control.
const shrinkBudget = 600

// Shrink minimizes a failing trace set with a ddmin-style greedy pass:
// for each core it tries removing contiguous chunks — the whole trace,
// then halves, quarters, down to single records — keeping any candidate
// for which fails still reports true, and repeats until a full sweep
// removes nothing or the budget runs out. The machine is deterministic,
// so fails is a pure function of the candidate and the result reproduces.
func Shrink(traces [][]trace.Record, fails func([][]trace.Record) bool) [][]trace.Record {
	cur := traces
	budget := shrinkBudget
	for again := true; again && budget > 0; {
		again = false
		for ci := range cur {
			for chunk := len(cur[ci]); chunk >= 1; chunk /= 2 {
				for start := 0; start < len(cur[ci]); {
					if budget <= 0 {
						return cur
					}
					cand := removeChunk(cur, ci, start, chunk)
					budget--
					if fails(cand) {
						cur = cand
						again = true
						// The next chunk has shifted into place at start.
					} else {
						start += chunk
					}
				}
			}
		}
	}
	return cur
}

// removeChunk copies traces with cur[ci][start:start+n] dropped.
func removeChunk(traces [][]trace.Record, ci, start, n int) [][]trace.Record {
	out := make([][]trace.Record, len(traces))
	copy(out, traces)
	src := traces[ci]
	end := start + n
	if end > len(src) {
		end = len(src)
	}
	t := make([]trace.Record, 0, len(src)-(end-start))
	t = append(t, src[:start]...)
	t = append(t, src[end:]...)
	out[ci] = t
	return out
}
