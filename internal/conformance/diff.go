package conformance

import (
	"fmt"
	"sort"

	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/trace"
)

// RunResult is one machine run under the conformance harness.
type RunResult struct {
	Scheme     migration.Kind
	Events     uint64                 // tracked accesses
	Violations []string               // golden + final-image + audit findings
	Image      map[config.Addr]uint64 // end-of-run memory image
}

// Failed reports whether the run diverged from the golden model or broke
// a coherence invariant.
func (r RunResult) Failed() bool { return len(r.Violations) > 0 }

// RunScheme executes the per-core traces (indexed host*CoresPerHost+core)
// on a fresh machine under scheme, with the golden model and the coherence
// auditor attached, and reports everything that went wrong.
func RunScheme(cfg config.Config, scheme migration.Kind, traces [][]trace.Record) (RunResult, error) {
	if want := cfg.Hosts * cfg.CoresPerHost; len(traces) != want {
		return RunResult{}, fmt.Errorf("conformance: %d traces for %d cores", len(traces), want)
	}
	m, err := machine.New(cfg, scheme)
	if err != nil {
		return RunResult{}, err
	}
	g := NewGolden()
	if err := m.EnableValueTracking(g.Observe); err != nil {
		return RunResult{}, err
	}
	m.EnableAudit()
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, trace.NewSliceReader(traces[h*cfg.CoresPerHost+c]))
		}
	}
	if err := m.Run(); err != nil {
		return RunResult{}, err
	}
	res := RunResult{Scheme: scheme, Events: m.Observations(), Image: m.FinalImage()}
	res.Violations = append(res.Violations, g.Violations()...)
	res.Violations = append(res.Violations, g.CheckFinalImage(res.Image)...)
	for _, v := range m.AuditViolations() {
		res.Violations = append(res.Violations, "audit: "+v)
	}
	return res, nil
}

// DiffImages reports where two final memory images disagree. Valid as an
// equivalence check only for traces where each line has a single writing
// core: write tokens then depend only on program order, so any two schemes
// must converge to the same image.
func DiffImages(a, b map[config.Addr]uint64) []string {
	var lines []config.Addr
	for l := range a {
		lines = append(lines, l)
	}
	for l := range b {
		if _, ok := a[l]; !ok {
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	var diffs []string
	for _, l := range lines {
		if av, bv := a[l], b[l]; av != bv {
			diffs = append(diffs, fmt.Sprintf("line %#x: %#x vs %#x", uint64(l), av, bv))
			if len(diffs) >= maxViolations {
				break
			}
		}
	}
	return diffs
}
