package conformance

import (
	"reflect"
	"testing"

	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/trace"
)

func TestGoldenDetectsStaleRead(t *testing.T) {
	g := NewGolden()
	g.Observe(machine.Observation{Seq: 1, Host: 0, Core: 0, Line: 7, Write: true, Value: 0x1_00000001})
	g.Observe(machine.Observation{Seq: 2, Host: 1, Core: 0, Line: 7, Write: false, Value: 0x1_00000001})
	if len(g.Violations()) != 0 {
		t.Fatalf("clean history flagged: %v", g.Violations())
	}
	g.Observe(machine.Observation{Seq: 3, Host: 1, Core: 0, Line: 7, Write: false, Value: 0})
	if len(g.Violations()) != 1 {
		t.Fatalf("stale read not flagged: %v", g.Violations())
	}
}

func TestGoldenChecksFinalImage(t *testing.T) {
	g := NewGolden()
	g.Observe(machine.Observation{Seq: 1, Line: 3, Write: true, Value: 42})
	g.Observe(machine.Observation{Seq: 2, Line: 4, Write: false, Value: 0})
	if errs := g.CheckFinalImage(map[config.Addr]uint64{3: 42, 4: 0}); len(errs) != 0 {
		t.Fatalf("matching image flagged: %v", errs)
	}
	if errs := g.CheckFinalImage(map[config.Addr]uint64{3: 41, 4: 0}); len(errs) != 1 {
		t.Fatalf("lost write not flagged: %v", errs)
	}
	if errs := g.CheckFinalImage(map[config.Addr]uint64{3: 42}); len(errs) != 1 {
		t.Fatalf("missing line not flagged: %v", errs)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := fuzzShapes()[0]
	for k := TraceKind(0); k < numTraceKinds; k++ {
		a := Generate(99, k, cfg, 200)
		b := Generate(99, k, cfg, 200)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", k)
		}
		c := Generate(100, k, cfg, 200)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical traces", k)
		}
		if len(a) != cfg.Hosts*cfg.CoresPerHost {
			t.Errorf("%s: %d traces for %d cores", k, len(a), cfg.Hosts*cfg.CoresPerHost)
		}
	}
}

func TestShrinkMinimizesAgainstSyntheticOracle(t *testing.T) {
	// The "bug" triggers iff the set still contains a write by core 1 to
	// line 5 — the minimal failing set is exactly one record.
	poison := func(ts [][]trace.Record) bool {
		for _, r := range ts[1] {
			if r.Write && r.Addr.Line() == 5 {
				return true
			}
		}
		return false
	}
	traces := make([][]trace.Record, 2)
	for c := range traces {
		for i := 0; i < 300; i++ {
			traces[c] = append(traces[c], trace.Record{Addr: config.Addr(i%20) << config.LineShift, Write: i%3 == 0})
		}
	}
	traces[1][137] = trace.Record{Addr: 5 << config.LineShift, Write: true}
	if !poison(traces) {
		t.Fatal("oracle does not fail on the full set")
	}
	shrunk := Shrink(traces, poison)
	if !poison(shrunk) {
		t.Fatal("shrunk set no longer fails")
	}
	if n := countRecords(shrunk); n != 1 {
		t.Fatalf("shrunk to %d records, want 1", n)
	}
}

func TestRunSchemeRejectsWrongTraceCount(t *testing.T) {
	cfg := fuzzShapes()[0]
	if _, err := RunScheme(cfg, migration.Native, make([][]trace.Record, 1)); err == nil {
		t.Fatal("wrong trace count accepted")
	}
}

func TestDiffImages(t *testing.T) {
	a := map[config.Addr]uint64{1: 10, 2: 20}
	b := map[config.Addr]uint64{1: 10, 2: 21, 3: 30}
	diffs := DiffImages(a, b)
	if len(diffs) != 2 {
		t.Fatalf("want 2 diffs (line 2 value, line 3 extra), got %v", diffs)
	}
	if len(DiffImages(a, a)) != 0 {
		t.Fatal("identical images reported different")
	}
}

// TestFuzzAdversarialTraces is the acceptance-criteria campaign: at least
// 100 seeded trace sets, every access cross-checked against the golden
// model and the coherence audit, single-writer sets additionally checked
// for cross-scheme final-image equivalence. Short mode runs the fixed
// 104-set campaign; long mode quadruples it.
func TestFuzzAdversarialTraces(t *testing.T) {
	sets := 104 // multiple of the kind rotation, ≥ 100
	if !testing.Short() {
		sets *= 4
	}
	runs, failures, err := Fuzz(FuzzOptions{Seed: 20260806, Sets: sets, Shrink: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if runs < sets {
		t.Fatalf("campaign performed %d machine runs for %d sets", runs, sets)
	}
	for _, f := range failures {
		t.Errorf("seed %d %s under %s (%d records): %v",
			f.Seed, f.Kind, f.Scheme, f.Records, f.Violations)
	}
	t.Logf("fuzz: %d trace sets, %d machine runs, %d failures", sets, runs, len(failures))
}

// TestFuzzEquivalenceDedicated pins the observational-equivalence claim
// with a denser single-writer campaign across Native and PIPM only.
func TestFuzzEquivalenceDedicated(t *testing.T) {
	shape := fuzzShapes()[0]
	for seed := int64(1); seed <= 12; seed++ {
		traces := Generate(seed, SingleWriter, shape, 2000)
		var imgs []map[config.Addr]uint64
		for _, scheme := range []migration.Kind{migration.Native, migration.PIPM} {
			res, err := RunScheme(shape, scheme, traces)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("seed %d %s: %v", seed, scheme, res.Violations)
			}
			imgs = append(imgs, res.Image)
		}
		if diffs := DiffImages(imgs[0], imgs[1]); len(diffs) > 0 {
			t.Fatalf("seed %d: native vs pipm images differ: %v", seed, diffs)
		}
	}
}
