package machine

import (
	"fmt"

	pipmcore "pipm/internal/core"
)

// Software page hints (§6 of the paper), available on hardware schemes
// (PIPM only — HW-static has no policy to steer). Hints may be applied
// before Run or at any point during a run (e.g. from an event scheduled by
// the caller); data movement they trigger is priced like a policy-driven
// revocation.

func (m *Machine) hintManager() (*pipmcore.Manager, error) {
	if !m.hintsOK || m.mgr == nil {
		return nil, fmt.Errorf("machine: page hints require the PIPM scheme (have %v)", m.scheme)
	}
	return m.mgr, nil
}

func (m *Machine) checkPage(page int64) error {
	if page < 0 || page >= m.cfg.SharedPages() {
		return fmt.Errorf("machine: page %d outside the shared heap (%d pages)", page, m.cfg.SharedPages())
	}
	return nil
}

// PinPage partially migrates page to host immediately and exempts it from
// revocation until ClearPageHint.
func (m *Machine) PinPage(page int64, host int) error {
	mgr, err := m.hintManager()
	if err != nil {
		return err
	}
	if err := m.checkPage(page); err != nil {
		return err
	}
	lines, from, err := mgr.PinTo(page, host)
	if err != nil {
		return err
	}
	m.priceHintRevocation(page, lines, from)
	return nil
}

// SetPageNoMigrate excludes page from partial migration; an existing
// migration is revoked (and its transfer priced).
func (m *Machine) SetPageNoMigrate(page int64) error {
	mgr, err := m.hintManager()
	if err != nil {
		return err
	}
	if err := m.checkPage(page); err != nil {
		return err
	}
	lines, from, err := mgr.SetNoMigrate(page)
	if err != nil {
		return err
	}
	m.priceHintRevocation(page, lines, from)
	return nil
}

// ClearPageHint restores the default majority-vote policy for page.
func (m *Machine) ClearPageHint(page int64) error {
	mgr, err := m.hintManager()
	if err != nil {
		return err
	}
	if err := m.checkPage(page); err != nil {
		return err
	}
	mgr.ClearHint(page)
	return nil
}

// priceHintRevocation moves a hint-revoked page's migrated lines back to
// CXL memory and drops the old owner's cached copies, exactly like a
// policy-driven revocation.
func (m *Machine) priceHintRevocation(page int64, lines, from int) {
	if from == pipmcore.NoHost {
		return
	}
	m.applyRevocation(m.eng.Now(), page, pipmcore.Outcome{
		Revoked:      true,
		RevokedLines: lines,
		RevokedFrom:  from,
	})
}
