package machine

// Value tracking: a differential-testing layer over the timing simulator.
//
// The machine proper models *timing* — values never flow through it. This
// layer shadows every data movement the protocol performs (cache fills,
// writebacks, forwards, incremental migrations, revocations, kernel page
// moves) with an actual 64-bit value per cache line, so that a golden
// memory model (internal/conformance) can cross-check every load and the
// final memory image. A coherence bug that the latency model would hide —
// a lost writeback, a stale forward, a remap alias — becomes a concrete
// wrong value.
//
// Writes install deterministic tokens: (global core ID + 1) << 32 | the
// core's write count. Tokens depend only on program order, never on
// timing, so two runs of the same trace under different schemes produce
// comparable value streams, and single-writer traces produce identical
// final images across schemes.
//
// State updates apply at issue time on a single-threaded event engine, so
// the order in which this layer observes accesses IS the machine's
// serialization order; the golden model replays exactly that order.

import (
	"fmt"

	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/migration"
)

// Observation is one tracked memory access, in machine serialization
// order. For reads Value is the value served; for writes it is the token
// installed.
type Observation struct {
	Seq   uint64
	Host  int
	Core  int
	Line  config.Addr // line index (byte address >> config.LineShift)
	Write bool
	Value uint64
}

// valSource says which backing store an access was served from.
type valSource int

const (
	srcCache valSource = iota // a host's LLC/L1 hierarchy
	srcLocal                  // a host's local DRAM
	srcCXL                    // the pooled CXL DRAM
)

type valTracker struct {
	m   *Machine
	obs func(Observation)
	seq uint64

	mem     map[config.Addr]uint64   // CXL pool backing copy
	local   []map[config.Addr]uint64 // per-host local-DRAM backing copy
	cached  []map[config.Addr]uint64 // per-host LLC-level value
	writes  []uint64                 // per-global-core write counters
	touched map[config.Addr]struct{}
}

// EnableValueTracking turns the value layer on. Must be called before Run.
// The observer (optional) receives every tracked access in serialization
// order. Local-only is rejected: it gives each host a private view of
// shared data by construction, so no single-image semantics exist.
func (m *Machine) EnableValueTracking(observer func(Observation)) error {
	if m.ran {
		return fmt.Errorf("machine: EnableValueTracking after Run")
	}
	if m.family == migration.FamilyLocalOnly {
		return fmt.Errorf("machine: value tracking is undefined for the Local-only upper bound")
	}
	v := &valTracker{
		m:       m,
		obs:     observer,
		mem:     make(map[config.Addr]uint64),
		writes:  make([]uint64, m.cfg.TotalCores()),
		touched: make(map[config.Addr]struct{}),
	}
	for range m.hosts {
		v.local = append(v.local, make(map[config.Addr]uint64))
		v.cached = append(v.cached, make(map[config.Addr]uint64))
	}
	m.vals = v
	return nil
}

// Observations returns how many accesses were tracked.
func (m *Machine) Observations() uint64 {
	if m.vals == nil {
		return 0
	}
	return m.vals.seq
}

// FinalImage resolves, for every line ever touched, where its freshest
// copy lives at end of run and returns the line → value map. Untouched
// memory is implicitly zero.
func (m *Machine) FinalImage() map[config.Addr]uint64 {
	v := m.vals
	if v == nil {
		return nil
	}
	img := make(map[config.Addr]uint64, len(v.touched))
	for line := range v.touched {
		img[line] = v.resolve(line)
	}
	return img
}

func (v *valTracker) resolve(line config.Addr) uint64 {
	m := v.m
	// A dirty cached copy is freshest; SWMR guarantees at most one host has
	// one (the audit layer checks that independently).
	for _, hs := range m.hosts {
		if st, ok := hs.llc.Peek(line); ok && st.Dirty() {
			return v.cached[hs.id][line]
		}
	}
	addr := line << config.LineShift
	region, ph := m.amap.Region(addr)
	if region == config.RegionPrivate {
		return v.local[ph][line]
	}
	page := m.amap.SharedPageIndex(addr)
	if m.mgr != nil {
		if g := m.mgr.Owner(page); g != pipmcore.NoHost && m.mgr.LineMigrated(g, page, addr.LineInPage()) {
			return v.local[g][line] // I': migrated to g's local DRAM
		}
		return v.mem[line]
	}
	if m.pt != nil {
		if g := m.pt.Owner(page); g != migration.ToCXL {
			return v.local[g][line]
		}
	}
	return v.mem[line]
}

func (v *valTracker) token(c *coreState) uint64 {
	gc := c.host.id*v.m.cfg.CoresPerHost + c.id
	v.writes[gc]++
	return uint64(gc+1)<<32 | v.writes[gc]
}

func (v *valTracker) emit(c *coreState, line config.Addr, write bool, val uint64) {
	v.touched[line] = struct{}{}
	v.seq++
	if v.obs != nil {
		v.obs(Observation{Seq: v.seq, Host: c.host.id, Core: c.id, Line: line, Write: write, Value: val})
	}
}

// serve records an access served from src (srcHost selects the host for
// srcCache/srcLocal). The requester's cache hierarchy ends up holding the
// value either way, mirroring the machine's fill-at-issue-time rule.
func (v *valTracker) serve(c *coreState, line config.Addr, write bool, src valSource, srcHost int) {
	var val uint64
	switch src {
	case srcCache:
		val = v.cached[srcHost][line]
	case srcLocal:
		val = v.local[srcHost][line]
	case srcCXL:
		val = v.mem[line]
	}
	if write {
		val = v.token(c)
	}
	v.cached[c.host.id][line] = val
	v.emit(c, line, write, val)
}

// forwardServe records an owner-forward (cxlServe DirModified forward, or
// PIPM's inter-host fetch of a migrated line): the owner's copy — cached
// (M/ME) or in local DRAM (I') — is pushed back to CXL memory, then the
// requester takes it (or overwrites it on a write).
func (v *valTracker) forwardServe(c *coreState, line config.Addr, write, fromCache bool, g int) {
	var val uint64
	if fromCache {
		val = v.cached[g][line]
	} else {
		val = v.local[g][line]
	}
	v.mem[line] = val // memory is clean after the forward / migrate-back
	if write {
		val = v.token(c)
	}
	v.cached[c.host.id][line] = val
	v.emit(c, line, write, val)
}

// gimServe records a non-cacheable 4-hop access to a kernel-migrated page
// at owner g. The requester caches nothing; writes land in the owner's
// local DRAM (any cached owner copy is invalidated by the machine).
func (v *valTracker) gimServe(c *coreState, line config.Addr, write bool, g int, ownerCached bool) {
	if write {
		val := v.token(c)
		v.local[g][line] = val
		v.emit(c, line, true, val)
		return
	}
	var val uint64
	if ownerCached {
		val = v.cached[g][line]
	} else {
		val = v.local[g][line]
	}
	v.emit(c, line, false, val)
}

// wbToLocal moves a host's cached value into its local DRAM (dirty private
// writeback, ME eviction, incremental migration, kernel-local writeback).
func (v *valTracker) wbToLocal(h int, line config.Addr) {
	v.local[h][line] = v.cached[h][line]
}

// wbToCXL moves a host's cached value into pooled CXL memory (ordinary
// dirty writeback, directory back-invalidation of a modified owner).
func (v *valTracker) wbToCXL(h int, line config.Addr) {
	v.mem[line] = v.cached[h][line]
}

// revoke mirrors applyRevocation: every migrated line of the page returns
// from the old owner g's local DRAM to CXL, and any dirty cached copy
// (M or ME) is fresher still and travels with it. Must run before the
// machine invalidates g's caches for the page.
func (v *valTracker) revoke(page int64, g int, bitmap uint64) {
	base := v.m.amap.SharedAddr(config.Addr(page) * config.PageBytes).Line()
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		if bitmap&(1<<uint(l)) != 0 {
			v.mem[base+l] = v.local[g][base+l]
		}
	}
	owner := v.m.hosts[g]
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		if st, ok := owner.llc.Peek(base + l); ok && st.Dirty() {
			v.mem[base+l] = v.cached[g][base+l]
		}
	}
}

// kernelMove mirrors applyKernelOp's page copy: fold the backing copy
// (old owner's local DRAM, or CXL) with any dirty cached copy, and place
// the result at the destination. Must run before the machine invalidates
// cached copies of the page.
func (v *valTracker) kernelMove(page int64, from, to int) {
	base := v.m.amap.SharedAddr(config.Addr(page) * config.PageBytes).Line()
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		line := base + l
		var val uint64
		var have bool
		if from >= 0 {
			val, have = v.local[from][line]
		} else {
			val, have = v.mem[line]
		}
		for _, hs := range v.m.hosts {
			if st, ok := hs.llc.Peek(line); ok && st.Dirty() {
				val, have = v.cached[hs.id][line], true
			}
		}
		if !have {
			continue
		}
		if to >= 0 {
			v.local[to][line] = val
		} else {
			v.mem[line] = val
		}
	}
}
