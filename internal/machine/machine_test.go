package machine

import (
	"bytes"
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

// testCfg is a 2-host, 1-core-per-host system small enough for fast tests:
// 16 KB LLC (256 lines), 64 KB shared heap (16 pages), 50 µs kernel epochs.
func testCfg() config.Config {
	c := config.Default()
	c.Hosts = 2
	c.CoresPerHost = 1
	c.L1D = config.CacheConfig{SizeBytes: 4 << 10, Ways: 4, Latency: sim.Nanosecond}
	c.LLC = config.CacheConfig{SizeBytes: 16 << 10, Ways: 8, Latency: 6 * sim.Nanosecond}
	c.SharedBytes = 64 << 10
	c.Kernel.Interval = 50 * sim.Microsecond
	return c
}

// scanTrace walks lines of the given pages round-robin for n records.
func scanTrace(m config.AddressMap, pages []int64, n int, gap uint32, writeEvery int) trace.Reader {
	recs := make([]trace.Record, n)
	li := 0
	for i := range recs {
		page := pages[(li/config.LinesPerPage)%len(pages)]
		line := li % config.LinesPerPage
		addr := m.SharedAddr(config.Addr(page)*config.PageBytes + config.Addr(line*config.LineBytes))
		recs[i] = trace.Record{Gap: gap, Addr: addr, Write: writeEvery > 0 && i%writeEvery == 0}
		li++
	}
	return trace.NewSliceReader(recs)
}

// privateTrace walks a host's private window.
func privateTrace(m config.AddressMap, h, n int) trace.Reader {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 8, Addr: m.PrivateAddr(h, config.Addr(i*config.LineBytes)%(1<<20))}
	}
	return trace.NewSliceReader(recs)
}

func pageRange(lo, hi int64) []int64 {
	var ps []int64
	for p := lo; p < hi; p++ {
		ps = append(ps, p)
	}
	return ps
}

// build constructs a machine or fails the test.
func build(t *testing.T, cfg config.Config, k migration.Kind) *Machine {
	t.Helper()
	m, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// attachPartitioned gives each host a scan over its own page range —
// the PIPM-friendly pattern (strong per-host locality).
func attachPartitioned(m *Machine, n int) {
	cfg := m.Config()
	perHost := cfg.SharedPages() / int64(cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		pages := pageRange(int64(h)*perHost, int64(h+1)*perHost)
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, scanTrace(m.AddressMap(), pages, n, 8, 4))
		}
	}
}

// attachContested points every host at the same pages (interleaved hot
// sharing — the migration-hostile pattern).
func attachContested(m *Machine, n int) {
	cfg := m.Config()
	pages := pageRange(0, cfg.SharedPages())
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, scanTrace(m.AddressMap(), pages, n, 8, 4))
		}
	}
}

func run(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresTraces(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	if err := m.Run(); err == nil {
		t.Fatal("Run without traces succeeded")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 100)
	run(t, m)
	if err := m.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := testCfg()
	cfg.Hosts = 0
	if _, err := New(cfg, migration.Native); err == nil {
		t.Fatal("New accepted broken config")
	}
}

func TestPrivateOnlyNeverTouchesCXL(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	cfg := m.Config()
	for h := 0; h < cfg.Hosts; h++ {
		m.SetTrace(h, 0, privateTrace(m.AddressMap(), h, 5000))
	}
	run(t, m)
	col := m.Stats()
	if col.Served(stats.ClassCXL) != 0 || col.Served(stats.ClassInterHost) != 0 {
		t.Fatalf("private workload produced CXL traffic: %s", col.Summary())
	}
	if m.Fabric().TotalBytes() != 0 {
		t.Fatalf("fabric moved %d bytes for a private workload", m.Fabric().TotalBytes())
	}
	if col.Served(stats.ClassLocalPrivate) == 0 {
		t.Fatal("no local DRAM accesses recorded")
	}
	if col.Instructions() != int64(2*5000*9) {
		t.Fatalf("Instructions = %d, want %d", col.Instructions(), 2*5000*9)
	}
}

func TestNativeSharedGoesToCXL(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 20000)
	run(t, m)
	col := m.Stats()
	if col.Served(stats.ClassCXL) == 0 {
		t.Fatalf("no CXL accesses: %s", col.Summary())
	}
	if col.Served(stats.ClassLocalShared) != 0 {
		t.Fatal("native scheme served shared data locally")
	}
	if col.LocalHitRate() != 0 {
		t.Fatalf("native local hit rate = %v, want 0", col.LocalHitRate())
	}
	if m.ExecTime() <= 0 {
		t.Fatal("zero exec time")
	}
}

func TestDeterminism(t *testing.T) {
	for _, k := range []migration.Kind{migration.Native, migration.PIPM, migration.Memtis} {
		runOnce := func() (sim.Time, string) {
			m := build(t, testCfg(), k)
			attachPartitioned(m, 15000)
			run(t, m)
			return m.ExecTime(), m.Stats().Summary()
		}
		t1, s1 := runOnce()
		t2, s2 := runOnce()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("%v: runs diverge: %v/%v %q/%q", k, t1, t2, s1, s2)
		}
	}
}

func TestPIPMMigratesPartitionedWorkload(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	attachPartitioned(m, 60000)
	run(t, m)
	col := m.Stats()
	if col.Promotions == 0 {
		t.Fatalf("PIPM never promoted a page: %s", col.Summary())
	}
	if col.LinesMoved == 0 {
		t.Fatal("PIPM never migrated a line incrementally")
	}
	if col.LocalHitRate() <= 0.1 {
		t.Fatalf("PIPM local hit rate = %.2f on a partitioned workload", col.LocalHitRate())
	}
}

func TestPIPMBeatsNativeOnPartitionedWorkload(t *testing.T) {
	nat := build(t, testCfg(), migration.Native)
	attachPartitioned(nat, 60000)
	run(t, nat)
	pipm := build(t, testCfg(), migration.PIPM)
	attachPartitioned(pipm, 60000)
	run(t, pipm)
	if pipm.ExecTime() >= nat.ExecTime() {
		t.Fatalf("PIPM (%v) not faster than native (%v) on partitioned workload",
			pipm.ExecTime(), nat.ExecTime())
	}
}

func TestPIPMSuppressesContestedMigration(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	attachContested(m, 40000)
	run(t, m)
	col := m.Stats()
	// Interleaved access from both hosts must largely suppress promotion;
	// any transient promotions must get revoked.
	cfg := m.Config()
	if col.Promotions > 0 && col.Demotions == 0 && m.Manager().MigratedPages(0)+m.Manager().MigratedPages(1) == int(cfg.SharedPages()) {
		t.Fatalf("contested pages all stayed migrated: %s", col.Summary())
	}
	// The vote must not let inter-host traffic dominate.
	inter := col.Served(stats.ClassInterHost)
	cxl := col.Served(stats.ClassCXL)
	if inter > cxl {
		t.Fatalf("inter-host (%d) exceeds CXL (%d) on contested workload", inter, cxl)
	}
}

func TestLocalOnlyIsFastest(t *testing.T) {
	times := map[migration.Kind]sim.Time{}
	for _, k := range []migration.Kind{migration.Native, migration.LocalOnly} {
		m := build(t, testCfg(), k)
		attachPartitioned(m, 30000)
		run(t, m)
		times[k] = m.ExecTime()
	}
	if times[migration.LocalOnly] >= times[migration.Native] {
		t.Fatalf("local-only (%v) not faster than native (%v)",
			times[migration.LocalOnly], times[migration.Native])
	}
}

func TestLocalOnlyHitRateIsFull(t *testing.T) {
	m := build(t, testCfg(), migration.LocalOnly)
	attachPartitioned(m, 20000)
	run(t, m)
	if hr := m.Stats().LocalHitRate(); hr != 1 {
		t.Fatalf("local-only hit rate = %v, want 1", hr)
	}
}

func TestKernelSchemeMigratesAndPaysManagement(t *testing.T) {
	m := build(t, testCfg(), migration.Memtis)
	attachPartitioned(m, 100000)
	run(t, m)
	col := m.Stats()
	if col.Promotions == 0 {
		t.Fatalf("Memtis never migrated: %s", col.Summary())
	}
	if col.Served(stats.ClassLocalShared) == 0 {
		t.Fatal("no local serves after migration")
	}
	var mgmt sim.Time
	for h := range col.Hosts {
		mgmt += col.Hosts[h].MgmtStall
	}
	if mgmt == 0 {
		t.Fatal("kernel migration charged no management stalls")
	}
	if col.BytesMoved == 0 {
		t.Fatal("kernel migration moved no bytes")
	}
}

func TestKernelRemoteAccessIsInterHostAndUncached(t *testing.T) {
	// Host 0 hammers pages; host 1 touches the same pages occasionally.
	// After Memtis promotes them to host 0, host 1's accesses must become
	// non-cacheable 4-hop inter-host accesses.
	cfg := testCfg()
	m := build(t, cfg, migration.Memtis)
	am := m.AddressMap()
	pages := pageRange(0, 4)
	m.SetTrace(0, 0, scanTrace(am, pages, 150000, 4, 4))
	m.SetTrace(1, 0, scanTrace(am, pages, 30000, 40, 0))
	run(t, m)
	col := m.Stats()
	if col.Promotions == 0 {
		t.Fatalf("no promotions: %s", col.Summary())
	}
	if col.Host(1).Served[stats.ClassInterHost] == 0 {
		t.Fatalf("host 1 never paid inter-host accesses: %s", col.Summary())
	}
}

func TestHarmfulLedgerActiveForKernelSchemes(t *testing.T) {
	m := build(t, testCfg(), migration.Nomad)
	attachContested(m, 120000)
	run(t, m)
	if m.Stats().Promotions == 0 {
		t.Skip("nomad made no migrations in this configuration")
	}
	// On a fully contested workload the recency policy's migrations must
	// be mostly harmful.
	if hf := m.HarmfulFraction(); hf < 0.5 {
		t.Fatalf("harmful fraction = %.2f on contested workload, want ≥ 0.5", hf)
	}
}

func TestHWStaticServesOwnPartitionLocally(t *testing.T) {
	m := build(t, testCfg(), migration.HWStatic)
	// Hosts scan their round-robin-owned pages: host h touches pages ≡ h (mod 2).
	cfg := m.Config()
	for h := 0; h < cfg.Hosts; h++ {
		var pages []int64
		for p := int64(h); p < cfg.SharedPages(); p += int64(cfg.Hosts) {
			pages = append(pages, p)
		}
		m.SetTrace(h, 0, scanTrace(m.AddressMap(), pages, 60000, 8, 4))
	}
	run(t, m)
	col := m.Stats()
	if col.LinesMoved == 0 {
		t.Fatal("HW-static migrated no lines")
	}
	if col.LocalHitRate() <= 0.1 {
		t.Fatalf("HW-static local hit rate = %.2f on aligned partitions", col.LocalHitRate())
	}
	// Static mapping never promotes or revokes pages.
	if col.Promotions != 0 || col.Demotions != 0 {
		t.Fatalf("HW-static changed page placement: %s", col.Summary())
	}
}

func TestHWStaticMisalignedPartitionHurts(t *testing.T) {
	// Hosts access each other's statically mapped pages: lines ping-pong.
	alignedTime := func(aligned bool) sim.Time {
		m := build(t, testCfg(), migration.HWStatic)
		cfg := m.Config()
		for h := 0; h < cfg.Hosts; h++ {
			owner := h
			if !aligned {
				owner = (h + 1) % cfg.Hosts
			}
			var pages []int64
			for p := int64(owner); p < cfg.SharedPages(); p += int64(cfg.Hosts) {
				pages = append(pages, p)
			}
			m.SetTrace(h, 0, scanTrace(m.AddressMap(), pages, 40000, 8, 4))
		}
		run(t, m)
		return m.ExecTime()
	}
	if alignedTime(true) >= alignedTime(false) {
		t.Fatal("HW-static should be faster when access aligns with its static mapping")
	}
}

func TestStallAttributionConsistent(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 30000)
	run(t, m)
	col := m.Stats()
	var total sim.Time
	for h := range col.Hosts {
		for _, s := range col.Hosts[h].Stall {
			if s < 0 {
				t.Fatal("negative stall")
			}
			total += s
		}
		if col.Hosts[h].FinishTime <= 0 {
			t.Fatalf("host %d never finished", h)
		}
	}
	if total == 0 {
		t.Fatal("a memory-bound run recorded zero stalls")
	}
	// Stall can't exceed total core time.
	var cap sim.Time
	for h := range col.Hosts {
		cap += col.Hosts[h].FinishTime * sim.Time(m.Config().CoresPerHost)
	}
	if total > cap {
		t.Fatalf("stall %v exceeds core time %v", total, cap)
	}
}

func TestFootprintSampling(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	attachPartitioned(m, 80000)
	run(t, m)
	if m.Stats().MeanPageFootprint() <= 0 {
		t.Fatal("PIPM footprint never sampled above zero")
	}
	if m.Stats().MeanLineFootprint() <= 0 {
		t.Fatal("line footprint zero")
	}
}

func TestIPCBounded(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 20000)
	run(t, m)
	ipc := m.IPC()
	if ipc <= 0 || ipc > float64(m.Config().Width) {
		t.Fatalf("IPC = %v out of (0, %d]", ipc, m.Config().Width)
	}
}

func TestSwitchHopSlowsCXL(t *testing.T) {
	base := testCfg()
	m1 := build(t, base, migration.Native)
	attachPartitioned(m1, 20000)
	run(t, m1)

	hop := testCfg()
	hop.CXL.SwitchHops = 2
	m2 := build(t, hop, migration.Native)
	attachPartitioned(m2, 20000)
	run(t, m2)
	if m2.ExecTime() <= m1.ExecTime() {
		t.Fatalf("switch hops did not slow CXL-bound run: %v vs %v", m2.ExecTime(), m1.ExecTime())
	}
}

func TestDeterminismAllSchemes(t *testing.T) {
	for _, k := range migration.Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			runOnce := func() (sim.Time, string) {
				m := build(t, testCfg(), k)
				attachContested(m, 8000)
				run(t, m)
				return m.ExecTime(), m.Stats().Summary()
			}
			t1, s1 := runOnce()
			t2, s2 := runOnce()
			if t1 != t2 || s1 != s2 {
				t.Fatalf("nondeterministic: %v vs %v / %q vs %q", t1, t2, s1, s2)
			}
		})
	}
}

func TestMachineRunsFromBinaryTraces(t *testing.T) {
	// Round-trip a generated trace through the binary format and replay it:
	// results must be identical to the in-memory stream.
	cfg := testCfg()
	recs := make([]trace.Record, 0, 6000)
	r := scanTrace(config.NewAddressMap(&cfg), pageRange(0, 8), 6000, 8, 4)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	runWith := func(rd trace.Reader) sim.Time {
		m := build(t, cfg, migration.PIPM)
		m.SetTrace(0, 0, rd)
		for h := 0; h < cfg.Hosts; h++ {
			for c := 0; c < cfg.CoresPerHost; c++ {
				if h == 0 && c == 0 {
					continue
				}
				m.SetTrace(h, c, trace.NewSliceReader(nil))
			}
		}
		run(t, m)
		return m.ExecTime()
	}
	mem := runWith(trace.NewSliceReader(recs))
	br, err := trace.NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bin := runWith(br)
	if mem != bin {
		t.Fatalf("binary replay diverges: %v vs %v", bin, mem)
	}
}
