package machine

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/trace"
)

// BenchmarkAccessPath measures the bare hierarchy walk — m.access with the
// family's route module bound — one sub-benchmark per scheme family. This is
// the allocation guard for the DESIGN.md §11 refactor: every sub-benchmark
// must report 0 allocs/op (-benchmem), since one alloc per access dominates
// the simulator's throughput at scale. End-to-end wall-clock lives in the
// root bench_test.go; this one isolates the walk from trace generation and
// the event engine.
func BenchmarkAccessPath(b *testing.B) {
	for _, k := range []migration.Kind{
		migration.Native,    // FamilyNative
		migration.Memtis,    // FamilyKernel
		migration.PIPM,      // FamilyHardware
		migration.LocalOnly, // FamilyLocalOnly
	} {
		b.Run(k.String(), func(b *testing.B) { benchAccessPath(b, k) })
	}
}

func benchAccessPath(b *testing.B, k migration.Kind) {
	m, err := New(testCfg(), k)
	if err != nil {
		b.Fatal(err)
	}
	c := m.hosts[0].cores[0]
	am := m.AddressMap()
	cfg := m.Config()
	pages := cfg.SharedPages()

	// A fixed record mix built outside the timer: 3 shared references (reads
	// and writes striding pages and lines, so LLC misses, evictions, device
	// flows, and migrations all fire) to 1 private reference.
	recs := make([]trace.Record, 4096)
	for i := range recs {
		if i%4 == 3 {
			recs[i] = trace.Record{Addr: am.PrivateAddr(0, config.Addr(i*config.LineBytes)%(1<<20))}
			continue
		}
		page := int64(i*7) % pages
		line := (i * 3) % config.LinesPerPage
		recs[i] = trace.Record{
			Addr:  am.SharedAddr(config.Addr(page)*config.PageBytes + config.Addr(line*config.LineBytes)),
			Write: i%5 == 0,
		}
	}

	var t sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, _ := m.access(t, c, recs[i%len(recs)])
		if done > t {
			t = done
		}
	}
}
