package machine

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/trace"
)

// The auditor is always compiled in, so its disabled cost is paid by every
// production run: one auditPending branch per access on the stepCore hot
// loop. BenchmarkAuditorDisabledOverhead prices that branch — "baseline"
// drives the walk exactly like BenchmarkAccessPath, "disabled" adds the
// auditPending check a real stepCore iteration performs with auditing off.
// The two must stay within ~2% of each other and both at 0 allocs/op; CI
// runs the benchmark at -benchtime 1x as a does-it-still-run smoke, and
// TestAuditorDisabledZeroAlloc pins the allocation half as a hard failure.

// benchRecs builds the same fixed record mix as benchAccessPath.
func benchRecs(m *Machine) []trace.Record {
	am := m.AddressMap()
	cfg := m.Config()
	pages := cfg.SharedPages()
	recs := make([]trace.Record, 4096)
	for i := range recs {
		if i%4 == 3 {
			recs[i] = trace.Record{Addr: am.PrivateAddr(0, config.Addr(i*config.LineBytes)%(1<<20))}
			continue
		}
		page := int64(i*7) % pages
		line := (i * 3) % config.LinesPerPage
		recs[i] = trace.Record{
			Addr:  am.SharedAddr(config.Addr(page)*config.PageBytes + config.Addr(line*config.LineBytes)),
			Write: i%5 == 0,
		}
	}
	return recs
}

func BenchmarkAuditorDisabledOverhead(b *testing.B) {
	bench := func(b *testing.B, withCheck bool) {
		m, err := New(testCfg(), migration.PIPM)
		if err != nil {
			b.Fatal(err)
		}
		c := m.hosts[0].cores[0]
		recs := benchRecs(m)
		var t sim.Time
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done, _ := m.access(t, c, recs[i%len(recs)])
			if withCheck && m.auditPending {
				m.auditPending = false
				m.auditSweep(false)
			}
			if done > t {
				t = done
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { bench(b, false) })
	b.Run("disabled", func(b *testing.B) { bench(b, true) })
}

// TestAuditorDisabledZeroAlloc pins the disabled-auditor access path at zero
// allocations: with no auditor attached, neither the walk nor the
// auditPending check may allocate.
func TestAuditorDisabledZeroAlloc(t *testing.T) {
	m, err := New(testCfg(), migration.PIPM)
	if err != nil {
		t.Fatal(err)
	}
	c := m.hosts[0].cores[0]
	recs := benchRecs(m)
	var now sim.Time
	i := 0
	// Warm the hierarchy so steady-state rounds exercise hits, misses and
	// evictions rather than cold compulsory fills.
	for ; i < len(recs); i++ {
		done, _ := m.access(now, c, recs[i])
		if done > now {
			now = done
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		done, _ := m.access(now, c, recs[i%len(recs)])
		if m.auditPending {
			m.auditPending = false
			m.auditSweep(false)
		}
		if done > now {
			now = done
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled-auditor access path allocates %.1f/op, want 0", allocs)
	}
}
