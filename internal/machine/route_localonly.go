package machine

import (
	"pipm/internal/cache"
	"pipm/internal/config"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

// Local-only route module: the upper bound where every host's view of
// shared data is private by construction. Shared accesses take the private
// L1 → LLC → local-DRAM path (reclassified as shared serves), evictions
// write back locally, and no cross-host sharing semantics exist — so the
// coherence audit is disabled and the hooks' contract points never fire
// (the family binds the identity migration.NopHooks).

func (m *Machine) bindLocalOnlyRoutes() {
	m.routeShared = m.routeLocalOnlyShared
	m.missShared = m.missSharedCXL // unreachable: the route never walks the shared hierarchy
	m.evictShared = m.evictLocalOnlyShared
	m.auditShared = false
}

// routeLocalOnlyShared serves shared data as if it were local DRAM.
func (m *Machine) routeLocalOnlyShared(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	done, class := m.privateAccess(t, c, rec)
	if class == stats.ClassLocalPrivate {
		class = stats.ClassLocalShared
	}
	m.col.Host(c.host.id).Served[class]++
	return done, class
}

// evictLocalOnlyShared: "shared" victims are backed by local DRAM too.
func (m *Machine) evictLocalOnlyShared(h *host, now sim.Time, page int64, addr, line config.Addr, vState cache.State) {
	m.evictLocalWB(h, now, addr, line, vState)
}
