package machine

import (
	"fmt"
	"testing"

	"pipm/internal/migration"
)

// fingerprint summarises every observable measurement of a finished run:
// makespan, IPC, and the full per-host stat block. Two runs with equal
// fingerprints retired the same instructions with the same timing through
// the same migration activity.
func fingerprint(m *Machine) string {
	s := fmt.Sprintf("exec=%d ipc=%.9f events=%d", m.ExecTime(), m.IPC(), m.eng.EventsRun())
	for h := 0; h < m.cfg.Hosts; h++ {
		s += fmt.Sprintf(" h%d=%+v", h, *m.col.Host(h))
	}
	s += fmt.Sprintf(" prom=%d dem=%d lines=%d", m.col.Promotions, m.col.Demotions, m.col.LinesMoved)
	return s
}

// TestIntraParallelBitIdentical runs the same contested multi-host workload
// on the sequential engine and on the PDES engine at 1, 2, 4 and 8 workers,
// and requires identical fingerprints: the partitioned windowed engine must
// commit exactly the sequential event order (DESIGN.md §13).
func TestIntraParallelBitIdentical(t *testing.T) {
	cfg := testCfg()
	cfg.Hosts = 4
	for _, k := range []migration.Kind{migration.Native, migration.Memtis, migration.PIPM} {
		base := build(t, cfg, k)
		attachContested(base, 4000)
		run(t, base)
		want := fingerprint(base)

		for _, workers := range []int{1, 2, 4, 8} {
			m := build(t, cfg, k)
			if err := m.EnableIntraParallel(IntraOptions{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			attachContested(m, 4000)
			run(t, m)
			if got := fingerprint(m); got != want {
				t.Errorf("%v: intra workers=%d diverged from sequential engine:\n got %s\nwant %s",
					k, workers, got, want)
			}
			if m.eng.Partitions() != 1+cfg.Hosts {
				t.Errorf("%v: engine has %d partitions, want %d", k, m.eng.Partitions(), 1+cfg.Hosts)
			}
		}
	}
}

// TestIntraParallelPartitionedPattern repeats the bit-identity check on the
// PIPM-friendly partitioned access pattern, where per-host windows overlap
// least and the prepare phase does the most useful work.
func TestIntraParallelPartitionedPattern(t *testing.T) {
	cfg := testCfg()
	base := build(t, cfg, migration.PIPM)
	attachPartitioned(base, 4000)
	run(t, base)
	want := fingerprint(base)

	m := build(t, cfg, migration.PIPM)
	if err := m.EnableIntraParallel(IntraOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	attachPartitioned(m, 4000)
	run(t, m)
	if got := fingerprint(m); got != want {
		t.Errorf("partitioned pattern diverged under intra parallelism:\n got %s\nwant %s", got, want)
	}
}

func TestEnableIntraParallelValidation(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	if err := m.EnableIntraParallel(IntraOptions{Workers: -1}); err == nil {
		t.Error("negative worker count accepted")
	}
	attachPartitioned(m, 10)
	run(t, m)
	if err := m.EnableIntraParallel(IntraOptions{Workers: 2}); err == nil {
		t.Error("EnableIntraParallel after Run accepted")
	}
}
