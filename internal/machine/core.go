package machine

import (
	"pipm/internal/cache"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/tlb"
	"pipm/internal/trace"
)

// coreState is one simulated core: a trace cursor plus the bounded-MLP
// issue window. Non-memory instructions retire Width per cycle; memory ops
// enter the window and complete asynchronously at the time the hierarchy
// walk computes; when the window is full the core stalls until the oldest
// outstanding op completes, and that wait is attributed to the oldest op's
// service class (the Fig. 12 ledger).
type coreState struct {
	host *host
	id   int
	rd   trace.Reader
	l1   *cache.Cache
	tlb  *tlb.TLB // nil unless Config.TLBEntries > 0

	// step is the core's engine closure, bound once at Run so the
	// per-quantum re-schedule never allocates.
	step func()

	clk sim.Time // next-issue time
	// window is a fixed-capacity FIFO ring of in-flight ops (len == MSHRs,
	// allocated at build time): winHead indexes the oldest entry, winLen
	// counts occupancy. A plain append/reslice slice here erodes its
	// backing array and reallocates on the hot path.
	window  []pending
	winHead int
	winLen  int
	// lastMem is the previous memory op's completion time and class;
	// dependent records (pointer chases) issue no earlier than this.
	lastMem      sim.Time
	lastMemClass stats.Class
	// pendingRec holds a record whose dependence stall crossed the quantum
	// boundary; it issues first at the next step (front-end and stall
	// already accounted). Stored by value: boxing it behind a pointer
	// allocates once per quantum-crossing record.
	pendingRec    trace.Record
	hasPendingRec bool

	// Stalls injected by kernel migration, applied at the next step.
	pendingMgmt     sim.Time
	pendingTransfer sim.Time

	// Trace prefetch ring (intra-parallel runs only; see intra.go): prepare
	// workers refill it between commit windows so record generation runs off
	// the serial commit loop. nil when intra parallelism is disabled.
	ring     []trace.Record
	ringHead int
	ringLen  int
	srcDone  bool // rd returned !ok; the ring holds the tail

	instr  int64
	memOps int64
	finish sim.Time
	done   bool

	stall [6]sim.Time // indexed by stats.Class
}

type pending struct {
	done  sim.Time
	class stats.Class
}

// popOldest removes and returns the window's oldest in-flight op.
func (c *coreState) popOldest() pending {
	p := c.window[c.winHead]
	c.winHead++
	if c.winHead == len(c.window) {
		c.winHead = 0
	}
	c.winLen--
	return p
}

// pushOp records an in-flight op; the caller guarantees winLen < len(window).
func (c *coreState) pushOp(p pending) {
	i := c.winHead + c.winLen
	if i >= len(c.window) {
		i -= len(c.window)
	}
	c.window[i] = p
	c.winLen++
}

// maxBatch bounds records processed per engine event so one core cannot
// starve the event loop within a quantum.
const maxBatch = 4096

// stepCore advances one core by up to a time quantum of trace records.
func (m *Machine) stepCore(c *coreState) {
	if c.done {
		return
	}
	now := sim.Max(c.clk, m.eng.Now())

	// Apply migration-injected stalls.
	if c.pendingMgmt > 0 {
		m.col.Host(c.host.id).MgmtStall += c.pendingMgmt
		now += c.pendingMgmt
		c.pendingMgmt = 0
	}
	if c.pendingTransfer > 0 {
		m.col.Host(c.host.id).TransferStall += c.pendingTransfer
		now += c.pendingTransfer
		c.pendingTransfer = 0
	}

	deadline := now + m.quantum
	for n := 0; n < maxBatch && now < deadline; n++ {
		// Retire completed ops; when the window is full, stall to the
		// oldest completion. A stall that crosses the quantum boundary
		// yields back to the engine so other cores' earlier walks acquire
		// shared resources first — otherwise one core's jump ahead creates
		// spurious FCFS queueing for everyone behind it.
		for c.winLen > 0 && c.window[c.winHead].done <= now {
			c.popOldest()
		}
		if c.winLen >= m.cfg.MSHRs {
			oldest := c.popOldest()
			c.stall[oldest.class] += oldest.done - now
			now = oldest.done
			continue // re-check the deadline before issuing
		}

		var rec trace.Record
		if c.hasPendingRec {
			rec = c.pendingRec
			c.hasPendingRec = false
		} else {
			var ok bool
			rec, ok = c.nextRec()
			if !ok {
				c.done = true
				m.liveCores--
				// Drain: the core finishes when its last outstanding op does.
				c.finish = now
				for c.winLen > 0 {
					c.finish = sim.Max(c.finish, c.popOldest().done)
				}
				m.recordStalls(c)
				return
			}
			c.instr += int64(rec.Gap) + 1
			c.memOps++

			// Front-end: (gap + the op itself) instructions at Width/cycle.
			// A gap that blows past the quantum (a compute phase) yields to
			// the engine so the access issues against up-to-date state.
			cycles := (int64(rec.Gap) + 1 + m.width - 1) / m.width
			now += m.clock.Cycles(cycles)
			if now >= deadline {
				c.pendingRec = rec
				c.hasPendingRec = true
				break
			}
		}

		// Address dependence: a pointer chase cannot issue before the
		// producing load returns. This is the true MLP limiter. Like window
		// stalls, a dependence stall crossing the quantum yields to the
		// engine so other cores' earlier walks go first. (Re-checked for
		// resumed records: lastMem cannot have advanced while stalled.)
		if rec.Dep && c.lastMem > now {
			c.stall[c.lastMemClass] += c.lastMem - now
			if c.lastMem >= deadline {
				c.pendingRec = rec
				c.hasPendingRec = true
				now = c.lastMem
				break
			}
			now = c.lastMem
		}

		done, class := m.access(now, c, rec)
		if m.auditPending {
			// Paranoid mode: a protocol transition happened inside this
			// access; sweep now that the state is consistent again.
			m.auditPending = false
			m.auditSweep(false)
		}
		hs := m.col.Host(c.host.id)
		hs.LatSum[class] += done - now
		m.telLat[class].Observe(done - now)
		if done > now {
			c.pushOp(pending{done: done, class: class})
		}
		c.lastMem, c.lastMemClass = done, class
	}
	c.clk = now
	m.eng.At(now, c.step)
}

// recordStalls folds a finished core's attribution ledger into host stats.
func (m *Machine) recordStalls(c *coreState) {
	st := m.col.Host(c.host.id)
	for cl, t := range c.stall {
		st.Stall[stats.Class(cl)] += t
	}
}
