package machine

import (
	"fmt"

	"pipm/internal/config"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
)

// EnableTelemetry attaches the observability subsystem to the machine:
// sampled instruments for every component (cores' service classes, L1/LLC,
// the device directory, CXL links, DDR5 channels, remap caches and the
// migration engine), per-class latency histograms, and the protocol event
// trace. It must be called after New and before Run. With the zero Options
// it is a no-op and the machine keeps its nil-handle fast paths.
func (m *Machine) EnableTelemetry(o telemetry.Options) error {
	if m.ran {
		return fmt.Errorf("machine: EnableTelemetry after Run")
	}
	if !o.Enabled() {
		return nil
	}
	m.telOpt = o
	if o.Trace {
		// Replaces the auditor's private ring if one was attached first; the
		// auditor reads m.trc at violation time, so it follows along.
		m.trc = telemetry.NewTrace(o.TraceCapacity)
		m.auditOwnsTrc = false
	}
	if o.SampleInterval <= 0 {
		return nil
	}
	m.tel = telemetry.NewRegistry()
	for cl := 0; cl < stats.NumClasses; cl++ {
		m.telLat[cl] = m.tel.Histogram("lat." + stats.Class(cl).String())
	}
	m.registerInstruments()
	return nil
}

// TelemetryOutput returns everything the run collected, or nil when
// telemetry was never enabled. Valid after Run.
func (m *Machine) TelemetryOutput() *telemetry.Output {
	if m.tel == nil && (m.trc == nil || m.auditOwnsTrc) {
		return nil
	}
	return &telemetry.Output{
		SampleInterval: m.telOpt.SampleInterval,
		Series:         m.tel.Series(),
		Histograms:     m.tel.Histograms(),
		Trace:          m.trc,
	}
}

// registerInstruments wires sampled gauges over counters each component
// already keeps, so the time-series costs nothing on any hot path — values
// are read only at snapshot instants.
func (m *Machine) registerInstruments() {
	r := m.tel

	// Machine-wide migration engine counters.
	r.GaugeFunc("mig.promotions", func() float64 { return float64(m.col.Promotions) })
	r.GaugeFunc("mig.demotions", func() float64 { return float64(m.col.Demotions) })
	r.GaugeFunc("mig.lines_moved", func() float64 { return float64(m.col.LinesMoved) })
	r.GaugeFunc("mig.bytes_moved", func() float64 { return float64(m.col.BytesMoved) })
	if m.mgr != nil {
		r.GaugeFunc("mig.vote_updates", func() float64 { return float64(m.mgr.Stats().VoteUpdates) })
		r.GaugeFunc("mig.revocations", func() float64 { return float64(m.mgr.Stats().Revocations) })
		gc := m.mgr.GlobalCache()
		r.GaugeFunc("remap.global.hits", func() float64 { return float64(gc.Hits()) })
		r.GaugeFunc("remap.global.misses", func() float64 { return float64(gc.Misses()) })
	}

	// CXL pooled DRAM and device directory.
	r.GaugeFunc("cxlmem.busy_ps", func() float64 { return float64(m.cxlMem.BusyTime()) })
	r.GaugeFunc("cxlmem.reads", func() float64 { return float64(m.cxlMem.Stats().Reads) })
	r.GaugeFunc("cxlmem.writes", func() float64 { return float64(m.cxlMem.Stats().Writes) })
	r.GaugeFunc("devdir.occupancy", func() float64 { return float64(m.devDir.Occupancy()) })

	for h := 0; h < m.cfg.Hosts; h++ {
		h := h
		hs := m.hosts[h]
		p := fmt.Sprintf("h%d.", h)

		// Core service classes (cumulative counts; per-class hit rates are
		// interval deltas of these).
		for cl := 0; cl < stats.NumClasses; cl++ {
			cl := cl
			r.GaugeFunc(p+"served."+stats.Class(cl).String(), func() float64 {
				return float64(m.col.Host(h).Served[cl])
			})
		}

		// Cache hierarchy: shared LLC plus the sum over the host's L1Ds.
		r.GaugeFunc(p+"llc.hits", func() float64 { return float64(hs.llc.Stats().Hits) })
		r.GaugeFunc(p+"llc.misses", func() float64 { return float64(hs.llc.Stats().Misses) })
		r.GaugeFunc(p+"l1.hits", func() float64 {
			var n uint64
			for _, c := range hs.cores {
				n += c.l1.Stats().Hits
			}
			return float64(n)
		})
		r.GaugeFunc(p+"l1.misses", func() float64 {
			var n uint64
			for _, c := range hs.cores {
				n += c.l1.Stats().Misses
			}
			return float64(n)
		})

		// Local-footprint gauges (instantaneous — the Fig. 13 curves).
		r.GaugeFunc(p+"footprint.pages", func() float64 { return float64(m.residentPages(h)) })
		r.GaugeFunc(p+"footprint.lines", func() float64 { return float64(m.residentLines(h)) })
		r.GaugeFunc(p+"footprint.bytes", func() float64 {
			return float64(m.residentLines(h) * config.LineBytes)
		})

		// CXL link directions: demand traffic volume, occupancy and queueing.
		r.GaugeFunc(p+"link.up.bytes", func() float64 { return float64(m.fabric.UpBytes(h)) })
		r.GaugeFunc(p+"link.down.bytes", func() float64 { return float64(m.fabric.DownBytes(h)) })
		r.GaugeFunc(p+"link.up.busy_ps", func() float64 {
			_, busy, _, _, _, _ := m.fabric.DebugLink(h)
			return float64(busy)
		})
		r.GaugeFunc(p+"link.down.busy_ps", func() float64 {
			_, _, _, _, busy, _ := m.fabric.DebugLink(h)
			return float64(busy)
		})
		r.GaugeFunc(p+"link.up.queue_ps", func() float64 {
			_, _, q, _, _, _ := m.fabric.DebugLink(h)
			return float64(q)
		})
		r.GaugeFunc(p+"link.down.queue_ps", func() float64 {
			_, _, _, _, _, q := m.fabric.DebugLink(h)
			return float64(q)
		})

		// Local DDR5 channels.
		r.GaugeFunc(p+"dram.busy_ps", func() float64 { return float64(hs.dram.BusyTime()) })
		r.GaugeFunc(p+"dram.reads", func() float64 { return float64(hs.dram.Stats().Reads) })
		r.GaugeFunc(p+"dram.writes", func() float64 { return float64(hs.dram.Stats().Writes) })

		// Per-host local remapping cache (hardware schemes).
		if m.mgr != nil {
			lc := m.mgr.LocalCache(h)
			r.GaugeFunc(p+"remap.local.hits", func() float64 { return float64(lc.Hits()) })
			r.GaugeFunc(p+"remap.local.misses", func() float64 { return float64(lc.Misses()) })
		}
	}
}

// residentPages reports host h's migrated pages resident in local DRAM.
func (m *Machine) residentPages(h int) int64 {
	switch {
	case m.pt != nil:
		return int64(m.pt.Resident(h))
	case m.mgr != nil:
		return int64(m.mgr.MigratedPages(h))
	}
	return 0
}

// residentLines reports host h's migrated lines resident in local DRAM.
func (m *Machine) residentLines(h int) int64 {
	switch {
	case m.pt != nil:
		return int64(m.pt.Resident(h)) * config.LinesPerPage
	case m.mgr != nil:
		return int64(m.mgr.MigratedLines(h))
	}
	return 0
}

// telemetryTick is the interval sampler: driven by the sim event heap, it
// snapshots every instrument and re-arms until the last core finishes (the
// final state is captured by Run's closing snapshot).
func (m *Machine) telemetryTick() {
	if m.liveCores == 0 {
		return
	}
	m.tel.Snapshot(m.eng.Now())
	m.eng.At(m.eng.Now()+m.telOpt.SampleInterval, m.telemetryTickFn)
}
