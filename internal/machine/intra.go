package machine

// Intra-run parallel simulation (conservative PDES; DESIGN.md §13). The
// machine partitions its event engine per host — partition 0 for the global
// tick chains, partition 1+h for host h's cores — and runs it through
// sim.RunWindowed: lookahead windows bounded by the minimum cross-host CXL
// latency, the 100 ns scheduling quantum as the hard barrier, and a
// prepare phase between windows that tops up per-core trace prefetch rings
// on worker goroutines. Commits stay serialised in global (time, seq)
// order, so an intra-parallel run's every stat, latency and event ordering
// is bit-identical to the sequential engine's — the golden digests,
// telemetry exports and audit reports do not move at any worker count.
//
// Trace generation is the only machine work that is state-independent (each
// core's reader owns its generator and RNG), which is what makes it safe to
// run off the commit loop; the walk itself is not parallelised because
// cross-host effects apply at issue time (DESIGN.md §3) and therefore have
// zero lookahead.

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"pipm/internal/sim"
	"pipm/internal/trace"
)

// IntraOptions configures intra-run parallelism for one machine.
type IntraOptions struct {
	// Workers is the number of prepare-phase worker goroutines. 0 disables
	// the partitioned engine entirely (the classic single-heap engine runs);
	// 1 runs the partitioned windowed engine without extra goroutines.
	// Results are bit-identical across all values.
	Workers int
}

// Enabled reports whether the partitioned engine is selected.
func (o IntraOptions) Enabled() bool { return o.Workers > 0 }

// EnableIntraParallel selects the intra-run parallel engine for this
// machine. It must be called after New and before Run. With intra
// parallelism enabled, the trace readers attached via SetTrace must not
// share mutable state across hosts: readers of different hosts are advanced
// concurrently during prepare phases. Every reader the workload catalog
// builds satisfies this (one generator and RNG per core).
func (m *Machine) EnableIntraParallel(o IntraOptions) error {
	if m.ran {
		return fmt.Errorf("machine: EnableIntraParallel after Run")
	}
	if o.Workers < 0 {
		return fmt.Errorf("machine: IntraOptions.Workers = %d, want ≥ 0", o.Workers)
	}
	m.intra = o
	return nil
}

// ringDepth is the per-core trace prefetch ring capacity: two full step
// batches, so one quantum's worth of demand never drains a freshly filled
// ring and refills amortise across hundreds of windows.
const ringDepth = 2 * maxBatch

// setupIntra partitions the engine and installs the per-host prepare hooks.
// Called from Run before the first event is scheduled.
func (m *Machine) setupIntra() {
	m.eng.Partition(1 + m.cfg.Hosts)
	// Minimum latency of any cross-host effect: one CXL link traversal.
	m.eng.SetLookahead(m.cfg.CXL.LinkLatency * sim.Time(1+m.cfg.CXL.SwitchHops))
	m.eng.SetWorkers(m.intra.Workers)
	for _, hs := range m.hosts {
		hs := hs
		for _, c := range hs.cores {
			c.ring = make([]trace.Record, ringDepth)
		}
		m.eng.SetPrepare(1+hs.id, hs.ringsLow, hs.refillRings)
	}
}

// ringsLow reports whether any of the host's cores wants a prefetch refill:
// the gate that keeps worker dispatch off windows with nothing to do.
func (hs *host) ringsLow(sim.Time) bool {
	for _, c := range hs.cores {
		if c.ring != nil && !c.srcDone && c.ringLen <= ringDepth/2 {
			return true
		}
	}
	return false
}

// refillRings tops up the host's drained prefetch rings. Runs on a prepare
// worker; it touches only this host's readers and rings, never the engine.
func (hs *host) refillRings(sim.Time) {
	for _, c := range hs.cores {
		if c.ring != nil && !c.srcDone && c.ringLen <= ringDepth/2 {
			c.refillRing()
		}
	}
}

// refillRing pulls records from the core's reader until the ring is full or
// the reader is exhausted. Also the commit-path fallback when a core drains
// its ring faster than prepare phases refill it (prepare never runs
// concurrently with commits, so both callers are serialised).
func (c *coreState) refillRing() {
	for c.ringLen < len(c.ring) {
		rec, ok := c.rd.Next()
		if !ok {
			c.srcDone = true
			return
		}
		i := c.ringHead + c.ringLen
		if i >= len(c.ring) {
			i -= len(c.ring)
		}
		c.ring[i] = rec
		c.ringLen++
	}
}

// nextRec yields the core's next trace record: from the prefetch ring when
// intra parallelism is on, straight from the reader otherwise.
func (c *coreState) nextRec() (trace.Record, bool) {
	if c.ring == nil {
		return c.rd.Next()
	}
	if c.ringLen == 0 {
		if c.srcDone {
			return trace.Record{}, false
		}
		c.refillRing()
		if c.ringLen == 0 {
			return trace.Record{}, false
		}
	}
	rec := c.ring[c.ringHead]
	c.ringHead++
	if c.ringHead == len(c.ring) {
		c.ringHead = 0
	}
	c.ringLen--
	return rec, true
}

// envIntra caches the PIPM_INTRA_WORKERS override: a CI/debug lever that
// forces the intra-parallel engine onto every machine whose caller didn't
// choose one, so existing suites (goldens, walk tests, audited sweeps) can
// run wholesale on the partitioned engine. Because results are
// bit-identical, the override never invalidates memoised run keys.
var envIntra struct {
	once    sync.Once
	workers int
}

func envIntraWorkers() int {
	envIntra.once.Do(func() {
		if s := os.Getenv("PIPM_INTRA_WORKERS"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				envIntra.workers = n
			}
		}
	})
	return envIntra.workers
}
