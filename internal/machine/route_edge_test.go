package machine

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

// Edge cases of the kernel epoch tick and the hardware revocation path, run
// under the paranoid invariant auditor so a transient protocol inconsistency
// at any of these boundaries fails loudly.

// TestKernelTickEdges drives the GIM epoch tick through its scheduling
// edges: a tick landing exactly on every quantum boundary, a tick interval
// coprime with the quantum (epochs wrap across quanta mid-stream), and an
// interval longer than the whole run (the tick never fires with work).
func TestKernelTickEdges(t *testing.T) {
	cases := []struct {
		name      string
		interval  sim.Time
		records   int
		wantMoves bool
	}{
		// Exactly the scheduling quantum: every epoch boundary coincides
		// with a core-step event; heap ties must resolve deterministically.
		{"tick-on-quantum-boundary", 100 * sim.Nanosecond, 20000, true},
		// Coprime with the 100 ns quantum: boundaries wrap through every
		// phase of the quantum over the run.
		{"tick-wraps-quanta", 307 * sim.Nanosecond, 20000, true},
		// One tick per 50 µs (the testCfg default) sanity-checks the table
		// against the normal regime.
		{"tick-default", 50 * sim.Microsecond, 20000, true},
		// Interval beyond the simulated runtime: the policy never runs, so
		// nothing may move and no shootdown stall may be charged.
		{"tick-beyond-run", sim.Second, 8000, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCfg()
			cfg.Kernel.Interval = tc.interval
			m := build(t, cfg, migration.Memtis)
			m.EnableAudit()
			attachContested(m, tc.records)
			run(t, m)
			if errs := m.AuditViolations(); len(errs) > 0 {
				t.Fatalf("%d invariant violations; first: %s", len(errs), errs[0])
			}
			col := m.Stats()
			moved := col.Promotions+col.Demotions > 0
			if moved != tc.wantMoves {
				t.Fatalf("moves=%v (prom %d dem %d), want %v",
					moved, col.Promotions, col.Demotions, tc.wantMoves)
			}
			var mgmt sim.Time
			for h := range col.Hosts {
				mgmt += col.Hosts[h].MgmtStall
			}
			if !tc.wantMoves && mgmt != 0 {
				t.Fatalf("no pages moved but %v of shootdown stall charged", mgmt)
			}
			if tc.wantMoves && mgmt == 0 {
				t.Fatal("pages moved but no shootdown stall charged")
			}
		})
	}
}

// TestKernelTickZeroAccessEpochs pins the zero-access epoch: a private-only
// workload under a kernel scheme ticks hundreds of epochs that observe no
// shared access. The policy must stay idle — no ops, no shootdowns, no
// stalls — and the run must terminate (the tick re-arms only while cores
// live).
func TestKernelTickZeroAccessEpochs(t *testing.T) {
	cfg := testCfg()
	cfg.Kernel.Interval = 500 * sim.Nanosecond // hundreds of empty epochs
	m := build(t, cfg, migration.Memtis)
	m.EnableAudit()
	am := m.AddressMap()
	for h := 0; h < cfg.Hosts; h++ {
		m.SetTrace(h, 0, privateTrace(am, h, 10000))
	}
	run(t, m)
	if errs := m.AuditViolations(); len(errs) > 0 {
		t.Fatalf("invariant violations on idle epochs: %s", errs[0])
	}
	col := m.Stats()
	if col.Promotions != 0 || col.Demotions != 0 || col.BytesMoved != 0 {
		t.Fatalf("idle epochs moved data: prom %d dem %d bytes %d",
			col.Promotions, col.Demotions, col.BytesMoved)
	}
	for h := range col.Hosts {
		if col.Hosts[h].MgmtStall != 0 {
			t.Fatalf("host %d charged %v shootdown stall with no shared accesses",
				h, col.Hosts[h].MgmtStall)
		}
	}
}

// pageRounds builds rounds of {touch every line of shared page 0, then
// stream 2× the LLC through the host's private window}. The private stream
// evicts the page's lines between rounds, so every round misses the whole
// hierarchy again: dirty lines of a migrated page take the Loc-WB incremental
// migration path on eviction, and each round's misses reach the device (vote
// or revocation pressure) instead of hitting warm caches. startGap delays the
// very first record, staggering the two hosts' opening votes.
func pageRounds(am config.AddressMap, h, rounds int, write bool, startGap uint32) trace.Reader {
	const evictLines = 512 // 2× the 256-line test LLC
	recs := make([]trace.Record, 0, rounds*(config.LinesPerPage+evictLines))
	for r := 0; r < rounds; r++ {
		for l := 0; l < config.LinesPerPage; l++ {
			recs = append(recs, trace.Record{
				Addr:  am.SharedAddr(config.Addr(l * config.LineBytes)),
				Write: write,
			})
		}
		for l := 0; l < evictLines; l++ {
			recs = append(recs, trace.Record{Addr: am.PrivateAddr(h, config.Addr(l*config.LineBytes))})
		}
	}
	recs[0].Gap = startGap
	return trace.NewSliceReader(recs)
}

// TestRevocationDuringForwardedFetches drives the §4.2 ⑥ revocation edge:
// host 0 promotes page 0 and incrementally migrates lines into its local
// DRAM; host 1 then hammers the same page, first taking the forwarded
// inter-host path to the migrated lines (ME/I' at host 0), until its vote
// pressure revokes host 0's partial migration mid-stream. The paranoid
// auditor sweeps after every promotion, line migration, forwarded demotion
// and revocation, so any transient inconsistency in the handoff — a stale
// migrated bit, a directory entry left behind, a counter out of range —
// fails the run.
func TestRevocationDuringForwardedFetches(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.PIPM)
	m.EnableAudit()
	am := m.AddressMap()

	// Host 0: dirty rounds over page 0 — the first round's 64 device
	// accesses win the vote (threshold 8), later rounds' evictions migrate
	// dirty lines into local DRAM. Host 1 starts a long instruction gap
	// later (so it cannot contest the opening vote), then keeps re-reading
	// the page cold: forwarded fetches of migrated lines while host 0 is
	// still running, then — once host 0's trace drains and its revocation
	// counter stops being replenished — enough device accesses in one round
	// to drain the 4-bit counter and revoke the partial migration.
	m.SetTrace(0, 0, pageRounds(am, 0, 12, true, 0))
	m.SetTrace(1, 0, pageRounds(am, 1, 40, false, 200000))
	run(t, m)

	if errs := m.AuditViolations(); len(errs) > 0 {
		t.Fatalf("%d invariant violations; first: %s", len(errs), errs[0])
	}
	ms := m.Manager().Stats()
	if ms.Promotions == 0 {
		t.Fatal("page never promoted; the scenario did not exercise migration")
	}
	if ms.LinesMigrated == 0 {
		t.Fatal("no lines migrated; the scenario did not exercise partial migration")
	}
	if ms.Revocations == 0 {
		t.Fatal("no revocation; the contention never revoked the partial migration")
	}
	col := m.Stats()
	if col.Host(1).Served[stats.ClassInterHost] == 0 {
		t.Fatal("host 1 never took the forwarded inter-host path")
	}
	// After revocation the flow ledger must balance: lines migrated minus
	// demoted equals what is still resident (the closing sweep checked the
	// same equality against the walked tables).
	if ms.LinesMigrated < ms.LinesDemoted {
		t.Fatalf("flow ledger negative: %d migrated < %d demoted", ms.LinesMigrated, ms.LinesDemoted)
	}
}
