package machine

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

func TestPinPageServesLocallyAfterWarmup(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.PIPM)
	am := m.AddressMap()
	// Pin page 0 to host 0 before the run; host 0 then scans it with
	// eviction pressure so lines migrate and serve locally.
	if err := m.PinPage(0, 0); err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for pass := 0; pass < 20; pass++ {
		for l := 0; l < config.LinesPerPage; l++ {
			recs = append(recs, rd(am.SharedAddr(config.Addr(l*config.LineBytes))))
		}
		for p := int64(1); p < 10; p++ { // eviction pressure
			for l := 0; l < config.LinesPerPage; l++ {
				recs = append(recs, rd(am.SharedAddr(config.Addr(p)*config.PageBytes+config.Addr(l*config.LineBytes))))
			}
		}
	}
	attachSingle(m, 0, recs)
	run(t, m)
	if m.Manager().Owner(0) != 0 {
		t.Fatal("pinned page lost ownership")
	}
	if m.Stats().Served(stats.ClassLocalShared) == 0 {
		t.Fatal("pinned page never served locally")
	}
}

func TestNoMigratePageStaysInCXL(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.PIPM)
	if err := m.SetPageNoMigrate(0); err != nil {
		t.Fatal(err)
	}
	am := m.AddressMap()
	var recs []trace.Record
	for pass := 0; pass < 30; pass++ {
		for l := 0; l < config.LinesPerPage; l++ {
			recs = append(recs, rd(am.SharedAddr(config.Addr(l*config.LineBytes))))
		}
	}
	attachSingle(m, 0, recs)
	run(t, m)
	if m.Manager().Owner(0) != -1 {
		t.Fatal("no-migrate page got an owner")
	}
}

func TestHintsRejectedOnWrongSchemes(t *testing.T) {
	for _, k := range []migration.Kind{migration.Native, migration.Memtis, migration.HWStatic} {
		m := build(t, testCfg(), k)
		if err := m.PinPage(0, 0); err == nil {
			t.Errorf("%v accepted PinPage", k)
		}
		if err := m.SetPageNoMigrate(0); err == nil {
			t.Errorf("%v accepted SetPageNoMigrate", k)
		}
		if err := m.ClearPageHint(0); err == nil {
			t.Errorf("%v accepted ClearPageHint", k)
		}
	}
}

func TestHintsRejectBadPages(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	cfg := m.Config()
	pages := cfg.SharedPages()
	for _, page := range []int64{-1, pages, pages + 100} {
		if err := m.PinPage(page, 0); err == nil {
			t.Errorf("PinPage accepted page %d", page)
		}
		if err := m.SetPageNoMigrate(page); err == nil {
			t.Errorf("SetPageNoMigrate accepted page %d", page)
		}
		if err := m.ClearPageHint(page); err == nil {
			t.Errorf("ClearPageHint accepted page %d", page)
		}
	}
}

func TestRePinMovesDataBetweenHosts(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	if err := m.PinPage(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.PinPage(3, 1); err != nil {
		t.Fatal(err)
	}
	if m.Manager().Owner(3) != 1 {
		t.Fatalf("owner = %d after re-pin, want 1", m.Manager().Owner(3))
	}
	if m.Manager().MigratedPages(0) != 0 {
		t.Fatal("old owner still holds the page")
	}
}
