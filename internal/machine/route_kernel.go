package machine

import (
	"pipm/internal/cache"
	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/trace"
)

// Kernel-family route module (Nomad, Memtis, HeMem, OS-skew): whole-page
// migration at epoch boundaries, local serves for resident pages, and the
// non-cacheable 4-hop GIM path to pages another host holds. Per-access
// placement decisions go through m.kHooks (migration.KernelHooks); the
// epoch tick below drives the policy the hooks observe into.

func (m *Machine) bindKernelRoutes() {
	m.routeShared = m.routeKernelShared
	m.missShared = m.missKernelShared
	m.evictShared = m.evictKernelShared
	m.auditShared = true
}

// routeKernelShared feeds the policy's access stream (PEBS samples and
// NUMA-hinting faults see loads regardless of cache state), then routes:
// pages migrated to another host bypass the caches entirely.
func (m *Machine) routeKernelShared(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host.id
	m.kHooks.OnAccessObserved(h, page, rec.Write)
	if d := m.kHooks.RouteShared(h, page, rec.Write); d.Kind == migration.RouteRemote {
		// The page's unified PA points into another host's GIM window:
		// non-cacheable 4-hop access (Fig. 3 ①–⑤).
		return m.gimRemoteAccess(t, c, rec, d.Owner)
	}
	return m.cacheableSharedAt(t, c, rec, page)
}

// missKernelShared serves a memory-visible access: local DRAM when the page
// is resident here, the coherent CXL path otherwise.
func (m *Machine) missKernelShared(tL sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	d := m.kHooks.OnFill(c.host.id, page, rec.Addr.LineInPage())
	if d.Kind == migration.FillLocalPage {
		fillSt := cache.Exclusive
		if rec.Write {
			fillSt = cache.Modified
		}
		return m.localSharedFill(tL, c, rec, rec.Addr, fillSt)
	}
	return m.cxlServe(tL, c, rec)
}

// evictKernelShared writes victims of locally-resident pages to local DRAM;
// everything else is an ordinary CXL writeback.
func (m *Machine) evictKernelShared(h *host, now sim.Time, page int64, addr, line config.Addr, vState cache.State) {
	d := m.kHooks.OnEvict(h.id, page, int(line)&(config.LinesPerPage-1), evictStateOf(vState))
	if d.Kind == migration.EvictLocalPage {
		m.evictLocalWB(h, now, addr, line, vState)
		return
	}
	m.evictSharedCXL(h, now, page, addr, line, vState)
}

// gimRemoteAccess is the non-cacheable 4-hop path to a page migrated into
// another host's local memory under a kernel scheme (Fig. 3 ①–⑤): no
// caching at the requester, every reference pays the full traversal.
func (m *Machine) gimRemoteAccess(t sim.Time, c *coreState, rec trace.Record, g int) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	owner := m.hosts[g]

	reqBytes, respBytes := 0, cxlDataBytes
	if rec.Write {
		reqBytes, respBytes = cxlDataBytes, 0
	}
	lat := (m.fabric.HostToDevice(t, h.id, reqBytes) - t) +
		(m.fabric.DeviceToHost(t, g, reqBytes) - t) + m.llcLat

	// Owning host's local coherence directory (Fig. 3 ③): the LLC may hold
	// the freshest copy.
	_, ownerCached := owner.llc.Peek(line)
	if m.vals != nil {
		m.vals.gimServe(c, line, rec.Write, g, ownerCached)
	}
	if ownerCached {
		if rec.Write {
			m.invalidateLineEverywhere(owner, line)
			owner.dram.Access(t, rec.Addr, true) // async local update
		}
	} else {
		lat += owner.dram.Access(t, rec.Addr, rec.Write) - t
	}

	lat += (m.fabric.HostToDevice(t, g, respBytes) - t) +
		(m.fabric.DeviceToHost(t, h.id, respBytes) - t)
	m.col.Host(h.id).Served[stats.ClassInterHost]++
	return t + lat, stats.ClassInterHost
}

// kernelTick is the epoch boundary of kernel-based schemes: run the policy,
// price the management and transfer work, and apply the page moves.
func (m *Machine) kernelTick() {
	if m.liveCores == 0 {
		return
	}
	now := m.eng.Now()
	budget := int(float64(m.cfg.SharedPages()) * m.cfg.Kernel.MaxLocalFrac)
	if budget < 1 {
		budget = 1
	}
	ops := m.policy.Tick(m.pt, budget)
	if max := m.cfg.Kernel.MaxPagesPerEpoch; max > 0 && len(ops) > max {
		ops = ops[:max]
	}

	if len(ops) > 0 {
		costs := m.tlbModel.ForPages(len(ops))
		// Batched TLB shootdowns stall every core in the system.
		for _, hs := range m.hosts {
			for _, c := range hs.cores {
				c.pendingMgmt += costs.Remote
			}
		}
		m.trc.Emit(now, costs.Remote, telemetry.EvShootdown, telemetry.DeviceHost,
			int64(len(ops)), 0)
		for _, op := range ops {
			m.applyKernelOp(now, op)
		}
		if m.auditParanoid {
			// Epoch migrations are protocol transitions; the tick's end is
			// the consistent point to sweep at.
			m.auditSweep(false)
		}
	}
	m.eng.At(now+m.cfg.Kernel.Interval, m.kernelTickFn)
}

func (m *Machine) applyKernelOp(now sim.Time, op migration.Op) {
	from := m.pt.Owner(op.Page)
	if from == op.To {
		return
	}
	base := m.amap.SharedAddr(config.Addr(op.Page) * config.PageBytes)
	if m.vals != nil {
		// Values move with the page; must precede the invalidations below so
		// dirty cached copies can still be folded in.
		m.vals.kernelMove(op.Page, from, op.To)
	}

	// All hosts drop cached lines and TLB translations of the page: its
	// unified PA changes. Dirty data is folded into the page copy below.
	firstLine := base.Line()
	for _, hs := range m.hosts {
		hs.llc.InvalidatePage(base.Page(), nil)
		for _, c := range hs.cores {
			c.l1.InvalidatePage(base.Page(), nil)
			if c.tlb != nil {
				c.tlb.Invalidate(base.Page())
			}
		}
	}
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		m.devDir.Remove(firstLine + l)
	}

	// Price the data transfer (asynchronous: occupies DRAM and link
	// bandwidth, contending with demand traffic, but stalls no core by
	// itself).
	initiator := op.To
	if initiator == migration.ToCXL {
		initiator = from
	}
	if op.To != migration.ToCXL {
		// CXL → local: pooled read, link down to the new owner, local write.
		t := m.cxlMem.AccessBulk(now, base, config.PageBytes, false)
		t = m.fabric.DeviceToHostBG(t, op.To, config.PageBytes)
		done := m.hosts[op.To].dram.AccessBulk(t, base, config.PageBytes, true)
		m.col.Promotions++
		m.ledger.OnMigration(op.Page, op.To)
		m.trc.Emit(now, done-now, telemetry.EvPromote, op.To, op.Page, int64(from))
	} else {
		// Local → CXL: local read, link up, pooled write.
		t := m.hosts[from].dram.AccessBulk(now, base, config.PageBytes, false)
		t = m.fabric.HostToDeviceBG(t, from, config.PageBytes)
		done := m.cxlMem.AccessBulk(t, base, config.PageBytes, true)
		m.col.Demotions++
		m.ledger.OnDemotion(op.Page)
		m.trc.Emit(now, done-now, telemetry.EvDemote, from, op.Page, 0)
	}
	m.col.BytesMoved += config.PageBytes

	// The initiating host additionally does the per-page kernel work
	// (unmap, copy management, remap): a synchronous stall, spread across
	// the host's cores (the paper applies multi-threaded, batched page
	// transfers) — except when the scheme's transactional migration runs
	// it asynchronously (Nomad).
	if !m.asyncKernelTransfer {
		cores := m.hosts[initiator].cores
		core := cores[int(m.col.Promotions+m.col.Demotions)%len(cores)]
		core.pendingTransfer += m.tlbModel.InitiatorPerPage()
	}

	m.pt.Set(op.Page, op.To)
}
