package machine

import (
	"testing"

	"pipm/internal/migration"
)

// The auditor re-checks the model checker's invariants (SWMR, directory
// precision, ME consistency, L1/LLC inclusion) on the live simulator, after
// every shared access, across randomized multi-host workloads.

func TestAuditCleanAcrossSchemes(t *testing.T) {
	for _, k := range []migration.Kind{
		migration.Native, migration.PIPM, migration.HWStatic,
		migration.Memtis, migration.Nomad,
	} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			m := build(t, testCfg(), k)
			m.EnableAudit()
			attachContested(m, 25000) // heaviest sharing → hardest invariants
			run(t, m)
			if errs := m.AuditViolations(); len(errs) > 0 {
				t.Fatalf("%d invariant violations; first: %s", len(errs), errs[0])
			}
		})
	}
}

func TestAuditCleanOnPartitionedPIPM(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	m.EnableAudit()
	attachPartitioned(m, 40000)
	run(t, m)
	if errs := m.AuditViolations(); len(errs) > 0 {
		t.Fatalf("%d invariant violations; first: %s", len(errs), errs[0])
	}
	// The run must actually have exercised ME lines for the audit to mean
	// anything.
	if m.Stats().LinesMoved == 0 {
		t.Fatal("audit ran but no lines ever migrated")
	}
}

func TestAuditCleanWithHints(t *testing.T) {
	m := build(t, testCfg(), migration.PIPM)
	m.EnableAudit()
	cfg := m.Config()
	if err := m.PinPage(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPageNoMigrate(1); err != nil {
		t.Fatal(err)
	}
	_ = cfg
	attachContested(m, 25000)
	run(t, m)
	if errs := m.AuditViolations(); len(errs) > 0 {
		t.Fatalf("hints broke invariants: %s", errs[0])
	}
}

func TestAuditDetectsSeededCorruption(t *testing.T) {
	// Prove the auditor can actually fail: corrupt the state mid-run by
	// force-filling the same line Modified on two hosts.
	m := build(t, testCfg(), migration.Native)
	m.EnableAudit()
	attachContested(m, 25000)
	am := m.AddressMap()
	line := am.SharedAddr(0).Line()
	m.eng.At(2*1000*1000, func() { // 2µs: early, while accesses continue
		m.hosts[0].llc.Fill(line, 3 /* Modified */)
		m.hosts[1].llc.Fill(line, 3)
		// Audit immediately: the demand stream could legitimately repair
		// or evict the corruption before its next access to this line.
		m.auditLine(line)
	})
	run(t, m)
	if len(m.AuditViolations()) == 0 {
		t.Fatal("auditor missed a seeded double-writer")
	}
}
