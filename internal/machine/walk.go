package machine

import (
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

// This file is the invariant memory path (DESIGN.md §11): the L1 → LLC →
// device-directory → DRAM/CXL hierarchy walk, the coherent CXL serve, the
// fill/eviction plumbing and the directory helpers. It never names a
// scheme. Scheme behavior enters through three route functions — bound once
// at build time to one of the per-family route modules (route_kernel.go,
// route_hw.go, route_localonly.go, or the native defaults below) — which in
// turn consult the family's migration.SchemeHooks:
//
//	routeShared  classifies a shared access before any cache probe
//	missShared   routes an LLC miss that became memory-visible
//	evictShared  picks the destination of a shared LLC victim
//
// Everything here must stay allocation-free: it runs once per trace record
// (BenchmarkAccessPath pins 0 allocs/op).

// bindNativeRoutes wires the scheme-free defaults: every shared access is
// plain cacheable CXL traffic.
func (m *Machine) bindNativeRoutes() {
	m.routeShared = m.cacheableSharedAt
	m.missShared = m.missSharedCXL
	m.evictShared = m.evictSharedCXL
	m.auditShared = true
}

// access services one memory reference issued at time t by core c. It
// returns the completion time and the class the access was served from.
// State updates (fills, evictions, directory transitions, policy counters)
// are applied at issue time; completion only affects timing.
func (m *Machine) access(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	// Address translation (when modelled): a TLB miss pays the page-walk
	// latency before anything else can start.
	if c.tlb != nil && !c.tlb.Lookup(rec.Addr) {
		t += m.cfg.TLBWalkLatency
	}

	region, _ := m.amap.Region(rec.Addr)
	if region != config.RegionShared {
		return m.privateAccess(t, c, rec)
	}

	page := m.amap.SharedPageIndex(rec.Addr)

	if m.audit && m.auditShared {
		defer m.auditLine(rec.Addr.Line())
	}
	return m.routeShared(t, c, rec, page)
}

// privateAccess is the host-local path: L1 → LLC → local DRAM, no CXL.
func (m *Machine) privateAccess(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	if l1st, hit := c.l1.Lookup(line); hit {
		if rec.Write && l1st != cache.Modified {
			// In-host upgrade: the LLC arbitrates, other L1s invalidate.
			c.l1.SetState(line, cache.Modified)
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassL1Hit]++
		return t, stats.ClassL1Hit
	}
	tL := t + m.llcLat
	if llcSt, hit := h.llc.Lookup(line); hit {
		fillSt := llcSt
		if rec.Write {
			fillSt = cache.Modified
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		m.fillL1(c, line, fillSt)
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassLLCHit]++
		return tL, stats.ClassLLCHit
	}
	done := h.dram.Access(tL, rec.Addr, false)
	fillSt := cache.Exclusive
	if rec.Write {
		fillSt = cache.Modified
	}
	m.fillLLC(c, line, fillSt)
	m.fillL1(c, line, fillSt)
	if m.vals != nil {
		m.vals.serve(c, line, rec.Write, srcLocal, h.id)
	}
	st.Served[stats.ClassLocalPrivate]++
	return done, stats.ClassLocalPrivate
}

// cacheableSharedAt is every cacheable shared-data path: the L1 and LLC
// probes are scheme-invariant; an LLC miss becomes memory-visible and is
// routed by the bound scheme family.
func (m *Machine) cacheableSharedAt(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	if l1st, hit := c.l1.Lookup(line); hit {
		if rec.Write && l1st == cache.Shared {
			// Write to a shared line: upgrade through the device directory.
			return m.writeUpgrade(t, c, rec)
		}
		if rec.Write && l1st == cache.Exclusive {
			c.l1.SetState(line, cache.Modified)
			h.llc.SetState(line, cache.Modified)
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassL1Hit]++
		return t, stats.ClassL1Hit
	}

	tL := t + m.llcLat
	if llcSt, hit := h.llc.Lookup(line); hit {
		if rec.Write && llcSt == cache.Shared {
			return m.writeUpgrade(tL, c, rec)
		}
		fillSt := llcSt
		if rec.Write && (llcSt == cache.Exclusive || llcSt == cache.Modified) {
			fillSt = cache.Modified
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		m.fillL1(c, line, fillSt)
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassLLCHit]++
		return tL, stats.ClassLLCHit
	}

	// LLC miss: the access is memory-visible — the scheme family decides
	// where it is served from.
	return m.missShared(tL, c, rec, page)
}

// missSharedCXL is the scheme-free LLC-miss route: plain coherent CXL.
func (m *Machine) missSharedCXL(tL sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	return m.cxlServe(tL, c, rec)
}

// localSharedFill serves a memory-visible shared access from the host's
// local DRAM at addr (the access address for whole-page migration, the
// remapped frame for partial migration) and installs the block as fillSt.
func (m *Machine) localSharedFill(t sim.Time, c *coreState, rec trace.Record, addr config.Addr, fillSt cache.State) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	done := h.dram.Access(t, addr, false)
	m.fillLLC(c, line, fillSt)
	m.fillL1(c, line, fillSt)
	if m.vals != nil {
		m.vals.serve(c, line, rec.Write, srcLocal, h.id)
	}
	m.col.Host(h.id).Served[stats.ClassLocalShared]++
	return done, stats.ClassLocalShared
}

const cxlDataBytes = config.LineBytes

// cxlServe is the coherent CXL memory path shared by every cacheable
// scheme: request up, device directory lookup, then — depending on the
// directory state — a direct pooled-DRAM access, an owner forward, or a
// sharer invalidation round.
func (m *Machine) cxlServe(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	// Every shared resource is reserved at issue time t (cores issue in
	// near-global time order, so arrivals stay monotone and FCFS queueing
	// is meaningful); the hop latencies then compose additively. Reserving
	// mid-walk instead would interleave deep-walk timestamps with other
	// cores' fresh issues and manufacture queueing that no real link sees.
	upLat := m.fabric.HostToDevice(t, h.id, 0) - t
	dirLat := m.fabric.DirLookup(t, line) - t
	e, ok := m.devDir.Lookup(line)

	var dataLat sim.Time
	fillSt := cache.Exclusive
	switch {
	case ok && e.State == coherence.DirModified && int(e.Owner) != h.id:
		// Owner forward (Fig. 2 ③④): device → owner cache → device.
		g := int(e.Owner)
		dataLat = (m.fabric.DeviceToHost(t, g, 0) - t) + m.llcLat +
			(m.fabric.HostToDevice(t, g, cxlDataBytes) - t)
		m.cxlMem.Access(t, rec.Addr, true) // async: memory now clean
		if m.vals != nil {
			m.vals.forwardServe(c, line, rec.Write, true, g)
		}
		if rec.Write {
			m.invalidateLineEverywhere(m.hosts[g], line)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int16(h.id)})
			fillSt = cache.Modified
		} else {
			m.downgradeLineAt(m.hosts[g], line)
			sharers := coherence.NewSharerSet(m.shShift).With(g).With(h.id)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: sharers})
			fillSt = cache.Shared
		}

	case ok && e.State == coherence.DirShared:
		if rec.Write {
			// Invalidate every other sharer before granting ownership; the
			// invalidation round-trips overlap, so charge the slowest.
			inv := m.invalidateSharersRound(t, e.Sharers, h.id, line)
			dataLat = inv + (m.cxlMem.Access(t, rec.Addr, false) - t)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int16(h.id)})
			fillSt = cache.Modified
		} else {
			dataLat = m.cxlMem.Access(t, rec.Addr, false) - t
			m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: e.Sharers.With(h.id)})
			fillSt = cache.Shared
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCXL, 0)
		}

	default:
		// No cached copy anywhere (or we are the recorded owner after an
		// eviction raced the directory): serve from pooled DRAM (Fig. 2 ⑦).
		dataLat = m.cxlMem.Access(t, rec.Addr, false) - t
		if rec.Write {
			fillSt = cache.Modified
		} else {
			fillSt = cache.Exclusive
		}
		m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int16(h.id)})
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCXL, 0)
		}
	}

	downLat := m.fabric.DeviceToHost(t, h.id, cxlDataBytes) - t
	done := t + upLat + dirLat + dataLat + downLat
	m.dbgUp += upLat
	m.dbgDir += dirLat
	m.dbgData += dataLat
	m.dbgDown += downLat
	m.dbgN++
	m.fillLLC(c, line, fillSt)
	m.fillL1(c, line, fillSt)
	st.Served[stats.ClassCXL]++
	return done, stats.ClassCXL
}

// DebugHops reports mean per-hop latency of the cxlServe path.
func (m *Machine) DebugHops() (up, dir, data, down sim.Time) {
	if m.dbgN == 0 {
		return
	}
	n := sim.Time(m.dbgN)
	return m.dbgUp / n, m.dbgDir / n, m.dbgData / n, m.dbgDown / n
}

// writeUpgrade obtains write permission for a shared-state line: the device
// directory invalidates other sharers, then grants M.
func (m *Machine) writeUpgrade(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()

	lat := (m.fabric.HostToDevice(t, h.id, 0) - t) + (m.fabric.DirLookup(t, line) - t)
	if e, ok := m.devDir.Lookup(line); ok && e.State == coherence.DirShared {
		lat += m.invalidateSharersRound(t, e.Sharers, h.id, line)
	}
	done := t + lat + (m.fabric.DeviceToHost(t, h.id, 0) - t)
	m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int16(h.id)})
	h.llc.Fill(line, cache.Modified)
	c.l1.Fill(line, cache.Modified)
	m.invalidateOtherL1s(h, c, line)
	if m.vals != nil {
		m.vals.serve(c, line, true, srcCache, h.id)
	}
	m.col.Host(h.id).Served[stats.ClassCXL]++
	return done, stats.ClassCXL
}

// ----------------------------------------------------------- fill paths --

// fillL1 installs a line in the requesting core's L1, folding any dirty
// victim into the LLC (free: on-chip).
func (m *Machine) fillL1(c *coreState, line config.Addr, st cache.State) {
	ev, evicted := c.l1.Fill(line, st)
	if evicted && ev.State.Dirty() {
		if s, present := c.host.llc.Peek(ev.Line); present && s != cache.MigratedExclusive {
			c.host.llc.SetState(ev.Line, cache.Modified)
		}
	}
}

// fillLLC installs a line in the host's LLC, handling the displaced victim:
// for the hardware family this is where incremental migration happens.
func (m *Machine) fillLLC(c *coreState, line config.Addr, st cache.State) {
	h := c.host
	ev, evicted := h.llc.Fill(line, st)
	if !evicted {
		return
	}
	m.handleLLCEviction(h, ev)
}

// handleLLCEviction is the scheme-invariant eviction frame: fold L1 copies
// into the victim state, then write private data locally and hand shared
// victims to the bound scheme family.
func (m *Machine) handleLLCEviction(h *host, ev cache.Eviction) {
	// Inclusion: the victim leaves every L1 too; a dirty L1 copy upgrades
	// the victim state.
	vState := ev.State
	for _, oc := range h.cores {
		if st, ok := oc.l1.Invalidate(ev.Line); ok && st.Dirty() && !vState.Dirty() {
			vState = cache.Modified
		}
	}

	addr := ev.Line << config.LineShift
	region, _ := m.amap.Region(addr)
	now := m.eng.Now()

	if region != config.RegionShared {
		m.evictLocalWB(h, now, addr, ev.Line, vState)
		return
	}
	m.evictShared(h, now, m.amap.SharedPageIndex(addr), addr, ev.Line, vState)
}

// evictLocalWB writes a dirty victim back to the host's local DRAM
// (private data, locally-resident pages, the Local-only upper bound).
func (m *Machine) evictLocalWB(h *host, now sim.Time, addr, line config.Addr, vState cache.State) {
	if vState.Dirty() {
		if m.vals != nil {
			m.vals.wbToLocal(h.id, line)
		}
		h.dram.Access(now, addr, true) // async writeback
	}
}

// evictSharedCXL is the scheme-free shared eviction: dirty data writes back
// to CXL memory; clean copies silently leave the directory.
func (m *Machine) evictSharedCXL(h *host, now sim.Time, page int64, addr, line config.Addr, vState cache.State) {
	if vState.Dirty() {
		if m.vals != nil {
			m.vals.wbToCXL(h.id, line)
		}
		t := m.fabric.HostToDeviceBG(now, h.id, cxlDataBytes)
		m.cxlMem.Access(t, addr, true)
		m.devDir.Remove(line)
	} else {
		m.devDir.RemoveSharer(line, h.id)
	}
}

// evictStateOf maps a folded victim state to the hooks' abstraction.
func evictStateOf(st cache.State) migration.EvictState {
	switch st {
	case cache.MigratedExclusive:
		return migration.EvictMigrated
	case cache.Modified:
		return migration.EvictDirty
	case cache.Exclusive:
		return migration.EvictCleanExclusive
	default:
		return migration.EvictClean
	}
}

// ------------------------------------------------------------- helpers --

// installDirEntry updates the device directory, servicing any capacity
// back-invalidation (the displaced line leaves all host caches; dirty data
// is written back asynchronously).
func (m *Machine) installDirEntry(line config.Addr, e coherence.Entry) {
	bi, evicted := m.devDir.Update(line, e)
	if !evicted {
		return
	}
	now := m.eng.Now()
	switch bi.Entry.State {
	case coherence.DirModified:
		g := int(bi.Entry.Owner)
		if m.vals != nil {
			m.vals.wbToCXL(g, bi.Line)
		}
		m.invalidateLineEverywhere(m.hosts[g], bi.Line)
		t := m.fabric.HostToDeviceBG(now, g, cxlDataBytes)
		m.cxlMem.Access(t, bi.Line<<config.LineShift, true)
	case coherence.DirShared:
		it := bi.Entry.Sharers.Iter(m.cfg.Hosts)
		for it.Next() {
			m.invalidateLineEverywhere(m.hosts[it.Host()], bi.Line)
		}
	}
}

// invalidateSharersRound invalidates line at every sharer except self,
// returning the slowest invalidation ack round-trip. One shootdown message
// goes to each sharer in the exact regime (≤ 64 hosts — identical pricing
// and fabric-call order to the historical per-sharer loop); in the summary
// regime the sharer set only knows presence regions, so one batched
// multicast message per region prices the round trip and every host of the
// region drops its copies — over-invalidation is the documented cost of
// coarse tracking. Message and target counts land on line's directory
// slice. (The iterator is a stack value: a ForEachSharer closure would
// capture locals and allocate on the hot path.)
func (m *Machine) invalidateSharersRound(t sim.Time, set coherence.SharerSet, self int, line config.Addr) sim.Time {
	var inv sim.Time
	shift := set.Shift()
	batches, targets := 0, 0
	region := -1
	it := set.Iter(m.cfg.Hosts)
	for it.Next() {
		g := it.Host()
		if g == self {
			continue
		}
		if r := g >> shift; r != region {
			// First host of a new batch carries the message round-trip; in
			// exact mode every host is its own region, so this is per-sharer.
			region = r
			ack := (m.fabric.DeviceToHost(t, g, 0) - t) + (m.fabric.HostToDevice(t, g, 0) - t)
			inv = sim.Max(inv, ack)
			batches++
		}
		m.invalidateLineEverywhere(m.hosts[g], line)
		targets++
	}
	if targets > 0 {
		m.devDir.NoteShootdown(line, batches, targets)
	}
	return inv
}

// invalidateLineEverywhere drops a line from a host's LLC and every L1.
func (m *Machine) invalidateLineEverywhere(h *host, line config.Addr) {
	h.llc.Invalidate(line)
	for _, oc := range h.cores {
		oc.l1.Invalidate(line)
	}
}

// downgradeLineAt moves a host's copies of line to Shared.
func (m *Machine) downgradeLineAt(h *host, line config.Addr) {
	h.llc.SetState(line, cache.Shared)
	for _, oc := range h.cores {
		oc.l1.SetState(line, cache.Shared)
	}
}

// invalidateOtherL1s drops line from every L1 on the host except c's.
func (m *Machine) invalidateOtherL1s(h *host, c *coreState, line config.Addr) {
	for _, oc := range h.cores {
		if oc != c {
			oc.l1.Invalidate(line)
		}
	}
}
