package machine

import (
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/trace"
)

// access services one memory reference issued at time t by core c. It
// returns the completion time and the class the access was served from.
// State updates (fills, evictions, directory transitions, policy counters)
// are applied at issue time; completion only affects timing.
func (m *Machine) access(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	// Address translation (when modelled): a TLB miss pays the page-walk
	// latency before anything else can start.
	if c.tlb != nil && !c.tlb.Lookup(rec.Addr) {
		t += m.cfg.TLBWalkLatency
	}

	region, _ := m.amap.Region(rec.Addr)
	if region != config.RegionShared {
		return m.privateAccess(t, c, rec)
	}

	page := m.amap.SharedPageIndex(rec.Addr)
	h := c.host.id

	if m.audit && m.scheme != migration.LocalOnly {
		// Local-only has no cross-host sharing semantics (every host's view
		// is private by construction), so the coherence audit doesn't apply.
		defer m.auditLine(rec.Addr.Line())
	}

	switch {
	case m.scheme == migration.LocalOnly:
		// Upper bound: shared data behaves as if it were local DRAM.
		done, class := m.privateAccess(t, c, rec)
		if class == stats.ClassLocalPrivate {
			class = stats.ClassLocalShared
		}
		m.col.Host(h).Served[class]++
		return done, class
	case m.scheme.Kernel():
		// Kernel policies observe the full access stream (PEBS samples and
		// NUMA-hinting faults see loads regardless of cache state), not
		// just LLC misses.
		m.policy.RecordAccess(h, page, rec.Write)
		if owner := m.pt.Owner(page); owner != migration.ToCXL && owner != h {
			// The page's unified PA points into another host's GIM window:
			// non-cacheable 4-hop access (Fig. 3 ①–⑤).
			m.ledger.OnAccess(page, h)
			return m.gimRemoteAccess(t, c, rec, owner)
		}
	}
	return m.cacheableSharedAt(t, c, rec, page)
}

// privateAccess is the host-local path: L1 → LLC → local DRAM, no CXL.
func (m *Machine) privateAccess(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	if l1st, hit := c.l1.Lookup(line); hit {
		if rec.Write && l1st != cache.Modified {
			// In-host upgrade: the LLC arbitrates, other L1s invalidate.
			c.l1.SetState(line, cache.Modified)
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassL1Hit]++
		return t, stats.ClassL1Hit
	}
	tL := t + m.llcLat
	if llcSt, hit := h.llc.Lookup(line); hit {
		fillSt := llcSt
		if rec.Write {
			fillSt = cache.Modified
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		m.fillL1(c, line, fillSt)
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassLLCHit]++
		return tL, stats.ClassLLCHit
	}
	done := h.dram.Access(tL, rec.Addr, false)
	fillSt := cache.Exclusive
	if rec.Write {
		fillSt = cache.Modified
	}
	m.fillLLC(c, line, fillSt)
	m.fillL1(c, line, fillSt)
	if m.vals != nil {
		m.vals.serve(c, line, rec.Write, srcLocal, h.id)
	}
	st.Served[stats.ClassLocalPrivate]++
	return done, stats.ClassLocalPrivate
}

// cacheableSharedAt is every cacheable shared-data path: Native's CXL-only
// flow, kernel schemes when the page is unmigrated or migrated to the
// requester, and the full PIPM/HW-static line-granularity flow.
func (m *Machine) cacheableSharedAt(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	if l1st, hit := c.l1.Lookup(line); hit {
		if rec.Write && l1st == cache.Shared {
			// Write to a shared line: upgrade through the device directory.
			return m.writeUpgrade(t, c, rec)
		}
		if rec.Write && l1st == cache.Exclusive {
			c.l1.SetState(line, cache.Modified)
			h.llc.SetState(line, cache.Modified)
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassL1Hit]++
		return t, stats.ClassL1Hit
	}

	tL := t + m.llcLat
	if llcSt, hit := h.llc.Lookup(line); hit {
		if rec.Write && llcSt == cache.Shared {
			return m.writeUpgrade(tL, c, rec)
		}
		fillSt := llcSt
		if rec.Write && (llcSt == cache.Exclusive || llcSt == cache.Modified) {
			fillSt = cache.Modified
			h.llc.SetState(line, cache.Modified)
			m.invalidateOtherL1s(h, c, line)
		}
		m.fillL1(c, line, fillSt)
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCache, h.id)
		}
		st.Served[stats.ClassLLCHit]++
		return tL, stats.ClassLLCHit
	}

	// LLC miss: the access becomes memory-visible — score it for the
	// harmful-migration ledger (owner-side benefit is cache-filtered).
	if m.ledger != nil {
		m.ledger.OnAccess(page, h.id)
	}

	// Kernel scheme with the page migrated to this host: local DRAM.
	if m.pt != nil && m.pt.Owner(page) == h.id {
		done := h.dram.Access(tL, rec.Addr, false)
		fillSt := cache.Exclusive
		if rec.Write {
			fillSt = cache.Modified
		}
		m.fillLLC(c, line, fillSt)
		m.fillL1(c, line, fillSt)
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcLocal, h.id)
		}
		st.Served[stats.ClassLocalShared]++
		return done, stats.ClassLocalShared
	}

	// PIPM/HW-static: consult the local remapping structures first (the
	// I vs I' resolution of §4.3: every shared LLC miss performs a local
	// remapping table lookup).
	if m.mgr != nil {
		entry, cacheHit := m.mgr.LocalLookup(h.id, page)
		tR := tL + m.cfg.PIPM.LocalRemapLatency
		if !cacheHit {
			// Walk the in-memory two-level table: one leaf read from local
			// DRAM (the pinned root is free, §4.4).
			tR = h.dram.Access(tR, m.remapTableAddr(h.id, page), false)
		}
		if entry != nil {
			m.mgr.OwnerAccess(h.id, page)
			if entry.Bitmap&(1<<uint(rec.Addr.LineInPage())) != 0 {
				// I' → ME (case ③): served from local DRAM, no CXL traffic.
				done := h.dram.Access(tR, m.localMigratedAddr(h.id, entry, rec.Addr), false)
				m.fillLLC(c, line, cache.MigratedExclusive)
				m.fillL1(c, line, cache.MigratedExclusive)
				if m.vals != nil {
					m.vals.serve(c, line, rec.Write, srcLocal, h.id)
				}
				st.Served[stats.ClassLocalShared]++
				return done, stats.ClassLocalShared
			}
		}
		return m.pipmDeviceAccess(tR, c, rec, page)
	}

	// Native / kernel-unmigrated: plain coherent CXL access.
	return m.cxlServe(tL, c, rec)
}

// pipmDeviceAccess is the PIPM/HW-static device-side flow: the global
// remapping lookup, the majority vote, and — when the line is migrated to
// another host — the forwarded inter-host fetch with incremental migration
// back to CXL (cases ②⑤⑥ of Fig. 9).
func (m *Machine) pipmDeviceAccess(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host
	st := m.col.Host(h.id)

	out := m.mgr.DeviceAccess(h.id, page)
	// The global remapping lookup happens on the device, in parallel with
	// the directory lookup; a cache miss adds an in-memory table read.
	extra := m.cfg.PIPM.GlobalRemapLatency
	if !out.GCacheHit {
		extra += m.cxlAccessTime(t, m.remapGlobalAddr(page))
	}

	if out.Promoted {
		m.trc.Emit(t, 0, telemetry.EvPromote, out.Owner, page, int64(h.id))
	}
	if out.Revoked {
		m.applyRevocation(t, page, out)
	}

	if g := out.Owner; g != pipmcore.NoHost && g != h.id && m.mgr.LineMigrated(g, page, rec.Addr.LineInPage()) {
		// The line's latest copy lives in host g's local DRAM (I'/ME).
		done := m.forwardedFetch(t+extra, c, rec, page, g)
		st.Served[stats.ClassInterHost]++
		return done, stats.ClassInterHost
	}

	return m.cxlServe(t+extra, c, rec)
}

// forwardedFetch prices the inter-host path to a migrated line: requester →
// device → owner (local remap + DRAM or cache) → device → requester, with
// the line demoted back to CXL memory and an asynchronous writeback.
func (m *Machine) forwardedFetch(t sim.Time, c *coreState, rec trace.Record, page int64, g int) sim.Time {
	h := c.host
	line := rec.Addr.Line()
	owner := m.hosts[g]

	lat := (m.fabric.HostToDevice(t, h.id, 0) - t) +
		(m.fabric.DirLookup(t, line) - t) +
		(m.fabric.DeviceToHost(t, g, 0) - t)

	// Owner side: if the block is cached (ME), it comes from the LLC and
	// the copy downgrades (⑥ Inter-Rd: ME→S) or invalidates (⑤ Inter-Wr);
	// otherwise (I') it is read from local DRAM with a remap-table lookup.
	ownSt, ownCached := owner.llc.Peek(line)
	if m.vals != nil {
		m.vals.forwardServe(c, line, rec.Write, ownCached && ownSt == cache.MigratedExclusive, g)
	}
	if ownCached && ownSt == cache.MigratedExclusive {
		lat += m.llcLat
		if rec.Write {
			m.invalidateLineEverywhere(owner, line)
		} else {
			owner.llc.SetState(line, cache.Shared)
			for _, oc := range owner.cores {
				oc.l1.SetState(line, cache.Shared)
			}
		}
	} else {
		lat += m.cfg.PIPM.LocalRemapLatency
		entry, _ := m.mgr.LocalLookup(g, page)
		if entry != nil {
			lat += owner.dram.Access(t, m.localMigratedAddr(g, entry, rec.Addr), false) - t
		} else {
			lat += owner.dram.Access(t, rec.Addr, false) - t
		}
	}

	// Migrate back: clear the bit, asynchronously write the block to CXL
	// memory, and let the device directory track the requester's copy.
	m.mgr.DemoteLine(g, page, rec.Addr.LineInPage())
	m.trc.Emit(t, 0, telemetry.EvLineDemote, g, page, int64(rec.Addr.LineInPage()))
	lat += m.fabric.HostToDevice(t, g, cxlDataBytes) - t
	m.cxlMem.Access(t, rec.Addr, true) // async in-memory update

	if rec.Write {
		m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int8(h.id)})
		m.fillLLC(c, line, cache.Modified)
		m.fillL1(c, line, cache.Modified)
	} else {
		sharers := uint32(1) << uint(h.id)
		if _, cached := owner.llc.Peek(line); cached {
			sharers |= 1 << uint(g)
		}
		m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: sharers})
		m.fillLLC(c, line, cache.Shared)
		m.fillL1(c, line, cache.Shared)
	}
	done := t + lat + (m.fabric.DeviceToHost(t, h.id, cxlDataBytes) - t)
	m.trc.Emit(t, done-t, telemetry.EvInterFetch, h.id, page, int64(g))
	return done
}

const cxlDataBytes = config.LineBytes

// cxlServe is the coherent CXL memory path shared by every cacheable
// scheme: request up, device directory lookup, then — depending on the
// directory state — a direct pooled-DRAM access, an owner forward, or a
// sharer invalidation round.
func (m *Machine) cxlServe(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	st := m.col.Host(h.id)

	// Every shared resource is reserved at issue time t (cores issue in
	// near-global time order, so arrivals stay monotone and FCFS queueing
	// is meaningful); the hop latencies then compose additively. Reserving
	// mid-walk instead would interleave deep-walk timestamps with other
	// cores' fresh issues and manufacture queueing that no real link sees.
	upLat := m.fabric.HostToDevice(t, h.id, 0) - t
	dirLat := m.fabric.DirLookup(t, line) - t
	e, ok := m.devDir.Lookup(line)

	var dataLat sim.Time
	fillSt := cache.Exclusive
	switch {
	case ok && e.State == coherence.DirModified && int(e.Owner) != h.id:
		// Owner forward (Fig. 2 ③④): device → owner cache → device.
		g := int(e.Owner)
		dataLat = (m.fabric.DeviceToHost(t, g, 0) - t) + m.llcLat +
			(m.fabric.HostToDevice(t, g, cxlDataBytes) - t)
		m.cxlMem.Access(t, rec.Addr, true) // async: memory now clean
		if m.vals != nil {
			m.vals.forwardServe(c, line, rec.Write, true, g)
		}
		if rec.Write {
			m.invalidateLineEverywhere(m.hosts[g], line)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int8(h.id)})
			fillSt = cache.Modified
		} else {
			m.downgradeLineAt(m.hosts[g], line)
			sharers := uint32(1)<<uint(g) | uint32(1)<<uint(h.id)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: sharers})
			fillSt = cache.Shared
		}

	case ok && e.State == coherence.DirShared:
		if rec.Write {
			// Invalidate every other sharer before granting ownership; the
			// invalidation round-trips overlap, so charge the slowest.
			var inv sim.Time
			coherence.ForEachSharer(e.Sharers, func(g int) {
				if g == h.id {
					return
				}
				ack := (m.fabric.DeviceToHost(t, g, 0) - t) + (m.fabric.HostToDevice(t, g, 0) - t)
				inv = sim.Max(inv, ack)
				m.invalidateLineEverywhere(m.hosts[g], line)
			})
			dataLat = inv + (m.cxlMem.Access(t, rec.Addr, false) - t)
			m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int8(h.id)})
			fillSt = cache.Modified
		} else {
			dataLat = m.cxlMem.Access(t, rec.Addr, false) - t
			m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: e.Sharers | 1<<uint(h.id)})
			fillSt = cache.Shared
		}
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCXL, 0)
		}

	default:
		// No cached copy anywhere (or we are the recorded owner after an
		// eviction raced the directory): serve from pooled DRAM (Fig. 2 ⑦).
		dataLat = m.cxlMem.Access(t, rec.Addr, false) - t
		if rec.Write {
			fillSt = cache.Modified
		} else {
			fillSt = cache.Exclusive
		}
		m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int8(h.id)})
		if m.vals != nil {
			m.vals.serve(c, line, rec.Write, srcCXL, 0)
		}
	}

	downLat := m.fabric.DeviceToHost(t, h.id, cxlDataBytes) - t
	done := t + upLat + dirLat + dataLat + downLat
	m.dbgUp += upLat
	m.dbgDir += dirLat
	m.dbgData += dataLat
	m.dbgDown += downLat
	m.dbgN++
	m.fillLLC(c, line, fillSt)
	m.fillL1(c, line, fillSt)
	st.Served[stats.ClassCXL]++
	return done, stats.ClassCXL
}

// DebugHops reports mean per-hop latency of the cxlServe path.
func (m *Machine) DebugHops() (up, dir, data, down sim.Time) {
	if m.dbgN == 0 {
		return
	}
	n := sim.Time(m.dbgN)
	return m.dbgUp / n, m.dbgDir / n, m.dbgData / n, m.dbgDown / n
}

// writeUpgrade obtains write permission for a shared-state line: the device
// directory invalidates other sharers, then grants M.
func (m *Machine) writeUpgrade(t sim.Time, c *coreState, rec trace.Record) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()

	lat := (m.fabric.HostToDevice(t, h.id, 0) - t) + (m.fabric.DirLookup(t, line) - t)
	if e, ok := m.devDir.Lookup(line); ok && e.State == coherence.DirShared {
		var inv sim.Time
		coherence.ForEachSharer(e.Sharers, func(g int) {
			if g == h.id {
				return
			}
			ack := (m.fabric.DeviceToHost(t, g, 0) - t) + (m.fabric.HostToDevice(t, g, 0) - t)
			inv = sim.Max(inv, ack)
			m.invalidateLineEverywhere(m.hosts[g], line)
		})
		lat += inv
	}
	done := t + lat + (m.fabric.DeviceToHost(t, h.id, 0) - t)
	m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int8(h.id)})
	h.llc.Fill(line, cache.Modified)
	c.l1.Fill(line, cache.Modified)
	m.invalidateOtherL1s(h, c, line)
	if m.vals != nil {
		m.vals.serve(c, line, true, srcCache, h.id)
	}
	m.col.Host(h.id).Served[stats.ClassCXL]++
	return done, stats.ClassCXL
}

// gimRemoteAccess is the non-cacheable 4-hop path to a page migrated into
// another host's local memory under a kernel scheme (Fig. 3 ①–⑤): no
// caching at the requester, every reference pays the full traversal.
func (m *Machine) gimRemoteAccess(t sim.Time, c *coreState, rec trace.Record, g int) (sim.Time, stats.Class) {
	h := c.host
	line := rec.Addr.Line()
	owner := m.hosts[g]

	reqBytes, respBytes := 0, cxlDataBytes
	if rec.Write {
		reqBytes, respBytes = cxlDataBytes, 0
	}
	lat := (m.fabric.HostToDevice(t, h.id, reqBytes) - t) +
		(m.fabric.DeviceToHost(t, g, reqBytes) - t) + m.llcLat

	// Owning host's local coherence directory (Fig. 3 ③): the LLC may hold
	// the freshest copy.
	_, ownerCached := owner.llc.Peek(line)
	if m.vals != nil {
		m.vals.gimServe(c, line, rec.Write, g, ownerCached)
	}
	if ownerCached {
		if rec.Write {
			m.invalidateLineEverywhere(owner, line)
			owner.dram.Access(t, rec.Addr, true) // async local update
		}
	} else {
		lat += owner.dram.Access(t, rec.Addr, rec.Write) - t
	}

	lat += (m.fabric.HostToDevice(t, g, respBytes) - t) +
		(m.fabric.DeviceToHost(t, h.id, respBytes) - t)
	m.col.Host(h.id).Served[stats.ClassInterHost]++
	return t + lat, stats.ClassInterHost
}

// ----------------------------------------------------------- fill paths --

// fillL1 installs a line in the requesting core's L1, folding any dirty
// victim into the LLC (free: on-chip).
func (m *Machine) fillL1(c *coreState, line config.Addr, st cache.State) {
	ev, evicted := c.l1.Fill(line, st)
	if evicted && ev.State.Dirty() {
		if s, present := c.host.llc.Peek(ev.Line); present && s != cache.MigratedExclusive {
			c.host.llc.SetState(ev.Line, cache.Modified)
		}
	}
}

// fillLLC installs a line in the host's LLC, handling the displaced victim:
// this is where PIPM's incremental migration happens (case ① of Fig. 9).
func (m *Machine) fillLLC(c *coreState, line config.Addr, st cache.State) {
	h := c.host
	ev, evicted := h.llc.Fill(line, st)
	if !evicted {
		return
	}
	m.handleLLCEviction(h, ev)
}

func (m *Machine) handleLLCEviction(h *host, ev cache.Eviction) {
	// Inclusion: the victim leaves every L1 too; a dirty L1 copy upgrades
	// the victim state.
	vState := ev.State
	for _, oc := range h.cores {
		if st, ok := oc.l1.Invalidate(ev.Line); ok && st.Dirty() && !vState.Dirty() {
			vState = cache.Modified
		}
	}

	addr := ev.Line << config.LineShift
	region, _ := m.amap.Region(addr)
	now := m.eng.Now()

	if region != config.RegionShared || m.scheme == migration.LocalOnly {
		// Private data — or the Local-only upper bound, whose "shared" data
		// is backed by local DRAM too.
		if vState.Dirty() {
			if m.vals != nil {
				m.vals.wbToLocal(h.id, ev.Line)
			}
			h.dram.Access(now, addr, true) // async writeback
		}
		return
	}

	page := m.amap.SharedPageIndex(addr)

	// ME eviction (case ④): dirty data returns to local DRAM only.
	if vState == cache.MigratedExclusive {
		entry, _ := m.mgr.LocalLookup(h.id, page)
		if entry != nil {
			if m.vals != nil {
				m.vals.wbToLocal(h.id, ev.Line)
			}
			h.dram.Access(now, m.localMigratedAddr(h.id, entry, addr), true)
		}
		return
	}

	// Kernel scheme with the page migrated here: plain local writeback.
	if m.pt != nil && m.pt.Owner(page) == h.id {
		if vState.Dirty() {
			if m.vals != nil {
				m.vals.wbToLocal(h.id, ev.Line)
			}
			h.dram.Access(now, addr, true)
		}
		return
	}

	// PIPM incremental migration (case ①): an M — or, with the E extension,
	// E — eviction of a block whose page is partially migrated to this host
	// writes the block to local DRAM and flips the in-memory bits instead
	// of writing back to CXL.
	if m.mgr != nil {
		if m.mgr.Owner(page) == h.id &&
			(vState == cache.Modified || (vState == cache.Exclusive && m.cfg.PIPM.MigrateOnExclusiveEviction)) {
			entry, _ := m.mgr.LocalLookup(h.id, page)
			if entry != nil && m.mgr.MigrateLine(h.id, page, int(ev.Line)&(config.LinesPerPage-1)) {
				if m.vals != nil {
					m.vals.wbToLocal(h.id, ev.Line)
				}
				m.trc.Emit(now, 0, telemetry.EvLineMigrate, h.id, page,
					int64(int(ev.Line)&(config.LinesPerPage-1)))
				h.dram.Access(now, m.localMigratedAddr(h.id, entry, addr), true)
				// The CXL-side in-memory bit flips too, but it lives in ECC
				// spare bits and piggybacks on subsequent accesses (§4.3.2
				// footnote) — a background header is the only traffic.
				m.fabric.HostToDeviceBG(now, h.id, 0)
				m.devDir.Remove(ev.Line)
				return
			}
		}
	}

	// Ordinary CXL writeback / silent clean eviction.
	if vState.Dirty() {
		if m.vals != nil {
			m.vals.wbToCXL(h.id, ev.Line)
		}
		t := m.fabric.HostToDeviceBG(now, h.id, cxlDataBytes)
		m.cxlMem.Access(t, addr, true)
		m.devDir.Remove(ev.Line)
	} else {
		m.devDir.RemoveSharer(ev.Line, h.id)
	}
}

// ------------------------------------------------------------- helpers --

// installDirEntry updates the device directory, servicing any capacity
// back-invalidation (the displaced line leaves all host caches; dirty data
// is written back asynchronously).
func (m *Machine) installDirEntry(line config.Addr, e coherence.Entry) {
	bi, evicted := m.devDir.Update(line, e)
	if !evicted {
		return
	}
	now := m.eng.Now()
	switch bi.Entry.State {
	case coherence.DirModified:
		g := int(bi.Entry.Owner)
		if m.vals != nil {
			m.vals.wbToCXL(g, bi.Line)
		}
		m.invalidateLineEverywhere(m.hosts[g], bi.Line)
		t := m.fabric.HostToDeviceBG(now, g, cxlDataBytes)
		m.cxlMem.Access(t, bi.Line<<config.LineShift, true)
	case coherence.DirShared:
		coherence.ForEachSharer(bi.Entry.Sharers, func(g int) {
			m.invalidateLineEverywhere(m.hosts[g], bi.Line)
		})
	}
}

// invalidateLineEverywhere drops a line from a host's LLC and every L1.
func (m *Machine) invalidateLineEverywhere(h *host, line config.Addr) {
	h.llc.Invalidate(line)
	for _, oc := range h.cores {
		oc.l1.Invalidate(line)
	}
}

// downgradeLineAt moves a host's copies of line to Shared.
func (m *Machine) downgradeLineAt(h *host, line config.Addr) {
	h.llc.SetState(line, cache.Shared)
	for _, oc := range h.cores {
		oc.l1.SetState(line, cache.Shared)
	}
}

// invalidateOtherL1s drops line from every L1 on the host except c's.
func (m *Machine) invalidateOtherL1s(h *host, c *coreState, line config.Addr) {
	for _, oc := range h.cores {
		if oc != c {
			oc.l1.Invalidate(line)
		}
	}
}

// applyRevocation prices a partial-migration revocation (§4.2 ⑥): every
// migrated block of the page moves from the old owner's local DRAM back to
// its original CXL location, and the owner's cached ME blocks drop.
func (m *Machine) applyRevocation(t sim.Time, page int64, out pipmcore.Outcome) {
	g := out.RevokedFrom
	owner := m.hosts[g]
	base := m.amap.SharedAddr(config.Addr(page) * config.PageBytes)
	if m.vals != nil {
		m.vals.revoke(page, g, out.RevokedBitmap)
	}
	m.trc.Emit(t, 0, telemetry.EvRevoke, g, page, int64(out.RevokedLines))
	// Dropped cache lines leave the device directory too; dirty copies —
	// CXL-backed M and cached ME alike — write back to CXL memory: the
	// page's remapping is gone, so local DRAM can no longer hold them.
	owner.llc.InvalidatePage(base.Page(), func(l config.Addr, st cache.State) {
		if st.Dirty() {
			wb := m.fabric.HostToDeviceBG(t, g, cxlDataBytes)
			m.cxlMem.Access(wb, l<<config.LineShift, true)
		}
		m.devDir.RemoveSharer(l, g)
	})
	for _, oc := range owner.cores {
		oc.l1.InvalidatePage(base.Page(), nil)
	}
	if out.RevokedLines == 0 {
		return
	}
	bytes := out.RevokedLines * config.LineBytes
	tt := owner.dram.AccessBulk(t, base, bytes, false)
	tt = m.fabric.HostToDeviceBG(tt, g, bytes)
	m.cxlMem.AccessBulk(tt, base, bytes, true)
	m.col.BytesMoved += uint64(bytes)
}

// localMigratedAddr maps a migrated block to an address in the owner's
// local DRAM window, derived from the allocated local PFN so bank mapping
// behaves like real placement.
func (m *Machine) localMigratedAddr(h int, entry *pipmcore.LocalEntry, addr config.Addr) config.Addr {
	off := (config.Addr(entry.PFN)*config.PageBytes + config.Addr(addr)&(config.PageBytes-1)) %
		config.Addr(m.cfg.LocalDRAM.CapacityBytes)
	return m.amap.PrivateAddr(h, off)
}

// remapTableAddr locates a page's local remapping leaf entry in the owner's
// local DRAM for table-walk pricing.
func (m *Machine) remapTableAddr(h int, page int64) config.Addr {
	off := config.Addr(page*4) % config.Addr(m.cfg.LocalDRAM.CapacityBytes)
	return m.amap.PrivateAddr(h, off)
}

// remapGlobalAddr locates a page's global remapping entry in CXL memory.
func (m *Machine) remapGlobalAddr(page int64) config.Addr {
	return m.amap.SharedAddr(config.Addr(page*2) % m.amap.SharedBytes())
}

// cxlAccessTime prices a single metadata access to CXL DRAM from the
// device side (no link traversal: the global remapping cache and table both
// live on the memory node), measured from the walk's current time t.
func (m *Machine) cxlAccessTime(t sim.Time, addr config.Addr) sim.Time {
	return m.cxlMem.Access(t, addr, false) - t
}
