package machine

import (
	"fmt"

	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
)

// The coherence auditor checks — on live simulator state, after every
// shared-data access — the same invariants the model checker proves on the
// abstract protocol (SWMR, directory precision, ME/I' consistency). The
// model checker covers the protocol as specified; the auditor covers the
// walk as implemented. It is off by default (it scans every host per
// access) and enabled by tests via EnableAudit.

// EnableAudit turns on per-access invariant checking. Call before Run.
// Violations are collected; AuditViolations returns them after the run.
func (m *Machine) EnableAudit() { m.audit = true }

// AuditViolations returns the invariant violations observed (nil when the
// auditor was off or everything held).
func (m *Machine) AuditViolations() []string { return m.auditErrs }

// auditLine checks the cross-host state of one shared line.
func (m *Machine) auditLine(line config.Addr) {
	if len(m.auditErrs) >= 16 {
		return // enough evidence; stop accumulating
	}
	exclusiveAt, sharers := -1, 0
	var exclusiveState cache.State
	for _, hs := range m.hosts {
		st, ok := hs.llc.Peek(line)
		if !ok {
			// Inclusion: no L1 may hold a line its LLC lost.
			for _, c := range hs.cores {
				if _, l1ok := c.l1.Peek(line); l1ok {
					m.fail("inclusion: host %d core %d caches line %#x absent from its LLC",
						hs.id, c.id, uint64(line))
				}
			}
			continue
		}
		switch st {
		case cache.Modified, cache.Exclusive, cache.MigratedExclusive:
			if exclusiveAt >= 0 {
				m.fail("SWMR: line %#x exclusive at hosts %d and %d", uint64(line), exclusiveAt, hs.id)
			}
			exclusiveAt = hs.id
			exclusiveState = st
		case cache.Shared:
			sharers++
		}
	}
	if exclusiveAt >= 0 && sharers > 0 {
		m.fail("SWMR: line %#x exclusive at host %d while %d hosts share it",
			uint64(line), exclusiveAt, sharers)
	}

	// ME implies the line is migrated to that host and the device
	// directory holds no entry (§4.3: migrated lines need none).
	if exclusiveAt >= 0 && exclusiveState == cache.MigratedExclusive {
		if m.mgr == nil {
			m.fail("ME: line %#x in ME without a PIPM manager", uint64(line))
			return
		}
		page := m.amap.SharedPageIndex(line << config.LineShift)
		if m.mgr.Owner(page) != exclusiveAt {
			m.fail("ME: line %#x ME at host %d but page owned by %d",
				uint64(line), exclusiveAt, m.mgr.Owner(page))
		}
		if _, ok := m.devDir.Lookup(line); ok {
			m.fail("ME: line %#x has a device directory entry while migrated", uint64(line))
		}
	}

	// Directory precision: an M entry's owner must actually hold the line
	// exclusively; S entries' sharers must hold it.
	if e, ok := m.devDir.Lookup(line); ok {
		switch e.State {
		case coherence.DirModified:
			st, held := m.hosts[e.Owner].llc.Peek(line)
			if !held || st == cache.Shared {
				m.fail("directory: line %#x M-owned by host %d which holds %v/%v",
					uint64(line), e.Owner, st, held)
			}
		case coherence.DirShared:
			coherence.ForEachSharer(e.Sharers, func(g int) {
				if _, held := m.hosts[g].llc.Peek(line); !held {
					m.fail("directory: line %#x lists sharer %d which holds nothing",
						uint64(line), g)
				}
			})
		}
	}
}

func (m *Machine) fail(format string, args ...interface{}) {
	m.auditErrs = append(m.auditErrs, fmt.Sprintf(format, args...))
}
