package machine

import (
	"fmt"

	"pipm/internal/audit"
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
)

// The runtime invariant auditor (DESIGN.md §12) checks — on live simulator
// state — the same invariants the model checker proves on the abstract
// protocol (SWMR, directory precision, ME/I' consistency) plus the global
// properties only a whole-state walk can see (conservation, remap-table
// agreement, footprint accounting). The model checker covers the protocol as
// specified, the golden digests pin observed behaviour, and the auditor
// covers the walk as implemented: three independent guards.
//
// The auditor is observation-only: every probe goes through Peek/ForEach
// accessors that never touch LRU state or statistics, so Result digests are
// bit-identical with auditing on or off (TestGoldenQuickSweepAudited). Off,
// it costs one nil/bool check per access (BenchmarkAuditorDisabledOverhead).

// auditTrailRing is the private event-ring capacity the auditor creates when
// trace telemetry is not enabled, so violations still carry a protocol trail.
const auditTrailRing = 256

// EnableAuditor attaches a runtime invariant auditor. Call after New and
// before Run; zero-mode options are a no-op. In Quantum mode the whole
// machine state is swept every Interval quanta; Paranoid mode additionally
// checks the touched line after every shared access and sweeps after every
// protocol transition (promotion, revocation, line migration, epoch
// migration). Check AuditReport after Run.
func (m *Machine) EnableAuditor(o audit.Options) error {
	if m.ran {
		return fmt.Errorf("machine: EnableAuditor after Run")
	}
	if !o.Enabled() {
		return nil
	}
	if m.aud != nil {
		return fmt.Errorf("machine: auditor already enabled")
	}
	m.aud = audit.New(o)
	m.auditEvery = m.quantum * sim.Time(m.aud.Options().Interval)
	if o.Mode == audit.Paranoid {
		m.audit = true
		m.auditParanoid = true
	}
	if m.trc == nil {
		// Violations report a bounded protocol-event trail; when trace
		// telemetry is off the auditor brings its own ring. TelemetryOutput
		// must keep returning nil in that case (see telemetry.go).
		m.trc = telemetry.NewTrace(auditTrailRing)
		m.auditOwnsTrc = true
	}
	m.auditTickFn = m.auditTick
	m.audScratch.init(m)
	return nil
}

// EnableAudit turns on the legacy per-access invariant checking (now the
// paranoid auditor mode). Call before Run; AuditViolations returns findings
// after the run.
func (m *Machine) EnableAudit() { _ = m.EnableAuditor(audit.Options{Mode: audit.Paranoid}) }

// AuditViolations returns the invariant violations observed as strings (nil
// when the auditor was off or everything held).
func (m *Machine) AuditViolations() []string {
	if m.aud == nil {
		return nil
	}
	var out []string
	for _, v := range m.aud.Report().Violations {
		out = append(out, fmt.Sprintf("%s: %s", v.Invariant, v.Detail))
	}
	return out
}

// AuditReport returns the auditor's findings (zero Report when disabled).
// Valid after Run; Report.Err() is the run-failing signal.
func (m *Machine) AuditReport() audit.Report {
	if m.aud == nil {
		return audit.Report{}
	}
	return m.aud.Report()
}

// auditFamily maps the machine's scheme family to the auditor's.
func (m *Machine) auditFamily() audit.Family {
	switch m.family {
	case migration.FamilyKernel:
		return audit.FamilyKernel
	case migration.FamilyHardware:
		return audit.FamilyHardware
	case migration.FamilyLocalOnly:
		return audit.FamilyLocalOnly
	default:
		return audit.FamilyNative
	}
}

// noteAuditTransition marks that a protocol transition happened; in paranoid
// mode the machine sweeps at the next consistent point (after the access
// returns — mid-access state is legitimately inconsistent, e.g. a directory
// entry installed before its fill).
func (m *Machine) noteAuditTransition() {
	if m.auditParanoid {
		m.auditPending = true
	}
}

// auditTick is the per-quantum sweep, driven by the sim event heap like the
// footprint sampler; it re-arms until the last core finishes.
func (m *Machine) auditTick() {
	if m.liveCores == 0 {
		return
	}
	m.auditSweep(true)
	m.eng.At(m.eng.Now()+m.auditEvery, m.auditTickFn)
}

// auditLine checks the cross-host state of one shared line (the paranoid
// per-access check; the quantum sweep applies the same rules to every line).
func (m *Machine) auditLine(line config.Addr) {
	if m.aud == nil {
		return
	}
	now := m.eng.Now()
	exclusiveAt, sharers := -1, 0
	var exclusiveState cache.State
	var holders, sharedHolders coherence.HostSet
	for _, hs := range m.hosts {
		st, ok := hs.llc.Peek(line)
		if !ok {
			// Inclusion: no L1 may hold a line its LLC lost.
			for _, c := range hs.cores {
				if _, l1ok := c.l1.Peek(line); l1ok {
					m.aud.Failf(now, m.trc, audit.InvInclusion,
						"host %d core %d caches line %#x absent from its LLC", hs.id, c.id, uint64(line))
				}
			}
			continue
		}
		holders.Add(hs.id)
		switch st {
		case cache.Modified, cache.Exclusive, cache.MigratedExclusive:
			if exclusiveAt >= 0 {
				m.aud.Failf(now, m.trc, audit.InvSWMR,
					"line %#x exclusive at hosts %d and %d", uint64(line), exclusiveAt, hs.id)
			}
			exclusiveAt = hs.id
			exclusiveState = st
		case cache.Shared:
			sharers++
			sharedHolders.Add(hs.id)
		}
	}
	if exclusiveAt >= 0 && sharers > 0 {
		m.aud.Failf(now, m.trc, audit.InvSWMR,
			"line %#x exclusive at host %d while %d hosts share it", uint64(line), exclusiveAt, sharers)
	}

	// ME implies the line is migrated to that host and the device directory
	// holds no entry (§4.3: migrated lines need none).
	if exclusiveAt >= 0 && exclusiveState == cache.MigratedExclusive {
		if m.mgr == nil {
			m.aud.Failf(now, m.trc, audit.InvMigrated,
				"line %#x in ME without a PIPM manager", uint64(line))
			return
		}
		page := m.amap.SharedPageIndex(line << config.LineShift)
		if m.mgr.Owner(page) != exclusiveAt {
			m.aud.Failf(now, m.trc, audit.InvMigrated,
				"line %#x ME at host %d but page owned by %d", uint64(line), exclusiveAt, m.mgr.Owner(page))
		}
		if _, ok := m.devDir.Peek(line); ok {
			m.aud.Failf(now, m.trc, audit.InvMigrated,
				"line %#x has a device directory entry while migrated", uint64(line))
		}
	}

	// Directory precision: an M entry's owner must actually hold the line
	// exclusively; S entries' sharers must hold it.
	if e, ok := m.devDir.Peek(line); ok {
		switch e.State {
		case coherence.DirModified:
			st, held := m.hosts[e.Owner].llc.Peek(line)
			if !held || st == cache.Shared {
				m.aud.Failf(now, m.trc, audit.InvDirPrecision,
					"line %#x M-owned by host %d which holds %v/%v", uint64(line), e.Owner, st, held)
			}
		case coherence.DirShared:
			if e.Sharers.Exact() {
				it := e.Sharers.Iter(len(m.hosts))
				for it.Next() {
					if !holders.Contains(it.Host()) {
						m.aud.Failf(now, m.trc, audit.InvDirPrecision,
							"line %#x lists sharer %d which holds nothing", uint64(line), it.Host())
					}
				}
			} else if !e.Sharers.Describes(sharedHolders) {
				// Summary sets can't name individual sharers; the invariant is
				// that the count is exact and every holder falls in a present
				// region.
				m.aud.Failf(now, m.trc, audit.InvDirPrecision,
					"line %#x sharer summary %v does not describe holders %v",
					uint64(line), e.Sharers, sharedHolders)
			}
		}
	}
}
