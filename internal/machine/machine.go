// Package machine assembles the full multi-host CXL-DSM system: N hosts
// (cores with private L1Ds and a shared LLC, local DRAM), the CXL fabric,
// the pooled CXL DRAM with its device coherence directory, and one of the
// eight page-placement schemes under evaluation. It runs per-core memory
// traces to completion on a deterministic event engine and exposes the
// measurements the paper's figures are built from.
//
// Fidelity notes (see DESIGN.md §3): cores use a bounded-MLP window model;
// cache/directory state updates apply at issue time; shared resources are
// FCFS servers. Cores execute in time-quantum batches, so cross-core
// resource ordering is exact only across quantum boundaries.
package machine

import (
	"fmt"

	"pipm/internal/audit"
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/cxl"
	"pipm/internal/mem"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/tlb"
	"pipm/internal/trace"
)

// Machine is one configured system instance. Build with New, attach one
// trace reader per core with SetTrace, then Run once.
type Machine struct {
	cfg    config.Config
	amap   config.AddressMap
	scheme migration.Kind

	eng    *sim.Engine
	fabric *cxl.Fabric
	cxlMem *mem.DRAM
	devDir *coherence.DeviceDir
	hosts  []*host

	// Kernel-scheme state.
	policy   migration.Policy
	pt       *migration.PageTable
	tlbModel *tlb.Model
	ledger   *migration.HarmfulLedger

	// Hardware-scheme state (PIPM, HW-static).
	mgr *pipmcore.Manager

	// Scheme-family routing, resolved once at build time (DESIGN.md §11):
	// the invariant walk dispatches through these three functions, which the
	// active family's route module binds; the hooks carry the per-access
	// placement decisions. No per-access registry lookups or interface
	// dispatch happen where a direct call suffices.
	family      migration.Family
	hooks       migration.SchemeHooks
	kHooks      *migration.KernelHooks   // non-nil iff family == FamilyKernel
	hwHooks     *migration.HardwareHooks // non-nil iff family == FamilyHardware
	routeShared func(sim.Time, *coreState, trace.Record, int64) (sim.Time, stats.Class)
	missShared  func(sim.Time, *coreState, trace.Record, int64) (sim.Time, stats.Class)
	evictShared func(h *host, now sim.Time, page int64, addr, line config.Addr, vState cache.State)
	auditShared bool // false when the family has no cross-host sharing semantics

	// Family knobs from the scheme descriptor.
	asyncKernelTransfer bool
	hintsOK             bool

	// Host-scaling geometry, resolved once from cfg.Hosts (DESIGN.md §16):
	// shShift selects the directory sharer-set representation (0 = exact
	// bitmask, >0 = region summary) and gEntryBytes is the hardware size of
	// one global remapping entry for metadata-address pricing.
	shShift     uint8
	gEntryBytes config.Addr

	// Pre-bound tick closures: scheduling a method value through eng.At
	// allocates a fresh closure per call; binding once keeps the periodic
	// re-arms allocation-free.
	kernelTickFn      func()
	sampleFootprintFn func()
	telemetryTickFn   func()

	col *stats.Collector

	// Cached timing constants.
	clock   sim.Clock
	l1Lat   sim.Time
	llcLat  sim.Time
	quantum sim.Time
	width   int64

	liveCores int
	ran       bool

	// Runtime invariant auditor (nil when disabled; see audit.go and
	// audit_sweep.go). audit gates the per-access line check on the walk;
	// auditPending defers paranoid-mode sweeps to the next consistent point.
	aud           *audit.Auditor
	audScratch    auditScratch
	auditTickFn   func()
	auditEvery    sim.Time
	audit         bool
	auditParanoid bool
	auditPending  bool
	auditOwnsTrc  bool

	// Value-tracking layer for differential conformance testing (nil when
	// disabled); see values.go.
	vals *valTracker

	// Intra-run parallel engine configuration (see intra.go); the zero
	// value keeps the classic sequential engine.
	intra IntraOptions

	// Telemetry (nil handles when disabled; see telemetry.go). Hot paths
	// call nil-safe methods, so the disabled cost is one predictable branch.
	tel    *telemetry.Registry
	trc    *telemetry.Trace
	telLat [stats.NumClasses]*telemetry.Histogram
	telOpt telemetry.Options

	dbgUp, dbgDir, dbgData, dbgDown sim.Time
	dbgN                            uint64
}

func newCollector(cfg config.Config) *stats.Collector {
	c := stats.New(cfg.Hosts)
	c.CoresPerHost = cfg.CoresPerHost
	return c
}

type host struct {
	id    int
	llc   *cache.Cache
	dram  *mem.DRAM
	cores []*coreState
}

// New builds a machine for the given configuration and scheme. The config
// is validated; traces must be attached before Run.
func New(cfg config.Config, scheme migration.Kind) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ent, ok := migration.Lookup(scheme)
	if !ok {
		return nil, fmt.Errorf("machine: unregistered scheme %v", scheme)
	}
	m := &Machine{
		cfg:     cfg,
		amap:    config.NewAddressMap(&cfg),
		scheme:  scheme,
		eng:     sim.NewEngine(),
		fabric:  cxl.New(cfg.Hosts, cfg.CXL),
		cxlMem:  mem.New("cxl", cfg.CXLDRAM),
		devDir:  coherence.NewDeviceDir(cfg.CXL),
		col:     newCollector(cfg),
		clock:   cfg.CoreClock(),
		l1Lat:   cfg.L1D.Latency,
		llcLat:  cfg.LLC.Latency,
		quantum: 100 * sim.Nanosecond,
		width:   int64(cfg.Width),

		shShift:     coherence.SharerShiftFor(cfg.Hosts),
		gEntryBytes: config.Addr(cfg.GlobalRemapEntrySize()),
	}
	llcCfg := cfg.LLC
	llcCfg.SizeBytes *= cfg.CoresPerHost // Table 2: 2MB per core, shared
	for h := 0; h < cfg.Hosts; h++ {
		hs := &host{
			id:   h,
			llc:  cache.New(fmt.Sprintf("h%d.llc", h), llcCfg),
			dram: mem.New(fmt.Sprintf("h%d.dram", h), cfg.LocalDRAM),
		}
		for c := 0; c < cfg.CoresPerHost; c++ {
			hs.cores = append(hs.cores, &coreState{
				host:   hs,
				id:     c,
				l1:     cache.New(fmt.Sprintf("h%d.c%d.l1d", h, c), cfg.L1D),
				tlb:    tlb.NewTLB(cfg.TLBEntries, cfg.TLBWays),
				window: make([]pending, cfg.MSHRs),
			})
		}
		m.hosts = append(m.hosts, hs)
	}

	// Build the family's state, its SchemeHooks, and bind the route module
	// (DESIGN.md §11). The registry descriptor carries everything
	// scheme-specific; nothing below names an individual scheme.
	pages := cfg.SharedPages()
	m.family = ent.Family
	m.asyncKernelTransfer = ent.AsyncTransfer
	m.hintsOK = ent.Hints
	switch ent.Family {
	case migration.FamilyKernel:
		m.pt = migration.NewPageTable(pages, cfg.Hosts)
		m.tlbModel = tlb.NewModel(cfg.Kernel)
		m.ledger = migration.NewHarmfulLedger(m.estLocalLat(), m.estCXLLat(), m.estInterLat())
		m.policy = ent.NewPolicy(migration.PolicyParams{
			Pages:     pages,
			Hosts:     cfg.Hosts,
			Threshold: cfg.PIPM.MigrationThreshold,
		})
		m.kHooks = migration.NewKernelHooks(m.policy, m.pt, m.ledger)
		m.hooks = m.kHooks
		m.bindKernelRoutes()
	case migration.FamilyHardware:
		m.mgr = pipmcore.NewManager(pipmcore.Params{
			Hosts:              cfg.Hosts,
			SharedPages:        pages,
			Threshold:          cfg.PIPM.MigrationThreshold,
			GlobalCacheEntries: cfg.GlobalRemapCacheEntries(),
			GlobalCacheWays:    cfg.PIPM.GlobalRemapCacheWays,
			LocalCacheEntries:  cfg.LocalRemapCacheEntries(),
			LocalCacheWays:     cfg.PIPM.LocalRemapCacheWays,
			Static:             ent.StaticMap,
		})
		m.hwHooks = migration.NewHardwareHooks(m.mgr, cfg.PIPM.MigrateOnExclusiveEviction)
		m.hooks = m.hwHooks
		m.bindHardwareRoutes()
	case migration.FamilyLocalOnly:
		m.hooks = migration.NopHooks{}
		m.bindLocalOnlyRoutes()
	default:
		m.hooks = migration.NopHooks{}
		m.bindNativeRoutes()
	}
	m.kernelTickFn = m.kernelTick
	m.sampleFootprintFn = m.sampleFootprint
	m.telemetryTickFn = m.telemetryTick
	return m, nil
}

// Family returns the scheme family the machine was built for.
func (m *Machine) Family() migration.Family { return m.family }

// SchemeHooks returns the active family's hook implementation.
func (m *Machine) SchemeHooks() migration.SchemeHooks { return m.hooks }

// Config returns the machine's configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// AddressMap returns the machine's unified physical address layout.
func (m *Machine) AddressMap() config.AddressMap { return m.amap }

// Scheme returns the placement scheme under evaluation.
func (m *Machine) Scheme() migration.Kind { return m.scheme }

// SetTrace attaches a record stream to core c of host h.
func (m *Machine) SetTrace(h, c int, r trace.Reader) {
	m.hosts[h].cores[c].rd = r
}

// Stats returns the collector (valid after Run).
func (m *Machine) Stats() *stats.Collector { return m.col }

// HarmfulFraction returns Fig. 5's metric for kernel schemes, 0 otherwise.
func (m *Machine) HarmfulFraction() float64 {
	if m.ledger == nil {
		return 0
	}
	return m.ledger.HarmfulFraction()
}

// Manager exposes PIPM hardware state for hardware schemes (nil otherwise).
func (m *Machine) Manager() *pipmcore.Manager { return m.mgr }

// Fabric exposes the CXL fabric for traffic inspection.
func (m *Machine) Fabric() *cxl.Fabric { return m.fabric }

// ExecTime returns the run's makespan.
func (m *Machine) ExecTime() sim.Time { return m.col.ExecTime() }

// IPC returns aggregate instructions per core-cycle.
func (m *Machine) IPC() float64 { return m.col.IPC(m.clock, m.cfg.TotalCores()) }

// Run executes all attached traces to completion. It may be called once.
func (m *Machine) Run() error {
	if m.ran {
		return fmt.Errorf("machine: Run called twice")
	}
	m.ran = true
	for _, hs := range m.hosts {
		for _, c := range hs.cores {
			if c.rd == nil {
				return fmt.Errorf("machine: host %d core %d has no trace", hs.id, c.id)
			}
			m.liveCores++
		}
	}
	if !m.intra.Enabled() {
		if w := envIntraWorkers(); w > 0 {
			m.intra = IntraOptions{Workers: w}
		}
	}
	if m.intra.Enabled() {
		m.setupIntra()
	}
	// Core step chains live on their host's partition; every periodic tick
	// chain lives on partition 0, the windowed runner's barrier partition.
	// In classic (non-intra) mode AtPart is At, and the At call order below
	// fixes the same (time, seq) total order either way.
	for _, hs := range m.hosts {
		for _, c := range hs.cores {
			// One step closure per core for the whole run: stepCore re-arms
			// with it, so the per-quantum re-schedule never allocates.
			c := c
			c.step = func() { m.stepCore(c) }
			m.eng.AtPart(1+hs.id, 0, c.step)
		}
	}
	if m.policy != nil {
		m.eng.AtPart(0, m.cfg.Kernel.Interval, m.kernelTickFn)
	}
	// Footprint sampling for every scheme, on the kernel interval cadence.
	m.eng.AtPart(0, m.cfg.Kernel.Interval/2, m.sampleFootprintFn)
	if m.tel != nil {
		// Baseline snapshot at t=0 (after every core's first step, which is
		// scheduled earlier at the same instant), then interval ticks.
		m.eng.AtPart(0, 0, func() { m.tel.Snapshot(0) })
		m.eng.AtPart(0, m.telOpt.SampleInterval, m.telemetryTickFn)
	}
	if m.aud != nil {
		m.eng.AtPart(0, m.auditEvery, m.auditTickFn)
	}
	if m.intra.Enabled() {
		m.eng.RunWindowed()
	} else {
		m.eng.Run()
	}
	if m.aud != nil {
		// Closing sweep over the final state.
		m.auditSweep(true)
	}
	if m.ledger != nil {
		m.ledger.Finish()
	}
	m.finalizeStats()
	if m.tel != nil {
		// Closing snapshot: the final state at the run's makespan.
		m.tel.Snapshot(m.eng.Now())
	}
	return nil
}

func (m *Machine) finalizeStats() {
	for _, hs := range m.hosts {
		st := m.col.Host(hs.id)
		for _, c := range hs.cores {
			st.Instructions += c.instr
			st.MemOps += c.memOps
			st.FinishTime = sim.Max(st.FinishTime, c.finish)
		}
	}
	if m.mgr != nil {
		ms := m.mgr.Stats()
		m.col.Promotions = ms.Promotions
		m.col.Demotions = ms.Revocations
		m.col.LinesMoved = ms.LinesMigrated
	}
}

// Latency estimates for the harmful-migration ledger, derived from the
// configuration rather than measured, so the ledger is scheme-independent.
func (m *Machine) estLocalLat() sim.Time {
	d := m.cfg.LocalDRAM
	return d.TRCD + d.TCL + 2*sim.Nanosecond
}

func (m *Machine) estCXLLat() sim.Time {
	perDir := m.cfg.CXL.LinkLatency*sim.Time(1+m.cfg.CXL.SwitchHops) + 13*sim.Nanosecond
	return 2*perDir + m.cfg.CXL.DirLatency + m.estLocalLat()
}

func (m *Machine) estInterLat() sim.Time {
	perDir := m.cfg.CXL.LinkLatency*sim.Time(1+m.cfg.CXL.SwitchHops) + 13*sim.Nanosecond
	return 4*perDir + m.cfg.CXL.DirLatency + m.estLocalLat() + m.llcLat
}

// sampleFootprint records each host's resident migrated pages/lines.
func (m *Machine) sampleFootprint() {
	if m.liveCores == 0 {
		return
	}
	for h := 0; h < m.cfg.Hosts; h++ {
		var pages, lines int64
		switch {
		case m.pt != nil:
			pages = int64(m.pt.Resident(h))
			lines = pages * config.LinesPerPage
		case m.mgr != nil:
			pages = int64(m.mgr.MigratedPages(h))
			lines = int64(m.mgr.MigratedLines(h))
		}
		m.col.SampleFootprint(h, pages, lines)
	}
	m.eng.At(m.eng.Now()+m.cfg.Kernel.Interval, m.sampleFootprintFn)
}
