// Package machine assembles the full multi-host CXL-DSM system: N hosts
// (cores with private L1Ds and a shared LLC, local DRAM), the CXL fabric,
// the pooled CXL DRAM with its device coherence directory, and one of the
// eight page-placement schemes under evaluation. It runs per-core memory
// traces to completion on a deterministic event engine and exposes the
// measurements the paper's figures are built from.
//
// Fidelity notes (see DESIGN.md §3): cores use a bounded-MLP window model;
// cache/directory state updates apply at issue time; shared resources are
// FCFS servers. Cores execute in time-quantum batches, so cross-core
// resource ordering is exact only across quantum boundaries.
package machine

import (
	"fmt"

	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/cxl"
	"pipm/internal/mem"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/tlb"
	"pipm/internal/trace"
)

// Machine is one configured system instance. Build with New, attach one
// trace reader per core with SetTrace, then Run once.
type Machine struct {
	cfg    config.Config
	amap   config.AddressMap
	scheme migration.Kind

	eng    *sim.Engine
	fabric *cxl.Fabric
	cxlMem *mem.DRAM
	devDir *coherence.DeviceDir
	hosts  []*host

	// Kernel-scheme state.
	policy   migration.Policy
	pt       *migration.PageTable
	tlbModel *tlb.Model
	ledger   *migration.HarmfulLedger

	// Hardware-scheme state (PIPM, HW-static).
	mgr *pipmcore.Manager

	col *stats.Collector

	// Cached timing constants.
	clock   sim.Clock
	l1Lat   sim.Time
	llcLat  sim.Time
	quantum sim.Time
	width   int64

	liveCores int
	ran       bool

	audit     bool
	auditErrs []string

	// Value-tracking layer for differential conformance testing (nil when
	// disabled); see values.go.
	vals *valTracker

	// Telemetry (nil handles when disabled; see telemetry.go). Hot paths
	// call nil-safe methods, so the disabled cost is one predictable branch.
	tel    *telemetry.Registry
	trc    *telemetry.Trace
	telLat [stats.NumClasses]*telemetry.Histogram
	telOpt telemetry.Options

	dbgUp, dbgDir, dbgData, dbgDown sim.Time
	dbgN                            uint64
}

func newCollector(cfg config.Config) *stats.Collector {
	c := stats.New(cfg.Hosts)
	c.CoresPerHost = cfg.CoresPerHost
	return c
}

type host struct {
	id    int
	llc   *cache.Cache
	dram  *mem.DRAM
	cores []*coreState
}

// New builds a machine for the given configuration and scheme. The config
// is validated; traces must be attached before Run.
func New(cfg config.Config, scheme migration.Kind) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:     cfg,
		amap:    config.NewAddressMap(&cfg),
		scheme:  scheme,
		eng:     sim.NewEngine(),
		fabric:  cxl.New(cfg.Hosts, cfg.CXL),
		cxlMem:  mem.New("cxl", cfg.CXLDRAM),
		devDir:  coherence.NewDeviceDir(cfg.CXL),
		col:     newCollector(cfg),
		clock:   cfg.CoreClock(),
		l1Lat:   cfg.L1D.Latency,
		llcLat:  cfg.LLC.Latency,
		quantum: 100 * sim.Nanosecond,
		width:   int64(cfg.Width),
	}
	llcCfg := cfg.LLC
	llcCfg.SizeBytes *= cfg.CoresPerHost // Table 2: 2MB per core, shared
	for h := 0; h < cfg.Hosts; h++ {
		hs := &host{
			id:   h,
			llc:  cache.New(fmt.Sprintf("h%d.llc", h), llcCfg),
			dram: mem.New(fmt.Sprintf("h%d.dram", h), cfg.LocalDRAM),
		}
		for c := 0; c < cfg.CoresPerHost; c++ {
			hs.cores = append(hs.cores, &coreState{
				host: hs,
				id:   c,
				l1:   cache.New(fmt.Sprintf("h%d.c%d.l1d", h, c), cfg.L1D),
				tlb:  tlb.NewTLB(cfg.TLBEntries, cfg.TLBWays),
			})
		}
		m.hosts = append(m.hosts, hs)
	}

	pages := cfg.SharedPages()
	switch {
	case scheme.Kernel():
		m.pt = migration.NewPageTable(pages, cfg.Hosts)
		m.tlbModel = tlb.NewModel(cfg.Kernel)
		m.ledger = migration.NewHarmfulLedger(m.estLocalLat(), m.estCXLLat(), m.estInterLat())
		switch scheme {
		case migration.Nomad:
			m.policy = migration.NewNomad(pages, cfg.Hosts)
		case migration.Memtis:
			m.policy = migration.NewMemtis(pages, cfg.Hosts)
		case migration.HeMem:
			m.policy = migration.NewHeMem(pages, cfg.Hosts)
		case migration.OSSkew:
			m.policy = migration.NewOSSkew(pages, cfg.Hosts, cfg.PIPM.MigrationThreshold)
		}
	case scheme.Hardware():
		m.mgr = pipmcore.NewManager(pipmcore.Params{
			Hosts:              cfg.Hosts,
			SharedPages:        pages,
			Threshold:          cfg.PIPM.MigrationThreshold,
			GlobalCacheEntries: cfg.GlobalRemapCacheEntries(),
			GlobalCacheWays:    cfg.PIPM.GlobalRemapCacheWays,
			LocalCacheEntries:  cfg.LocalRemapCacheEntries(),
			LocalCacheWays:     cfg.PIPM.LocalRemapCacheWays,
			Static:             scheme == migration.HWStatic,
		})
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// AddressMap returns the machine's unified physical address layout.
func (m *Machine) AddressMap() config.AddressMap { return m.amap }

// Scheme returns the placement scheme under evaluation.
func (m *Machine) Scheme() migration.Kind { return m.scheme }

// SetTrace attaches a record stream to core c of host h.
func (m *Machine) SetTrace(h, c int, r trace.Reader) {
	m.hosts[h].cores[c].rd = r
}

// Stats returns the collector (valid after Run).
func (m *Machine) Stats() *stats.Collector { return m.col }

// HarmfulFraction returns Fig. 5's metric for kernel schemes, 0 otherwise.
func (m *Machine) HarmfulFraction() float64 {
	if m.ledger == nil {
		return 0
	}
	return m.ledger.HarmfulFraction()
}

// Manager exposes PIPM hardware state for hardware schemes (nil otherwise).
func (m *Machine) Manager() *pipmcore.Manager { return m.mgr }

// Fabric exposes the CXL fabric for traffic inspection.
func (m *Machine) Fabric() *cxl.Fabric { return m.fabric }

// ExecTime returns the run's makespan.
func (m *Machine) ExecTime() sim.Time { return m.col.ExecTime() }

// IPC returns aggregate instructions per core-cycle.
func (m *Machine) IPC() float64 { return m.col.IPC(m.clock, m.cfg.TotalCores()) }

// Run executes all attached traces to completion. It may be called once.
func (m *Machine) Run() error {
	if m.ran {
		return fmt.Errorf("machine: Run called twice")
	}
	m.ran = true
	for _, hs := range m.hosts {
		for _, c := range hs.cores {
			if c.rd == nil {
				return fmt.Errorf("machine: host %d core %d has no trace", hs.id, c.id)
			}
			m.liveCores++
		}
	}
	for _, hs := range m.hosts {
		for _, c := range hs.cores {
			c := c
			m.eng.At(0, func() { m.stepCore(c) })
		}
	}
	if m.scheme.Kernel() {
		m.eng.At(m.cfg.Kernel.Interval, m.kernelTick)
	}
	// Footprint sampling for every scheme, on the kernel interval cadence.
	m.eng.At(m.cfg.Kernel.Interval/2, m.sampleFootprint)
	if m.tel != nil {
		// Baseline snapshot at t=0 (after every core's first step, which is
		// scheduled earlier at the same instant), then interval ticks.
		m.eng.At(0, func() { m.tel.Snapshot(0) })
		m.eng.At(m.telOpt.SampleInterval, m.telemetryTick)
	}
	m.eng.Run()
	if m.ledger != nil {
		m.ledger.Finish()
	}
	m.finalizeStats()
	if m.tel != nil {
		// Closing snapshot: the final state at the run's makespan.
		m.tel.Snapshot(m.eng.Now())
	}
	return nil
}

func (m *Machine) finalizeStats() {
	for _, hs := range m.hosts {
		st := m.col.Host(hs.id)
		for _, c := range hs.cores {
			st.Instructions += c.instr
			st.MemOps += c.memOps
			st.FinishTime = sim.Max(st.FinishTime, c.finish)
		}
	}
	if m.mgr != nil {
		ms := m.mgr.Stats()
		m.col.Promotions = ms.Promotions
		m.col.Demotions = ms.Revocations
		m.col.LinesMoved = ms.LinesMigrated
	}
}

// Latency estimates for the harmful-migration ledger, derived from the
// configuration rather than measured, so the ledger is scheme-independent.
func (m *Machine) estLocalLat() sim.Time {
	d := m.cfg.LocalDRAM
	return d.TRCD + d.TCL + 2*sim.Nanosecond
}

func (m *Machine) estCXLLat() sim.Time {
	perDir := m.cfg.CXL.LinkLatency*sim.Time(1+m.cfg.CXL.SwitchHops) + 13*sim.Nanosecond
	return 2*perDir + m.cfg.CXL.DirLatency + m.estLocalLat()
}

func (m *Machine) estInterLat() sim.Time {
	perDir := m.cfg.CXL.LinkLatency*sim.Time(1+m.cfg.CXL.SwitchHops) + 13*sim.Nanosecond
	return 4*perDir + m.cfg.CXL.DirLatency + m.estLocalLat() + m.llcLat
}

// kernelTick is the epoch boundary of kernel-based schemes: run the policy,
// price the management and transfer work, and apply the page moves.
func (m *Machine) kernelTick() {
	if m.liveCores == 0 {
		return
	}
	now := m.eng.Now()
	budget := int(float64(m.cfg.SharedPages()) * m.cfg.Kernel.MaxLocalFrac)
	if budget < 1 {
		budget = 1
	}
	ops := m.policy.Tick(m.pt, budget)
	if max := m.cfg.Kernel.MaxPagesPerEpoch; max > 0 && len(ops) > max {
		ops = ops[:max]
	}

	if len(ops) > 0 {
		costs := m.tlbModel.ForPages(len(ops))
		// Batched TLB shootdowns stall every core in the system.
		for _, hs := range m.hosts {
			for _, c := range hs.cores {
				c.pendingMgmt += costs.Remote
			}
		}
		m.trc.Emit(now, costs.Remote, telemetry.EvShootdown, telemetry.DeviceHost,
			int64(len(ops)), 0)
		for _, op := range ops {
			m.applyKernelOp(now, op)
		}
	}
	m.eng.At(now+m.cfg.Kernel.Interval, m.kernelTick)
}

func (m *Machine) applyKernelOp(now sim.Time, op migration.Op) {
	from := m.pt.Owner(op.Page)
	if from == op.To {
		return
	}
	base := m.amap.SharedAddr(config.Addr(op.Page) * config.PageBytes)
	if m.vals != nil {
		// Values move with the page; must precede the invalidations below so
		// dirty cached copies can still be folded in.
		m.vals.kernelMove(op.Page, from, op.To)
	}

	// All hosts drop cached lines and TLB translations of the page: its
	// unified PA changes. Dirty data is folded into the page copy below.
	firstLine := base.Line()
	for _, hs := range m.hosts {
		hs.llc.InvalidatePage(base.Page(), nil)
		for _, c := range hs.cores {
			c.l1.InvalidatePage(base.Page(), nil)
			if c.tlb != nil {
				c.tlb.Invalidate(base.Page())
			}
		}
	}
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		m.devDir.Remove(firstLine + l)
	}

	// Price the data transfer (asynchronous: occupies DRAM and link
	// bandwidth, contending with demand traffic, but stalls no core by
	// itself).
	initiator := op.To
	if initiator == migration.ToCXL {
		initiator = from
	}
	if op.To != migration.ToCXL {
		// CXL → local: pooled read, link down to the new owner, local write.
		t := m.cxlMem.AccessBulk(now, base, config.PageBytes, false)
		t = m.fabric.DeviceToHostBG(t, op.To, config.PageBytes)
		done := m.hosts[op.To].dram.AccessBulk(t, base, config.PageBytes, true)
		m.col.Promotions++
		m.ledger.OnMigration(op.Page, op.To)
		m.trc.Emit(now, done-now, telemetry.EvPromote, op.To, op.Page, int64(from))
	} else {
		// Local → CXL: local read, link up, pooled write.
		t := m.hosts[from].dram.AccessBulk(now, base, config.PageBytes, false)
		t = m.fabric.HostToDeviceBG(t, from, config.PageBytes)
		done := m.cxlMem.AccessBulk(t, base, config.PageBytes, true)
		m.col.Demotions++
		m.ledger.OnDemotion(op.Page)
		m.trc.Emit(now, done-now, telemetry.EvDemote, from, op.Page, 0)
	}
	m.col.BytesMoved += config.PageBytes

	// The initiating host additionally does the per-page kernel work
	// (unmap, copy management, remap): a synchronous stall, spread across
	// the host's cores (the paper applies multi-threaded, batched page
	// transfers) — except under Nomad, whose transactional migration runs
	// it asynchronously.
	if m.scheme != migration.Nomad {
		cores := m.hosts[initiator].cores
		core := cores[int(m.col.Promotions+m.col.Demotions)%len(cores)]
		core.pendingTransfer += m.tlbModel.InitiatorPerPage()
	}

	m.pt.Set(op.Page, op.To)
}

// sampleFootprint records each host's resident migrated pages/lines.
func (m *Machine) sampleFootprint() {
	if m.liveCores == 0 {
		return
	}
	for h := 0; h < m.cfg.Hosts; h++ {
		var pages, lines int64
		switch {
		case m.pt != nil:
			pages = int64(m.pt.Resident(h))
			lines = pages * config.LinesPerPage
		case m.mgr != nil:
			pages = int64(m.mgr.MigratedPages(h))
			lines = int64(m.mgr.MigratedLines(h))
		}
		m.col.SampleFootprint(h, pages, lines)
	}
	m.eng.At(m.eng.Now()+m.cfg.Kernel.Interval, m.sampleFootprint)
}
