package machine

import (
	"fmt"
	"math/bits"

	"pipm/internal/audit"
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/migration"
	"pipm/internal/sim"
)

// The whole-state sweep: at a consistent point (quantum boundary, or after
// an access/epoch tick in paranoid mode) the machine aggregates every host's
// cached view of each shared line, joins it with the device directory and the
// family's migration state, and hands compact fact records to the audit
// package's rules. Everything here reads through observation-only accessors
// (Peek/ForEach) — an audited run's Result is bit-identical to an unaudited
// one — and reuses epoch-stamped scratch arrays so repeated sweeps don't
// churn the heap.

// lineAgg accumulates one shared line's cross-host state during a sweep.
type lineAgg struct {
	stamp     uint32
	holders   coherence.HostSet // hosts with a valid LLC copy
	shared    coherence.HostSet // hosts holding Shared
	l1        coherence.HostSet // hosts with any L1 copy
	exclCount uint8
	exclHost  int16
	exclState cache.State
	hasDir    bool
	dir       coherence.Entry
}

// auditScratch is the sweep's reusable working set. The agg array covers the
// whole shared region indexed by line; the epoch stamp makes "clearing" it
// an O(1) counter bump.
type auditScratch struct {
	baseLine  config.Addr // first shared line address
	lines     int64       // shared lines
	stamp     uint32
	agg       []lineAgg
	touched   []int32
	pageStamp []uint32 // per-page epoch marks (remap-cache duplicate detection)
	pageEpoch uint32
	// Pre-built remap-cache names so sweeps don't format strings.
	lcNames []string
	// Host-sized residency recount scratch (the host cap is 256 now, so a
	// fixed [32] array no longer covers every cluster).
	walkPages, walkLines []int64
}

func (a *auditScratch) init(m *Machine) {
	a.baseLine = m.amap.SharedAddr(0) >> config.LineShift
	a.lines = int64(m.amap.SharedBytes()) / config.LineBytes
	a.agg = make([]lineAgg, a.lines)
	a.touched = make([]int32, 0, 4096)
	a.pageStamp = make([]uint32, m.cfg.SharedPages())
	for h := 0; h < m.cfg.Hosts; h++ {
		a.lcNames = append(a.lcNames, fmt.Sprintf("h%d.local-remap-cache", h))
	}
	a.walkPages = make([]int64, m.cfg.Hosts)
	a.walkLines = make([]int64, m.cfg.Hosts)
}

// aggFor returns the scratch cell for a line address, lazily resetting it on
// first touch this sweep; nil for lines outside the shared region.
func (m *Machine) aggFor(line config.Addr) *lineAgg {
	a := &m.audScratch
	idx := int64(line) - int64(a.baseLine)
	if idx < 0 || idx >= a.lines {
		return nil
	}
	g := &a.agg[idx]
	if g.stamp != a.stamp {
		*g = lineAgg{stamp: a.stamp, exclHost: -1}
		a.touched = append(a.touched, int32(idx))
	}
	return g
}

// auditSweep walks the machine state once and applies every rule. The
// remap-cache content walks are O(cache capacity) — far more than the live
// protocol state — so they run only on full sweeps (the periodic tick and
// the closing sweep); per-transition paranoid sweeps pass full=false and
// keep every line-, page- and conservation-level check.
func (m *Machine) auditSweep(full bool) {
	if m.aud == nil {
		return
	}
	m.aud.NoteSweep()
	a := &m.audScratch
	a.stamp++
	a.touched = a.touched[:0]
	now := m.eng.Now()

	// Pass 1: aggregate cached copies and directory entries per line.
	for _, hs := range m.hosts {
		hid := int16(hs.id)
		hs.llc.ForEach(func(line config.Addr, st cache.State) {
			g := m.aggFor(line)
			if g == nil {
				return
			}
			g.holders.Add(hs.id)
			if st == cache.Shared {
				g.shared.Add(hs.id)
			} else {
				g.exclCount++
				g.exclHost = hid
				g.exclState = st
			}
		})
		for _, c := range hs.cores {
			c.l1.ForEach(func(line config.Addr, _ cache.State) {
				if g := m.aggFor(line); g != nil {
					g.l1.Add(hs.id)
				}
			})
		}
	}
	// Directory entries are joined by probing each cached line rather than
	// scanning the directory's full backing array (sets×ways×slices entries,
	// nearly all invalid): Peek is O(ways) per touched line. Any entry NOT
	// covered by a cached line is a conservation violation ("dir entry with
	// no holders") — those can't be found by probing, so the probe count is
	// cross-checked against Occupancy and the full scan runs only on
	// mismatch, to name the strays.
	dirFound := 0
	for _, idx := range a.touched {
		g := &a.agg[idx]
		if e, ok := m.devDir.Peek(a.baseLine + config.Addr(idx)); ok {
			g.hasDir = true
			g.dir = e
			dirFound++
		}
	}
	if dirFound != m.devDir.Occupancy() {
		m.devDir.ForEach(func(line config.Addr, e coherence.Entry) {
			if g := m.aggFor(line); g != nil && !g.hasDir {
				g.hasDir = true
				g.dir = e
			}
		})
	}

	// Pass 2: per-line rules over every line that is cached or tracked.
	fam := m.auditFamily()
	var f audit.LineFacts
	for _, idx := range a.touched {
		g := &a.agg[idx]
		page := int64(idx) >> config.PageLineShift
		lip := int(idx) & (config.LinesPerPage - 1)
		f = audit.LineFacts{
			Line:        a.baseLine + config.Addr(idx),
			HolderMask:  g.holders,
			SharedMask:  g.shared,
			L1StrayMask: g.l1.Minus(g.holders),
			ExclCount:   int(g.exclCount),
			ExclHost:    int(g.exclHost),
			ExclState:   g.exclState,
			HasDir:      g.hasDir,
			Dir:         g.dir,
			MigOwner:    -1,
			PageOwner:   -1,
		}
		if m.mgr != nil {
			if owner := m.mgr.Owner(page); owner != pipmcore.NoHost {
				f.MigOwner = owner
				f.Migrated = m.mgr.LineMigrated(owner, page, lip)
			}
		}
		if m.pt != nil {
			if o := m.pt.Owner(page); o != migration.ToCXL {
				f.PageOwner = o
			}
		}
		m.aud.CheckLine(now, m.trc, fam, &f)
	}

	// Pass 3: family state tables, flow conservation, footprint accounting.
	if m.mgr != nil {
		m.auditHardwareTables(now, full)
	}
	if m.pt != nil {
		m.auditKernelTable(now)
	}
}

// auditHardwareTables checks global/local remap-table agreement, counter
// ranges, remap-cache integrity, flow conservation, and footprint gauges.
func (m *Machine) auditHardwareTables(now sim.Time, full bool) {
	pages := m.cfg.SharedPages()
	hosts := m.cfg.Hosts
	walkPages, walkLines := m.audScratch.walkPages, m.audScratch.walkLines
	for h := range walkPages {
		walkPages[h], walkLines[h] = 0, 0
	}
	var pf audit.PageFacts
	for page := int64(0); page < pages; page++ {
		ge := m.mgr.GlobalEntryAt(page)
		cur := int(ge.CurHost)
		pf = audit.PageFacts{
			Page:      page,
			GlobalCur: cur,
			GlobalCnd: int(ge.CandHost),
			GlobalCnt: ge.Counter,
			Hosts:     hosts,
		}
		for h := 0; h < hosts; h++ {
			le, ok := m.mgr.PeekLocal(h, page)
			if !ok {
				continue
			}
			if h == cur {
				pf.HasLocal = true
				pf.LocalCnt = le.Counter
			} else {
				pf.OtherLocalMask.Add(h)
			}
			walkPages[h]++
			walkLines[h] += int64(bits.OnesCount64(le.Bitmap))
		}
		m.aud.CheckPage(now, m.trc, &pf)
	}

	var totPages, totLines int64
	for h := 0; h < hosts; h++ {
		m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
			Host: h, What: "pages", Gauge: m.residentPages(h), Walk: walkPages[h]})
		m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
			Host: h, What: "lines", Gauge: m.residentLines(h), Walk: walkLines[h]})
		totPages += walkPages[h]
		totLines += walkLines[h]
	}
	// The global table's per-slice occupancy counters (kept O(1) by
	// SetOwner) must agree with both a full entry walk and the owner-side
	// local-table recount — the sharded layout may not lose pages.
	gt := m.mgr.GlobalTableRef()
	var ownedSlices int64
	for s := 0; s < gt.Slices(); s++ {
		ownedSlices += int64(gt.SliceOwned(s))
	}
	m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
		Host: -1, What: "globally-owned pages (slice counters)", Gauge: ownedSlices, Walk: totPages})
	m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
		Host: -1, What: "globally-owned pages (OwnedPages)", Gauge: int64(gt.OwnedPages()), Walk: totPages})

	ms := m.mgr.Stats()
	var initial int64
	if m.mgr.Static() {
		initial = pages
	}
	m.aud.CheckConservation(now, m.trc, &audit.ConservationFacts{
		What: "migrated pages", In: ms.Promotions, Out: ms.Revocations,
		Initial: initial, Resident: totPages})
	m.aud.CheckConservation(now, m.trc, &audit.ConservationFacts{
		What: "migrated lines", In: ms.LinesMigrated, Out: ms.LinesDemoted,
		Resident: totLines})

	if full {
		m.auditRemapCache(now, "global-remap-cache", m.mgr.GlobalCache(), pages)
		for h := 0; h < hosts; h++ {
			m.auditRemapCache(now, m.audScratch.lcNames[h], m.mgr.LocalCache(h), pages)
		}
	}
}

// auditRemapCache validates one remap cache's walked content: in-range page
// indices, no duplicate tags, occupancy within capacity.
func (m *Machine) auditRemapCache(now sim.Time, name string, rc *pipmcore.RemapCache, pages int64) {
	a := &m.audScratch
	a.pageEpoch++
	f := audit.CacheBoundFacts{Name: name, Capacity: rc.Entries(), Pages: pages, MinPage: 1 << 62}
	rc.ForEachCached(func(page int64) {
		f.Cached++
		if page < f.MinPage {
			f.MinPage = page
		}
		if page > f.MaxPage {
			f.MaxPage = page
		}
		if page >= 0 && page < pages {
			if a.pageStamp[page] == a.pageEpoch {
				f.Dups++
			} else {
				a.pageStamp[page] = a.pageEpoch
			}
		}
	})
	if f.Cached == 0 {
		f.MinPage = 0
	}
	m.aud.CheckRemapCache(now, m.trc, &f)
}

// auditKernelTable recounts page-table residency against the counters the
// footprint gauges read.
func (m *Machine) auditKernelTable(now sim.Time) {
	pages := m.cfg.SharedPages()
	walk := m.audScratch.walkPages
	for h := range walk {
		walk[h] = 0
	}
	for page := int64(0); page < pages; page++ {
		if o := m.pt.Owner(page); o != migration.ToCXL {
			walk[o]++
		}
	}
	for h := 0; h < m.cfg.Hosts; h++ {
		m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
			Host: h, What: "pages", Gauge: m.residentPages(h), Walk: walk[h]})
		m.aud.CheckAccounting(now, m.trc, &audit.AccountingFacts{
			Host: h, What: "lines", Gauge: m.residentLines(h), Walk: walk[h] * config.LinesPerPage})
	}
}
