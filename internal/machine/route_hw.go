package machine

import (
	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	pipmcore "pipm/internal/core"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/trace"
)

// Hardware-family route module (PIPM, HW-static): the I/I' resolution on
// LLC misses, the device-side global remapping lookup and majority vote,
// forwarded inter-host fetches with migrate-back, incremental migration on
// eviction, and revocation pricing. Placement decisions go through
// m.hwHooks (migration.HardwareHooks); device-side hardware operations use
// m.mgr directly — they are this family's own state, not walk contract.

func (m *Machine) bindHardwareRoutes() {
	m.routeShared = m.cacheableSharedAt // hardware diverges only at the LLC miss
	m.missShared = m.missHWShared
	m.evictShared = m.evictHWShared
	m.auditShared = true
}

// missHWShared routes a memory-visible shared access: one local remapping
// lookup (§4.3: every shared LLC miss pays it), then either the local
// migrated frame (I' → ME) or the device flow.
func (m *Machine) missHWShared(tL sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host
	d := m.hwHooks.OnFill(h.id, page, rec.Addr.LineInPage())
	tR := tL + m.cfg.PIPM.LocalRemapLatency
	if d.TableWalk {
		// Walk the in-memory two-level table: one leaf read from local
		// DRAM (the pinned root is free, §4.4).
		tR = h.dram.Access(tR, m.remapTableAddr(h.id, page), false)
	}
	if d.Kind == migration.FillLocalLine {
		// I' → ME (case ③): served from local DRAM, no CXL traffic.
		return m.localSharedFill(tR, c, rec, m.localMigratedAddr(h.id, d.PFN, rec.Addr), cache.MigratedExclusive)
	}
	return m.pipmDeviceAccess(tR, c, rec, page)
}

// evictHWShared executes the hooks' eviction verdict: ME victims return to
// their local frame, owned M/E victims are absorbed as incremental
// migration (case ①), everything else is an ordinary CXL writeback.
func (m *Machine) evictHWShared(h *host, now sim.Time, page int64, addr, line config.Addr, vState cache.State) {
	lip := int(line) & (config.LinesPerPage - 1)
	d := m.hwHooks.OnEvict(h.id, page, lip, evictStateOf(vState))
	switch d.Kind {
	case migration.EvictNone:
		// ME victim whose remapping vanished underneath it: nowhere to go.
		return
	case migration.EvictLocalLine:
		// ME eviction (case ④): dirty data returns to local DRAM only.
		if m.vals != nil {
			m.vals.wbToLocal(h.id, line)
		}
		h.dram.Access(now, m.localMigratedAddr(h.id, d.PFN, addr), true)
		return
	case migration.EvictAbsorb:
		// Incremental migration: write the block to the local frame and
		// flip the in-memory bits (done by the hooks) instead of writing
		// back to CXL.
		if m.vals != nil {
			m.vals.wbToLocal(h.id, line)
		}
		m.trc.Emit(now, 0, telemetry.EvLineMigrate, h.id, page, int64(lip))
		m.noteAuditTransition()
		h.dram.Access(now, m.localMigratedAddr(h.id, d.PFN, addr), true)
		// The CXL-side in-memory bit flips too, but it lives in ECC spare
		// bits and piggybacks on subsequent accesses (§4.3.2 footnote) — a
		// background header is the only traffic.
		m.fabric.HostToDeviceBG(now, h.id, 0)
		m.devDir.Remove(line)
		return
	}
	m.evictSharedCXL(h, now, page, addr, line, vState)
}

// pipmDeviceAccess is the device-side flow: the global remapping lookup,
// the majority vote, and — when the line is migrated to another host — the
// forwarded inter-host fetch with incremental migration back to CXL (cases
// ②⑤⑥ of Fig. 9).
func (m *Machine) pipmDeviceAccess(t sim.Time, c *coreState, rec trace.Record, page int64) (sim.Time, stats.Class) {
	h := c.host
	st := m.col.Host(h.id)

	out := m.mgr.DeviceAccess(h.id, page)
	// The global remapping lookup happens on the device, in parallel with
	// the directory lookup; a cache miss adds an in-memory table read.
	extra := m.cfg.PIPM.GlobalRemapLatency
	if !out.GCacheHit {
		extra += m.cxlAccessTime(t, m.remapGlobalAddr(page))
	}

	if out.Promoted {
		m.trc.Emit(t, 0, telemetry.EvPromote, out.Owner, page, int64(h.id))
		m.noteAuditTransition()
	}
	if out.Revoked {
		m.applyRevocation(t, page, out)
	}

	if g := out.Owner; g != pipmcore.NoHost && g != h.id && m.mgr.LineMigrated(g, page, rec.Addr.LineInPage()) {
		// The line's latest copy lives in host g's local DRAM (I'/ME).
		done := m.forwardedFetch(t+extra, c, rec, page, g)
		st.Served[stats.ClassInterHost]++
		return done, stats.ClassInterHost
	}

	return m.cxlServe(t+extra, c, rec)
}

// forwardedFetch prices the inter-host path to a migrated line: requester →
// device → owner (local remap + DRAM or cache) → device → requester, with
// the line demoted back to CXL memory and an asynchronous writeback.
func (m *Machine) forwardedFetch(t sim.Time, c *coreState, rec trace.Record, page int64, g int) sim.Time {
	h := c.host
	line := rec.Addr.Line()
	owner := m.hosts[g]

	lat := (m.fabric.HostToDevice(t, h.id, 0) - t) +
		(m.fabric.DirLookup(t, line) - t) +
		(m.fabric.DeviceToHost(t, g, 0) - t)

	// Owner side: if the block is cached (ME), it comes from the LLC and
	// the copy downgrades (⑥ Inter-Rd: ME→S) or invalidates (⑤ Inter-Wr);
	// otherwise (I') it is read from local DRAM with a remap-table lookup.
	ownSt, ownCached := owner.llc.Peek(line)
	if m.vals != nil {
		m.vals.forwardServe(c, line, rec.Write, ownCached && ownSt == cache.MigratedExclusive, g)
	}
	if ownCached && ownSt == cache.MigratedExclusive {
		lat += m.llcLat
		if rec.Write {
			m.invalidateLineEverywhere(owner, line)
		} else {
			owner.llc.SetState(line, cache.Shared)
			for _, oc := range owner.cores {
				oc.l1.SetState(line, cache.Shared)
			}
		}
	} else {
		lat += m.cfg.PIPM.LocalRemapLatency
		entry, _ := m.mgr.LocalLookup(g, page)
		if entry != nil {
			lat += owner.dram.Access(t, m.localMigratedAddr(g, int64(entry.PFN), rec.Addr), false) - t
		} else {
			lat += owner.dram.Access(t, rec.Addr, false) - t
		}
	}

	// Migrate back: clear the bit (OnWriteback), asynchronously write the
	// block to CXL memory, and let the device directory track the
	// requester's copy.
	m.hwHooks.OnWriteback(g, page, rec.Addr.LineInPage())
	m.trc.Emit(t, 0, telemetry.EvLineDemote, g, page, int64(rec.Addr.LineInPage()))
	m.noteAuditTransition()
	lat += m.fabric.HostToDevice(t, g, cxlDataBytes) - t
	m.cxlMem.Access(t, rec.Addr, true) // async in-memory update

	if rec.Write {
		m.installDirEntry(line, coherence.Entry{State: coherence.DirModified, Owner: int16(h.id)})
		m.fillLLC(c, line, cache.Modified)
		m.fillL1(c, line, cache.Modified)
	} else {
		sharers := coherence.NewSharerSet(m.shShift).With(h.id)
		if _, cached := owner.llc.Peek(line); cached {
			sharers = sharers.With(g)
		}
		m.installDirEntry(line, coherence.Entry{State: coherence.DirShared, Sharers: sharers})
		m.fillLLC(c, line, cache.Shared)
		m.fillL1(c, line, cache.Shared)
	}
	done := t + lat + (m.fabric.DeviceToHost(t, h.id, cxlDataBytes) - t)
	m.trc.Emit(t, done-t, telemetry.EvInterFetch, h.id, page, int64(g))
	return done
}

// applyRevocation prices a partial-migration revocation (§4.2 ⑥): every
// migrated block of the page moves from the old owner's local DRAM back to
// its original CXL location, and the owner's cached ME blocks drop.
func (m *Machine) applyRevocation(t sim.Time, page int64, out pipmcore.Outcome) {
	g := out.RevokedFrom
	owner := m.hosts[g]
	base := m.amap.SharedAddr(config.Addr(page) * config.PageBytes)
	if m.vals != nil {
		m.vals.revoke(page, g, out.RevokedBitmap)
	}
	m.trc.Emit(t, 0, telemetry.EvRevoke, g, page, int64(out.RevokedLines))
	m.noteAuditTransition()
	// Dropped cache lines leave the device directory too; dirty copies —
	// CXL-backed M and cached ME alike — write back to CXL memory: the
	// page's remapping is gone, so local DRAM can no longer hold them.
	owner.llc.InvalidatePage(base.Page(), func(l config.Addr, st cache.State) {
		if st.Dirty() {
			wb := m.fabric.HostToDeviceBG(t, g, cxlDataBytes)
			m.cxlMem.Access(wb, l<<config.LineShift, true)
		}
		m.devDir.RemoveSharer(l, g)
	})
	for _, oc := range owner.cores {
		oc.l1.InvalidatePage(base.Page(), nil)
	}
	if out.RevokedLines == 0 {
		return
	}
	bytes := out.RevokedLines * config.LineBytes
	tt := owner.dram.AccessBulk(t, base, bytes, false)
	tt = m.fabric.HostToDeviceBG(tt, g, bytes)
	m.cxlMem.AccessBulk(tt, base, bytes, true)
	m.col.BytesMoved += uint64(bytes)
}

// localMigratedAddr maps a migrated block to an address in the owner's
// local DRAM window, derived from the allocated local PFN so bank mapping
// behaves like real placement.
func (m *Machine) localMigratedAddr(h int, pfn int64, addr config.Addr) config.Addr {
	off := (config.Addr(pfn)*config.PageBytes + config.Addr(addr)&(config.PageBytes-1)) %
		config.Addr(m.cfg.LocalDRAM.CapacityBytes)
	return m.amap.PrivateAddr(h, off)
}

// remapTableAddr locates a page's local remapping leaf entry in the owner's
// local DRAM for table-walk pricing.
func (m *Machine) remapTableAddr(h int, page int64) config.Addr {
	off := config.Addr(page*4) % config.Addr(m.cfg.LocalDRAM.CapacityBytes)
	return m.amap.PrivateAddr(h, off)
}

// remapGlobalAddr locates a page's global remapping entry in CXL memory.
// The entry stride follows the host count: the paper's packed 2 bytes up to
// 32 hosts, 3 bytes beyond (config.GlobalRemapEntrySize).
func (m *Machine) remapGlobalAddr(page int64) config.Addr {
	return m.amap.SharedAddr(config.Addr(page) * m.gEntryBytes % m.amap.SharedBytes())
}

// cxlAccessTime prices a single metadata access to CXL DRAM from the
// device side (no link traversal: the global remapping cache and table both
// live on the memory node), measured from the walk's current time t.
func (m *Machine) cxlAccessTime(t sim.Time, addr config.Addr) sim.Time {
	return m.cxlMem.Access(t, addr, false) - t
}
