package machine

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
)

func TestValueTrackingRejectsLocalOnly(t *testing.T) {
	m := build(t, testCfg(), migration.LocalOnly)
	if err := m.EnableValueTracking(nil); err == nil {
		t.Fatal("LocalOnly accepted value tracking")
	}
}

func TestValueTrackingRejectedAfterRun(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 100)
	run(t, m)
	if err := m.EnableValueTracking(nil); err == nil {
		t.Fatal("EnableValueTracking accepted after Run")
	}
}

// Every tracked scheme must observe exactly one event per shared-trace
// record, each read must return either zero or a previously installed
// token, and the final image must contain the last token written per line.
func TestValueTrackingObservesEveryAccess(t *testing.T) {
	for _, scheme := range []migration.Kind{
		migration.Native, migration.PIPM, migration.HWStatic,
		migration.Nomad, migration.Memtis, migration.HeMem, migration.OSSkew,
	} {
		t.Run(scheme.String(), func(t *testing.T) {
			const n = 4000
			m := build(t, testCfg(), scheme)
			attachPartitioned(m, n)

			written := make(map[uint64]bool)
			lastWrite := make(map[config.Addr]uint64)
			var events uint64
			if err := m.EnableValueTracking(func(o Observation) {
				events++
				if o.Write {
					if written[o.Value] {
						t.Fatalf("token %#x installed twice", o.Value)
					}
					written[o.Value] = true
					lastWrite[o.Line] = o.Value
				} else if o.Value != 0 && !written[o.Value] {
					t.Fatalf("read of line %#x returned %#x, never written", o.Line, o.Value)
				}
			}); err != nil {
				t.Fatal(err)
			}
			run(t, m)

			cfg := m.Config()
			total := uint64(cfg.TotalCores()) * n
			if events != total {
				t.Fatalf("observed %d events, expected %d", events, total)
			}
			if m.Observations() != events {
				t.Fatalf("Observations() = %d, observer saw %d", m.Observations(), events)
			}
			img := m.FinalImage()
			for line, tok := range lastWrite {
				if img[line] != tok {
					t.Errorf("line %#x: final image %#x, last write %#x", line, img[line], tok)
				}
			}
		})
	}
}

// Single-writer traces must produce identical final images under Native
// and PIPM: write tokens depend only on program order, so the image is a
// pure function of the trace, not of the placement scheme.
func TestFinalImageSchemeIndependentForPartitionedTraces(t *testing.T) {
	images := make(map[migration.Kind]map[config.Addr]uint64)
	for _, scheme := range []migration.Kind{migration.Native, migration.PIPM} {
		m := build(t, testCfg(), scheme)
		attachPartitioned(m, 6000)
		if err := m.EnableValueTracking(nil); err != nil {
			t.Fatal(err)
		}
		run(t, m)
		images[scheme] = m.FinalImage()
	}
	native, pipm := images[migration.Native], images[migration.PIPM]
	if len(native) == 0 {
		t.Fatal("empty final image")
	}
	if len(native) != len(pipm) {
		t.Fatalf("image sizes differ: native %d, pipm %d", len(native), len(pipm))
	}
	for line, v := range native {
		if pipm[line] != v {
			t.Errorf("line %#x: native %#x, pipm %#x", line, v, pipm[line])
		}
	}
}
