package machine

import (
	"testing"

	"pipm/internal/cache"
	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/trace"
)

// Focused walk-path tests: drive specific coherence and migration flows
// through tiny hand-built traces and check both the state machine and the
// latency ordering they produce.

// oneHostTrace builds a machine where only host `h` has a real trace;
// other cores get empty traces.
func attachSingle(m *Machine, h int, recs []trace.Record) {
	cfg := m.Config()
	for hh := 0; hh < cfg.Hosts; hh++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			if hh == h && c == 0 {
				m.SetTrace(hh, c, trace.NewSliceReader(recs))
			} else {
				m.SetTrace(hh, c, trace.NewSliceReader(nil))
			}
		}
	}
}

func rd(addr config.Addr) trace.Record { return trace.Record{Gap: 4, Addr: addr} }
func wr(addr config.Addr) trace.Record { return trace.Record{Gap: 4, Addr: addr, Write: true} }

func TestWriteUpgradeInvalidatesRemoteSharers(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	am := m.AddressMap()
	a := am.SharedAddr(0)
	// Host 0 reads, host 1 reads (both end S), then host 0 writes: host
	// 1's copy must invalidate. Operations are spaced by several scheduling
	// quanta so the cross-host ordering is deterministic.
	m.SetTrace(0, 0, trace.NewSliceReader([]trace.Record{rd(a), {Gap: 1 << 16, Addr: a, Write: true}}))
	m.SetTrace(1, 0, trace.NewSliceReader([]trace.Record{{Gap: 1 << 14, Addr: a}}))
	run(t, m)
	// After the run, host 1 must not hold the line.
	if st, ok := m.hosts[1].llc.Peek(a.Line()); ok && st != cache.Invalid {
		t.Fatalf("host 1 still caches the line in %v after host 0's write", st)
	}
	// Host 0 holds it dirty.
	if st, ok := m.hosts[0].llc.Peek(a.Line()); !ok || st != cache.Modified {
		t.Fatalf("host 0 state = %v, ok=%v, want M", st, ok)
	}
}

func TestOwnerForwardServesDirtyData(t *testing.T) {
	m := build(t, testCfg(), migration.Native)
	am := m.AddressMap()
	a := am.SharedAddr(64)
	// Host 0 writes (M), host 1 reads later: the device directory must
	// forward to host 0 and downgrade both to S.
	m.SetTrace(0, 0, trace.NewSliceReader([]trace.Record{wr(a)}))
	m.SetTrace(1, 0, trace.NewSliceReader([]trace.Record{{Gap: 1 << 14, Addr: a}}))
	run(t, m)
	st0, ok0 := m.hosts[0].llc.Peek(a.Line())
	st1, ok1 := m.hosts[1].llc.Peek(a.Line())
	if !ok0 || !ok1 || st0 != cache.Shared || st1 != cache.Shared {
		t.Fatalf("after forward: host0=%v/%v host1=%v/%v, want S/S", st0, ok0, st1, ok1)
	}
}

func TestGIMWriteInvalidatesOwnerCopy(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.Memtis)
	am := m.AddressMap()
	page := int64(2)
	a := am.SharedAddr(config.Addr(page) * config.PageBytes)

	var recs0 []trace.Record
	// Host 0 hammers the page so Memtis promotes it, then keeps reading.
	for i := 0; i < 40000; i++ {
		recs0 = append(recs0, rd(a+config.Addr((i%config.LinesPerPage)*config.LineBytes)))
	}
	// Host 1 writes the page remotely late in the run (well past several
	// kernel epochs so the promotion has happened).
	recs1 := []trace.Record{{Gap: 8 << 20, Addr: a, Write: true}}
	m.SetTrace(0, 0, trace.NewSliceReader(recs0))
	m.SetTrace(1, 0, trace.NewSliceReader(recs1))
	run(t, m)
	if m.Stats().Promotions == 0 {
		t.Skip("page never promoted in this configuration")
	}
	if m.Stats().Host(1).Served[stats.ClassInterHost] == 0 {
		t.Fatal("host 1's write to the migrated page was not a 4-hop access")
	}
}

func TestPIPMLocalServeIsFasterThanCXL(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.PIPM)
	am := m.AddressMap()
	// One host scans one page repeatedly with thrashing working set so
	// lines migrate and later serve locally.
	var recs []trace.Record
	pages := pageRange(0, 12) // 12 pages > 256-line LLC → eviction pressure
	for pass := 0; pass < 30; pass++ {
		for _, p := range pages {
			for l := 0; l < config.LinesPerPage; l++ {
				recs = append(recs, rd(am.SharedAddr(config.Addr(p)*config.PageBytes+config.Addr(l*config.LineBytes))))
			}
		}
	}
	attachSingle(m, 0, recs)
	run(t, m)
	col := m.Stats()
	if col.Served(stats.ClassLocalShared) == 0 {
		t.Fatal("no local serves")
	}
	localLat := col.MeanLatency(stats.ClassLocalShared)
	cxlLat := col.MeanLatency(stats.ClassCXL)
	if localLat >= cxlLat {
		t.Fatalf("local serve (%v) not faster than CXL (%v)", localLat, cxlLat)
	}
}

func TestPIPMRevocationReturnsDataCoherently(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.PIPM)
	am := m.AddressMap()
	page := int64(1)
	base := am.SharedAddr(config.Addr(page) * config.PageBytes)

	// Host 0 writes the page heavily (promote + migrate lines), then host 1
	// hammers it (revoke), then host 0 reads a line: must still see it.
	var recs0 []trace.Record
	for pass := 0; pass < 20; pass++ {
		for l := 0; l < config.LinesPerPage; l++ {
			recs0 = append(recs0, wr(base+config.Addr(l*config.LineBytes)))
		}
		// Pressure lines out of the LLC so they migrate incrementally.
		for p := int64(2); p < 10; p++ {
			for l := 0; l < config.LinesPerPage; l++ {
				recs0 = append(recs0, rd(am.SharedAddr(config.Addr(p)*config.PageBytes+config.Addr(l*config.LineBytes))))
			}
		}
	}
	var recs1 []trace.Record
	for i := 0; i < 3000; i++ {
		recs1 = append(recs1, trace.Record{Gap: 1 << 12, Addr: base + config.Addr((i%config.LinesPerPage)*config.LineBytes)})
	}
	m.SetTrace(0, 0, trace.NewSliceReader(recs0))
	m.SetTrace(1, 0, trace.NewSliceReader(recs1))
	run(t, m)
	col := m.Stats()
	if col.Promotions == 0 {
		t.Fatal("page never promoted")
	}
	if col.Demotions == 0 {
		t.Fatal("contested page never revoked")
	}
	// The manager must be consistent after revocation churn.
	mgr := m.Manager()
	for h := 0; h < cfg.Hosts; h++ {
		if mgr.MigratedPages(h) < 0 {
			t.Fatal("negative migrated pages")
		}
	}
}

func TestDependentChainsSerialize(t *testing.T) {
	cfg := testCfg()
	// Same addresses, one trace fully dependent, one fully parallel: the
	// dependent run must be much slower.
	mkRecs := func(dependent bool) []trace.Record {
		var recs []trace.Record
		for i := 0; i < 4000; i++ {
			off := config.Addr(i*64*7) % config.Addr(cfg.SharedBytes)
			recs = append(recs, trace.Record{Gap: 2, Addr: off.LineBase(), Dep: dependent})
		}
		return recs
	}
	runWith := func(dependent bool) sim.Time {
		m := build(t, cfg, migration.Native)
		am := m.AddressMap()
		recs := mkRecs(dependent)
		for i := range recs {
			recs[i].Addr = am.SharedAddr(recs[i].Addr)
		}
		attachSingle(m, 0, recs)
		run(t, m)
		return m.ExecTime()
	}
	parTime := runWith(false)
	depTime := runWith(true)
	if depTime < parTime*3 {
		t.Fatalf("dependent chain (%v) not ≫ parallel (%v)", depTime, parTime)
	}
}

func TestDeviceDirectoryBackInvalidation(t *testing.T) {
	cfg := testCfg()
	// Shrink the device directory so capacity pressure is real.
	cfg.CXL.DirSets = 4
	cfg.CXL.DirWays = 2
	cfg.CXL.DirSlices = 2
	m := build(t, cfg, migration.Native)
	am := m.AddressMap()
	// Touch far more lines than 16 directory entries.
	var recs []trace.Record
	for i := 0; i < 5000; i++ {
		recs = append(recs, rd(am.SharedAddr(config.Addr(i*config.LineBytes)%(config.Addr(cfg.SharedBytes)))))
	}
	attachSingle(m, 0, recs)
	run(t, m) // must not panic or wedge
	if m.ExecTime() <= 0 {
		t.Fatal("no progress under directory pressure")
	}
}

func TestEvictionWritebackReachesCXL(t *testing.T) {
	cfg := testCfg()
	m := build(t, cfg, migration.Native)
	am := m.AddressMap()
	// Write a large footprint so dirty lines must leave the LLC.
	var recs []trace.Record
	for i := 0; i < 20000; i++ {
		recs = append(recs, wr(am.SharedAddr(config.Addr(i*config.LineBytes)%config.Addr(cfg.SharedBytes))))
	}
	attachSingle(m, 0, recs)
	run(t, m)
	if m.Fabric().BackgroundBytes() == 0 {
		t.Fatal("dirty evictions produced no background writeback traffic")
	}
}

func TestLocalOnlyNeverUsesFabric(t *testing.T) {
	m := build(t, testCfg(), migration.LocalOnly)
	attachContested(m, 10000)
	run(t, m)
	if m.Fabric().TotalBytes() != 0 {
		t.Fatalf("local-only moved %d bytes over CXL", m.Fabric().TotalBytes())
	}
}

func TestMigrateOnExclusiveEvictionAblation(t *testing.T) {
	// With the E-eviction extension off, a read-only partitioned workload
	// must migrate strictly fewer lines.
	lines := func(migrateE bool) uint64 {
		cfg := testCfg()
		cfg.PIPM.MigrateOnExclusiveEviction = migrateE
		m := build(t, cfg, migration.PIPM)
		am := m.AddressMap()
		var recs []trace.Record
		for pass := 0; pass < 10; pass++ {
			for p := int64(0); p < 8; p++ {
				for l := 0; l < config.LinesPerPage; l++ {
					recs = append(recs, rd(am.SharedAddr(config.Addr(p)*config.PageBytes+config.Addr(l*config.LineBytes))))
				}
			}
		}
		attachSingle(m, 0, recs)
		run(t, m)
		return m.Stats().LinesMoved
	}
	withE := lines(true)
	withoutE := lines(false)
	if withoutE >= withE {
		t.Fatalf("M-only migrated %d lines, with-E %d — extension had no effect", withoutE, withE)
	}
	if withE == 0 {
		t.Fatal("read-only workload migrated nothing even with the E extension")
	}
}

func TestStallAttributionMatchesDominantClass(t *testing.T) {
	// A CXL-bound native run must attribute most stall time to ClassCXL.
	m := build(t, testCfg(), migration.Native)
	attachPartitioned(m, 20000)
	run(t, m)
	col := m.Stats()
	cxl := col.StallFraction(stats.ClassCXL)
	for cl := stats.ClassL1Hit; cl <= stats.ClassInterHost; cl++ {
		if cl == stats.ClassCXL {
			continue
		}
		if f := col.StallFraction(cl); f > cxl {
			t.Fatalf("stall fraction of %v (%.3f) exceeds CXL's (%.3f)", cl, f, cxl)
		}
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	// Halving link bandwidth must not speed up a CXL-bound run.
	exec := func(bw float64) sim.Time {
		cfg := testCfg()
		cfg.CXL.LinkBW = bw
		m := build(t, cfg, migration.Native)
		attachPartitioned(m, 15000)
		run(t, m)
		return m.ExecTime()
	}
	if exec(2.5e9) < exec(5e9) {
		t.Fatal("lower bandwidth produced a faster run")
	}
}

func TestTLBModellingAddsLatency(t *testing.T) {
	exec := func(entries int) sim.Time {
		cfg := testCfg()
		cfg.TLBEntries = entries
		m := build(t, cfg, migration.Native)
		attachPartitioned(m, 15000)
		run(t, m)
		return m.ExecTime()
	}
	off := exec(0)
	// A tiny TLB on a 16-page working set misses constantly.
	tiny := exec(4)
	if tiny <= off {
		t.Fatalf("TLB walks added no time: %v vs %v", tiny, off)
	}
	// A TLB covering the whole footprint costs almost nothing.
	big := exec(4096)
	if big > off+off/10 {
		t.Fatalf("covering TLB cost too much: %v vs %v", big, off)
	}
}
