// Package validate is the metamorphic + statistical validation harness on
// top of the run-graph engine (DESIGN.md §12). Where the conformance
// subsystem checks the protocol against a golden model and the audit package
// checks invariants inside one run, this package checks relations *between*
// runs: metamorphic relations ("raising the promotion threshold to its
// maximum cannot increase promotions", "a workload that never touches the
// shared heap moves no data") executed as memoised run pairs, plus
// multi-seed replication that turns point measurements into mean ± CI error
// bars.
//
// All runs go through one harness.Runner, so a result needed by several
// relations — or by both a relation and the replication sweep — simulates
// exactly once.
package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/harness"
	"pipm/internal/migration"
	"pipm/internal/workload"
)

// Schema identifies the JSON report layout.
const Schema = "pipm-validate/v1"

// Options configures a validation pass.
type Options struct {
	// Harness carries the base configuration, workload set, per-core record
	// budget, first seed, worker bound and progress sink.
	Harness harness.Options
	// Schemes restricts the sweep; nil means every registered scheme.
	Schemes []migration.Kind
	// Seeds is the replication width: each (scheme, workload) runs at seeds
	// Harness.Seed .. Harness.Seed+Seeds-1. Needs ≥ 2 for error bars.
	Seeds int
	// Audit configures the invariant auditor attached to the audited sweep
	// (phase 1). Zero disables that phase.
	Audit audit.Options
}

// Quick returns the CI-tier configuration: the harness quick sweep (all
// registered schemes × pr/canneal/ycsb) with a per-quantum auditor, the full
// relation registry, and 5-seed replication.
func Quick() Options {
	return Options{
		Harness: harness.QuickOptions(),
		Seeds:   5,
		Audit:   audit.Options{Mode: audit.Quantum}.WithDefaults(),
	}
}

func (o Options) schemes() []migration.Kind {
	if len(o.Schemes) > 0 {
		return o.Schemes
	}
	return migration.Kinds
}

func (o Options) hasScheme(k migration.Kind) bool {
	for _, s := range o.schemes() {
		if s == k {
			return true
		}
	}
	return false
}

// Report is the outcome of one validation pass.
type Report struct {
	Schema      string           `json:"schema"`
	Audit       AuditPhase       `json:"audit"`
	Relations   []RelationResult `json:"relations"`
	Replication []ReplicationRow `json:"replication"`
}

// AuditPhase summarises the audited sweep: every (scheme, workload) run with
// the invariant auditor attached. Failures carry one line per failed run.
type AuditPhase struct {
	Mode     string   `json:"mode"`
	Runs     int      `json:"runs"`
	Sweeps   uint64   `json:"sweeps"`
	Checks   uint64   `json:"checks"`
	Failures []string `json:"failures,omitempty"`
}

// RelationResult is one metamorphic relation's verdict.
type RelationResult struct {
	Name   string `json:"name"`
	Desc   string `json:"description"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// Failed reports whether any phase found a problem.
func (r *Report) Failed() bool {
	if len(r.Audit.Failures) > 0 {
		return true
	}
	for _, rel := range r.Relations {
		if !rel.Pass {
			return true
		}
	}
	return false
}

// Err returns nil when the pass is clean, else a one-line summary error.
func (r *Report) Err() error {
	if !r.Failed() {
		return nil
	}
	bad := 0
	for _, rel := range r.Relations {
		if !rel.Pass {
			bad++
		}
	}
	return fmt.Errorf("validate: %d audit failure(s), %d relation failure(s)",
		len(r.Audit.Failures), bad)
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== audited sweep (%s) ==\n", r.Audit.Mode)
	fmt.Fprintf(w, "runs %d  sweeps %d  checks %d  failures %d\n",
		r.Audit.Runs, r.Audit.Sweeps, r.Audit.Checks, len(r.Audit.Failures))
	for _, f := range r.Audit.Failures {
		fmt.Fprintf(w, "  FAIL %s\n", f)
	}
	fmt.Fprintf(w, "\n== metamorphic relations ==\n")
	for _, rel := range r.Relations {
		verdict := "ok  "
		if !rel.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%s %-32s %s\n", verdict, rel.Name, rel.Detail)
	}
	fmt.Fprintf(w, "\n== replication (mean ± 95%% CI over %d seeds) ==\n", seedsOf(r))
	fmt.Fprintf(w, "%-10s %-10s %22s %16s %16s\n",
		"workload", "scheme", "exec-time", "ipc", "local-hit")
	for _, row := range r.Replication {
		fmt.Fprintf(w, "%-10s %-10s %22s %16s %16s\n",
			row.Workload, row.Scheme,
			row.ExecTime.format("ps"), row.IPC.format(""), row.LocalHitRate.format(""))
	}
}

func seedsOf(r *Report) int {
	if len(r.Replication) == 0 {
		return 0
	}
	return r.Replication[0].Seeds
}

// Ctx is what relations and phases run against: the shared memoised runner
// plus the pass options.
type Ctx struct {
	Opt    Options
	runner *harness.Runner
}

// get fetches one unaudited run through the shared memo.
func (c *Ctx) get(cfg config.Config, wl workload.Params, k migration.Kind,
	records, seed int64) (harness.Result, error) {
	return c.runner.Get(harness.RunRequest{
		Cfg: cfg, WL: wl, Scheme: k, Records: records, Seed: seed})
}

// base fetches the (workload, scheme) run at the pass's base budget and seed.
func (c *Ctx) base(wl workload.Params, k migration.Kind) (harness.Result, error) {
	return c.get(c.Opt.Harness.Cfg, wl, k, c.Opt.Harness.RecordsPerCore, c.Opt.Harness.Seed)
}

// Run executes the full validation pass: the audited sweep, every registered
// relation, and the replication sweep. The returned error is infrastructural
// (a simulation that failed to build or run); validation verdicts live in
// the Report — check Report.Failed or Report.Err.
func Run(o Options) (*Report, error) {
	if o.Seeds < 1 {
		o.Seeds = 1
	}
	ctx := &Ctx{Opt: o, runner: harness.NewRunnerOpts(o.Harness)}
	rep := &Report{Schema: Schema}

	if o.Audit.Enabled() {
		runAuditPhase(ctx, rep)
	}

	rows, err := runReplication(ctx)
	if err != nil {
		return rep, err
	}
	rep.Replication = rows

	if err := runRelations(ctx, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// runAuditPhase executes every (scheme, workload) pair with the invariant
// auditor attached. A violation (or any run error) becomes a failure line.
func runAuditPhase(ctx *Ctx, rep *Report) {
	o := ctx.Opt
	rep.Audit.Mode = o.Audit.Mode.String()
	type outcome struct {
		label  string
		report audit.Report
		err    error
	}
	var reqs []harness.RunRequest
	var labels []string
	for _, wl := range o.Harness.Workloads {
		for _, k := range o.schemes() {
			reqs = append(reqs, harness.RunRequest{
				Cfg: o.Harness.Cfg, WL: wl, Scheme: k,
				Records: o.Harness.RecordsPerCore, Seed: o.Harness.Seed,
				Audit: o.Audit,
			})
			labels = append(labels, wl.Name+"/"+k.String())
		}
	}
	outs := make([]outcome, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req harness.RunRequest) {
			defer wg.Done()
			_, err := ctx.runner.Get(req)
			outs[i] = outcome{label: labels[i], report: ctx.runner.Report(req), err: err}
		}(i, req)
	}
	wg.Wait()
	for _, out := range outs {
		rep.Audit.Runs++
		rep.Audit.Sweeps += out.report.Sweeps
		rep.Audit.Checks += out.report.Checks
		if out.err != nil {
			rep.Audit.Failures = append(rep.Audit.Failures,
				fmt.Sprintf("%s: %v", out.label, out.err))
		}
	}
}

// runRelations evaluates the registry. Relations run concurrently — the
// runner's worker pool bounds actual simulation parallelism — and results
// keep registry order.
func runRelations(ctx *Ctx, rep *Report) error {
	rep.Relations = make([]RelationResult, len(Relations))
	errs := make([]error, len(Relations))
	var wg sync.WaitGroup
	for i, rel := range Relations {
		wg.Add(1)
		go func(i int, rel Relation) {
			defer wg.Done()
			detail, err := rel.Check(ctx)
			res := RelationResult{Name: rel.Name, Desc: rel.Desc, Pass: true, Detail: detail}
			if err != nil {
				if infra, ok := err.(*infraError); ok {
					errs[i] = infra.err
					return
				}
				res.Pass = false
				res.Detail = err.Error()
			}
			rep.Relations[i] = res
		}(i, rel)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// infraError marks a relation failure caused by the infrastructure (a run
// that failed to execute) rather than a violated relation.
type infraError struct{ err error }

func (e *infraError) Error() string { return e.err.Error() }

// infra wraps a run error so runRelations aborts instead of reporting a
// relation verdict.
func infra(err error) error { return &infraError{err: err} }
