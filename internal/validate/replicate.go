package validate

import (
	"fmt"
	"math"
	"sync"

	"pipm/internal/migration"
	"pipm/internal/workload"
)

// ReplicationRow is one (workload, scheme) cell's multi-seed statistics: the
// BENCH-style point measurements widened into mean ± 95% CI error bars.
type ReplicationRow struct {
	Workload     string   `json:"workload"`
	Scheme       string   `json:"scheme"`
	Seeds        int      `json:"seeds"`
	ExecTime     Estimate `json:"exec_time_ps"`
	IPC          Estimate `json:"ipc"`
	LocalHitRate Estimate `json:"local_hit_rate"`
}

// Estimate is a replicated measurement: sample mean, sample standard
// deviation, and the half-width of the 95% confidence interval on the mean
// (Student-t, n−1 degrees of freedom; zero when n < 2).
type Estimate struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

func (e Estimate) format(unit string) string {
	if unit != "" {
		unit = " " + unit
	}
	return fmt.Sprintf("%.4g ± %.2g%s", e.Mean, e.CI95, unit)
}

// estimate computes an Estimate from samples.
func estimate(xs []float64) Estimate {
	n := len(xs)
	if n == 0 {
		return Estimate{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n < 2 {
		return Estimate{Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Estimate{Mean: mean, Stddev: sd, CI95: tCrit(n-1) * sd / math.Sqrt(float64(n))}
}

// tCrit is the two-sided 95% Student-t critical value for df degrees of
// freedom; beyond the table it converges toward the normal 1.96.
func tCrit(df int) float64 {
	table := []float64{ // df 1..10
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	}
	switch {
	case df < 1:
		return 0
	case df <= len(table):
		return table[df-1]
	case df <= 30:
		return 2.09
	default:
		return 1.96
	}
}

// runReplication executes the N-seed sweep — every (workload, scheme) at
// seeds Seed..Seed+Seeds−1 — and reduces each cell to error-bar estimates.
// Row order is (workload, scheme) presentation order, worker-independent.
func runReplication(ctx *Ctx) ([]ReplicationRow, error) {
	o := ctx.Opt
	type cell struct {
		wl workload.Params
		k  migration.Kind
	}
	var cells []cell
	for _, wl := range o.Harness.Workloads {
		for _, k := range o.schemes() {
			cells = append(cells, cell{wl, k})
		}
	}

	rows := make([]ReplicationRow, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, cl := range cells {
		wg.Add(1)
		go func(i int, cl cell) {
			defer wg.Done()
			exec := make([]float64, 0, o.Seeds)
			ipc := make([]float64, 0, o.Seeds)
			hit := make([]float64, 0, o.Seeds)
			for seed := o.Harness.Seed; seed < o.Harness.Seed+int64(o.Seeds); seed++ {
				r, err := ctx.get(o.Harness.Cfg, cl.wl, cl.k, o.Harness.RecordsPerCore, seed)
				if err != nil {
					errs[i] = err
					return
				}
				exec = append(exec, float64(r.ExecTime))
				ipc = append(ipc, r.IPC)
				hit = append(hit, r.LocalHitRate)
			}
			rows[i] = ReplicationRow{
				Workload:     cl.wl.Name,
				Scheme:       cl.k.String(),
				Seeds:        o.Seeds,
				ExecTime:     estimate(exec),
				IPC:          estimate(ipc),
				LocalHitRate: estimate(hit),
			}
		}(i, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
