package validate

import (
	"fmt"
	"math"

	"pipm/internal/config"
	"pipm/internal/harness"
	"pipm/internal/llmserve"
	"pipm/internal/migration"
	"pipm/internal/workload"
)

// Relation is one metamorphic relation: a property that must hold between
// the results of related runs, checked by comparing memoised simulations.
// Check returns a pass detail ("24 runs compared") or a violation error;
// wrap run errors with infra() so the pass aborts instead of mis-reporting
// an infrastructure failure as a violated relation.
type Relation struct {
	Name  string
	Desc  string
	Check func(c *Ctx) (string, error)
}

// Relations is the registry, in report order. DESIGN.md §12 documents each
// relation and how to add one.
var Relations = []Relation{
	{
		Name: "replay-determinism",
		Desc: "two executions of the same (config, workload, scheme, seed) produce identical Results",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			wl := o.Workloads[0]
			k := firstScheme(c, migration.PIPM)
			// Deliberately bypasses the memo: both runs must simulate.
			a, err := harness.RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
			if err != nil {
				return "", infra(err)
			}
			b, err := harness.RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
			if err != nil {
				return "", infra(err)
			}
			if a != b {
				return "", fmt.Errorf("%s/%v: repeated run diverged: %+v vs %+v", wl.Name, k, a, b)
			}
			return fmt.Sprintf("%s/%v simulated twice, bit-identical", wl.Name, k), nil
		},
	},
	{
		Name: "scheme-instruction-invariance",
		Desc: "the instruction count is a property of the trace, identical across every scheme",
		Check: func(c *Ctx) (string, error) {
			runs := 0
			for _, wl := range c.Opt.Harness.Workloads {
				var want int64
				for i, k := range c.Opt.schemes() {
					r, err := c.base(wl, k)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if i == 0 {
						want = r.Instructions
						continue
					}
					if r.Instructions != want {
						return "", fmt.Errorf("%s: %v executed %d instructions, %v executed %d",
							wl.Name, c.Opt.schemes()[0], want, k, r.Instructions)
					}
				}
			}
			return fmt.Sprintf("%d runs agree per workload", runs), nil
		},
	},
	{
		Name: "family-structure",
		Desc: "each scheme family leaves its unused machinery at exactly zero",
		Check: func(c *Ctx) (string, error) {
			runs := 0
			for _, wl := range c.Opt.Harness.Workloads {
				for _, k := range c.Opt.schemes() {
					r, err := c.base(wl, k)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if err := checkFamilyStructure(wl.Name, k, r); err != nil {
						return "", err
					}
				}
			}
			return fmt.Sprintf("%d runs structurally exact", runs), nil
		},
	},
	{
		Name: "zero-sharing-inert",
		Desc: "a workload with SharedFrac=0 moves no data and pays no migration machinery",
		Check: func(c *Ctx) (string, error) {
			wl := c.Opt.Harness.Workloads[0]
			wl.Name += "-noshare"
			wl.SharedFrac = 0
			runs := 0
			for _, k := range c.Opt.schemes() {
				r, err := c.base(wl, k)
				if err != nil {
					return "", infra(err)
				}
				runs++
				if r.Promotions != 0 || r.Demotions != 0 || r.LinesMoved != 0 || r.BytesMoved != 0 {
					return "", fmt.Errorf("%s/%v moved data with zero sharing: prom %d dem %d lines %d bytes %d",
						wl.Name, k, r.Promotions, r.Demotions, r.LinesMoved, r.BytesMoved)
				}
				if r.MgmtStallFrac != 0 || r.TransferFrac != 0 || r.InterStallFrac != 0 {
					return "", fmt.Errorf("%s/%v stalled on migration machinery with zero sharing: mgmt %g transfer %g inter %g",
						wl.Name, k, r.MgmtStallFrac, r.TransferFrac, r.InterStallFrac)
				}
				// HW-static statically pre-assigns every page, so its
				// footprint gauge is legitimately nonzero without a single
				// shared access; every other scheme must stay at zero.
				if k != migration.HWStatic && r.PageFootprintFrac != 0 {
					return "", fmt.Errorf("%s/%v resident pages with zero sharing: %g",
						wl.Name, k, r.PageFootprintFrac)
				}
			}
			return fmt.Sprintf("%d schemes inert on %s", runs, wl.Name), nil
		},
	},
	{
		Name: "threshold-max-degeneration",
		Desc: "raising the PIPM vote threshold to its 6-bit maximum cannot increase promotions",
		Check: func(c *Ctx) (string, error) {
			if !c.Opt.hasScheme(migration.PIPM) {
				return "skipped: pipm not in scheme set", nil
			}
			o := c.Opt.Harness
			hi := o.Cfg
			hi.PIPM.MigrationThreshold = 63
			for _, wl := range o.Workloads {
				def, err := c.base(wl, migration.PIPM)
				if err != nil {
					return "", infra(err)
				}
				strict, err := c.get(hi, wl, migration.PIPM, o.RecordsPerCore, o.Seed)
				if err != nil {
					return "", infra(err)
				}
				if strict.Promotions > def.Promotions {
					return "", fmt.Errorf("%s: threshold 63 promoted %d pages, threshold %d promoted %d",
						wl.Name, strict.Promotions, o.Cfg.PIPM.MigrationThreshold, def.Promotions)
				}
			}
			return fmt.Sprintf("%d workloads monotone", len(o.Workloads)), nil
		},
	},
	{
		Name: "records-prefix-monotonicity",
		Desc: "half the trace simulates strictly less time and fewer instructions than the whole",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			half := o.RecordsPerCore / 2
			if half < 1 {
				return "skipped: record budget too small to halve", nil
			}
			// One statistical workload plus both mechanistic production
			// generators: their readers emit whole multi-record operations,
			// so the budget gate inside the op buffer is what keeps a half
			// budget a strict prefix of the full one.
			wls := []workload.Params{o.Workloads[0]}
			for _, name := range []string{"llmserve", "daxfs"} {
				wl, err := workload.ByName(name)
				if err != nil {
					return "", infra(err)
				}
				wls = append(wls, wl)
			}
			checked := 0
			for _, wl := range wls {
				for _, k := range []migration.Kind{migration.Native, migration.PIPM, migration.Memtis} {
					if !c.Opt.hasScheme(k) {
						continue
					}
					full, err := c.base(wl, k)
					if err != nil {
						return "", infra(err)
					}
					short, err := c.get(o.Cfg, wl, k, half, o.Seed)
					if err != nil {
						return "", infra(err)
					}
					if short.ExecTime >= full.ExecTime || short.Instructions >= full.Instructions {
						return "", fmt.Errorf("%s/%v: prefix not monotone: %v/%d instr vs %v/%d",
							wl.Name, k, short.ExecTime, short.Instructions, full.ExecTime, full.Instructions)
					}
					checked++
				}
			}
			return fmt.Sprintf("%d scheme×workload prefixes monotone", checked), nil
		},
	},
	{
		Name: "local-only-lower-bound",
		Desc: "the local-only idealisation is strictly faster than the native baseline",
		Check: func(c *Ctx) (string, error) {
			if !c.Opt.hasScheme(migration.LocalOnly) || !c.Opt.hasScheme(migration.Native) {
				return "skipped: needs both local-only and native", nil
			}
			for _, wl := range c.Opt.Harness.Workloads {
				if wl.SharedFrac <= 0 {
					continue
				}
				ideal, err := c.base(wl, migration.LocalOnly)
				if err != nil {
					return "", infra(err)
				}
				base, err := c.base(wl, migration.Native)
				if err != nil {
					return "", infra(err)
				}
				if ideal.ExecTime >= base.ExecTime {
					return "", fmt.Errorf("%s: local-only %v not faster than native %v",
						wl.Name, ideal.ExecTime, base.ExecTime)
				}
			}
			return fmt.Sprintf("%d workloads bounded", len(c.Opt.Harness.Workloads)), nil
		},
	},
	{
		Name: "serve-weight-read-invariance",
		Desc: "the llmserve trace never writes the weight region, and every scheme executes exactly the trace's instructions",
		Check: func(c *Ctx) (string, error) {
			wl, err := workload.ByName("llmserve")
			if err != nil {
				return "", infra(err)
			}
			o := c.Opt.Harness
			am := config.NewAddressMap(&o.Cfg)
			// The trace-side half: drain the exact readers the simulations
			// consume and classify every access against the weight boundary.
			counts, err := llmserve.Profile(wl.Serve, am, o.Cfg.Hosts, o.Cfg.CoresPerHost,
				o.RecordsPerCore, o.Seed)
			if err != nil {
				return "", infra(err)
			}
			if counts.WeightWrites != 0 {
				return "", fmt.Errorf("llmserve trace wrote the weight region %d times", counts.WeightWrites)
			}
			if counts.WeightReads == 0 {
				return "", fmt.Errorf("llmserve trace never read the weight region (%+v)", counts)
			}
			// The machine-side half: a scheme migrates and stalls, but it
			// must not invent or drop work — every scheme's instruction
			// count equals the trace profile's, making the weight-read count
			// above a scheme-invariant of the whole sweep.
			runs := 0
			for _, k := range c.Opt.schemes() {
				r, err := c.base(wl, k)
				if err != nil {
					return "", infra(err)
				}
				runs++
				if r.Instructions != counts.Instructions {
					return "", fmt.Errorf("llmserve/%v executed %d instructions, trace profile has %d",
						k, r.Instructions, counts.Instructions)
				}
			}
			return fmt.Sprintf("%d weight reads, 0 weight writes, invariant across %d schemes", counts.WeightReads, runs), nil
		},
	},
	{
		Name: "serve-degenerate-readonly",
		Desc: "arrivals-off llmserve and append-free own-subtree daxfs degenerate to host-local read-only traffic that PIPM absorbs toward the local-only ideal",
		Check: func(c *Ctx) (string, error) {
			if !c.Opt.hasScheme(migration.LocalOnly) || !c.Opt.hasScheme(migration.PIPM) ||
				!c.Opt.hasScheme(migration.Native) {
				return "skipped: needs local-only, pipm and native", nil
			}
			serve, err := workload.ByName("llmserve")
			if err != nil {
				return "", infra(err)
			}
			serve.Name += "-idle"
			serve.Serve.ArrivalMean = 0 // no sessions: only the idle scan of the host's own weight shard
			fs, err := workload.ByName("daxfs")
			if err != nil {
				return "", infra(err)
			}
			fs.Name += "-scan"
			fs.FS.LookupFrac, fs.FS.ScanFrac = 0, 1 // no appends, no shared hot-line lookups
			fs.FS.OwnFrac = 1                       // every scan stays in the host's own subtree

			// Both degenerates are perfectly host-partitioned read-only
			// traces — PIPM's best case. Exact equality with the local-only
			// idealisation is unreachable in finite runs: every page must be
			// discovered remotely before its votes trip promotion, and lines
			// migrate only as the LLC evicts them (the paper's Loc-WB
			// trigger plus the clean-Exclusive extension), so the warmup is
			// O(pages) and the steady state keeps the remap-walk cost. What
			// must hold over the seed sweep: mean exec times order strictly
			// local-only < PIPM < native (95% CIs reported alongside), PIPM
			// closes most of the native→ideal gap, its local hit rate
			// converges toward local-only's 1.0 as the budget doubles, and
			// native stays at exactly zero local hits.
			const minClosure = 0.40
			// Below ~5 full sweeps of a host's share of the quick heap the
			// run is all warmup and the closure bound is vacuous, so the
			// relation enforces a record floor instead of inheriting an
			// arbitrarily small budget.
			const minRecords = 60_000
			o := c.Opt.Harness
			records := o.RecordsPerCore
			if records < minRecords {
				records = minRecords
			}
			var details string
			for _, wl := range []workload.Params{serve, fs} {
				sample := func(k migration.Kind) (exec, hit Estimate, err error) {
					xs := make([]float64, 0, c.Opt.Seeds)
					hs := make([]float64, 0, c.Opt.Seeds)
					for seed := o.Seed; seed < o.Seed+int64(c.Opt.Seeds); seed++ {
						r, err := c.get(o.Cfg, wl, k, records, seed)
						if err != nil {
							return Estimate{}, Estimate{}, err
						}
						xs = append(xs, float64(r.ExecTime))
						hs = append(hs, r.LocalHitRate)
					}
					return estimate(xs), estimate(hs), nil
				}
				ideal, idealHit, err := sample(migration.LocalOnly)
				if err != nil {
					return "", infra(err)
				}
				pipm, pipmHit, err := sample(migration.PIPM)
				if err != nil {
					return "", infra(err)
				}
				native, nativeHit, err := sample(migration.Native)
				if err != nil {
					return "", infra(err)
				}
				if idealHit.Mean != 1 || idealHit.Stddev != 0 {
					return "", fmt.Errorf("%s: local-only hit rate %.4g ± %.2g, want exactly 1",
						wl.Name, idealHit.Mean, idealHit.Stddev)
				}
				if nativeHit.Mean != 0 || nativeHit.Stddev != 0 {
					return "", fmt.Errorf("%s: native hit rate %.4g ± %.2g, want exactly 0",
						wl.Name, nativeHit.Mean, nativeHit.Stddev)
				}
				if ideal.Mean >= pipm.Mean {
					return "", fmt.Errorf("%s: local-only %.4g ± %.2g ps not below pipm %.4g ± %.2g ps",
						wl.Name, ideal.Mean, ideal.CI95, pipm.Mean, pipm.CI95)
				}
				if pipm.Mean >= native.Mean {
					return "", fmt.Errorf("%s: pipm %.4g ± %.2g ps not below native %.4g ± %.2g ps",
						wl.Name, pipm.Mean, pipm.CI95, native.Mean, native.CI95)
				}
				closure := (native.Mean - pipm.Mean) / (native.Mean - ideal.Mean)
				if math.IsNaN(closure) || closure < minClosure {
					return "", fmt.Errorf("%s: pipm closes only %.2g of the native→local-only gap, want ≥ %.2g",
						wl.Name, closure, minClosure)
				}
				// Convergence toward the ideal: doubling the budget amortises
				// more of the O(pages) warmup, so the hit rate must rise
				// (one seed — the doubled runs are the expensive ones).
				r2, err := c.get(o.Cfg, wl, migration.PIPM, 2*records, o.Seed)
				if err != nil {
					return "", infra(err)
				}
				r1, err := c.get(o.Cfg, wl, migration.PIPM, records, o.Seed)
				if err != nil {
					return "", infra(err)
				}
				if r2.LocalHitRate <= r1.LocalHitRate {
					return "", fmt.Errorf("%s: pipm hit rate %.4g at 2× budget not above %.4g at 1× — not converging on local-only",
						wl.Name, r2.LocalHitRate, r1.LocalHitRate)
				}
				if details != "" {
					details += ", "
				}
				details += fmt.Sprintf("%s closes %.0f%% (hit %.2f→%.2f)",
					wl.Name, 100*closure, pipmHit.Mean, r2.LocalHitRate)
			}
			return details + fmt.Sprintf(" over %d seeds", c.Opt.Seeds), nil
		},
	},
	{
		Name: "seed-structural-invariance",
		Desc: "changing the seed changes measurements but never the structural zeros",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			wl := o.Workloads[0]
			runs := 0
			for seed := o.Seed; seed < o.Seed+int64(c.Opt.Seeds); seed++ {
				for _, k := range c.Opt.schemes() {
					// Shared with the replication sweep through the memo.
					r, err := c.get(o.Cfg, wl, k, o.RecordsPerCore, seed)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if err := checkFamilyStructure(wl.Name, k, r); err != nil {
						return "", fmt.Errorf("seed %d: %w", seed, err)
					}
				}
			}
			return fmt.Sprintf("%d runs across %d seeds", runs, c.Opt.Seeds), nil
		},
	},
}

// checkFamilyStructure asserts the structural zeros of a scheme's family: a
// native run has no migration machinery at all, kernel schemes never move
// individual lines or touch remapping hardware, and hardware schemes never
// pay kernel shootdown or transfer stalls.
func checkFamilyStructure(wl string, k migration.Kind, r harness.Result) error {
	sc, ok := migration.Lookup(k)
	if !ok {
		return fmt.Errorf("%s: unknown scheme %v", wl, k)
	}
	switch sc.Family {
	case migration.FamilyNative, migration.FamilyLocalOnly:
		if r.Promotions != 0 || r.Demotions != 0 || r.LinesMoved != 0 || r.BytesMoved != 0 {
			return fmt.Errorf("%s/%v (%s family) migrated: prom %d dem %d lines %d bytes %d",
				wl, k, sc.Family, r.Promotions, r.Demotions, r.LinesMoved, r.BytesMoved)
		}
		if r.MgmtStallFrac != 0 || r.TransferFrac != 0 {
			return fmt.Errorf("%s/%v (%s family) paid migration stalls: mgmt %g transfer %g",
				wl, k, sc.Family, r.MgmtStallFrac, r.TransferFrac)
		}
		if r.PageFootprintFrac != 0 || r.LineFootprintFrac != 0 {
			return fmt.Errorf("%s/%v (%s family) reported local residency: pages %g lines %g",
				wl, k, sc.Family, r.PageFootprintFrac, r.LineFootprintFrac)
		}
		if r.LocalRemapHitRate != 0 || r.GlobalRemapHitRate != 0 {
			return fmt.Errorf("%s/%v (%s family) touched remap caches", wl, k, sc.Family)
		}
	case migration.FamilyKernel:
		if r.LinesMoved != 0 {
			return fmt.Errorf("%s/%v (kernel family) moved %d individual lines", wl, k, r.LinesMoved)
		}
		if r.LocalRemapHitRate != 0 || r.GlobalRemapHitRate != 0 {
			return fmt.Errorf("%s/%v (kernel family) touched remap caches", wl, k)
		}
	case migration.FamilyHardware:
		if r.MgmtStallFrac != 0 || r.TransferFrac != 0 {
			return fmt.Errorf("%s/%v (hardware family) paid kernel stalls: mgmt %g transfer %g",
				wl, k, r.MgmtStallFrac, r.TransferFrac)
		}
	}
	return nil
}

// firstScheme returns preferred when it is in the pass's scheme set, else the
// set's first scheme.
func firstScheme(c *Ctx, preferred migration.Kind) migration.Kind {
	if c.Opt.hasScheme(preferred) {
		return preferred
	}
	return c.Opt.schemes()[0]
}
