package validate

import (
	"fmt"

	"pipm/internal/harness"
	"pipm/internal/migration"
)

// Relation is one metamorphic relation: a property that must hold between
// the results of related runs, checked by comparing memoised simulations.
// Check returns a pass detail ("24 runs compared") or a violation error;
// wrap run errors with infra() so the pass aborts instead of mis-reporting
// an infrastructure failure as a violated relation.
type Relation struct {
	Name  string
	Desc  string
	Check func(c *Ctx) (string, error)
}

// Relations is the registry, in report order. DESIGN.md §12 documents each
// relation and how to add one.
var Relations = []Relation{
	{
		Name: "replay-determinism",
		Desc: "two executions of the same (config, workload, scheme, seed) produce identical Results",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			wl := o.Workloads[0]
			k := firstScheme(c, migration.PIPM)
			// Deliberately bypasses the memo: both runs must simulate.
			a, err := harness.RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
			if err != nil {
				return "", infra(err)
			}
			b, err := harness.RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
			if err != nil {
				return "", infra(err)
			}
			if a != b {
				return "", fmt.Errorf("%s/%v: repeated run diverged: %+v vs %+v", wl.Name, k, a, b)
			}
			return fmt.Sprintf("%s/%v simulated twice, bit-identical", wl.Name, k), nil
		},
	},
	{
		Name: "scheme-instruction-invariance",
		Desc: "the instruction count is a property of the trace, identical across every scheme",
		Check: func(c *Ctx) (string, error) {
			runs := 0
			for _, wl := range c.Opt.Harness.Workloads {
				var want int64
				for i, k := range c.Opt.schemes() {
					r, err := c.base(wl, k)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if i == 0 {
						want = r.Instructions
						continue
					}
					if r.Instructions != want {
						return "", fmt.Errorf("%s: %v executed %d instructions, %v executed %d",
							wl.Name, c.Opt.schemes()[0], want, k, r.Instructions)
					}
				}
			}
			return fmt.Sprintf("%d runs agree per workload", runs), nil
		},
	},
	{
		Name: "family-structure",
		Desc: "each scheme family leaves its unused machinery at exactly zero",
		Check: func(c *Ctx) (string, error) {
			runs := 0
			for _, wl := range c.Opt.Harness.Workloads {
				for _, k := range c.Opt.schemes() {
					r, err := c.base(wl, k)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if err := checkFamilyStructure(wl.Name, k, r); err != nil {
						return "", err
					}
				}
			}
			return fmt.Sprintf("%d runs structurally exact", runs), nil
		},
	},
	{
		Name: "zero-sharing-inert",
		Desc: "a workload with SharedFrac=0 moves no data and pays no migration machinery",
		Check: func(c *Ctx) (string, error) {
			wl := c.Opt.Harness.Workloads[0]
			wl.Name += "-noshare"
			wl.SharedFrac = 0
			runs := 0
			for _, k := range c.Opt.schemes() {
				r, err := c.base(wl, k)
				if err != nil {
					return "", infra(err)
				}
				runs++
				if r.Promotions != 0 || r.Demotions != 0 || r.LinesMoved != 0 || r.BytesMoved != 0 {
					return "", fmt.Errorf("%s/%v moved data with zero sharing: prom %d dem %d lines %d bytes %d",
						wl.Name, k, r.Promotions, r.Demotions, r.LinesMoved, r.BytesMoved)
				}
				if r.MgmtStallFrac != 0 || r.TransferFrac != 0 || r.InterStallFrac != 0 {
					return "", fmt.Errorf("%s/%v stalled on migration machinery with zero sharing: mgmt %g transfer %g inter %g",
						wl.Name, k, r.MgmtStallFrac, r.TransferFrac, r.InterStallFrac)
				}
				// HW-static statically pre-assigns every page, so its
				// footprint gauge is legitimately nonzero without a single
				// shared access; every other scheme must stay at zero.
				if k != migration.HWStatic && r.PageFootprintFrac != 0 {
					return "", fmt.Errorf("%s/%v resident pages with zero sharing: %g",
						wl.Name, k, r.PageFootprintFrac)
				}
			}
			return fmt.Sprintf("%d schemes inert on %s", runs, wl.Name), nil
		},
	},
	{
		Name: "threshold-max-degeneration",
		Desc: "raising the PIPM vote threshold to its 6-bit maximum cannot increase promotions",
		Check: func(c *Ctx) (string, error) {
			if !c.Opt.hasScheme(migration.PIPM) {
				return "skipped: pipm not in scheme set", nil
			}
			o := c.Opt.Harness
			hi := o.Cfg
			hi.PIPM.MigrationThreshold = 63
			for _, wl := range o.Workloads {
				def, err := c.base(wl, migration.PIPM)
				if err != nil {
					return "", infra(err)
				}
				strict, err := c.get(hi, wl, migration.PIPM, o.RecordsPerCore, o.Seed)
				if err != nil {
					return "", infra(err)
				}
				if strict.Promotions > def.Promotions {
					return "", fmt.Errorf("%s: threshold 63 promoted %d pages, threshold %d promoted %d",
						wl.Name, strict.Promotions, o.Cfg.PIPM.MigrationThreshold, def.Promotions)
				}
			}
			return fmt.Sprintf("%d workloads monotone", len(o.Workloads)), nil
		},
	},
	{
		Name: "records-prefix-monotonicity",
		Desc: "half the trace simulates strictly less time and fewer instructions than the whole",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			wl := o.Workloads[0]
			half := o.RecordsPerCore / 2
			if half < 1 {
				return "skipped: record budget too small to halve", nil
			}
			checked := 0
			for _, k := range []migration.Kind{migration.Native, migration.PIPM, migration.Memtis} {
				if !c.Opt.hasScheme(k) {
					continue
				}
				full, err := c.base(wl, k)
				if err != nil {
					return "", infra(err)
				}
				short, err := c.get(o.Cfg, wl, k, half, o.Seed)
				if err != nil {
					return "", infra(err)
				}
				if short.ExecTime >= full.ExecTime || short.Instructions >= full.Instructions {
					return "", fmt.Errorf("%s/%v: prefix not monotone: %v/%d instr vs %v/%d",
						wl.Name, k, short.ExecTime, short.Instructions, full.ExecTime, full.Instructions)
				}
				checked++
			}
			return fmt.Sprintf("%d schemes monotone on %s", checked, wl.Name), nil
		},
	},
	{
		Name: "local-only-lower-bound",
		Desc: "the local-only idealisation is strictly faster than the native baseline",
		Check: func(c *Ctx) (string, error) {
			if !c.Opt.hasScheme(migration.LocalOnly) || !c.Opt.hasScheme(migration.Native) {
				return "skipped: needs both local-only and native", nil
			}
			for _, wl := range c.Opt.Harness.Workloads {
				if wl.SharedFrac <= 0 {
					continue
				}
				ideal, err := c.base(wl, migration.LocalOnly)
				if err != nil {
					return "", infra(err)
				}
				base, err := c.base(wl, migration.Native)
				if err != nil {
					return "", infra(err)
				}
				if ideal.ExecTime >= base.ExecTime {
					return "", fmt.Errorf("%s: local-only %v not faster than native %v",
						wl.Name, ideal.ExecTime, base.ExecTime)
				}
			}
			return fmt.Sprintf("%d workloads bounded", len(c.Opt.Harness.Workloads)), nil
		},
	},
	{
		Name: "seed-structural-invariance",
		Desc: "changing the seed changes measurements but never the structural zeros",
		Check: func(c *Ctx) (string, error) {
			o := c.Opt.Harness
			wl := o.Workloads[0]
			runs := 0
			for seed := o.Seed; seed < o.Seed+int64(c.Opt.Seeds); seed++ {
				for _, k := range c.Opt.schemes() {
					// Shared with the replication sweep through the memo.
					r, err := c.get(o.Cfg, wl, k, o.RecordsPerCore, seed)
					if err != nil {
						return "", infra(err)
					}
					runs++
					if err := checkFamilyStructure(wl.Name, k, r); err != nil {
						return "", fmt.Errorf("seed %d: %w", seed, err)
					}
				}
			}
			return fmt.Sprintf("%d runs across %d seeds", runs, c.Opt.Seeds), nil
		},
	},
}

// checkFamilyStructure asserts the structural zeros of a scheme's family: a
// native run has no migration machinery at all, kernel schemes never move
// individual lines or touch remapping hardware, and hardware schemes never
// pay kernel shootdown or transfer stalls.
func checkFamilyStructure(wl string, k migration.Kind, r harness.Result) error {
	sc, ok := migration.Lookup(k)
	if !ok {
		return fmt.Errorf("%s: unknown scheme %v", wl, k)
	}
	switch sc.Family {
	case migration.FamilyNative, migration.FamilyLocalOnly:
		if r.Promotions != 0 || r.Demotions != 0 || r.LinesMoved != 0 || r.BytesMoved != 0 {
			return fmt.Errorf("%s/%v (%s family) migrated: prom %d dem %d lines %d bytes %d",
				wl, k, sc.Family, r.Promotions, r.Demotions, r.LinesMoved, r.BytesMoved)
		}
		if r.MgmtStallFrac != 0 || r.TransferFrac != 0 {
			return fmt.Errorf("%s/%v (%s family) paid migration stalls: mgmt %g transfer %g",
				wl, k, sc.Family, r.MgmtStallFrac, r.TransferFrac)
		}
		if r.PageFootprintFrac != 0 || r.LineFootprintFrac != 0 {
			return fmt.Errorf("%s/%v (%s family) reported local residency: pages %g lines %g",
				wl, k, sc.Family, r.PageFootprintFrac, r.LineFootprintFrac)
		}
		if r.LocalRemapHitRate != 0 || r.GlobalRemapHitRate != 0 {
			return fmt.Errorf("%s/%v (%s family) touched remap caches", wl, k, sc.Family)
		}
	case migration.FamilyKernel:
		if r.LinesMoved != 0 {
			return fmt.Errorf("%s/%v (kernel family) moved %d individual lines", wl, k, r.LinesMoved)
		}
		if r.LocalRemapHitRate != 0 || r.GlobalRemapHitRate != 0 {
			return fmt.Errorf("%s/%v (kernel family) touched remap caches", wl, k)
		}
	case migration.FamilyHardware:
		if r.MgmtStallFrac != 0 || r.TransferFrac != 0 {
			return fmt.Errorf("%s/%v (hardware family) paid kernel stalls: mgmt %g transfer %g",
				wl, k, r.MgmtStallFrac, r.TransferFrac)
		}
	}
	return nil
}

// firstScheme returns preferred when it is in the pass's scheme set, else the
// set's first scheme.
func firstScheme(c *Ctx, preferred migration.Kind) migration.Kind {
	if c.Opt.hasScheme(preferred) {
		return preferred
	}
	return c.Opt.schemes()[0]
}
