package validate

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/harness"
)

// smallOptions shrinks the quick tier far enough for a unit test: one
// workload, a reduced record budget, two seeds.
func smallOptions() Options {
	o := Quick()
	o.Harness.RecordsPerCore = 10_000
	o.Harness.Workloads = o.Harness.Workloads[:1]
	o.Seeds = 2
	return o
}

func TestEstimate(t *testing.T) {
	e := estimate([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if e.Mean != 5 {
		t.Fatalf("mean = %g, want 5", e.Mean)
	}
	if math.Abs(e.Stddev-2.138) > 0.001 {
		t.Fatalf("stddev = %g, want ≈2.138", e.Stddev)
	}
	// df=7 → t=2.365; CI = t·sd/√8.
	want := 2.365 * e.Stddev / math.Sqrt(8)
	if math.Abs(e.CI95-want) > 1e-9 {
		t.Fatalf("ci95 = %g, want %g", e.CI95, want)
	}
	if one := estimate([]float64{3}); one.Mean != 3 || one.CI95 != 0 {
		t.Fatalf("single sample: %+v", one)
	}
}

func TestTCritMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := tCrit(df)
		if v > prev {
			t.Fatalf("tCrit(%d) = %g > tCrit(%d) = %g", df, v, df-1, prev)
		}
		prev = v
	}
}

// TestSmallPassClean runs the full pass — audited sweep, every relation,
// replication — on a reduced configuration and expects zero failures.
func TestSmallPassClean(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run validation pass")
	}
	rep, err := Run(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		var buf bytes.Buffer
		rep.Render(&buf)
		t.Fatalf("validation failed:\n%s", buf.String())
	}
	if rep.Audit.Runs == 0 || rep.Audit.Sweeps == 0 || rep.Audit.Checks == 0 {
		t.Fatalf("audited sweep did no work: %+v", rep.Audit)
	}
	if len(rep.Relations) < 6 {
		t.Fatalf("registry has %d relations, want ≥ 6", len(rep.Relations))
	}
	if len(rep.Replication) == 0 {
		t.Fatal("no replication rows")
	}
	for _, row := range rep.Replication {
		if row.ExecTime.Mean <= 0 {
			t.Fatalf("%s/%s: nonpositive exec time %+v", row.Workload, row.Scheme, row.ExecTime)
		}
		if row.Seeds != 2 {
			t.Fatalf("%s/%s: %d seeds, want 2", row.Workload, row.Scheme, row.Seeds)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Fatal("JSON missing schema marker")
	}
	buf.Reset()
	rep.Render(&buf)
	for _, want := range []string{"audited sweep", "metamorphic relations", "replication"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestAuditPhaseSurfacesViolations pins the failure path: a sweep whose runs
// report violations must mark the report failed. Violations are simulated by
// an impossible infrastructure setup — a scheme set the machine rejects is
// reported as an audit-phase failure rather than silently dropped.
func TestReportVerdicts(t *testing.T) {
	r := &Report{Schema: Schema}
	if r.Failed() || r.Err() != nil {
		t.Fatal("empty report should pass")
	}
	r.Audit.Failures = []string{"pr/pipm: swmr: two exclusive holders"}
	if !r.Failed() || r.Err() == nil {
		t.Fatal("audit failure not surfaced")
	}
	r2 := &Report{Relations: []RelationResult{{Name: "x", Pass: false}}}
	if !r2.Failed() || r2.Err() == nil {
		t.Fatal("relation failure not surfaced")
	}
}

// TestRunnerMemoSharing pins that the seed-invariance relation and the
// replication sweep share simulations: a pass's runner executes each
// distinct key exactly once however many phases request it.
func TestRunnerMemoSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run validation pass")
	}
	o := smallOptions()
	o.Audit = audit.Options{} // isolate the unaudited phases
	ctx := &Ctx{Opt: o, runner: harness.NewRunner(0, nil)}
	rows, err := runReplication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	before := len(ctx.runner.RunStats())
	// Re-request the same cells: everything must come from the memo.
	if _, err := runReplication(ctx); err != nil {
		t.Fatal(err)
	}
	if after := len(ctx.runner.RunStats()); after != before {
		t.Fatalf("memo miss: %d runs became %d", before, after)
	}
}
