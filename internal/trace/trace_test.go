package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pipm/internal/config"
)

func mkRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Gap:   uint32(rng.Intn(64)),
			Addr:  config.Addr(rng.Int63n(1 << 40)).LineBase(),
			Write: rng.Intn(4) == 0,
			Dep:   rng.Intn(3) == 0,
		}
	}
	return recs
}

func TestSliceReader(t *testing.T) {
	recs := mkRecords(10, 1)
	r := NewSliceReader(recs)
	for i := 0; i < 10; i++ {
		got, ok := r.Next()
		if !ok || got != recs[i] {
			t.Fatalf("record %d: got %+v ok=%v, want %+v", i, got, ok, recs[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next past end returned ok")
	}
	r.Reset()
	if got, ok := r.Next(); !ok || got != recs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	r := NewLimit(NewSliceReader(mkRecords(100, 2)), 7)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("Limit yielded %d records, want 7", n)
	}
	// Limit larger than the stream drains cleanly.
	r2 := NewLimit(NewSliceReader(mkRecords(3, 3)), 100)
	n = 0
	for {
		if _, ok := r2.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("Limit over short stream yielded %d, want 3", n)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := mkRecords(5000, 4)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}

	r, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at record %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record after stream end")
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF reported error: %v", r.Err())
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Sequential scans (the common case) should encode in ≲3 bytes/record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		_ = w.Write(Record{Gap: 10, Addr: config.Addr(i * 64)})
	}
	_ = w.Flush()
	if perRec := float64(buf.Len()) / 10000; perRec > 3 {
		t.Fatalf("sequential trace encodes at %.2f bytes/record, want ≤ 3", perRec)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := NewBinaryReader(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic: err = %v, want ErrBadFormat", err)
	}
	if _, err := NewBinaryReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty stream: err = %v, want ErrBadFormat", err)
	}
	// Truncated mid-record: header present, delta missing.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{Gap: 1, Addr: 64})
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewBinaryReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded successfully")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported via Err")
	}
}

// Property: any record sequence (with line-aligned addresses) round-trips
// through the binary format, including the dependence bit.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, lines []uint32, writes []bool, deps []bool) bool {
		n := len(gaps)
		if len(lines) < n {
			n = len(lines)
		}
		if len(writes) < n {
			n = len(writes)
		}
		if len(deps) < n {
			n = len(deps)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{
				Gap:   uint32(gaps[i]),
				Addr:  config.Addr(lines[i]) << config.LineShift,
				Write: writes[i],
				Dep:   deps[i],
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if w.Write(rec) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewBinaryReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollect(t *testing.T) {
	c := config.Default()
	m := config.NewAddressMap(&c)
	recs := []Record{
		{Gap: 10, Addr: m.SharedAddr(0), Write: false},
		{Gap: 5, Addr: m.SharedAddr(64), Write: true},
		{Gap: 0, Addr: m.PrivateAddr(0, 0), Write: false},
		{Gap: 3, Addr: m.SharedAddr(config.PageBytes), Write: false},
	}
	s := Collect(NewSliceReader(recs), &m)
	if s.Records != 4 {
		t.Fatalf("Records = %d", s.Records)
	}
	if s.Instructions != 10+5+0+3+4 {
		t.Fatalf("Instructions = %d, want 22", s.Instructions)
	}
	if s.Reads != 3 || s.Writes != 1 {
		t.Fatalf("R/W = %d/%d, want 3/1", s.Reads, s.Writes)
	}
	if s.SharedRefs != 3 || s.PrivateRefs != 1 {
		t.Fatalf("shared/private = %d/%d, want 3/1", s.SharedRefs, s.PrivateRefs)
	}
	if s.UniquePages != 3 {
		t.Fatalf("UniquePages = %d, want 3", s.UniquePages)
	}
	if s.UniqueLines != 4 {
		t.Fatalf("UniqueLines = %d, want 4", s.UniqueLines)
	}
}
