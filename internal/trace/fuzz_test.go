package trace

import (
	"bytes"
	"errors"
	"testing"

	"pipm/internal/config"
)

// FuzzBinaryReader throws arbitrary bytes at the stream decoder. Whatever
// the input, the reader must never panic, must terminate, and must report
// either a clean EOF or an error wrapping ErrBadFormat — never a silent
// garbage record: every record it does yield has a line-aligned,
// non-negative address.
func FuzzBinaryReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PIPT"))
	f.Add([]byte("PIPT\x01"))
	f.Add([]byte("PIPT\x02"))     // unsupported version
	f.Add([]byte("JUNK\x01\x00")) // bad magic
	// A tiny valid stream: two records.
	var valid bytes.Buffer
	w, err := NewWriter(&valid)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Record{Gap: 3, Addr: 0x1000, Write: true})
	_ = w.Write(Record{Gap: 0, Addr: 0x1040, Dep: true})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-1]) // truncated final record

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("header error not ErrBadFormat: %v", err)
			}
			return
		}
		for {
			rec, ok := br.Next()
			if !ok {
				break
			}
			if rec.Addr != rec.Addr.LineBase() {
				t.Fatalf("decoded address %#x not line-aligned", uint64(rec.Addr))
			}
		}
		if err := br.Err(); err != nil && !errors.Is(err, ErrBadFormat) {
			t.Fatalf("decode error not ErrBadFormat: %v", err)
		}
		// A reader that stopped stays stopped.
		if _, ok := br.Next(); ok {
			t.Fatal("Next returned a record after reporting end of stream")
		}
	})
}

// FuzzRoundTrip encodes a fuzz-derived record sequence and decodes it back:
// the decoded stream must match record for record (at line granularity, the
// only granularity the format stores), with a clean EOF.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the input as 8-byte chunks: flags + gap + line address.
		var recs []Record
		for i := 0; i+8 <= len(data) && len(recs) < 4096; i += 8 {
			c := data[i : i+8]
			line := uint64(c[3]) | uint64(c[4])<<8 | uint64(c[5])<<16 |
				uint64(c[6])<<24 | uint64(c[7])<<32
			recs = append(recs, Record{
				Gap:   uint32(c[1]) | uint32(c[2])<<8,
				Addr:  config.Addr(line) << config.LineShift,
				Write: c[0]&1 != 0,
				Dep:   c[0]&2 != 0,
			})
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		br, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range recs {
			got, ok := br.Next()
			if !ok {
				t.Fatalf("stream ended at record %d of %d: %v", i, len(recs), br.Err())
			}
			want.Addr = want.Addr.LineBase()
			if got != want {
				t.Fatalf("record %d: got %+v want %+v", i, got, want)
			}
		}
		if _, ok := br.Next(); ok {
			t.Fatalf("extra record after %d", len(recs))
		}
		if err := br.Err(); err != nil {
			t.Fatalf("round trip ended dirty: %v", err)
		}
	})
}
