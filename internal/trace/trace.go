// Package trace defines the memory-reference trace format the simulator
// consumes. A trace is one record stream per simulated core; each record is
// a count of non-memory instructions followed by one memory operation. The
// format mirrors what a Pin-style tool would capture (§5.1.2 of the paper),
// minus instruction bytes the timing model does not need.
package trace

import (
	"pipm/internal/config"
)

// Record is one memory operation preceded by Gap non-memory instructions.
type Record struct {
	Gap   uint32      // non-memory instructions retired before this op
	Addr  config.Addr // unified physical address of the access
	Write bool        // store (true) or load (false)
	// Dep marks an address-dependent operation (pointer chase): it cannot
	// issue until the previous memory op completes. Dependence is what
	// bounds real memory-level parallelism on graph and database codes.
	Dep bool
}

// Reader yields the records of one core's stream in program order.
// Implementations must be deterministic: two passes over the same reader
// construction yield identical streams.
type Reader interface {
	// Next returns the next record. ok is false at end of stream.
	Next() (rec Record, ok bool)
}

// SliceReader replays an in-memory record slice.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader returns a Reader over recs. The slice is not copied.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (r *SliceReader) Next() (Record, bool) {
	if r.pos >= len(r.recs) {
		return Record{}, false
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, true
}

// Reset rewinds the reader to the start of the slice.
func (r *SliceReader) Reset() { r.pos = 0 }

// Limit wraps a Reader and stops after n records, letting the harness bound
// simulation length uniformly across workloads.
type Limit struct {
	r    Reader
	left int64
}

// NewLimit returns a Reader that yields at most n records from r.
func NewLimit(r Reader, n int64) *Limit { return &Limit{r: r, left: n} }

// Next implements Reader.
func (l *Limit) Next() (Record, bool) {
	if l.left <= 0 {
		return Record{}, false
	}
	rec, ok := l.r.Next()
	if !ok {
		l.left = 0
		return Record{}, false
	}
	l.left--
	return rec, true
}

// Stats summarizes a record stream.
type Stats struct {
	Records      int64
	Instructions int64 // Gap sums + one per memory op
	Reads        int64
	Writes       int64
	SharedRefs   int64
	PrivateRefs  int64
	UniquePages  int
	UniqueLines  int
}

// Collect drains r and accumulates stream statistics. The address map, when
// non-nil, is used to split shared from private references.
func Collect(r Reader, m *config.AddressMap) Stats {
	var s Stats
	pages := make(map[config.Addr]struct{})
	lines := make(map[config.Addr]struct{})
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		s.Records++
		s.Instructions += int64(rec.Gap) + 1
		if rec.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		if m != nil {
			if kind, _ := m.Region(rec.Addr); kind == config.RegionShared {
				s.SharedRefs++
			} else {
				s.PrivateRefs++
			}
		}
		pages[rec.Addr.Page()] = struct{}{}
		lines[rec.Addr.Line()] = struct{}{}
	}
	s.UniquePages = len(pages)
	s.UniqueLines = len(lines)
	return s
}
