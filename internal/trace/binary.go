package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pipm/internal/config"
)

// Binary stream format, one stream per core:
//
//	magic   [4]byte  "PIPT"
//	version uvarint  (1)
//	records:
//	  header uvarint: gap<<2 | dep<<1 | write
//	  delta  varint:  signed line-address delta from the previous record,
//	                  in cache-line units (traces are strongly local, so
//	                  deltas are small); low 6 bits of the byte offset are
//	                  carried in a following uvarint only when nonzero is
//	                  impossible — we round addresses to line granularity,
//	                  which is all the timing model observes.
//
// Line-delta encoding keeps real traces ~3 bytes/record.

var magic = [4]byte{'P', 'I', 'P', 'T'}

const formatVersion = 1

// ErrBadFormat reports a malformed or truncated trace stream.
var ErrBadFormat = errors.New("trace: bad stream format")

// Writer encodes records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	prevLine int64
	started  bool
	buf      [2 * binary.MaxVarintLen64]byte
	count    int64
}

// NewWriter returns a Writer emitting the stream header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], formatVersion)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Addresses are stored at line granularity.
func (w *Writer) Write(rec Record) error {
	head := uint64(rec.Gap) << 2
	if rec.Dep {
		head |= 2
	}
	if rec.Write {
		head |= 1
	}
	n := binary.PutUvarint(w.buf[:], head)
	line := int64(rec.Addr.Line())
	delta := line - w.prevLine
	if !w.started {
		delta = line
		w.started = true
	}
	w.prevLine = line
	n += binary.PutVarint(w.buf[n:], delta)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// BinaryReader decodes a stream produced by Writer. It implements Reader.
type BinaryReader struct {
	r        *bufio.Reader
	prevLine int64
	started  bool
	err      error
}

// NewBinaryReader validates the header and returns a reader positioned at
// the first record.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return &BinaryReader{r: br}, nil
}

// Next implements Reader. After the stream ends or errors, ok is false;
// check Err to distinguish clean EOF from corruption.
func (b *BinaryReader) Next() (Record, bool) {
	if b.err != nil {
		return Record{}, false
	}
	head, err := binary.ReadUvarint(b.r)
	if err != nil {
		if err != io.EOF {
			b.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		return Record{}, false
	}
	delta, err := binary.ReadVarint(b.r)
	if err != nil {
		b.err = fmt.Errorf("%w: truncated record: %v", ErrBadFormat, err)
		return Record{}, false
	}
	line := delta
	if b.started {
		line = b.prevLine + delta
	} else {
		b.started = true
	}
	if line < 0 {
		b.err = fmt.Errorf("%w: negative line address", ErrBadFormat)
		return Record{}, false
	}
	b.prevLine = line
	return Record{
		Gap:   uint32(head >> 2),
		Addr:  config.Addr(line) << config.LineShift,
		Write: head&1 == 1,
		Dep:   head&2 == 2,
	}, true
}

// Err returns the first decoding error encountered, or nil on clean EOF.
func (b *BinaryReader) Err() error { return b.err }
