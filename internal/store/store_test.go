package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pipm/internal/telemetry"
)

// testKey derives a deterministic valid key from a label.
func testKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("round-trip")
	body := []byte(`{"result": 42}`)
	if err := s.Save(key, body); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("loaded %q, want %q", got, body)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 || st.Saves != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 save", st)
	}
}

func TestMissIsErrMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(testKey("never-saved")); !errors.Is(err, ErrMiss) {
		t.Fatalf("Load of absent key = %v, want ErrMiss", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestCorruptEntries walks every way an on-disk entry can go bad and
// requires each to surface as a CorruptError — never as data, never as a
// plain miss (the counter distinguishes them).
func TestCorruptEntries(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(path string, data []byte) []byte
	}{
		{"truncated body", func(_ string, data []byte) []byte { return data[:len(data)-3] }},
		{"flipped body byte", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)-1] ^= 0xff
			return out
		}},
		{"no header", func(_ string, _ []byte) []byte { return []byte("not an entry") }},
		{"wrong schema", func(_ string, data []byte) []byte {
			return append([]byte("pipm-store/v999"), data[len(Schema):]...)
		}},
		{"empty file", func(_ string, _ []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("corrupt/" + tc.name)
			if err := s.Save(key, []byte("payload payload payload")); err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(path, data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = s.Load(key)
			if !IsCorrupt(err) {
				t.Fatalf("Load of mangled entry = %v, want CorruptError", err)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt", st)
			}
			// Re-saving must atomically repair the entry in place.
			if err := s.Save(key, []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if got, err := s.Load(key); err != nil || string(got) != "fresh" {
				t.Fatalf("Load after repair = %q, %v", got, err)
			}
		})
	}
}

// TestKeyMismatchIsCorrupt: an entry renamed onto the wrong key (operator
// error, disk mixup) must not be served for that key.
func TestKeyMismatchIsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey("a"), testKey("b")
	if err := s.Save(k1, []byte("body-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.Path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(k2); !IsCorrupt(err) {
		t.Fatalf("Load of foreign-keyed entry = %v, want CorruptError", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", strings.Repeat("Z", 64), strings.Repeat("a", 63), "../" + strings.Repeat("a", 61)} {
		if err := s.Save(key, []byte("x")); err == nil {
			t.Errorf("Save(%q) accepted an invalid key", key)
		}
		if _, err := s.Load(key); err == nil || errors.Is(err, ErrMiss) {
			t.Errorf("Load(%q) = %v, want invalid-key error", key, err)
		}
	}
}

func TestEntriesKeysAndRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 8; i++ {
		key := testKey(fmt.Sprintf("entry-%d", i))
		if err := s.Save(key, []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
		want = append(want, key)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %s before %s", keys[i-1][:8], keys[i][:8])
		}
	}
	if err := s.Remove(keys[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(keys[0]); err != nil {
		t.Fatalf("double Remove errored: %v", err)
	}
	keys, err = s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want)-1 {
		t.Fatalf("after Remove, %d keys remain, want %d", len(keys), len(want)-1)
	}
}

func TestGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	oldKey, newKey := testKey("old"), testKey("new")
	if err := s.Save(oldKey, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(newKey, []byte("new")); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.Path(oldKey), past, past); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a crashed writer.
	stale := filepath.Join(filepath.Dir(s.Path(oldKey)), ".tmp-crashed")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}

	removed, err := s.GC(24*time.Hour, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d entries, want 1", removed)
	}
	if _, err := s.Load(oldKey); !errors.Is(err, ErrMiss) {
		t.Fatalf("old entry survived GC: %v", err)
	}
	if _, err := s.Load(newKey); err != nil {
		t.Fatalf("new entry did not survive GC: %v", err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file survived GC")
	}
}

func TestWriteFileAtomicAndProbe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := ProbeFile(path); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteToAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read %q, %v; want v2", data, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d files after atomic writes, want 1", len(entries))
	}
	if err := ProbeFile(filepath.Join(dir, "missing-parent", "x.json")); err == nil {
		t.Fatal("ProbeFile accepted a path with a missing parent")
	}
	if err := ProbeFile(dir); err == nil {
		t.Fatal("ProbeFile accepted a directory")
	}
}

func TestRegisterGauges(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.RegisterGauges(reg)
	key := testKey("gauged")
	if err := s.Save(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(key); err != nil {
		t.Fatal(err)
	}
	reg.Snapshot(0)
	series := reg.Series()
	got := map[string]float64{}
	for i, name := range series.Names {
		got[name] = series.Samples[0].Values[i]
	}
	if got["store.hits"] != 1 || got["store.saves"] != 1 {
		t.Fatalf("gauges = %v, want store.hits=1 store.saves=1", got)
	}
}

// TestConcurrentSharedDir hammers one directory from many goroutines over
// two independent handles — the in-process stand-in for two engines racing
// on one store. Every load must return either ErrMiss or the exact body;
// corruption is never acceptable.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	body := func(i int) []byte { return []byte(strings.Repeat(fmt.Sprintf("body-%d ", i), 100)) }
	var wg sync.WaitGroup
	errs := make(chan error, 4*keys*4)
	for _, s := range []*Store{s1, s2} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(s *Store) {
				defer wg.Done()
				for round := 0; round < 4; round++ {
					for i := 0; i < keys; i++ {
						key := testKey(fmt.Sprintf("conc-%d", i))
						if err := s.Save(key, body(i)); err != nil {
							errs <- err
						}
						got, err := s.Load(key)
						if err != nil && !errors.Is(err, ErrMiss) {
							errs <- fmt.Errorf("load %d: %w", i, err)
						}
						if err == nil && string(got) != string(body(i)) {
							errs <- fmt.Errorf("load %d returned wrong body", i)
						}
					}
				}
			}(s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTwoProcessStore re-runs the test binary twice concurrently as real
// child processes (the classic helper-process pattern), both writing an
// overlapping key range into one store directory. Afterwards every entry
// must verify — atomic rename means last-writer-wins with no torn state.
func TestTwoProcessStore(t *testing.T) {
	if os.Getenv("PIPM_STORE_TEST_DIR") != "" {
		t.Fatal("helper env leaked into the parent test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	dir := t.TempDir()
	run := func(salt string) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "TestHelperProcessWriter$", "-test.v")
		cmd.Env = append(os.Environ(),
			"PIPM_STORE_TEST_DIR="+dir,
			"PIPM_STORE_TEST_SALT="+salt)
		return cmd
	}
	c1, c2 := run("alpha"), run("beta")
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Wait(); err != nil {
		t.Fatalf("child 1 failed: %v", err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatalf("child 2 failed: %v", err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != helperKeys {
		t.Fatalf("store holds %d keys after two writers, want %d", len(keys), helperKeys)
	}
	for _, key := range keys {
		if _, err := s.Load(key); err != nil {
			t.Errorf("entry %.12s… does not verify after concurrent writers: %v", key, err)
		}
	}
}

const helperKeys = 24

// TestHelperProcessWriter is the child body of TestTwoProcessStore: it only
// does work when launched with the helper environment set.
func TestHelperProcessWriter(t *testing.T) {
	dir := os.Getenv("PIPM_STORE_TEST_DIR")
	if dir == "" {
		t.Skip("helper process body; driven by TestTwoProcessStore")
	}
	salt := os.Getenv("PIPM_STORE_TEST_SALT")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		for i := 0; i < helperKeys; i++ {
			key := testKey(fmt.Sprintf("two-proc-%d", i))
			// Both processes write the same body per key — deterministic
			// simulations do too — but interleave with loads to race
			// renames against reads.
			body := []byte(strings.Repeat(fmt.Sprintf("proc body %d ", i), 50))
			if err := s.Save(key, body); err != nil {
				t.Fatalf("%s: save %d: %v", salt, i, err)
			}
			got, err := s.Load(key)
			if err != nil {
				t.Fatalf("%s: load %d: %v", salt, i, err)
			}
			if string(got) != string(body) {
				t.Fatalf("%s: load %d returned a different body", salt, i)
			}
		}
	}
}
