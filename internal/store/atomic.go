package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// writeFileAtomic stages the write in a temp file next to path, fsyncs it,
// and renames it into place, so path only ever holds a complete document. A
// crash mid-write leaves the old file (or nothing) plus a stale `.tmp-*`
// the store's GC sweeps later.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteFileAtomic atomically replaces path with data (temp file in the
// destination directory + rename). This is the pattern every durable export
// in the repo uses — a crash mid-write must never leave a truncated,
// unparseable artefact behind (DESIGN.md §14.3).
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteToAtomic streams write into a temp file and atomically renames it to
// path — WriteFileAtomic for exports too large to buffer.
func WriteToAtomic(path string, write func(io.Writer) error) error {
	return writeFileAtomic(path, write)
}

// ProbeFile verifies up front that path can be created: its parent
// directory exists and is writable, and path itself is not a directory.
// CLIs call this on every output flag before the first simulation, so a
// doomed multi-minute sweep fails in milliseconds instead of at write time.
func ProbeFile(path string) error {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return fmt.Errorf("output path %s is a directory", path)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("output path %s is not writable: %w", path, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}
