// Package store is the disk-backed, content-addressed result store: a
// directory of immutable entries keyed by canonical run key (the sha256 the
// harness computes over the full run recipe, see internal/harness/runkey.go).
// The harness's in-memory singleflight memo falls through to a Store before
// simulating, so a sweep re-run in a fresh process — the CI job, the next
// `-exp all`, a re-anchored parameter study — pays only for keys it has
// never seen (DESIGN.md §14).
//
// Durability rules, in order of importance:
//
//   - Writes are atomic: an entry is staged in a temp file in its final
//     shard directory, fsynced, then renamed into place. A reader never
//     observes a half-written entry, and concurrent writers of the same key
//     (two processes simulating the same run) both rename complete files —
//     last one wins, and both are byte-identical anyway because runs are
//     deterministic.
//   - Entries are self-describing: a one-line `pipm-store/v1` header carries
//     the schema version, the run key and a sha256 checksum + length of the
//     body that follows.
//   - Loads verify before trusting: a missing header, foreign key, short
//     body or checksum mismatch makes the entry a *miss* (counted as
//     corrupt), never a wrong answer — the caller re-simulates and the next
//     Save atomically replaces the bad file.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pipm/internal/telemetry"
)

// Schema is the entry header magic. Bump it only with a migration story:
// loads reject any other value as corrupt, so old entries become misses.
const Schema = "pipm-store/v1"

// ErrMiss reports a key with no stored entry. It is the ordinary cold-cache
// outcome, distinct from corruption.
var ErrMiss = errors.New("store: entry not found")

// CorruptError reports an entry that exists on disk but failed
// verification. Callers must treat it exactly like a miss — re-simulate and
// re-save — never as data.
type CorruptError struct {
	Key    string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt entry %.12s…: %s", e.Key, e.Reason)
}

// IsCorrupt reports whether err marks a failed entry verification.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Stats is a snapshot of one Store handle's counters. Hits/Misses/Corrupt
// count Load outcomes; Saves/SaveErrors count Save outcomes. The counters
// are per-process observability (they feed the -json bench report's `store`
// block), not persisted state.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Corrupt    uint64 `json:"corrupt"`
	Saves      uint64 `json:"saves"`
	SaveErrors uint64 `json:"save_errors,omitempty"`
}

// Store is one handle onto a store directory. Handles are safe for
// concurrent use by multiple goroutines, and distinct processes may share
// one directory: every mutation is a whole-file atomic rename.
type Store struct {
	root string

	hits, misses, corrupt, saves, saveErrs atomic.Uint64
}

// Open prepares dir as a result store, creating it if needed, and probes it
// for writability so an unusable -store path fails before any simulation
// runs.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return &Store{root: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// Stats returns a snapshot of the handle's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Corrupt:    s.corrupt.Load(),
		Saves:      s.saves.Load(),
		SaveErrors: s.saveErrs.Load(),
	}
}

// NoteContentCorrupt reclassifies the handle's most recent hit as corrupt:
// the container (header + checksum) verified but the caller's content layer
// — digest or shape checks it owns — did not. One number then covers every
// entry that could not be trusted.
func (s *Store) NoteContentCorrupt() {
	s.hits.Add(^uint64(0))
	s.corrupt.Add(1)
}

// RegisterGauges exposes the handle's counters as telemetry gauges, read at
// snapshot time, for embedders that sample a process-level registry. The
// per-run registries the machine owns never include these: store traffic is
// host-process state, and folding it into run telemetry would break the
// byte-identical-exports guarantee.
func (s *Store) RegisterGauges(r *telemetry.Registry) {
	r.GaugeFunc("store.hits", func() float64 { return float64(s.hits.Load()) })
	r.GaugeFunc("store.misses", func() float64 { return float64(s.misses.Load()) })
	r.GaugeFunc("store.corrupt", func() float64 { return float64(s.corrupt.Load()) })
	r.GaugeFunc("store.saves", func() float64 { return float64(s.saves.Load()) })
}

// keyLen is hex-encoded sha256.
const keyLen = 2 * sha256.Size

// validKey reports whether key is 64 lowercase-hex characters.
func validKey(key string) bool {
	if len(key) != keyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Path returns the entry file for key: a 2-level hex-sharded layout
// (`<root>/ab/cd/<key>`) that keeps directory fanout bounded at scale.
func (s *Store) Path(key string) string {
	return filepath.Join(s.root, key[:2], key[2:4], key)
}

// Load returns the verified body of the entry for key. A missing entry
// returns ErrMiss; an existing but unverifiable one returns a *CorruptError.
// Either way the caller's move is the same: treat it as a miss.
func (s *Store) Load(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		s.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	body, cerr := verifyEntry(key, data)
	if cerr != nil {
		s.corrupt.Add(1)
		return nil, cerr
	}
	s.hits.Add(1)
	return body, nil
}

// Save atomically writes body as the entry for key, replacing any previous
// entry.
func (s *Store) Save(key string, body []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	err := s.save(key, body)
	if err != nil {
		s.saveErrs.Add(1)
		return err
	}
	s.saves.Add(1)
	return nil
}

func (s *Store) save(key string, body []byte) error {
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(body)
	header := fmt.Sprintf("%s %s %s %d\n", Schema, key, hex.EncodeToString(sum[:]), len(body))
	return writeFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, header); err != nil {
			return err
		}
		_, err := w.Write(body)
		return err
	})
}

// verifyEntry checks the header against the body and the expected key,
// returning the body or the precise reason the entry cannot be trusted.
func verifyEntry(key string, data []byte) ([]byte, error) {
	corrupt := func(reason string) ([]byte, error) {
		return nil, &CorruptError{Key: key, Reason: reason}
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return corrupt("no header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 {
		return corrupt("malformed header")
	}
	if fields[0] != Schema {
		return corrupt(fmt.Sprintf("schema %q, want %q", fields[0], Schema))
	}
	if fields[1] != key {
		return corrupt(fmt.Sprintf("entry is keyed %.12s…", fields[1]))
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return corrupt("malformed body length")
	}
	body := data[nl+1:]
	if len(body) != n {
		return corrupt(fmt.Sprintf("body is %d bytes, header says %d (truncated?)", len(body), n))
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return corrupt("body checksum mismatch")
	}
	return body, nil
}

// EntryInfo describes one stored entry for listings and GC decisions.
type EntryInfo struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// Entries walks the store and returns every entry, sorted by key. Files that
// are not shaped like entries (temp files, strays) are skipped.
func (s *Store) Entries() ([]EntryInfo, error) {
	var out []EntryInfo
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !validKey(name) || s.Path(name) != path {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		out = append(out, EntryInfo{Key: name, Size: info.Size(), ModTime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Keys returns every stored key, sorted.
func (s *Store) Keys() ([]string, error) {
	entries, err := s.Entries()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys, nil
}

// Remove deletes the entry for key; removing an absent entry is not an
// error.
func (s *Store) Remove(key string) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if err := os.Remove(s.Path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GC removes entries last written before now-maxAge, plus any staged temp
// files older than one hour (crashed writers leave those behind; live ones
// rename within milliseconds). It returns how many entries were collected.
func (s *Store) GC(maxAge time.Duration, now time.Time) (int, error) {
	cutoff := now.Add(-maxAge)
	tmpCutoff := now.Add(-time.Hour)
	removed := 0
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		name := d.Name()
		switch {
		case validKey(name) && s.Path(name) == path:
			if info.ModTime().Before(cutoff) {
				if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
					return err
				}
				removed++
			}
		case strings.HasPrefix(name, ".tmp-") && info.ModTime().Before(tmpCutoff):
			if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return removed, fmt.Errorf("store: %w", err)
	}
	return removed, nil
}
