package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// RunRequest names one simulation the run graph needs: the full
// configuration, workload, scheme and trace budget. Requests are the unit of
// deduplication — two requests with the same RunKey execute once.
type RunRequest struct {
	Cfg     config.Config
	WL      workload.Params
	Scheme  migration.Kind
	Records int64
	Seed    int64

	// Telemetry, when enabled, makes the run collect a time-series and/or
	// event trace. Enabled telemetry is part of the run identity; the zero
	// value leaves the key — and the memo space — exactly as before.
	Telemetry telemetry.Options

	// Audit, when enabled, attaches the runtime invariant auditor; a run
	// with violations fails (get returns the report's error). Enabled audit
	// is part of the run identity, like Telemetry.
	Audit audit.Options

	// Intra, when enabled, runs the simulation on the intra-run parallel
	// engine (DESIGN.md §13). Results are bit-identical to the sequential
	// engine's, but the engine configuration joins the run identity like
	// Telemetry/Audit so determinism tests can force distinct executions.
	Intra machine.IntraOptions
}

// Key returns the request's canonical run key.
func (r RunRequest) Key() RunKey {
	return keyOf(r.Cfg, r.WL, r.Scheme, r.Records, r.Seed, r.Telemetry, r.Audit, r.Intra)
}

// RunStats is the observability record of one executed simulation: how long
// it took on the wall clock, how much simulated time and how many
// instructions it covered, and how many times the memo served it again.
type RunStats struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Records  int64  `json:"records_per_core"`
	Seed     int64  `json:"seed"`

	WallMS       float64 `json:"wall_ms"` // host wall-clock for RunOne
	SimPS        int64   `json:"sim_ps"`  // simulated execution time (picoseconds)
	Instructions int64   `json:"instructions"`
	MIPS         float64 `json:"mips"`      // simulated instructions per wall-µs
	MemoHits     int     `json:"memo_hits"` // extra requests served from the memo
}

// engine is the run-graph scheduler: a RunKey-addressed memo with
// singleflight semantics over a bounded worker pool. Any number of figure
// builders may request runs concurrently; each distinct key executes exactly
// once, at most `workers` simulations run at a time, and every requester of
// a key blocks until its one execution finishes. Results are deterministic
// for any worker count because RunOne itself is deterministic and table
// assembly reads the memo in presentation order.
type engine struct {
	workers  int
	sem      chan struct{}
	progress io.Writer

	mu        sync.Mutex
	runs      map[RunKey]*runEntry
	scheduled int
	completed int
	wallSum   time.Duration
}

type runEntry struct {
	done   chan struct{} // closed when res/err/stats are final
	res    Result
	err    error
	stats  RunStats
	telem  *telemetry.Output // nil unless the request enabled telemetry
	report audit.Report      // zero unless the request enabled auditing
}

func newEngine(workers int, progress io.Writer) *engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &engine{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		progress: progress,
		runs:     map[RunKey]*runEntry{},
	}
}

// get returns the memoized result for the request, executing it if this is
// the first request for its key. Concurrent callers with the same key share
// one execution (singleflight); callers with distinct keys run in parallel,
// bounded by the worker pool.
func (e *engine) get(req RunRequest) (Result, error) {
	key := req.Key()
	e.mu.Lock()
	if ent, ok := e.runs[key]; ok {
		ent.stats.MemoHits++
		e.mu.Unlock()
		<-ent.done
		return ent.res, ent.err
	}
	ent := &runEntry{done: make(chan struct{})}
	ent.stats = RunStats{
		Key:      key.String(),
		Workload: req.WL.Name,
		Scheme:   req.Scheme.String(),
		Records:  req.Records,
		Seed:     req.Seed,
	}
	e.runs[key] = ent
	e.scheduled++
	e.mu.Unlock()

	e.sem <- struct{}{}
	start := time.Now()
	ent.res, ent.telem, ent.report, ent.err = RunOneOpts(
		req.Cfg, req.WL, req.Scheme, req.Records, req.Seed,
		RunOpts{Telemetry: req.Telemetry, Audit: req.Audit, Intra: req.Intra})
	if ent.err == nil {
		// An invariant violation fails the run exactly like a build error
		// would: every requester of this key sees it.
		ent.err = ent.report.Err()
	}
	wall := time.Since(start)
	<-e.sem

	ent.stats.WallMS = float64(wall) / float64(time.Millisecond)
	ent.stats.SimPS = int64(ent.res.ExecTime)
	ent.stats.Instructions = ent.res.Instructions
	if us := wall.Microseconds(); us > 0 {
		ent.stats.MIPS = float64(ent.res.Instructions) / float64(us)
	}
	close(ent.done)
	e.noteDone(ent, wall)
	if ent.err != nil {
		return ent.res, fmt.Errorf("harness: %s/%v: %w", req.WL.Name, req.Scheme, ent.err)
	}
	return ent.res, nil
}

// noteDone updates the progress counters and, when a progress writer is
// attached, emits one completion line with a naive remaining-work ETA
// (mean wall per run × outstanding runs ÷ workers). The line is written
// while still holding the engine lock: counters printed outside it could
// appear out of order ("3/24" before "2/24") and two workers' lines could
// interleave mid-line under parallel runs. The lock also makes the engine
// the sole serialisation point for the writer, so any io.Writer — a plain
// bytes.Buffer in tests, os.Stderr in the CLIs — is safe without its own
// locking as long as nothing else writes to it concurrently.
func (e *engine) noteDone(ent *runEntry, wall time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.completed++
	e.wallSum += wall
	if e.progress == nil {
		return
	}
	mean := e.wallSum / time.Duration(e.completed)
	remaining := e.scheduled - e.completed
	eta := mean * time.Duration(remaining) / time.Duration(e.workers)
	fmt.Fprintf(e.progress, "[engine] %d/%d runs  %s/%s %v  sim %v  (eta %v for %d queued)\n",
		e.completed, e.scheduled, ent.stats.Workload, ent.stats.Scheme,
		wall.Round(time.Millisecond), sim.Time(ent.stats.SimPS),
		eta.Round(100*time.Millisecond), remaining)
}

// runAll executes the deduplicated request set on the worker pool and blocks
// until every run finishes. The first error in request order is returned —
// request order, not completion order, so the error is deterministic for any
// worker count.
func (e *engine) runAll(reqs []RunRequest) error {
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req RunRequest) {
			defer wg.Done()
			_, errs[i] = e.get(req)
		}(i, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// statsSnapshot returns the per-run records of every completed execution,
// sorted by (workload, scheme, key) so the order is independent of
// completion order.
func (e *engine) statsSnapshot() []RunStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []RunStats
	for _, ent := range e.runs {
		select {
		case <-ent.done:
			out = append(out, ent.stats)
		default: // still executing; skip
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Runner is the run-graph engine's exported face for callers other than the
// Suite (the validation subsystem, ad-hoc tools): RunKey-memoised,
// singleflight, bounded-parallel execution of RunRequests. Two requests with
// equal keys — across any goroutines — simulate once and share the Result.
type Runner struct{ eng *engine }

// NewRunner builds a runner executing at most workers simulations at a time
// (≤ 0 means GOMAXPROCS); progress, when non-nil, receives one line per
// completed run.
func NewRunner(workers int, progress io.Writer) *Runner {
	return &Runner{eng: newEngine(workers, progress)}
}

// Get returns the request's memoized Result, executing the simulation on
// first request of its key. Audited requests fail on any invariant violation.
func (r *Runner) Get(req RunRequest) (Result, error) { return r.eng.get(req) }

// Report returns the audit report of a completed audited run, or a zero
// report if the key was never requested (or auditing was off).
func (r *Runner) Report(req RunRequest) audit.Report {
	r.eng.mu.Lock()
	ent, ok := r.eng.runs[req.Key()]
	r.eng.mu.Unlock()
	if !ok {
		return audit.Report{}
	}
	<-ent.done
	return ent.report
}

// RunStats returns the per-run observability records of every completed run.
func (r *Runner) RunStats() []RunStats { return r.eng.statsSnapshot() }

// RunTelemetry pairs one completed run's identity with its collected
// telemetry output.
type RunTelemetry struct {
	Workload string
	Scheme   string
	Key      RunKey
	Output   *telemetry.Output
}

// telemetrySnapshot returns the telemetry of every completed run that
// collected any, sorted by (workload, scheme, key) so export order — and the
// exported bytes — are independent of worker count and completion order.
func (e *engine) telemetrySnapshot() []RunTelemetry {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []RunTelemetry
	for key, ent := range e.runs {
		select {
		case <-ent.done:
			if ent.telem != nil && ent.err == nil {
				out = append(out, RunTelemetry{
					Workload: ent.stats.Workload,
					Scheme:   ent.stats.Scheme,
					Key:      key,
					Output:   ent.telem,
				})
			}
		default: // still executing; skip
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}
