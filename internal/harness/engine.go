package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/store"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// RunRequest names one simulation the run graph needs: the full
// configuration, workload, scheme and trace budget. Requests are the unit of
// deduplication — two requests with the same RunKey execute once.
type RunRequest struct {
	Cfg     config.Config
	WL      workload.Params
	Scheme  migration.Kind
	Records int64
	Seed    int64

	// Telemetry, when enabled, makes the run collect a time-series and/or
	// event trace. Enabled telemetry is part of the run identity; the zero
	// value leaves the key — and the memo space — exactly as before.
	Telemetry telemetry.Options

	// Audit, when enabled, attaches the runtime invariant auditor; a run
	// with violations fails (get returns the report's error). Enabled audit
	// is part of the run identity, like Telemetry.
	Audit audit.Options

	// Intra, when enabled, runs the simulation on the intra-run parallel
	// engine (DESIGN.md §13). Results are bit-identical to the sequential
	// engine's, but the engine configuration joins the run identity like
	// Telemetry/Audit so determinism tests can force distinct executions.
	Intra machine.IntraOptions
}

// Key returns the request's canonical run key.
func (r RunRequest) Key() RunKey {
	return keyOf(r.Cfg, r.WL, r.Scheme, r.Records, r.Seed, r.Telemetry, r.Audit, r.Intra)
}

// RunStats is the observability record of one executed simulation: how long
// it took on the wall clock, how much simulated time and how many
// instructions it covered, and how many times the memo served it again.
type RunStats struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Records  int64  `json:"records_per_core"`
	Seed     int64  `json:"seed"`

	// Cluster shape and the record volume actually simulated. Cluster-scale
	// sweeps scale Records inversely with Hosts, so Records alone misleads
	// cross-host-count throughput comparisons; TotalRecords is
	// Records × Hosts × CoresPerHost, the real simulated volume.
	Hosts        int   `json:"hosts"`
	CoresPerHost int   `json:"cores_per_host"`
	TotalRecords int64 `json:"total_records"`

	WallMS       float64 `json:"wall_ms"` // host wall-clock for RunOne
	SimPS        int64   `json:"sim_ps"`  // simulated execution time (picoseconds)
	Instructions int64   `json:"instructions"`
	MIPS         float64 `json:"mips"`      // simulated instructions per wall-µs
	MemoHits     int     `json:"memo_hits"` // extra requests served from the memo
	// StoreHit marks a run answered from the persistent result store
	// instead of simulating; WallMS is then the disk load, not a run.
	StoreHit bool `json:"store_hit,omitempty"`
}

// engine is the run-graph scheduler: a RunKey-addressed memo with
// singleflight semantics over a bounded worker pool. Any number of figure
// builders may request runs concurrently; each distinct key executes exactly
// once, at most `workers` simulations run at a time, and every requester of
// a key blocks until its one execution finishes. Results are deterministic
// for any worker count because RunOne itself is deterministic and table
// assembly reads the memo in presentation order.
type engine struct {
	workers  int
	sem      chan struct{}
	progress io.Writer
	// onDone, when non-nil, receives one RunStats per completed execution
	// (simulated or store-loaded; memo hits of an already-completed key do
	// not re-fire). It is invoked while holding the engine lock — the same
	// ordering seam as the progress lines — so callbacks observe completions
	// in a single total order but must return quickly and must never call
	// back into the engine.
	onDone func(RunStats)
	// store, when non-nil, is the persistent layer under the memo: a memo
	// miss first consults the disk store and only simulates on a store
	// miss (or a corrupt entry); completed simulations are written back.
	// Audited requests bypass the store entirely — the auditor's value is
	// in executing its sweeps, which a disk read would silently skip.
	store *store.Store

	mu        sync.Mutex
	runs      map[RunKey]*runEntry
	scheduled int
	completed int
	wallSum   time.Duration
}

type runEntry struct {
	done   chan struct{} // closed when res/err/stats are final
	res    Result
	err    error
	stats  RunStats
	telem  *telemetry.Output // nil unless the request enabled telemetry
	report audit.Report      // zero unless the request enabled auditing
}

func newEngine(workers int, progress io.Writer, st *store.Store, onDone func(RunStats)) *engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &engine{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		progress: progress,
		store:    st,
		onDone:   onDone,
		runs:     map[RunKey]*runEntry{},
	}
}

// errAborted marks a run entry whose owner cancelled before the simulation
// started: the entry has been removed from the memo, so a requester whose
// own context is still live simply claims the key again.
var errAborted = errors.New("harness: run aborted before execution (submitter cancelled)")

// storeEligible reports whether the request may be answered from — and
// written to — the persistent store. Audited runs are excluded: loading a
// result would skip the invariant sweeps that are the whole point of the
// run (their keys differ from unaudited ones anyway, so they could never
// alias a plain entry).
func (e *engine) storeEligible(req RunRequest) bool {
	return e.store != nil && !req.Audit.Enabled()
}

// tryStoreLoad attempts to answer the request from the persistent store,
// filling ent and completing it on success. Corrupt entries are counted,
// logged to the progress writer and treated exactly like misses.
func (e *engine) tryStoreLoad(ent *runEntry, req RunRequest, key RunKey) bool {
	start := time.Now()
	body, err := e.store.Load(key.String())
	if err != nil {
		if store.IsCorrupt(err) && e.progress != nil {
			fmt.Fprintf(e.progress, "[store] %v; re-simulating %s/%v\n", err, req.WL.Name, req.Scheme)
		}
		return false
	}
	se, derr := decodeStoreEntry(body, req)
	if derr != nil {
		// The container verified but the content didn't: count it with the
		// corrupt entries so the report shows one number for "entries that
		// could not be trusted".
		e.store.NoteContentCorrupt()
		if e.progress != nil {
			fmt.Fprintf(e.progress, "[store] corrupt entry %s (%v); re-simulating %s/%v\n",
				key.Short(), derr, req.WL.Name, req.Scheme)
		}
		return false
	}
	wall := time.Since(start)
	ent.res = se.Result
	ent.telem = se.Telemetry
	ent.stats.StoreHit = true
	ent.stats.WallMS = float64(wall) / float64(time.Millisecond)
	ent.stats.SimPS = int64(ent.res.ExecTime)
	ent.stats.Instructions = ent.res.Instructions
	close(ent.done)
	e.noteDone(ent, wall)
	return true
}

// storeSave persists a freshly simulated run; failures are counted on the
// store handle and reported once per sweep, never failing the run itself.
func (e *engine) storeSave(ent *runEntry, key RunKey) {
	body, err := encodeStoreEntry(ent.res, ent.telem)
	if err == nil {
		err = e.store.Save(key.String(), body)
	}
	if err != nil && e.progress != nil {
		fmt.Fprintf(e.progress, "[store] save %s failed: %v\n", key.Short(), err)
	}
}

// get returns the memoized result for the request, executing it if this is
// the first request for its key. Concurrent callers with the same key share
// one execution (singleflight); callers with distinct keys run in parallel,
// bounded by the worker pool.
func (e *engine) get(req RunRequest) (Result, error) {
	return e.getCtx(context.Background(), req)
}

// getCtx is get with cancellation. A context cancelled while the caller is
// queued — waiting for another caller's execution, or waiting for a worker
// slot — returns ctx.Err() promptly; a simulation that has already claimed a
// worker slot runs to completion (its result is still valid, shared work)
// and only the wait is abandoned. When the owning caller of a key aborts
// before execution starts, the entry is removed from the memo so the key can
// be claimed again; waiters whose own contexts are still live retry
// transparently.
func (e *engine) getCtx(ctx context.Context, req RunRequest) (Result, error) {
	for {
		res, err := e.getOnce(ctx, req)
		if errors.Is(err, errAborted) && ctx.Err() == nil {
			continue // the aborting owner removed the entry; claim it ourselves
		}
		return res, err
	}
}

func (e *engine) getOnce(ctx context.Context, req RunRequest) (Result, error) {
	key := req.Key()
	e.mu.Lock()
	if ent, ok := e.runs[key]; ok {
		ent.stats.MemoHits++
		e.mu.Unlock()
		select {
		case <-ent.done:
			return ent.res, ent.err
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	ent := &runEntry{done: make(chan struct{})}
	ent.stats = RunStats{
		Key:          key.String(),
		Workload:     req.WL.Name,
		Scheme:       req.Scheme.String(),
		Records:      req.Records,
		Seed:         req.Seed,
		Hosts:        req.Cfg.Hosts,
		CoresPerHost: req.Cfg.CoresPerHost,
		TotalRecords: req.Records * int64(req.Cfg.Hosts) * int64(req.Cfg.CoresPerHost),
	}
	e.runs[key] = ent
	e.scheduled++
	e.mu.Unlock()

	// Persistent-store fall-through: a memo miss may still be a disk hit —
	// a prior process already simulated this exact recipe. Only a store
	// miss (or an entry that fails verification) pays for a simulation.
	if e.storeEligible(req) && e.tryStoreLoad(ent, req, key) {
		return ent.res, nil
	}

	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.abort(ent, key)
		return Result{}, ctx.Err()
	}
	if ctx.Err() != nil {
		// The slot and the cancellation raced; honour the cancellation —
		// nothing has executed yet.
		<-e.sem
		e.abort(ent, key)
		return Result{}, ctx.Err()
	}
	start := time.Now()
	ent.res, ent.telem, ent.report, ent.err = RunOneOpts(
		req.Cfg, req.WL, req.Scheme, req.Records, req.Seed,
		RunOpts{Telemetry: req.Telemetry, Audit: req.Audit, Intra: req.Intra})
	if ent.err == nil {
		// An invariant violation fails the run exactly like a build error
		// would: every requester of this key sees it.
		ent.err = ent.report.Err()
	}
	if ent.err == nil && e.storeEligible(req) {
		e.storeSave(ent, key)
	}
	wall := time.Since(start)
	<-e.sem

	ent.stats.WallMS = float64(wall) / float64(time.Millisecond)
	ent.stats.SimPS = int64(ent.res.ExecTime)
	ent.stats.Instructions = ent.res.Instructions
	if us := wall.Microseconds(); us > 0 {
		ent.stats.MIPS = float64(ent.res.Instructions) / float64(us)
	}
	close(ent.done)
	e.noteDone(ent, wall)
	if ent.err != nil {
		return ent.res, fmt.Errorf("harness: %s/%v: %w", req.WL.Name, req.Scheme, ent.err)
	}
	return ent.res, nil
}

// abort withdraws a claimed-but-never-executed entry: the owner's context
// was cancelled while it waited for a worker slot. The entry leaves the memo
// (so the key can be re-claimed by a live requester) and any waiters see
// errAborted, which getCtx converts into a retry unless their own context is
// also dead.
func (e *engine) abort(ent *runEntry, key RunKey) {
	e.mu.Lock()
	delete(e.runs, key)
	e.scheduled--
	ent.err = errAborted
	e.mu.Unlock()
	close(ent.done)
}

// noteDone updates the progress counters and, when a progress writer is
// attached, emits one completion line with a naive remaining-work ETA
// (mean wall per run × outstanding runs ÷ workers). The line is written
// while still holding the engine lock: counters printed outside it could
// appear out of order ("3/24" before "2/24") and two workers' lines could
// interleave mid-line under parallel runs. The lock also makes the engine
// the sole serialisation point for the writer, so any io.Writer — a plain
// bytes.Buffer in tests, os.Stderr in the CLIs — is safe without its own
// locking as long as nothing else writes to it concurrently.
func (e *engine) noteDone(ent *runEntry, wall time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.completed++
	e.wallSum += wall
	if e.onDone != nil {
		e.onDone(ent.stats)
	}
	if e.progress == nil {
		return
	}
	mean := e.wallSum / time.Duration(e.completed)
	remaining := e.scheduled - e.completed
	eta := mean * time.Duration(remaining) / time.Duration(e.workers)
	fmt.Fprintf(e.progress, "[engine] %d/%d runs  %s/%s %v  sim %v  (eta %v for %d queued)\n",
		e.completed, e.scheduled, ent.stats.Workload, ent.stats.Scheme,
		wall.Round(time.Millisecond), sim.Time(ent.stats.SimPS),
		eta.Round(100*time.Millisecond), remaining)
}

// runAll executes the deduplicated request set on the worker pool and blocks
// until every run finishes. The first error in request order is returned —
// request order, not completion order, so the error is deterministic for any
// worker count.
func (e *engine) runAll(reqs []RunRequest) error {
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req RunRequest) {
			defer wg.Done()
			_, errs[i] = e.get(req)
		}(i, req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// statsSnapshot returns the per-run records of every completed execution,
// sorted by (workload, scheme, key) so the order is independent of
// completion order.
func (e *engine) statsSnapshot() []RunStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []RunStats
	for _, ent := range e.runs {
		select {
		case <-ent.done:
			out = append(out, ent.stats)
		default: // still executing; skip
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Runner is the run-graph engine's exported face for callers other than the
// Suite (the validation subsystem, ad-hoc tools): RunKey-memoised,
// singleflight, bounded-parallel execution of RunRequests. Two requests with
// equal keys — across any goroutines — simulate once and share the Result.
type Runner struct{ eng *engine }

// NewRunner builds a runner executing at most workers simulations at a time
// (≤ 0 means GOMAXPROCS); progress, when non-nil, receives one line per
// completed run.
func NewRunner(workers int, progress io.Writer) *Runner {
	return &Runner{eng: newEngine(workers, progress, nil, nil)}
}

// NewRunnerOpts builds a runner from the full option set, including the
// persistent result store (Options.Store) and the OnRunDone completion hook
// the plain constructor omits.
func NewRunnerOpts(o Options) *Runner {
	return &Runner{eng: newEngine(o.Workers, o.Progress, o.Store, o.OnRunDone)}
}

// Get returns the request's memoized Result, executing the simulation on
// first request of its key. Audited requests fail on any invariant violation.
func (r *Runner) Get(req RunRequest) (Result, error) { return r.eng.get(req) }

// GetCtx is Get with cancellation: a context cancelled while the request is
// queued (waiting on another caller's execution or on a worker slot) returns
// ctx.Err() promptly and leaves the key claimable; a simulation that already
// holds a worker slot runs to completion — results are shared work and stay
// valid for every later requester.
func (r *Runner) GetCtx(ctx context.Context, req RunRequest) (Result, error) {
	return r.eng.getCtx(ctx, req)
}

// StatsFor returns the observability record of the request's run if that run
// has completed on this runner; ok is false while it is still queued or
// executing, or if the key was never requested.
func (r *Runner) StatsFor(req RunRequest) (RunStats, bool) {
	r.eng.mu.Lock()
	ent, ok := r.eng.runs[req.Key()]
	r.eng.mu.Unlock()
	if !ok {
		return RunStats{}, false
	}
	select {
	case <-ent.done:
	default:
		return RunStats{}, false
	}
	r.eng.mu.Lock()
	st := ent.stats
	r.eng.mu.Unlock()
	return st, true
}

// Report returns the audit report of a completed audited run, or a zero
// report if the key was never requested (or auditing was off).
func (r *Runner) Report(req RunRequest) audit.Report {
	r.eng.mu.Lock()
	ent, ok := r.eng.runs[req.Key()]
	r.eng.mu.Unlock()
	if !ok {
		return audit.Report{}
	}
	<-ent.done
	return ent.report
}

// RunStats returns the per-run observability records of every completed run.
func (r *Runner) RunStats() []RunStats { return r.eng.statsSnapshot() }

// Telemetry returns the collected (or store-loaded) telemetry of a
// completed run, nil if the key was never requested or telemetry was off.
func (r *Runner) Telemetry(req RunRequest) *telemetry.Output {
	r.eng.mu.Lock()
	ent, ok := r.eng.runs[req.Key()]
	r.eng.mu.Unlock()
	if !ok {
		return nil
	}
	<-ent.done
	return ent.telem
}

// StoreStats reports the persistent store's traffic for this engine's
// lifetime; ok is false when no store is attached.
func (r *Runner) StoreStats() (StoreStats, bool) { return r.eng.storeStatsSnapshot() }

// storeStatsSnapshot adapts the store handle's counters into the report
// schema.
func (e *engine) storeStatsSnapshot() (StoreStats, bool) {
	if e.store == nil {
		return StoreStats{}, false
	}
	st := e.store.Stats()
	return StoreStats{
		Dir:        e.store.Dir(),
		Hits:       st.Hits,
		Misses:     st.Misses,
		Corrupt:    st.Corrupt,
		Saves:      st.Saves,
		SaveErrors: st.SaveErrors,
	}, true
}

// RunTelemetry pairs one completed run's identity with its collected
// telemetry output.
type RunTelemetry struct {
	Workload string
	Scheme   string
	Key      RunKey
	Output   *telemetry.Output
}

// telemetrySnapshot returns the telemetry of every completed run that
// collected any, sorted by (workload, scheme, key) so export order — and the
// exported bytes — are independent of worker count and completion order.
func (e *engine) telemetrySnapshot() []RunTelemetry {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []RunTelemetry
	for key, ent := range e.runs {
		select {
		case <-ent.done:
			if ent.telem != nil && ent.err == nil {
				out = append(out, RunTelemetry{
					Workload: ent.stats.Workload,
					Scheme:   ent.stats.Scheme,
					Key:      key,
					Output:   ent.telem,
				})
			}
		default: // still executing; skip
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}
