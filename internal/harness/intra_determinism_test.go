package harness

import (
	"bytes"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// The PDES engine's whole contract is bit-identity: at any intra-worker
// count a run must produce the same Result digest, the same telemetry
// export bytes and the same audit report as the sequential engine
// (DESIGN.md §13). These tests pin that matrix; TestAuditedRunDeterminism
// covers the inter-run (memoised engine) half of the same guarantee.

var intraWorkerMatrix = []int{1, 2, 4, 8}

// exportBytes renders one run's telemetry output through both production
// exporters so the comparison covers every byte the run can emit.
func exportBytes(t *testing.T, key string, tout *telemetry.Output) (ts, tr []byte) {
	t.Helper()
	runs := []telemetry.LabeledOutput{{Label: "pr/PIPM", Key: key, Output: tout}}
	var tsb, trb bytes.Buffer
	if err := telemetry.WriteTimeSeries(&tsb, runs); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(&trb, runs); err != nil {
		t.Fatal(err)
	}
	return tsb.Bytes(), trb.Bytes()
}

// TestIntraDeterminismMatrix runs one fully instrumented simulation —
// telemetry sampling plus tracing plus the paranoid auditor — on the
// sequential engine, then at 1, 2, 4 and 8 intra-workers, and requires
// the Result digest, both telemetry exports and the audit report to be
// identical across the whole matrix. The row set covers one statistical
// workload and both mechanistic production generators: the serving loop's
// session state and the filesystem's append cursors must replay identically
// under the PDES engine's prefetch batching.
func TestIntraDeterminismMatrix(t *testing.T) {
	o := auditDetOptions()
	o.Telemetry = telemetry.Options{SampleInterval: 10 * sim.Microsecond, Trace: true}
	aopt := audit.Options{Mode: audit.Paranoid}.WithDefaults()

	rows := []workload.Params{
		o.Workloads[0],
		mustWorkload("llmserve"),
		mustWorkload("daxfs"),
	}
	for _, wl := range rows {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			runAt := func(workers int) (Result, *telemetry.Output, audit.Report) {
				res, tout, rep, err := RunOneOpts(o.Cfg, wl, migration.PIPM, o.RecordsPerCore, o.Seed,
					RunOpts{Telemetry: o.Telemetry, Audit: aopt, Intra: machine.IntraOptions{Workers: workers}})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("workers=%d: paranoid auditor found violations: %v", workers, err)
				}
				return res, tout, rep
			}

			baseRes, baseOut, baseRep := runAt(0)
			wantDigest := DigestResult(baseRes)
			wantTS, wantTR := exportBytes(t, "seq", baseOut)
			if baseRep.Sweeps == 0 {
				t.Fatal("paranoid auditor attached but never swept")
			}

			for _, w := range intraWorkerMatrix {
				res, tout, rep := runAt(w)
				if got := DigestResult(res); got != wantDigest {
					t.Errorf("workers=%d: digest %s… != sequential %s…", w, got[:12], wantDigest[:12])
				}
				ts, tr := exportBytes(t, "seq", tout)
				if !bytes.Equal(ts, wantTS) {
					t.Errorf("workers=%d: time-series export bytes differ from sequential engine", w)
				}
				if !bytes.Equal(tr, wantTR) {
					t.Errorf("workers=%d: chrome-trace export bytes differ from sequential engine", w)
				}
				if rep.Sweeps != baseRep.Sweeps || rep.Checks != baseRep.Checks {
					t.Errorf("workers=%d: audit report %d sweeps/%d checks != sequential %d/%d",
						w, rep.Sweeps, rep.Checks, baseRep.Sweeps, baseRep.Checks)
				}
			}
		})
	}
}

// TestIntraQuickSweepDigests runs every scheme of the quick sweep's first
// workload through the memoised engine with intra parallelism enabled and
// matches each digest against a sequential baseline — the intra-workers
// analogue of the golden quick sweep, without touching the golden file's
// run keys.
func TestIntraQuickSweepDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("scheme sweep across the worker matrix is too slow for -short")
	}
	o := auditDetOptions()
	wl := o.Workloads[0]

	want := make(map[migration.Kind]string)
	for _, k := range migration.Kinds {
		res, err := RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		want[k] = DigestResult(res)
	}

	for _, w := range intraWorkerMatrix {
		runner := NewRunner(2, nil)
		for _, k := range migration.Kinds {
			res, err := runner.Get(RunRequest{
				Cfg: o.Cfg, WL: wl, Scheme: k,
				Records: o.RecordsPerCore, Seed: o.Seed,
				Intra: machine.IntraOptions{Workers: w},
			})
			if err != nil {
				t.Fatalf("workers=%d %v: %v", w, k, err)
			}
			if got := DigestResult(res); got != want[k] {
				t.Errorf("workers=%d %v: digest %s… != sequential %s…", w, k, got[:12], want[k][:12])
			}
		}
	}
}
