package harness

import (
	"fmt"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/migration"
)

// TestClusterScaleAuditedSmoke runs short 64- and 256-host simulations under
// the paranoid auditor: every invariant sweep (SWMR, directory precision,
// slice-counter conservation, remap agreement) executes against the widest
// exact sharer bitmask and against the summary representation with its
// region-granular Describes check — state no 4-host run can reach. PIPM
// exercises the sharded directory and global table; Nomad exercises the
// sparse hotness rows the kernel family switches to past 64 hosts. CI runs
// this under -race as the cluster-scale smoke.
func TestClusterScaleAuditedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("audited cluster runs are too slow for -short")
	}
	o := QuickOptions()
	wl := mustWorkload("pr")
	for _, tc := range []struct {
		hosts   int
		records int64
		k       migration.Kind
	}{
		{64, 1500, migration.PIPM},
		{64, 1500, migration.Nomad},
		{256, 256, migration.PIPM},
		{256, 256, migration.Nomad},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%dhosts-%v", tc.hosts, tc.k), func(t *testing.T) {
			t.Parallel()
			cfg := ScaleForHosts(o.Cfg, tc.hosts)
			_, _, rep, err := RunOneOpts(cfg, wl, tc.k, tc.records, o.Seed,
				RunOpts{Audit: audit.Options{Mode: audit.Paranoid}})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
