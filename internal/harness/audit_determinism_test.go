package harness

import (
	"encoding/json"
	"os"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/migration"
	"pipm/internal/telemetry"
)

// The auditor must be a pure observer: attaching it may not perturb a
// single stat, latency or event ordering, and audited runs must stay as
// deterministic as bare ones. These tests pin both properties at the
// Result-digest level; TestGoldenQuickSweepAudited extends the check to
// the committed golden digests.

// auditDetOptions is a deliberately small configuration so the matrix of
// (mode × scheme) runs stays fast.
func auditDetOptions() Options {
	o := QuickOptions()
	o.RecordsPerCore = 8000
	o.Workloads = o.Workloads[:1]
	return o
}

// TestAuditorObservationOnly runs the same simulation bare, under quantum
// auditing and under paranoid auditing, and requires bit-identical Results:
// the auditor reads protocol state but may never write it or reschedule an
// event.
func TestAuditorObservationOnly(t *testing.T) {
	o := auditDetOptions()
	wl := o.Workloads[0]
	// Paranoid sweeps after every protocol transition, so it is priced in
	// only where transitions are richest (the hardware scheme) and where the
	// family previously tripped a false positive (local-only, which has no
	// cross-host coherence to check); the cheaper quantum mode covers every
	// family.
	modesFor := func(k migration.Kind) []audit.Options {
		m := []audit.Options{{Mode: audit.Quantum}}
		if k == migration.PIPM || k == migration.LocalOnly {
			m = append(m, audit.Options{Mode: audit.Paranoid})
		}
		return m
	}
	for _, k := range []migration.Kind{migration.Native, migration.Memtis, migration.PIPM, migration.LocalOnly} {
		bare, err := RunOne(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
		if err != nil {
			t.Fatalf("%v bare: %v", k, err)
		}
		want := DigestResult(bare)
		for _, am := range modesFor(k) {
			res, _, rep, err := RunOneA(o.Cfg, wl, k, o.RecordsPerCore, o.Seed, telemetry.Options{}, am.WithDefaults())
			if err != nil {
				t.Fatalf("%v %v: %v", k, am.Mode, err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%v %v: auditor found violations: %v", k, am.Mode, err)
			}
			if rep.Sweeps == 0 {
				t.Fatalf("%v %v: auditor attached but never swept", k, am.Mode)
			}
			if got := DigestResult(res); got != want {
				t.Errorf("%v: digest under %v audit %s… != bare %s… (auditor perturbed the run)",
					k, am.Mode, got[:12], want[:12])
			}
		}
	}
}

// TestAuditedRunDeterminism replays one audited run and requires identical
// digests and identical audit telemetry, then repeats the whole batch
// through the memoised engine at 1 and 8 workers: scheduling the runs
// differently may not change a bit of any Result.
func TestAuditedRunDeterminism(t *testing.T) {
	o := auditDetOptions()
	wl := o.Workloads[0]
	aopt := audit.Options{Mode: audit.Quantum}.WithDefaults()

	r1, _, rep1, err := RunOneA(o.Cfg, wl, migration.PIPM, o.RecordsPerCore, o.Seed, telemetry.Options{}, aopt)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, rep2, err := RunOneA(o.Cfg, wl, migration.PIPM, o.RecordsPerCore, o.Seed, telemetry.Options{}, aopt)
	if err != nil {
		t.Fatal(err)
	}
	if DigestResult(r1) != DigestResult(r2) {
		t.Fatal("same audited run digests differently across replays")
	}
	if rep1.Sweeps != rep2.Sweeps || rep1.Checks != rep2.Checks {
		t.Fatalf("audit telemetry not deterministic: %d/%d sweeps, %d/%d checks",
			rep1.Sweeps, rep2.Sweeps, rep1.Checks, rep2.Checks)
	}

	// One scheme per family is enough to catch a scheduling-order leak.
	schemes := []migration.Kind{migration.Native, migration.Memtis, migration.PIPM, migration.LocalOnly}
	digests := func(workers int) map[string]string {
		runner := NewRunner(workers, nil)
		out := make(map[string]string)
		for _, k := range schemes {
			res, err := runner.Get(RunRequest{
				Cfg: o.Cfg, WL: wl, Scheme: k,
				Records: o.RecordsPerCore, Seed: o.Seed, Audit: aopt,
			})
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, k, err)
			}
			out[k.String()] = DigestResult(res)
		}
		return out
	}
	serial, parallel := digests(1), digests(8)
	for k, want := range serial {
		if parallel[k] != want {
			t.Errorf("%s: digest differs between 1 and 8 workers", k)
		}
	}
}

// readGolden loads testdata/golden_quick.json keyed by "workload/scheme".
func readGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(buf, &gf); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	out := make(map[string]goldenEntry, len(gf.Entries))
	for _, e := range gf.Entries {
		out[e.Workload+"/"+e.Scheme] = e
	}
	return out
}

// TestGoldenQuickSweepAudited re-runs the golden quick sweep with the
// quantum auditor attached and matches every digest against
// testdata/golden_quick.json by (workload, scheme): the committed golden
// digests hold with auditing on, proving the production validation
// configuration observes exactly the runs the golden file pins.
//
// The default scope is every scheme on the first quick workload, which
// keeps the harness package inside go test's per-package timeout on a
// single-core box; set PIPM_FULL_AUDITED_GOLDEN=1 (the CI validate job
// does) to cover all 24 golden pairs.
func TestGoldenQuickSweepAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("audited quick sweep is too slow for -short")
	}
	want := readGolden(t)
	o := QuickOptions()
	workloads := o.Workloads[:1]
	if os.Getenv("PIPM_FULL_AUDITED_GOLDEN") != "" {
		workloads = o.Workloads
	}
	aopt := audit.Options{Mode: audit.Quantum}.WithDefaults()
	runner := NewRunner(0, nil)

	for _, wl := range workloads {
		for _, k := range migration.Kinds {
			res, err := runner.Get(RunRequest{
				Cfg: o.Cfg, WL: wl, Scheme: k,
				Records: o.RecordsPerCore, Seed: o.Seed, Audit: aopt,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", wl.Name, k, err)
			}
			g, ok := want[wl.Name+"/"+k.String()]
			if !ok {
				t.Fatalf("%s/%v not in golden file", wl.Name, k)
			}
			if got := DigestResult(res); got != g.Digest {
				t.Errorf("%s/%v: audited digest %s… != golden %s…",
					wl.Name, k, got[:12], g.Digest[:12])
			}
		}
	}
}
