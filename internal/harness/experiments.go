package harness

import (
	"fmt"
	"io"
	"strings"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// Suite runs the paper's experiments over one Options. All simulations flow
// through a run-graph engine that deduplicates by canonical RunKey and
// executes on a bounded worker pool, so figures share runs (the Fig 10–13
// sweep, every figure's Native baseline, Fig 4's base-interval points, the
// sensitivity studies' default-parameter points) and independent runs
// proceed in parallel. Each figure first enumerates every run it needs,
// prefetches the set, then assembles its table from the memo in
// presentation order — rendered output is byte-identical for any worker
// count.
type Suite struct {
	opt Options
	eng *engine
}

// NewSuite builds a suite.
func NewSuite(opt Options) *Suite {
	return &Suite{opt: opt, eng: newEngine(opt.Workers, opt.Progress, opt.Store, opt.OnRunDone)}
}

// Options returns the suite's options.
func (s *Suite) Options() Options { return s.opt }

// RunStats returns the observability record of every simulation executed so
// far — wall clock, simulated time, instruction throughput and memo hits —
// sorted by (workload, scheme, key).
func (s *Suite) RunStats() []RunStats { return s.eng.statsSnapshot() }

// StoreStats reports the persistent result store's traffic for this suite;
// ok is false when Options.Store was nil.
func (s *Suite) StoreStats() (StoreStats, bool) { return s.eng.storeStatsSnapshot() }

// Telemetry returns the collected telemetry of every completed run, sorted
// by (workload, scheme, key). Empty unless Options.Telemetry was enabled.
func (s *Suite) Telemetry() []RunTelemetry { return s.eng.telemetrySnapshot() }

// labeledTelemetry maps the engine snapshot to the export layer's labeled
// form ("workload/scheme" labels plus the canonical key).
func (s *Suite) labeledTelemetry() []telemetry.LabeledOutput {
	runs := s.Telemetry()
	out := make([]telemetry.LabeledOutput, len(runs))
	for i, r := range runs {
		out[i] = telemetry.LabeledOutput{
			Label:  r.Workload + "/" + r.Scheme,
			Key:    r.Key.String(),
			Output: r.Output,
		}
	}
	return out
}

// WriteTimeSeries emits every collected run's time-series as JSON.
func (s *Suite) WriteTimeSeries(w io.Writer) error {
	return telemetry.WriteTimeSeries(w, s.labeledTelemetry())
}

// WriteTimeSeriesCSV emits the same series in long-form CSV.
func (s *Suite) WriteTimeSeriesCSV(w io.Writer) error {
	return telemetry.WriteTimeSeriesCSV(w, s.labeledTelemetry())
}

// WriteTrace emits every collected run's event trace as one Chrome
// trace-event JSON document (one process per run, one thread per host).
func (s *Suite) WriteTrace(w io.Writer) error {
	return telemetry.WriteChromeTrace(w, s.labeledTelemetry())
}

// req names one run at the suite's record budget, seed and telemetry config.
func (s *Suite) req(cfg config.Config, wl workload.Params, k migration.Kind) RunRequest {
	return RunRequest{Cfg: cfg, WL: wl, Scheme: k, Records: s.opt.RecordsPerCore,
		Seed: s.opt.Seed, Telemetry: s.opt.Telemetry, Audit: s.opt.Audit, Intra: s.opt.Intra}
}

// get fetches one run through the engine's memo.
func (s *Suite) get(cfg config.Config, wl workload.Params, k migration.Kind) (Result, error) {
	return s.eng.get(s.req(cfg, wl, k))
}

// prefetch executes the request set on the worker pool before assembly.
func (s *Suite) prefetch(reqs []RunRequest) error { return s.eng.runAll(reqs) }

// fig10Schemes is the presentation order of the end-to-end comparison:
// every registered scheme except the native baseline (the normalisation
// denominator), in registry order. A ninth scheme added to the registry
// appears here — and in every metricTable figure — automatically.
var fig10Schemes = func() []migration.Kind {
	var ks []migration.Kind
	for _, sc := range migration.Registered() {
		if sc.Kind != migration.Native {
			ks = append(ks, sc.Kind)
		}
	}
	return ks
}()

// Table1 renders the workload catalog: the paper's Table 1 rows followed by
// the production-service family, whose mechanistic generators have no fitted
// footprint statistics to tabulate (DESIGN.md §17).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 1: Evaluated workloads ==\n")
	fmt.Fprintf(&b, "%-15s %-8s %10s  %9s %8s %8s %7s\n",
		"benchmark", "suite", "footprint", "sharedRef", "ownFrac", "wrFrac", "runLen")
	for _, p := range workload.Catalog() {
		fmt.Fprintf(&b, "%-15s %-8s %8dGB  %9.2f %8.2f %8.2f %7.0f\n",
			p.Name, p.Suite, p.Footprint>>30, p.SharedFrac, p.OwnFrac, p.WriteFrac, p.RunLen)
	}
	fmt.Fprintf(&b, "-- production services (mechanistic generators) --\n")
	for _, p := range workload.Production() {
		fmt.Fprintf(&b, "%-15s %-8s %8dGB  mechanistic (-exp serve)\n",
			p.Name, p.Suite, p.Footprint>>30)
	}
	return b.String()
}

// Table2 renders the system configuration (Table 2).
func Table2(cfg config.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 2: System configuration ==\n")
	fmt.Fprintf(&b, "Architecture   %d hosts, %d cores per host\n", cfg.Hosts, cfg.CoresPerHost)
	fmt.Fprintf(&b, "CPU            %.0f GHz, %d-wide, %d-entry ROB, %d LQ, %d SQ, %d MSHRs\n",
		float64(cfg.CoreHz)/1e9, cfg.Width, cfg.ROB, cfg.LoadQ, cfg.StoreQ, cfg.MSHRs)
	fmt.Fprintf(&b, "L1D            %dKB %d-way, %v RT\n", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency)
	fmt.Fprintf(&b, "LLC            %dMB/core %d-way, %v RT\n", cfg.LLC.SizeBytes>>20, cfg.LLC.Ways, cfg.LLC.Latency)
	fmt.Fprintf(&b, "Local DRAM     %dx DDR5 channel, %dGB per host\n", cfg.LocalDRAM.Channels, cfg.LocalDRAM.CapacityBytes>>30)
	fmt.Fprintf(&b, "CXL-DSM DRAM   %dx DDR5 channel, %dGB pooled\n", cfg.CXLDRAM.Channels, cfg.CXLDRAM.CapacityBytes>>30)
	fmt.Fprintf(&b, "tRC-tRCD-tCL-tRP  %d-%d-%d-%d ns\n",
		int64(cfg.LocalDRAM.TRC/sim.Nanosecond), int64(cfg.LocalDRAM.TRCD/sim.Nanosecond),
		int64(cfg.LocalDRAM.TCL/sim.Nanosecond), int64(cfg.LocalDRAM.TRP/sim.Nanosecond))
	fmt.Fprintf(&b, "CXL link       %v/direction, %.0f GB/s/direction, %d switch hops\n",
		cfg.CXL.LinkLatency, cfg.CXL.LinkBW/1e9, cfg.CXL.SwitchHops)
	fmt.Fprintf(&b, "CXL directory  %d-set %d-way x %d slices, %v RT\n",
		cfg.CXL.DirSets, cfg.CXL.DirWays, cfg.CXL.DirSlices, cfg.CXL.DirLatency)
	fmt.Fprintf(&b, "PIPM           %dKB global remap cache, %dKB local remap cache, threshold %d\n",
		cfg.PIPM.GlobalRemapCacheBytes>>10, cfg.PIPM.LocalRemapCacheBytes>>10, cfg.PIPM.MigrationThreshold)
	fmt.Fprintf(&b, "Shared heap    %dMB (%d pages), scaled\n", cfg.SharedBytes>>20, cfg.SharedPages())
	return b.String()
}

// Fig4 reproduces the migration-interval study: Nomad and Memtis at the
// paper's 100 ms / 10 ms / 1 ms epochs (scaled), normalized to Native, plus
// the overhead breakdown at each interval. Every point routes through the
// engine, so the 10 ms point — the base Kernel.Interval — reuses the same
// memoized runs as Figures 5 and 10–13 instead of re-simulating.
func (s *Suite) Fig4() ([]Table, error) {
	// DefaultOptions' epoch stands in for the paper's 10 ms.
	base := s.opt.Cfg.Kernel.Interval
	intervals := []struct {
		label string
		d     sim.Time
	}{
		{"100ms", base * 10},
		{"10ms", base},
		{"1ms", base / 10},
	}
	schemes := []migration.Kind{migration.Nomad, migration.Memtis}

	intervalCfg := func(d sim.Time) config.Config {
		cfg := s.opt.Cfg
		cfg.Kernel.Interval = d
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		reqs = append(reqs, s.req(s.opt.Cfg, wl, migration.Native))
		for _, k := range schemes {
			for _, iv := range intervals {
				reqs = append(reqs, s.req(intervalCfg(iv.d), wl, k))
			}
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}

	perf := Table{
		Title:     "Figure 4: execution time vs migration interval (normalized to Native, lower is better)",
		Note:      "interval labels are paper-equivalent; actual epochs scale with trace length",
		MeanLabel: "mean",
	}
	breakdown := Table{
		Title:     "Figure 4 (breakdown): stall fractions at each interval, averaged over workloads",
		Cols:      []string{"transfer", "mgmt", "inter-host"},
		Fmt:       "%.3f",
		MeanLabel: "",
	}

	for _, k := range schemes {
		for _, iv := range intervals {
			perf.Cols = append(perf.Cols, fmt.Sprintf("%s@%s", k, iv.label))
		}
	}
	// One simulation per (workload, scheme, interval); the breakdown table
	// aggregates the same runs.
	sums := make([][3]float64, len(perf.Cols))
	for r, wl := range s.opt.Workloads {
		perf.Rows = append(perf.Rows, wl.Name)
		perf.Cells = append(perf.Cells, make([]float64, len(perf.Cols)))
		nat, err := s.get(s.opt.Cfg, wl, migration.Native)
		if err != nil {
			return nil, err
		}
		col := 0
		for _, k := range schemes {
			for _, iv := range intervals {
				res, err := s.get(intervalCfg(iv.d), wl, k)
				if err != nil {
					return nil, err
				}
				perf.Cells[r][col] = float64(res.ExecTime) / float64(nat.ExecTime)
				sums[col][0] += res.TransferFrac
				sums[col][1] += res.MgmtStallFrac
				sums[col][2] += res.InterStallFrac
				col++
			}
		}
	}
	n := float64(len(s.opt.Workloads))
	for col, name := range perf.Cols {
		breakdown.Rows = append(breakdown.Rows, name)
		breakdown.Cells = append(breakdown.Cells,
			[]float64{sums[col][0] / n, sums[col][1] / n, sums[col][2] / n})
	}
	return []Table{perf, breakdown}, nil
}

// Fig5 reproduces the harmful-migration percentages.
func (s *Suite) Fig5() (Table, error) {
	schemes := []migration.Kind{migration.Nomad, migration.Memtis}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, k := range schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, wl, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Figure 5: percentage of harmful page migrations",
		Cols:      []string{"nomad", "memtis"},
		Fmt:       "%.1f",
		MeanLabel: "mean",
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, 2)
		for i, k := range schemes {
			res, err := s.get(s.opt.Cfg, wl, k)
			if err != nil {
				return Table{}, err
			}
			row[i] = 100 * res.HarmfulFrac
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig10 reproduces the end-to-end comparison: speedup over Native.
func (s *Suite) Fig10() (Table, error) {
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		reqs = append(reqs, s.req(s.opt.Cfg, wl, migration.Native))
		for _, k := range fig10Schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, wl, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Figure 10: end-to-end speedup over Native CXL-DSM (higher is better)",
		MeanLabel: "mean",
	}
	for _, k := range fig10Schemes {
		t.Cols = append(t.Cols, k.String())
	}
	for _, wl := range s.opt.Workloads {
		nat, err := s.get(s.opt.Cfg, wl, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(fig10Schemes))
		for i, k := range fig10Schemes {
			res, err := s.get(s.opt.Cfg, wl, k)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig11 reproduces the local-memory hit rates.
func (s *Suite) Fig11() (Table, error) {
	return s.metricTable("Figure 11: local memory hit rate (%)", "%.1f",
		func(r Result) float64 { return 100 * r.LocalHitRate })
}

// Fig12 reproduces the inter-host stall contribution.
func (s *Suite) Fig12() (Table, error) {
	return s.metricTable("Figure 12: inter-host memory access stalls / total execution time (%)", "%.2f",
		func(r Result) float64 { return 100 * r.InterStallFrac })
}

// Fig13 reproduces the per-host local-footprint ratios, including the
// PIPM-page vs PIPM-line split.
func (s *Suite) Fig13() (Table, error) {
	// Every comparison scheme except PIPM (special-cased below for its
	// page/line split) and local-only (no migrated footprint by definition).
	var schemes []migration.Kind
	for _, k := range fig10Schemes {
		if k != migration.PIPM && k != migration.LocalOnly {
			schemes = append(schemes, k)
		}
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, k := range schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, wl, k))
		}
		reqs = append(reqs, s.req(s.opt.Cfg, wl, migration.PIPM))
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Figure 13: avg per-host local footprint / total shared footprint (%)",
		Fmt:       "%.1f",
		MeanLabel: "mean",
	}
	for _, k := range schemes {
		t.Cols = append(t.Cols, k.String())
	}
	t.Cols = append(t.Cols, "pipm-page", "pipm-line")
	for _, wl := range s.opt.Workloads {
		var row []float64
		for _, k := range schemes {
			res, err := s.get(s.opt.Cfg, wl, k)
			if err != nil {
				return Table{}, err
			}
			row = append(row, 100*res.PageFootprintFrac)
		}
		pipm, err := s.get(s.opt.Cfg, wl, migration.PIPM)
		if err != nil {
			return Table{}, err
		}
		row = append(row, 100*pipm.PageFootprintFrac, 100*pipm.LineFootprintFrac)
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

func (s *Suite) metricTable(title, cellFmt string, metric func(Result) float64) (Table, error) {
	// Local-only is dropped: per-scheme memory-path metrics are undefined
	// for the upper bound.
	var schemes []migration.Kind
	for _, k := range fig10Schemes {
		if k != migration.LocalOnly {
			schemes = append(schemes, k)
		}
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, k := range schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, wl, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{Title: title, Fmt: cellFmt, MeanLabel: "mean"}
	for _, k := range schemes {
		t.Cols = append(t.Cols, k.String())
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, len(schemes))
		for i, k := range schemes {
			res, err := s.get(s.opt.Cfg, wl, k)
			if err != nil {
				return Table{}, err
			}
			row[i] = metric(res)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig14 reproduces the CXL link latency sensitivity: PIPM speedup over
// Native at 50 ns and 100 ns per direction.
func (s *Suite) Fig14() (Table, error) {
	return s.paramSweep(
		"Figure 14: PIPM speedup over Native vs CXL link latency",
		[]sweepPoint{
			{"50ns", func(c *config.Config) { c.CXL.LinkLatency = 50 * sim.Nanosecond }},
			{"100ns", func(c *config.Config) { c.CXL.LinkLatency = 100 * sim.Nanosecond }},
		})
}

// Fig15 reproduces the CXL link bandwidth sensitivity: ×8/×16/×32 lanes.
func (s *Suite) Fig15() (Table, error) {
	return s.paramSweep(
		"Figure 15: PIPM speedup over Native vs CXL link bandwidth",
		[]sweepPoint{
			{"x8(2.5GB/s)", func(c *config.Config) { c.CXL.LinkBW = 2.5e9 }},
			{"x16(5GB/s)", func(c *config.Config) { c.CXL.LinkBW = 5e9 }},
			{"x32(10GB/s)", func(c *config.Config) { c.CXL.LinkBW = 10e9 }},
		})
}

type sweepPoint struct {
	label string
	apply func(*config.Config)
}

// paramSweep runs Native and PIPM at each configuration point. A point that
// matches the base configuration (Fig 14's 50 ns, Fig 15's ×16) hashes to
// the same run key as the shared sweep, so its baselines come from the memo.
func (s *Suite) paramSweep(title string, points []sweepPoint) (Table, error) {
	pointCfg := func(p sweepPoint) config.Config {
		cfg := s.opt.Cfg
		p.apply(&cfg)
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, p := range points {
			cfg := pointCfg(p)
			reqs = append(reqs,
				s.req(cfg, wl, migration.Native),
				s.req(cfg, wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{Title: title, MeanLabel: "mean"}
	for _, p := range points {
		t.Cols = append(t.Cols, p.label)
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, len(points))
		for i, p := range points {
			cfg := pointCfg(p)
			nat, err := s.get(cfg, wl, migration.Native)
			if err != nil {
				return Table{}, err
			}
			pipm, err := s.get(cfg, wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(pipm, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Fig16 reproduces the local remapping cache size sensitivity, normalized
// to an infinite cache.
func (s *Suite) Fig16() (Table, error) {
	// Sizes scale with the shrunken shared heap: the paper's 1 MB cache
	// covers 256K pages against a ~12M-page footprint; the same coverage
	// ratios at our page count give the sizes below (labels map to the
	// paper's x-axis points).
	sizes := []cacheSize{
		{"64KB(scaled)", 1 << 10},
		{"256KB(scaled)", 4 << 10},
		{"1MB(scaled)", 8 << 10},
		{"4MB(scaled)", 16 << 10},
	}
	return s.cacheSweep(
		"Figure 16: PIPM performance vs local remapping cache size (normalized to infinite)",
		func(c *config.Config, bytes int) { c.PIPM.LocalRemapCacheBytes = bytes },
		sizes)
}

// Fig17 reproduces the global remapping cache size sensitivity, normalized
// to an infinite cache.
func (s *Suite) Fig17() (Table, error) {
	// Scaled like Fig. 16: the paper's 16 KB global cache (8K entries)
	// against a ~32M-page pool maps to sub-page-count sizes here.
	sizes := []cacheSize{
		{"1KB(scaled)", 512},
		{"4KB(scaled)", 1 << 10},
		{"16KB(scaled)", 4 << 10},
		{"64KB(scaled)", 8 << 10},
	}
	return s.cacheSweep(
		"Figure 17: PIPM performance vs global remapping cache size (normalized to infinite)",
		func(c *config.Config, bytes int) { c.PIPM.GlobalRemapCacheBytes = bytes },
		sizes)
}

type cacheSize struct {
	label string
	bytes int
}

// cacheSweep is the shared body of Figures 16–17: PIPM at each cache size,
// normalized to an infinite (-1) cache, all through the engine.
func (s *Suite) cacheSweep(title string, set func(*config.Config, int), sizes []cacheSize) (Table, error) {
	sizeCfg := func(bytes int) config.Config {
		cfg := s.opt.Cfg
		set(&cfg, bytes)
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		reqs = append(reqs, s.req(sizeCfg(-1), wl, migration.PIPM))
		for _, sz := range sizes {
			reqs = append(reqs, s.req(sizeCfg(sz.bytes), wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{Title: title, Fmt: "%.3f", MeanLabel: "mean"}
	for _, sz := range sizes {
		t.Cols = append(t.Cols, sz.label)
	}
	for _, wl := range s.opt.Workloads {
		ideal, err := s.get(sizeCfg(-1), wl, migration.PIPM)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(sizes))
		for i, sz := range sizes {
			res, err := s.get(sizeCfg(sz.bytes), wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = float64(ideal.ExecTime) / float64(res.ExecTime)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}
