package harness

import (
	"bytes"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// telemetryTestOptions is the pr (GAP) setup the telemetry tests share:
// short traces, 10 µs sampling, tracing on.
func telemetryTestOptions() Options {
	o := QuickOptions()
	o.RecordsPerCore = 30_000
	o.Workloads = []workload.Params{mustWorkload("pr")}
	o.Telemetry = telemetry.Options{SampleInterval: 10 * sim.Microsecond, Trace: true}
	return o
}

// TestTelemetryResultInvariance pins the subsystem's core contract: enabling
// telemetry must not change a run's Result in any field.
func TestTelemetryResultInvariance(t *testing.T) {
	o := telemetryTestOptions()
	wl := o.Workloads[0]
	plain, err := RunOne(o.Cfg, wl, migration.PIPM, o.RecordsPerCore, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, tout, err := RunOneT(o.Cfg, wl, migration.PIPM, o.RecordsPerCore, o.Seed, o.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if tout == nil {
		t.Fatal("enabled telemetry returned no output")
	}
	if instrumented != plain {
		t.Fatalf("telemetry changed the Result:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
}

// TestSuiteTelemetryFootprintCurve reproduces the Fig. 13 shape from the
// sampled time-series: under PIPM the local footprint grows incrementally
// from near zero, and the whole-page baseline (Nomad) also produces a curve —
// the scheme pair the figure contrasts. Both exports must validate.
func TestSuiteTelemetryFootprintCurve(t *testing.T) {
	o := telemetryTestOptions()
	s := NewSuite(o)
	wl := o.Workloads[0]
	for _, k := range []migration.Kind{migration.PIPM, migration.Nomad} {
		if _, err := s.get(o.Cfg, wl, k); err != nil {
			t.Fatal(err)
		}
	}
	runs := s.Telemetry()
	if len(runs) != 2 {
		t.Fatalf("Telemetry() returned %d runs, want 2", len(runs))
	}
	for _, r := range runs {
		series := r.Output.Series
		if series == nil || len(series.Samples) < 3 {
			t.Fatalf("%s/%s: too few samples", r.Workload, r.Scheme)
		}
		// Find host 0's page-footprint instrument and check the curve rises
		// from its initial value: migration moves pages in over time.
		idx := -1
		for i, name := range series.Names {
			if name == "h0.footprint.pages" {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("%s/%s: no h0.footprint.pages series in %v", r.Workload, r.Scheme, series.Names)
		}
		first := series.Samples[0].Values[idx]
		last := series.Samples[len(series.Samples)-1].Values[idx]
		if last <= first {
			t.Errorf("%s/%s: footprint curve did not rise (%v → %v)", r.Workload, r.Scheme, first, last)
		}
		if r.Scheme == migration.PIPM.String() && r.Output.Trace.Len() == 0 {
			t.Errorf("PIPM run emitted no trace events")
		}
	}

	var ts, tr bytes.Buffer
	if err := s.WriteTimeSeries(&ts); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTimeSeries(ts.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(tr.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryDeterministicAcrossWorkers extends the seq-vs-parallel
// determinism guarantee to the telemetry exports: the emitted bytes must be
// identical for 1 and 8 workers.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	export := func(workers int) (ts, tr []byte) {
		o := telemetryTestOptions()
		o.Workers = workers
		s := NewSuite(o)
		wl := o.Workloads[0]
		reqs := []RunRequest{
			s.req(o.Cfg, wl, migration.PIPM),
			s.req(o.Cfg, wl, migration.Nomad),
			s.req(o.Cfg, wl, migration.Native),
		}
		if err := s.prefetch(reqs); err != nil {
			t.Fatal(err)
		}
		var tsb, trb bytes.Buffer
		if err := s.WriteTimeSeries(&tsb); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteTrace(&trb); err != nil {
			t.Fatal(err)
		}
		return tsb.Bytes(), trb.Bytes()
	}
	ts1, tr1 := export(1)
	ts8, tr8 := export(8)
	if !bytes.Equal(ts1, ts8) {
		t.Error("time-series bytes differ between 1 and 8 workers")
	}
	if !bytes.Equal(tr1, tr8) {
		t.Error("trace bytes differ between 1 and 8 workers")
	}
}

// TestRunKeyTelemetryFolding pins the memo contract: disabled telemetry
// leaves the key unchanged; enabled telemetry produces a distinct key.
func TestRunKeyTelemetryFolding(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]
	base := KeyOf(o.Cfg, wl, migration.PIPM, 100, 1)
	disabled := keyOf(o.Cfg, wl, migration.PIPM, 100, 1,
		telemetry.Options{}, audit.Options{}, machine.IntraOptions{})
	if base != disabled {
		t.Fatal("zero telemetry options changed the run key")
	}
	enabled := keyOf(o.Cfg, wl, migration.PIPM, 100, 1,
		telemetry.Options{SampleInterval: 10 * sim.Microsecond}, audit.Options{}, machine.IntraOptions{})
	if enabled == base {
		t.Fatal("enabled telemetry did not change the run key")
	}
	audited := keyOf(o.Cfg, wl, migration.PIPM, 100, 1,
		telemetry.Options{}, audit.Options{Mode: audit.Quantum}.WithDefaults(), machine.IntraOptions{})
	if audited == base || audited == enabled {
		t.Fatal("enabled auditing did not get its own run key")
	}
	intra := keyOf(o.Cfg, wl, migration.PIPM, 100, 1,
		telemetry.Options{}, audit.Options{}, machine.IntraOptions{Workers: 4})
	if intra == base || intra == enabled || intra == audited {
		t.Fatal("enabled intra parallelism did not get its own run key")
	}
}
