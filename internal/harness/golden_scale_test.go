package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"pipm/internal/migration"
)

// -update-golden-scale regenerates testdata/golden_scale.json — the
// scalability tier of the bit-identity guard — from the current code. Like
// -update-golden, regenerate only for an intended Result change, never to
// make a refactor pass.
var updateGoldenScale = flag.Bool("update-golden-scale", false,
	"rewrite internal/harness/testdata/golden_scale.json from the current code")

const goldenScalePath = "testdata/golden_scale.json"

// goldenScaleFile pins the cluster-scale sweep: one digest per host count ×
// scheme on the pr workload, at the exact (config, records, seed) the
// ClusterScale experiment uses.
type goldenScaleFile struct {
	Schema         string             `json:"schema"`
	Workload       string             `json:"workload"`
	RecordsPerCore int64              `json:"records_per_core"`
	Seed           int64              `json:"seed"`
	Entries        []goldenScaleEntry `json:"entries"`
}

type goldenScaleEntry struct {
	Hosts  int    `json:"hosts"`
	Scheme string `json:"scheme"`
	Key    string `json:"key"`
	Digest string `json:"digest"`
}

// goldenScaleSweep executes the cluster-scale run set — ScaleForHosts
// configs at 4/16/64/256 hosts, records scaled by ClusterScaleRecords —
// without telemetry: telemetry is observation-only, so these Results are
// bit-identical to the ones behind the ClusterScale tables.
func goldenScaleSweep(t *testing.T) []goldenScaleEntry {
	t.Helper()
	o := QuickOptions()
	wl := mustWorkload("pr")

	type job struct {
		idx   int
		hosts int
		k     migration.Kind
	}
	var jobs []job
	for _, hosts := range ClusterScaleHosts() {
		for _, k := range clusterScaleSchemes {
			jobs = append(jobs, job{idx: len(jobs), hosts: hosts, k: k})
		}
	}
	entries := make([]goldenScaleEntry, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := ScaleForHosts(o.Cfg, j.hosts)
			records := ClusterScaleRecords(o.RecordsPerCore, o.Cfg.Hosts, j.hosts)
			key := KeyOf(cfg, wl, j.k, records, o.Seed)
			res, err := RunOne(cfg, wl, j.k, records, o.Seed)
			if err != nil {
				errs[j.idx] = fmt.Errorf("%dhosts/%v: %w", j.hosts, j.k, err)
				return
			}
			entries[j.idx] = goldenScaleEntry{
				Hosts:  j.hosts,
				Scheme: j.k.String(),
				Key:    key.String(),
				Digest: DigestResult(res),
			}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return entries
}

// TestGoldenScalability is the bit-identity guard over the cluster-scale
// path: every host count × scheme Result on pr must digest exactly as
// recorded in testdata/golden_scale.json. The 4-host entries overlap the
// regimes the quick sweep covers; 16 and 64 hosts pin the sharded directory
// and the widest exact sharer bitmask; 256 hosts pins the summary sharer
// representation, 3-byte global remap entries and sparse hotness rows —
// none of which any 4-host run can reach.
func TestGoldenScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale sweep is too slow for -short")
	}
	o := QuickOptions()
	got := goldenScaleSweep(t)

	if *updateGoldenScale {
		gf := goldenScaleFile{
			Schema:         "pipm-golden-scale/v1",
			Workload:       "pr",
			RecordsPerCore: o.RecordsPerCore,
			Seed:           o.Seed,
			Entries:        got,
		}
		buf, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenScalePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenScalePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenScalePath)
		return
	}

	buf, err := os.ReadFile(goldenScalePath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden-scale): %v", err)
	}
	var want goldenScaleFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenScalePath, err)
	}
	if want.Schema != "pipm-golden-scale/v1" {
		t.Fatalf("golden schema = %q, want pipm-golden-scale/v1", want.Schema)
	}
	if want.RecordsPerCore != o.RecordsPerCore || want.Seed != o.Seed || want.Workload != "pr" {
		t.Fatalf("golden sweep shape (wl=%s records=%d seed=%d) != ClusterScale shape (wl=pr records=%d seed=%d); regenerate with -update-golden-scale",
			want.Workload, want.RecordsPerCore, want.Seed, o.RecordsPerCore, o.Seed)
	}

	wantByKey := make(map[string]goldenScaleEntry, len(want.Entries))
	for _, e := range want.Entries {
		wantByKey[e.Key] = e
	}
	var mismatches []string
	for _, e := range got {
		w, ok := wantByKey[e.Key]
		if !ok {
			mismatches = append(mismatches,
				fmt.Sprintf("%dhosts/%s: run key %s not in golden file (scaled config changed; regenerate with -update-golden-scale)",
					e.Hosts, e.Scheme, e.Key[:12]))
			continue
		}
		if w.Digest != e.Digest {
			mismatches = append(mismatches,
				fmt.Sprintf("%dhosts/%s: Result digest %s… != golden %s… (cluster-scale path no longer bit-identical)",
					e.Hosts, e.Scheme, e.Digest[:12], w.Digest[:12]))
		}
		delete(wantByKey, e.Key)
	}
	for _, w := range wantByKey {
		mismatches = append(mismatches,
			fmt.Sprintf("golden entry %dhosts/%s has no matching run", w.Hosts, w.Scheme))
	}
	for _, m := range mismatches {
		t.Error(m)
	}
	if len(got) != len(want.Entries) {
		t.Errorf("ran %d host×scheme pairs, golden file has %d", len(got), len(want.Entries))
	}
}
