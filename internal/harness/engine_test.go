package harness

import (
	"strings"
	"sync"
	"testing"

	"pipm/internal/migration"
)

// renderArtefacts builds a deterministic set of figures — concurrently, to
// exercise cross-builder singleflight — and concatenates their rendered
// tables in presentation order.
func renderArtefacts(t *testing.T, s *Suite) string {
	t.Helper()
	type job struct {
		name string
		run  func() (string, error)
	}
	one := func(f func() (Table, error)) func() (string, error) {
		return func() (string, error) {
			tab, err := f()
			if err != nil {
				return "", err
			}
			return tab.Format(), nil
		}
	}
	jobs := []job{
		{"fig4", func() (string, error) {
			tabs, err := s.Fig4()
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, tab := range tabs {
				b.WriteString(tab.Format())
			}
			return b.String(), nil
		}},
		{"fig5", one(s.Fig5)},
		{"fig10", one(s.Fig10)},
		{"fig13", one(s.Fig13)},
	}
	outs := make([]string, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			outs[i], errs[i] = j.run()
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", jobs[i].name, err)
		}
	}
	return strings.Join(outs, "")
}

// TestParallelDeterminism asserts the engine's rendered tables are
// byte-identical to the sequential path for worker counts 1, 2 and 8 —
// run under -race in CI.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOptions()
	o.RecordsPerCore = 4_000
	outputs := map[int]string{}
	for _, workers := range []int{1, 2, 8} {
		opt := o
		opt.Workers = workers
		outputs[workers] = renderArtefacts(t, NewSuite(opt))
	}
	if outputs[1] == "" {
		t.Fatal("sequential render is empty")
	}
	for _, workers := range []int{2, 8} {
		if outputs[workers] != outputs[1] {
			t.Errorf("rendered tables differ between 1 and %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
				workers, outputs[1], workers, outputs[workers])
		}
	}
}

// TestEngineSingleflight floods the engine with concurrent requests for one
// key and checks exactly one simulation executed.
func TestEngineSingleflight(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 4_000
	o.Workers = 4
	s := NewSuite(o)
	wl := o.Workloads[0]

	const callers = 16
	results := make([]Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.get(o.Cfg, wl, migration.PIPM)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d saw a different result", i)
		}
	}
	st := s.RunStats()
	if len(st) != 1 {
		t.Fatalf("singleflight executed %d runs, want 1", len(st))
	}
	if st[0].MemoHits != callers-1 {
		t.Fatalf("MemoHits = %d, want %d", st[0].MemoHits, callers-1)
	}
}

// TestEngineDeduplicatesAcrossFigures checks that the shared sweep points of
// different figures hit the memo: after Fig5 and Fig10, the Nomad and Memtis
// base runs must have executed once each.
func TestEngineDeduplicatesAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOptions()
	o.RecordsPerCore = 4_000
	o.Workloads = o.Workloads[:1]
	s := NewSuite(o)
	if _, err := s.Fig5(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig10(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, st := range s.RunStats() {
		seen[st.Workload+"/"+st.Scheme]++
	}
	// Fig5 runs nomad+memtis; Fig10 runs native plus all seven schemes. The
	// overlap must not re-execute.
	wl := o.Workloads[0].Name
	for _, scheme := range []string{"nomad", "memtis"} {
		if n := seen[wl+"/"+scheme]; n != 1 {
			t.Errorf("%s/%s executed %d times, want 1", wl, scheme, n)
		}
	}
	wantRuns := 1 + len(fig10Schemes) // native + the seven comparison schemes
	if len(seen) != wantRuns {
		t.Errorf("executed %d distinct runs, want %d: %v", len(seen), wantRuns, seen)
	}
}

// TestEngineProgressAndError checks the progress writer emits per-run lines
// and that errors surface deterministically through the engine.
func TestEngineProgressAndError(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 3_000
	var buf syncBuffer
	o.Progress = &buf
	s := NewSuite(o)
	if _, err := s.get(o.Cfg, o.Workloads[0], migration.Native); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "[engine] 1/1 runs") {
		t.Errorf("progress line missing: %q", got)
	}

	bad := o.Cfg
	bad.Hosts = 0
	if _, err := s.get(bad, o.Workloads[0], migration.Native); err == nil {
		t.Fatal("engine accepted a broken config")
	}
	// The failed run is memoized too: asking again must not re-execute.
	before := len(s.RunStats())
	if _, err := s.get(bad, o.Workloads[0], migration.Native); err == nil {
		t.Fatal("memoized failure did not surface")
	}
	if after := len(s.RunStats()); after != before {
		t.Fatalf("failed run re-executed: %d -> %d stats", before, after)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
