package harness

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pipm/internal/migration"
)

// progressLine matches one engine completion line. Wall time, simulated
// throughput and the ETA vary run to run; the counters must not.
var progressLine = regexp.MustCompile(
	`^\[engine\] (\d+)/(\d+) runs  (\S+)/(\S+) \S+  sim \S+  \(eta \S+ for (\d+) queued\)$`)

// TestProgressOutputSerialised runs a batch of parallel simulations with a
// progress writer attached and checks the emitted stream line by line: every
// line matches the format exactly (no interleaved fragments), completion
// counters are strictly 1..N in order, and each line's queued count is
// consistent with its own totals. The writer is a plain bytes.Buffer on
// purpose — noteDone writes under the engine lock, which is the only thing
// keeping this test race-free, so a torn or reordered stream fails here.
func TestProgressOutputSerialised(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 500
	wl := o.Workloads[0]
	const n = 8

	var buf bytes.Buffer
	runner := NewRunner(4, &buf)
	var wg sync.WaitGroup
	for seed := int64(1); seed <= n; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if _, err := runner.Get(RunRequest{
				Cfg: o.Cfg, WL: wl, Scheme: migration.Native,
				Records: o.RecordsPerCore, Seed: seed,
			}); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(seed)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("got %d progress lines, want %d:\n%s", len(lines), n, buf.String())
	}
	prevTotal := 0
	for i, line := range lines {
		m := progressLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d is malformed (torn write?): %q", i+1, line)
		}
		completed, _ := strconv.Atoi(m[1])
		total, _ := strconv.Atoi(m[2])
		queued, _ := strconv.Atoi(m[5])
		if completed != i+1 {
			t.Errorf("line %d: completed counter %d, want %d (out-of-order emission)", i+1, completed, i+1)
		}
		if total < prevTotal || total > n {
			t.Errorf("line %d: scheduled total %d out of range (prev %d, max %d)", i+1, total, prevTotal, n)
		}
		prevTotal = total
		if queued != total-completed {
			t.Errorf("line %d: queued %d != scheduled %d - completed %d", i+1, queued, total, completed)
		}
		if m[3] != wl.Name || m[4] != migration.Native.String() {
			t.Errorf("line %d: run identity %s/%s, want %s/%v", i+1, m[3], m[4], wl.Name, migration.Native)
		}
	}
	if lines[n-1][:len("[engine] 8/8")] != "[engine] 8/8" {
		t.Errorf("final line is not 8/8: %q", lines[n-1])
	}
}
