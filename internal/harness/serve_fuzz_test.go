package harness

import (
	"testing"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/daxfs"
	"pipm/internal/llmserve"
	"pipm/internal/migration"
	"pipm/internal/workload"
)

// The production-generator fuzz targets mirror FuzzAddressMap: arbitrary
// knob vectors map into Params (deliberately spanning both valid and invalid
// combinations), Validate gates them, and every accepted set must survive a
// short 2-host simulation under the quantum auditor with no panic and no
// invariant violation. The mappings bound the work-per-operation knobs so a
// valid set is always affordable; validity itself is the generator's
// contract, not the mapping's.

// fuzzHeap picks one of four page-aligned heap sizes, including the
// degenerate single-page pool that forces the layout fallbacks.
func fuzzHeap(sel uint8) int64 {
	switch sel % 4 {
	case 0:
		return config.PageBytes
	case 1:
		return 16 * config.PageBytes
	case 2:
		return 256 * config.PageBytes
	default:
		return 1024 * config.PageBytes
	}
}

// fuzzRun executes the gated workload on a 2-host machine under the quantum
// auditor and fails the fuzz run on any error or violation.
func fuzzRun(t *testing.T, wl workload.Params, heapSel uint8, seed int64) {
	t.Helper()
	o := QuickOptions()
	cfg := o.Cfg
	cfg.Hosts = 2
	cfg.SharedBytes = fuzzHeap(heapSel)
	const records = 1200
	res, _, rep, err := RunOneOpts(cfg, wl, migration.PIPM, records, seed,
		RunOpts{Audit: audit.Options{Mode: audit.Quantum}})
	if err != nil {
		t.Fatalf("run failed on validated params %+v: %v", wl, err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("auditor violations on validated params %+v: %v", wl, err)
	}
	if res.Instructions < records {
		t.Fatalf("run consumed %d instructions for %d records per core", res.Instructions, records)
	}
}

// FuzzServeWorkloadParams fuzzes the llmserve generator: knob vectors that
// pass Validate must produce in-range addresses and a clean audited run for
// any heap size, including the single-page pool and slot counts below the
// host count.
func FuzzServeWorkloadParams(f *testing.F) {
	d := llmserve.Default()
	f.Add(uint16(75), uint16(90), uint16(120), uint16(2), uint16(80), uint16(6),
		uint16(12), uint16(48), uint16(110), uint16(6), uint16(4), uint16(25),
		uint16(8), uint16(16), uint8(3), int64(1))
	f.Add(uint16(5), uint16(0), uint16(0), uint16(1), uint16(0), uint16(0),
		uint16(0), uint16(1), uint16(0), uint16(1), uint16(0), uint16(0),
		uint16(1), uint16(0), uint8(0), int64(7)) // idle-scan degenerate, tiny heap
	f.Add(uint16(100), uint16(100), uint16(300), uint16(8), uint16(2), uint16(20),
		uint16(39), uint16(63), uint16(300), uint16(9), uint16(9), uint16(100),
		uint16(11), uint16(39), uint8(2), int64(42)) // all-in KV pressure
	f.Fuzz(func(t *testing.T, weightFrac, shardFrac, weightZipf, slotPages,
		arrival2x, burst2x, prefill, decode, sessZipf, weightReads, kvWindow,
		migrate, maxActive, gap uint16, heapSel uint8, seed int64) {
		p := llmserve.Params{
			WeightFrac:    float64(weightFrac%110) / 100, // 0..1.09: spans invalid
			ShardFrac:     float64(shardFrac%110) / 100,
			WeightZipfS:   float64(weightZipf%300)/100 - 0.5,
			SlotPages:     int(slotPages % 9),
			ArrivalMean:   float64(arrival2x%160)/2 - 1,
			BurstMean:     float64(burst2x%24) / 2,
			PrefillTokens: int(prefill%42) - 1,
			DecodeTokens:  int(decode % 64),
			SessionZipfS:  float64(sessZipf%300)/100 - 0.5,
			WeightReads:   int(weightReads % 10),
			KVReadWindow:  int(kvWindow%10) - 1,
			MigrateFrac:   float64(migrate%120)/100 - 0.05,
			MaxActive:     int(maxActive % 12),
			GapMean:       int(gap%40) - 1,
		}
		if p == (llmserve.Params{}) {
			p = d // the zero vector means "disabled", not a generator input
		}
		if err := p.Validate(); err != nil {
			return // rejected cleanly: the gate worked
		}
		wl := workload.Params{Name: "llmserve-fuzz", Suite: "Serve", Footprint: 1, Serve: p}
		fuzzRun(t, wl, heapSel, seed)
	})
}

// FuzzFSWorkloadParams fuzzes the daxfs generator the same way: validated
// knob vectors — any op mix, extent geometry or hot-line fanout — must
// survive an audited 2-host run on every heap size, including extents larger
// than the data region and the one-page metadata-only fallback.
func FuzzFSWorkloadParams(f *testing.F) {
	d := daxfs.Default()
	f.Add(uint16(12), uint16(8), uint16(115), uint16(90), uint16(4), uint16(55),
		uint16(25), uint16(96), uint16(8), uint16(2), uint16(20), uint8(3), int64(1))
	f.Add(uint16(5), uint16(1), uint16(0), uint16(0), uint16(1), uint16(70),
		uint16(30), uint16(1), uint16(0), uint16(0), uint16(0), uint8(0), int64(7)) // read-only, tiny heap
	f.Add(uint16(90), uint16(64), uint16(300), uint16(100), uint16(16), uint16(0),
		uint16(0), uint16(127), uint16(15), uint16(7), uint16(39), uint8(1), int64(42)) // append storm
	f.Fuzz(func(t *testing.T, metaFrac, hotLines, fileZipf, ownFrac, extentPages,
		lookup, scan, scanLines, appendLines, casFanout, gap uint16, heapSel uint8, seed int64) {
		lookupFrac := float64(lookup%110) / 100
		scanFrac := float64(scan%110) / 100
		p := daxfs.Params{
			MetaFrac:    float64(metaFrac%110) / 100,
			HotLines:    int(hotLines % (config.LinesPerPage + 4)),
			FileZipfS:   float64(fileZipf%300)/100 - 0.5,
			OwnFrac:     float64(ownFrac%110) / 100,
			ExtentPages: int(extentPages % 20),
			LookupFrac:  lookupFrac,
			ScanFrac:    scanFrac,
			ScanLines:   int(scanLines % 128),
			AppendLines: int(appendLines % 16),
			CASFanout:   int(casFanout % 8),
			GapMean:     int(gap%40) - 1,
		}
		if p == (daxfs.Params{}) {
			p = d
		}
		if err := p.Validate(); err != nil {
			return
		}
		wl := workload.Params{Name: "daxfs-fuzz", Suite: "Serve", Footprint: 1, FS: p}
		fuzzRun(t, wl, heapSel, seed)
	})
}
