package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
)

// -update-golden-keys regenerates testdata/golden_keys.json. The fixture
// pins the exact hex RunKeys of a representative request matrix: once keys
// persist in the result store, an accidental change to the canonical
// encoding (field walk order, float canonicalization, option folding)
// silently orphans every stored entry — this test turns that into a loud
// failure. Regenerate ONLY for a deliberate key-schema change, and say so in
// the commit message: old stores become cold.
var updateGoldenKeys = flag.Bool("update-golden-keys", false,
	"rewrite internal/harness/testdata/golden_keys.json from the current code")

const goldenKeysPath = "testdata/golden_keys.json"

type goldenKeysFile struct {
	Schema  string           `json:"schema"`
	Entries []goldenKeyEntry `json:"entries"`
}

type goldenKeyEntry struct {
	Name string `json:"name"`
	Key  string `json:"key"`
}

// goldenKeyMatrix enumerates the request shapes whose keys are pinned: the
// plain quick-sweep keys, each key-affecting knob varied one at a time, the
// enabled-option variants (telemetry/audit/intra fold into the key only when
// on), and the canonicalized float encodings.
func goldenKeyMatrix() []goldenKeyEntry {
	o := QuickOptions()
	wl := o.Workloads[0]
	req := func(name string, r RunRequest) goldenKeyEntry {
		return goldenKeyEntry{Name: name, Key: r.Key().String()}
	}
	base := RunRequest{Cfg: o.Cfg, WL: wl, Scheme: migration.PIPM, Records: 1000, Seed: 1}

	var out []goldenKeyEntry
	for _, w := range o.Workloads {
		for _, k := range migration.Kinds {
			out = append(out, req(fmt.Sprintf("quick/%s/%v", w.Name, k),
				RunRequest{Cfg: o.Cfg, WL: w, Scheme: k, Records: o.RecordsPerCore, Seed: o.Seed}))
		}
	}

	out = append(out, req("base", base))

	records := base
	records.Records = 2000
	out = append(out, req("records=2000", records))

	seed := base
	seed.Seed = 7
	out = append(out, req("seed=7", seed))

	cfg := base
	cfg.Cfg.Kernel.Interval += sim.Microsecond
	out = append(out, req("cfg.Kernel.Interval+1us", cfg))

	zipf := base
	zipf.WL.ZipfS += 0.25
	out = append(out, req("wl.ZipfS+0.25", zipf))

	telem := base
	telem.Telemetry = telemetry.Options{SampleInterval: 50 * sim.Microsecond}
	out = append(out, req("telemetry=sample50us", telem))

	trace := base
	trace.Telemetry = telemetry.Options{Trace: true, TraceCapacity: 256}
	out = append(out, req("telemetry=trace256", trace))

	audited := base
	audited.Audit = audit.Options{Mode: audit.Quantum}
	out = append(out, req("audit=quantum", audited))

	intra := base
	intra.Intra = machine.IntraOptions{Workers: 4}
	out = append(out, req("intra=4", intra))

	// Canonicalized float encodings: these names pin *aliasing*, not just
	// values — the comparison below asserts -0.0/NaN-payload keys equal
	// their canonical twins.
	negZero := base
	negZero.WL.OwnFrac = math.Copysign(0, -1)
	out = append(out, req("wl.OwnFrac=-0.0", negZero))

	posZero := base
	posZero.WL.OwnFrac = 0
	out = append(out, req("wl.OwnFrac=+0.0", posZero))

	nan := base
	nan.WL.OwnFrac = math.Float64frombits(0x7ff8000000000042)
	out = append(out, req("wl.OwnFrac=NaN(payload42)", nan))

	// Production-service workloads: the quick shape on both mechanistic
	// generators, one enabled-sub-param variation each (the knob must join
	// the key), and the disabled-equals-legacy alias — a statistical preset
	// with zero-valued Serve/FS must key exactly like the pre-mechanistic
	// encoding, which the "quick/..." entries above already pin.
	for _, name := range []string{"llmserve", "daxfs"} {
		w := mustWorkload(name)
		for _, k := range clusterScaleSchemes {
			out = append(out, req(fmt.Sprintf("serve/%s/%v", name, k),
				RunRequest{Cfg: o.Cfg, WL: w, Scheme: k, Records: o.RecordsPerCore, Seed: o.Seed}))
		}
	}
	serveKnob := base
	serveKnob.WL = mustWorkload("llmserve")
	serveKnob.WL.Serve.MigrateFrac += 0.25
	out = append(out, req("serve/llmserve/MigrateFrac+0.25", serveKnob))

	fsKnob := base
	fsKnob.WL = mustWorkload("daxfs")
	fsKnob.WL.FS.CASFanout++
	out = append(out, req("serve/daxfs/CASFanout+1", fsKnob))

	return out
}

// TestGoldenRunKeys pins the canonical key encoding against
// testdata/golden_keys.json. Unlike the golden sweep, no simulation runs —
// this is purely the hash schema, so it is fast enough for -short.
func TestGoldenRunKeys(t *testing.T) {
	got := goldenKeyMatrix()

	// Invariants the matrix itself must satisfy, fixture or not: distinct
	// shapes get distinct keys, canonical float twins alias.
	byName := map[string]string{}
	for _, e := range got {
		byName[e.Name] = e.Key
	}
	if byName["wl.OwnFrac=-0.0"] != byName["wl.OwnFrac=+0.0"] {
		t.Error("-0.0 and +0.0 keys differ")
	}
	seen := map[string]string{}
	for _, e := range got {
		if e.Name == "wl.OwnFrac=-0.0" || e.Name == "base" {
			continue // deliberate aliases: of +0.0 / of quick pr run at different budget
		}
		if prev, dup := seen[e.Key]; dup {
			t.Errorf("%q and %q share key %s…", prev, e.Name, e.Key[:12])
		}
		seen[e.Key] = e.Name
	}

	if *updateGoldenKeys {
		buf, err := json.MarshalIndent(goldenKeysFile{Schema: "pipm-keys/v1", Entries: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenKeysPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenKeysPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden keys to %s", len(got), goldenKeysPath)
		return
	}

	buf, err := os.ReadFile(goldenKeysPath)
	if err != nil {
		t.Fatalf("reading golden keys (regenerate with -update-golden-keys): %v", err)
	}
	var want goldenKeysFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenKeysPath, err)
	}
	if want.Schema != "pipm-keys/v1" {
		t.Fatalf("golden keys schema = %q, want pipm-keys/v1", want.Schema)
	}
	wantByName := map[string]string{}
	for _, e := range want.Entries {
		wantByName[e.Name] = e.Key
	}
	for _, e := range got {
		w, ok := wantByName[e.Name]
		if !ok {
			t.Errorf("%s: not in golden keys file (new matrix entry? regenerate with -update-golden-keys)", e.Name)
			continue
		}
		if w != e.Key {
			t.Errorf("%s: key %s… != golden %s… (canonical encoding changed — every stored entry is now orphaned)",
				e.Name, e.Key[:12], w[:12])
		}
		delete(wantByName, e.Name)
	}
	for name := range wantByName {
		t.Errorf("golden key %q has no matching matrix entry (removed? regenerate with -update-golden-keys)", name)
	}
}
