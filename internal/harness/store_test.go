package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/store"
)

// storeTestOptions is the smallest sweep worth persisting: one workload, two
// schemes, a short trace.
func storeTestOptions(t *testing.T, dir string) Options {
	t.Helper()
	o := QuickOptions()
	o.RecordsPerCore = 5_000
	o.Workloads = o.Workloads[:1]
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Store = st
	return o
}

// TestSuiteStoreRoundTrip: a second process (modelled as a second Suite with
// a fresh Store handle on the same directory) must answer every run from
// disk, simulate nothing, and return bit-identical Results.
func TestSuiteStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	o1 := storeTestOptions(t, dir)
	s1 := NewSuite(o1)
	wl := o1.Workloads[0]
	r1a, err := s1.get(o1.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	r1b, err := s1.get(o1.Cfg, wl, migration.PIPM)
	if err != nil {
		t.Fatal(err)
	}
	st1, ok := s1.StoreStats()
	if !ok {
		t.Fatal("StoreStats reported no store despite Options.Store")
	}
	if st1.Hits != 0 || st1.Misses != 2 || st1.Saves != 2 || st1.Corrupt != 0 {
		t.Fatalf("cold sweep store stats: %+v", st1)
	}
	for _, rs := range s1.RunStats() {
		if rs.StoreHit {
			t.Fatalf("cold sweep marked run %s as a store hit", rs.Key)
		}
	}

	o2 := storeTestOptions(t, dir)
	s2 := NewSuite(o2)
	r2a, err := s2.get(o2.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	r2b, err := s2.get(o2.Cfg, wl, migration.PIPM)
	if err != nil {
		t.Fatal(err)
	}
	if r2a != r1a || r2b != r1b {
		t.Fatal("store-loaded Results differ from simulated ones")
	}
	st2, _ := s2.StoreStats()
	if st2.Hits != 2 || st2.Misses != 0 || st2.Saves != 0 || st2.Corrupt != 0 {
		t.Fatalf("warm sweep store stats: %+v", st2)
	}
	if st2.Dir != dir {
		t.Fatalf("StoreStats.Dir = %q, want %q", st2.Dir, dir)
	}
	for _, rs := range s2.RunStats() {
		if !rs.StoreHit {
			t.Fatalf("warm sweep run %s was not a store hit", rs.Key)
		}
	}
}

// TestStoreCorruptEntryIsAMiss: a truncated entry must be detected, counted
// corrupt, transparently re-simulated — and repaired by the write-back.
func TestStoreCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()

	o1 := storeTestOptions(t, dir)
	s1 := NewSuite(o1)
	wl := o1.Workloads[0]
	want, err := s1.get(o1.Cfg, wl, migration.PIPM)
	if err != nil {
		t.Fatal(err)
	}

	key := s1.req(o1.Cfg, wl, migration.PIPM).Key().String()
	path := o1.Store.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	o2 := storeTestOptions(t, dir)
	var progress bytes.Buffer
	o2.Progress = &progress
	s2 := NewSuite(o2)
	got, err := s2.get(o2.Cfg, wl, migration.PIPM)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("re-simulated Result differs from the original")
	}
	st, _ := s2.StoreStats()
	if st.Corrupt != 1 || st.Hits != 0 || st.Saves != 1 {
		t.Fatalf("corrupt-entry store stats: %+v", st)
	}
	if !bytes.Contains(progress.Bytes(), []byte("[store]")) {
		t.Fatalf("no corrupt-entry progress line; got:\n%s", progress.String())
	}
	for _, rs := range s2.RunStats() {
		if rs.StoreHit {
			t.Fatal("corrupt entry was served as a store hit")
		}
	}

	// The write-back repaired the entry: a third handle hits cleanly.
	o3 := storeTestOptions(t, dir)
	s3 := NewSuite(o3)
	if _, err := s3.get(o3.Cfg, wl, migration.PIPM); err != nil {
		t.Fatal(err)
	}
	st3, _ := s3.StoreStats()
	if st3.Hits != 1 || st3.Corrupt != 0 {
		t.Fatalf("post-repair store stats: %+v", st3)
	}
}

// TestStoreContentMismatchIsAMiss: an entry whose container verifies but
// whose content layer fails (here: a telemetry-enabled key answered by an
// entry with no telemetry payload) must be re-simulated, not trusted.
func TestStoreContentMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()

	// Simulate without telemetry, then splice that entry's body under a
	// telemetry-enabled key.
	o1 := storeTestOptions(t, dir)
	s1 := NewSuite(o1)
	wl := o1.Workloads[0]
	if _, err := s1.get(o1.Cfg, wl, migration.PIPM); err != nil {
		t.Fatal(err)
	}
	plainKey := s1.req(o1.Cfg, wl, migration.PIPM).Key().String()
	body, err := o1.Store.Load(plainKey)
	if err != nil {
		t.Fatal(err)
	}

	o2 := storeTestOptions(t, dir)
	o2.Telemetry.SampleInterval = 50 * sim.Microsecond
	s2 := NewSuite(o2)
	telemKey := s2.req(o2.Cfg, wl, migration.PIPM).Key().String()
	if telemKey == plainKey {
		t.Fatal("telemetry-enabled key equals plain key")
	}
	if err := o2.Store.Save(telemKey, body); err != nil {
		t.Fatal(err)
	}

	if _, err := s2.get(o2.Cfg, wl, migration.PIPM); err != nil {
		t.Fatal(err)
	}
	st, _ := s2.StoreStats()
	// Load counted a container hit, NoteContentCorrupt reclassified it; the
	// re-simulation then replaced the spliced entry. The pre-test Save on
	// this handle counts too.
	if st.Corrupt != 1 || st.Hits != 0 || st.Saves != 2 {
		t.Fatalf("content-mismatch store stats: %+v", st)
	}
	if out := s2.Telemetry(); len(out) != 1 || out[0].Output == nil {
		t.Fatal("re-simulated run did not collect telemetry")
	}
}

// TestStoreTelemetryExportIdentity: exports assembled from store-loaded
// telemetry must be byte-identical to the originals — the CI smoke's
// second-run guarantee.
func TestStoreTelemetryExportIdentity(t *testing.T) {
	dir := t.TempDir()

	exports := func(s *Suite) (ts, csv, trace []byte) {
		var a, b, c bytes.Buffer
		if err := s.WriteTimeSeries(&a); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteTimeSeriesCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteTrace(&c); err != nil {
			t.Fatal(err)
		}
		return a.Bytes(), b.Bytes(), c.Bytes()
	}

	run := func() (ts, csv, trace []byte, stats StoreStats) {
		o := storeTestOptions(t, dir)
		o.Telemetry.SampleInterval = 50 * sim.Microsecond
		o.Telemetry.Trace = true
		o.Telemetry.TraceCapacity = 256
		s := NewSuite(o)
		wl := o.Workloads[0]
		for _, k := range []migration.Kind{migration.Native, migration.PIPM} {
			if _, err := s.get(o.Cfg, wl, k); err != nil {
				t.Fatal(err)
			}
		}
		ts, csv, trace = exports(s)
		stats, _ = s.StoreStats()
		return
	}

	ts1, csv1, tr1, st1 := run()
	ts2, csv2, tr2, st2 := run()
	if st1.Saves != 2 || st2.Hits != 2 || st2.Misses != 0 || st2.Corrupt != 0 {
		t.Fatalf("store traffic: first %+v, second %+v", st1, st2)
	}
	if !bytes.Equal(ts1, ts2) {
		t.Error("time-series JSON differs after a store round trip")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("time-series CSV differs after a store round trip")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("Chrome trace differs after a store round trip")
	}
}

// TestAuditedRunsBypassStore: audited requests must neither read nor write
// the store — the auditor's sweeps have to execute.
func TestAuditedRunsBypassStore(t *testing.T) {
	dir := t.TempDir()
	o := storeTestOptions(t, dir)
	o.Audit.Mode = audit.Quantum
	s := NewSuite(o)
	wl := o.Workloads[0]
	if _, err := s.get(o.Cfg, wl, migration.PIPM); err != nil {
		t.Fatal(err)
	}
	st, ok := s.StoreStats()
	if !ok {
		t.Fatal("StoreStats reported no store")
	}
	if st.Hits != 0 || st.Misses != 0 || st.Saves != 0 || st.Corrupt != 0 {
		t.Fatalf("audited run touched the store: %+v", st)
	}
	keys, err := o.Store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("audited run persisted %d entries", len(keys))
	}
}

// TestRunnerStoreSharing: two Runners (the validate harness path) sharing a
// directory dedupe across processes like Suites do, and Runner.Telemetry
// serves the store-loaded output.
func TestRunnerStoreSharing(t *testing.T) {
	dir := t.TempDir()
	o := storeTestOptions(t, dir)
	o.Telemetry.SampleInterval = 50 * sim.Microsecond
	wl := o.Workloads[0]
	req := RunRequest{Cfg: o.Cfg, WL: wl, Scheme: migration.PIPM,
		Records: o.RecordsPerCore, Seed: o.Seed, Telemetry: o.Telemetry}

	r1 := NewRunnerOpts(o)
	res1, err := r1.Get(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Telemetry(req) == nil {
		t.Fatal("first runner collected no telemetry")
	}

	o2 := storeTestOptions(t, dir)
	o2.Telemetry = o.Telemetry
	r2 := NewRunnerOpts(o2)
	res2, err := r2.Get(req)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("runner store round trip changed the Result")
	}
	if r2.Telemetry(req) == nil {
		t.Fatal("store hit dropped the telemetry payload")
	}
	st, _ := r2.StoreStats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("second runner store stats: %+v", st)
	}
}

// TestStoreEntriesAreSharded sanity-checks the on-disk layout the docs
// promise: <root>/ab/cd/<64-hex>.
func TestStoreEntriesAreSharded(t *testing.T) {
	dir := t.TempDir()
	o := storeTestOptions(t, dir)
	s := NewSuite(o)
	if _, err := s.get(o.Cfg, o.Workloads[0], migration.Native); err != nil {
		t.Fatal(err)
	}
	keys, err := o.Store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(keys))
	}
	key := keys[0]
	want := filepath.Join(dir, key[:2], key[2:4], key)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
}
