// Package harness runs the paper's experiments: it builds machines,
// attaches synthetic workload traces, executes them across schemes and
// parameter sweeps, and renders each of the evaluation section's tables and
// figures (Table 1–2, Figures 4–5 and 10–17) as text tables.
//
// Scale note: the harness runs laptop-sized instances — the same system
// ratios as Table 2 but a smaller shared heap and shorter traces, with
// kernel migration intervals scaled down by the same factor as the
// instruction budget (the paper's 10 ms epoch over 10 B instructions
// becomes a 200 µs epoch over our default traces). EXPERIMENTS.md records
// paper-vs-measured numbers for every artefact.
package harness

import (
	"io"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/stats"
	"pipm/internal/store"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// Options configures an experiment sweep.
type Options struct {
	Cfg            config.Config     // base system configuration
	Workloads      []workload.Params // defaults to the full Table 1 catalog
	RecordsPerCore int64
	Seed           int64

	// Workers bounds how many simulations the suite's run-graph engine
	// executes concurrently; ≤ 0 means GOMAXPROCS. Rendered artefacts are
	// byte-identical for any worker count.
	Workers int
	// Progress, when non-nil, receives one line per completed simulation
	// with wall/sim time, throughput and an ETA for the queued remainder.
	Progress io.Writer
	// OnRunDone, when non-nil, receives one RunStats per completed execution
	// (simulated or store-loaded) in completion order — the engine's ordered
	// progress seam, exported. It is invoked while the engine lock is held,
	// so it must return quickly and must never call back into the engine or
	// the Runner; the experiment service uses it for live metrics.
	OnRunDone func(RunStats)

	// Telemetry configures the observability subsystem for every run the
	// suite executes. The zero value is disabled and keeps run keys — and
	// therefore the memo — identical to a telemetry-free sweep; enabled
	// telemetry is folded into the key so collected output stays attached to
	// its run. Telemetry never perturbs simulation results.
	Telemetry telemetry.Options

	// Audit attaches the runtime invariant auditor to every run the suite
	// executes; any invariant violation fails the run. Like Telemetry, the
	// zero value is disabled, keeps run keys unchanged, and the auditor is
	// observation-only — an audited run's Result is bit-identical to an
	// unaudited one.
	Audit audit.Options

	// Intra selects the intra-run parallel engine (conservative PDES; see
	// DESIGN.md §13) for every machine the suite builds. The zero value
	// keeps the classic sequential engine and leaves run keys unchanged;
	// enabled intra is folded into the key like Telemetry/Audit — results
	// are bit-identical either way, but the engine configuration under test
	// stays part of the run identity.
	Intra machine.IntraOptions

	// Store, when non-nil, is the persistent result store layered under the
	// engine's in-memory memo (DESIGN.md §14): a memo miss consults the
	// store before simulating, and completed simulations are written back so
	// a later process can skip them. Audited runs bypass the store — the
	// auditor's sweeps must actually execute.
	Store *store.Store
}

// DefaultOptions returns the scaled-down sweep configuration: Table 2
// ratios with the shared heap, caches, kernel epoch and kernel per-page
// costs all scaled by the same ~50× factor as the instruction budget, so
// per-epoch migration volume matches the paper's regime (see DESIGN.md §1).
func DefaultOptions() Options {
	cfg := config.Default()
	cfg.SharedBytes = 16 << 20 // 4096 shared pages
	cfg.L1D = config.CacheConfig{SizeBytes: 8 << 10, Ways: 4, Latency: sim.Nanosecond}
	cfg.LLC = config.CacheConfig{SizeBytes: 128 << 10, Ways: 16, Latency: 6 * sim.Nanosecond}
	cfg.Kernel.Interval = 400 * sim.Microsecond // scaled 10 ms epoch
	cfg.Kernel.InitiatorCost = 400 * sim.Nanosecond
	cfg.Kernel.RemoteCost = 100 * sim.Nanosecond
	cfg.Kernel.MaxLocalFrac = 0.08 // paper observes 5–7% per-host residency
	cfg.Kernel.MaxPagesPerEpoch = 128
	return Options{
		Cfg:            cfg,
		Workloads:      workload.Catalog(),
		RecordsPerCore: 400_000,
		Seed:           1,
	}
}

// QuickOptions returns a configuration small enough for unit tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Cfg.CoresPerHost = 1
	o.Cfg.SharedBytes = 4 << 20
	o.Cfg.Kernel.Interval = 100 * sim.Microsecond
	o.RecordsPerCore = 60_000
	o.Workloads = []workload.Params{
		mustWorkload("pr"),
		mustWorkload("canneal"),
		mustWorkload("ycsb"),
	}
	return o
}

func mustWorkload(name string) workload.Params {
	p, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Result is one (workload, scheme) measurement.
type Result struct {
	Workload string
	Scheme   migration.Kind

	ExecTime     sim.Time
	IPC          float64
	Instructions int64 // total simulated instructions across all cores

	LocalHitRate   float64
	InterStallFrac float64
	MgmtStallFrac  float64
	TransferFrac   float64
	HarmfulFrac    float64

	// Footprint fractions: time-averaged per-host local residency over the
	// total shared footprint.
	PageFootprintFrac float64
	LineFootprintFrac float64

	Promotions uint64
	Demotions  uint64
	LinesMoved uint64
	BytesMoved uint64

	LocalRemapHitRate  float64
	GlobalRemapHitRate float64
}

// RunOne executes a single (config, workload, scheme) simulation.
func RunOne(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64) (Result, error) {
	r, _, err := RunOneT(cfg, wl, k, records, seed, telemetry.Options{})
	return r, err
}

// RunOneT is RunOne with telemetry: when topt is enabled the machine collects
// the configured time-series and/or event trace and returns it alongside the
// Result (nil when disabled). Telemetry does not change the Result.
func RunOneT(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64,
	topt telemetry.Options) (Result, *telemetry.Output, error) {
	r, out, _, err := RunOneA(cfg, wl, k, records, seed, topt, audit.Options{})
	return r, out, err
}

// RunOneA is RunOneT with the runtime invariant auditor: when aopt is enabled
// the machine sweeps its protocol state during the run and the returned
// Report carries any violations (Report.Err() is nil on a clean run). The
// auditor is observation-only, so the Result — and the telemetry stream — are
// bit-identical to an unaudited run's.
func RunOneA(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64,
	topt telemetry.Options, aopt audit.Options) (Result, *telemetry.Output, audit.Report, error) {
	return RunOneOpts(cfg, wl, k, records, seed, RunOpts{Telemetry: topt, Audit: aopt})
}

// RunOpts bundles every optional subsystem a single run can attach. Each
// field's zero value disables its subsystem.
type RunOpts struct {
	Telemetry telemetry.Options
	Audit     audit.Options
	Intra     machine.IntraOptions
}

// RunOneOpts executes one simulation with the given optional subsystems
// attached. Telemetry and audit are observers; intra parallelism changes
// the engine but not one bit of the Result, the telemetry stream or the
// audit report (DESIGN.md §13).
func RunOneOpts(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64,
	o RunOpts) (Result, *telemetry.Output, audit.Report, error) {
	if err := wl.Validate(); err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	m, err := machine.New(cfg, k)
	if err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	if err := m.EnableTelemetry(o.Telemetry); err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	if err := m.EnableAuditor(o.Audit); err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	if err := m.EnableIntraParallel(o.Intra); err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	am := m.AddressMap()
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, wl.NewReader(am, cfg.Hosts, h, c, records, seed))
		}
	}
	if err := m.Run(); err != nil {
		return Result{}, nil, audit.Report{}, err
	}
	col := m.Stats()
	sharedPages := float64(cfg.SharedPages())
	r := Result{
		Workload:          wl.Name,
		Scheme:            k,
		ExecTime:          m.ExecTime(),
		IPC:               m.IPC(),
		Instructions:      col.Instructions(),
		LocalHitRate:      col.LocalHitRate(),
		InterStallFrac:    col.StallFraction(stats.ClassInterHost),
		MgmtStallFrac:     col.MgmtFraction(),
		TransferFrac:      col.TransferFraction(),
		HarmfulFrac:       m.HarmfulFraction(),
		PageFootprintFrac: col.MeanPageFootprint() / sharedPages,
		LineFootprintFrac: col.MeanLineFootprint() / (sharedPages * config.LinesPerPage),
		Promotions:        col.Promotions,
		Demotions:         col.Demotions,
		LinesMoved:        col.LinesMoved,
		BytesMoved:        col.BytesMoved,
	}
	if mgr := m.Manager(); mgr != nil {
		r.GlobalRemapHitRate = mgr.GlobalCache().HitRate()
		// Aggregate the local remap-cache hit rate over every host's cache
		// (total hits / total lookups), not just host 0's.
		var hits, lookups uint64
		for h := 0; h < cfg.Hosts; h++ {
			lc := mgr.LocalCache(h)
			hits += lc.Hits()
			lookups += lc.Hits() + lc.Misses()
		}
		if lookups > 0 {
			r.LocalRemapHitRate = float64(hits) / float64(lookups)
		}
	}
	return r, m.TelemetryOutput(), m.AuditReport(), nil
}

// Speedup returns base execution time over r's (— >1 means r is faster).
func Speedup(r, base Result) float64 {
	if r.ExecTime <= 0 {
		return 0
	}
	return float64(base.ExecTime) / float64(r.ExecTime)
}
