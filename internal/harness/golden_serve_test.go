package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"pipm/internal/migration"
	"pipm/internal/workload"
)

// -update-golden-serve regenerates testdata/golden_serve.json — the
// production-service tier of the bit-identity guard — from the current code.
// Like the other golden flags, regenerate only for an intended Result change,
// never to make a refactor pass.
var updateGoldenServe = flag.Bool("update-golden-serve", false,
	"rewrite internal/harness/testdata/golden_serve.json from the current code")

const goldenServePath = "testdata/golden_serve.json"

// goldenServeFile pins the ServeComparison sweep: every scheme on llmserve
// and daxfs at the base cluster size plus the cluster-scale scheme subset at
// 16/64/256 hosts, at the exact (config, records, seed) the experiment uses.
type goldenServeFile struct {
	Schema         string             `json:"schema"`
	RecordsPerCore int64              `json:"records_per_core"`
	Seed           int64              `json:"seed"`
	Entries        []goldenServeEntry `json:"entries"`
}

type goldenServeEntry struct {
	Workload string `json:"workload"`
	Hosts    int    `json:"hosts"`
	Scheme   string `json:"scheme"`
	Key      string `json:"key"`
	Digest   string `json:"digest"`
}

// goldenServeSweep executes the exact run set behind Suite.ServeComparison:
// telemetry-free, so digests pin the same Results the tables are assembled
// from. The base-host × cluster-scale-scheme pairs would duplicate base-host
// × all-scheme entries, so the job list keeps only the first occurrence of
// each (workload, hosts, scheme) triple.
func goldenServeSweep(t *testing.T) []goldenServeEntry {
	t.Helper()
	o := QuickOptions()

	type job struct {
		idx   int
		wl    workload.Params
		hosts int
		k     migration.Kind
	}
	var jobs []job
	seen := map[string]bool{}
	add := func(wl workload.Params, hosts int, k migration.Kind) {
		id := fmt.Sprintf("%s/%d/%v", wl.Name, hosts, k)
		if seen[id] {
			return
		}
		seen[id] = true
		jobs = append(jobs, job{idx: len(jobs), wl: wl, hosts: hosts, k: k})
	}
	for _, wl := range ServeWorkloads() {
		for _, k := range migration.Kinds {
			add(wl, o.Cfg.Hosts, k)
		}
		for _, hosts := range ClusterScaleHosts() {
			for _, k := range clusterScaleSchemes {
				add(wl, hosts, k)
			}
		}
	}

	entries := make([]goldenServeEntry, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := ScaleForHosts(o.Cfg, j.hosts)
			records := ClusterScaleRecords(o.RecordsPerCore, o.Cfg.Hosts, j.hosts)
			key := KeyOf(cfg, j.wl, j.k, records, o.Seed)
			res, err := RunOne(cfg, j.wl, j.k, records, o.Seed)
			if err != nil {
				errs[j.idx] = fmt.Errorf("%s/%dhosts/%v: %w", j.wl.Name, j.hosts, j.k, err)
				return
			}
			entries[j.idx] = goldenServeEntry{
				Workload: j.wl.Name,
				Hosts:    j.hosts,
				Scheme:   j.k.String(),
				Key:      key.String(),
				Digest:   DigestResult(res),
			}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return entries
}

// TestGoldenServeSweep is the bit-identity guard over the production-service
// path: every (workload, hosts, scheme) Result behind ServeComparison must
// digest exactly as recorded in testdata/golden_serve.json. The mechanistic
// generators execute their serving/filesystem loops, so these digests pin
// generator behaviour — arrival sequencing, slot placement, CAS ordering —
// as well as the simulator's, across every sharer-representation regime up
// to 256 hosts.
func TestGoldenServeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("serve sweep is too slow for -short")
	}
	o := QuickOptions()
	got := goldenServeSweep(t)

	if *updateGoldenServe {
		gf := goldenServeFile{
			Schema:         "pipm-golden-serve/v1",
			RecordsPerCore: o.RecordsPerCore,
			Seed:           o.Seed,
			Entries:        got,
		}
		buf, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenServePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenServePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenServePath)
		return
	}

	buf, err := os.ReadFile(goldenServePath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden-serve): %v", err)
	}
	var want goldenServeFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenServePath, err)
	}
	if want.Schema != "pipm-golden-serve/v1" {
		t.Fatalf("golden schema = %q, want pipm-golden-serve/v1", want.Schema)
	}
	if want.RecordsPerCore != o.RecordsPerCore || want.Seed != o.Seed {
		t.Fatalf("golden sweep shape (records=%d seed=%d) != ServeComparison shape (records=%d seed=%d); regenerate with -update-golden-serve",
			want.RecordsPerCore, want.Seed, o.RecordsPerCore, o.Seed)
	}

	wantByKey := make(map[string]goldenServeEntry, len(want.Entries))
	for _, e := range want.Entries {
		wantByKey[e.Key] = e
	}
	var mismatches []string
	for _, e := range got {
		w, ok := wantByKey[e.Key]
		if !ok {
			mismatches = append(mismatches,
				fmt.Sprintf("%s/%dhosts/%s: run key %s not in golden file (workload params or scaled config changed; regenerate with -update-golden-serve)",
					e.Workload, e.Hosts, e.Scheme, e.Key[:12]))
			continue
		}
		if w.Digest != e.Digest {
			mismatches = append(mismatches,
				fmt.Sprintf("%s/%dhosts/%s: Result digest %s… != golden %s… (production-service path no longer bit-identical)",
					e.Workload, e.Hosts, e.Scheme, e.Digest[:12], w.Digest[:12]))
		}
		delete(wantByKey, e.Key)
	}
	for _, w := range wantByKey {
		mismatches = append(mismatches,
			fmt.Sprintf("golden entry %s/%dhosts/%s has no matching run", w.Workload, w.Hosts, w.Scheme))
	}
	for _, m := range mismatches {
		t.Error(m)
	}
	if len(got) != len(want.Entries) {
		t.Errorf("ran %d workload×hosts×scheme triples, golden file has %d", len(got), len(want.Entries))
	}
}
