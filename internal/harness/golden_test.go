package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"pipm/internal/migration"
)

// -update-golden regenerates testdata/golden_quick.json from the current
// code instead of comparing against it. Regenerate ONLY when a Result change
// is intended (new scheme, new metric, a deliberate model fix) — never to
// make a refactor pass. See DESIGN.md §11.
var updateGoldenQuick = flag.Bool("update-golden", false,
	"rewrite internal/harness/testdata/golden_quick.json from the current code")

const goldenPath = "testdata/golden_quick.json"

// goldenFile is the committed digest record for the quick sweep: one entry
// per scheme × quick-workload pair, keyed by the canonical RunKey and
// carrying the SHA-256 digest of the run's Result.
type goldenFile struct {
	Schema         string        `json:"schema"`
	RecordsPerCore int64         `json:"records_per_core"`
	Seed           int64         `json:"seed"`
	Entries        []goldenEntry `json:"entries"`
}

type goldenEntry struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Key      string `json:"key"`
	Digest   string `json:"digest"`
}

// goldenSweep runs the quick sweep — every registered scheme × every
// QuickOptions workload — and returns one digest entry per pair, in
// presentation order (workload-major, scheme order as registered).
func goldenSweep(t *testing.T) []goldenEntry {
	t.Helper()
	o := QuickOptions()

	type job struct {
		idx int
		wl  int
		k   migration.Kind
	}
	var jobs []job
	for wi := range o.Workloads {
		for _, k := range migration.Kinds {
			jobs = append(jobs, job{idx: len(jobs), wl: wi, k: k})
		}
	}
	entries := make([]goldenEntry, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			wl := o.Workloads[j.wl]
			key := KeyOf(o.Cfg, wl, j.k, o.RecordsPerCore, o.Seed)
			res, err := RunOne(o.Cfg, wl, j.k, o.RecordsPerCore, o.Seed)
			if err != nil {
				errs[j.idx] = fmt.Errorf("%s/%v: %w", wl.Name, j.k, err)
				return
			}
			entries[j.idx] = goldenEntry{
				Workload: wl.Name,
				Scheme:   j.k.String(),
				Key:      key.String(),
				Digest:   DigestResult(res),
			}
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return entries
}

// TestGoldenQuickSweep is the bit-identity guard over the memory path: every
// scheme × quick-workload Result must digest exactly as recorded in
// testdata/golden_quick.json. A refactor of the walk, the route modules or
// the scheme hooks that changes any stat, any latency or any event ordering
// fails here before it can silently shift a figure.
//
// Golden digests are one of three independent guards over the memory path;
// the other two are the runtime invariant auditor (internal/audit, swept
// per quantum during every validated run) and the metamorphic relation
// registry (internal/validate). Digests catch any bit drift but cannot say
// whether the old or new behaviour was right; the auditor and the relations
// check the protocol's own laws, so a legitimate behaviour change
// regenerates this file (-update-golden) only after those two stay green.
func TestGoldenQuickSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep is too slow for -short")
	}
	o := QuickOptions()
	got := goldenSweep(t)

	if *updateGoldenQuick {
		gf := goldenFile{
			Schema:         "pipm-golden/v1",
			RecordsPerCore: o.RecordsPerCore,
			Seed:           o.Seed,
			Entries:        got,
		}
		buf, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if want.Schema != "pipm-golden/v1" {
		t.Fatalf("golden schema = %q, want pipm-golden/v1", want.Schema)
	}
	if want.RecordsPerCore != o.RecordsPerCore || want.Seed != o.Seed {
		t.Fatalf("golden sweep shape (records=%d seed=%d) != QuickOptions (records=%d seed=%d); regenerate with -update-golden",
			want.RecordsPerCore, want.Seed, o.RecordsPerCore, o.Seed)
	}

	wantByKey := make(map[string]goldenEntry, len(want.Entries))
	for _, e := range want.Entries {
		wantByKey[e.Key] = e
	}
	var mismatches []string
	for _, e := range got {
		w, ok := wantByKey[e.Key]
		if !ok {
			mismatches = append(mismatches,
				fmt.Sprintf("%s/%s: run key %s not in golden file (config or scheme set changed; regenerate with -update-golden)",
					e.Workload, e.Scheme, e.Key[:12]))
			continue
		}
		if w.Digest != e.Digest {
			mismatches = append(mismatches,
				fmt.Sprintf("%s/%s: Result digest %s… != golden %s… (memory path no longer bit-identical)",
					e.Workload, e.Scheme, e.Digest[:12], w.Digest[:12]))
		}
		delete(wantByKey, e.Key)
	}
	var stale []string
	for _, w := range wantByKey {
		stale = append(stale, fmt.Sprintf("%s/%s", w.Workload, w.Scheme))
	}
	sort.Strings(stale)
	if len(stale) > 0 {
		mismatches = append(mismatches,
			fmt.Sprintf("golden entries with no matching run (scheme removed or renamed?): %v", stale))
	}
	if len(mismatches) > 0 {
		for _, m := range mismatches {
			t.Error(m)
		}
	}
	if len(got) != len(want.Entries) {
		t.Errorf("ran %d scheme×workload pairs, golden file has %d", len(got), len(want.Entries))
	}
}
