package harness

import (
	"fmt"
	"testing"

	"pipm/internal/audit"
	"pipm/internal/migration"
)

// TestServeAuditedSmoke runs both production-service generators under the
// paranoid auditor at the base cluster size and at 64 hosts — the widest
// exact sharer bitmask. The llmserve KV slots concentrate writes that
// migrate between hosts; the daxfs hot lines put every host on the same CAS
// word: both are protocol shapes the Table 1 presets never produce, so every
// invariant sweep (SWMR, directory precision, remap agreement) runs against
// them. CI runs this under -race as the serve-workloads smoke.
func TestServeAuditedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("audited serve runs are too slow for -short")
	}
	o := QuickOptions()
	for _, name := range []string{"llmserve", "daxfs"} {
		wl := mustWorkload(name)
		for _, tc := range []struct {
			hosts   int
			records int64
		}{
			{o.Cfg.Hosts, 12_000},
			{64, 1500},
		} {
			tc := tc
			t.Run(fmt.Sprintf("%s-%dhosts", name, tc.hosts), func(t *testing.T) {
				t.Parallel()
				cfg := ScaleForHosts(o.Cfg, tc.hosts)
				_, _, rep, err := RunOneOpts(cfg, wl, migration.PIPM, tc.records, o.Seed,
					RunOpts{Audit: audit.Options{Mode: audit.Paranoid}})
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestServeComparisonDeterministicAcrossWorkers renders the full
// ServeComparison figure on a 1-worker engine and an 8-worker engine and
// requires byte-identical tables — the engine-parallel half of the serve
// determinism guarantee (the intra-parallel half lives in
// TestIntraDeterminismMatrix). A reduced record budget keeps the double
// sweep affordable; determinism is budget-independent.
func TestServeComparisonDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("double serve sweep is too slow for -short")
	}
	render := func(workers int) string {
		o := QuickOptions()
		o.RecordsPerCore = 6_000
		o.Workers = workers
		s := NewSuite(o)
		tables, err := s.ServeComparison(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var out string
		for _, tb := range tables {
			out += tb.Format() + "\n"
		}
		return out
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("ServeComparison tables differ between 1 and 8 engine workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}

// TestServeComparisonShape checks the figure's structure: one all-scheme
// table at the base size plus one cluster-scale table per workload, with the
// expected rows and columns.
func TestServeComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("serve sweep is too slow for -short")
	}
	o := QuickOptions()
	o.RecordsPerCore = 4_000
	s := NewSuite(o)
	hosts := []int{4, 16}
	tables, err := s.ServeComparison(hosts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	base := tables[0]
	if len(base.Cols) != 2 || base.Cols[0] != "llmserve" || base.Cols[1] != "daxfs" {
		t.Fatalf("base table cols = %v", base.Cols)
	}
	if len(base.Rows) != len(migration.Kinds)-1 {
		t.Fatalf("base table rows = %v, want all non-Native schemes", base.Rows)
	}
	for i, tb := range tables[1:] {
		if len(tb.Cols) != len(hosts) {
			t.Fatalf("scale table %d cols = %v", i, tb.Cols)
		}
		if len(tb.Rows) != len(clusterScaleSchemes)-1 {
			t.Fatalf("scale table %d rows = %v", i, tb.Rows)
		}
		for _, row := range tb.Cells {
			for _, v := range row {
				if v <= 0 {
					t.Fatalf("scale table %d has non-positive speedup %v", i, row)
				}
			}
		}
	}
}
