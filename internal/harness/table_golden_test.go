package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current rendering")

// goldenTables are the rendering cases pinned by files under testdata/.
// Regenerate with: go test ./internal/harness -run Golden -update
var goldenTables = []struct {
	file  string
	table Table
}{
	{
		file: "table_basic.golden",
		table: Table{
			Title: "Fig. 10: normalized execution time",
			Cols:  []string{"native", "pipm", "local-only"},
			Rows:  []string{"bfs", "pagerank"},
			Cells: [][]float64{{1, 0.62, 0.4}, {1, 0.715, 0.52}},
		},
	},
	{
		file: "table_mean_note.golden",
		table: Table{
			Title:     "Table 3: speedup over native",
			Note:      "geomean across 6 workloads; higher is better",
			Cols:      []string{"pipm"},
			Rows:      []string{"bfs", "sssp", "kmeans"},
			Cells:     [][]float64{{1.51}, {1.275}, {1.02}},
			MeanLabel: "mean",
		},
	},
	{
		file: "table_custom_fmt.golden",
		table: Table{
			Title: "remap cache hit rate",
			Cols:  []string{"64e", "1024e"},
			Rows:  []string{"contested"},
			Cells: [][]float64{{0.4321, 0.9876}},
			Fmt:   "%.1f%%",
		},
	},
	{
		file: "table_empty_rows.golden",
		table: Table{
			Title:     "degenerate: no rows",
			Cols:      []string{"a", "b"},
			MeanLabel: "mean",
		},
	},
}

func TestTableFormatGolden(t *testing.T) {
	for _, tc := range goldenTables {
		t.Run(tc.file, func(t *testing.T) {
			got := tc.table.Format()
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("rendering changed; rerun with -update if intended.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
