package harness

import (
	"encoding/json"
	"fmt"

	"pipm/internal/telemetry"
)

// storeEntry is the content layer of one persisted run (DESIGN.md §14.2):
// the Result, its golden digest (the same sha256 DigestResult computes for
// the golden-sweep guard), and — for telemetry-enabled keys — the collected
// telemetry output. The container layer (header, body checksum, atomic
// rename, sharding) lives in internal/store; this codec owns what the body
// means and whether it can be trusted as *this* run.
type storeEntry struct {
	Result Result `json:"result"`
	// Digest is DigestResult(Result), recomputed and compared on every
	// load. The container checksum proves the bytes survived the disk; the
	// digest proves the decoded Result survived the codec — a JSON
	// round-trip that perturbed one float would slip past the checksum but
	// not past this.
	Digest    string            `json:"digest"`
	Telemetry *telemetry.Output `json:"telemetry,omitempty"`
}

// encodeStoreEntry serialises one completed run for the store.
func encodeStoreEntry(res Result, telem *telemetry.Output) ([]byte, error) {
	return json.Marshal(storeEntry{Result: res, Digest: DigestResult(res), Telemetry: telem})
}

// decodeStoreEntry deserialises and verifies a store body against the
// request it is about to answer. Any failure means the entry cannot be
// trusted for this run: the caller counts it corrupt and re-simulates.
func decodeStoreEntry(body []byte, req RunRequest) (storeEntry, error) {
	var se storeEntry
	if err := json.Unmarshal(body, &se); err != nil {
		return storeEntry{}, fmt.Errorf("undecodable entry body: %w", err)
	}
	if got := DigestResult(se.Result); got != se.Digest {
		return storeEntry{}, fmt.Errorf("result digest %.12s… != recorded %.12s…", got, se.Digest)
	}
	if se.Result.Workload != req.WL.Name || se.Result.Scheme != req.Scheme {
		return storeEntry{}, fmt.Errorf("entry is %s/%v, request is %s/%v",
			se.Result.Workload, se.Result.Scheme, req.WL.Name, req.Scheme)
	}
	if req.Telemetry.Enabled() && se.Telemetry == nil {
		return storeEntry{}, fmt.Errorf("telemetry-enabled key has no telemetry payload")
	}
	return se, nil
}

// DecodeStoredResult decodes and digest-verifies a persisted entry body
// without a request context — the cmd/storecheck path. It returns the
// Result and whether telemetry was attached.
func DecodeStoredResult(body []byte) (Result, bool, error) {
	var se storeEntry
	if err := json.Unmarshal(body, &se); err != nil {
		return Result{}, false, fmt.Errorf("undecodable entry body: %w", err)
	}
	if got := DigestResult(se.Result); got != se.Digest {
		return Result{}, false, fmt.Errorf("result digest %.12s… != recorded %.12s…", got, se.Digest)
	}
	return se.Result, se.Telemetry != nil, nil
}

// DecodeStoredEntry is DecodeStoredResult returning the attached telemetry
// output too (nil when the entry has none). The experiment service uses it
// to serve time-series and Perfetto traces straight from the store.
func DecodeStoredEntry(body []byte) (Result, *telemetry.Output, error) {
	var se storeEntry
	if err := json.Unmarshal(body, &se); err != nil {
		return Result{}, nil, fmt.Errorf("undecodable entry body: %w", err)
	}
	if got := DigestResult(se.Result); got != se.Digest {
		return Result{}, nil, fmt.Errorf("result digest %.12s… != recorded %.12s…", got, se.Digest)
	}
	return se.Result, se.Telemetry, nil
}

// StoreStats is the engine-facing snapshot of result-store traffic for one
// sweep, embedded in the -json bench report's `store` block. Hits are runs
// answered from disk without simulating; Misses and Corrupt both forced a
// simulation (Corrupt additionally means an on-disk entry failed
// verification and was replaced).
type StoreStats struct {
	Dir        string `json:"dir"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Corrupt    uint64 `json:"corrupt"`
	Saves      uint64 `json:"saves"`
	SaveErrors uint64 `json:"save_errors,omitempty"`
}
