package harness

import (
	"crypto/sha256"
	"math"
	"reflect"
	"testing"

	"pipm/internal/llmserve"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/workload"
)

func TestRunKeyStableForEqualInputs(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]
	k1 := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)
	k2 := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)
	if k1 != k2 {
		t.Fatal("equal inputs produced different keys")
	}
	if k1.String() == "" || k1.Short() == "" || len(k1.String()) != 64 {
		t.Fatalf("bad key rendering: %q / %q", k1.String(), k1.Short())
	}
}

func TestRunKeySensitiveToEveryComponent(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]
	base := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)

	// Scheme, records, seed.
	if KeyOf(o.Cfg, wl, migration.Native, 1000, 1) == base {
		t.Error("scheme change did not change the key")
	}
	if KeyOf(o.Cfg, wl, migration.PIPM, 2000, 1) == base {
		t.Error("records change did not change the key")
	}
	if KeyOf(o.Cfg, wl, migration.PIPM, 1000, 2) == base {
		t.Error("seed change did not change the key")
	}

	// Arbitrary config fields, including nested ones.
	cfg := o.Cfg
	cfg.Kernel.Interval += sim.Microsecond
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("Kernel.Interval change did not change the key")
	}
	cfg = o.Cfg
	cfg.PIPM.MigrationThreshold++
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("MigrationThreshold change did not change the key")
	}
	cfg = o.Cfg
	cfg.CXL.LinkBW *= 2
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("CXL.LinkBW change did not change the key")
	}

	// Workload params under the same name — the bug the old name-keyed
	// memo had.
	hot := wl
	hot.ZipfS = wl.ZipfS + 1.5
	if KeyOf(o.Cfg, hot, migration.PIPM, 1000, 1) == base {
		t.Error("ZipfS change under the same workload name did not change the key")
	}
	rot := wl
	rot.RotateEvery = 500
	if KeyOf(o.Cfg, rot, migration.PIPM, 1000, 1) == base {
		t.Error("RotateEvery change under the same workload name did not change the key")
	}
}

// TestRunKeyFloatCanonicalization: float encodings no simulation can
// distinguish must hash identically, or the persistent store splits its key
// space (−0.0 configs would never hit entries saved under +0.0), while
// genuinely different values must still produce different keys.
func TestRunKeyFloatCanonicalization(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]

	negZero := math.Copysign(0, -1)
	posWL, negWL := wl, wl
	posWL.OwnFrac = 0
	negWL.OwnFrac = negZero
	if KeyOf(o.Cfg, posWL, migration.PIPM, 1000, 1) != KeyOf(o.Cfg, negWL, migration.PIPM, 1000, 1) {
		t.Error("-0.0 and 0.0 produced different run keys")
	}

	// Every NaN payload is one key. Build a second NaN bit pattern
	// explicitly: quiet NaN with a different payload.
	nan1, nan2 := math.NaN(), math.Float64frombits(0x7ff8000000000042)
	if !math.IsNaN(nan2) {
		t.Fatal("test bug: 0x7ff8000000000042 is not a NaN")
	}
	nanWL1, nanWL2 := wl, wl
	nanWL1.OwnFrac = nan1
	nanWL2.OwnFrac = nan2
	if KeyOf(o.Cfg, nanWL1, migration.PIPM, 1000, 1) != KeyOf(o.Cfg, nanWL2, migration.PIPM, 1000, 1) {
		t.Error("two NaN payloads produced different run keys")
	}

	// Sanity: canonicalization must not merge distinct values.
	if KeyOf(o.Cfg, posWL, migration.PIPM, 1000, 1) == KeyOf(o.Cfg, nanWL1, migration.PIPM, 1000, 1) {
		t.Error("0.0 and NaN collapsed to one key")
	}
	small := wl
	small.OwnFrac = 1e-300
	if KeyOf(o.Cfg, posWL, migration.PIPM, 1000, 1) == KeyOf(o.Cfg, small, migration.PIPM, 1000, 1) {
		t.Error("0.0 and 1e-300 collapsed to one key")
	}

	// The bit-level helper, exhaustively over the interesting encodings.
	if canonFloatBits(0) != 0 || canonFloatBits(negZero) != 0 {
		t.Error("canonFloatBits does not collapse zeros")
	}
	if canonFloatBits(nan1) != canonNaNBits || canonFloatBits(nan2) != canonNaNBits {
		t.Error("canonFloatBits does not collapse NaNs")
	}
	for _, f := range []float64{1.0, -1.0, 0.08, 5e9, math.Inf(1), math.Inf(-1), math.MaxFloat64} {
		if canonFloatBits(f) != math.Float64bits(f) {
			t.Errorf("canonFloatBits perturbed ordinary value %g", f)
		}
	}
}

func TestRunKeyRejectsUnencodableKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a map-typed value")
		}
	}()
	enc := canonEncoder{h: discardHash{}}
	enc.value("bad", reflect.ValueOf(map[string]int{"a": 1}))
}

// discardHash satisfies hash.Hash for the panic-path test.
type discardHash struct{}

func (discardHash) Write(p []byte) (int, error) { return len(p), nil }
func (discardHash) Sum(b []byte) []byte         { return b }
func (discardHash) Reset()                      {}
func (discardHash) Size() int                   { return 0 }
func (discardHash) BlockSize() int              { return 1 }

// TestSameNameDifferentZipfS is the regression test for the old name-only
// memo: two workloads sharing a Name but differing in ZipfS must execute as
// two distinct runs and produce different results.
func TestSameNameDifferentZipfS(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 5_000
	s := NewSuite(o)
	wl := o.Workloads[0]
	hot := wl
	hot.ZipfS = wl.ZipfS + 1.5

	r1, err := s.get(o.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.get(o.Cfg, hot, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.RunStats()); got != 2 {
		t.Fatalf("expected 2 executed runs for same-name workloads, got %d", got)
	}
	if r1.ExecTime == r2.ExecTime {
		t.Fatalf("same-name workloads with different ZipfS returned identical exec time %v", r1.ExecTime)
	}
}

func TestRunRequestKeyMatchesKeyOf(t *testing.T) {
	o := QuickOptions()
	wl, err := workload.ByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	req := RunRequest{Cfg: o.Cfg, WL: wl, Scheme: migration.PIPM, Records: 123, Seed: 7}
	if req.Key() != KeyOf(o.Cfg, wl, migration.PIPM, 123, 7) {
		t.Fatal("RunRequest.Key disagrees with KeyOf")
	}
}

// legacyWorkloadMirror is the workload.Params field set as it stood before
// the mechanistic Serve/FS sub-params existed. TestRunKeyLegacyEncodingStable
// encodes it with the generic struct walker and demands the production
// encoder emit the same key for a statistical preset — the property that
// keeps every persisted store entry and golden fixture valid across the
// field additions. If a field is ever added to workload.Params without the
// Enabled() gating, this mirror (intentionally) goes stale and the test
// fails, forcing a decision about key compatibility.
type legacyWorkloadMirror struct {
	Name        string
	Suite       string
	Footprint   int64
	SharedFrac  float64
	OwnFrac     float64
	SpillFrac   float64
	ZipfS       float64
	RunLen      float64
	WriteFrac   float64
	GapMean     int
	DepFrac     float64
	RotateEvery int64
}

func TestRunKeyLegacyEncodingStable(t *testing.T) {
	o := QuickOptions()
	for _, wl := range workload.Catalog() {
		mirror := legacyWorkloadMirror{
			Name: wl.Name, Suite: wl.Suite, Footprint: wl.Footprint,
			SharedFrac: wl.SharedFrac, OwnFrac: wl.OwnFrac, SpillFrac: wl.SpillFrac,
			ZipfS: wl.ZipfS, RunLen: wl.RunLen, WriteFrac: wl.WriteFrac,
			GapMean: wl.GapMean, DepFrac: wl.DepFrac, RotateEvery: wl.RotateEvery,
		}
		legacy := sha256.New()
		enc := canonEncoder{h: legacy}
		enc.value("cfg", reflect.ValueOf(o.Cfg))
		enc.value("workload", reflect.ValueOf(mirror))
		enc.int64("scheme", int64(migration.PIPM))
		enc.int64("records", int64(1000))
		enc.int64("seed", 1)
		var want RunKey
		legacy.Sum(want[:0])
		if got := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1); got != want {
			t.Fatalf("%s: key diverged from the pre-mechanistic encoding", wl.Name)
		}
	}
}

// Enabled mechanistic params must join the key: same name, different knob ⇒
// different key, and enabling either generator changes the key at all.
func TestRunKeyMechanisticParamsJoin(t *testing.T) {
	o := QuickOptions()
	serve, err := workload.ByName("llmserve")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := workload.ByName("daxfs")
	if err != nil {
		t.Fatal(err)
	}
	plain := serve
	plain.Serve = llmserve.Params{}
	base := KeyOf(o.Cfg, serve, migration.PIPM, 1000, 1)
	if KeyOf(o.Cfg, plain, migration.PIPM, 1000, 1) == base {
		t.Error("enabling Serve did not change the key")
	}
	hot := serve
	hot.Serve.MigrateFrac += 0.25
	if KeyOf(o.Cfg, hot, migration.PIPM, 1000, 1) == base {
		t.Error("Serve knob change under the same name did not change the key")
	}
	fsBase := KeyOf(o.Cfg, fs, migration.PIPM, 1000, 1)
	fsHot := fs
	fsHot.FS.CASFanout++
	if KeyOf(o.Cfg, fsHot, migration.PIPM, 1000, 1) == fsBase {
		t.Error("FS knob change under the same name did not change the key")
	}
}
