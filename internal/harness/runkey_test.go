package harness

import (
	"reflect"
	"testing"

	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/workload"
)

func TestRunKeyStableForEqualInputs(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]
	k1 := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)
	k2 := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)
	if k1 != k2 {
		t.Fatal("equal inputs produced different keys")
	}
	if k1.String() == "" || k1.Short() == "" || len(k1.String()) != 64 {
		t.Fatalf("bad key rendering: %q / %q", k1.String(), k1.Short())
	}
}

func TestRunKeySensitiveToEveryComponent(t *testing.T) {
	o := QuickOptions()
	wl := o.Workloads[0]
	base := KeyOf(o.Cfg, wl, migration.PIPM, 1000, 1)

	// Scheme, records, seed.
	if KeyOf(o.Cfg, wl, migration.Native, 1000, 1) == base {
		t.Error("scheme change did not change the key")
	}
	if KeyOf(o.Cfg, wl, migration.PIPM, 2000, 1) == base {
		t.Error("records change did not change the key")
	}
	if KeyOf(o.Cfg, wl, migration.PIPM, 1000, 2) == base {
		t.Error("seed change did not change the key")
	}

	// Arbitrary config fields, including nested ones.
	cfg := o.Cfg
	cfg.Kernel.Interval += sim.Microsecond
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("Kernel.Interval change did not change the key")
	}
	cfg = o.Cfg
	cfg.PIPM.MigrationThreshold++
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("MigrationThreshold change did not change the key")
	}
	cfg = o.Cfg
	cfg.CXL.LinkBW *= 2
	if KeyOf(cfg, wl, migration.PIPM, 1000, 1) == base {
		t.Error("CXL.LinkBW change did not change the key")
	}

	// Workload params under the same name — the bug the old name-keyed
	// memo had.
	hot := wl
	hot.ZipfS = wl.ZipfS + 1.5
	if KeyOf(o.Cfg, hot, migration.PIPM, 1000, 1) == base {
		t.Error("ZipfS change under the same workload name did not change the key")
	}
	rot := wl
	rot.RotateEvery = 500
	if KeyOf(o.Cfg, rot, migration.PIPM, 1000, 1) == base {
		t.Error("RotateEvery change under the same workload name did not change the key")
	}
}

func TestRunKeyRejectsUnencodableKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a map-typed value")
		}
	}()
	enc := canonEncoder{h: discardHash{}}
	enc.value("bad", reflect.ValueOf(map[string]int{"a": 1}))
}

// discardHash satisfies hash.Hash for the panic-path test.
type discardHash struct{}

func (discardHash) Write(p []byte) (int, error) { return len(p), nil }
func (discardHash) Sum(b []byte) []byte         { return b }
func (discardHash) Reset()                      {}
func (discardHash) Size() int                   { return 0 }
func (discardHash) BlockSize() int              { return 1 }

// TestSameNameDifferentZipfS is the regression test for the old name-only
// memo: two workloads sharing a Name but differing in ZipfS must execute as
// two distinct runs and produce different results.
func TestSameNameDifferentZipfS(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 5_000
	s := NewSuite(o)
	wl := o.Workloads[0]
	hot := wl
	hot.ZipfS = wl.ZipfS + 1.5

	r1, err := s.get(o.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.get(o.Cfg, hot, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.RunStats()); got != 2 {
		t.Fatalf("expected 2 executed runs for same-name workloads, got %d", got)
	}
	if r1.ExecTime == r2.ExecTime {
		t.Fatalf("same-name workloads with different ZipfS returned identical exec time %v", r1.ExecTime)
	}
}

func TestRunRequestKeyMatchesKeyOf(t *testing.T) {
	o := QuickOptions()
	wl, err := workload.ByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	req := RunRequest{Cfg: o.Cfg, WL: wl, Scheme: migration.PIPM, Records: 123, Seed: 7}
	if req.Key() != KeyOf(o.Cfg, wl, migration.PIPM, 123, 7) {
		t.Fatal("RunRequest.Key disagrees with KeyOf")
	}
}
