package harness

import (
	"fmt"

	"pipm/internal/migration"
	"pipm/internal/workload"
)

// ------------------------------------------------ production-service suite --

// ServeWorkloads returns the production-service workload family the serve
// comparison sweeps: the mechanistic llmserve and daxfs generators.
func ServeWorkloads() []workload.Params { return workload.Production() }

// serveScaleReq names one serve-comparison run at a given cluster size: the
// cluster-scale configuration and record-budget rules, but telemetry-free —
// the golden serve tier pins these runs by key, and keeping them plain means
// the base-host column of the scale cut aliases the all-scheme comparison's
// runs through the memo instead of re-simulating under a telemetry key.
func (s *Suite) serveScaleReq(wl workload.Params, hosts int, k migration.Kind) RunRequest {
	r := s.req(ScaleForHosts(s.opt.Cfg, hosts), wl, k)
	r.Records = ClusterScaleRecords(s.opt.RecordsPerCore, s.opt.Cfg.Hosts, hosts)
	return r
}

// ServeComparison is the production-service figure: every scheme on the
// llmserve and daxfs workloads at the base cluster size, then a per-workload
// cluster-scale cut over the same host ladder and scheme subset as the
// ClusterScale experiment. The read-mostly weight region and write-heavy
// migrating KV slots (llmserve) and the all-host CAS contention over cold
// extents (daxfs) probe PIPM's partial-absorption premise where the Table 1
// kernels never do.
func (s *Suite) ServeComparison(hostCounts []int) ([]Table, error) {
	if len(hostCounts) == 0 {
		hostCounts = ClusterScaleHosts()
	}
	workloads := ServeWorkloads()
	var reqs []RunRequest
	for _, wl := range workloads {
		for _, k := range migration.Kinds {
			reqs = append(reqs, s.serveScaleReq(wl, s.opt.Cfg.Hosts, k))
		}
		for _, hosts := range hostCounts {
			for _, k := range clusterScaleSchemes {
				reqs = append(reqs, s.serveScaleReq(wl, hosts, k))
			}
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}

	base := Table{
		Title:     fmt.Sprintf("Production services: speedup over Native (%d hosts)", s.opt.Cfg.Hosts),
		MeanLabel: "mean",
	}
	for _, wl := range workloads {
		base.Cols = append(base.Cols, wl.Name)
	}
	for _, k := range migration.Kinds {
		if k == migration.Native {
			continue
		}
		var row []float64
		for _, wl := range workloads {
			nat, err := s.eng.get(s.serveScaleReq(wl, s.opt.Cfg.Hosts, migration.Native))
			if err != nil {
				return nil, err
			}
			res, err := s.eng.get(s.serveScaleReq(wl, s.opt.Cfg.Hosts, k))
			if err != nil {
				return nil, err
			}
			row = append(row, Speedup(res, nat))
		}
		base.Rows = append(base.Rows, k.String())
		base.Cells = append(base.Cells, row)
	}
	tables := []Table{base}

	for _, wl := range workloads {
		scale := Table{
			Title:     fmt.Sprintf("Production services: speedup over Native vs host count (%s)", wl.Name),
			MeanLabel: "mean",
		}
		for _, hosts := range hostCounts {
			scale.Cols = append(scale.Cols, fmt.Sprintf("%dhosts", hosts))
		}
		for _, k := range clusterScaleSchemes {
			if k == migration.Native {
				continue
			}
			var row []float64
			for _, hosts := range hostCounts {
				nat, err := s.eng.get(s.serveScaleReq(wl, hosts, migration.Native))
				if err != nil {
					return nil, err
				}
				res, err := s.eng.get(s.serveScaleReq(wl, hosts, k))
				if err != nil {
					return nil, err
				}
				row = append(row, Speedup(res, nat))
			}
			scale.Rows = append(scale.Rows, k.String())
			scale.Cells = append(scale.Cells, row)
		}
		tables = append(tables, scale)
	}
	return tables, nil
}
