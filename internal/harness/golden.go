package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
)

// DigestResult returns a hex SHA-256 over the canonical encoding of r —
// every exported field, labeled, depth-first, floats by their IEEE bits (the
// same encoder that computes RunKey). Two Results digest equally iff they
// are bit-identical, so the golden-digest test (golden_test.go) can assert
// that a refactor of the memory path reproduced every quick-sweep Result
// exactly, not merely approximately.
func DigestResult(r Result) string {
	h := sha256.New()
	enc := canonEncoder{h: h}
	enc.value("result", reflect.ValueOf(r))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return hex.EncodeToString(sum[:])
}
