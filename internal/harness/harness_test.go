package harness

import (
	"strings"
	"testing"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/workload"
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	o := QuickOptions()
	o.RecordsPerCore = 20_000 // keep unit tests snappy
	return NewSuite(o)
}

func TestRunOneProducesMetrics(t *testing.T) {
	o := QuickOptions()
	wl, _ := workload.ByName("pr")
	r, err := RunOne(o.Cfg, wl, migration.PIPM, 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecTime <= 0 || r.IPC <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.LocalHitRate <= 0 || r.Promotions == 0 || r.LinesMoved == 0 {
		t.Fatalf("PIPM produced no migration activity: %+v", r)
	}
	if r.LocalRemapHitRate <= 0 || r.GlobalRemapHitRate <= 0 {
		t.Fatalf("remap cache stats missing: %+v", r)
	}
	if r.Workload != "pr" || r.Scheme != migration.PIPM {
		t.Fatalf("labels wrong: %+v", r)
	}
}

func TestRunOneRejectsBadConfig(t *testing.T) {
	o := QuickOptions()
	o.Cfg.Hosts = 0
	wl, _ := workload.ByName("pr")
	if _, err := RunOne(o.Cfg, wl, migration.Native, 100, 1); err == nil {
		t.Fatal("RunOne accepted a broken config")
	}
}

func TestSpeedup(t *testing.T) {
	a := Result{ExecTime: 100}
	b := Result{ExecTime: 200}
	if Speedup(a, b) != 2 {
		t.Fatalf("Speedup = %v, want 2", Speedup(a, b))
	}
	if Speedup(Result{}, b) != 0 {
		t.Fatal("zero exec time should give 0")
	}
}

func TestEngineMemoizes(t *testing.T) {
	o := QuickOptions()
	o.RecordsPerCore = 5_000
	s := NewSuite(o)
	wl := o.Workloads[0]
	r1, err := s.get(o.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.get(o.Cfg, wl, migration.Native)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("memoized results differ")
	}
	st := s.RunStats()
	if len(st) != 1 {
		t.Fatalf("expected 1 executed run, got %d", len(st))
	}
	if st[0].MemoHits != 1 {
		t.Fatalf("MemoHits = %d, want 1", st[0].MemoHits)
	}
	if st[0].Instructions <= 0 || st[0].SimPS <= 0 {
		t.Fatalf("stats missing throughput data: %+v", st[0])
	}
}

func TestTableFormatAndHelpers(t *testing.T) {
	tab := Table{
		Title:     "demo",
		Note:      "a note",
		Cols:      []string{"a", "b"},
		Rows:      []string{"x", "y"},
		Cells:     [][]float64{{1, 2}, {3, 4}},
		MeanLabel: "mean",
	}
	s := tab.Format()
	for _, frag := range []string{"demo", "a note", "workload", "mean", "2.00", "3.00"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Format missing %q:\n%s", frag, s)
		}
	}
	means := tab.Means()
	if means[0] != 2 || means[1] != 3 {
		t.Fatalf("Means = %v", means)
	}
	if v, ok := tab.Cell("y", "b"); !ok || v != 4 {
		t.Fatalf("Cell = %v, %v", v, ok)
	}
	if _, ok := tab.Cell("nope", "b"); ok {
		t.Fatal("Cell found a missing row")
	}
	empty := Table{Cols: []string{"a"}}
	if empty.Means()[0] != 0 {
		t.Fatal("empty table mean should be 0")
	}
}

func TestTable1And2Render(t *testing.T) {
	s := Table1()
	for _, name := range workload.Names() {
		if !strings.Contains(s, name) {
			t.Errorf("Table1 missing %s", name)
		}
	}
	cfg := config.Default()
	s2 := Table2(cfg)
	for _, frag := range []string{"4 hosts", "6-wide", "50.00ns", "threshold 8"} {
		if !strings.Contains(s2, frag) {
			t.Errorf("Table2 missing %q:\n%s", frag, s2)
		}
	}
}

func TestFig10ShapeOnQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := quickSuite(t)
	tab, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Cols) != 7 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	// Local-only must dominate everything; PIPM must not lose to native
	// (cells are speedups over native).
	for r := range tab.Rows {
		localOnly := tab.Cells[r][len(tab.Cols)-1]
		for c := 0; c < len(tab.Cols)-1; c++ {
			if tab.Cells[r][c] >= localOnly {
				t.Errorf("%s: %s (%.2f) beat local-only (%.2f)",
					tab.Rows[r], tab.Cols[c], tab.Cells[r][c], localOnly)
			}
		}
		// At this tiny quick scale PIPM has little time to amortize on
		// contested workloads; it must still be near-harmless.
		if pipm, _ := tab.Cell(tab.Rows[r], "pipm"); pipm < 0.85 {
			t.Errorf("%s: pipm speedup %.2f < 0.85", tab.Rows[r], pipm)
		}
	}
}

func TestFig11And12Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := quickSuite(t)
	hit, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	stall, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for r := range hit.Rows {
		for c := range hit.Cols {
			if hit.Cells[r][c] < 0 || hit.Cells[r][c] > 100 {
				t.Errorf("hit rate out of range: %v", hit.Cells[r][c])
			}
			if stall.Cells[r][c] < 0 || stall.Cells[r][c] > 100 {
				t.Errorf("stall fraction out of range: %v", stall.Cells[r][c])
			}
		}
		// Native's local hit rate is identically zero.
		if v, _ := hit.Cell(hit.Rows[r], "native"); v != 0 {
			t.Errorf("native hit rate %v != 0", v)
		}
	}
}

func TestFig13FootprintShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := quickSuite(t)
	tab, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		hw, _ := tab.Cell(tab.Rows[r], "hw-static")
		if hw < 20 || hw > 30 {
			t.Errorf("%s: hw-static footprint %.1f%%, want ≈25%%", tab.Rows[r], hw)
		}
		page, _ := tab.Cell(tab.Rows[r], "pipm-page")
		line, _ := tab.Cell(tab.Rows[r], "pipm-line")
		if line > page {
			t.Errorf("%s: pipm-line (%.1f) exceeds pipm-page (%.1f)", tab.Rows[r], line, page)
		}
	}
}

func TestFig5Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	s := quickSuite(t)
	tab, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		for c := range tab.Cols {
			if v := tab.Cells[r][c]; v < 0 || v > 100 {
				t.Errorf("harmful%% out of range: %v", v)
			}
		}
	}
}

func TestFig16SmallCacheHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOptions()
	o.RecordsPerCore = 15_000
	o.Workloads = o.Workloads[:1]
	s := NewSuite(o)
	tab, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	// Normalized performance must be ≤ ~1 and non-decreasing-ish with size.
	first := tab.Cells[0][0]
	last := tab.Cells[0][len(tab.Cols)-1]
	if last < first-0.02 {
		t.Errorf("bigger local remap cache performed worse: %.3f → %.3f", first, last)
	}
	for c := range tab.Cols {
		if tab.Cells[0][c] > 1.05 {
			t.Errorf("normalized perf %v > 1 (beats infinite cache)", tab.Cells[0][c])
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOptions()
	o.RecordsPerCore = 40_000
	o.Cfg.SharedBytes = 1 << 20   // small heap: phases span several passes
	o.Workloads = o.Workloads[:1] // pr only
	s := NewSuite(o)

	scal, err := s.Scalability([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for c := range scal.Cols {
		if scal.Cells[0][c] <= 1 {
			t.Errorf("PIPM speedup at %s = %.2f, want > 1", scal.Cols[c], scal.Cells[0][c])
		}
	}

	th, err := s.ThresholdSensitivity([]int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// §5.1.4: similar performance across 4..16 — within 25% of each other.
	lo, hi := th.Cells[0][0], th.Cells[0][0]
	for _, v := range th.Cells[0] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > lo*1.25 {
		t.Errorf("threshold sensitivity too wide: %.2f..%.2f", lo, hi)
	}

	ad, err := s.Adaptivity()
	if err != nil {
		t.Fatal(err)
	}
	hwStatic, _ := ad.Cell("pr", "hw-static")
	pipmV, _ := ad.Cell("pr", "pipm")
	if pipmV <= hwStatic {
		t.Errorf("under rotation PIPM (%.2f) should beat HW-static (%.2f)", pipmV, hwStatic)
	}
}
