package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"

	"pipm/internal/audit"
	"pipm/internal/config"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// RunKey canonically identifies one simulation: a digest of the full
// config.Config, the complete workload.Params, the scheme, the per-core
// record budget and the seed. Two runs with equal keys produce bit-identical
// Results (RunOne is deterministic), so the engine memoizes and deduplicates
// by key — unlike the old name-only memo, a modified Params under a reused
// name can never alias a stale result.
type RunKey [sha256.Size]byte

// String returns the key as hex, for logs and the -json emitter.
func (k RunKey) String() string { return hex.EncodeToString(k[:]) }

// Short returns the first 12 hex digits, enough to eyeball in progress lines.
func (k RunKey) Short() string { return hex.EncodeToString(k[:6]) }

// KeyOf computes the canonical run key. The encoding walks every exported
// field of cfg and wl reflectively (names + values, depth-first), so a field
// added to either struct in a future PR automatically changes the key space
// instead of silently aliasing old entries.
func KeyOf(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64) RunKey {
	return keyOf(cfg, wl, k, records, seed, telemetry.Options{}, audit.Options{}, machine.IntraOptions{})
}

// keyOf additionally folds telemetry, audit and intra-parallel
// configurations into the key — but only when enabled. Disabled runs hash
// exactly as before, so every memoized key of a plain sweep stays valid;
// enabled runs get their own entries because the engine must keep the
// collected output (or the audit report, whose pass/fail semantics differ)
// alongside the Result. Intra-parallel results are bit-identical to
// sequential ones, but the engine configuration under test is still part of
// the run identity — a determinism matrix that asks for 1- and 8-worker
// runs must execute both, not serve one from the other's memo entry.
func keyOf(cfg config.Config, wl workload.Params, k migration.Kind, records, seed int64,
	topt telemetry.Options, aopt audit.Options, iopt machine.IntraOptions) RunKey {
	h := sha256.New()
	enc := canonEncoder{h: h}
	enc.value("cfg", reflect.ValueOf(cfg))
	encodeWorkload(enc, wl)
	enc.int64("scheme", int64(k))
	enc.int64("records", records)
	enc.int64("seed", seed)
	if topt.Enabled() {
		enc.value("telemetry", reflect.ValueOf(topt))
	}
	if aopt.Enabled() {
		enc.value("audit", reflect.ValueOf(aopt))
	}
	if iopt.Enabled() {
		enc.value("intra", reflect.ValueOf(iopt))
	}
	var key RunKey
	h.Sum(key[:0])
	return key
}

// encodeWorkload hashes the workload like enc.value("workload", ...) would,
// except that the mechanistic sub-params (Serve, FS) join the stream only
// when enabled. A disabled sub-struct hashes as nothing at all, so every
// statistical preset keeps the exact key it had before the mechanistic
// family existed — the memo, the result store and the golden fixtures all
// survive the field additions — while any enabled mechanistic knob still
// changes the key. Future optional sub-generators get the same treatment by
// satisfying the optional interface below.
func encodeWorkload(enc canonEncoder, wl workload.Params) {
	enc.bytes([]byte("workload"))
	v := reflect.ValueOf(wl)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" {
			continue // unexported: not part of the run identity
		}
		if opt, ok := v.Field(i).Interface().(interface{ Enabled() bool }); ok && !opt.Enabled() {
			continue // disabled optional generator: hashes as absent
		}
		enc.value(f.Name, v.Field(i))
	}
}

// canonNaNBits is the single quiet-NaN pattern every NaN encoding hashes
// as.
const canonNaNBits = 0x7ff8000000000000

// canonFloatBits maps semantically equal float encodings to one bit
// pattern: -0.0 hashes as +0.0 (they compare equal and no simulation can
// tell them apart) and every NaN payload collapses to canonNaNBits. Hashing
// raw Float64bits split the key space on these encodings — harmless while
// the memo died with the process, but a cache-splitter (and a
// golden-fixture landmine) once keys persist in the result store.
func canonFloatBits(f float64) uint64 {
	switch {
	case f == 0: // true for both +0.0 and -0.0
		return 0
	case f != f: // true for every NaN payload
		return canonNaNBits
	}
	return math.Float64bits(f)
}

// canonEncoder writes a canonical, self-delimiting byte stream into a hash.
// Every value is prefixed with its label so that field reordering or renaming
// also changes the key.
type canonEncoder struct {
	h hash.Hash
}

func (e canonEncoder) bytes(b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	e.h.Write(n[:])
	e.h.Write(b)
}

func (e canonEncoder) int64(label string, v int64) {
	e.bytes([]byte(label))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	e.h.Write(b[:])
}

func (e canonEncoder) value(label string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		e.bytes([]byte(label))
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported: not part of the run identity
			}
			e.value(t.Field(i).Name, v.Field(i))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.int64(label, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.int64(label, int64(v.Uint()))
	case reflect.Float32, reflect.Float64:
		e.int64(label, int64(canonFloatBits(v.Float())))
	case reflect.Bool:
		b := int64(0)
		if v.Bool() {
			b = 1
		}
		e.int64(label, b)
	case reflect.String:
		e.bytes([]byte(label))
		e.bytes([]byte(v.String()))
	case reflect.Slice, reflect.Array:
		e.bytes([]byte(label))
		e.int64("len", int64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			e.value("elem", v.Index(i))
		}
	default:
		// Maps, pointers, channels, funcs and interfaces have no canonical
		// encoding; a config or workload field of such a kind must extend
		// this encoder before it can join the run identity.
		panic(fmt.Sprintf("harness: run key cannot encode %s field %q", v.Kind(), label))
	}
}
