package harness

import (
	"fmt"
	"strings"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
	"pipm/internal/workload"
)

// The experiments below go beyond the paper's printed figures and cover the
// claims its text makes without a figure: §4.5's scalability argument
// (majority voting keeps suppressing harmful migrations as hosts grow) and
// §5.1.4's threshold robustness ("similar performance with thresholds
// ranging from 4 to 16").

// Scalability sweeps the host count and reports PIPM's speedup over Native
// plus OS-skew's, on each workload. Cores per host and the shared heap stay
// fixed, so adding hosts adds both compute demand and sharing pressure.
func (s *Suite) Scalability(hostCounts []int) (Table, error) {
	if len(hostCounts) == 0 {
		hostCounts = []int{2, 4, 8}
	}
	hostCfg := func(hosts int) config.Config {
		cfg := s.opt.Cfg
		cfg.Hosts = hosts
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, hosts := range hostCounts {
			reqs = append(reqs,
				s.req(hostCfg(hosts), wl, migration.Native),
				s.req(hostCfg(hosts), wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Scalability (§4.5): PIPM speedup over Native vs host count",
		MeanLabel: "mean",
	}
	for _, h := range hostCounts {
		t.Cols = append(t.Cols, fmt.Sprintf("%dhosts", h))
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, len(hostCounts))
		for i, hosts := range hostCounts {
			nat, err := s.get(hostCfg(hosts), wl, migration.Native)
			if err != nil {
				return Table{}, err
			}
			res, err := s.get(hostCfg(hosts), wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Adaptivity runs phase-rotating variants of the workloads: halfway
// through the trace each host's partition affinity shifts to the next host, so
// yesterday's perfect placement is today's remote data. PIPM's vote plus
// revocation tracks the shift; HW-static's fixed mapping cannot — the
// dynamic-remapping argument of §3.3 made quantitative. The rotated Params
// differ from the catalog entry only in RotateEvery, which the run key
// captures, so these runs never alias the fixed-affinity sweep.
func (s *Suite) Adaptivity() (Table, error) {
	rotated := func(wl workload.Params) workload.Params {
		rot := wl
		rot.RotateEvery = s.opt.RecordsPerCore / 2 // two phases per run
		return rot
	}
	schemes := []migration.Kind{migration.HWStatic, migration.PIPM}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		rot := rotated(wl)
		reqs = append(reqs, s.req(s.opt.Cfg, rot, migration.Native))
		for _, k := range schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, rot, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Adaptivity: speedup over Native with rotating partition affinity",
		MeanLabel: "mean",
		Cols:      []string{"hw-static", "pipm"},
	}
	for _, wl := range s.opt.Workloads {
		rot := rotated(wl)
		nat, err := s.get(s.opt.Cfg, rot, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, 2)
		for i, k := range schemes {
			res, err := s.get(s.opt.Cfg, rot, k)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// ---------------------------------------------------------- cluster scale --

// ClusterScaleHosts is the default host sweep of the cluster-scale
// experiment: the paper's 4-host configuration plus the 16/64/256 points
// that exercise, in turn, the sharded directory, the widest exact sharer
// bitmask, and the summary sharer representation.
func ClusterScaleHosts() []int { return []int{4, 16, 64, 256} }

// clusterScaleSchemes is the presentation order of the cluster-scale
// comparison: the Native denominator, PIPM, the static-placement bound it
// must track, and one side-effect-blind kernel policy whose ordering below
// PIPM must survive every cluster size.
var clusterScaleSchemes = []migration.Kind{
	migration.Native, migration.PIPM, migration.HWStatic, migration.Nomad,
}

// ScaleForHosts derives the cluster-size variant of a base configuration.
// The 4-host base is returned untouched apart from the host count, so the
// small point of the sweep shares the quick sweep's exact machine shape; at
// 16 hosts and beyond the device directory grows power-of-two slices toward
// min(hosts, 64) so per-slice occupancy — and the slice mutex pressure an
// intra-run parallel engine sees — stays flat as the cluster grows.
func ScaleForHosts(cfg config.Config, hosts int) config.Config {
	cfg.Hosts = hosts
	if hosts >= 16 {
		for cfg.CXL.DirSlices < hosts && cfg.CXL.DirSlices < 64 {
			cfg.CXL.DirSlices *= 2
		}
	}
	return cfg
}

// ClusterScaleRecords scales the per-core record budget inversely with the
// host count so the sweep's total trace volume — and its wall-clock cost —
// stays near the base configuration's as hosts grow, floored so the largest
// cluster still runs long enough to reach steady placement.
func ClusterScaleRecords(recordsPerCore int64, baseHosts, hosts int) int64 {
	r := recordsPerCore * int64(baseHosts) / int64(hosts)
	if r < 512 {
		r = 512
	}
	return r
}

// clusterScaleReq names one cluster-scale run: the scaled configuration and
// record budget, with a time-series enabled so link occupancy is observable.
// Telemetry joins the run identity, so these runs never alias the quick
// sweep's — the 4-host golden digests are computed from telemetry-free runs.
func (s *Suite) clusterScaleReq(wl workload.Params, hosts int, k migration.Kind) RunRequest {
	r := s.req(ScaleForHosts(s.opt.Cfg, hosts), wl, k)
	r.Records = ClusterScaleRecords(s.opt.RecordsPerCore, s.opt.Cfg.Hosts, hosts)
	r.Telemetry = telemetry.Options{SampleInterval: 200 * sim.Microsecond}
	return r
}

// telemetryOf returns the collected telemetry of one completed request, nil
// if the key was never scheduled on this suite's engine.
func (s *Suite) telemetryOf(req RunRequest) *telemetry.Output {
	s.eng.mu.Lock()
	ent, ok := s.eng.runs[req.Key()]
	s.eng.mu.Unlock()
	if !ok {
		return nil
	}
	<-ent.done
	return ent.telem
}

// linkOccupancy derives the mean per-direction CXL link utilisation of a run
// from its closing telemetry snapshot: every host's up- and down-pipe busy
// time (cumulative gauges, so the last sample is the whole run) over the
// aggregate link-time 2·hosts·makespan.
func linkOccupancy(out *telemetry.Output, hosts int, exec sim.Time) float64 {
	if out == nil || out.Series == nil || len(out.Series.Samples) == 0 || hosts <= 0 || exec <= 0 {
		return 0
	}
	last := out.Series.Samples[len(out.Series.Samples)-1]
	var busy float64
	for i, name := range out.Series.Names {
		if strings.HasSuffix(name, ".link.up.busy_ps") || strings.HasSuffix(name, ".link.down.busy_ps") {
			busy += last.Values[i]
		}
	}
	return busy / (2 * float64(hosts) * float64(exec))
}

// ClusterScale sweeps the cluster size across representation regimes (exact
// sharer bitmask at 4/16/64 hosts, summary sets plus sparse hotness rows at
// 256) and reports two tables: scheme speedup over Native — the paper's
// ordering claim, which must hold at every size — and CXL link occupancy,
// where batched region shootdowns must keep the fabric from saturating as
// sharer populations grow. One workload (pr, the strongest sharing pressure
// in the quick set) keeps the 256-host point affordable.
func (s *Suite) ClusterScale(hostCounts []int) ([]Table, error) {
	if len(hostCounts) == 0 {
		hostCounts = ClusterScaleHosts()
	}
	wl := mustWorkload("pr")
	var reqs []RunRequest
	for _, hosts := range hostCounts {
		for _, k := range clusterScaleSchemes {
			reqs = append(reqs, s.clusterScaleReq(wl, hosts, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}

	speed := Table{
		Title:     "Cluster scale: speedup over Native vs host count (pr)",
		MeanLabel: "mean",
	}
	occ := Table{
		Title: "Cluster scale: CXL link occupancy vs host count (pr)",
		Fmt:   "%.4f",
	}
	for _, hosts := range hostCounts {
		col := fmt.Sprintf("%dhosts", hosts)
		speed.Cols = append(speed.Cols, col)
		occ.Cols = append(occ.Cols, col)
	}
	for _, k := range clusterScaleSchemes {
		var srow, orow []float64
		for _, hosts := range hostCounts {
			req := s.clusterScaleReq(wl, hosts, k)
			res, err := s.eng.get(req)
			if err != nil {
				return nil, err
			}
			if k != migration.Native {
				nat, err := s.eng.get(s.clusterScaleReq(wl, hosts, migration.Native))
				if err != nil {
					return nil, err
				}
				srow = append(srow, Speedup(res, nat))
			}
			orow = append(orow, linkOccupancy(s.telemetryOf(req), hosts, res.ExecTime))
		}
		if k != migration.Native {
			speed.Rows = append(speed.Rows, k.String())
			speed.Cells = append(speed.Cells, srow)
		}
		occ.Rows = append(occ.Rows, k.String())
		occ.Cells = append(occ.Cells, orow)
	}
	return []Table{speed, occ}, nil
}

// ThresholdSensitivity sweeps the majority-vote promotion threshold and
// reports PIPM's speedup over Native — the §5.1.4 robustness claim. The
// point matching the base configuration's threshold shares its run with the
// Fig 10–13 sweep through the memo.
func (s *Suite) ThresholdSensitivity(thresholds []int) (Table, error) {
	if len(thresholds) == 0 {
		thresholds = []int{2, 4, 8, 16, 32}
	}
	thCfg := func(th int) config.Config {
		cfg := s.opt.Cfg
		cfg.PIPM.MigrationThreshold = th
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		reqs = append(reqs, s.req(s.opt.Cfg, wl, migration.Native))
		for _, th := range thresholds {
			reqs = append(reqs, s.req(thCfg(th), wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Threshold sensitivity (§5.1.4): PIPM speedup over Native vs vote threshold",
		MeanLabel: "mean",
	}
	for _, th := range thresholds {
		t.Cols = append(t.Cols, fmt.Sprintf("th=%d", th))
	}
	for _, wl := range s.opt.Workloads {
		nat, err := s.get(s.opt.Cfg, wl, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(thresholds))
		for i, th := range thresholds {
			res, err := s.get(thCfg(th), wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}
