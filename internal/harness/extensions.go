package harness

import (
	"fmt"

	"pipm/internal/migration"
)

// The experiments below go beyond the paper's printed figures and cover the
// claims its text makes without a figure: §4.5's scalability argument
// (majority voting keeps suppressing harmful migrations as hosts grow) and
// §5.1.4's threshold robustness ("similar performance with thresholds
// ranging from 4 to 16").

// Scalability sweeps the host count and reports PIPM's speedup over Native
// plus OS-skew's, on each workload. Cores per host and the shared heap stay
// fixed, so adding hosts adds both compute demand and sharing pressure.
func (s *Suite) Scalability(hostCounts []int) (Table, error) {
	if len(hostCounts) == 0 {
		hostCounts = []int{2, 4, 8}
	}
	t := Table{
		Title:     "Scalability (§4.5): PIPM speedup over Native vs host count",
		MeanLabel: "mean",
	}
	for _, h := range hostCounts {
		t.Cols = append(t.Cols, fmt.Sprintf("%dhosts", h))
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, len(hostCounts))
		for i, hosts := range hostCounts {
			cfg := s.opt.Cfg
			cfg.Hosts = hosts
			nat, err := RunOne(cfg, wl, migration.Native, s.opt.RecordsPerCore, s.opt.Seed)
			if err != nil {
				return Table{}, err
			}
			res, err := RunOne(cfg, wl, migration.PIPM, s.opt.RecordsPerCore, s.opt.Seed)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Adaptivity runs phase-rotating variants of the workloads: halfway
// through the trace each host's partition affinity shifts to the next host, so
// yesterday's perfect placement is today's remote data. PIPM's vote plus
// revocation tracks the shift; HW-static's fixed mapping cannot — the
// dynamic-remapping argument of §3.3 made quantitative.
func (s *Suite) Adaptivity() (Table, error) {
	t := Table{
		Title:     "Adaptivity: speedup over Native with rotating partition affinity",
		MeanLabel: "mean",
		Cols:      []string{"hw-static", "pipm"},
	}
	for _, wl := range s.opt.Workloads {
		rot := wl
		rot.RotateEvery = s.opt.RecordsPerCore / 2 // two phases per run
		nat, err := RunOne(s.opt.Cfg, rot, migration.Native, s.opt.RecordsPerCore, s.opt.Seed)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, 2)
		for i, k := range []migration.Kind{migration.HWStatic, migration.PIPM} {
			res, err := RunOne(s.opt.Cfg, rot, k, s.opt.RecordsPerCore, s.opt.Seed)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// ThresholdSensitivity sweeps the majority-vote promotion threshold and
// reports PIPM's speedup over Native — the §5.1.4 robustness claim.
func (s *Suite) ThresholdSensitivity(thresholds []int) (Table, error) {
	if len(thresholds) == 0 {
		thresholds = []int{2, 4, 8, 16, 32}
	}
	t := Table{
		Title:     "Threshold sensitivity (§5.1.4): PIPM speedup over Native vs vote threshold",
		MeanLabel: "mean",
	}
	for _, th := range thresholds {
		t.Cols = append(t.Cols, fmt.Sprintf("th=%d", th))
	}
	for _, wl := range s.opt.Workloads {
		nat, err := s.sw.get(wl, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(thresholds))
		for i, th := range thresholds {
			cfg := s.opt.Cfg
			cfg.PIPM.MigrationThreshold = th
			res, err := RunOne(cfg, wl, migration.PIPM, s.opt.RecordsPerCore, s.opt.Seed)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}
