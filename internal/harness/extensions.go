package harness

import (
	"fmt"

	"pipm/internal/config"
	"pipm/internal/migration"
	"pipm/internal/workload"
)

// The experiments below go beyond the paper's printed figures and cover the
// claims its text makes without a figure: §4.5's scalability argument
// (majority voting keeps suppressing harmful migrations as hosts grow) and
// §5.1.4's threshold robustness ("similar performance with thresholds
// ranging from 4 to 16").

// Scalability sweeps the host count and reports PIPM's speedup over Native
// plus OS-skew's, on each workload. Cores per host and the shared heap stay
// fixed, so adding hosts adds both compute demand and sharing pressure.
func (s *Suite) Scalability(hostCounts []int) (Table, error) {
	if len(hostCounts) == 0 {
		hostCounts = []int{2, 4, 8}
	}
	hostCfg := func(hosts int) config.Config {
		cfg := s.opt.Cfg
		cfg.Hosts = hosts
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		for _, hosts := range hostCounts {
			reqs = append(reqs,
				s.req(hostCfg(hosts), wl, migration.Native),
				s.req(hostCfg(hosts), wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Scalability (§4.5): PIPM speedup over Native vs host count",
		MeanLabel: "mean",
	}
	for _, h := range hostCounts {
		t.Cols = append(t.Cols, fmt.Sprintf("%dhosts", h))
	}
	for _, wl := range s.opt.Workloads {
		row := make([]float64, len(hostCounts))
		for i, hosts := range hostCounts {
			nat, err := s.get(hostCfg(hosts), wl, migration.Native)
			if err != nil {
				return Table{}, err
			}
			res, err := s.get(hostCfg(hosts), wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// Adaptivity runs phase-rotating variants of the workloads: halfway
// through the trace each host's partition affinity shifts to the next host, so
// yesterday's perfect placement is today's remote data. PIPM's vote plus
// revocation tracks the shift; HW-static's fixed mapping cannot — the
// dynamic-remapping argument of §3.3 made quantitative. The rotated Params
// differ from the catalog entry only in RotateEvery, which the run key
// captures, so these runs never alias the fixed-affinity sweep.
func (s *Suite) Adaptivity() (Table, error) {
	rotated := func(wl workload.Params) workload.Params {
		rot := wl
		rot.RotateEvery = s.opt.RecordsPerCore / 2 // two phases per run
		return rot
	}
	schemes := []migration.Kind{migration.HWStatic, migration.PIPM}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		rot := rotated(wl)
		reqs = append(reqs, s.req(s.opt.Cfg, rot, migration.Native))
		for _, k := range schemes {
			reqs = append(reqs, s.req(s.opt.Cfg, rot, k))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Adaptivity: speedup over Native with rotating partition affinity",
		MeanLabel: "mean",
		Cols:      []string{"hw-static", "pipm"},
	}
	for _, wl := range s.opt.Workloads {
		rot := rotated(wl)
		nat, err := s.get(s.opt.Cfg, rot, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, 2)
		for i, k := range schemes {
			res, err := s.get(s.opt.Cfg, rot, k)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}

// ThresholdSensitivity sweeps the majority-vote promotion threshold and
// reports PIPM's speedup over Native — the §5.1.4 robustness claim. The
// point matching the base configuration's threshold shares its run with the
// Fig 10–13 sweep through the memo.
func (s *Suite) ThresholdSensitivity(thresholds []int) (Table, error) {
	if len(thresholds) == 0 {
		thresholds = []int{2, 4, 8, 16, 32}
	}
	thCfg := func(th int) config.Config {
		cfg := s.opt.Cfg
		cfg.PIPM.MigrationThreshold = th
		return cfg
	}
	var reqs []RunRequest
	for _, wl := range s.opt.Workloads {
		reqs = append(reqs, s.req(s.opt.Cfg, wl, migration.Native))
		for _, th := range thresholds {
			reqs = append(reqs, s.req(thCfg(th), wl, migration.PIPM))
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return Table{}, err
	}
	t := Table{
		Title:     "Threshold sensitivity (§5.1.4): PIPM speedup over Native vs vote threshold",
		MeanLabel: "mean",
	}
	for _, th := range thresholds {
		t.Cols = append(t.Cols, fmt.Sprintf("th=%d", th))
	}
	for _, wl := range s.opt.Workloads {
		nat, err := s.get(s.opt.Cfg, wl, migration.Native)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, len(thresholds))
		for i, th := range thresholds {
			res, err := s.get(thCfg(th), wl, migration.PIPM)
			if err != nil {
				return Table{}, err
			}
			row[i] = Speedup(res, nat)
		}
		t.Rows = append(t.Rows, wl.Name)
		t.Cells = append(t.Cells, row)
	}
	return t, nil
}
