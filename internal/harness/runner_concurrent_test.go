package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipm/internal/migration"
	"pipm/internal/store"
)

// TestRunnerConcurrentSweepSharing shares one store-backed Runner between
// many goroutines submitting overlapping sweeps — the experiment service's
// exact usage — and asserts every distinct key simulated exactly once, with
// all overlap answered by the memo. Run under -race in CI.
func TestRunnerConcurrentSweepSharing(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := QuickOptions()
	o.RecordsPerCore = 3_000
	var completions atomic.Int64
	r := NewRunnerOpts(Options{
		Workers:   4,
		Store:     st,
		OnRunDone: func(RunStats) { completions.Add(1) },
	})

	// Each client sweeps a shifted window of the (workload × scheme) grid,
	// so neighbours overlap but no two clients run an identical set.
	schemes := []migration.Kind{migration.Native, migration.PIPM, migration.Nomad, migration.Memtis}
	reqAt := func(i int) RunRequest {
		return RunRequest{
			Cfg: o.Cfg, WL: o.Workloads[i%len(o.Workloads)],
			Scheme: schemes[i%len(schemes)], Records: o.RecordsPerCore, Seed: o.Seed,
		}
	}
	const clients = 8
	uniq := map[string]bool{}
	total := 0
	for c := 0; c < clients; c++ {
		for i := c; i < c+5; i++ {
			uniq[reqAt(i).Key().String()] = true
			total++
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < c+5; i++ { // 5-wide window starting at the client index
				if _, err := r.GetCtx(context.Background(), reqAt(i)); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	stats := r.RunStats()
	if len(stats) != len(uniq) {
		t.Fatalf("executed %d distinct runs, want %d", len(stats), len(uniq))
	}
	if got := completions.Load(); got != int64(len(uniq)) {
		t.Fatalf("OnRunDone fired %d times, want %d (once per distinct key)", got, len(uniq))
	}
	memoHits := 0
	for _, s := range stats {
		if s.StoreHit {
			t.Fatalf("run %s claims a store hit on a cold store", s.Key[:12])
		}
		memoHits += s.MemoHits
	}
	// Every request beyond the first of its key is a memo hit.
	if want := total - len(uniq); memoHits != want {
		t.Fatalf("memo hits = %d, want %d", memoHits, want)
	}
	if ss, ok := r.StoreStats(); !ok || ss.Saves != uint64(len(uniq)) {
		t.Fatalf("store saves = %+v, want %d", ss, len(uniq))
	}

	// A second runner on the same store answers everything from disk.
	var warm atomic.Int64
	r2 := NewRunnerOpts(Options{Workers: 4, Store: st,
		OnRunDone: func(s RunStats) {
			if s.StoreHit {
				warm.Add(1)
			}
		}})
	for i := 0; i < clients+4; i++ {
		if _, err := r2.Get(reqAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := warm.Load(); got != int64(len(uniq)) {
		t.Fatalf("warm runner loaded %d from store, want all %d", got, len(uniq))
	}
}

// TestRunnerGetCtxCancellation pins the engine's cancellation contract on a
// single-worker runner: a queued request cancels promptly, the key stays
// claimable afterwards, and in-flight work is unaffected.
func TestRunnerGetCtxCancellation(t *testing.T) {
	o := QuickOptions()
	r := NewRunnerOpts(Options{Workers: 1})

	slow := RunRequest{Cfg: o.Cfg, WL: o.Workloads[0], Scheme: migration.PIPM,
		Records: 400_000, Seed: o.Seed}
	fast := RunRequest{Cfg: o.Cfg, WL: o.Workloads[1], Scheme: migration.Native,
		Records: 2_000, Seed: o.Seed}

	// Occupy the only worker slot.
	slowDone := make(chan error, 1)
	go func() {
		_, err := r.GetCtx(context.Background(), slow)
		slowDone <- err
	}()
	// Wait until the slow run owns its entry AND holds the single worker
	// slot, so fast deterministically queues behind it on the semaphore.
	for {
		r.eng.mu.Lock()
		_, claimed := r.eng.runs[slow.Key()]
		r.eng.mu.Unlock()
		if claimed && len(r.eng.sem) == cap(r.eng.sem) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := r.GetCtx(ctx, fast)
		queuedErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it block on the worker semaphore
	cancel()
	select {
	case err := <-queuedErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued GetCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued request did not return promptly")
	}

	// A second waiter on the SAME aborted key with a live context must
	// re-claim it and succeed (after the slow run frees the worker).
	if _, err := r.GetCtx(context.Background(), fast); err != nil {
		t.Fatalf("re-claiming an aborted key failed: %v", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight run was disturbed by cancellation: %v", err)
	}
	// Exactly the two real executions ran; no ghost entry for the abort.
	if stats := r.RunStats(); len(stats) != 2 {
		t.Fatalf("engine recorded %d runs, want 2", len(stats))
	}
}

// TestRunnerGetCtxWaiterCancellation: a waiter piggybacking on another
// caller's in-flight execution can abandon the wait without affecting the
// owner or the result.
func TestRunnerGetCtxWaiterCancellation(t *testing.T) {
	o := QuickOptions()
	r := NewRunnerOpts(Options{Workers: 1})
	req := RunRequest{Cfg: o.Cfg, WL: o.Workloads[0], Scheme: migration.PIPM,
		Records: 400_000, Seed: o.Seed}

	ownerDone := make(chan error, 1)
	go func() {
		_, err := r.Get(req)
		ownerDone <- err
	}()
	// Wait until the owner has claimed the entry, so the cancelled caller
	// below is a waiter on that entry, never a competing owner.
	for {
		r.eng.mu.Lock()
		_, claimed := r.eng.runs[req.Key()]
		r.eng.mu.Unlock()
		if claimed {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.GetCtx(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner failed after waiter cancelled: %v", err)
	}
	if _, err := r.Get(req); err != nil {
		t.Fatalf("memo lookup after waiter cancellation failed: %v", err)
	}
	if stats := r.RunStats(); len(stats) != 1 {
		t.Fatalf("engine recorded %d runs, want 1", len(stats))
	}
}
