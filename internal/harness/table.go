package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artefact: named rows (workloads) × named
// columns (schemes or sweep points), plus a geometric-mean/average row.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  []string
	Cells [][]float64 // [row][col]
	// Fmt formats one cell (defaults to "%.2f").
	Fmt string
	// MeanLabel, when set, appends a column-mean row with this label.
	MeanLabel string
}

// Means returns the arithmetic column means.
func (t *Table) Means() []float64 {
	means := make([]float64, len(t.Cols))
	if len(t.Rows) == 0 {
		return means
	}
	for c := range t.Cols {
		var sum float64
		for r := range t.Rows {
			sum += t.Cells[r][c]
		}
		means[c] = sum / float64(len(t.Rows))
	}
	return means
}

// Cell returns the value at (rowName, colName).
func (t *Table) Cell(row, col string) (float64, bool) {
	ri, ci := -1, -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
		}
	}
	for i, c := range t.Cols {
		if c == col {
			ci = i
		}
	}
	if ri < 0 || ci < 0 {
		return 0, false
	}
	return t.Cells[ri][ci], true
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	cellFmt := t.Fmt
	if cellFmt == "" {
		cellFmt = "%.2f"
	}
	header := append([]string{"workload"}, t.Cols...)
	rows := [][]string{header}
	for r, name := range t.Rows {
		row := []string{name}
		for c := range t.Cols {
			row = append(row, fmt.Sprintf(cellFmt, t.Cells[r][c]))
		}
		rows = append(rows, row)
	}
	if t.MeanLabel != "" {
		row := []string{t.MeanLabel}
		for _, mu := range t.Means() {
			row = append(row, fmt.Sprintf(cellFmt, mu))
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
