// Package tlb models the management costs of kernel-based page migration:
// page-table updates and TLB shootdowns. In a multi-host CXL-DSM these are
// what §3.1 calls out as the scalability problem — every host must update
// the page tables that map the moving page (via CXL RPCs) and invalidate
// stale TLB entries on every core. The model follows the paper's evaluation
// constants (§5.1.4): 20 µs per 4 KB on the initiating core, 5 µs on every
// other core, with batched shootdowns so a batch of pages pays the remote
// cost once.
package tlb

import (
	"pipm/internal/config"
	"pipm/internal/sim"
)

// Model prices migration-management work.
type Model struct {
	initiator sim.Time
	remote    sim.Time
	batch     int
}

// NewModel builds the cost model from kernel-migration configuration.
func NewModel(cfg config.KernelMigrationConfig) *Model {
	if cfg.BatchPages < 1 {
		panic("tlb: BatchPages must be ≥ 1")
	}
	return &Model{initiator: cfg.InitiatorCost, remote: cfg.RemoteCost, batch: cfg.BatchPages}
}

// Costs describes the management stalls for migrating a set of pages in one
// policy epoch.
type Costs struct {
	// Initiator is the total stall on the core driving the migration:
	// per-page unmap/copy-manage/remap work.
	Initiator sim.Time
	// Remote is the total stall on EVERY other core in the system: one
	// batched TLB-shootdown IPI per batch.
	Remote sim.Time
	// Batches is the number of shootdown rounds issued.
	Batches int
}

// ForPages returns the management costs of migrating n pages.
func (m *Model) ForPages(n int) Costs {
	if n <= 0 {
		return Costs{}
	}
	batches := (n + m.batch - 1) / m.batch
	return Costs{
		Initiator: sim.Time(n) * m.initiator,
		Remote:    sim.Time(batches) * m.remote,
		Batches:   batches,
	}
}

// InitiatorPerPage returns the per-page initiator cost (used by schemes that
// spread work across an epoch).
func (m *Model) InitiatorPerPage() sim.Time { return m.initiator }

// RemotePerBatch returns the per-batch remote shootdown cost.
func (m *Model) RemotePerBatch() sim.Time { return m.remote }

// BatchPages returns the shootdown batch size.
func (m *Model) BatchPages() int { return m.batch }
