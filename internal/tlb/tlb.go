package tlb

import "pipm/internal/config"

// TLB is a per-core set-associative translation cache over 4 KB pages.
// The simulator's traces carry physical addresses, so the TLB's role is
// timing fidelity: misses add page-walk latency, and kernel page migration
// invalidates entries (the shootdowns the Model prices). Disabled by
// default in the scaled configuration; see config.Config.TLBEntries.
type TLB struct {
	ways int
	sets int
	tags []int64 // sets*ways; -1 empty
	lru  []uint64
	tick uint64

	hits, misses uint64
}

// NewTLB builds a TLB with the given capacity in entries and associativity.
// Zero or negative entries return nil (disabled); callers must nil-check.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 {
		return nil
	}
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		ways = entries
	}
	sets := entries / ways
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	if sets < 1 {
		sets = 1
	}
	t := &TLB{
		ways: ways,
		sets: sets,
		tags: make([]int64, sets*ways),
		lru:  make([]uint64, sets*ways),
	}
	for i := range t.tags {
		t.tags[i] = -1
	}
	return t
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Lookup translates the page containing addr, filling on a miss, and
// reports whether the translation hit.
func (t *TLB) Lookup(addr config.Addr) bool {
	page := int64(addr.Page())
	set := int(page) & (t.sets - 1)
	base := set * t.ways
	t.tick++
	for i := 0; i < t.ways; i++ {
		if t.tags[base+i] == page {
			t.lru[base+i] = t.tick
			t.hits++
			return true
		}
	}
	t.misses++
	victim := base
	for i := 0; i < t.ways; i++ {
		if t.tags[base+i] == -1 {
			victim = base + i
			break
		}
		if t.lru[base+i] < t.lru[victim] {
			victim = base + i
		}
	}
	t.tags[victim] = page
	t.lru[victim] = t.tick
	return false
}

// Invalidate drops the translation for page (a shootdown).
func (t *TLB) Invalidate(page config.Addr) {
	set := int(page) & (t.sets - 1)
	base := set * t.ways
	for i := 0; i < t.ways; i++ {
		if t.tags[base+i] == int64(page) {
			t.tags[base+i] = -1
			t.lru[base+i] = 0
			return
		}
	}
}

// Hits and Misses return raw counters.
func (t *TLB) Hits() uint64   { return t.hits }
func (t *TLB) Misses() uint64 { return t.misses }

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (t *TLB) HitRate() float64 {
	n := t.hits + t.misses
	if n == 0 {
		return 0
	}
	return float64(t.hits) / float64(n)
}
