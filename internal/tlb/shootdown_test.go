package tlb

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/sim"
)

func model() *Model {
	c := config.Default()
	return NewModel(c.Kernel)
}

func TestZeroPagesFree(t *testing.T) {
	if got := model().ForPages(0); got != (Costs{}) {
		t.Fatalf("ForPages(0) = %+v", got)
	}
	if got := model().ForPages(-3); got != (Costs{}) {
		t.Fatalf("ForPages(-3) = %+v", got)
	}
}

func TestSinglePageCosts(t *testing.T) {
	got := model().ForPages(1)
	if got.Initiator != 20*sim.Microsecond {
		t.Errorf("Initiator = %v, want 20µs", got.Initiator)
	}
	if got.Remote != 5*sim.Microsecond || got.Batches != 1 {
		t.Errorf("Remote = %v, Batches = %d, want 5µs in 1 batch", got.Remote, got.Batches)
	}
}

func TestBatchingAmortizesRemoteCost(t *testing.T) {
	m := model() // batch = 32
	got := m.ForPages(64)
	if got.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", got.Batches)
	}
	if got.Remote != 10*sim.Microsecond {
		t.Fatalf("Remote = %v, want 10µs (2 batches)", got.Remote)
	}
	if got.Initiator != 64*20*sim.Microsecond {
		t.Fatalf("Initiator = %v, want 1.28ms", got.Initiator)
	}
	// 33 pages → 2 batches (ceiling).
	if m.ForPages(33).Batches != 2 {
		t.Fatal("ceiling division wrong")
	}
	if m.ForPages(32).Batches != 1 {
		t.Fatal("exact batch should be 1 round")
	}
}

func TestAccessors(t *testing.T) {
	m := model()
	if m.InitiatorPerPage() != 20*sim.Microsecond || m.RemotePerBatch() != 5*sim.Microsecond || m.BatchPages() != 32 {
		t.Fatal("accessors disagree with config")
	}
}

func TestNewModelRejectsZeroBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero batch")
		}
	}()
	NewModel(config.KernelMigrationConfig{BatchPages: 0})
}
