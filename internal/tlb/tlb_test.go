package tlb

import (
	"testing"

	"pipm/internal/config"
)

func TestNewTLBDisabled(t *testing.T) {
	if NewTLB(0, 4) != nil || NewTLB(-1, 4) != nil {
		t.Fatal("zero/negative entries should return nil")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tl := NewTLB(16, 4)
	if tl.Entries() != 16 {
		t.Fatalf("Entries = %d", tl.Entries())
	}
	a := config.Addr(5 * config.PageBytes)
	if tl.Lookup(a) {
		t.Fatal("hit in empty TLB")
	}
	if !tl.Lookup(a) {
		t.Fatal("miss after fill")
	}
	// Same page, different offset: still a hit.
	if !tl.Lookup(a + 100) {
		t.Fatal("same-page offset missed")
	}
	if tl.Hits() != 2 || tl.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", tl.Hits(), tl.Misses())
	}
	if tl.HitRate() < 0.6 || tl.HitRate() > 0.7 {
		t.Fatalf("HitRate = %v", tl.HitRate())
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tl := NewTLB(4, 2) // 2 sets × 2 ways
	// Pages 0,2,4 map to set 0; third fill evicts LRU (0).
	tl.Lookup(0)
	tl.Lookup(2 * config.PageBytes)
	tl.Lookup(2 * config.PageBytes) // 2 MRU
	tl.Lookup(4 * config.PageBytes) // evicts 0
	if !tl.Lookup(2 * config.PageBytes) {
		t.Fatal("MRU page evicted")
	}
	if tl.Lookup(0) {
		t.Fatal("LRU page survived capacity pressure")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tl := NewTLB(16, 4)
	a := config.Addr(7 * config.PageBytes)
	tl.Lookup(a)
	tl.Invalidate(a.Page())
	if tl.Lookup(a) {
		t.Fatal("hit after shootdown")
	}
	tl.Invalidate(config.Addr(999)) // absent page: no-op, no panic
}

func TestTLBEmptyHitRate(t *testing.T) {
	if NewTLB(8, 2).HitRate() != 0 {
		t.Fatal("empty TLB hit rate should be 0")
	}
}
