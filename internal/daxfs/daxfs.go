// Package daxfs is a mechanistic shared-filesystem workload in the spirit of
// DAXFS (PAPERS.md): a lock-free metadata index whose hot allocator and
// journal lines every host read-modify-writes CAS-style, laid over cold data
// extents accessed in sequential scan and append phases. Like internal/silo,
// the generator *executes* filesystem operations — lookups, extent scans,
// appends — and emits every memory access they make, driven by the
// deterministic per-core RNG seam.
//
// Shared-heap layout (carved with config.AddressMap.SplitSharedPages):
//
//	metadata [M pages]  page 0 holds the HotLines allocator/journal lines
//	                    every append CASes (genuine all-host contention);
//	                    the remaining lines hold per-file inodes
//	data     [D pages]  ExtentPages-page extents, one per file; file f is
//	                    home to host f mod hosts and an OwnFrac share of
//	                    operations stay on the host's own subtree
//
// With LookupFrac+ScanFrac = 1 no append ever runs and the trace degenerates
// to pure reads — the read-only limit the validation harness compares
// local-only against PIPM on.
package daxfs

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/trace"
)

// Params are the filesystem-model knobs. The zero value means "disabled" to
// the workload registry (workload.Params.FS). All fields are plain numbers
// so the canonical run-key encoder can walk them reflectively.
type Params struct {
	// MetaFrac is the fraction of the shared heap holding the metadata
	// index; the rest is data extents.
	MetaFrac float64
	// HotLines is the number of super-hot allocator/journal lines (all in
	// metadata page 0) that appends CAS and lookups consult.
	HotLines int
	// FileZipfS is the popularity skew of file selection (0 = uniform).
	FileZipfS float64
	// OwnFrac is the fraction of operations against files in the host's
	// own subtree (file home = file mod hosts); the rest pick globally.
	OwnFrac float64
	// ExtentPages is the data-extent size per file, in pages.
	ExtentPages int
	// LookupFrac and ScanFrac give the operation mix; the remainder
	// (1 - LookupFrac - ScanFrac) is appends.
	LookupFrac float64
	ScanFrac   float64
	// ScanLines is the mean number of sequential extent lines per scan
	// (geometric, ≥ 1).
	ScanLines int
	// AppendLines is the number of sequential extent lines each append
	// writes after winning its CASes.
	AppendLines int
	// CASFanout is the number of hot metadata lines each append
	// read-modify-writes (allocator head, journal tail, ...).
	CASFanout int
	// GapMean is the mean number of non-memory instructions between
	// memory references.
	GapMean int
}

// Default returns the calibrated mix behind the "daxfs" catalog preset:
// lookup-dominated metadata traffic with a fifth of operations appending
// through the contended allocator lines.
func Default() Params {
	return Params{
		MetaFrac:    0.125,
		HotLines:    8,
		FileZipfS:   1.15,
		OwnFrac:     0.90,
		ExtentPages: 4,
		LookupFrac:  0.55,
		ScanFrac:    0.25,
		ScanLines:   96,
		AppendLines: 8,
		CASFanout:   2,
		GapMean:     20,
	}
}

// Enabled reports whether the params select the mechanistic generator.
func (p Params) Enabled() bool { return p != Params{} }

// Validate rejects parameter sets the generator cannot execute.
func (p Params) Validate() error {
	switch {
	case p.MetaFrac <= 0 || p.MetaFrac >= 1:
		return fmt.Errorf("daxfs: MetaFrac = %g, want (0, 1)", p.MetaFrac)
	case p.HotLines < 1 || p.HotLines > config.LinesPerPage:
		return fmt.Errorf("daxfs: HotLines = %d, want 1..%d", p.HotLines, config.LinesPerPage)
	case p.FileZipfS < 0:
		return fmt.Errorf("daxfs: FileZipfS = %g, want ≥ 0", p.FileZipfS)
	case p.OwnFrac < 0 || p.OwnFrac > 1:
		return fmt.Errorf("daxfs: OwnFrac = %g, want [0, 1]", p.OwnFrac)
	case p.ExtentPages < 1:
		return fmt.Errorf("daxfs: ExtentPages = %d, want ≥ 1", p.ExtentPages)
	case p.LookupFrac < 0 || p.ScanFrac < 0 || p.LookupFrac+p.ScanFrac > 1:
		return fmt.Errorf("daxfs: op mix lookup=%g scan=%g, want non-negative with sum ≤ 1",
			p.LookupFrac, p.ScanFrac)
	case p.ScanLines < 1:
		return fmt.Errorf("daxfs: ScanLines = %d, want ≥ 1", p.ScanLines)
	case p.LookupFrac+p.ScanFrac < 1 && p.AppendLines < 1:
		return fmt.Errorf("daxfs: AppendLines = %d, want ≥ 1 when appends are in the mix", p.AppendLines)
	case p.LookupFrac+p.ScanFrac < 1 && p.CASFanout < 1:
		return fmt.Errorf("daxfs: CASFanout = %d, want ≥ 1 when appends are in the mix", p.CASFanout)
	case p.GapMean < 0:
		return fmt.Errorf("daxfs: GapMean = %d, want ≥ 0", p.GapMean)
	}
	return nil
}

// minZipfS is the smallest usable skew for math/rand's Zipf (requires > 1).
const minZipfS = 1.05

// layout is the shared-heap carve: identical on every host and core.
type layout struct {
	am          config.AddressMap
	hosts       int
	metaPages   int64
	dataPages   int64
	extentPages int64 // ExtentPages clamped to the data region
	files       int64
	hotLines    int
}

func newLayout(p Params, am config.AddressMap, hosts int) layout {
	parts := am.SplitSharedPages(p.MetaFrac, 1-p.MetaFrac)
	l := layout{am: am, hosts: hosts, metaPages: parts[0], dataPages: parts[1], hotLines: p.HotLines}
	if l.metaPages < 1 {
		l.metaPages, l.dataPages = 1, l.dataPages-1
	}
	if l.dataPages < 1 {
		// A one-page heap: metadata and the single extent share the page's
		// line space; every address stays in range because extent lines wrap.
		l.metaPages, l.dataPages = am.SharedPages(), 0
	}
	l.extentPages = int64(p.ExtentPages)
	if l.dataPages > 0 && l.extentPages > l.dataPages {
		l.extentPages = l.dataPages
	}
	if l.dataPages > 0 {
		l.files = l.dataPages / l.extentPages
	}
	if l.files < 1 {
		l.files = 1
	}
	return l
}

// hotAddr returns the h-th super-hot metadata line (metadata page 0).
func (l layout) hotAddr(h int) config.Addr {
	return l.am.SharedAddr(config.Addr(h%l.hotLines) * config.LineBytes)
}

// inodeAddr returns file f's inode line, hashed across the metadata lines
// past the hot set (collisions are ordinary hash-directory collisions).
func (l layout) inodeAddr(f int64) config.Addr {
	inodeLines := l.metaPages*config.LinesPerPage - int64(l.hotLines)
	if inodeLines < 1 {
		inodeLines = 1
	}
	line := int64(l.hotLines) + (f*2654435761)%inodeLines
	return l.am.SharedAddr(config.Addr(line) * config.LineBytes)
}

// extentAddr returns the address of line within file f's extent (lines wrap
// within the extent). On a heap too small for a data region, extents alias
// the metadata pages — addresses always stay in range.
func (l layout) extentAddr(f, line int64) config.Addr {
	if l.dataPages == 0 {
		total := l.metaPages * config.LinesPerPage
		return l.am.SharedAddr(config.Addr((f+line)%total) * config.LineBytes)
	}
	extentLines := l.extentPages * config.LinesPerPage
	base := (l.metaPages + (f%l.files)*l.extentPages) * config.PageBytes
	return l.am.SharedAddr(config.Addr(base) +
		config.Addr(line%extentLines)*config.LineBytes)
}

// MetaBoundary returns the first address past the metadata region.
func MetaBoundary(p Params, am config.AddressMap, hosts int) config.Addr {
	l := newLayout(p, am, hosts)
	return am.SharedAddr(0) + config.Addr(l.metaPages)*config.PageBytes
}

// New returns the deterministic record stream of host h / core c, derived
// from (seed, host, core) exactly as Profile reconstructs it.
func New(p Params, am config.AddressMap, hosts, host, core int, records, seed int64) trace.Reader {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if host < 0 || host >= hosts {
		panic(fmt.Sprintf("daxfs: host %d out of range", host))
	}
	r := &reader{
		p:       p,
		l:       newLayout(p, am, hosts),
		host:    host,
		rng:     rand.New(rand.NewSource(mix(seed, host, core))),
		remain:  records,
		cursors: map[int64]int64{},
	}
	ownFiles := (r.l.files - int64(host) + int64(hosts) - 1) / int64(hosts)
	if r.l.files < int64(hosts) {
		ownFiles = r.l.files
	}
	r.ownFiles = ownFiles
	if s := p.FileZipfS; s > 0 {
		if s < minZipfS {
			s = minZipfS
		}
		if r.l.files > 1 {
			r.zipfAll = rand.NewZipf(r.rng, s, 1, uint64(r.l.files-1))
		}
		if ownFiles > 1 {
			r.zipfOwn = rand.NewZipf(r.rng, s, 1, uint64(ownFiles-1))
		}
	}
	return r
}

// mix folds (seed, host, core) into one RNG seed — the same per-core seam
// shape the statistical generators use.
func mix(seed int64, host, core int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(int64(host)*1_000_003+int64(core)*7919+0x5851F42D)*0xC2B2AE3D27D4EB4F
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int64(x & (1<<62 - 1))
}

type reader struct {
	p    Params
	l    layout
	host int

	rng      *rand.Rand
	zipfAll  *rand.Zipf
	zipfOwn  *rand.Zipf
	ownFiles int64
	remain   int64

	buf []trace.Record
	pos int

	cursors map[int64]int64 // per-file append cursor (extent lines)
}

// Next implements trace.Reader.
func (r *reader) Next() (trace.Record, bool) {
	if r.remain <= 0 {
		return trace.Record{}, false
	}
	for r.pos >= len(r.buf) {
		r.buf = r.buf[:0]
		r.pos = 0
		r.op()
	}
	rec := r.buf[r.pos]
	r.pos++
	r.remain--
	return rec, true
}

// op executes one filesystem operation against a zipf-picked file.
func (r *reader) op() {
	f := r.pickFile()
	switch x := r.rng.Float64(); {
	case x < r.p.LookupFrac:
		r.lookup(f)
	case x < r.p.LookupFrac+r.p.ScanFrac:
		r.scan(f)
	default:
		r.append(f)
	}
}

// pickFile chooses the operation's file: OwnFrac of picks stay on the host's
// own subtree (file home = file mod hosts), the rest go global with the same
// hot-file-is-hot-for-everyone scramble the statistical generators use.
func (r *reader) pickFile() int64 {
	if r.l.files >= int64(r.l.hosts) && r.rng.Float64() < r.p.OwnFrac {
		rank := r.pick(r.zipfOwn, r.ownFiles)
		return int64(r.host) + scramble(rank, r.ownFiles)*int64(r.l.hosts)
	}
	return scramble(r.pick(r.zipfAll, r.l.files), r.l.files)
}

// lookup resolves a path: a hot directory line, then the dependent inode,
// then the extent head.
func (r *reader) lookup(f int64) {
	r.emit(r.l.hotAddr(int(f)), false, false)
	r.emit(r.l.inodeAddr(f), false, true)
	r.emit(r.l.extentAddr(f, 0), false, true)
}

// scan reads the inode then streams sequential extent lines.
func (r *reader) scan(f int64) {
	r.emit(r.l.inodeAddr(f), false, false)
	n := 1 + r.geometric(float64(r.p.ScanLines-1))
	start := r.rng.Int63n(r.l.extentPages * config.LinesPerPage)
	for i := int64(0); i < int64(n); i++ {
		r.emit(r.l.extentAddr(f, start+i), false, false)
	}
}

// append wins CASFanout lock-free CASes on the hot allocator/journal lines
// (read then dependent write of the same line — the contended RMW every host
// fights over), updates the inode the same way, then streams the payload
// into the extent at the file's append cursor.
func (r *reader) append(f int64) {
	for i := 0; i < r.p.CASFanout; i++ {
		h := int(f) + i
		r.emit(r.l.hotAddr(h), false, false)
		r.emit(r.l.hotAddr(h), true, true)
	}
	r.emit(r.l.inodeAddr(f), false, false)
	r.emit(r.l.inodeAddr(f), true, true)
	cur := r.cursors[f]
	for i := int64(0); i < int64(r.p.AppendLines); i++ {
		r.emit(r.l.extentAddr(f, cur+i), true, false)
	}
	r.cursors[f] = cur + int64(r.p.AppendLines)
}

func (r *reader) pick(z *rand.Zipf, n int64) int64 {
	if z != nil {
		return int64(z.Uint64())
	}
	return r.rng.Int63n(n)
}

// scramble spreads popularity ranks across n with a fixed multiplicative
// permutation.
func scramble(rank, n int64) int64 {
	const prime = 2654435761
	return (rank*prime + n/2) % n
}

func (r *reader) emit(addr config.Addr, write, dep bool) {
	gap := uint32(0)
	if r.p.GapMean > 0 {
		gap = uint32(r.rng.Intn(r.p.GapMean*2 + 1))
	}
	r.buf = append(r.buf, trace.Record{Gap: gap, Addr: addr, Write: write, Dep: dep})
}

// geometric draws a geometric variate with the given mean (≥ 0).
func (r *reader) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for r.rng.Float64() >= p && n < 1024 {
		n++
	}
	return n
}

// Counts is the region-classified profile of a full multi-core trace.
type Counts struct {
	Records      int64
	Instructions int64
	MetaReads    int64
	MetaWrites   int64
	DataReads    int64
	DataWrites   int64
}

// Profile drains fresh readers for every (host, core) of a cluster and
// classifies each access against the metadata/data boundary — the trace-side
// reconstruction the validation relations compare simulations against.
func Profile(p Params, am config.AddressMap, hosts, cores int, records, seed int64) (Counts, error) {
	if err := p.Validate(); err != nil {
		return Counts{}, err
	}
	boundary := MetaBoundary(p, am, hosts)
	var c Counts
	for h := 0; h < hosts; h++ {
		for core := 0; core < cores; core++ {
			r := New(p, am, hosts, h, core, records, seed)
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				c.Records++
				c.Instructions += int64(rec.Gap) + 1
				meta := rec.Addr < boundary
				switch {
				case meta && rec.Write:
					c.MetaWrites++
				case meta:
					c.MetaReads++
				case rec.Write:
					c.DataWrites++
				default:
					c.DataReads++
				}
			}
		}
	}
	return c, nil
}
