package daxfs

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/trace"
)

func testMap(t *testing.T) config.AddressMap {
	t.Helper()
	c := config.Default()
	c.SharedBytes = 4 << 20
	return config.NewAddressMap(&c)
}

func drain(t *testing.T, r trace.Reader, n int64) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if int64(len(recs)) != n {
		t.Fatalf("yielded %d records, want %d", len(recs), n)
	}
	return recs
}

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if !Default().Enabled() {
		t.Fatal("Default not Enabled")
	}
	if (Params{}).Enabled() {
		t.Fatal("zero Params Enabled")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := Default()
		f(&p)
		return p
	}
	bad := map[string]Params{
		"meta frac zero": mut(func(p *Params) { p.MetaFrac = 0 }),
		"meta frac one":  mut(func(p *Params) { p.MetaFrac = 1 }),
		"hot lines":      mut(func(p *Params) { p.HotLines = 0 }),
		"hot lines over": mut(func(p *Params) { p.HotLines = config.LinesPerPage + 1 }),
		"file zipf":      mut(func(p *Params) { p.FileZipfS = -1 }),
		"own frac":       mut(func(p *Params) { p.OwnFrac = 1.5 }),
		"extent pages":   mut(func(p *Params) { p.ExtentPages = 0 }),
		"mix over one":   mut(func(p *Params) { p.LookupFrac = 0.9; p.ScanFrac = 0.2 }),
		"negative mix":   mut(func(p *Params) { p.LookupFrac = -0.1 }),
		"scan lines":     mut(func(p *Params) { p.ScanLines = 0 }),
		"append lines":   mut(func(p *Params) { p.AppendLines = 0 }),
		"cas fanout":     mut(func(p *Params) { p.CASFanout = 0 }),
		"gap mean":       mut(func(p *Params) { p.GapMean = -1 }),
	}
	for name, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Append knobs are free when the mix has no appends.
	ro := Default()
	ro.LookupFrac, ro.ScanFrac = 0.7, 0.3
	ro.AppendLines, ro.CASFanout = 0, 0
	if err := ro.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBudgetAndAddressRange(t *testing.T) {
	am := testMap(t)
	recs := drain(t, New(Default(), am, 4, 2, 1, 30000, 7), 30000)
	for _, rec := range recs {
		if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
			t.Fatalf("address %#x outside shared heap", uint64(rec.Addr))
		}
	}
}

func TestReaderDeterminism(t *testing.T) {
	am := testMap(t)
	a := drain(t, New(Default(), am, 4, 1, 0, 8000, 3), 8000)
	b := drain(t, New(Default(), am, 4, 1, 0, 8000, 3), 8000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestReaderPrefixMonotone(t *testing.T) {
	am := testMap(t)
	short := drain(t, New(Default(), am, 4, 0, 0, 5000, 11), 5000)
	long := drain(t, New(Default(), am, 4, 0, 0, 10000, 11), 10000)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix diverges at %d", i)
		}
	}
}

// LookupFrac+ScanFrac = 1 is the degenerate read-only limit.
func TestZeroAppendMixIsReadOnly(t *testing.T) {
	am := testMap(t)
	p := Default()
	p.LookupFrac, p.ScanFrac = 0.7, 0.3
	for _, rec := range drain(t, New(p, am, 4, 1, 0, 30000, 5), 30000) {
		if rec.Write {
			t.Fatal("read-only mix wrote")
		}
	}
}

// The hot metadata lines must see CAS writes from every host — the genuine
// all-host contention the workload exists to model.
func TestHotLinesContendedFromAllHosts(t *testing.T) {
	am := testMap(t)
	p := Default()
	hotEnd := am.SharedAddr(0) + config.Addr(p.HotLines)*config.LineBytes
	for host := 0; host < 4; host++ {
		hotWrites := 0
		for _, rec := range drain(t, New(p, am, 4, host, 0, 30000, 2), 30000) {
			if rec.Write && rec.Addr < hotEnd {
				hotWrites++
			}
		}
		if hotWrites == 0 {
			t.Fatalf("host %d never CASed a hot line", host)
		}
	}
}

func TestMixShape(t *testing.T) {
	am := testMap(t)
	c, err := Profile(Default(), am, 4, 2, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Records != 4*2*20000 {
		t.Fatalf("Records = %d", c.Records)
	}
	if c.MetaReads == 0 || c.MetaWrites == 0 || c.DataReads == 0 || c.DataWrites == 0 {
		t.Fatalf("missing traffic class: %+v", c)
	}
	// Data is cold relative to the metadata index: scans stream it but the
	// hot CAS/lookup traffic concentrates on metadata lines.
	if c.MetaReads < c.DataWrites {
		t.Fatalf("metadata should dominate over append payload: %+v", c)
	}
	if c.Instructions < c.Records {
		t.Fatalf("Instructions %d < Records %d", c.Instructions, c.Records)
	}
}

// Own-subtree affinity: most extent traffic of host h lands on files with
// home h (file mod hosts == h).
func TestOwnSubtreeAffinity(t *testing.T) {
	am := testMap(t)
	p := Default()
	p.FileZipfS = 0 // uniform, so the affinity signal is pure OwnFrac
	l := newLayout(p, am, 4)
	metaEnd := am.SharedAddr(0) + config.Addr(l.metaPages)*config.PageBytes
	own, total := 0, 0
	for _, rec := range drain(t, New(p, am, 4, 1, 0, 60000, 9), 60000) {
		if rec.Addr < metaEnd {
			continue
		}
		page := int64((rec.Addr - am.SharedAddr(0)) / config.PageBytes)
		f := (page - l.metaPages) / l.extentPages
		total++
		if f%4 == 1 {
			own++
		}
	}
	if frac := float64(own) / float64(total); frac < 0.7 {
		t.Fatalf("own-subtree extent share = %.2f, want ≥ 0.7 (OwnFrac 0.9)", frac)
	}
}

func TestTinyHeapDoesNotPanic(t *testing.T) {
	c := config.Default()
	c.SharedBytes = config.PageBytes
	am := config.NewAddressMap(&c)
	recs := drain(t, New(Default(), am, 4, 3, 0, 2000, 1), 2000)
	for _, rec := range recs {
		if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
			t.Fatalf("address %#x outside shared heap", uint64(rec.Addr))
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	am := testMap(t)
	for name, fn := range map[string]func(){
		"invalid params": func() { New(Params{}, am, 4, 0, 0, 10, 1) },
		"bad host":       func() { New(Default(), am, 4, 4, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProfileRejectsInvalid(t *testing.T) {
	am := testMap(t)
	if _, err := Profile(Params{}, am, 4, 1, 10, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}
