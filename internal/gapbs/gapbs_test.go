package gapbs

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/trace"
)

func testLayout(t *testing.T, scale, degree int) (*Layout, *Graph, config.AddressMap) {
	t.Helper()
	c := config.Default()
	c.SharedBytes = 16 << 20
	am := config.NewAddressMap(&c)
	g := Kronecker(scale, degree, 42)
	l, err := NewLayout(am, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l, g, am
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker(10, 8, 1)
	if g.N != 1024 {
		t.Fatalf("N = %d, want 1024", g.N)
	}
	if g.M() != 1024*8 {
		t.Fatalf("M = %d, want %d", g.M(), 1024*8)
	}
	// CSR integrity: offsets monotone, covering all edges.
	if g.Offsets[0] != 0 || g.Offsets[g.N] != g.M() {
		t.Fatal("offsets do not cover the edge array")
	}
	for v := int64(0); v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			t.Fatalf("offsets not monotone at %d", v)
		}
	}
	for _, u := range g.Edges {
		if u < 0 || u >= g.N {
			t.Fatalf("edge target %d out of range", u)
		}
	}
}

func TestKroneckerIsSkewed(t *testing.T) {
	g := Kronecker(12, 16, 7)
	// RMAT graphs are power-law-ish: the hottest 1% of vertices should own
	// far more than 1% of edges.
	degs := make([]int64, 0, g.N)
	for v := int64(0); v < g.N; v++ {
		degs = append(degs, g.Degree(v))
	}
	// Partial selection of the top 1%.
	top := g.N / 100
	var sum int64
	for i := int64(0); i < top; i++ {
		maxIdx := i
		for j := i + 1; j < int64(len(degs)); j++ {
			if degs[j] > degs[maxIdx] {
				maxIdx = j
			}
		}
		degs[i], degs[maxIdx] = degs[maxIdx], degs[i]
		sum += degs[i]
	}
	if frac := float64(sum) / float64(g.M()); frac < 0.05 {
		t.Fatalf("top 1%% of vertices own only %.1f%% of edges — not RMAT-skewed", 100*frac)
	}
}

func TestUniformGraph(t *testing.T) {
	g := Uniform(8, 4, 3)
	if g.N != 256 || g.M() != 1024 {
		t.Fatalf("shape %d/%d", g.N, g.M())
	}
	for v := int64(0); v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Kronecker(8, 4, 9)
	b := Kronecker(8, 4, 9)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("Kronecker not deterministic")
		}
	}
}

func TestLayoutRejectsOversizedGraph(t *testing.T) {
	c := config.Default()
	c.SharedBytes = 1 << 20 // 1 MB: too small for scale 14
	am := config.NewAddressMap(&c)
	if _, err := NewLayout(am, Kronecker(14, 16, 1), 4); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestReaderAddressesAreInLayout(t *testing.T) {
	l, g, am := testLayout(t, 10, 8)
	for _, k := range []Kernel{PageRank, BFS, SSSP} {
		r := l.NewReader(k, 1, 0, 2, 20000, 5)
		n := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			n++
			kind, _ := am.Region(rec.Addr)
			if kind != config.RegionShared {
				t.Fatalf("%v: non-shared address %#x", k, uint64(rec.Addr))
			}
			limit := am.SharedAddr(0) + config.Addr((3*g.N+1+g.M())*8)
			if rec.Addr >= limit {
				t.Fatalf("%v: address %#x beyond the graph layout", k, uint64(rec.Addr))
			}
		}
		if n != 20000 {
			t.Fatalf("%v: yielded %d records, want 20000", k, n)
		}
	}
}

func TestReaderDeterministic(t *testing.T) {
	l, _, _ := testLayout(t, 10, 8)
	read := func() []trace.Record {
		r := l.NewReader(BFS, 0, 0, 1, 5000, 3)
		var recs []trace.Record
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		return recs
	}
	a, b := read(), read()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestOwnershipPartitioning(t *testing.T) {
	l, g, am := testLayout(t, 12, 8)
	// Host 2's PR reader writes values2 only for its own vertex block.
	r := l.NewReader(PageRank, 2, 0, 1, 40000, 1)
	lo, hi := l.ownerRange(2, 0, 1)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if !rec.Write {
			continue
		}
		word := int64(rec.Addr-am.SharedAddr(0)) / 8
		if word < g.N || word >= 2*g.N {
			t.Fatalf("PR wrote outside values2: word %d", word)
		}
		v := word - g.N
		if v < lo || v >= hi {
			t.Fatalf("PR wrote vertex %d outside owned block [%d,%d)", v, lo, hi)
		}
	}
}

func TestCrossPartitionTrafficExists(t *testing.T) {
	l, g, am := testLayout(t, 12, 8)
	// Host 0's neighbour-value reads must sometimes touch other hosts'
	// vertex blocks — that is the boundary traffic the paper's migration
	// problem is about.
	r := l.NewReader(PageRank, 0, 0, 1, 60000, 1)
	hostOf := func(v int64) int { return int(v * 4 / g.N) }
	cross := 0
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		word := int64(rec.Addr-am.SharedAddr(0)) / 8
		if word >= g.N || rec.Write {
			continue // only neighbour-value reads
		}
		if !rec.Dep {
			continue
		}
		if hostOf(word) != 0 {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("no cross-partition neighbour reads — partitioned graph should have boundary traffic")
	}
}

func TestBFSTerminatesAndRestarts(t *testing.T) {
	l, _, _ := testLayout(t, 8, 4)
	// A small graph converges quickly; a large budget forces restarts.
	r := l.NewReader(BFS, 0, 0, 1, 200000, 1)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 200000 {
		t.Fatalf("reader starved after %d records (restart logic broken)", n)
	}
}

func TestKernelStrings(t *testing.T) {
	if PageRank.String() != "pr" || BFS.String() != "bfs" || SSSP.String() != "sssp" {
		t.Fatal("Kernel strings wrong")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"scale 0":   func() { Kronecker(0, 4, 1) },
		"scale 31":  func() { Kronecker(31, 4, 1) },
		"degree 0":  func() { Kronecker(4, 0, 1) },
		"bad host":  func() { l, _, _ := testLayout(t, 8, 4); l.NewReader(BFS, 9, 0, 1, 10, 1) },
		"u scale 0": func() { Uniform(0, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
