// Package gapbs is a small graph-analytics engine whose only job is to emit
// the true memory-access streams of the GAP benchmark kernels: it builds a
// Kronecker (RMAT) graph in CSR form, lays it out in the simulated machine's
// shared heap exactly as a multi-host GAP run would (vertex arrays plus
// adjacency, partitioned by vertex ownership), and then *executes* BFS,
// PageRank and SSSP over it, recording every load and store as a trace
// record — streaming adjacency scans, dependent random vertex-value reads,
// and genuine cross-partition boundary traffic.
//
// Where internal/workload models the paper's traces statistically, this
// package reproduces them mechanistically; examples/algorithmic cross-
// validates the two (the scheme ordering must agree).
package gapbs

import (
	"fmt"
	"math/rand"
)

// Graph is a directed graph in compressed-sparse-row form.
type Graph struct {
	N       int64   // vertices
	Offsets []int64 // len N+1: adjacency of v is Edges[Offsets[v]:Offsets[v+1]]
	Edges   []int64 // destination vertex ids
}

// M returns the edge count.
func (g *Graph) M() int64 { return int64(len(g.Edges)) }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int64) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Kronecker builds an RMAT/Kronecker graph with 2^scale vertices and about
// degree×2^scale edges — the generator the GAP benchmark suite specifies
// (Graph500 parameters A=0.57, B=0.19, C=0.19). Deterministic for a seed.
func Kronecker(scale, degree int, seed int64) *Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gapbs: scale %d out of range", scale))
	}
	if degree < 1 {
		panic("gapbs: degree must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := int64(1) << uint(scale)
	m := n * int64(degree)

	const a, b, c = 0.57, 0.19, 0.19
	srcs := make([]int64, m)
	dsts := make([]int64, m)
	for i := int64(0); i < m; i++ {
		var src, dst int64
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				dst |= 1 << uint(bit)
			case r < a+b+c: // bottom-left
				src |= 1 << uint(bit)
			default: // bottom-right
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		srcs[i], dsts[i] = src, dst
	}

	// Degree-count then place: standard two-pass CSR build.
	offsets := make([]int64, n+1)
	for _, s := range srcs {
		offsets[s+1]++
	}
	for v := int64(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int64, m)
	cursor := make([]int64, n)
	for i := int64(0); i < m; i++ {
		s := srcs[i]
		edges[offsets[s]+cursor[s]] = dsts[i]
		cursor[s]++
	}
	return &Graph{N: n, Offsets: offsets, Edges: edges}
}

// Uniform builds an Erdős–Rényi-style graph with exactly degree out-edges
// per vertex — a low-skew contrast to Kronecker for tests.
func Uniform(scale, degree int, seed int64) *Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gapbs: scale %d out of range", scale))
	}
	rng := rand.New(rand.NewSource(seed))
	n := int64(1) << uint(scale)
	offsets := make([]int64, n+1)
	edges := make([]int64, 0, n*int64(degree))
	for v := int64(0); v < n; v++ {
		offsets[v] = int64(len(edges))
		for d := 0; d < degree; d++ {
			edges = append(edges, rng.Int63n(n))
		}
	}
	offsets[n] = int64(len(edges))
	return &Graph{N: n, Offsets: offsets, Edges: edges}
}
