package gapbs

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/trace"
)

// Layout places the graph in the machine's shared CXL-DSM heap the way a
// multi-host GAP run lays out its arrays (64-bit words):
//
//	values  [N]   vertex values (dist / rank)          offset 0
//	values2 [N]   double-buffered values (PR)          offset 8N
//	offsets [N+1] CSR row offsets                      offset 16N
//	edges   [M]   CSR adjacency                        offset 24N+8
//
// Vertices are owned in contiguous blocks: host h owns [h·N/H, (h+1)·N/H).
// A vertex's value and adjacency therefore live in its owner's partition of
// the heap — touching a remote neighbour's value is genuine cross-partition
// traffic.
type Layout struct {
	am    config.AddressMap
	g     *Graph
	hosts int
}

// NewLayout validates that the graph fits the shared heap.
func NewLayout(am config.AddressMap, g *Graph, hosts int) (*Layout, error) {
	need := (3*g.N + 1 + g.M()) * 8
	if config.Addr(need) > am.SharedBytes() {
		return nil, fmt.Errorf("gapbs: graph needs %d bytes, shared heap has %d", need, uint64(am.SharedBytes()))
	}
	if hosts < 1 {
		return nil, fmt.Errorf("gapbs: need at least one host")
	}
	return &Layout{am: am, g: g, hosts: hosts}, nil
}

func (l *Layout) valueAddr(v int64) config.Addr {
	return l.am.SharedAddr(config.Addr(v * 8))
}

func (l *Layout) value2Addr(v int64) config.Addr {
	return l.am.SharedAddr(config.Addr((l.g.N + v) * 8))
}

func (l *Layout) offsetAddr(v int64) config.Addr {
	return l.am.SharedAddr(config.Addr((2*l.g.N + v) * 8))
}

func (l *Layout) edgeAddr(i int64) config.Addr {
	return l.am.SharedAddr(config.Addr((3*l.g.N + 1 + i) * 8))
}

// ownerRange returns the vertex block core `core` of host `host` works on.
func (l *Layout) ownerRange(host, core, cores int) (lo, hi int64) {
	hostLo := int64(host) * l.g.N / int64(l.hosts)
	hostHi := int64(host+1) * l.g.N / int64(l.hosts)
	span := hostHi - hostLo
	lo = hostLo + int64(core)*span/int64(cores)
	hi = hostLo + int64(core+1)*span/int64(cores)
	return lo, hi
}

// Kernel selects the graph algorithm a reader executes.
type Kernel uint8

const (
	PageRank Kernel = iota
	BFS
	SSSP
)

func (k Kernel) String() string {
	switch k {
	case PageRank:
		return "pr"
	case BFS:
		return "bfs"
	default:
		return "sssp"
	}
}

// NewReader returns a trace reader that executes the kernel over the graph
// and emits (host, core)'s share of the memory accesses, up to records
// records. The algorithm restarts (next root) when it converges before the
// budget is spent. Deterministic for fixed arguments.
func (l *Layout) NewReader(k Kernel, host, core, cores int, records, seed int64) trace.Reader {
	if host < 0 || host >= l.hosts {
		panic(fmt.Sprintf("gapbs: host %d out of range", host))
	}
	lo, hi := l.ownerRange(host, core, cores)
	return &kernelReader{
		l: l, k: k,
		lo: lo, hi: hi,
		rng:    rand.New(rand.NewSource(seed ^ int64(host)<<20 ^ int64(core)<<8 ^ int64(k))),
		remain: records,
		run:    int64(seed) + 1,
	}
}

// kernelReader executes iterations of the kernel, buffering the records one
// owned vertex produces at a time.
type kernelReader struct {
	l      *Layout
	k      Kernel
	lo, hi int64

	rng    *rand.Rand
	remain int64
	run    int64 // restart counter → new BFS/SSSP roots

	// Algorithm state (whole-graph: every reader recomputes the global
	// algorithm deterministically and emits only its slice's accesses).
	values []int64
	level  int64
	cursor int64 // next owned vertex to process this iteration
	active bool  // any update happened this iteration (global, derived)

	buf []trace.Record
	pos int
}

// Next implements trace.Reader.
func (r *kernelReader) Next() (trace.Record, bool) {
	if r.remain <= 0 {
		return trace.Record{}, false
	}
	for r.pos >= len(r.buf) {
		if !r.refill() {
			return trace.Record{}, false
		}
	}
	rec := r.buf[r.pos]
	r.pos++
	r.remain--
	return rec, true
}

// refill produces the next vertex's access records.
func (r *kernelReader) refill() bool {
	if r.values == nil {
		r.reset()
	}
	r.buf = r.buf[:0]
	r.pos = 0

	for len(r.buf) == 0 {
		if r.cursor >= r.hi {
			// Iteration boundary: advance the global algorithm state.
			if !r.advanceIteration() {
				r.reset() // converged: restart with a new root
			}
			continue
		}
		v := r.cursor
		r.cursor++
		r.emitVertex(v)
	}
	return true
}

// reset starts a fresh run of the algorithm.
func (r *kernelReader) reset() {
	g := r.l.g
	if r.values == nil {
		r.values = make([]int64, g.N)
	}
	const inf = int64(1) << 62
	switch r.k {
	case PageRank:
		for i := range r.values {
			r.values[i] = 1
		}
	default:
		for i := range r.values {
			r.values[i] = inf
		}
		root := r.run % g.N
		r.values[root] = 0
	}
	r.run++
	r.level = 0
	r.cursor = r.lo
	r.active = true
}

// advanceIteration closes one sweep/level and reports whether the algorithm
// should continue.
func (r *kernelReader) advanceIteration() bool {
	r.cursor = r.lo
	r.level++
	switch r.k {
	case PageRank:
		return r.level < 16 // fixed sweep count, as GAP's pr -i
	default:
		if !r.active {
			return false
		}
		// Recompute the next frontier globally (deterministic): one
		// synchronous relaxation round over the whole graph.
		r.active = r.relaxAll()
		return r.level < 64
	}
}

// relaxAll performs one global BFS/SSSP round over ALL vertices (not just
// owned ones) so every reader sees the same algorithm state; it reports
// whether anything changed.
func (r *kernelReader) relaxAll() bool {
	g := r.l.g
	changed := false
	for v := int64(0); v < g.N; v++ {
		dv := r.values[v]
		if dv >= 1<<62 || dv != r.level-1 {
			continue // only the current frontier relaxes
		}
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			u := g.Edges[i]
			w := int64(1)
			if r.k == SSSP {
				w = 1 + (v^u)&7 // deterministic pseudo-weight 1..8
			}
			if dv+w < r.values[u] {
				r.values[u] = dv + w
				changed = true
			}
		}
	}
	return changed
}

// emitVertex appends the records vertex v's processing produces this
// iteration: CSR offset reads, a streaming adjacency scan, dependent random
// reads of neighbour values, and the value write.
func (r *kernelReader) emitVertex(v int64) {
	g := r.l.g
	if r.k != PageRank {
		// Frontier check: read own distance; skip non-frontier vertices.
		r.emit(r.l.valueAddr(v), false, false)
		if r.values[v] != r.level {
			return
		}
	}
	// CSR offsets: two sequential reads.
	r.emit(r.l.offsetAddr(v), false, false)
	r.emit(r.l.offsetAddr(v+1), false, false)
	for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
		u := g.Edges[i]
		// Streaming adjacency read, then a dependent random read of the
		// neighbour's value — the defining GAP access pair.
		r.emit(r.l.edgeAddr(i), false, false)
		r.emit(r.l.valueAddr(u), false, true)
		if r.k != PageRank && r.values[u] > r.values[v] {
			// Relaxation writes the neighbour's value.
			r.emit(r.l.valueAddr(u), true, true)
		}
	}
	if r.k == PageRank {
		r.emit(r.l.value2Addr(v), true, false)
	}
}

func (r *kernelReader) emit(addr config.Addr, write, dep bool) {
	gap := uint32(r.rng.Intn(9) + 2) // few ALU ops between memory touches
	r.buf = append(r.buf, trace.Record{Gap: gap, Addr: addr, Write: write, Dep: dep})
}
