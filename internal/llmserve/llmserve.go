// Package llmserve is a mechanistic multi-host LLM inference workload in the
// spirit of XL-Share's AI serving systems (SNIPPETS.md Snippet 3): a large
// read-mostly weight region shared by every host, a pool of per-session
// KV-cache slots that are write-heavy and migrate with session placement,
// and bursty open-loop session arrivals. Like internal/gapbs and
// internal/silo, the generator *executes* the serving loop — admissions,
// prefill, decode steps — and emits every memory access it makes, driven
// entirely by the deterministic per-core RNG seam.
//
// Shared-heap layout (carved with config.AddressMap.SplitSharedPages):
//
//	weights [W pages]   host h's tensor-parallel shard is the h-th slice;
//	                    a ShardFrac share of weight reads stay on it, the
//	                    rest hit globally hot pages (embeddings, top layers)
//	kv      [K pages]   SlotPages-page session slots; slot s is home to
//	                    host s mod hosts, and a MigrateFrac share of
//	                    admissions resume a session on a *foreign* slot —
//	                    the KV cache written by another host's earlier
//	                    session moves with the placement
//
// With ArrivalMean = 0 no session ever arrives and the trace degenerates to
// the idle weight scan: a pure-read sequential sweep of the host's own
// shard, the read-only limit the validation harness compares local-only
// against PIPM on.
package llmserve

import (
	"fmt"
	"math/rand"

	"pipm/internal/config"
	"pipm/internal/trace"
)

// Params are the serving-model knobs. The zero value means "disabled" to
// the workload registry (workload.Params.Serve); every preset sets at least
// one field. All fields are plain numbers so the harness's canonical run-key
// encoder can walk them reflectively.
type Params struct {
	// WeightFrac is the fraction of the shared heap holding model weights;
	// the rest is the KV-cache slot pool.
	WeightFrac float64
	// ShardFrac is the fraction of weight-token reads that stay on the
	// host's own tensor-parallel shard; the rest hit globally popular
	// weight pages (embeddings, first/last layers) shared by every host.
	ShardFrac float64
	// WeightZipfS is the popularity skew of global weight-page picks
	// (0 = uniform).
	WeightZipfS float64
	// SlotPages is the KV-cache slot size in pages.
	SlotPages int
	// ArrivalMean is the mean number of decode steps between session
	// arrival bursts (open-loop Poisson process, geometric inter-arrival
	// in scheduler steps). Zero disables arrivals entirely: the reader
	// emits the idle weight scan only.
	ArrivalMean float64
	// BurstMean is the mean number of sessions admitted per arrival burst
	// (geometric, ≥ 1).
	BurstMean float64
	// PrefillTokens is the number of tokens processed at admission.
	PrefillTokens int
	// DecodeTokens is the mean decode length of a session (geometric, ≥ 1).
	DecodeTokens int
	// SessionZipfS skews which active session the next decode step serves
	// toward recently admitted ones (0 = uniform).
	SessionZipfS float64
	// WeightReads is the number of weight lines read per token.
	WeightReads int
	// KVReadWindow is the number of recent KV lines re-read per decode
	// token (attention over the cached prefix).
	KVReadWindow int
	// MigrateFrac is the fraction of admissions that resume a session last
	// served by another host: the slot comes from a foreign home class and
	// its prefill KV is already written, so the first accesses are reads of
	// another host's lines.
	MigrateFrac float64
	// MaxActive caps concurrently active sessions per core.
	MaxActive int
	// GapMean is the mean number of non-memory instructions between
	// memory references.
	GapMean int
}

// Default returns the calibrated serving mix behind the "llmserve" catalog
// preset: decode-dominated traffic with a hot own-shard working set, small
// write-heavy KV slots, and a quarter of sessions migrating between hosts.
func Default() Params {
	return Params{
		WeightFrac:    0.75,
		ShardFrac:     0.90,
		WeightZipfS:   1.2,
		SlotPages:     2,
		ArrivalMean:   40,
		BurstMean:     3,
		PrefillTokens: 12,
		DecodeTokens:  48,
		SessionZipfS:  1.1,
		WeightReads:   6,
		KVReadWindow:  4,
		MigrateFrac:   0.25,
		MaxActive:     8,
		GapMean:       16,
	}
}

// Enabled reports whether the params select the mechanistic generator: any
// nonzero field. The workload registry dispatches on this, so the zero value
// keeps statistical presets byte-identical to their pre-serve encoding.
func (p Params) Enabled() bool { return p != Params{} }

// Validate rejects parameter sets the generator cannot execute. Fractions
// must be probabilities, counts non-negative, and the per-token work must be
// nonzero so the reader always makes progress.
func (p Params) Validate() error {
	switch {
	case p.WeightFrac <= 0 || p.WeightFrac > 1:
		return fmt.Errorf("llmserve: WeightFrac = %g, want (0, 1]", p.WeightFrac)
	case p.ShardFrac < 0 || p.ShardFrac > 1:
		return fmt.Errorf("llmserve: ShardFrac = %g, want [0, 1]", p.ShardFrac)
	case p.WeightZipfS < 0:
		return fmt.Errorf("llmserve: WeightZipfS = %g, want ≥ 0", p.WeightZipfS)
	case p.SlotPages < 1:
		return fmt.Errorf("llmserve: SlotPages = %d, want ≥ 1", p.SlotPages)
	case p.ArrivalMean < 0:
		return fmt.Errorf("llmserve: ArrivalMean = %g, want ≥ 0", p.ArrivalMean)
	case p.ArrivalMean > 0 && p.BurstMean < 1:
		return fmt.Errorf("llmserve: BurstMean = %g, want ≥ 1 when arrivals are on", p.BurstMean)
	case p.PrefillTokens < 0:
		return fmt.Errorf("llmserve: PrefillTokens = %d, want ≥ 0", p.PrefillTokens)
	case p.ArrivalMean > 0 && p.DecodeTokens < 1:
		return fmt.Errorf("llmserve: DecodeTokens = %d, want ≥ 1 when arrivals are on", p.DecodeTokens)
	case p.SessionZipfS < 0:
		return fmt.Errorf("llmserve: SessionZipfS = %g, want ≥ 0", p.SessionZipfS)
	case p.WeightReads < 1:
		return fmt.Errorf("llmserve: WeightReads = %d, want ≥ 1", p.WeightReads)
	case p.KVReadWindow < 0:
		return fmt.Errorf("llmserve: KVReadWindow = %d, want ≥ 0", p.KVReadWindow)
	case p.MigrateFrac < 0 || p.MigrateFrac > 1:
		return fmt.Errorf("llmserve: MigrateFrac = %g, want [0, 1]", p.MigrateFrac)
	case p.ArrivalMean > 0 && p.MaxActive < 1:
		return fmt.Errorf("llmserve: MaxActive = %d, want ≥ 1 when arrivals are on", p.MaxActive)
	case p.GapMean < 0:
		return fmt.Errorf("llmserve: GapMean = %d, want ≥ 0", p.GapMean)
	}
	return nil
}

// minZipfS is the smallest usable skew for math/rand's Zipf (requires > 1).
const minZipfS = 1.05

// layout is the shared-heap carve for one (params, address map, hosts)
// tuple: identical on every host and core.
type layout struct {
	am          config.AddressMap
	hosts       int
	weightPages int64
	kvPages     int64
	slots       int64 // kvPages / SlotPages; 0 on a heap too small for slots
	shardPages  int64 // weightPages / hosts, ≥ 1
}

func newLayout(p Params, am config.AddressMap, hosts int) layout {
	parts := am.SplitSharedPages(p.WeightFrac, 1-p.WeightFrac)
	l := layout{am: am, hosts: hosts, weightPages: parts[0], kvPages: parts[1]}
	if l.weightPages < 1 {
		// A weight region always exists: the idle scan and every token read
		// it. Steal the first page back from the KV pool.
		l.weightPages, l.kvPages = 1, l.kvPages-1
	}
	l.slots = l.kvPages / int64(p.SlotPages)
	l.shardPages = l.weightPages / int64(hosts)
	if l.shardPages < 1 {
		l.shardPages = 1
	}
	return l
}

// weightAddr returns the address of line within weight page.
func (l layout) weightAddr(page int64, line int) config.Addr {
	return l.am.SharedAddr(config.Addr(page)*config.PageBytes +
		config.Addr(line)*config.LineBytes)
}

// shardStart returns the first weight page of host h's shard. Shards tile
// the region; the tail past hosts×shardPages is global-only territory.
func (l layout) shardStart(h int) int64 {
	return (int64(h) * l.shardPages) % l.weightPages
}

// kvAddr returns the address of KV line idx within slot s; lines wrap within
// the slot, modelling the sliding attention window of a full cache.
func (l layout) kvAddr(p Params, slot, idx int64) config.Addr {
	linesPerSlot := int64(p.SlotPages) * config.LinesPerPage
	line := idx % linesPerSlot
	base := (l.weightPages + slot*int64(p.SlotPages)) * config.PageBytes
	return l.am.SharedAddr(config.Addr(base) + config.Addr(line)*config.LineBytes)
}

// WeightBoundary returns the first address past the weight region — the
// classifier the validation harness uses to split weight from KV traffic.
func WeightBoundary(p Params, am config.AddressMap, hosts int) config.Addr {
	l := newLayout(p, am, hosts)
	return am.SharedAddr(0) + config.Addr(l.weightPages)*config.PageBytes
}

// session is one in-flight inference request pinned to a KV slot.
type session struct {
	slot  int64
	kvLen int64 // KV lines written so far (pre-seeded on migrate-in)
	left  int   // decode tokens remaining
}

// New returns the deterministic record stream of host h / core c. The RNG is
// derived from (seed, host, core) exactly as the statistical generators
// derive theirs, so a validation pass can reconstruct the identical stream
// with Profile.
func New(p Params, am config.AddressMap, hosts, host, core int, records, seed int64) trace.Reader {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if host < 0 || host >= hosts {
		panic(fmt.Sprintf("llmserve: host %d out of range", host))
	}
	r := &reader{
		p:      p,
		l:      newLayout(p, am, hosts),
		host:   host,
		rng:    rand.New(rand.NewSource(mix(seed, host, core))),
		remain: records,
	}
	if s := p.WeightZipfS; s > 0 && r.l.weightPages > 1 {
		if s < minZipfS {
			s = minZipfS
		}
		r.zipfGlobal = rand.NewZipf(r.rng, s, 1, uint64(r.l.weightPages-1))
		if r.l.shardPages > 1 {
			r.zipfShard = rand.NewZipf(r.rng, s, 1, uint64(r.l.shardPages-1))
		}
	}
	return r
}

// mix folds (seed, host, core) into one RNG seed — the same per-core seam
// shape the statistical generators use.
func mix(seed int64, host, core int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(int64(host)*1_000_003+int64(core)*7919)*0xC2B2AE3D27D4EB4F
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int64(x & (1<<62 - 1))
}

type reader struct {
	p    Params
	l    layout
	host int

	rng        *rand.Rand
	zipfGlobal *rand.Zipf
	zipfShard  *rand.Zipf
	remain     int64

	buf []trace.Record
	pos int

	active    []*session
	countdown int   // scheduler steps until the next arrival burst
	nextHome  int64 // round-robin cursor over the home slot class
	scanPage  int64 // idle-scan position within the own shard
	scanLine  int
}

// Next implements trace.Reader.
func (r *reader) Next() (trace.Record, bool) {
	if r.remain <= 0 {
		return trace.Record{}, false
	}
	for r.pos >= len(r.buf) {
		r.buf = r.buf[:0]
		r.pos = 0
		r.step()
	}
	rec := r.buf[r.pos]
	r.pos++
	r.remain--
	return rec, true
}

// step executes one scheduler step: possibly an arrival burst, then one
// decode step of a zipf-picked active session — or the idle weight scan when
// no session is in flight.
func (r *reader) step() {
	if r.p.ArrivalMean > 0 && r.l.slots > 0 {
		if r.countdown <= 0 {
			n := 1 + r.geometric(r.p.BurstMean-1)
			for i := 0; i < n && len(r.active) < r.p.MaxActive; i++ {
				r.admit()
			}
			r.countdown = 1 + r.geometric(r.p.ArrivalMean-1)
		}
		r.countdown--
	}
	if len(r.active) == 0 {
		r.idleScan()
		return
	}
	s := r.pickSession()
	r.decode(s)
}

// admit places a new session on a KV slot and runs its prefill. A MigrateFrac
// share of admissions resume a session from a foreign host: the slot comes
// from another host's home class with the prefill KV already in place, so the
// catch-up reads touch lines this host never wrote.
func (r *reader) admit() {
	migrated := r.l.hosts > 1 && r.l.slots > int64(r.l.hosts) &&
		r.rng.Float64() < r.p.MigrateFrac
	var slot int64
	if migrated {
		// Any slot whose home class is not ours.
		slot = r.rng.Int63n(r.l.slots)
		if slot%int64(r.l.hosts) == int64(r.host) {
			slot = (slot + 1) % r.l.slots
		}
	} else {
		// Round-robin over the home class; hosts with no home slot (more
		// hosts than slots) share the whole pool.
		if r.l.slots >= int64(r.l.hosts) {
			class := (r.l.slots - int64(r.host) + int64(r.l.hosts) - 1) / int64(r.l.hosts)
			slot = int64(r.host) + (r.nextHome%class)*int64(r.l.hosts)
		} else {
			slot = r.nextHome % r.l.slots
		}
		r.nextHome++
	}
	s := &session{slot: slot, left: 1 + r.geometric(float64(r.p.DecodeTokens-1))}
	if migrated {
		s.kvLen = int64(r.p.PrefillTokens)
		// Catch-up: re-read the migrated prefix before the first decode.
		for i := int64(0); i < s.kvLen && i < int64(r.p.KVReadWindow); i++ {
			r.emit(r.l.kvAddr(r.p, s.slot, s.kvLen-1-i), false, i == 0)
		}
	} else {
		for t := 0; t < r.p.PrefillTokens; t++ {
			r.weightToken()
			r.emit(r.l.kvAddr(r.p, s.slot, s.kvLen), true, false)
			s.kvLen++
		}
	}
	r.active = append(r.active, s)
}

// pickSession chooses the session the next decode step serves: zipf-skewed
// toward recent admissions (rank 0 = newest).
func (r *reader) pickSession() *session {
	n := len(r.active)
	if n == 1 {
		return r.active[0]
	}
	var rank int64
	if s := r.p.SessionZipfS; s > 0 {
		if s < minZipfS {
			s = minZipfS
		}
		rank = int64(rand.NewZipf(r.rng, s, 1, uint64(n-1)).Uint64())
	} else {
		rank = r.rng.Int63n(int64(n))
	}
	return r.active[n-1-int(rank)]
}

// decode serves one token: weight reads, attention reads over the recent KV
// prefix, one KV append. Finished sessions retire and free their slot for
// the round-robin cursor to reuse.
func (r *reader) decode(s *session) {
	r.weightToken()
	for i := int64(0); i < s.kvLen && i < int64(r.p.KVReadWindow); i++ {
		r.emit(r.l.kvAddr(r.p, s.slot, s.kvLen-1-i), false, i == 0)
	}
	r.emit(r.l.kvAddr(r.p, s.slot, s.kvLen), true, false)
	s.kvLen++
	s.left--
	if s.left <= 0 {
		for i, a := range r.active {
			if a == s {
				r.active = append(r.active[:i], r.active[i+1:]...)
				break
			}
		}
	}
}

// weightToken reads WeightReads sequential weight lines for one token:
// ShardFrac of tokens stream the host's own tensor-parallel shard, the rest
// hit globally popular pages.
func (r *reader) weightToken() {
	var page int64
	if r.rng.Float64() < r.p.ShardFrac {
		page = r.l.shardStart(r.host) + r.pick(r.zipfShard, r.l.shardPages)
		page %= r.l.weightPages
	} else {
		page = scramble(r.pick(r.zipfGlobal, r.l.weightPages), r.l.weightPages)
	}
	line := r.rng.Intn(config.LinesPerPage)
	for i := 0; i < r.p.WeightReads; i++ {
		r.emit(r.l.weightAddr(page, line), false, false)
		if line++; line >= config.LinesPerPage {
			line = 0
			page = (page + 1) % r.l.weightPages
		}
	}
}

// idleScan is the zero-session trace: a sequential read sweep of the host's
// own weight shard, one token's worth of lines per step. No writes, ever.
func (r *reader) idleScan() {
	start := r.l.shardStart(r.host)
	for i := 0; i < r.p.WeightReads; i++ {
		page := (start + r.scanPage) % r.l.weightPages
		r.emit(r.l.weightAddr(page, r.scanLine), false, false)
		if r.scanLine++; r.scanLine >= config.LinesPerPage {
			r.scanLine = 0
			r.scanPage = (r.scanPage + 1) % r.l.shardPages
		}
	}
}

func (r *reader) pick(z *rand.Zipf, n int64) int64 {
	if z != nil {
		return int64(z.Uint64())
	}
	return r.rng.Int63n(n)
}

// scramble spreads popularity ranks across the region with a fixed
// multiplicative permutation — the same hot-key-is-hot-for-everyone mapping
// the statistical generators use.
func scramble(rank, n int64) int64 {
	const prime = 2654435761
	return (rank*prime + n/2) % n
}

func (r *reader) emit(addr config.Addr, write, dep bool) {
	gap := uint32(0)
	if r.p.GapMean > 0 {
		gap = uint32(r.rng.Intn(r.p.GapMean*2 + 1))
	}
	r.buf = append(r.buf, trace.Record{Gap: gap, Addr: addr, Write: write, Dep: dep})
}

// geometric draws a geometric variate with the given mean (≥ 0).
func (r *reader) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for r.rng.Float64() >= p && n < 1024 {
		n++
	}
	return n
}

// Counts is the region-classified profile of a full multi-core trace.
type Counts struct {
	Records      int64
	Instructions int64
	WeightReads  int64
	WeightWrites int64
	KVReads      int64
	KVWrites     int64
}

// Profile drains fresh readers for every (host, core) of a cluster and
// classifies each access against the weight/KV boundary. Because New derives
// its RNG from (seed, host, core) alone, the profile is exactly the trace a
// simulation with the same tuple consumes — the trace-side half of the
// weight-read scheme-invariance relation.
func Profile(p Params, am config.AddressMap, hosts, cores int, records, seed int64) (Counts, error) {
	if err := p.Validate(); err != nil {
		return Counts{}, err
	}
	boundary := WeightBoundary(p, am, hosts)
	var c Counts
	for h := 0; h < hosts; h++ {
		for core := 0; core < cores; core++ {
			r := New(p, am, hosts, h, core, records, seed)
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				c.Records++
				c.Instructions += int64(rec.Gap) + 1
				weight := rec.Addr < boundary
				switch {
				case weight && rec.Write:
					c.WeightWrites++
				case weight:
					c.WeightReads++
				case rec.Write:
					c.KVWrites++
				default:
					c.KVReads++
				}
			}
		}
	}
	return c, nil
}
