package llmserve

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/trace"
)

func testMap(t *testing.T) config.AddressMap {
	t.Helper()
	c := config.Default()
	c.SharedBytes = 4 << 20
	return config.NewAddressMap(&c)
}

func drain(t *testing.T, r trace.Reader, n int64) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if int64(len(recs)) != n {
		t.Fatalf("yielded %d records, want %d", len(recs), n)
	}
	return recs
}

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if !Default().Enabled() {
		t.Fatal("Default not Enabled")
	}
	if (Params{}).Enabled() {
		t.Fatal("zero Params Enabled")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := Default()
		f(&p)
		return p
	}
	bad := map[string]Params{
		"weight frac zero": mut(func(p *Params) { p.WeightFrac = 0 }),
		"weight frac over": mut(func(p *Params) { p.WeightFrac = 1.5 }),
		"shard frac":       mut(func(p *Params) { p.ShardFrac = -0.1 }),
		"weight zipf":      mut(func(p *Params) { p.WeightZipfS = -1 }),
		"slot pages":       mut(func(p *Params) { p.SlotPages = 0 }),
		"arrival mean":     mut(func(p *Params) { p.ArrivalMean = -1 }),
		"burst mean":       mut(func(p *Params) { p.BurstMean = 0 }),
		"prefill":          mut(func(p *Params) { p.PrefillTokens = -1 }),
		"decode":           mut(func(p *Params) { p.DecodeTokens = 0 }),
		"session zipf":     mut(func(p *Params) { p.SessionZipfS = -1 }),
		"weight reads":     mut(func(p *Params) { p.WeightReads = 0 }),
		"kv window":        mut(func(p *Params) { p.KVReadWindow = -1 }),
		"migrate frac":     mut(func(p *Params) { p.MigrateFrac = 2 }),
		"max active":       mut(func(p *Params) { p.MaxActive = 0 }),
		"gap mean":         mut(func(p *Params) { p.GapMean = -1 }),
	}
	for name, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Arrival-gated knobs are free when arrivals are off.
	idle := Default()
	idle.ArrivalMean = 0
	idle.BurstMean, idle.DecodeTokens, idle.MaxActive = 0, 0, 0
	if err := idle.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBudgetAndAddressRange(t *testing.T) {
	am := testMap(t)
	recs := drain(t, New(Default(), am, 4, 2, 1, 30000, 7), 30000)
	for _, rec := range recs {
		if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
			t.Fatalf("address %#x outside shared heap", uint64(rec.Addr))
		}
	}
}

func TestReaderDeterminism(t *testing.T) {
	am := testMap(t)
	a := drain(t, New(Default(), am, 4, 1, 0, 8000, 3), 8000)
	b := drain(t, New(Default(), am, 4, 1, 0, 8000, 3), 8000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

// Prefix monotonicity: a longer budget extends the trace without rewriting
// the prefix — the property cluster-scale record scaling depends on.
func TestReaderPrefixMonotone(t *testing.T) {
	am := testMap(t)
	short := drain(t, New(Default(), am, 4, 0, 0, 5000, 11), 5000)
	long := drain(t, New(Default(), am, 4, 0, 0, 10000, 11), 10000)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix diverges at %d", i)
		}
	}
}

// The zero-arrival trace is the degenerate read-only limit: no writes, all
// accesses below the weight boundary, confined to the host's own shard.
func TestIdleScanIsReadOnlyOwnShard(t *testing.T) {
	am := testMap(t)
	p := Default()
	p.ArrivalMean = 0
	boundary := WeightBoundary(p, am, 4)
	l := newLayout(p, am, 4)
	for host := 0; host < 4; host++ {
		lo := am.SharedAddr(0) + config.Addr(l.shardStart(host))*config.PageBytes
		hi := lo + config.Addr(l.shardPages)*config.PageBytes
		for _, rec := range drain(t, New(p, am, 4, host, 0, 20000, 5), 20000) {
			if rec.Write {
				t.Fatal("idle scan wrote")
			}
			if rec.Addr >= boundary {
				t.Fatalf("idle scan read past weight boundary: %#x", uint64(rec.Addr))
			}
			if rec.Addr < lo || rec.Addr >= hi {
				t.Fatalf("host %d idle scan left its shard: %#x not in [%#x, %#x)",
					host, uint64(rec.Addr), uint64(lo), uint64(hi))
			}
		}
	}
}

func TestServingMixShape(t *testing.T) {
	am := testMap(t)
	c, err := Profile(Default(), am, 4, 2, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Records != 4*2*20000 {
		t.Fatalf("Records = %d", c.Records)
	}
	if c.WeightWrites != 0 {
		t.Fatalf("weights are read-only, got %d writes", c.WeightWrites)
	}
	if c.WeightReads == 0 || c.KVReads == 0 || c.KVWrites == 0 {
		t.Fatalf("missing traffic class: %+v", c)
	}
	if c.KVWrites <= c.WeightWrites {
		t.Fatal("KV region should take all the writes")
	}
	if c.Instructions < c.Records {
		t.Fatalf("Instructions %d < Records %d", c.Instructions, c.Records)
	}
}

func TestTinyHeapDoesNotPanic(t *testing.T) {
	c := config.Default()
	c.SharedBytes = config.PageBytes
	am := config.NewAddressMap(&c)
	recs := drain(t, New(Default(), am, 4, 3, 0, 2000, 1), 2000)
	for _, rec := range recs {
		if kind, _ := am.Region(rec.Addr); kind != config.RegionShared {
			t.Fatalf("address %#x outside shared heap", uint64(rec.Addr))
		}
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	am := testMap(t)
	for name, fn := range map[string]func(){
		"invalid params": func() { New(Params{}, am, 4, 0, 0, 10, 1) },
		"bad host":       func() { New(Default(), am, 4, 4, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProfileRejectsInvalid(t *testing.T) {
	am := testMap(t)
	if _, err := Profile(Params{}, am, 4, 1, 10, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}
