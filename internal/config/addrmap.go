package config

import (
	"fmt"
	"math"
)

// Addr is a unified physical address in the multi-host system's global
// address space (the CXL 3.1 GIM view): each host's exposed local memory and
// the CXL-DSM pool occupy disjoint ranges.
type Addr uint64

// Line returns the cache-line index of a.
func (a Addr) Line() Addr { return a >> LineShift }

// Page returns the page frame number of a.
func (a Addr) Page() Addr { return a >> PageShift }

// LineInPage returns the index (0..63) of a's cache line within its page.
func (a Addr) LineInPage() int { return int(a>>LineShift) & (LinesPerPage - 1) }

// PageBase returns the address of the first byte of a's page.
func (a Addr) PageBase() Addr { return a &^ (PageBytes - 1) }

// LineBase returns the address of the first byte of a's cache line.
func (a Addr) LineBase() Addr { return a &^ (LineBytes - 1) }

// AddressMap fixes the unified physical address layout:
//
//	[0, Hosts×privStride)           per-host private/local windows
//	[sharedBase, sharedBase+shared) the CXL-DSM pool
//
// The processor's PA range check in §4.3 ("Interaction with remapping
// tables") is exactly Region(): accesses that fall in the CXL-DSM range are
// shared-data accesses and may consult remapping tables; everything else is
// private local data and bypasses PIPM entirely.
type AddressMap struct {
	hosts       int
	privStride  Addr
	sharedBase  Addr
	sharedBytes Addr
}

// NewAddressMap builds the layout for a configuration.
func NewAddressMap(c *Config) AddressMap {
	stride := Addr(c.LocalDRAM.CapacityBytes)
	base := stride * Addr(c.Hosts)
	// Align the shared base to a 1 GB boundary for readable addresses.
	const gb = 1 << 30
	base = (base + gb - 1) &^ (gb - 1)
	return AddressMap{
		hosts:       c.Hosts,
		privStride:  stride,
		sharedBase:  base,
		sharedBytes: Addr(c.SharedBytes),
	}
}

// RegionKind classifies an address.
type RegionKind uint8

const (
	// RegionPrivate is a host's own local memory (code, stacks, kernel).
	RegionPrivate RegionKind = iota
	// RegionShared is the CXL-DSM pool.
	RegionShared
	// RegionInvalid is outside every mapped range.
	RegionInvalid
)

func (k RegionKind) String() string {
	switch k {
	case RegionPrivate:
		return "private"
	case RegionShared:
		return "shared"
	default:
		return "invalid"
	}
}

// Region classifies a and, for private addresses, identifies the owning host.
func (m AddressMap) Region(a Addr) (RegionKind, int) {
	if a < m.privStride*Addr(m.hosts) {
		return RegionPrivate, int(a / m.privStride)
	}
	if a >= m.sharedBase && a < m.sharedBase+m.sharedBytes {
		return RegionShared, -1
	}
	return RegionInvalid, -1
}

// SharedBase returns the first address of the CXL-DSM pool.
func (m AddressMap) SharedBase() Addr { return m.sharedBase }

// SharedBytes returns the size of the CXL-DSM pool in bytes.
func (m AddressMap) SharedBytes() Addr { return m.sharedBytes }

// SharedPages returns the number of pages in the CXL-DSM pool.
func (m AddressMap) SharedPages() int64 {
	return int64((m.sharedBytes + PageBytes - 1) / PageBytes)
}

// SharedAddr returns the address of byte off within the shared pool.
// It panics when off is out of range: generators computing shared addresses
// out of range is always a bug worth failing loudly on.
func (m AddressMap) SharedAddr(off Addr) Addr {
	if off >= m.sharedBytes {
		panic(fmt.Sprintf("config: shared offset %#x out of range (%#x)", uint64(off), uint64(m.sharedBytes)))
	}
	return m.sharedBase + off
}

// SharedPageIndex converts a shared address to a zero-based page index within
// the pool. The address must be in the shared region.
func (m AddressMap) SharedPageIndex(a Addr) int64 {
	return int64((a - m.sharedBase) >> PageShift)
}

// SplitSharedPages carves the shared pool's page range into consecutive
// sub-regions proportional to the given non-negative weights — the region
// sizing seam the mechanistic workload generators use (weights vs KV-cache,
// metadata vs data extents). Cumulative rounding makes the carve
// deterministic and exact: the returned counts always sum to SharedPages(),
// every count is ≥ 0, and equal weight vectors always produce equal carves.
// Non-finite or negative weights count as zero; an all-zero vector splits
// evenly.
func (m AddressMap) SplitSharedPages(weights ...float64) []int64 {
	if len(weights) == 0 {
		panic("config: SplitSharedPages needs at least one weight")
	}
	total := m.SharedPages()
	w := make([]float64, len(weights))
	var sum float64
	for i, x := range weights {
		if x > 0 && x == x && x <= math.MaxFloat64 {
			w[i] = x
			sum += x
		}
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		sum = float64(len(w))
	}
	out := make([]int64, len(w))
	var cum float64
	prev := int64(0)
	for i, x := range w {
		cum += x
		edge := int64(float64(total) * (cum / sum))
		if i == len(w)-1 || edge > total {
			edge = total
		}
		if edge < prev {
			edge = prev
		}
		out[i] = edge - prev
		prev = edge
	}
	out[len(out)-1] += total - prev
	return out
}

// PrivateAddr returns the address of byte off within host h's private window.
func (m AddressMap) PrivateAddr(h int, off Addr) Addr {
	if h < 0 || h >= m.hosts {
		panic(fmt.Sprintf("config: host %d out of range (%d hosts)", h, m.hosts))
	}
	if off >= m.privStride {
		panic(fmt.Sprintf("config: private offset %#x out of range (%#x)", uint64(off), uint64(m.privStride)))
	}
	return Addr(h)*m.privStride + off
}
