package config

import "testing"

// FuzzAddressMap fuzzes the unified address-space layout: for arbitrary
// (hosts, local capacity, shared size) geometries, region classification
// must partition the space consistently and the constructor round-trips
// (PrivateAddr/SharedAddr are the inverses of Region on their ranges).
func FuzzAddressMap(f *testing.F) {
	f.Add(uint8(4), uint64(1<<30), uint64(16<<20), uint64(0))
	f.Add(uint8(1), uint64(4096), uint64(4096), uint64(4095))
	f.Add(uint8(32), uint64(1<<20), uint64(1<<32), uint64(1<<40))
	// Representation boundaries: 32→33 hosts widens the global remapping
	// entry, 64→65 switches sharer sets to the summary form, 256 is the cap.
	f.Add(uint8(31), uint64(1<<30), uint64(16<<20), uint64(1<<20))
	f.Add(uint8(32), uint64(1<<30), uint64(16<<20), uint64(1<<20))
	f.Add(uint8(63), uint64(1<<30), uint64(16<<20), uint64(1<<20))
	f.Add(uint8(64), uint64(1<<30), uint64(16<<20), uint64(1<<20))
	f.Add(uint8(255), uint64(1<<33), uint64(1<<30), uint64(1<<45))

	f.Fuzz(func(t *testing.T, hosts uint8, dram, shared, probe uint64) {
		c := Default()
		c.Hosts = 1 + int(hosts) // full 1..256 cluster range
		c.LocalDRAM.CapacityBytes = int64(1+dram%(1<<40)) &^ (PageBytes - 1)
		if c.LocalDRAM.CapacityBytes < PageBytes {
			c.LocalDRAM.CapacityBytes = PageBytes
		}
		c.SharedBytes = int64(1+shared%(1<<40)) &^ (PageBytes - 1)
		if c.SharedBytes < PageBytes {
			c.SharedBytes = PageBytes
		}
		m := NewAddressMap(&c)

		// The shared pool must not overlap any private window.
		if m.SharedBase() < Addr(c.LocalDRAM.CapacityBytes)*Addr(c.Hosts) {
			t.Fatalf("shared base %#x overlaps private windows", uint64(m.SharedBase()))
		}

		// Private round-trip: every (host, offset) classifies back.
		h := int(probe % uint64(c.Hosts))
		off := Addr(probe % uint64(c.LocalDRAM.CapacityBytes))
		pa := m.PrivateAddr(h, off)
		if kind, owner := m.Region(pa); kind != RegionPrivate || owner != h {
			t.Fatalf("PrivateAddr(%d, %#x) = %#x classified %v/%d", h, uint64(off), uint64(pa), kind, owner)
		}

		// Shared round-trip: offset → address → region and page index.
		soff := Addr(probe % uint64(c.SharedBytes))
		sa := m.SharedAddr(soff)
		if kind, _ := m.Region(sa); kind != RegionShared {
			t.Fatalf("SharedAddr(%#x) = %#x classified %v", uint64(soff), uint64(sa), kind)
		}
		if pi := m.SharedPageIndex(sa); pi < 0 || pi >= m.SharedPages() {
			t.Fatalf("page index %d outside [0, %d)", pi, m.SharedPages())
		}
		if sa != m.SharedBase()+soff {
			t.Fatalf("SharedAddr(%#x) = %#x, want base+off", uint64(soff), uint64(sa))
		}

		// An arbitrary probe address classifies into exactly one region, and
		// the gap between the windows and the pool is invalid.
		kind, owner := m.Region(Addr(probe))
		switch kind {
		case RegionPrivate:
			if owner < 0 || owner >= c.Hosts {
				t.Fatalf("private owner %d out of range", owner)
			}
			if Addr(probe) >= Addr(c.LocalDRAM.CapacityBytes)*Addr(c.Hosts) {
				t.Fatalf("address %#x beyond private windows classified private", probe)
			}
		case RegionShared:
			if Addr(probe) < m.SharedBase() || Addr(probe) >= m.SharedBase()+m.SharedBytes() {
				t.Fatalf("address %#x outside pool classified shared", probe)
			}
		case RegionInvalid:
			inPriv := Addr(probe) < Addr(c.LocalDRAM.CapacityBytes)*Addr(c.Hosts)
			inShared := Addr(probe) >= m.SharedBase() && Addr(probe) < m.SharedBase()+m.SharedBytes()
			if inPriv || inShared {
				t.Fatalf("mapped address %#x classified invalid", probe)
			}
		}
	})
}
