package config

import (
	"math"
	"testing"
	"testing/quick"

	"pipm/internal/sim"
)

func TestDefaultIsValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	c := Default()
	// Spot-check the Table 2 values the rest of the system depends on.
	if c.Hosts != 4 || c.CoresPerHost != 4 {
		t.Errorf("hosts×cores = %d×%d, want 4×4", c.Hosts, c.CoresPerHost)
	}
	if c.Width != 6 || c.ROB != 224 || c.LoadQ != 72 || c.StoreQ != 56 {
		t.Errorf("core = %d-wide/%d ROB/%d LQ/%d SQ", c.Width, c.ROB, c.LoadQ, c.StoreQ)
	}
	if c.L1D.SizeBytes != 32<<10 || c.L1D.Ways != 8 {
		t.Errorf("L1D = %dB %d-way", c.L1D.SizeBytes, c.L1D.Ways)
	}
	if got := c.CoreClock().ToCycles(c.L1D.Latency); got != 4 {
		t.Errorf("L1 latency = %d cycles, want 4", got)
	}
	if got := c.CoreClock().ToCycles(c.LLC.Latency); got != 24 {
		t.Errorf("LLC latency = %d cycles, want 24", got)
	}
	if c.CXL.LinkLatency != 50*sim.Nanosecond || c.CXL.LinkBW != 5e9 {
		t.Errorf("CXL link = %v/%.0f", c.CXL.LinkLatency, c.CXL.LinkBW)
	}
	if c.CXL.DirSets != 2048 || c.CXL.DirWays != 16 || c.CXL.DirSlices != 16 {
		t.Errorf("device dir = %d set %d way %d slices", c.CXL.DirSets, c.CXL.DirWays, c.CXL.DirSlices)
	}
	if c.PIPM.MigrationThreshold != 8 {
		t.Errorf("threshold = %d, want 8", c.PIPM.MigrationThreshold)
	}
	if c.PIPM.GlobalRemapCacheBytes != 16<<10 || c.PIPM.LocalRemapCacheBytes != 1<<20 {
		t.Errorf("remap caches = %d/%d", c.PIPM.GlobalRemapCacheBytes, c.PIPM.LocalRemapCacheBytes)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero hosts", func(c *Config) { c.Hosts = 0 }},
		{"too many hosts", func(c *Config) { c.Hosts = MaxHosts + 1 }},
		{"zero cores", func(c *Config) { c.CoresPerHost = 0 }},
		{"zero width", func(c *Config) { c.Width = 0 }},
		{"zero rob", func(c *Config) { c.ROB = 0 }},
		{"tiny shared", func(c *Config) { c.SharedBytes = 100 }},
		{"shared exceeds pool", func(c *Config) { c.SharedBytes = c.CXLDRAM.CapacityBytes + 1 }},
		{"bad l1 ways", func(c *Config) { c.L1D.Ways = 0 }},
		{"non-pow2 sets", func(c *Config) { c.LLC.SizeBytes = 3 << 20 }},
		{"zero channels", func(c *Config) { c.LocalDRAM.Channels = 0 }},
		{"zero link bw", func(c *Config) { c.CXL.LinkBW = 0 }},
		{"negative switch hops", func(c *Config) { c.CXL.SwitchHops = -1 }},
		{"zero batch", func(c *Config) { c.Kernel.BatchPages = 0 }},
		{"threshold too big", func(c *Config) { c.PIPM.MigrationThreshold = 64 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

// TestValidateHostRange exercises the cluster host range, including both
// representation boundaries: 32→33 widens the global remapping entry from
// the paper's packed 2 bytes to 3, and 64→65 switches the directory sharer
// set from the exact bitmask to the region-summary form (DESIGN.md §16).
func TestValidateHostRange(t *testing.T) {
	for _, hosts := range []int{1, 2, 4, 16, 32, 33, 64, 65, 128, 255, 256} {
		c := Default()
		c.Hosts = hosts
		if err := c.Validate(); err != nil {
			t.Errorf("Hosts=%d: Validate rejected a legal cluster: %v", hosts, err)
		}
	}
	for _, hosts := range []int{-1, 0, 257, 1024} {
		c := Default()
		c.Hosts = hosts
		if err := c.Validate(); err == nil {
			t.Errorf("Hosts=%d: Validate accepted an out-of-range cluster", hosts)
		}
	}
}

func TestGlobalRemapEntrySizeBoundaries(t *testing.T) {
	c := Default()
	for _, tc := range []struct{ hosts, want int }{
		{1, 2}, {32, 2}, {33, 3}, {64, 3}, {65, 3}, {256, 3},
	} {
		c.Hosts = tc.hosts
		if got := c.GlobalRemapEntrySize(); got != tc.want {
			t.Errorf("Hosts=%d: GlobalRemapEntrySize = %d, want %d", tc.hosts, got, tc.want)
		}
	}
	// The paper-scale entry keeps the cache entry count — and with it every
	// 4-host golden digest — unchanged.
	c.Hosts = 4
	if got := c.GlobalRemapCacheEntries(); got != (16<<10)/2 {
		t.Errorf("4-host global cache entries = %d, want %d", got, (16<<10)/2)
	}
	c.Hosts = 256
	if got := c.GlobalRemapCacheEntries(); got != (16<<10)/3 {
		t.Errorf("256-host global cache entries = %d, want %d", got, (16<<10)/3)
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, Ways: 8}
	if got := c.Sets(); got != 64 {
		t.Fatalf("32KB 8-way: Sets() = %d, want 64", got)
	}
	llc := CacheConfig{SizeBytes: 2 << 20, Ways: 16}
	if got := llc.Sets(); got != 2048 {
		t.Fatalf("2MB 16-way: Sets() = %d, want 2048", got)
	}
}

func TestRemapCacheEntries(t *testing.T) {
	c := Default()
	if got := c.GlobalRemapCacheEntries(); got != (16<<10)/2 {
		t.Fatalf("global entries = %d, want %d", got, (16<<10)/2)
	}
	if got := c.LocalRemapCacheEntries(); got != (1<<20)/4 {
		t.Fatalf("local entries = %d, want %d", got, (1<<20)/4)
	}
	c.PIPM.GlobalRemapCacheBytes = -1
	if got := c.GlobalRemapCacheEntries(); got != -1 {
		t.Fatalf("infinite cache = %d entries, want -1", got)
	}
	c.PIPM.LocalRemapCacheBytes = 0
	if got := c.LocalRemapCacheEntries(); got != 0 {
		t.Fatalf("disabled cache = %d entries, want 0", got)
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12345>>6 {
		t.Errorf("Line() = %#x", uint64(a.Line()))
	}
	if a.Page() != 0x12 {
		t.Errorf("Page() = %#x, want 0x12", uint64(a.Page()))
	}
	if a.PageBase() != 0x12000 {
		t.Errorf("PageBase() = %#x, want 0x12000", uint64(a.PageBase()))
	}
	if a.LineBase() != 0x12340 {
		t.Errorf("LineBase() = %#x, want 0x12340", uint64(a.LineBase()))
	}
	if got := a.LineInPage(); got != 0xD {
		t.Errorf("LineInPage() = %d, want 13", got)
	}
}

func TestAddressMapRegions(t *testing.T) {
	c := Default()
	m := NewAddressMap(&c)

	// Private windows map to the right host.
	for h := 0; h < c.Hosts; h++ {
		a := m.PrivateAddr(h, 4096)
		kind, owner := m.Region(a)
		if kind != RegionPrivate || owner != h {
			t.Fatalf("PrivateAddr(%d): Region = %v/%d", h, kind, owner)
		}
	}

	// Shared addresses classify as shared.
	a := m.SharedAddr(0)
	if kind, _ := m.Region(a); kind != RegionShared {
		t.Fatalf("SharedAddr(0): Region = %v", kind)
	}
	last := m.SharedAddr(Addr(c.SharedBytes - 1))
	if kind, _ := m.Region(last); kind != RegionShared {
		t.Fatalf("last shared byte: Region = %v", kind)
	}

	// One past the end is invalid.
	if kind, _ := m.Region(last + 1); kind != RegionInvalid {
		t.Fatalf("past-the-end: Region = %v, want invalid", kind)
	}

	// Page indexing round-trips.
	p := m.SharedAddr(5 * PageBytes)
	if idx := m.SharedPageIndex(p); idx != 5 {
		t.Fatalf("SharedPageIndex = %d, want 5", idx)
	}
}

func TestAddressMapPanics(t *testing.T) {
	c := Default()
	m := NewAddressMap(&c)
	for name, fn := range map[string]func(){
		"shared out of range":  func() { m.SharedAddr(Addr(c.SharedBytes)) },
		"bad host":             func() { m.PrivateAddr(c.Hosts, 0) },
		"private out of range": func() { m.PrivateAddr(0, Addr(c.LocalDRAM.CapacityBytes)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every shared offset classifies as shared, and private/shared
// ranges never overlap.
func TestAddressMapDisjointProperty(t *testing.T) {
	c := Default()
	m := NewAddressMap(&c)
	f := func(off uint32, h uint8) bool {
		so := Addr(off) % Addr(c.SharedBytes)
		sa := m.SharedAddr(so)
		kind, _ := m.Region(sa)
		if kind != RegionShared {
			return false
		}
		host := int(h) % c.Hosts
		po := Addr(off) % Addr(c.LocalDRAM.CapacityBytes)
		pa := m.PrivateAddr(host, po)
		k2, owner := m.Region(pa)
		return k2 == RegionPrivate && owner == host && pa != sa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionKindString(t *testing.T) {
	if RegionPrivate.String() != "private" || RegionShared.String() != "shared" || RegionInvalid.String() != "invalid" {
		t.Fatal("RegionKind.String mismatch")
	}
}

func TestSharedPages(t *testing.T) {
	c := Default()
	c.SharedBytes = 10*PageBytes + 1
	if got := c.SharedPages(); got != 11 {
		t.Fatalf("SharedPages = %d, want 11", got)
	}
}

func TestSplitSharedPages(t *testing.T) {
	c := Default()
	c.SharedBytes = 1024 * PageBytes
	m := NewAddressMap(&c)
	cases := []struct {
		name    string
		weights []float64
		want    []int64
	}{
		{"even halves", []float64{1, 1}, []int64{512, 512}},
		{"three quarters", []float64{0.75, 0.25}, []int64{768, 256}},
		{"daxfs eighth", []float64{0.125, 0.875}, []int64{128, 896}},
		{"single", []float64{1}, []int64{1024}},
		{"zero weight", []float64{0, 1}, []int64{0, 1024}},
		{"all zero splits evenly", []float64{0, 0}, []int64{512, 512}},
		{"negative counts as zero", []float64{-3, 1}, []int64{0, 1024}},
	}
	for _, tc := range cases {
		got := m.SplitSharedPages(tc.weights...)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %v parts", tc.name, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: got %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

// Property: any weight vector carves into non-negative parts that sum exactly
// to SharedPages.
func TestSplitSharedPagesExactProperty(t *testing.T) {
	c := Default()
	m := NewAddressMap(&c)
	f := func(a, b, cc uint16, pages uint8) bool {
		cfg := Default()
		cfg.SharedBytes = (1 + int64(pages)) * PageBytes
		mm := NewAddressMap(&cfg)
		parts := mm.SplitSharedPages(float64(a), float64(b), float64(cc))
		var sum int64
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum == mm.SharedPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if got := m.SplitSharedPages(math.NaN(), math.Inf(1), 1); got[0] != 0 || got[1] != 0 {
		t.Fatalf("non-finite weights should count as zero, got %v", got)
	}
}

func TestSplitSharedPagesPanicsOnEmpty(t *testing.T) {
	c := Default()
	m := NewAddressMap(&c)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.SplitSharedPages()
}
