// Package config encodes the evaluated system configuration (Table 2 of the
// PIPM paper) plus the knobs the sensitivity studies sweep. A Config is a
// plain value: copy it, tweak fields, and hand it to machine.New. The zero
// value is not usable; start from Default().
package config

import (
	"fmt"

	"pipm/internal/sim"
)

// Fixed architectural granularities. These are pervasive enough (address
// splitting, bitmap widths, table formats) that making them configurable
// would only add failure modes; the paper uses the same values.
const (
	LineBytes     = 64
	PageBytes     = 4096
	LinesPerPage  = PageBytes / LineBytes // 64: one uint64 bitmap per page
	LineShift     = 6
	PageShift     = 12
	PageLineShift = PageShift - LineShift
)

// CacheConfig describes one set-associative cache level.
type CacheConfig struct {
	SizeBytes int      // total capacity
	Ways      int      // associativity
	Latency   sim.Time // round-trip hit latency
}

// Sets returns the number of sets implied by size and associativity.
func (c CacheConfig) Sets() int { return c.SizeBytes / (LineBytes * c.Ways) }

// DRAMConfig describes one group of DDR channels (a host's local DRAM or the
// CXL node's pooled DRAM).
type DRAMConfig struct {
	Channels      int
	BanksPerChan  int
	CapacityBytes int64
	// DDR timing, from Table 2's tRC-tRCD-tCL-tRP = 48-15-20-15 (ns).
	TRC  sim.Time
	TRCD sim.Time
	TCL  sim.Time
	TRP  sim.Time
	// Peak per-channel data-bus bandwidth in bytes/second
	// (DDR5-4800 ≈ 38.4 GB/s).
	ChannelBW float64
}

// CXLConfig describes the fabric between hosts and the memory node.
type CXLConfig struct {
	LinkLatency sim.Time // propagation per direction (Table 2: 50ns)
	LinkBW      float64  // bytes/second per direction (Table 2: 5 GB/s)
	SwitchHops  int      // extra store-and-forward hops (0 = direct attach)

	// Device coherence directory: Sets × Ways per slice, Slices slices.
	DirSets    int
	DirWays    int
	DirSlices  int
	DirLatency sim.Time // round-trip lookup (32 cycles @ 2 GHz = 16ns)
}

// PIPMConfig holds the parameters of the PIPM hardware.
type PIPMConfig struct {
	// MigrationThreshold is the majority-vote promotion threshold: a page is
	// partially migrated to a host once that host leads all others by this
	// many accesses. The local (revocation) counter also initializes here.
	MigrationThreshold int

	// Remapping caches. A size of 0 disables the cache (every lookup walks
	// the in-memory table); a negative size models an infinite cache.
	GlobalRemapCacheBytes int // on the CXL device (default 16 KB)
	GlobalRemapCacheWays  int
	GlobalRemapLatency    sim.Time // 4-cycle RT @ 4 GHz = 1ns
	LocalRemapCacheBytes  int      // on each host RC (default 1 MB)
	LocalRemapCacheWays   int
	LocalRemapLatency     sim.Time // 8-cycle RT @ 4 GHz = 2ns

	// MigrateOnExclusiveEviction extends the paper's Loc-WB trigger (local
	// directory state M) to E-state evictions, so read-mostly blocks also
	// migrate incrementally. See DESIGN.md §1; on by default.
	MigrateOnExclusiveEviction bool
}

// GlobalRemapEntryBytes and LocalRemapEntryBytes give the per-entry storage
// the paper's §4.4 space-overhead analysis uses, at the paper's 4-host
// (5-bit host ID) scale. Cluster configurations widen the global entry; use
// Config.GlobalRemapEntrySize for the per-config value.
const (
	GlobalRemapEntryBytes = 2 // 5b cur host + 5b cand host + 6b counter
	LocalRemapEntryBytes  = 4 // 28b local PFN + 4b counter
)

// MaxHosts is the widest supported cluster: host IDs fit 8 bits in the
// widened global remapping entry (DESIGN.md §16).
const MaxHosts = 256

// GlobalRemapEntrySize returns the bytes one global remapping entry costs
// at this configuration's host width: the paper's packed 2-byte entry
// (5b+5b+6b) up to 32 hosts, a 3-byte entry (8b+8b+6b+2b spare) beyond.
func (c *Config) GlobalRemapEntrySize() int {
	if c.Hosts <= 32 {
		return GlobalRemapEntryBytes
	}
	return 3
}

// KernelMigrationConfig models the software costs of page-granularity,
// kernel-based migration (Nomad, Memtis, HeMem, OS-skew).
type KernelMigrationConfig struct {
	Interval      sim.Time // policy epoch (default 10ms)
	InitiatorCost sim.Time // per-4KB cost on the initiating core (20µs)
	RemoteCost    sim.Time // per-batch TLB-shootdown cost on other cores (5µs)
	BatchPages    int      // pages migrated per batch (TLB-shootdown batching)
	MaxLocalFrac  float64  // cap on local-DRAM fraction usable for promotion
	// MaxPagesPerEpoch rate-limits migration per policy epoch, as kernel
	// migration daemons do; 0 means unlimited.
	MaxPagesPerEpoch int
}

// Config is the complete machine description.
type Config struct {
	Hosts        int
	CoresPerHost int

	// Core model (Table 2: 4 GHz, 6-wide, 224 ROB, 72 LQ, 56 SQ).
	CoreHz int64
	Width  int
	ROB    int
	LoadQ  int
	StoreQ int
	MSHRs  int // outstanding L1 misses per core

	L1D CacheConfig
	LLC CacheConfig // per host, shared; SizeBytes is the per-core slice

	// TLBEntries enables a per-core TLB of this many 4 KB entries
	// (0 disables translation modelling, the scaled default). Misses pay
	// TLBWalkLatency; kernel page migration invalidates entries.
	TLBEntries     int
	TLBWays        int
	TLBWalkLatency sim.Time

	LocalDRAM DRAMConfig // per host
	CXLDRAM   DRAMConfig // at the memory node
	CXL       CXLConfig

	PIPM   PIPMConfig
	Kernel KernelMigrationConfig

	// SharedBytes is the size of the shared heap the workload places in
	// CXL-DSM. Generators size their data to it.
	SharedBytes int64
}

// Default returns the paper's Table 2 scaled-down configuration. The shared
// footprint defaults to a laptop-friendly size; the harness scales it.
func Default() Config {
	return Config{
		Hosts:        4,
		CoresPerHost: 4,
		CoreHz:       4_000_000_000,
		Width:        6,
		ROB:          224,
		LoadQ:        72,
		StoreQ:       56,
		MSHRs:        8,

		L1D:            CacheConfig{SizeBytes: 32 << 10, Ways: 8, Latency: sim.Nanosecond},     // 4 cyc @ 4GHz
		LLC:            CacheConfig{SizeBytes: 2 << 20, Ways: 16, Latency: 6 * sim.Nanosecond}, // 24 cyc @ 4GHz
		TLBEntries:     0,                                                                      // translation modelling off by default
		TLBWays:        4,
		TLBWalkLatency: 60 * sim.Nanosecond,
		LocalDRAM: DRAMConfig{Channels: 1, BanksPerChan: 32, CapacityBytes: 32 << 30, //nolint
			TRC: 48 * sim.Nanosecond, TRCD: 15 * sim.Nanosecond, TCL: 20 * sim.Nanosecond,
			TRP: 15 * sim.Nanosecond, ChannelBW: 38.4e9},
		CXLDRAM: DRAMConfig{Channels: 2, BanksPerChan: 32, CapacityBytes: 128 << 30,
			TRC: 48 * sim.Nanosecond, TRCD: 15 * sim.Nanosecond, TCL: 20 * sim.Nanosecond,
			TRP: 15 * sim.Nanosecond, ChannelBW: 38.4e9},
		CXL: CXLConfig{
			LinkLatency: 50 * sim.Nanosecond,
			LinkBW:      5e9,
			DirSets:     2048, DirWays: 16, DirSlices: 16,
			DirLatency: 16 * sim.Nanosecond,
		},
		PIPM: PIPMConfig{
			MigrationThreshold:         8,
			GlobalRemapCacheBytes:      16 << 10,
			GlobalRemapCacheWays:       8,
			GlobalRemapLatency:         sim.Nanosecond,
			LocalRemapCacheBytes:       1 << 20,
			LocalRemapCacheWays:        8,
			LocalRemapLatency:          2 * sim.Nanosecond,
			MigrateOnExclusiveEviction: true,
		},
		Kernel: KernelMigrationConfig{
			Interval:         10 * sim.Millisecond,
			InitiatorCost:    20 * sim.Microsecond,
			RemoteCost:       5 * sim.Microsecond,
			BatchPages:       32,
			MaxLocalFrac:     0.25,
			MaxPagesPerEpoch: 256,
		},
		SharedBytes: 64 << 20,
	}
}

// Validate reports the first structural problem with the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Hosts < 1 || c.Hosts > MaxHosts:
		return fmt.Errorf("config: Hosts = %d, want 1..%d (host IDs are 8 bits)", c.Hosts, MaxHosts)
	case c.CoresPerHost < 1:
		return fmt.Errorf("config: CoresPerHost = %d, want ≥ 1", c.CoresPerHost)
	case c.CoreHz <= 0:
		return fmt.Errorf("config: CoreHz = %d, want > 0", c.CoreHz)
	case c.Width < 1:
		return fmt.Errorf("config: Width = %d, want ≥ 1", c.Width)
	case c.ROB < 1 || c.MSHRs < 1:
		return fmt.Errorf("config: ROB/MSHRs must be ≥ 1")
	case c.SharedBytes < PageBytes:
		return fmt.Errorf("config: SharedBytes = %d, want ≥ one page", c.SharedBytes)
	case c.SharedBytes > c.CXLDRAM.CapacityBytes:
		return fmt.Errorf("config: shared heap (%d) exceeds CXL capacity (%d)", c.SharedBytes, c.CXLDRAM.CapacityBytes)
	case c.Kernel.BatchPages < 1:
		return fmt.Errorf("config: Kernel.BatchPages = %d, want ≥ 1", c.Kernel.BatchPages)
	case c.PIPM.MigrationThreshold < 1 || c.PIPM.MigrationThreshold > 63:
		return fmt.Errorf("config: MigrationThreshold = %d, want 1..63 (global counter is 6 bits)", c.PIPM.MigrationThreshold)
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1D", c.L1D}, {"LLC", c.LLC}} {
		if cc.c.Ways < 1 || cc.c.SizeBytes < LineBytes*cc.c.Ways {
			return fmt.Errorf("config: %s: size %dB with %d ways is not a valid cache", cc.name, cc.c.SizeBytes, cc.c.Ways)
		}
		if s := cc.c.Sets(); s&(s-1) != 0 {
			return fmt.Errorf("config: %s: %d sets is not a power of two", cc.name, s)
		}
	}
	for _, dc := range []struct {
		name string
		c    DRAMConfig
	}{{"LocalDRAM", c.LocalDRAM}, {"CXLDRAM", c.CXLDRAM}} {
		if dc.c.Channels < 1 || dc.c.BanksPerChan < 1 || dc.c.ChannelBW <= 0 {
			return fmt.Errorf("config: %s: channels/banks/bandwidth must be positive", dc.name)
		}
	}
	if c.CXL.LinkBW <= 0 || c.CXL.DirSlices < 1 || c.CXL.DirSets < 1 || c.CXL.DirWays < 1 {
		return fmt.Errorf("config: CXL link/directory parameters must be positive")
	}
	if c.CXL.SwitchHops < 0 {
		return fmt.Errorf("config: CXL.SwitchHops = %d, want ≥ 0", c.CXL.SwitchHops)
	}
	return nil
}

// TotalCores returns Hosts × CoresPerHost.
func (c *Config) TotalCores() int { return c.Hosts * c.CoresPerHost }

// SharedPages returns the number of 4 KB pages in the shared heap.
func (c *Config) SharedPages() int64 { return (c.SharedBytes + PageBytes - 1) / PageBytes }

// CoreClock returns the core clock domain.
func (c *Config) CoreClock() sim.Clock { return sim.NewClock(c.CoreHz) }

// GlobalRemapCacheEntries converts the configured global remapping cache size
// to entries (GlobalRemapEntrySize each). Negative sizes mean infinite; zero
// disables.
func (c *Config) GlobalRemapCacheEntries() int {
	if c.PIPM.GlobalRemapCacheBytes < 0 {
		return -1
	}
	return c.PIPM.GlobalRemapCacheBytes / c.GlobalRemapEntrySize()
}

// LocalRemapCacheEntries converts the configured local remapping cache size
// to entries (4 B each). Negative sizes mean infinite; zero disables.
func (c *Config) LocalRemapCacheEntries() int {
	if c.PIPM.LocalRemapCacheBytes < 0 {
		return -1
	}
	return c.PIPM.LocalRemapCacheBytes / LocalRemapEntryBytes
}
