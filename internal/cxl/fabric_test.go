package cxl

import (
	"testing"

	"pipm/internal/config"
	"pipm/internal/sim"
)

func testFabric(hops int) *Fabric {
	c := config.Default()
	c.CXL.SwitchHops = hops
	return New(c.Hosts, c.CXL)
}

func TestDirectAttachLatency(t *testing.T) {
	f := testFabric(0)
	// 64B data + 16B header at 5 GB/s = 16ns serialization, +50ns prop.
	got := f.HostToDevice(0, 0, DataBytes)
	bytes := float64(DataBytes + HeaderBytes)
	want := sim.Time(bytes/5e9*float64(sim.Second)) + 50*sim.Nanosecond
	if got != want {
		t.Fatalf("HostToDevice(64B) = %v, want %v", got, want)
	}
}

func TestSwitchHopAddsLatency(t *testing.T) {
	direct := testFabric(0).HostToDevice(0, 0, DataBytes)
	switched := testFabric(1).HostToDevice(0, 0, DataBytes)
	if switched-direct != 50*sim.Nanosecond {
		t.Fatalf("switch hop adds %v, want 50ns", switched-direct)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	f := testFabric(0)
	// Saturate the up direction; down transfers must be unaffected.
	for i := 0; i < 100; i++ {
		f.HostToDevice(0, 0, DataBytes)
	}
	down := f.DeviceToHost(0, 0, DataBytes)
	fresh := testFabric(0).DeviceToHost(0, 0, DataBytes)
	if down != fresh {
		t.Fatalf("down direction delayed by up traffic: %v vs %v", down, fresh)
	}
}

func TestPerHostLinksIndependent(t *testing.T) {
	f := testFabric(0)
	for i := 0; i < 100; i++ {
		f.HostToDevice(0, 0, DataBytes)
	}
	other := f.HostToDevice(0, 1, DataBytes)
	fresh := testFabric(0).HostToDevice(0, 1, DataBytes)
	if other != fresh {
		t.Fatalf("host 1's link delayed by host 0 traffic")
	}
}

func TestHostToHostRoutesThroughDevice(t *testing.T) {
	f := testFabric(0)
	got := f.HostToHost(0, 0, 1, DataBytes)
	oneWay := testFabric(0).HostToDevice(0, 0, DataBytes)
	if got < 2*oneWay {
		t.Fatalf("HostToHost = %v, want ≥ two link traversals (%v)", got, 2*oneWay)
	}
	if f.UpBytes(0) == 0 || f.DownBytes(1) == 0 {
		t.Fatal("HostToHost did not account bytes on both legs")
	}
}

func TestDirLookupSlicing(t *testing.T) {
	f := testFabric(0)
	// Lines hashing to different slices do not queue behind each other.
	a := f.DirLookup(0, 0)
	b := f.DirLookup(0, 1)
	if a != b {
		t.Fatalf("independent slices gave different free-start latencies: %v vs %v", a, b)
	}
	// Same slice queues.
	c := f.DirLookup(0, 0)
	if c <= a {
		t.Fatalf("same-slice lookup did not queue: %v vs %v", c, a)
	}
	want := 16 * sim.Nanosecond
	if a != want {
		t.Fatalf("dir lookup latency = %v, want %v", a, want)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	f := testFabric(0)
	// Push 1000 data messages down host 0's up-link at time 0; sustained
	// rate must not exceed 5 GB/s.
	var done sim.Time
	n := 1000
	for i := 0; i < n; i++ {
		done = f.HostToDevice(0, 0, DataBytes)
	}
	bytes := float64(n * (DataBytes + HeaderBytes))
	gbps := bytes / (done - 50*sim.Nanosecond).Seconds() / 1e9
	if gbps > 5.01 {
		t.Fatalf("sustained %.2f GB/s exceeds 5 GB/s link", gbps)
	}
	if gbps < 4.9 {
		t.Fatalf("sustained %.2f GB/s, want ≈5 under saturation", gbps)
	}
}

func TestBurstsSerializePerDirection(t *testing.T) {
	// Hand-computed finish times at 1 GB/s (= 1000 ps/byte) and 100 ns
	// propagation: a 1000-byte payload carries a 16-byte header, so each
	// burst serializes for 1016 × 1000 ps = 1.016 µs.
	c := config.Default()
	c.CXL.LinkBW = 1e9
	c.CXL.LinkLatency = 100 * sim.Nanosecond
	c.CXL.SwitchHops = 0
	f := New(c.Hosts, c.CXL)

	const payload = 1000
	serial := sim.Time((payload + HeaderBytes) * 1000) // ps
	prop := 100 * sim.Nanosecond

	// First burst on host 0's up-link owns the wire immediately.
	first := f.HostToDevice(0, 0, payload)
	if want := serial + prop; first != want {
		t.Fatalf("first up burst finished at %v, want %v", first, want)
	}
	// Second burst issued at the same instant must wait for the full
	// serialization of the first: it finishes exactly one serial later.
	second := f.HostToDevice(0, 0, payload)
	if want := 2*serial + prop; second != want {
		t.Fatalf("queued up burst finished at %v, want %v", second, want)
	}
	// The opposite direction is an independent wire: a down burst issued at
	// time 0 proceeds as if the link were idle.
	down := f.DeviceToHost(0, 0, payload)
	if want := serial + prop; down != want {
		t.Fatalf("down burst finished at %v, want %v (delayed by up traffic)", down, want)
	}
	// All queueing in the fabric is the second up burst's wait.
	if got := f.QueueDelay(); got != serial {
		t.Fatalf("QueueDelay = %v, want %v", got, serial)
	}
}

func TestAccountingAndReset(t *testing.T) {
	f := testFabric(0)
	f.HostToDevice(0, 0, DataBytes)
	f.DeviceToHost(0, 2, 0)
	if f.TotalBytes() != uint64(DataBytes+2*HeaderBytes) {
		t.Fatalf("TotalBytes = %d", f.TotalBytes())
	}
	if f.UpBytes(0) != DataBytes+HeaderBytes || f.DownBytes(2) != HeaderBytes {
		t.Fatal("per-direction accounting wrong")
	}
	if u := f.LinkUtilization(sim.Microsecond); u <= 0 {
		t.Fatalf("LinkUtilization = %v, want > 0", u)
	}
	f.Reset()
	if f.TotalBytes() != 0 || f.QueueDelay() != 0 {
		t.Fatal("Reset did not clear accounting")
	}
}

func TestHostsAccessor(t *testing.T) {
	if got := testFabric(0).Hosts(); got != 4 {
		t.Fatalf("Hosts() = %d, want 4", got)
	}
}

func TestNewRejectsZeroHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 hosts) did not panic")
		}
	}()
	c := config.Default()
	New(0, c.CXL)
}
