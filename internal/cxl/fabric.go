// Package cxl models the CXL fabric of the multi-host system: one
// full-duplex link per host to the memory node (each direction an
// independently queued, bandwidth-limited pipe), optional switch hops, and
// the device coherence directory's sliced lookup ports. Message routing
// policy lives in the coherence layer; this package only prices transfers.
package cxl

import (
	"fmt"

	"pipm/internal/config"
	"pipm/internal/sim"
)

// Message and flit sizes. CXL.mem carries 64-byte data slots; requests and
// responses without data occupy a header-sized slot.
const (
	HeaderBytes = 16
	DataBytes   = config.LineBytes
)

// Fabric is the set of links between hosts and the CXL memory node plus the
// device directory's lookup ports.
type Fabric struct {
	cfg config.CXLConfig

	up   []*sim.Pipe // host → device, indexed by host
	down []*sim.Pipe // device → host

	// Background virtual channels: writebacks, in-memory-bit updates and
	// migration bulk transfers ride a low-priority channel that scavenges
	// idle link cycles instead of head-of-line-blocking demand reads (CXL
	// QoS). Modelled as a parallel pipe at the same bandwidth — demand
	// traffic sees no queueing from background traffic, background traffic
	// still serializes against itself.
	upBG   []*sim.Pipe
	downBG []*sim.Pipe

	dirPorts []*sim.Resource // device directory slice lookup ports
}

// New builds the fabric for hosts hosts with the given CXL configuration.
func New(hosts int, cfg config.CXLConfig) *Fabric {
	if hosts < 1 {
		panic("cxl: need at least one host")
	}
	f := &Fabric{cfg: cfg}
	// Each switch hop adds one extra store-and-forward traversal, modelled
	// as additional propagation on every transfer.
	prop := cfg.LinkLatency * sim.Time(1+cfg.SwitchHops)
	for h := 0; h < hosts; h++ {
		f.up = append(f.up, sim.NewPipe(fmt.Sprintf("cxl.h%d.up", h), cfg.LinkBW, prop))
		f.down = append(f.down, sim.NewPipe(fmt.Sprintf("cxl.h%d.down", h), cfg.LinkBW, prop))
		f.upBG = append(f.upBG, sim.NewPipe(fmt.Sprintf("cxl.h%d.upbg", h), cfg.LinkBW, prop))
		f.downBG = append(f.downBG, sim.NewPipe(fmt.Sprintf("cxl.h%d.downbg", h), cfg.LinkBW, prop))
	}
	for s := 0; s < cfg.DirSlices; s++ {
		f.dirPorts = append(f.dirPorts, sim.NewResource(fmt.Sprintf("cxl.dir%d", s)))
	}
	return f
}

// Hosts returns the number of attached hosts.
func (f *Fabric) Hosts() int { return len(f.up) }

// HostToDevice sends n payload bytes (plus a header) from host h toward the
// memory node, returning arrival time.
func (f *Fabric) HostToDevice(now sim.Time, h, n int) sim.Time {
	return f.up[h].Send(now, n+HeaderBytes)
}

// DeviceToHost sends n payload bytes (plus a header) from the memory node to
// host h, returning arrival time.
func (f *Fabric) DeviceToHost(now sim.Time, h, n int) sim.Time {
	return f.down[h].Send(now, n+HeaderBytes)
}

// HostToDeviceBG sends n payload bytes on host h's background up-channel.
func (f *Fabric) HostToDeviceBG(now sim.Time, h, n int) sim.Time {
	return f.upBG[h].Send(now, n+HeaderBytes)
}

// DeviceToHostBG sends n payload bytes on host h's background down-channel.
func (f *Fabric) DeviceToHostBG(now sim.Time, h, n int) sim.Time {
	return f.downBG[h].Send(now, n+HeaderBytes)
}

// HostToHost routes n payload bytes from host a to host b through the memory
// node's root complex (the inter-host GIM path of Fig. 3: there is no direct
// host-to-host link). It returns arrival time at b.
func (f *Fabric) HostToHost(now sim.Time, a, b, n int) sim.Time {
	atDevice := f.HostToDevice(now, a, n)
	return f.DeviceToHost(atDevice, b, n)
}

// DirLookup performs one device-directory lookup for the given line. The
// directory is pipelined: the slice port is occupied for one directory
// cycle (2 GHz) while the full round-trip latency is paid once per lookup.
func (f *Fabric) DirLookup(now sim.Time, line config.Addr) sim.Time {
	port := f.dirPorts[int(line)%len(f.dirPorts)]
	const slot = 500 * sim.Picosecond // one 2 GHz directory cycle
	issued := port.Acquire(now, slot)
	return issued + f.cfg.DirLatency - slot
}

// UpBytes and DownBytes report total payload+header bytes moved per
// direction for host h.
func (f *Fabric) UpBytes(h int) uint64   { return f.up[h].BytesMoved() }
func (f *Fabric) DownBytes(h int) uint64 { return f.down[h].BytesMoved() }

// TotalBytes reports bytes moved across all links in both directions,
// including background channels.
func (f *Fabric) TotalBytes() uint64 {
	var t uint64
	for h := range f.up {
		t += f.up[h].BytesMoved() + f.down[h].BytesMoved()
		t += f.upBG[h].BytesMoved() + f.downBG[h].BytesMoved()
	}
	return t
}

// BackgroundBytes reports bytes moved on the background channels only.
func (f *Fabric) BackgroundBytes() uint64 {
	var t uint64
	for h := range f.upBG {
		t += f.upBG[h].BytesMoved() + f.downBG[h].BytesMoved()
	}
	return t
}

// LinkUtilization reports the mean serialization utilization across all link
// directions over the elapsed window.
func (f *Fabric) LinkUtilization(elapsed sim.Time) float64 {
	if len(f.up) == 0 {
		return 0
	}
	var u float64
	for h := range f.up {
		u += f.up[h].Utilization(elapsed) + f.down[h].Utilization(elapsed)
	}
	return u / float64(2*len(f.up))
}

// QueueDelay reports accumulated queueing across all links (a congestion
// indicator the bandwidth-sensitivity experiment reads).
func (f *Fabric) QueueDelay() sim.Time {
	var t sim.Time
	for h := range f.up {
		t += f.up[h].QueueDelay() + f.down[h].QueueDelay()
	}
	return t
}

// DebugLink reports host h's demand up/down pipe statistics:
// (requests, busy, queue) per direction.
func (f *Fabric) DebugLink(h int) (upReq uint64, upBusy, upQueue sim.Time, downReq uint64, downBusy, downQueue sim.Time) {
	return f.up[h].Requests(), f.up[h].BusyTime(), f.up[h].QueueDelay(),
		f.down[h].Requests(), f.down[h].BusyTime(), f.down[h].QueueDelay()
}

// Reset returns all links and directory ports to idle.
func (f *Fabric) Reset() {
	for h := range f.up {
		f.up[h].Reset()
		f.down[h].Reset()
		f.upBG[h].Reset()
		f.downBG[h].Reset()
	}
	for _, p := range f.dirPorts {
		p.Reset()
	}
}
